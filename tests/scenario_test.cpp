// Scenario engine conformance (ISSUE tentpole): the compiler's event
// schedules are deterministic, the runner's artifact bundle is
// byte-identical across reruns and ingestion worker counts, the F9
// scenario file reproduces bench_overload's locked fairness numbers, the
// committed golden bundle still matches, and every shipped scenarios/*.scn
// file validates and passes its own verdicts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "fhir/json.h"
#include "scenario/compiler.h"
#include "scenario/runner.h"
#include "scenario/validator.h"

namespace hc::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Scenario load_or_die(const std::string& text) {
  Result<Scenario> loaded = load_string(text);
  EXPECT_TRUE(loaded.is_ok()) << loaded.status().message();
  return *loaded;
}

Scenario load_shipped(const std::string& name) {
  Result<Scenario> loaded = load_file(std::string(HC_SCENARIO_DIR) + "/" + name);
  EXPECT_TRUE(loaded.is_ok()) << name << ": " << loaded.status().message();
  return *loaded;
}

const CellModeResult& find_cell(const RunReport& report, double load,
                                SchedulerMode mode) {
  for (const CellModeResult& cell : report.cells) {
    if (cell.load == load && cell.mode == mode) return cell;
  }
  ADD_FAILURE() << "no cell for load " << load;
  static CellModeResult empty;
  return empty;
}

// ------------------------------------------------------------- compiler

TEST(ScenarioCompiler, SameInputCompilesToIdenticalSchedule) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  seed 9\n  horizon 1s\n}\n"
      "tenant \"p\" {\n  arrival poisson\n  rate 200\n}\n"
      "tenant \"u\" {\n  rate 100\n}\n");
  Result<CompiledCell> a = compile(scenario, 1.0);
  Result<CompiledCell> b = compile(scenario, 1.0);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  ASSERT_EQ(a->arrivals.size(), b->arrivals.size());
  EXPECT_GT(a->arrivals.size(), 0u);
  for (std::size_t i = 0; i < a->arrivals.size(); ++i) {
    EXPECT_EQ(a->arrivals[i].at, b->arrivals[i].at);
    EXPECT_EQ(a->arrivals[i].cost, b->arrivals[i].cost);
    EXPECT_EQ(a->arrivals[i].tenant, b->arrivals[i].tenant);
    EXPECT_EQ(a->arrivals[i].deadline, b->arrivals[i].deadline);
  }
}

TEST(ScenarioCompiler, DifferentSeedMovesPoissonArrivals) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  seed 9\n  horizon 1s\n}\n"
      "tenant \"p\" {\n  arrival poisson\n  rate 200\n}\n");
  Scenario reseeded = scenario;
  reseeded.seed = 10;
  Result<CompiledCell> a = compile(scenario, 1.0);
  Result<CompiledCell> b = compile(reseeded, 1.0);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  bool any_difference = a->arrivals.size() != b->arrivals.size();
  for (std::size_t i = 0; !any_difference && i < a->arrivals.size(); ++i) {
    any_difference = a->arrivals[i].at != b->arrivals[i].at;
  }
  EXPECT_TRUE(any_difference) << "reseeding did not move any arrival";
}

TEST(ScenarioCompiler, ArrivalsSortedAndDeadlinesCarryBudget) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 1s\n}\n"
      "server {\n  deadline 30ms\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_EQ(cell->arrivals.size(), 100u);
  for (std::size_t i = 0; i < cell->arrivals.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(cell->arrivals[i].at, cell->arrivals[i - 1].at);
    }
    EXPECT_EQ(cell->arrivals[i].deadline,
              cell->arrivals[i].at + 30 * kMillisecond);
  }
}

TEST(ScenarioCompiler, PhaseScaleZeroSilencesTheWindow) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 2s\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n"
      "phase \"quiet\" {\n  from 500ms\n  until 1s\n  rate_scale 0\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  std::size_t in_window = 0;
  for (const Arrival& arrival : cell->arrivals) {
    if (arrival.at >= 500 * kMillisecond && arrival.at < kSecond) ++in_window;
  }
  EXPECT_EQ(in_window, 0u);
  EXPECT_GT(cell->arrivals.size(), 100u);  // the other 1.5s still flow
}

TEST(ScenarioCompiler, PhaseScaleMultipliesTheWindowRate) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 2s\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n"
      "phase \"spike\" {\n  from 1s\n  until 2s\n  rate_scale 3\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  std::size_t before = 0;
  std::size_t during = 0;
  for (const Arrival& arrival : cell->arrivals) {
    (arrival.at < kSecond ? before : during) += 1;
  }
  EXPECT_NEAR(static_cast<double>(during),
              3.0 * static_cast<double>(before), 5.0);
}

TEST(ScenarioCompiler, FillTenantAbsorbsTheLoadRemainder) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  nominal_rate 1000\n}\n"
      "tenant \"fill\" {\n  rate fill\n}\n"
      "tenant \"fixed\" {\n  rate 150\n}\n");
  Result<CompiledCell> cell = compile(scenario, 2.0);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_EQ(cell->rates.size(), 2u);
  EXPECT_EQ(cell->rates[0], 2000.0 - 150.0);
  EXPECT_EQ(cell->rates[1], 150.0);
}

TEST(ScenarioCompiler, FaultDropMarksArrivalsLostDeterministically) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 1s\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n"
      "fault {\n  drop \"a\" \"server\" 1.0\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_EQ(cell->arrivals.size(), 100u);
  for (const Arrival& arrival : cell->arrivals) {
    EXPECT_TRUE(arrival.dropped);
  }
}

TEST(ScenarioCompiler, FaultDuplicateGrowsTheSchedule) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 1s\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n"
      "fault {\n  duplicate \"a\" \"server\" 1.0\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  EXPECT_EQ(cell->arrivals.size(), 200u);
}

TEST(ScenarioCompiler, NetworkLatencyShiftsArrivals) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 1s\n}\n"
      "tenant \"a\" {\n  rate 50\n  network \"wan\"\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  ASSERT_FALSE(cell->arrivals.empty());
  // wan base latency is 40ms: nothing can land before the wire delivers it.
  EXPECT_GE(cell->arrivals.front().at, 40 * kMillisecond);
}

TEST(ScenarioCompiler, ClosedLoopTenantsCompileToNoOpenLoopArrivals) {
  Scenario scenario = load_or_die(
      "scenario \"c\" {\n  horizon 1s\n}\n"
      "tenant \"closed\" {\n  arrival closed\n  clients 5\n  think 10ms\n}\n"
      "tenant \"open\" {\n  rate 50\n}\n");
  Result<CompiledCell> cell = compile(scenario, 1.0);
  ASSERT_TRUE(cell.is_ok());
  for (const Arrival& arrival : cell->arrivals) {
    EXPECT_EQ(arrival.tenant, 1) << "closed-loop tenant leaked an arrival";
  }
  EXPECT_EQ(cell->rates[0], 0.0);
}

// --------------------------------------------------------------- runner

TEST(ScenarioRunner, ReportShapeMatchesSweepAndModes) {
  Scenario scenario = load_or_die(
      "scenario \"r\" {\n  horizon 500ms\n  sweep 0.5 1.0\n"
      "  nominal_rate 100\n}\n"
      "server {\n  scheduler both\n}\n"
      "tenant \"a\" {\n  rate fill\n}\n");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  // 2 sweep cells x (fifo, sched), sweep-major with fifo first.
  ASSERT_EQ(report->cells.size(), 4u);
  EXPECT_EQ(report->cells[0].load, 0.5);
  EXPECT_EQ(report->cells[0].mode, SchedulerMode::kFifo);
  EXPECT_EQ(report->cells[1].load, 0.5);
  EXPECT_EQ(report->cells[1].mode, SchedulerMode::kSched);
  EXPECT_EQ(report->cells[2].load, 1.0);
  EXPECT_EQ(report->cells[3].load, 1.0);
  EXPECT_TRUE(report->ingest.empty());
}

TEST(ScenarioRunner, UnderloadServesEverythingInBothModes) {
  Scenario scenario = load_or_die(
      "scenario \"r\" {\n  horizon 500ms\n}\n"
      "server {\n  scheduler both\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report->cells.size(), 2u);  // fifo and sched
  for (const CellModeResult& cell : report->cells) {
    ASSERT_EQ(cell.tenants.size(), 1u);
    EXPECT_EQ(cell.tenants[0].offered, 50u);
    EXPECT_EQ(cell.tenants[0].served, 50u);
    EXPECT_EQ(cell.tenants[0].shed, 0u);
    EXPECT_EQ(cell.tenants[0].late, 0u);
  }
}

TEST(ScenarioRunner, MetricsMirrorTallies) {
  Scenario scenario = load_or_die(
      "scenario \"r\" {\n  horizon 500ms\n}\n"
      "server {\n  scheduler sched\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  const TenantTally& tally = report->cells[0].tenants[0];
  EXPECT_EQ(report->metrics->counter("hc.scenario.x1.0.sched.a.offered"),
            tally.offered);
  EXPECT_EQ(report->metrics->counter("hc.scenario.x1.0.sched.a.served"),
            tally.served);
  EXPECT_GT(report->metrics->gauge("hc.scenario.x1.0.sched.a.goodput_rps"),
            0.0);
}

TEST(ScenarioRunner, FailingVerdictFailsTheRun) {
  Scenario scenario = load_or_die(
      "scenario \"r\" {\n  horizon 500ms\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n"
      "verdict \"impossible\" {\n  require max_served_fraction\n"
      "  bound 0\n}\n");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  EXPECT_FALSE(report->all_pass());
  ASSERT_EQ(report->verdicts.size(), 1u);
  EXPECT_FALSE(report->verdicts[0].pass);
  EXPECT_NE(verdicts_text(*report).find("FAIL impossible"), std::string::npos);
  EXPECT_NE(verdicts_text(*report).find("verdicts: FAIL"), std::string::npos);
  EXPECT_EQ(report->metrics->gauge("hc.scenario.verdict.impossible"), 0.0);
}

TEST(ScenarioRunner, ServerCrashWindowCostsThroughput) {
  const std::string base =
      "scenario \"r\" {\n  horizon 2s\n}\n"
      "server {\n  scheduler sched\n}\n"
      "tenant \"a\" {\n  rate 100\n}\n";
  Scenario healthy = load_or_die(base);
  Scenario crashed = load_or_die(base + "fault {\n  crash \"server\" 500ms 1s\n}\n");
  Result<RunReport> a = run(healthy);
  Result<RunReport> b = run(crashed);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a->cells[0].tenants[0].served, a->cells[0].tenants[0].offered);
  EXPECT_LT(b->cells[0].tenants[0].served, a->cells[0].tenants[0].served);
  // The crash is announced in the timeline header.
  EXPECT_NE(timeline_text(*b).find("crash server"), std::string::npos);
}

TEST(ScenarioRunner, ClosedLoopClientsRespawnAfterCompletion) {
  Scenario scenario = load_or_die(
      "scenario \"r\" {\n  horizon 1s\n}\n"
      "server {\n  scheduler sched\n}\n"
      "tenant \"closed\" {\n  arrival closed\n  clients 4\n  think 10ms\n"
      "  cost 1000 1000\n}\n");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  // 4 clients cycling ~11ms per round for 1s: far more than 4 requests.
  EXPECT_GT(report->cells[0].tenants[0].offered, 100u);
}

// --------------------------------------------- replay determinism (ISSUE)

TEST(ScenarioReplay, BundleIsByteIdenticalAcrossFiveReruns) {
  Scenario scenario = load_shipped("smoke.scn");
  Result<RunReport> first = run(scenario);
  ASSERT_TRUE(first.is_ok());
  const std::string golden = bundle_text(*first);
  for (int i = 0; i < 4; ++i) {
    Result<RunReport> again = run(scenario);
    ASSERT_TRUE(again.is_ok());
    ASSERT_EQ(bundle_text(*again), golden) << "rerun " << i << " diverged";
  }
}

TEST(ScenarioReplay, BundleIsByteIdenticalAcrossWorkerCounts) {
  // consent_revocation_storm replays arrivals through the real ingestion
  // pipeline; the drain's worker count must not leak into the bundle.
  Scenario scenario = load_shipped("consent_revocation_storm.scn");
  RunOptions options;
  options.ingest_workers = 1;
  Result<RunReport> baseline = run(scenario, options);
  ASSERT_TRUE(baseline.is_ok()) << baseline.status().message();
  const std::string golden = bundle_text(*baseline);
  for (std::size_t workers : {2u, 4u, 8u}) {
    options.ingest_workers = workers;
    Result<RunReport> report = run(scenario, options);
    ASSERT_TRUE(report.is_ok()) << report.status().message();
    ASSERT_EQ(bundle_text(*report), golden)
        << workers << " workers diverged from 1";
  }
}

TEST(ScenarioReplay, DifferentSeedDifferentTimelineSameVerdicts) {
  const std::string text =
      "scenario \"seeded\" {\n  seed 5\n  horizon 1s\n"
      "  timeline_resolution 100ms\n}\n"
      "tenant \"p\" {\n  arrival poisson\n  rate 200\n}\n"
      "verdict \"mostly-served\" {\n  require min_served_fraction\n"
      "  bound 0.9\n}\n";
  Scenario scenario = load_or_die(text);
  Scenario reseeded = scenario;
  reseeded.seed = 6;
  Result<RunReport> a = run(scenario);
  Result<RunReport> b = run(reseeded);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_NE(timeline_text(*a), timeline_text(*b));
  EXPECT_TRUE(a->all_pass());
  EXPECT_TRUE(b->all_pass());
}

TEST(ScenarioReplay, CommittedGoldenBundleStillMatches) {
  Scenario scenario = load_shipped("smoke.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  const std::string dir = std::string(HC_GOLDEN_DIR) + "/scenario_smoke";
  EXPECT_EQ(metrics_text(*report), read_file(dir + "/metrics.json"));
  EXPECT_EQ(timeline_text(*report), read_file(dir + "/timeline.txt"));
  EXPECT_EQ(verdicts_text(*report), read_file(dir + "/verdicts.txt"));
}

TEST(ScenarioReplay, CommittedProvenanceSurgeBundleStillMatches) {
  Scenario scenario = load_shipped("provenance_surge.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  const std::string dir = std::string(HC_GOLDEN_DIR) + "/provenance_surge";
  EXPECT_EQ(metrics_text(*report), read_file(dir + "/metrics.json"));
  EXPECT_EQ(timeline_text(*report), read_file(dir + "/timeline.txt"));
  EXPECT_EQ(verdicts_text(*report), read_file(dir + "/verdicts.txt"));
}

TEST(ScenarioReplay, ProvenanceSurgeIsWorkerCountInvariant) {
  // The anchored-ledger replay serves audit proofs and tallies batch
  // counts; none of that may depend on how many workers drained the
  // ingest queue (DataLake refs are assigned in arrival order, so the
  // tally must be keyed on canonical leaf order, never on refs).
  Scenario scenario = load_shipped("provenance_surge.scn");
  RunOptions options;
  options.ingest_workers = 1;
  Result<RunReport> baseline = run(scenario, options);
  ASSERT_TRUE(baseline.is_ok()) << baseline.status().message();
  EXPECT_GT(baseline->provenance.events, 0u);
  EXPECT_GT(baseline->provenance.batches, 0u);
  EXPECT_GT(baseline->provenance.audit_reads, 0u);
  const std::string golden = bundle_text(*baseline);
  for (std::size_t workers : {2u, 4u, 8u}) {
    options.ingest_workers = workers;
    Result<RunReport> report = run(scenario, options);
    ASSERT_TRUE(report.is_ok()) << report.status().message();
    ASSERT_EQ(bundle_text(*report), golden)
        << workers << " workers diverged from 1";
  }
}

TEST(ScenarioReplay, CommittedScaleoutRebalanceBundleStillMatches) {
  Scenario scenario = load_shipped("scaleout_rebalance.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  const std::string dir = std::string(HC_GOLDEN_DIR) + "/scaleout_rebalance";
  EXPECT_EQ(metrics_text(*report), read_file(dir + "/metrics.json"));
  EXPECT_EQ(timeline_text(*report), read_file(dir + "/timeline.txt"));
  EXPECT_EQ(verdicts_text(*report), read_file(dir + "/verdicts.txt"));
}

TEST(ScenarioReplay, ScaleoutRebalanceIsWorkerCountInvariant) {
  // The crash-and-rebalance drill replays onto the 4-host cluster, crashes
  // shard-1, and rebalances. Placement hashes content, transfer charges
  // are byte-pure, and the rebalance iterates sorted references — so the
  // bundle (cluster tallies included) must not depend on how many workers
  // drained the ingest queue, nor on the rerun.
  Scenario scenario = load_shipped("scaleout_rebalance.scn");
  RunOptions options;
  options.ingest_workers = 1;
  Result<RunReport> baseline = run(scenario, options);
  ASSERT_TRUE(baseline.is_ok()) << baseline.status().message();
  EXPECT_EQ(baseline->cluster.hosts, 4u);
  EXPECT_GT(baseline->cluster.objects, 0u);
  EXPECT_EQ(baseline->cluster.copies, 2 * baseline->cluster.objects);
  EXPECT_GT(baseline->cluster.rebalance_moved, 0u);
  EXPECT_EQ(baseline->cluster.lost_objects, 0u);
  const std::string golden = bundle_text(*baseline);
  for (std::size_t workers : {2u, 4u, 8u, 1u}) {
    options.ingest_workers = workers;
    Result<RunReport> report = run(scenario, options);
    ASSERT_TRUE(report.is_ok()) << report.status().message();
    ASSERT_EQ(bundle_text(*report), golden)
        << workers << " workers diverged from 1";
  }
}

TEST(ScenarioReplay, CommittedCrashResumeBundleStillMatches) {
  Scenario scenario = load_shipped("crash_resume.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  const std::string dir = std::string(HC_GOLDEN_DIR) + "/crash_resume";
  EXPECT_EQ(metrics_text(*report), read_file(dir + "/metrics.json"));
  EXPECT_EQ(timeline_text(*report), read_file(dir + "/timeline.txt"));
  EXPECT_EQ(verdicts_text(*report), read_file(dir + "/verdicts.txt"));
}

TEST(ScenarioReplay, CrashResumeIsWorkerCountInvariant) {
  // The drill seals a LAKE checkpoint after 40 drained uploads, kills the
  // ingestion world at upload 70, restores from the file, and finishes the
  // drain. Saved/lost/restored/final counts and the checkpoint byte size
  // are pure functions of the scenario bytes: the checkpoint iterates the
  // lake in sorted reference order and the encoder is canonical, so the
  // bundle must not depend on how many workers drained the queue.
  Scenario scenario = load_shipped("crash_resume.scn");
  RunOptions options;
  options.ingest_workers = 1;
  Result<RunReport> baseline = run(scenario, options);
  ASSERT_TRUE(baseline.is_ok()) << baseline.status().message();
  EXPECT_GT(baseline->ckpt.saved_objects, 0u);
  EXPECT_GT(baseline->ckpt.lost_objects, 0u);
  EXPECT_EQ(baseline->ckpt.restored_objects, baseline->ckpt.saved_objects);
  EXPECT_GT(baseline->ckpt.final_objects, baseline->ckpt.restored_objects);
  EXPECT_GT(baseline->ckpt.checkpoint_bytes, 0u);
  const std::string golden = bundle_text(*baseline);
  for (std::size_t workers : {2u, 4u, 8u, 1u}) {
    options.ingest_workers = workers;
    Result<RunReport> report = run(scenario, options);
    ASSERT_TRUE(report.is_ok()) << report.status().message();
    ASSERT_EQ(bundle_text(*report), golden)
        << workers << " workers diverged from 1";
  }
}

TEST(ScenarioReplay, WriteBundleMatchesTheTextFunctions) {
  Scenario scenario = load_shipped("smoke.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  const std::string dir =
      ::testing::TempDir() + "/scenario_bundle_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  ASSERT_TRUE(write_bundle(*report, dir).is_ok());
  EXPECT_EQ(read_file(dir + "/metrics.json"), metrics_text(*report));
  EXPECT_EQ(read_file(dir + "/timeline.txt"), timeline_text(*report));
  EXPECT_EQ(read_file(dir + "/verdicts.txt"), verdicts_text(*report));
  std::remove((dir + "/metrics.json").c_str());
  std::remove((dir + "/timeline.txt").c_str());
  std::remove((dir + "/verdicts.txt").c_str());
}

TEST(ScenarioReplay, MetricsArtifactIsWellFormedJson) {
  Scenario scenario = load_shipped("smoke.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  Result<fhir::Json> parsed = fhir::parse_json(metrics_text(*report));
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
}

// --------------------------------------------- F9 equivalence (ISSUE)

// The scenario file is the bench: f9_overload.scn must reproduce
// bench_overload's locked overload-fairness numbers draw for draw. The
// constants below are the bench's own output (see EXPERIMENTS.md F9).
TEST(ScenarioF9, ReproducesBenchOverloadAtTwoTimesLoad) {
  Scenario scenario = load_shipped("f9_overload.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());

  const CellModeResult& fifo = find_cell(*report, 2.0, SchedulerMode::kFifo);
  ASSERT_EQ(fifo.tenants.size(), 4u);
  EXPECT_EQ(fifo.tenants[0].offered, 7752u);  // greedy
  EXPECT_EQ(fifo.tenants[0].served, 77u);
  EXPECT_EQ(fifo.tenants[0].late, 7675u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(fifo.tenants[i].offered, 751u);
    EXPECT_EQ(fifo.tenants[i].served, 8u);
    EXPECT_EQ(fifo.tenants[i].late, 743u);
  }

  const CellModeResult& sched = find_cell(*report, 2.0, SchedulerMode::kSched);
  EXPECT_EQ(sched.tenants[0].offered, 7752u);
  EXPECT_EQ(sched.tenants[0].served, 1553u);
  EXPECT_EQ(sched.tenants[0].shed, 6166u);
  EXPECT_EQ(sched.tenants[0].late, 33u);
  EXPECT_EQ(sched.tenants[1].served, 745u);
  EXPECT_EQ(sched.tenants[1].shed, 6u);
  EXPECT_EQ(sched.tenants[2].served, 742u);
  EXPECT_EQ(sched.tenants[2].shed, 9u);
  EXPECT_EQ(sched.tenants[3].served, 740u);
  EXPECT_EQ(sched.tenants[3].shed, 11u);
}

TEST(ScenarioF9, ReproducesBenchOverloadAtFourTimesLoad) {
  Scenario scenario = load_shipped("f9_overload.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());

  const CellModeResult& fifo = find_cell(*report, 4.0, SchedulerMode::kFifo);
  EXPECT_EQ(fifo.tenants[0].offered, 17794u);
  EXPECT_EQ(fifo.tenants[0].served, 57u);
  EXPECT_EQ(fifo.tenants[0].late, 17737u);

  const CellModeResult& sched = find_cell(*report, 4.0, SchedulerMode::kSched);
  EXPECT_EQ(sched.tenants[0].served, 1536u);
  EXPECT_EQ(sched.tenants[0].shed, 16241u);
  EXPECT_EQ(sched.tenants[0].late, 17u);
  EXPECT_EQ(sched.tenants[1].served, 747u);
  EXPECT_EQ(sched.tenants[2].served, 748u);
  EXPECT_EQ(sched.tenants[3].served, 746u);
}

TEST(ScenarioF9, FairnessVerdictsHold) {
  // The locked claim, as machine-checked verdicts: every normal tenant
  // keeps >= 98.5% goodput under sched at 2x and 4x, and FIFO collapses
  // below 2% for everyone.
  Scenario scenario = load_shipped("f9_overload.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  EXPECT_TRUE(report->all_pass());
  const CellModeResult& underload =
      find_cell(*report, 0.5, SchedulerMode::kSched);
  for (const TenantTally& tally : underload.tenants) {
    EXPECT_EQ(tally.served, tally.offered);  // no collateral damage at 0.5x
  }
}

// ------------------------------------------ shipped scenario files

class ShippedScenario : public ::testing::TestWithParam<const char*> {};

TEST_P(ShippedScenario, ValidatesRunsAndPassesItsVerdicts) {
  Scenario scenario = load_shipped(GetParam());
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok()) << report.status().message();
  for (const VerdictOutcome& verdict : report->verdicts) {
    EXPECT_TRUE(verdict.pass) << verdict.name << " failed:\n"
                              << verdicts_text(*report);
  }
  EXPECT_FALSE(report->verdicts.empty());
  EXPECT_FALSE(report->timeline.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Files, ShippedScenario,
    ::testing::Values("smoke.scn", "f9_overload.scn", "region_outage.scn",
                      "consent_revocation_storm.scn", "flash_crowd.scn",
                      "slow_loris.scn", "provenance_surge.scn",
                      "scaleout_rebalance.scn", "crash_resume.scn"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      name = name.substr(0, name.find('.'));
      for (char& c : name) {
        if (c == '_') c = ' ';
      }
      std::string out;
      for (char c : name) {
        if (c != ' ') out += c;
      }
      return out;
    });

// The storm scenario's ingestion replay rejects for the right reasons:
// malware is caught before consent, revoked uploads never reach the lake.
TEST(ScenarioIngestion, StormRejectionsAreAttributed) {
  Scenario scenario = load_shipped("consent_revocation_storm.scn");
  Result<RunReport> report = run(scenario);
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report->ingest.size(), 2u);
  const IngestTally& registry = report->ingest[0];
  const IngestTally& research = report->ingest[1];
  EXPECT_EQ(registry.attempted,
            registry.stored);  // full consent, no malware
  EXPECT_GT(research.rejected_consent, 0u);
  EXPECT_GT(research.rejected_malware, 0u);
  EXPECT_EQ(research.attempted, research.stored + research.rejected_malware +
                                    research.rejected_consent);
  EXPECT_GT(report->metrics->counter(
                "hc.scenario.ingest.research.rejected_consent"),
            0u);
}

}  // namespace
}  // namespace hc::scenario
