// Chaos suite (ISSUE tentpole): every resilience-wired hot path — gateway,
// intercloud transfer, service brokering, storage replication, blockchain
// consensus — driven under a deterministic FaultPlan. The headline claims:
//   1. identical (seed, plan) => byte-identical metrics across runs,
//   2. each path survives 10% message loss + a one-host crash with
//      eventual success,
//   3. breaker / failover / abort-recovery schedules land exactly where a
//      hand computation puts them.
#include <gtest/gtest.h>

#include "blockchain/contracts.h"
#include "blockchain/ledger.h"
#include "fault/fault.h"
#include "fault/resilience.h"
#include "net/network.h"
#include "obs/export.h"
#include "platform/gateway.h"
#include "platform/intercloud.h"
#include "services/registry.h"
#include "storage/replication.h"
#include "tpm/trust_chain.h"

namespace hc {
namespace {

// ------------------------------------------------------- determinism

// A mixed scenario touching every fault kind plus retries and a breaker;
// returns the locked metrics emission. Byte-identical output for identical
// seeds is the suite's core determinism claim.
std::string run_mixed_scenario(std::uint64_t seed) {
  auto clock = make_clock();
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  net::SimNetwork network(clock, Rng(seed));
  network.set_link("client", "cloud", net::LinkProfile::wan());

  fault::FaultPlan plan;
  plan.drop("client", "cloud", 0.10)
      .duplicate("client", "cloud", 0.05)
      .delay("client", "cloud", 0.20, 3 * kMillisecond)
      .crash("cloud", 2 * kSecond, 2500 * kMillisecond);
  network.set_fault_injector(make_injector(plan, clock, Rng(seed + 1), metrics));

  fault::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 5 * kMillisecond;
  policy.jitter = 0.3;
  Rng retry_rng(seed + 2);

  fault::CircuitBreakerConfig breaker_config;
  breaker_config.name = "scenario";
  breaker_config.failure_threshold = 3;
  breaker_config.open_cooldown = 200 * kMillisecond;
  breaker_config.half_open_successes = 1;
  fault::CircuitBreaker breaker(breaker_config, clock, metrics);

  for (int i = 0; i < 150; ++i) {
    if (breaker.allow().is_ok()) {
      auto sent = fault::with_retry(
          policy, *clock, retry_rng,
          [&] { return network.send("client", "cloud", 256); }, metrics.get());
      if (sent.is_ok()) {
        breaker.record_success();
        metrics->add("scenario.delivered");
      } else {
        breaker.record_failure();
        metrics->add("scenario.lost");
      }
    } else {
      metrics->add("scenario.fast_failed");
    }
    clock->advance(20 * kMillisecond);
  }
  metrics->add("scenario.final_time_us", static_cast<std::uint64_t>(clock->now()));
  metrics->add("scenario.network_drops", network.stats().drops);
  metrics->add("scenario.network_duplicates", network.stats().duplicates);
  return obs::to_json(*metrics);
}

TEST(ChaosDeterminism, SameSeedSamePlanByteIdenticalMetrics) {
  std::string first = run_mixed_scenario(1234);
  std::string second = run_mixed_scenario(1234);
  EXPECT_EQ(first, second);  // byte-identical, not just "equivalent"
  EXPECT_NE(first.find("scenario.delivered"), std::string::npos);
  EXPECT_NE(first.find("hc.fault.injected.drop"), std::string::npos);
}

TEST(ChaosDeterminism, DifferentSeedIsADifferentRun) {
  EXPECT_NE(run_mixed_scenario(1234), run_mixed_scenario(4321));
}

// ------------------------------------------------------- gateway

class GatewayChaos : public ::testing::Test {
 protected:
  GatewayChaos() : clock_(make_clock()), network_(clock_, Rng(150)) {
    platform::InstanceConfig config;
    config.name = "cloud";
    cloud_ = std::make_unique<platform::HealthCloudInstance>(config, clock_,
                                                             network_);
    network_.set_link("client", "cloud", net::LinkProfile::wan());

    // 10% loss on the client leg + the route's backend host crashed for
    // the first 2 simulated seconds of the test.
    fault::FaultPlan plan;
    plan.drop("client", "cloud", 0.10);
    plan.crash("backend", clock_->now(), clock_->now() + 2 * kSecond);
    injector_ = fault::make_injector(plan, clock_, Rng(777), cloud_->metrics());
    network_.set_fault_injector(injector_);

    gateway_ = std::make_unique<platform::ApiGateway>(*cloud_);
    fault::CircuitBreakerConfig breaker;
    breaker.failure_threshold = 3;
    breaker.open_cooldown = 500 * kMillisecond;
    breaker.half_open_successes = 1;
    gateway_->set_breaker_config(breaker);
    gateway_->route("svc/", [this](const std::string&, const platform::ApiRequest&)
                                -> Result<platform::ApiResponse> {
      if (injector_->host_down("backend")) {
        return Status(StatusCode::kUnavailable, "backend is down");
      }
      return platform::ApiResponse{to_bytes("pong")};
    });

    tenant_ = cloud_->rbac().register_tenant("mercy").value();
    analyst_ = cloud_->rbac().add_user(tenant_.id, "analyst").value();
    EXPECT_TRUE(cloud_->rbac()
                    .assign_role(analyst_, tenant_.default_env, rbac::Role::kAnalyst)
                    .is_ok());
    EXPECT_TRUE(cloud_->rbac()
                    .grant_permission(tenant_.id, rbac::Role::kAnalyst, "svc/",
                                      rbac::Permission::kRead)
                    .is_ok());
  }

  Result<platform::ApiResponse> call() {
    platform::ApiRequest request;
    request.user_id = analyst_;
    request.environment = tenant_.default_env;
    request.scope = tenant_.id;
    request.resource = "svc/echo";
    return gateway_->handle(request);
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  std::unique_ptr<platform::HealthCloudInstance> cloud_;
  fault::FaultInjectorPtr injector_;
  std::unique_ptr<platform::ApiGateway> gateway_;
  rbac::TenantInfo tenant_;
  std::string analyst_;
};

TEST_F(GatewayChaos, SurvivesLossAndBackendCrashWithEventualSuccess) {
  SimTime backend_restart = 2 * kSecond;  // relative to fixture start
  SimTime start = clock_->now();
  int served_after_restart = 0;
  bool saw_open = false;

  for (int i = 0; i < 60 && served_after_restart < 3; ++i) {
    // Client leg: 10% injected loss, availability restored by retries.
    ASSERT_TRUE(network_.send_with_retry("client", "cloud", 512, 8).is_ok());
    auto response = call();
    if (gateway_->route_breaker_state("svc/") == fault::BreakerState::kOpen) {
      saw_open = true;
    }
    if (response.is_ok() && clock_->now() - start >= backend_restart) {
      ++served_after_restart;
    }
    clock_->advance(100 * kMillisecond);
  }

  EXPECT_EQ(served_after_restart, 3);  // recovered after the crash window
  EXPECT_TRUE(saw_open);               // the dead backend tripped the breaker
  EXPECT_GT(gateway_->stats().breaker_rejected, 0u);  // fast-fail, not timeout
  EXPECT_GE(cloud_->metrics()->counter("hc.gateway.handler_failures"), 3u);
  EXPECT_EQ(gateway_->route_breaker_state("svc/"), fault::BreakerState::kClosed);
}

TEST_F(GatewayChaos, BreakerRejectionsNeverReachTheHandler) {
  // Drive the breaker open, then count handler invocations while open.
  while (gateway_->route_breaker_state("svc/") != fault::BreakerState::kOpen) {
    (void)call();
  }
  std::uint64_t failures_at_open =
      cloud_->metrics()->counter("hc.gateway.handler_failures");
  (void)call();  // inside the cooldown: must be fast-failed
  EXPECT_EQ(cloud_->metrics()->counter("hc.gateway.handler_failures"),
            failures_at_open);
  EXPECT_GT(gateway_->stats().breaker_rejected, 0u);
}

// ------------------------------------------------------- intercloud

class IntercloudChaos : public ::testing::Test {
 protected:
  IntercloudChaos() : clock_(make_clock()), network_(clock_, Rng(110)) {
    platform::InstanceConfig a;
    a.name = "data-cloud";
    a.seed = 111;
    platform::InstanceConfig b;
    b.name = "analytics-cloud";
    b.seed = 112;
    source_ = std::make_unique<platform::HealthCloudInstance>(a, clock_, network_);
    destination_ =
        std::make_unique<platform::HealthCloudInstance>(b, clock_, network_);
    network_.set_link("data-cloud", "analytics-cloud",
                      net::LinkProfile::intercloud());
    destination_->images().approve_key(source_->platform_signing_keys().pub);
    Bytes container = to_bytes("jmf-model-container-layers-v3");
    auto manifest =
        tpm::sign_image("jmf-model", "3.0", container, {to_bytes("layer-base")},
                        source_->platform_signing_keys());
    EXPECT_TRUE(source_->images().register_image(manifest, container).is_ok());
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  std::unique_ptr<platform::HealthCloudInstance> source_;
  std::unique_ptr<platform::HealthCloudInstance> destination_;
};

TEST_F(IntercloudChaos, SurvivesLossAndDestinationCrashWithEventualSuccess) {
  // 10% intercloud loss + destination down for 1s from "now".
  fault::FaultPlan plan;
  plan.drop("data-cloud", "analytics-cloud", 0.10);
  plan.crash("analytics-cloud", clock_->now(), clock_->now() + 1 * kSecond);
  network_.set_fault_injector(
      fault::make_injector(plan, clock_, Rng(888), source_->metrics()));

  platform::IntercloudGateway gateway(*source_, *destination_);
  platform::TransferResilience resilience;
  resilience.retry.max_attempts = 4;
  resilience.retry.initial_backoff = 50 * kMillisecond;
  gateway.set_resilience(resilience);
  fault::CircuitBreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.open_cooldown = 300 * kMillisecond;
  breaker.half_open_successes = 1;
  gateway.set_breaker_config(breaker);

  int failures = 0;
  bool saw_open = false;
  Result<platform::TransferReceipt> receipt =
      Status(StatusCode::kUnavailable, "not attempted");
  for (int i = 0; i < 50; ++i) {
    receipt = gateway.transfer_and_launch("jmf-model", "3.0");
    if (receipt.is_ok()) break;
    ++failures;
    if (gateway.breaker_state() == fault::BreakerState::kOpen) saw_open = true;
    clock_->advance(100 * kMillisecond);
  }

  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_GT(failures, 0);  // the crash window really was survived, not missed
  EXPECT_TRUE(saw_open);
  EXPECT_TRUE(destination_->images().content("jmf-model", "3.0").is_ok());
  EXPECT_GT(source_->metrics()->counter("hc.intercloud.send.retries"), 0u);
  EXPECT_GT(source_->metrics()->counter("hc.intercloud.breaker_rejected"), 0u);
  EXPECT_EQ(gateway.breaker_state(), fault::BreakerState::kClosed);
}

TEST_F(IntercloudChaos, TransferTimeoutSurfacesAsRetryableUnavailability) {
  platform::IntercloudGateway gateway(*source_, *destination_);
  platform::TransferResilience resilience;
  resilience.timeout = 1;  // 1us: nothing real finishes in this budget
  resilience.retry.max_attempts = 2;
  gateway.set_resilience(resilience);
  auto receipt = gateway.transfer_and_launch("jmf-model", "3.0");
  ASSERT_FALSE(receipt.is_ok());
  EXPECT_EQ(receipt.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(fault::retryable(receipt.status()));
}

// ------------------------------------------------------- replication

TEST(ReplicationChaos, WriteRetriesAcrossCrashScheduleAndRepairs) {
  auto clock = make_clock();
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  crypto::KeyManagementService kms("tenant", Rng(180));
  auto key = kms.create_symmetric_key("storage");
  std::vector<std::unique_ptr<storage::DataLake>> lakes;
  for (int i = 0; i < 3; ++i) {
    lakes.push_back(std::make_unique<storage::DataLake>(kms, "storage",
                                                        Rng(181 + i)));
  }
  storage::ReplicatedDataLake replicated(
      {lakes[0].get(), lakes[1].get(), lakes[2].get()});

  // r1 down for 2s, r2 down for 1s: at t=0 only r0 is up, so the quorum-2
  // write must fail, back off (500ms, 1s), and succeed on the third
  // attempt at t=1.5s once r2 has restarted.
  fault::FaultPlan plan;
  plan.crash("r1", 0, 2 * kSecond);
  plan.crash("r2", 0, 1 * kSecond);
  storage::ReplicationResilience resilience;
  resilience.clock = clock;
  resilience.injector = fault::make_injector(plan, clock, Rng(555), metrics);
  resilience.metrics = metrics;
  resilience.retry.max_attempts = 5;
  resilience.retry.initial_backoff = 500 * kMillisecond;
  resilience.replica_hosts = {"r0", "r1", "r2"};
  replicated.bind_resilience(resilience);

  auto ref = replicated.put(to_bytes("phi record"), key);
  ASSERT_TRUE(ref.is_ok()) << ref.status().to_string();
  EXPECT_EQ(clock->now(), 1500 * kMillisecond);  // 500ms + 1s of backoff
  EXPECT_EQ(metrics->counter("hc.storage.replication.put.retries"), 2u);
  EXPECT_EQ(replicated.copies_of(*ref), 2u);  // r0 + freshly-restarted r2

  // After r1 restarts, anti-entropy backfills the missed copy.
  clock->advance_to(2 * kSecond);
  EXPECT_EQ(replicated.repair(), 1u);
  EXPECT_EQ(replicated.copies_of(*ref), 3u);
  EXPECT_EQ(to_string(replicated.get(*ref).value()), "phi record");
}

TEST(ReplicationChaos, ReadsRouteAroundCrashedReplicas) {
  auto clock = make_clock();
  crypto::KeyManagementService kms("tenant", Rng(190));
  auto key = kms.create_symmetric_key("storage");
  std::vector<std::unique_ptr<storage::DataLake>> lakes;
  for (int i = 0; i < 3; ++i) {
    lakes.push_back(std::make_unique<storage::DataLake>(kms, "storage",
                                                        Rng(191 + i)));
  }
  storage::ReplicatedDataLake replicated(
      {lakes[0].get(), lakes[1].get(), lakes[2].get()});

  fault::FaultPlan plan;
  plan.crash("r0", 1 * kSecond, 2 * kSecond);  // primary dies after the write
  storage::ReplicationResilience resilience;
  resilience.clock = clock;
  resilience.injector = fault::make_injector(plan, clock, Rng(556));
  resilience.replica_hosts = {"r0", "r1", "r2"};
  replicated.bind_resilience(resilience);

  auto ref = replicated.put(to_bytes("survives outage"), key);
  ASSERT_TRUE(ref.is_ok());
  EXPECT_EQ(replicated.copies_of(*ref), 3u);

  clock->advance_to(1 * kSecond);  // r0 inside its crash window
  EXPECT_FALSE(replicated.replica_available(0));
  EXPECT_EQ(to_string(replicated.get(*ref).value()), "survives outage");
  clock->advance_to(2 * kSecond);  // restarted
  EXPECT_TRUE(replicated.replica_available(0));
}

// ------------------------------------------------------- blockchain

class BlockchainChaos : public ::testing::Test {
 protected:
  BlockchainChaos() : clock_(make_clock()), network_(clock_, Rng(220)) {
    for (const char* peer : {"p1", "p2", "p3"}) {
      network_.set_link("p0", peer, net::LinkProfile::lan());
    }
  }

  std::unique_ptr<blockchain::PermissionedLedger> make_ledger(
      double max_unresponsive_fraction) {
    blockchain::LedgerConfig config;
    config.peers = {"p0", "p1", "p2", "p3"};
    config.max_unresponsive_fraction = max_unresponsive_fraction;
    auto ledger = std::make_unique<blockchain::PermissionedLedger>(
        config, clock_, nullptr, &network_, metrics_);
    EXPECT_TRUE(blockchain::register_hcls_contracts(*ledger).is_ok());
    return ledger;
  }

  Result<std::string> submit(blockchain::PermissionedLedger& ledger,
                             const std::string& ref) {
    return ledger.submit("provenance",
                         {{"action", "record_event"},
                          {"record_ref", ref},
                          {"event", "received"},
                          {"data_hash", "deadbeef"}},
                         "p0");
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  obs::MetricsPtr metrics_ = std::make_shared<obs::MetricsRegistry>();
};

TEST_F(BlockchainChaos, ToleratesConfiguredMinorityOutage) {
  // 4 peers, fraction 0.34 => floor(1.36) = 1 peer may be down, 3 required.
  fault::FaultPlan plan;
  plan.crash("p3", 0, 10 * kSecond);
  network_.set_fault_injector(fault::make_injector(plan, clock_, Rng(557)));
  auto ledger = make_ledger(0.34);

  ASSERT_TRUE(submit(*ledger, "ref-1").is_ok());  // 3 of 4 responsive
  auto receipt = ledger->commit_block();
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_TRUE(ledger->validate_chain().is_ok());
  EXPECT_GT(metrics_->counter("hc.blockchain.unresponsive_peer_msgs"), 0u);
}

TEST_F(BlockchainChaos, AbortedCommitReturnsBatchAndRecoversAfterRestart) {
  // Two peers crash *after* endorsement: the commit vote cannot reach the
  // required 3 peers, the batch goes back to the pool, and the same commit
  // succeeds once the hosts restart.
  SimTime outage_start = 10 * kMillisecond;
  SimTime outage_end = 5 * kSecond;
  fault::FaultPlan plan;
  plan.crash("p2", outage_start, outage_end);
  plan.crash("p3", outage_start, outage_end);
  network_.set_fault_injector(fault::make_injector(plan, clock_, Rng(558)));
  auto ledger = make_ledger(0.34);

  ASSERT_TRUE(submit(*ledger, "ref-1").is_ok());  // endorsed while all up
  EXPECT_EQ(ledger->pending_count(), 1u);

  clock_->advance_to(outage_start);
  auto aborted = ledger->commit_block();
  EXPECT_EQ(aborted.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ledger->pending_count(), 1u);  // batch returned, not lost
  EXPECT_EQ(metrics_->counter("hc.blockchain.commit_aborts"), 1u);

  clock_->advance_to(outage_end);
  auto receipt = ledger->commit_block();
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_EQ(receipt->transaction_count, 1u);
  EXPECT_EQ(ledger->pending_count(), 0u);
  EXPECT_TRUE(ledger->validate_chain().is_ok());
}

TEST_F(BlockchainChaos, SurvivesMessageLossWithEventualCommit) {
  // 10% loss on every consensus message plus a transient crash of one
  // peer; submit and commit retry until the quorum holds.
  fault::FaultPlan plan;
  plan.drop("p0", "", 0.10);
  plan.crash("p1", 50 * kMillisecond, 200 * kMillisecond);
  network_.set_fault_injector(fault::make_injector(plan, clock_, Rng(559)));
  auto ledger = make_ledger(0.34);

  Result<std::string> tx = Status(StatusCode::kUnavailable, "not submitted");
  for (int i = 0; i < 200 && !tx.is_ok(); ++i) {
    tx = submit(*ledger, "ref-loss");
    if (!tx.is_ok()) {
      ASSERT_EQ(tx.status().code(), StatusCode::kUnavailable);
      clock_->advance(10 * kMillisecond);
    }
  }
  ASSERT_TRUE(tx.is_ok()) << tx.status().to_string();

  Result<blockchain::CommitReceipt> receipt =
      Status(StatusCode::kUnavailable, "not committed");
  for (int i = 0; i < 200 && !receipt.is_ok(); ++i) {
    receipt = ledger->commit_block();
    if (!receipt.is_ok()) {
      ASSERT_EQ(receipt.status().code(), StatusCode::kUnavailable);
      clock_->advance(10 * kMillisecond);
    }
  }
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_EQ(ledger->chain().back().transactions.size(), 1u);
  EXPECT_TRUE(ledger->validate_chain().is_ok());
}

TEST_F(BlockchainChaos, DefaultFractionKeepsLegacyFaultObliviousBehaviour) {
  // fraction 1.0 (the default): even with every follower crashed, the
  // ledger keeps the historical cost-model-only semantics and commits.
  fault::FaultPlan plan;
  plan.crash("p1", 0).crash("p2", 0).crash("p3", 0);
  network_.set_fault_injector(fault::make_injector(plan, clock_, Rng(560)));
  auto ledger = make_ledger(1.0);
  ASSERT_TRUE(submit(*ledger, "ref-legacy").is_ok());
  EXPECT_TRUE(ledger->commit_block().is_ok());
}

// ------------------------------------------------------- registry failover

// Satellite: the full failover schedule, hand-computed. Two providers of
// the same category — "a/fast" (10ms, ranked first) and "b/slow" (50ms) —
// with a/fast's host crashed for the first 300ms. Breaker: threshold 2,
// cooldown 200ms, 1 probe success to close. Latency jitter is 0 and both
// availabilities are 1.0, so every timestamp below is exact:
//
//  call | t(start) | tried         | picked | attempts | t(end) | a/fast breaker
//  -----+----------+---------------+--------+----------+--------+---------------
//    1  |      0ms | a(fail), b    |   b    |    2     |   60ms | closed (1 fail)
//    2  |     60ms | a(fail), b    |   b    |    2     |  120ms | OPEN at 70ms
//    3  |    120ms | b (a skipped) |   b    |    1     |  170ms | open
//    4  |    170ms | b             |   b    |    1     |  220ms | open
//    5  |    220ms | b             |   b    |    1     |  270ms | open (270=cooldown edge)
//    6  |    270ms | a(probe fails @280), b | b | 2    |  330ms | RE-OPEN at 280ms
//    7  |    330ms | b             |   b    |    1     |  380ms | open
//    8  |    380ms | b             |   b    |    1     |  430ms | open
//    9  |    430ms | b             |   b    |    1     |  480ms | open (480=cooldown edge)
//   10  |    480ms | a(probe succeeds @490) | a | 1    |  490ms | CLOSED
//   11  |    490ms | a             |   a    |    1     |  500ms | closed
TEST(RegistryChaos, FailoverFollowsHandComputedPickSequence) {
  auto clock = make_clock();
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  services::ServiceRegistry registry(clock, Rng(330));
  registry.bind_metrics(metrics);

  fault::CircuitBreakerConfig breaker;
  breaker.failure_threshold = 2;
  breaker.open_cooldown = 200 * kMillisecond;
  breaker.half_open_successes = 1;
  registry.set_breaker_config(breaker);  // before registration: applies to both

  services::ServiceProfile fast;
  fast.name = "a/fast";
  fast.mean_latency = 10 * kMillisecond;
  fast.latency_jitter = 0;
  fast.availability = 1.0;
  services::ServiceProfile slow;
  slow.name = "b/slow";
  slow.mean_latency = 50 * kMillisecond;
  slow.latency_jitter = 0;
  slow.availability = 1.0;
  registry.register_service(fast);
  registry.register_service(slow);

  fault::FaultPlan plan;
  plan.crash("a/fast", 0, 300 * kMillisecond);
  registry.set_fault_injector(fault::make_injector(plan, clock, Rng(331)));

  struct Expected {
    const char* service;
    int attempts;
    SimTime end_time;
  };
  const Expected expected[] = {
      {"b/slow", 2, 60 * kMillisecond},  {"b/slow", 2, 120 * kMillisecond},
      {"b/slow", 1, 170 * kMillisecond}, {"b/slow", 1, 220 * kMillisecond},
      {"b/slow", 1, 270 * kMillisecond}, {"b/slow", 2, 330 * kMillisecond},
      {"b/slow", 1, 380 * kMillisecond}, {"b/slow", 1, 430 * kMillisecond},
      {"b/slow", 1, 480 * kMillisecond}, {"a/fast", 1, 490 * kMillisecond},
      {"a/fast", 1, 500 * kMillisecond},
  };

  Bytes request = to_bytes("extract");
  int call = 0;
  for (const Expected& step : expected) {
    ++call;
    auto brokered = registry.invoke_best(services::Category::kTextExtraction,
                                         request);
    ASSERT_TRUE(brokered.is_ok()) << "call " << call;
    EXPECT_EQ(brokered->service, step.service) << "call " << call;
    EXPECT_EQ(brokered->attempts, step.attempts) << "call " << call;
    EXPECT_EQ(clock->now(), step.end_time) << "call " << call;
  }

  EXPECT_EQ(registry.breaker_state("a/fast"), fault::BreakerState::kClosed);
  EXPECT_EQ(metrics->counter("hc.services.failovers"), 3u);       // calls 1, 2, 6
  EXPECT_EQ(metrics->counter("hc.services.invoke_failures"), 3u); // a/fast x3
  EXPECT_EQ(registry.stats("a/fast")->failures, 3u);
}

TEST(RegistryChaos, InjectedDelayStretchesObservedLatency) {
  auto clock = make_clock();
  services::ServiceRegistry registry(clock, Rng(332));
  services::ServiceProfile profile;
  profile.name = "a/steady";
  profile.mean_latency = 10 * kMillisecond;
  profile.latency_jitter = 0;
  profile.availability = 1.0;
  registry.register_service(profile);

  fault::FaultPlan plan;
  plan.delay("broker", "a/steady", 1.0, 25 * kMillisecond);
  registry.set_fault_injector(fault::make_injector(plan, clock, Rng(333)));

  auto result = registry.invoke("a/steady", to_bytes("x"));
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->latency, 35 * kMillisecond);  // 10ms call + 25ms injected
}

}  // namespace
}  // namespace hc
