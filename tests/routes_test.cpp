// Standard API routes through the full gateway pipeline.
#include <gtest/gtest.h>

#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/enhanced_client.h"
#include "platform/routes.h"

namespace hc::platform {
namespace {

class RoutesFixture : public ::testing::Test {
 protected:
  RoutesFixture()
      : clock_(make_clock()), network_(clock_, Rng(150)), rng_(151) {
    InstanceConfig config;
    config.name = "cloud";
    cloud_ = std::make_unique<HealthCloudInstance>(config, clock_, network_);
    network_.set_link("client", "cloud", net::LinkProfile::wan());
    gateway_ = std::make_unique<ApiGateway>(*cloud_);
    install_standard_routes(*gateway_, *cloud_);

    // An analyst with read access to everything under the standard tree.
    tenant_ = cloud_->rbac().register_tenant("mercy").value();
    analyst_ = cloud_->rbac().add_user(tenant_.id, "analyst").value();
    EXPECT_TRUE(cloud_->rbac()
                    .assign_role(analyst_, tenant_.default_env, rbac::Role::kAnalyst)
                    .is_ok());
    for (const char* prefix : {"ingestion/", "datalake/", "export/", "kb/", "audit/"}) {
      EXPECT_TRUE(cloud_->rbac()
                      .grant_permission(tenant_.id, rbac::Role::kAnalyst, prefix,
                                        rbac::Permission::kRead)
                      .is_ok());
    }

    // KBs + one ingested record to query.
    services::KnowledgeBaseConfig kb;
    kb.name = "drugbank";
    cloud_->knowledge().add_knowledge_base(kb, {{"drug-1", "targets:abc"}});

    EnhancedClientConfig client_config;
    client_config.name = "client";
    EnhancedClient client(client_config, *cloud_, "clinic");
    fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "b", 1);
    (void)cloud_->ledger().submit_and_commit(
        "consent",
        {{"action", "grant"},
         {"patient", std::get<fhir::Patient>(bundle.resources[0]).id},
         {"group", "study"}},
        "provider");
    upload_ = client.upload_bundle(bundle, "study")->upload_id;
    auto outcome = cloud_->ingestion().process_next();
    reference_ = outcome->reference_id;
  }

  Result<ApiResponse> get(const std::string& resource) {
    ApiRequest request;
    request.user_id = analyst_;
    request.environment = tenant_.default_env;
    request.scope = tenant_.id;
    request.resource = resource;
    return gateway_->handle(request);
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  Rng rng_;
  std::unique_ptr<HealthCloudInstance> cloud_;
  std::unique_ptr<ApiGateway> gateway_;
  rbac::TenantInfo tenant_;
  std::string analyst_;
  std::string upload_;
  std::string reference_;
};

TEST_F(RoutesFixture, IngestionStatusRoute) {
  auto response = get("ingestion/status/" + upload_);
  ASSERT_TRUE(response.is_ok()) << response.status().to_string();
  EXPECT_TRUE(to_string(response->body).starts_with("stored "));
  EXPECT_EQ(get("ingestion/status/ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(RoutesFixture, DatalakeRecordRoute) {
  auto response = get("datalake/records/" + reference_);
  ASSERT_TRUE(response.is_ok());
  auto bundle = fhir::parse_bundle(response->body);
  ASSERT_TRUE(bundle.is_ok());
  EXPECT_EQ(get("datalake/records/ref-ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(RoutesFixture, ExportRoute) {
  auto response = get("export/anonymized/study?k=1");
  ASSERT_TRUE(response.is_ok()) << response.status().to_string();
  EXPECT_TRUE(to_string(response->body).starts_with("rows="));
  EXPECT_EQ(get("export/anonymized/ghost-study?k=2").status().code(),
            StatusCode::kNotFound);
}

TEST_F(RoutesFixture, KnowledgeBaseRoute) {
  auto response = get("kb/drugbank/drug-1");
  ASSERT_TRUE(response.is_ok());
  EXPECT_EQ(to_string(response->body), "targets:abc");
  EXPECT_EQ(get("kb/ghost-base/x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(get("kb/no-key-given").status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RoutesFixture, AuditLifecycleRoute) {
  auto response = get("audit/lifecycle/" + reference_);
  ASSERT_TRUE(response.is_ok());
  EXPECT_EQ(to_string(response->body), "received,anonymized");
  EXPECT_EQ(get("audit/lifecycle/ref-ghost").status().code(), StatusCode::kNotFound);
}

TEST_F(RoutesFixture, RoutesStillGuardedByRbac) {
  auto intruder = cloud_->rbac().add_user(tenant_.id, "intruder").value();
  ApiRequest request;
  request.user_id = intruder;
  request.environment = tenant_.default_env;
  request.scope = tenant_.id;
  request.resource = "datalake/records/" + reference_;
  EXPECT_EQ(gateway_->handle(request).status().code(), StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace hc::platform
