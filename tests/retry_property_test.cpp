// Property coverage for RetryPolicy / with_retry across seeds (ISSUE
// satellite): the backoff schedule is a pure function of (policy, seed),
// monotonically non-decreasing, and both the attempt and sim-time budgets
// hold for every seed-derived policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/resilience.h"

namespace hc::fault {
namespace {

// Policy derived deterministically from the seed so each instantiation
// exercises a different (initial, cap, jitter, budget) corner.
RetryPolicy policy_for(std::uint64_t seed) {
  Rng rng(seed * 7919 + 1);
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(rng.uniform_int(2, 12));
  policy.initial_backoff = rng.uniform_int(1, 20) * kMillisecond;
  policy.multiplier = 2.0;
  policy.max_backoff = policy.initial_backoff * rng.uniform_int(4, 64);
  policy.jitter = rng.uniform(0.0, 1.0);  // <= 1.0: doubling still dominates
  return policy;
}

std::vector<SimTime> jittered_schedule(const RetryPolicy& policy,
                                       std::uint64_t seed, int attempts) {
  Rng rng(seed);
  std::vector<SimTime> schedule;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    schedule.push_back(policy.backoff_with_jitter(attempt, rng));
  }
  return schedule;
}

class RetryProperty : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const { return static_cast<std::uint64_t>(GetParam()); }
};

TEST_P(RetryProperty, ScheduleIsSeedDeterministic) {
  RetryPolicy policy = policy_for(seed());
  auto first = jittered_schedule(policy, seed(), 30);
  auto second = jittered_schedule(policy, seed(), 30);
  EXPECT_EQ(first, second);  // same (policy, seed) -> identical schedule
}

TEST_P(RetryProperty, BaseScheduleIsMonotoneNonDecreasingAndCapped) {
  RetryPolicy policy = policy_for(seed());
  SimTime previous = 0;
  for (int attempt = 1; attempt <= 40; ++attempt) {
    SimTime backoff = policy.backoff_for(attempt);
    EXPECT_GE(backoff, previous) << "attempt " << attempt;
    EXPECT_LE(backoff, policy.max_backoff);
    EXPECT_GE(backoff, std::min(policy.initial_backoff, policy.max_backoff));
    previous = backoff;
  }
}

TEST_P(RetryProperty, JitteredScheduleIsMonotoneWhileGrowing) {
  // With multiplier 2 and jitter <= 1, the next base (2b) always clears the
  // worst-case jittered previous value ((1+j)b) — so the jittered schedule
  // is non-decreasing everywhere the base is still doubling. (At the cap,
  // independent jitter draws may wobble; that region is excluded.)
  RetryPolicy policy = policy_for(seed());
  auto schedule = jittered_schedule(policy, seed() + 500, 40);
  for (int attempt = 1; attempt < 40; ++attempt) {
    if (policy.backoff_for(attempt + 1) >= policy.max_backoff) break;
    EXPECT_GE(schedule[static_cast<std::size_t>(attempt)],
              schedule[static_cast<std::size_t>(attempt - 1)])
        << "attempt " << attempt;
  }
}

TEST_P(RetryProperty, JitterIsBoundedByItsFraction) {
  RetryPolicy policy = policy_for(seed());
  Rng rng(seed() + 1000);
  for (int attempt = 1; attempt <= 30; ++attempt) {
    SimTime base = policy.backoff_for(attempt);
    SimTime jittered = policy.backoff_with_jitter(attempt, rng);
    EXPECT_GE(jittered, base);
    EXPECT_LE(jittered,
              base + static_cast<SimTime>(policy.jitter * static_cast<double>(base)));
  }
}

TEST_P(RetryProperty, AttemptBudgetHoldsExactly) {
  RetryPolicy policy = policy_for(seed());
  policy.total_budget = std::numeric_limits<SimTime>::max();  // isolate count
  auto clock = make_clock();
  Rng rng(seed() + 2000);
  int calls = 0;
  Status out = with_retry(policy, *clock, rng, [&]() -> Status {
    ++calls;
    return Status(StatusCode::kUnavailable, "always down");
  });
  EXPECT_FALSE(out.is_ok());
  // With an unlimited time budget every permitted attempt is spent.
  EXPECT_EQ(calls, policy.max_attempts);
}

TEST_P(RetryProperty, TimeBudgetIsNeverExceeded) {
  RetryPolicy policy = policy_for(seed());
  policy.max_attempts = 1000;  // let the time budget be the binding one
  policy.total_budget = policy.initial_backoff * 10;
  auto clock = make_clock();
  Rng rng(seed() + 3000);
  SimTime start = clock->now();
  (void)with_retry(policy, *clock, rng, [&]() -> Status {
    return Status(StatusCode::kUnavailable, "always down");
  });
  EXPECT_LE(clock->now() - start, policy.total_budget);
}

TEST_P(RetryProperty, RetryTraceIsReproducible) {
  // The full retry trace — when each attempt ran on the sim clock — must
  // replay identically for identical seeds.
  RetryPolicy policy = policy_for(seed());
  auto trace = [&](std::uint64_t rng_seed) {
    auto clock = make_clock();
    Rng rng(rng_seed);
    std::vector<SimTime> at;
    (void)with_retry(policy, *clock, rng, [&]() -> Status {
      at.push_back(clock->now());
      return Status(StatusCode::kUnavailable, "always down");
    });
    return at;
  };
  EXPECT_EQ(trace(seed()), trace(seed()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetryProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace hc::fault
