#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/status.h"

namespace hc {
namespace {

// ---------------------------------------------------------------- bytes

TEST(Bytes, RoundTripString) {
  const std::string s = "protected health information";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, HexEncodeDecode) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(b), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), b);
  EXPECT_EQ(hex_decode("0001ABFF"), b);
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(hex_encode({}), "");
  EXPECT_TRUE(hex_decode("").empty());
}

TEST(Bytes, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(constant_time_equal({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(constant_time_equal({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(Bytes, SecureWipeClearsBuffer) {
  Bytes b = to_bytes("secret key material");
  secure_wipe(b);
  EXPECT_TRUE(b.empty());
}

// ---------------------------------------------------------------- status

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kPermissionDenied, "nope");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "PERMISSION_DENIED: nope");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status(StatusCode::kNotFound, "missing");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
  EXPECT_THROW(r.value(), BadResultAccess);
}

TEST(Result, ConstructingFromOkStatusBecomesInternalError) {
  Result<int> r = Status::ok();
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

// ---------------------------------------------------------------- clock

TEST(SimClock, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(5 * kMillisecond);
  EXPECT_EQ(clock.now(), 5000);
  clock.advance_to(kSecond);
  EXPECT_EQ(clock.now(), 1000000);
}

TEST(SimClock, RejectsBackwardsTime) {
  SimClock clock(100);
  EXPECT_THROW(clock.advance(-1), std::invalid_argument);
  EXPECT_THROW(clock.advance_to(50), std::invalid_argument);
}

TEST(SimClock, FormatDuration) {
  EXPECT_EQ(format_duration(17), "17us");
  EXPECT_EQ(format_duration(1500), "1.500ms");
  EXPECT_EQ(format_duration(2 * kSecond + kSecond / 2), "2.500s");
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(5, -5), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BytesLengthAndVariety) {
  Rng rng(7);
  auto b = rng.bytes(1024);
  EXPECT_EQ(b.size(), 1024u);
  std::set<std::uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 100u);  // essentially certain for random bytes
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(123);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(123);
  (void)b.engine()();  // consume what fork consumed
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform_int(0, 1 << 30) != a.uniform_int(0, 1 << 30)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(42);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ExponentialMean) {
  Rng rng(42);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(42);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfSampler, RankZeroMostPopular) {
  Rng rng(42);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
  // Every sample in range (counts vector indexing would have thrown otherwise).
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 50000);
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- ids

TEST(IdGenerator, UuidFormat) {
  IdGenerator gen;
  std::string id = gen.next_uuid();
  ASSERT_EQ(id.size(), 36u);
  EXPECT_EQ(id[8], '-');
  EXPECT_EQ(id[13], '-');
  EXPECT_EQ(id[18], '-');
  EXPECT_EQ(id[23], '-');
  EXPECT_EQ(id[14], '4');  // version nibble
}

TEST(IdGenerator, UuidsDistinct) {
  IdGenerator gen;
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(gen.next_uuid());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(IdGenerator, LabeledIdsMonotonic) {
  IdGenerator gen;
  EXPECT_EQ(gen.next_labeled("patient"), "patient-000000");
  EXPECT_EQ(gen.next_labeled("record"), "record-000001");
}

// ---------------------------------------------------------------- log

TEST(LogService, RecordsCarryTimeAndComponent) {
  auto clock = make_clock();
  LogService log(clock);
  log.info("ingestion", "bundle_received", "bundle-1");
  clock->advance(10 * kMillisecond);
  log.error("ingestion", "validation_failed", "bundle-2");

  ASSERT_EQ(log.records().size(), 2u);
  EXPECT_EQ(log.records()[0].time, 0);
  EXPECT_EQ(log.records()[1].time, 10 * kMillisecond);
  EXPECT_EQ(log.records()[1].level, LogLevel::kError);
}

TEST(LogService, QueriesByComponentAndEvent) {
  auto clock = make_clock();
  LogService log(clock);
  log.info("gateway", "request", "a");
  log.info("kms", "key_access", "b");
  log.audit("kms", "key_access", "c");

  EXPECT_EQ(log.by_component("kms").size(), 2u);
  EXPECT_EQ(log.by_event("key_access").size(), 2u);
  EXPECT_EQ(log.count(LogLevel::kAudit), 1u);
}

TEST(LogService, ScrubberRedactsSensitiveDetail) {
  auto clock = make_clock();
  LogService log(clock);
  log.set_scrubber([](const std::string&) { return std::string("[scrubbed]"); });
  log.info("ingestion", "bundle_received", "ssn=123-45-6789");
  EXPECT_EQ(log.records()[0].detail, "[scrubbed]");
}

}  // namespace
}  // namespace hc
