// Cross-module property and failure-injection suites: randomized workloads
// asserting the platform's core invariants hold for *every* seed, not just
// the happy paths the unit tests pin down.
#include <gtest/gtest.h>

#include <set>

#include "blockchain/contracts.h"
#include "cache/cache.h"
#include "crypto/redactable.h"
#include "fhir/synthetic.h"
#include "net/secure_channel.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"

namespace hc {
namespace {

// ------------------------------------------------------- secure channel

class ChannelPayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelPayloadSweep, RoundTripsAnyPayload) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(GetParam() + 1));
  network.set_link("a", "b", net::LinkProfile::lan());
  Rng rng(GetParam() + 2);
  auto keys = crypto::generate_keypair(rng);
  auto channel =
      net::SecureChannel::establish(network, "a", "b", keys.pub, keys.priv, rng);
  ASSERT_TRUE(channel.is_ok());

  Bytes payload = rng.bytes(GetParam());
  auto delivered = channel->transmit(payload);
  ASSERT_TRUE(delivered.is_ok());
  EXPECT_EQ(*delivered, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChannelPayloadSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 255, 4096, 65536));

// ------------------------------------------------------------ blockchain

class LedgerSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(LedgerSeedSweep, ChainAlwaysValidatesUnderRandomWorkload) {
  auto clock = make_clock();
  blockchain::LedgerConfig config;
  config.peers = {"p0", "p1", "p2"};
  config.max_block_transactions = 8;
  blockchain::PermissionedLedger ledger(config, clock);
  ASSERT_TRUE(blockchain::register_hcls_contracts(ledger).is_ok());

  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::size_t accepted = 0;
  for (int i = 0; i < 300; ++i) {
    switch (rng.uniform_int(0, 3)) {
      case 0:
        accepted += ledger
                        .submit("provenance",
                                {{"action", "record_event"},
                                 {"record_ref", "r" + std::to_string(rng.uniform_int(0, 20))},
                                 {"event", rng.bernoulli(0.8) ? "received" : "deleted"},
                                 {"data_hash", "h"}},
                                "peer")
                        .is_ok();
        break;
      case 1:
        accepted += ledger
                        .submit("consent",
                                {{"action", rng.bernoulli(0.6) ? "grant" : "revoke"},
                                 {"patient", "p" + std::to_string(rng.uniform_int(0, 10))},
                                 {"group", "g" + std::to_string(rng.uniform_int(0, 3))}},
                                "peer")
                        .is_ok();
        break;
      case 2:
        accepted += ledger
                        .submit("malware",
                                {{"action", "report"},
                                 {"record_ref", "r" + std::to_string(i)},
                                 {"verdict", rng.bernoulli(0.9) ? "clean" : "infected"},
                                 {"sender", "s" + std::to_string(rng.uniform_int(0, 5))}},
                                "peer")
                        .is_ok();
        break;
      default:
        accepted += ledger
                        .submit("identity",
                                {{"action", rng.bernoulli(0.7) ? "register" : "rotate"},
                                 {"did", "did:" + std::to_string(rng.uniform_int(0, 15))},
                                 {"key_fingerprint", "fp" + std::to_string(i)}},
                                "peer")
                        .is_ok();
    }
    if (rng.bernoulli(0.2)) (void)ledger.commit_block();
  }
  while (ledger.pending_count() > 0) {
    if (!ledger.commit_block().is_ok()) break;
  }

  // Whatever mix of accepted/rejected transactions occurred, the chain is
  // internally consistent and replaying it yields the same world state.
  EXPECT_TRUE(ledger.validate_chain().is_ok());
  EXPECT_GT(accepted, 0u);

  std::size_t committed = 0;
  for (const auto& block : ledger.chain()) committed += block.transactions.size();
  EXPECT_EQ(committed, accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerSeedSweep, ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------ redactable

class RedactionSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(RedactionSeedSweep, AnyRedactionSubsetStillVerifies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  auto keys = crypto::generate_keypair(rng);

  std::vector<Bytes> parts;
  std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 24));
  for (std::size_t i = 0; i < n; ++i) {
    parts.push_back(rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 64))));
  }
  auto document = crypto::redactable_sign(keys.priv, parts, rng);

  // Redact a random subset (possibly everything).
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.5)) crypto::redact(document, i);
  }
  EXPECT_EQ(crypto::redactable_verify(keys.pub, document),
            crypto::RedactableVerdict::kValid);

  // Un-redacting (restoring content without the right salt) must fail.
  for (auto& part : document.parts) {
    if (!part.content) {
      part.content = parts[0];
      part.salt = rng.bytes(32);
      break;
    }
  }
  if (crypto::intact_count(document) > 0) {
    EXPECT_NE(crypto::redactable_verify(keys.pub, document),
              crypto::RedactableVerdict::kValid);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedactionSeedSweep, ::testing::Range(1, 9));

// --------------------------------------------------- ingestion fuzzing

class IngestionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(IngestionFuzz, CorruptUploadsNeverReachTheLake) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(1));
  platform::InstanceConfig config;
  config.name = "cloud";
  config.seed = static_cast<std::uint64_t>(GetParam());
  platform::HealthCloudInstance cloud(config, clock, network);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  auto key = cloud.issue_client_keypair("fuzzer");
  auto pub = cloud.kms().public_key(key).value();

  int stored = 0, rejected = 0;
  for (int i = 0; i < 30; ++i) {
    // Random garbage, occasionally valid-JSON-but-invalid-bundle payloads.
    Bytes payload;
    if (rng.bernoulli(0.3)) {
      payload = to_bytes(R"({"resourceType":"Bundle","id":"x","entry":[)" +
                         std::string(rng.bernoulli(0.5) ? "{}" : "") + "]}");
    } else {
      payload = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 300)));
    }
    auto envelope = crypto::envelope_seal(pub, payload, rng);
    auto receipt = cloud.ingestion().upload(envelope, "fuzzer", "study", key);
    ASSERT_TRUE(receipt.is_ok());
    auto outcome = cloud.ingestion().process_next();
    ASSERT_TRUE(outcome.is_ok());
    if (outcome->stored) {
      ++stored;
    } else {
      ++rejected;
      // Status reflects the failure with a reason.
      auto status = cloud.status_tracker().status(receipt->upload_id).value();
      EXPECT_EQ(status.stage, storage::IngestionStage::kFailed);
      EXPECT_FALSE(status.failure_reason.empty());
    }
  }
  EXPECT_EQ(stored, 0) << "garbage should never be stored";
  EXPECT_EQ(rejected, 30);
  EXPECT_EQ(cloud.lake().object_count(), 0u);
  // The platform survived all of it and its ledger is intact.
  EXPECT_TRUE(cloud.ledger().validate_chain().is_ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IngestionFuzz, ::testing::Values(1, 2, 3));

// -------------------------------------------------- cache TTL/version fuzz

TEST(CacheProperty, TtlAndVersionInteractConsistently) {
  auto clock = make_clock();
  cache::Cache cache(32, cache::EvictionPolicy::kLru, clock);
  Rng rng(77);

  for (int i = 0; i < 3000; ++i) {
    std::string key = "k" + std::to_string(rng.uniform_int(0, 40));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        cache.put(key, to_bytes("v"), rng.bernoulli(0.5) ? 2 * kMillisecond : 0,
                  static_cast<std::uint64_t>(rng.uniform_int(1, 10)));
        break;
      case 1: {
        auto min_version = rng.bernoulli(0.5)
                               ? std::optional<std::uint64_t>(
                                     static_cast<std::uint64_t>(rng.uniform_int(1, 10)))
                               : std::nullopt;
        auto entry = cache.get(key, min_version);
        if (entry && min_version) {
          // Invariant: a returned entry always satisfies the demanded version.
          EXPECT_GE(entry->version, *min_version);
        }
        break;
      }
      default:
        clock->advance(kMillisecond);
    }
    ASSERT_LE(cache.size(), 32u);
  }
}

// ----------------------------------------------- client offline invariants

TEST(ClientProperty, RandomConnectivityNeverLosesUploads) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(1));
  platform::InstanceConfig config;
  config.name = "cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("phone", "cloud", net::LinkProfile::wan());

  platform::EnhancedClientConfig client_config;
  client_config.name = "phone";
  platform::EnhancedClient phone(client_config, cloud, "app");

  Rng rng(55);
  std::size_t submitted = 0;
  for (int i = 0; i < 40; ++i) {
    phone.set_connected(rng.bernoulli(0.5));
    fhir::Bundle bundle =
        fhir::make_synthetic_bundle(rng, "b" + std::to_string(i),
                                    static_cast<std::size_t>(i));
    (void)cloud.ledger().submit_and_commit(
        "consent",
        {{"action", "grant"},
         {"patient", std::get<fhir::Patient>(bundle.resources[0]).id},
         {"group", "study"}},
        "provider");
    ASSERT_TRUE(phone.upload_bundle(bundle, "study").is_ok());
    ++submitted;
    if (rng.bernoulli(0.3)) {
      phone.set_connected(true);
      ASSERT_TRUE(phone.sync().is_ok());
    }
  }
  phone.set_connected(true);
  ASSERT_TRUE(phone.sync().is_ok());
  EXPECT_EQ(phone.pending_uploads(), 0u);

  // Every upload either stored or terminally rejected — none lost.
  EXPECT_EQ(cloud.ingestion().process_all(), submitted);
}

}  // namespace
}  // namespace hc
