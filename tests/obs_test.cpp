// hc::obs core: histogram bucketing and quantiles, counter/gauge
// semantics, registry merge, and TraceSpan sim-clock timing. Every
// expectation here is exact — observations are hand-built distributions
// on the deterministic SimClock, never wall time.
#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hc::obs {
namespace {

// ------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({10.0, 20.0});
  ASSERT_EQ(h.counts.size(), 3u);  // two bounded buckets + overflow

  h.observe(10.0);  // on the edge -> first bucket (le 10)
  h.observe(10.5);  // just past -> second bucket (le 20)
  h.observe(20.0);  // on the edge -> second bucket
  h.observe(20.5);  // past the last bound -> overflow
  h.observe(0.0);   // nonnegative floor -> first bucket

  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 61.0);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 20.5);
}

TEST(Histogram, ExactPercentilesOnUniformDistribution) {
  // Deciles 10..100; observing the integers 1..100 puts exactly ten
  // samples in every bucket, so interpolation lands on integer ranks.
  Histogram h({10, 20, 30, 40, 50, 60, 70, 80, 90, 100});
  for (int v = 1; v <= 100; ++v) h.observe(static_cast<double>(v));

  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.p50(), 50.0);
  EXPECT_DOUBLE_EQ(h.p95(), 95.0);
  EXPECT_DOUBLE_EQ(h.p99(), 99.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);    // clamped to observed min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);  // clamped to observed max
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  Histogram h({10.0, 100.0});
  h.observe(42.0);
  EXPECT_DOUBLE_EQ(h.p50(), 42.0);
  EXPECT_DOUBLE_EQ(h.p95(), 42.0);
  EXPECT_DOUBLE_EQ(h.p99(), 42.0);
}

TEST(Histogram, OverflowBucketInterpolatesTowardObservedMax) {
  Histogram h({10.0});
  h.observe(5.0);
  h.observe(1000.0);  // overflow sample
  // rank 2 lands in the overflow bucket, whose upper edge is the max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);
}

TEST(Histogram, EmptyHistogramYieldsZeros) {
  Histogram h({1.0, 2.0});
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, MergeCombinesBucketwise) {
  Histogram a({10.0, 20.0});
  Histogram b({10.0, 20.0});
  a.observe(5.0);
  a.observe(15.0);
  b.observe(15.0);
  b.observe(25.0);

  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.counts[0], 1u);
  EXPECT_EQ(a.counts[1], 2u);
  EXPECT_EQ(a.counts[2], 1u);
  EXPECT_DOUBLE_EQ(a.sum, 60.0);
  EXPECT_DOUBLE_EQ(a.min, 5.0);
  EXPECT_DOUBLE_EQ(a.max, 25.0);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  Histogram a({10.0});
  Histogram b({20.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, DefaultLatencyBoundsAreAscending) {
  const auto& bounds = default_latency_bounds_us();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// -------------------------------------------------------------- registry

TEST(MetricsRegistry, CountersAreMonotonic) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("hc.test.count"), 0u);  // absent reads as zero
  reg.add("hc.test.count");
  reg.add("hc.test.count", 4);
  EXPECT_EQ(reg.counter("hc.test.count"), 5u);
  reg.add("hc.test.count", 0);  // no-op delta still legal
  EXPECT_EQ(reg.counter("hc.test.count"), 5u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  EXPECT_DOUBLE_EQ(reg.gauge("hc.test.ratio"), 0.0);
  reg.set_gauge("hc.test.ratio", 0.25);
  reg.set_gauge("hc.test.ratio", 0.75);
  EXPECT_DOUBLE_EQ(reg.gauge("hc.test.ratio"), 0.75);
}

TEST(MetricsRegistry, ObserveCreatesHistogramWithRequestedBounds) {
  MetricsRegistry reg;
  std::vector<double> bounds{1.0, 2.0};
  reg.observe("hc.test.lat_us", 1.5, "us", &bounds);
  reg.observe("hc.test.lat_us", 0.5);  // bounds only apply on first touch

  const Histogram* h = reg.histogram("hc.test.lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds, bounds);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(reg.histogram("hc.test.absent"), nullptr);
}

TEST(MetricsRegistry, NameReuseWithDifferentTypeThrows) {
  MetricsRegistry reg;
  reg.add("hc.test.metric");
  EXPECT_THROW(reg.set_gauge("hc.test.metric", 1.0), std::invalid_argument);
  EXPECT_THROW(reg.observe("hc.test.metric", 1.0), std::invalid_argument);
}

TEST(MetricsRegistry, MergeAddsCountersOverwritesGaugesMergesHistograms) {
  MetricsRegistry a;
  a.add("hc.test.count", 2);
  a.set_gauge("hc.test.gauge", 1.0);
  a.observe("hc.test.lat_us", 10.0);
  a.add("hc.test.only_a");

  MetricsRegistry b;
  b.add("hc.test.count", 3);
  b.set_gauge("hc.test.gauge", 9.0);
  b.observe("hc.test.lat_us", 30.0);
  b.add("hc.test.only_b", 7);

  a.merge(b);
  EXPECT_EQ(a.counter("hc.test.count"), 5u);
  EXPECT_DOUBLE_EQ(a.gauge("hc.test.gauge"), 9.0);
  const Histogram* h = a.histogram("hc.test.lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 40.0);
  EXPECT_EQ(a.counter("hc.test.only_a"), 1u);
  EXPECT_EQ(a.counter("hc.test.only_b"), 7u);
  EXPECT_EQ(a.size(), 5u);
}

TEST(MetricsRegistry, MergeRejectsTypeAndUnitMismatch) {
  MetricsRegistry counter_reg;
  counter_reg.add("hc.test.metric");
  MetricsRegistry gauge_reg;
  gauge_reg.set_gauge("hc.test.metric", 1.0);
  EXPECT_THROW(counter_reg.merge(gauge_reg), std::invalid_argument);

  MetricsRegistry bytes_reg;
  bytes_reg.add("hc.test.volume", 1, "bytes");
  MetricsRegistry unitless_reg;
  unitless_reg.add("hc.test.volume", 1, "1");
  EXPECT_THROW(bytes_reg.merge(unitless_reg), std::invalid_argument);
}

TEST(MetricsRegistry, MergeOfEmptyRegistriesIsIdentity) {
  MetricsRegistry a;
  MetricsRegistry empty;
  a.merge(empty);
  EXPECT_TRUE(a.empty());

  a.add("hc.test.count", 3);
  a.merge(empty);
  EXPECT_EQ(a.counter("hc.test.count"), 3u);

  empty.merge(a);  // merging into empty copies everything over
  EXPECT_EQ(empty.counter("hc.test.count"), 3u);
}

TEST(MetricsRegistry, ExportOrderIsLexicographic) {
  MetricsRegistry reg;
  reg.add("hc.z.last");
  reg.add("hc.a.first");
  reg.add("hc.m.middle");
  std::vector<std::string> names;
  for (const auto& [name, metric] : reg.metrics()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"hc.a.first", "hc.m.middle", "hc.z.last"}));
}

// ------------------------------------------------------------- tracespan

TEST(TraceSpan, RecordsElapsedSimTimeOnDestruction) {
  MetricsRegistry reg;
  ClockPtr clock = make_clock();
  {
    TraceSpan span(&reg, clock.get(), "hc.test.span_us");
    clock->advance(250);
  }
  const Histogram* h = reg.histogram("hc.test.span_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_DOUBLE_EQ(h->sum, 250.0);
}

TEST(TraceSpan, FinishIsIdempotent) {
  MetricsRegistry reg;
  ClockPtr clock = make_clock();
  TraceSpan span(&reg, clock.get(), "hc.test.span_us");
  clock->advance(100);
  EXPECT_EQ(span.finish(), 100);
  clock->advance(900);  // after finish(), further time is not attributed
  EXPECT_EQ(span.finish(), 100);
  EXPECT_EQ(reg.histogram("hc.test.span_us")->count, 1u);
}

TEST(TraceSpan, ElapsedReadsWithoutRecording) {
  MetricsRegistry reg;
  ClockPtr clock = make_clock();
  TraceSpan span(&reg, clock.get(), "hc.test.span_us");
  clock->advance(42);
  EXPECT_EQ(span.elapsed(), 42);
  EXPECT_EQ(reg.histogram("hc.test.span_us"), nullptr);
}

TEST(TraceSpan, NullRegistryOrClockIsNoop) {
  ClockPtr clock = make_clock();
  {
    TraceSpan span(nullptr, clock.get(), "hc.test.span_us");
    clock->advance(10);
    EXPECT_EQ(span.finish(), 10);  // timing still works, nothing recorded
  }
  MetricsRegistry reg;
  {
    TraceSpan span(&reg, nullptr, "hc.test.span_us");
  }
  EXPECT_TRUE(reg.empty());
}

// -------------------------------------------------------------- wallspan

TEST(WallSpan, RecordsElapsedWallTimeOnDestruction) {
  MetricsRegistry reg;
  {
    WallSpan span(&reg, "hc.test.kernel_wall_us");
  }
  const Histogram* h = reg.histogram("hc.test.kernel_wall_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_GE(h->sum, 0.0);  // wall time; only non-negativity is deterministic
}

TEST(WallSpan, FinishIsIdempotent) {
  MetricsRegistry reg;
  WallSpan span(&reg, "hc.test.kernel_wall_us");
  double first = span.finish();
  EXPECT_GE(first, 0.0);
  EXPECT_DOUBLE_EQ(span.finish(), first);  // frozen at first finish()
  EXPECT_EQ(reg.histogram("hc.test.kernel_wall_us")->count, 1u);
}

TEST(WallSpan, ElapsedReadsWithoutRecording) {
  MetricsRegistry reg;
  WallSpan span(&reg, "hc.test.kernel_wall_us");
  EXPECT_GE(span.elapsed_us(), 0.0);
  EXPECT_EQ(reg.histogram("hc.test.kernel_wall_us"), nullptr);
}

TEST(WallSpan, NullRegistryIsNoop) {
  {
    WallSpan span(nullptr, "hc.test.kernel_wall_us");
    EXPECT_GE(span.finish(), 0.0);  // timing still works, nothing recorded
  }
}

}  // namespace
}  // namespace hc::obs
