// Unit suite for the QoS & scheduling layer (hc::sched): token-bucket
// conformance, the hand-computed deficit-round-robin drain order the
// WeightedFairQueue contract pins, deadline/overload shedding, the AIMD
// headroom walk, and the deterministic batch plan. Run with `ctest -L
// sched` or the check-sched target.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "sched/sched.h"

namespace hc::sched {
namespace {

// --- Token buckets ---------------------------------------------------------

TEST(TokenBucket, GrantsUpToCapacityThenDenies) {
  ClockPtr clock = make_clock();
  TokenBucket bucket({/*rate_per_sec=*/10.0, /*capacity=*/3.0}, clock);
  EXPECT_EQ(bucket.acquire(), Grant::kGranted);
  EXPECT_EQ(bucket.acquire(), Grant::kGranted);
  EXPECT_EQ(bucket.acquire(), Grant::kGranted);
  EXPECT_EQ(bucket.acquire(), Grant::kDenied);
}

TEST(TokenBucket, RefillsFromElapsedSimTimeAndCapsAtCapacity) {
  ClockPtr clock = make_clock();
  TokenBucket bucket({/*rate_per_sec=*/10.0, /*capacity=*/5.0}, clock);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(bucket.acquire(), Grant::kGranted);
  EXPECT_EQ(bucket.acquire(), Grant::kDenied);

  clock->advance(100 * kMillisecond);  // 1 token at 10/s
  EXPECT_EQ(bucket.acquire(), Grant::kGranted);
  EXPECT_EQ(bucket.acquire(), Grant::kDenied);

  clock->advance(kMinute);  // far more than capacity accrues...
  EXPECT_DOUBLE_EQ(bucket.available(), 5.0);  // ...but caps at the depth
}

TEST(TokenBucket, ConformanceOverAnyIntervalIsCapacityPlusRateTimesElapsed) {
  // The bucket's contract: over [t0, t1] it grants at most
  // capacity + rate * (t1 - t0) tokens. Walk a random schedule of advances
  // and acquire attempts (seeded: reruns identical) and check the bound.
  ClockPtr clock = make_clock();
  const double rate = 50.0, capacity = 12.0;
  TokenBucket bucket({rate, capacity}, clock);
  Rng rng(4242);

  double granted = 0.0;
  const SimTime t0 = clock->now();
  for (int step = 0; step < 2000; ++step) {
    if (rng.bernoulli(0.3)) clock->advance(rng.uniform_int(0, 5 * kMillisecond));
    double want = static_cast<double>(rng.uniform_int(1, 3));
    if (bucket.acquire(want) != Grant::kDenied) granted += want;
    double elapsed_sec = static_cast<double>(clock->now() - t0) /
                         static_cast<double>(kSecond);
    EXPECT_LE(granted, capacity + rate * elapsed_sec + 1e-9)
        << "conformance violated at step " << step;
  }
  EXPECT_GT(granted, 0.0);  // the walk actually exercised the bucket
}

TEST(BurstPool, OverQuotaTenantBorrowsFromSharedPoolThenIsDenied) {
  ClockPtr clock = make_clock();
  BurstPool pool({/*rate_per_sec=*/0.0, /*capacity=*/2.0}, clock);
  TokenBucket bucket({/*rate_per_sec=*/0.0, /*capacity=*/1.0}, clock, &pool);

  EXPECT_EQ(bucket.acquire(), Grant::kGranted);           // own quota
  EXPECT_EQ(bucket.acquire(), Grant::kGrantedFromBurst);  // pool token 1
  EXPECT_EQ(bucket.acquire(), Grant::kGrantedFromBurst);  // pool token 2
  EXPECT_EQ(bucket.acquire(), Grant::kDenied);            // both dry
  EXPECT_DOUBLE_EQ(pool.available(), 0.0);
}

TEST(BurstPool, SharedAcrossBuckets) {
  ClockPtr clock = make_clock();
  BurstPool pool({0.0, 1.0}, clock);
  TokenBucket a({0.0, 0.0}, clock, &pool);
  TokenBucket b({0.0, 0.0}, clock, &pool);
  EXPECT_EQ(a.acquire(), Grant::kGrantedFromBurst);
  EXPECT_EQ(b.acquire(), Grant::kDenied);  // a spent the shared token
}

// --- Weighted fair queue (deficit round-robin) -----------------------------

TEST(WeightedFairQueue, HandComputedDrrScheduleIsByteExact) {
  // quantum 100; weights a:3 (300/visit), b:2 (200), c:1 (100).
  // Costs: a1..a4 = 200 each, b1..b3 = 150 each, c1..c2 = 100 each.
  //
  //  visit a: deficit 300 -> a1 (bank 100)
  //  visit b: deficit 200 -> b1 (bank 50)
  //  visit c: deficit 100 -> c1 (bank 0)
  //  visit a: deficit 400 -> a2, a3 (bank 0)
  //  visit b: deficit 250 -> b2 (bank 100)
  //  visit c: deficit 100 -> c2 (empty, leaves)
  //  visit a: deficit 300 -> a4 (empty, leaves)
  //  visit b: deficit 300 -> b3 (empty, leaves)
  WeightedFairQueue<std::string> q(/*quantum=*/100);
  q.set_weight("a", 3);
  q.set_weight("b", 2);
  q.set_weight("c", 1);
  q.push("a", "a1", 200);
  q.push("b", "b1", 150);
  q.push("c", "c1", 100);
  q.push("a", "a2", 200);
  q.push("a", "a3", 200);
  q.push("a", "a4", 200);
  q.push("b", "b2", 150);
  q.push("b", "b3", 150);
  q.push("c", "c2", 100);

  std::vector<std::string> order;
  while (auto item = q.pop()) order.push_back(*item);
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "c1", "a2", "a3",
                                             "b2", "c2", "a4", "b3"}));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.backlog_cost(), 0u);
}

TEST(WeightedFairQueue, EqualWeightsInterleaveRoundRobin) {
  WeightedFairQueue<int> q(/*quantum=*/1);  // one unit-cost item per visit
  for (int i = 0; i < 3; ++i) {
    q.push("x", 10 + i, 1);
    q.push("y", 20 + i, 1);
  }
  std::vector<int> order;
  while (auto item = q.pop()) order.push_back(*item);
  EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 21, 12, 22}));
}

TEST(WeightedFairQueue, PopBatchMatchesRepeatedPop) {
  auto build = [] {
    WeightedFairQueue<int> q(/*quantum=*/10);
    q.set_weight("a", 2);
    for (int i = 0; i < 8; ++i) q.push(i % 2 ? "a" : "b", i, 7);
    return q;
  };
  WeightedFairQueue<int> singles = build();
  WeightedFairQueue<int> batched = build();

  std::vector<int> one_by_one;
  while (auto item = singles.pop()) one_by_one.push_back(*item);

  std::vector<int> via_batches;
  for (;;) {
    auto batch = batched.pop_batch(3);
    if (batch.empty()) break;
    via_batches.insert(via_batches.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(one_by_one, via_batches);
}

TEST(WeightedFairQueue, DepthAndBacklogBookkeeping) {
  WeightedFairQueue<int> q;
  q.push("a", 1, 5);
  q.push("a", 2, 5);
  q.push("b", 3, 90);
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.tenant_depth("a"), 2u);
  EXPECT_EQ(q.tenant_depth("b"), 1u);
  EXPECT_EQ(q.tenant_depth("nobody"), 0u);
  EXPECT_EQ(q.backlog_cost(), 100u);
  (void)q.pop();
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.backlog_cost(), 95u);
}

TEST(WeightedFairQueue, EmptyPopsReturnNullopt) {
  WeightedFairQueue<int> q;
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_TRUE(q.pop_batch(4).empty());
}

TEST(WeightedFairQueue, LargeCostAccumulatesDeficitAcrossRounds) {
  // A cost far above quantum*weight must eventually be served (banked
  // deficit), not starve behind cheaper tenants forever.
  WeightedFairQueue<std::string> q(/*quantum=*/10);
  q.push("big", "elephant", 35);  // needs 4 visits at deficit 10/visit
  q.push("small", "s1", 5);
  q.push("small", "s2", 5);
  std::vector<std::string> order;
  while (auto item = q.pop()) order.push_back(*item);
  EXPECT_EQ(order, (std::vector<std::string>{"s1", "s2", "elephant"}));
}

// --- Admission control -----------------------------------------------------

TEST(AdmissionController, AdmitsWhenDeadlineFitsPredictedFinish) {
  ClockPtr clock = make_clock();
  AdmissionConfig config;
  config.capacity_per_sec = 1000.0;  // 1 cost unit per millisecond
  AdmissionController admission(config, clock, obs::make_metrics());

  // Backlog 100 -> 100ms wait; own cost 10 -> 10ms; finish = t+110ms.
  EXPECT_TRUE(admission
                  .admit("t", /*cost=*/10, clock->now() + 200 * kMillisecond,
                         /*backlog_cost=*/100)
                  .is_ok());
}

TEST(AdmissionController, ShedsDeadlineMissWithRetryableStatus) {
  ClockPtr clock = make_clock();
  obs::MetricsPtr metrics = obs::make_metrics();
  AdmissionConfig config;
  config.capacity_per_sec = 1000.0;
  AdmissionController admission(config, clock, metrics);

  Status shed = admission.admit("t", 10, clock->now() + 50 * kMillisecond,
                                /*backlog_cost=*/100);  // finish at +110ms
  ASSERT_FALSE(shed.is_ok());
  // Retryable by fault::RetryPolicy's contract: kUnavailable.
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.message().find("retry with backoff"), std::string::npos);
  EXPECT_EQ(metrics->counter("hc.sched.shed"), 1u);
  EXPECT_EQ(metrics->counter("hc.sched.shed.deadline"), 1u);
  EXPECT_EQ(metrics->counter("hc.sched.admitted"), 0u);
}

TEST(AdmissionController, ShedsOnPredictedWaitCapRegardlessOfDeadline) {
  ClockPtr clock = make_clock();
  obs::MetricsPtr metrics = obs::make_metrics();
  AdmissionConfig config;
  config.capacity_per_sec = 1000.0;
  config.max_predicted_wait = 50 * kMillisecond;
  AdmissionController admission(config, clock, metrics);

  EXPECT_TRUE(admission.admit("t", 1, /*deadline=*/0, /*backlog_cost=*/49).is_ok());
  Status shed = admission.admit("t", 1, /*deadline=*/0, /*backlog_cost=*/100);
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(metrics->counter("hc.sched.shed.overload"), 1u);
}

TEST(AdmissionController, NoDeadlineNoCapAlwaysAdmits) {
  ClockPtr clock = make_clock();
  AdmissionController admission(AdmissionConfig{}, clock, obs::make_metrics());
  EXPECT_TRUE(admission.admit("t", 1e9, 0, 1e12).is_ok());
}

TEST(AdmissionController, AimdWalksHeadroomAgainstObservedP95) {
  ClockPtr clock = make_clock();
  obs::MetricsPtr metrics = obs::make_metrics();
  AdmissionConfig config;
  config.latency_metric = "hc.test.lat_us";
  config.target_p95_us = 100.0;
  AdmissionController admission(config, clock, metrics);
  EXPECT_DOUBLE_EQ(admission.headroom(), 1.0);

  // p95 over target: multiplicative decrease.
  metrics->observe("hc.test.lat_us", 1000.0);
  admission.adapt();
  EXPECT_DOUBLE_EQ(admission.headroom(), 0.5);
  EXPECT_DOUBLE_EQ(metrics->gauge("hc.sched.headroom"), 0.5);

  // No new samples: adapt() is a no-op, headroom must not creep.
  admission.adapt();
  admission.adapt();
  EXPECT_DOUBLE_EQ(admission.headroom(), 0.5);

  // Many fast samples pull p95 under target: additive increase.
  for (int i = 0; i < 100; ++i) metrics->observe("hc.test.lat_us", 5.0);
  admission.adapt();
  EXPECT_DOUBLE_EQ(admission.headroom(), 0.55);
}

TEST(AdmissionController, AimdClampsAtConfiguredFloor) {
  ClockPtr clock = make_clock();
  obs::MetricsPtr metrics = obs::make_metrics();
  AdmissionConfig config;
  config.latency_metric = "hc.test.lat_us";
  config.target_p95_us = 1.0;
  config.min_headroom = 0.25;
  AdmissionController admission(config, clock, metrics);

  for (int i = 0; i < 10; ++i) {
    metrics->observe("hc.test.lat_us", 1e6);  // always over target
    admission.adapt();
  }
  EXPECT_DOUBLE_EQ(admission.headroom(), 0.25);
}

TEST(AdmissionController, LowerHeadroomShedsSooner) {
  ClockPtr clock = make_clock();
  obs::MetricsPtr metrics = obs::make_metrics();
  AdmissionConfig config;
  config.capacity_per_sec = 1000.0;
  config.latency_metric = "hc.test.lat_us";
  config.target_p95_us = 1.0;
  AdmissionController admission(config, clock, metrics);

  SimTime deadline = clock->now() + 150 * kMillisecond;
  EXPECT_TRUE(admission.admit("t", 10, deadline, 100).is_ok());

  metrics->observe("hc.test.lat_us", 1e6);
  admission.adapt();  // headroom 0.5 -> effective capacity halves
  EXPECT_FALSE(admission.admit("t", 10, deadline, 100).is_ok());
}

// --- Adaptive batching -----------------------------------------------------

TEST(AdaptiveBatcher, BatchSizeTracksDepthWithinBounds) {
  AdaptiveBatcher batcher({/*min=*/2, /*max=*/16, /*target_dispatches=*/4},
                          nullptr);
  EXPECT_EQ(batcher.batch_size(0), 2u);    // floor at min_batch
  EXPECT_EQ(batcher.batch_size(4), 2u);    // ceil(4/4) = 1, clamped to 2
  EXPECT_EQ(batcher.batch_size(20), 5u);   // ceil(20/4)
  EXPECT_EQ(batcher.batch_size(1000), 16u);  // clamped to max_batch
}

TEST(AdaptiveBatcher, PlanPartitionsDepthExactlyAndDeterministically) {
  AdaptiveBatcher batcher({1, 32, 4, 2 * kMillisecond}, nullptr);
  for (std::size_t depth : {0u, 1u, 7u, 50u, 100u, 1000u}) {
    std::vector<std::size_t> plan = batcher.plan(depth);
    std::size_t total = std::accumulate(plan.begin(), plan.end(), std::size_t{0});
    EXPECT_EQ(total, depth) << "plan must sum exactly to the depth";
    for (std::size_t take : plan) {
      EXPECT_GE(take, 1u);
      EXPECT_LE(take, 32u);
    }
    EXPECT_EQ(plan, batcher.plan(depth)) << "plan must be pure";
  }
}

TEST(AdaptiveBatcher, PlanDecaysAsBacklogShrinks) {
  AdaptiveBatcher batcher({1, 32, 4, 2 * kMillisecond}, nullptr);
  std::vector<std::size_t> plan = batcher.plan(100);
  ASSERT_GE(plan.size(), 2u);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i], plan[i - 1]) << "batches must not grow as depth drains";
  }
  EXPECT_EQ(plan.front(), 25u);  // ceil(100/4)
  EXPECT_EQ(plan.back(), 1u);
}

TEST(AdaptiveBatcher, RecordLandsInBatchSizeHistogram) {
  obs::MetricsPtr metrics = obs::make_metrics();
  AdaptiveBatcher batcher(BatcherConfig{}, metrics);
  batcher.record(8);
  batcher.record(3);
  const obs::Histogram* hist = metrics->histogram("hc.sched.batch_size");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_DOUBLE_EQ(hist->sum, 11.0);
}

TEST(AdaptiveBatcher, DegenerateConfigIsSanitized) {
  AdaptiveBatcher batcher({/*min=*/0, /*max=*/0, /*target_dispatches=*/0},
                          nullptr);
  EXPECT_EQ(batcher.batch_size(100), 1u);  // min forced to 1, max to min
  EXPECT_EQ(batcher.plan(3).size(), 3u);
}

}  // namespace
}  // namespace hc::sched
