#include <gtest/gtest.h>

#include "crypto/graph_mac.h"

namespace hc::crypto {
namespace {

/// care-plan -> {medications, labs}; medications -> {rx-1, rx-2}; labs -> {hba1c}
RecordGraph sample_graph() {
  RecordGraph g;
  EXPECT_TRUE(g.add_node("care-plan", to_bytes("plan v3")).is_ok());
  EXPECT_TRUE(g.add_node("medications", to_bytes("med list")).is_ok());
  EXPECT_TRUE(g.add_node("labs", to_bytes("lab panel")).is_ok());
  EXPECT_TRUE(g.add_node("rx-1", to_bytes("metformin 500mg")).is_ok());
  EXPECT_TRUE(g.add_node("rx-2", to_bytes("lisinopril 10mg")).is_ok());
  EXPECT_TRUE(g.add_node("hba1c", to_bytes("7.1%")).is_ok());
  EXPECT_TRUE(g.add_edge("care-plan", "medications").is_ok());
  EXPECT_TRUE(g.add_edge("care-plan", "labs").is_ok());
  EXPECT_TRUE(g.add_edge("medications", "rx-1").is_ok());
  EXPECT_TRUE(g.add_edge("medications", "rx-2").is_ok());
  EXPECT_TRUE(g.add_edge("labs", "hba1c").is_ok());
  return g;
}

const Bytes kKey = to_bytes("shared-hcls-integrity-key");

TEST(GraphMac, WholeGraphVerifies) {
  RecordGraph g = sample_graph();
  auto tags = mac_graph(kKey, g);
  ASSERT_TRUE(tags.is_ok());
  EXPECT_EQ(tags->tags.size(), 6u);
  EXPECT_TRUE(verify_subgraph(kKey, g, "care-plan", tags->tags.at("care-plan")));
}

TEST(GraphMac, SharedSubgraphVerifiesAlone) {
  RecordGraph g = sample_graph();
  auto tags = mac_graph(kKey, g);
  ASSERT_TRUE(tags.is_ok());

  // Share only the medications branch — need-to-know disclosure.
  auto sub = extract_subgraph(g, "medications");
  ASSERT_TRUE(sub.is_ok());
  EXPECT_EQ(sub->payloads.size(), 3u);  // medications, rx-1, rx-2
  EXPECT_FALSE(sub->payloads.contains("labs"));
  EXPECT_TRUE(
      verify_subgraph(kKey, *sub, "medications", tags->tags.at("medications")));
}

TEST(GraphMac, PayloadTamperDetectedUpstream) {
  RecordGraph g = sample_graph();
  auto tags = mac_graph(kKey, g);
  ASSERT_TRUE(tags.is_ok());

  g.payloads["rx-1"] = to_bytes("oxycodone 80mg");  // descendant tamper
  EXPECT_FALSE(verify_subgraph(kKey, g, "care-plan", tags->tags.at("care-plan")));
  EXPECT_FALSE(verify_subgraph(kKey, g, "medications", tags->tags.at("medications")));
  // Untouched branch still verifies.
  EXPECT_TRUE(verify_subgraph(kKey, g, "labs", tags->tags.at("labs")));
}

TEST(GraphMac, EdgeTamperDetected) {
  RecordGraph g = sample_graph();
  auto tags = mac_graph(kKey, g);
  ASSERT_TRUE(tags.is_ok());

  // Dropping an edge (hiding a prescription) breaks the parent tag.
  auto& successors = g.edges["medications"];
  successors.erase(std::find(successors.begin(), successors.end(), "rx-2"));
  EXPECT_FALSE(verify_subgraph(kKey, g, "medications", tags->tags.at("medications")));

  // Grafting an extra node breaks it too.
  RecordGraph g2 = sample_graph();
  ASSERT_TRUE(g2.add_node("rx-3", to_bytes("fentanyl")).is_ok());
  ASSERT_TRUE(g2.add_edge("medications", "rx-3").is_ok());
  EXPECT_FALSE(verify_subgraph(kKey, g2, "medications", tags->tags.at("medications")));
}

TEST(GraphMac, WrongKeyFailsVerification) {
  RecordGraph g = sample_graph();
  auto tags = mac_graph(kKey, g);
  ASSERT_TRUE(tags.is_ok());
  EXPECT_FALSE(verify_subgraph(to_bytes("other-key"), g, "care-plan",
                               tags->tags.at("care-plan")));
}

TEST(GraphMac, CycleRejected) {
  RecordGraph g;
  ASSERT_TRUE(g.add_node("a", to_bytes("1")).is_ok());
  ASSERT_TRUE(g.add_node("b", to_bytes("2")).is_ok());
  ASSERT_TRUE(g.add_edge("a", "b").is_ok());
  ASSERT_TRUE(g.add_edge("b", "a").is_ok());
  EXPECT_EQ(mac_graph(kKey, g).status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphMac, GraphConstructionGuards) {
  RecordGraph g;
  ASSERT_TRUE(g.add_node("a", {}).is_ok());
  EXPECT_EQ(g.add_node("a", {}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(g.add_edge("a", "ghost").code(), StatusCode::kNotFound);
  ASSERT_TRUE(g.add_node("b", {}).is_ok());
  ASSERT_TRUE(g.add_edge("a", "b").is_ok());
  EXPECT_EQ(g.add_edge("a", "b").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(extract_subgraph(g, "ghost").status().code(), StatusCode::kNotFound);
}

TEST(GraphMac, SiblingOrderIrrelevantSharedStructureBinds) {
  // Child tag set is order-independent (sorted), so two graphs differing
  // only in edge insertion order produce identical tags.
  RecordGraph g1, g2;
  for (auto* g : {&g1, &g2}) {
    ASSERT_TRUE(g->add_node("p", to_bytes("root")).is_ok());
    ASSERT_TRUE(g->add_node("c1", to_bytes("left")).is_ok());
    ASSERT_TRUE(g->add_node("c2", to_bytes("right")).is_ok());
  }
  ASSERT_TRUE(g1.add_edge("p", "c1").is_ok());
  ASSERT_TRUE(g1.add_edge("p", "c2").is_ok());
  ASSERT_TRUE(g2.add_edge("p", "c2").is_ok());
  ASSERT_TRUE(g2.add_edge("p", "c1").is_ok());

  auto t1 = mac_graph(kKey, g1);
  auto t2 = mac_graph(kKey, g2);
  EXPECT_EQ(t1->tags.at("p"), t2->tags.at("p"));
}

TEST(GraphMac, DiamondDagSupported) {
  // a -> b, a -> c, b -> d, c -> d (shared descendant).
  RecordGraph g;
  for (const char* id : {"a", "b", "c", "d"}) {
    ASSERT_TRUE(g.add_node(id, to_bytes(id)).is_ok());
  }
  ASSERT_TRUE(g.add_edge("a", "b").is_ok());
  ASSERT_TRUE(g.add_edge("a", "c").is_ok());
  ASSERT_TRUE(g.add_edge("b", "d").is_ok());
  ASSERT_TRUE(g.add_edge("c", "d").is_ok());
  auto tags = mac_graph(kKey, g);
  ASSERT_TRUE(tags.is_ok());
  EXPECT_TRUE(verify_subgraph(kKey, g, "a", tags->tags.at("a")));
}

}  // namespace
}  // namespace hc::crypto
