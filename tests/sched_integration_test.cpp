// Integration suite for the QoS layer (`ctest -L sched`): the scheduler
// wired through the real platform — fair-queue draining of the ingestion
// message queue, bounded-queue backpressure, deadline admission on
// upload, the deterministic batched parallel drain (byte-identical
// aggregates across 1/2/4/8 workers), the gateway's rate-limit /
// admission / scheduled-dispatch path, and coalesced external-service
// calls.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "ingestion/ingestion.h"
#include "obs/export.h"
#include "platform/gateway.h"
#include "platform/instance.h"
#include "services/registry.h"

namespace hc::platform {
namespace {

// ------------------------------------------------------------- ingestion

// The ingestion stack from tests/parallel_ingestion_test.cpp (same seeds),
// plus the QoS pieces under test: an admission controller, an adaptive
// batcher, and fair-mode queue knobs exercised per test.
struct QosStack {
  ClockPtr clock = make_clock();
  LogPtr log = make_log(clock);
  Rng rng{70};
  crypto::KeyManagementService kms{"tenant-a", Rng(71), log};
  storage::StagingArea staging;
  storage::MessageQueue queue;
  storage::StatusTracker tracker;
  storage::DataLake lake{kms, "platform", Rng(72)};
  storage::MetadataStore metadata;
  privacy::AnonymizationVerificationService verifier{
      privacy::FieldSchema::standard_patient(), 0.99, 1};
  privacy::ReidentificationMap reid_map;
  obs::MetricsPtr metrics = obs::make_metrics();
  std::unique_ptr<blockchain::PermissionedLedger> ledger;
  std::unique_ptr<sched::AdmissionController> admission;
  std::unique_ptr<sched::AdaptiveBatcher> batcher;
  crypto::KeyId lake_key;
  crypto::KeyId client_key;
  std::unique_ptr<ingestion::IngestionService> service;

  explicit QosStack(sched::AdmissionConfig admission_config = {},
                    sched::BatcherConfig batcher_config = {},
                    bool bind_qos = true) {
    blockchain::LedgerConfig config;
    config.peers = {"peer-a", "peer-b", "peer-c"};
    ledger = std::make_unique<blockchain::PermissionedLedger>(config, clock, log);
    EXPECT_TRUE(blockchain::register_hcls_contracts(*ledger).is_ok());
    lake_key = kms.create_symmetric_key("platform");
    queue.bind_metrics(metrics);

    admission = std::make_unique<sched::AdmissionController>(admission_config,
                                                             clock, metrics);
    batcher = std::make_unique<sched::AdaptiveBatcher>(batcher_config, metrics);

    ingestion::IngestionDeps deps;
    deps.clock = clock;
    deps.log = log;
    deps.kms = &kms;
    deps.staging = &staging;
    deps.queue = &queue;
    deps.tracker = &tracker;
    deps.lake = &lake;
    deps.metadata = &metadata;
    deps.ledger = ledger.get();
    deps.verifier = &verifier;
    deps.reid_map = &reid_map;
    deps.metrics = metrics;
    if (bind_qos) {
      deps.admission = admission.get();
      deps.batcher = batcher.get();
    }
    service = std::make_unique<ingestion::IngestionService>(
        deps, lake_key, to_bytes("pseudo-key"), "platform");

    client_key = kms.create_keypair("clinic-a");
    EXPECT_TRUE(kms.authorize(client_key, "clinic-a", "platform").is_ok());
  }

  void grant_consent(const std::string& patient_id) {
    ASSERT_TRUE(ledger
                    ->submit_and_commit("consent",
                                        {{"action", "grant"},
                                         {"patient", patient_id},
                                         {"group", "study-a"}},
                                        "healthcare-provider")
                    .is_ok());
  }

  Result<ingestion::UploadReceipt> upload(std::size_t index,
                                          const ingestion::UploadQos& qos) {
    fhir::Bundle bundle = fhir::make_synthetic_bundle(
        rng, "bundle-t" + std::to_string(index), index);
    grant_consent(std::get<fhir::Patient>(bundle.resources[0]).id);
    auto pub = kms.public_key(client_key);
    EXPECT_TRUE(pub.is_ok());
    auto envelope =
        crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng);
    return service->upload(envelope, "clinic-a", "study-a", client_key, qos);
  }
};

TEST(IngestionQos, UploadCarriesTenantLaneIntoFairDrainOrder) {
  QosStack stack;
  stack.queue.enable_fair_mode(/*quantum=*/1);  // one unit-cost item per visit

  // A noisy tenant floods six uploads before a quiet tenant's two arrive.
  // FIFO would drain all six first; DRR alternates until quiet runs dry.
  std::size_t index = 0;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(stack.upload(index++, {"noisy", 1, 0}).is_ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(stack.upload(index++, {"quiet", 1, 0}).is_ok());
  }
  EXPECT_EQ(stack.queue.depth(), 8u);
  EXPECT_EQ(stack.queue.backlog_cost(), 8u);

  std::vector<std::string> lanes;
  while (auto msg = stack.queue.pop()) lanes.push_back(msg->tenant);
  EXPECT_EQ(lanes, (std::vector<std::string>{"noisy", "quiet", "noisy", "quiet",
                                             "noisy", "noisy", "noisy", "noisy"}));
}

TEST(IngestionQos, BoundedQueueBackpressureIsRetryableAndLeavesNoState) {
  QosStack stack;
  stack.queue.set_capacity(2);

  ASSERT_TRUE(stack.upload(0, {}).is_ok());
  ASSERT_TRUE(stack.upload(1, {}).is_ok());
  auto rejected = stack.upload(2, {});
  ASSERT_FALSE(rejected.is_ok());
  // Retryable (kUnavailable): upstream RetryPolicy backoff is the intended
  // reaction, not a hard failure.
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("retry with backoff"),
            std::string::npos);
  // No half-ingested residue: the rejected upload's staged blob was undone.
  EXPECT_EQ(stack.staging.size(), 2u);
  EXPECT_EQ(stack.queue.depth(), 2u);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.backpressure"), 1u);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.uploads"), 2u);

  // The accepted two still process normally.
  EXPECT_EQ(stack.service->process_all(/*n_workers=*/0), 2u);
  EXPECT_EQ(stack.staging.size(), 0u);
}

TEST(IngestionQos, AdmissionShedsDoomedUploadBeforeItCostsAnything) {
  sched::AdmissionConfig admission;
  admission.capacity_per_sec = 1000.0;  // 1 cost unit per millisecond
  QosStack stack(admission);

  // Own predicted service time (1000 units -> 1s) already misses a 1ms
  // deadline: shed before staging, before the queue, before the tracker.
  auto shed = stack.upload(0, {"clinic", /*cost=*/1000,
                               /*deadline=*/stack.clock->now() + kMillisecond});
  ASSERT_FALSE(shed.is_ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(stack.staging.size(), 0u);
  EXPECT_TRUE(stack.queue.empty());
  EXPECT_EQ(stack.metrics->counter("hc.sched.shed"), 1u);
  EXPECT_EQ(stack.metrics->counter("hc.sched.shed.deadline"), 1u);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.uploads"), 0u);

  // A feasible deadline admits.
  ASSERT_TRUE(
      stack.upload(1, {"clinic", 1, stack.clock->now() + kMinute}).is_ok());
  EXPECT_EQ(stack.metrics->counter("hc.sched.admitted"), 1u);
}

TEST(IngestionQos, BatchedDrainIsByteIdenticalAcrossWorkerCounts) {
  // Weighted tenants + adaptive batching + 1/2/4/8 workers: the batch plan
  // is a pure function of the drain-start depth, so the batch_size
  // histogram — and every other aggregate metric — must match byte for
  // byte across worker counts and reruns.
  auto run = [](std::size_t n_workers) {
    QosStack stack;
    stack.queue.enable_fair_mode(/*quantum=*/4);
    stack.queue.set_tenant_weight("hospital-a", 2);
    stack.queue.set_tenant_weight("hospital-b", 1);
    for (std::size_t i = 0; i < 30; ++i) {
      EXPECT_TRUE(
          stack.upload(i, {i % 3 ? "hospital-a" : "hospital-b", 1, 0}).is_ok());
    }
    EXPECT_EQ(stack.service->process_all(n_workers), 30u);
    EXPECT_TRUE(stack.queue.empty());
    return obs::to_json(*stack.metrics);
  };

  const std::string golden = run(1);
  EXPECT_EQ(run(2), golden);
  EXPECT_EQ(run(4), golden);
  EXPECT_EQ(run(8), golden);
  EXPECT_EQ(run(4), golden) << "rerun with the same seeds must be identical";

  // The scheduler actually decided batch sizes: the histogram is populated
  // and its dispatch count matches the plan for depth 30 (target 4,
  // max 32): 8, 6, 4, 3, 3, 2, 1, 1, 1, 1.
  QosStack probe;
  std::vector<std::size_t> plan = probe.batcher->plan(30);
  EXPECT_EQ(plan, (std::vector<std::size_t>{8, 6, 4, 3, 3, 2, 1, 1, 1, 1}));
  EXPECT_NE(golden.find("hc.sched.batch_size"), std::string::npos);
}

// --------------------------------------------------------------- gateway

class SchedGatewayFixture : public ::testing::Test {
 protected:
  SchedGatewayFixture()
      : clock_(make_clock()), network_(clock_, Rng(100)) {
    InstanceConfig config;
    config.name = "cloud-a";
    cloud_ = std::make_unique<HealthCloudInstance>(config, clock_, network_);
    gateway_ = std::make_unique<ApiGateway>(*cloud_);

    mercy_ = cloud_->rbac().register_tenant("mercy").value();
    alice_ = add_analyst(mercy_, "alice");
    stpaul_ = cloud_->rbac().register_tenant("stpaul").value();
    bob_ = add_analyst(stpaul_, "bob");

    gateway_->route("kb/", [](const std::string&, const ApiRequest& request) {
      return Result<ApiResponse>(ApiResponse{to_bytes("kb:" + request.resource)});
    });
  }

  std::string add_analyst(const rbac::TenantInfo& tenant,
                          const std::string& name) {
    std::string user = cloud_->rbac().add_user(tenant.id, name).value();
    EXPECT_TRUE(cloud_->rbac()
                    .assign_role(user, tenant.default_env, rbac::Role::kAnalyst)
                    .is_ok());
    EXPECT_TRUE(cloud_->rbac()
                    .grant_permission(tenant.id, rbac::Role::kAnalyst, "kb/",
                                      rbac::Permission::kRead)
                    .is_ok());
    return user;
  }

  ApiRequest request_for(const rbac::TenantInfo& tenant, const std::string& user,
                         const std::string& resource) {
    ApiRequest request;
    request.user_id = user;
    request.environment = tenant.default_env;
    request.scope = tenant.id;
    request.resource = resource;
    return request;
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  std::unique_ptr<HealthCloudInstance> cloud_;
  std::unique_ptr<ApiGateway> gateway_;
  rbac::TenantInfo mercy_;
  rbac::TenantInfo stpaul_;
  std::string alice_;
  std::string bob_;
};

TEST_F(SchedGatewayFixture, QosOffIsTheHistoricalInlinePath) {
  EXPECT_FALSE(gateway_->qos_enabled());
  auto response = gateway_->handle(request_for(mercy_, alice_, "kb/x"));
  ASSERT_TRUE(response.is_ok());
  EXPECT_EQ(gateway_->submit(request_for(mercy_, alice_, "kb/x")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cloud_->metrics()->counter("hc.sched.shed"), 0u);
}

TEST_F(SchedGatewayFixture, RateLimiterShedsOverQuotaThenBurstPoolAbsorbs) {
  GatewayQosConfig qos;
  qos.default_quota = {/*rate_per_sec=*/0.0, /*capacity=*/2.0};
  qos.burst_pool = {/*rate_per_sec=*/0.0, /*capacity=*/1.0};
  gateway_->enable_qos(qos);

  ApiRequest request = request_for(mercy_, alice_, "kb/x");
  EXPECT_TRUE(gateway_->handle(request).is_ok());  // quota 1
  EXPECT_TRUE(gateway_->handle(request).is_ok());  // quota 2
  EXPECT_TRUE(gateway_->handle(request).is_ok());  // borrowed from burst pool
  auto limited = gateway_->handle(request);        // everything dry
  ASSERT_FALSE(limited.is_ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(limited.status().message().find("retry with backoff"),
            std::string::npos);
  EXPECT_EQ(gateway_->stats().rate_limited, 1u);
  EXPECT_EQ(gateway_->stats().served, 3u);
  EXPECT_EQ(cloud_->metrics()->counter("hc.sched.deferred"), 1u);
  EXPECT_EQ(cloud_->metrics()->counter("hc.sched.shed.rate"), 1u);
}

TEST_F(SchedGatewayFixture, PerTenantQuotaComesFromRbacConfig) {
  ASSERT_TRUE(cloud_->rbac()
                  .set_tenant_qos(mercy_.id, /*weight=*/1, /*rate_per_sec=*/0.0,
                                  /*burst=*/5.0)
                  .is_ok());
  GatewayQosConfig qos;
  qos.default_quota = {0.0, 1.0};  // non-configured tenants get 1 token
  qos.burst_pool = {0.0, 0.0};     // no shared pool: quotas bind exactly
  gateway_->enable_qos(qos);

  // mercy's RBAC quota (5) overrides the platform default (1)...
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(gateway_->handle(request_for(mercy_, alice_, "kb/x")).is_ok());
  }
  EXPECT_FALSE(gateway_->handle(request_for(mercy_, alice_, "kb/x")).is_ok());
  // ...while stpaul rides the default.
  EXPECT_TRUE(gateway_->handle(request_for(stpaul_, bob_, "kb/y")).is_ok());
  EXPECT_FALSE(gateway_->handle(request_for(stpaul_, bob_, "kb/y")).is_ok());
  EXPECT_EQ(gateway_->stats().rate_limited, 2u);
}

TEST_F(SchedGatewayFixture, SubmitPumpDrainsInWeightedFairOrder) {
  ASSERT_TRUE(cloud_->rbac().set_tenant_qos(mercy_.id, /*weight=*/3, 0, 0).is_ok());
  ASSERT_TRUE(cloud_->rbac().set_tenant_qos(stpaul_.id, /*weight=*/1, 0, 0).is_ok());
  GatewayQosConfig qos;
  qos.wfq_quantum = 1;  // weight = items per DRR visit at unit cost
  gateway_->enable_qos(qos);

  // mercy floods six requests before stpaul's two. Weight 3:1 serves three
  // mercy requests per stpaul request instead of all-mercy-first.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(gateway_
                    ->submit(request_for(mercy_, alice_,
                                         "kb/m" + std::to_string(i)))
                    .is_ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(gateway_
                    ->submit(request_for(stpaul_, bob_,
                                         "kb/s" + std::to_string(i)))
                    .is_ok());
  }
  EXPECT_EQ(gateway_->stats().queued, 8u);
  EXPECT_EQ(gateway_->scheduled_depth(), 8u);

  std::vector<ApiGateway::ScheduledOutcome> outcomes = gateway_->pump();
  ASSERT_EQ(outcomes.size(), 8u);
  std::vector<std::string> tenants;
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.response.is_ok()) << outcome.resource;
    tenants.push_back(outcome.tenant);
  }
  EXPECT_EQ(tenants, (std::vector<std::string>{
                         mercy_.id, mercy_.id, mercy_.id, stpaul_.id, mercy_.id,
                         mercy_.id, mercy_.id, stpaul_.id}));
  EXPECT_EQ(gateway_->scheduled_depth(), 0u);
  EXPECT_EQ(gateway_->stats().served, 8u);

  const obs::Histogram* wait = cloud_->metrics()->histogram("hc.sched.wait_us");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, 8u);
}

TEST_F(SchedGatewayFixture, PumpShedsRequestsWhoseDeadlineExpiredInQueue) {
  gateway_->enable_qos(GatewayQosConfig{});

  ApiRequest doomed = request_for(mercy_, alice_, "kb/doomed");
  doomed.deadline = clock_->now() + 10;  // 10us from now
  ASSERT_TRUE(gateway_->submit(doomed).is_ok());
  ApiRequest fine = request_for(mercy_, alice_, "kb/fine");
  ASSERT_TRUE(gateway_->submit(fine).is_ok());

  clock_->advance(kMillisecond);  // the doomed deadline passes while queued
  auto outcomes = gateway_->pump();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].response.is_ok());
  EXPECT_EQ(outcomes[0].response.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(outcomes[1].response.is_ok());
  EXPECT_EQ(gateway_->stats().shed, 1u);
  EXPECT_EQ(cloud_->metrics()->counter("hc.sched.shed.deadline"), 1u);
  // The shed request never reached a handler (served counts only the one).
  EXPECT_EQ(gateway_->stats().served, 1u);
}

TEST_F(SchedGatewayFixture, SubmitBackpressuresAtScheduledQueueCapacity) {
  GatewayQosConfig qos;
  qos.queue_capacity = 1;
  gateway_->enable_qos(qos);

  ASSERT_TRUE(gateway_->submit(request_for(mercy_, alice_, "kb/a")).is_ok());
  Status full = gateway_->submit(request_for(mercy_, alice_, "kb/b"));
  ASSERT_FALSE(full.is_ok());
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_NE(full.message().find("retry with backoff"), std::string::npos);
  EXPECT_EQ(cloud_->metrics()->counter("hc.sched.shed.capacity"), 1u);
  // Draining reopens the queue.
  EXPECT_EQ(gateway_->pump().size(), 1u);
  EXPECT_TRUE(gateway_->submit(request_for(mercy_, alice_, "kb/b")).is_ok());
}

TEST_F(SchedGatewayFixture, PumpRunsOneAimdStepAgainstObservedLatency) {
  GatewayQosConfig qos;
  qos.admission.latency_metric = "hc.gateway.request_us";
  qos.admission.target_p95_us = 1e9;  // everything is under target
  qos.admission.headroom = 0.5;
  gateway_->enable_qos(qos);

  ASSERT_TRUE(gateway_->submit(request_for(mercy_, alice_, "kb/x")).is_ok());
  ASSERT_EQ(gateway_->pump().size(), 1u);
  // p95 under target + new samples -> one additive-increase step.
  EXPECT_DOUBLE_EQ(cloud_->metrics()->gauge("hc.sched.headroom"), 0.55);
}

// --------------------------------------------------------------- services

TEST(ServicesBatching, CoalescedCallIsCheaperThanSeparateCalls) {
  auto run_batched = [](std::vector<Bytes> requests) {
    auto clock = make_clock();
    services::ServiceRegistry registry(clock, Rng(7));
    services::ServiceProfile profile;
    profile.name = "provider-a/nlu";
    profile.mean_latency = 40 * kMillisecond;
    profile.latency_jitter = 0;
    profile.availability = 1.0;
    registry.register_service(profile);
    auto result = registry.invoke_batch("provider-a/nlu", requests);
    EXPECT_TRUE(result.is_ok());
    return std::pair(clock->now(), *std::move(result));
  };

  std::vector<Bytes> requests{to_bytes("r0"), to_bytes("r1"), to_bytes("r2"),
                              to_bytes("r3")};
  auto [elapsed, batch] = run_batched(requests);

  // One full round trip + 3 marginal items at the default 0.25 fraction:
  // 40ms * (1 + 3*0.25) = 70ms, vs 160ms for four separate invokes.
  EXPECT_EQ(elapsed, 70 * kMillisecond);
  EXPECT_EQ(batch.latency, 70 * kMillisecond);
  ASSERT_EQ(batch.responses.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(to_string(batch.responses[i]),
              "echo:" + to_string(requests[i]));
  }
}

TEST(ServicesBatching, StatsAndMetricsCountEveryBatchedItem) {
  auto clock = make_clock();
  obs::MetricsPtr metrics = obs::make_metrics();
  services::ServiceRegistry registry(clock, Rng(7));
  registry.bind_metrics(metrics);
  services::ServiceProfile profile;
  profile.name = "provider-a/nlu";
  profile.latency_jitter = 0;
  profile.availability = 1.0;
  registry.register_service(profile);

  ASSERT_TRUE(registry
                  .invoke_batch("provider-a/nlu",
                                {to_bytes("a"), to_bytes("b"), to_bytes("c")})
                  .is_ok());
  auto stats = registry.stats("provider-a/nlu").value();
  EXPECT_EQ(stats.invocations, 3u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(metrics->counter("hc.services.batch.calls"), 1u);
  EXPECT_EQ(metrics->counter("hc.services.batch.items"), 3u);
}

TEST(ServicesBatching, WholeBatchSharesOneAvailabilityDraw) {
  auto clock = make_clock();
  services::ServiceRegistry registry(clock, Rng(7));
  services::ServiceProfile profile;
  profile.name = "provider-b/ocr";
  profile.availability = 0.0;  // transport always fails
  registry.register_service(profile);

  auto result =
      registry.invoke_batch("provider-b/ocr", {to_bytes("a"), to_bytes("b")});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  auto stats = registry.stats("provider-b/ocr").value();
  EXPECT_EQ(stats.invocations, 2u);
  EXPECT_EQ(stats.failures, 2u);
}

TEST(ServicesBatching, RejectsEmptyBatchAndUnknownService) {
  auto clock = make_clock();
  services::ServiceRegistry registry(clock, Rng(7));
  EXPECT_EQ(registry.invoke_batch("nope", {to_bytes("x")}).status().code(),
            StatusCode::kNotFound);
  services::ServiceProfile profile;
  profile.name = "provider-a/nlu";
  registry.register_service(profile);
  EXPECT_EQ(registry.invoke_batch("provider-a/nlu", {}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hc::platform
