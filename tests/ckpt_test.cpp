// hc::ckpt conformance wall (`ctest -L ckpt`, target check-ckpt):
//
//   * format layer — byte-exact round trips for every section kind, the
//     rejection table (torn / truncated / bit-flipped / length-lying /
//     spliced files fail with the exact pinned diagnostics), and the
//     allocation guards (a length-lying header throws cleanly, never
//     bad_alloc);
//   * io layer — crash-consistent publish (temp -> fsync -> rename) and
//     kNotFound discipline;
//   * lake checkpoints — capture/encode/decode/restore round trips for
//     DataLake (+ metadata) and ShardedLake, including restore onto a
//     different ring size;
//   * kill-and-resume — JMF / MF / DELT fits crashed at *every* epoch
//     boundary through hc::fault crash windows, resumed from the last
//     published checkpoint, asserted byte-identical to an uninterrupted
//     run across solver paths and 1/2/4/8 workers.
#include <cstdint>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/delt.h"
#include "analytics/emr.h"
#include "analytics/jmf.h"
#include "analytics/matrix.h"
#include "analytics/mf.h"
#include "ckpt/checkpoint.h"
#include "ckpt/fit.h"
#include "ckpt/format.h"
#include "ckpt/io.h"
#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/kms.h"
#include "fault/fault.h"
#include "storage/data_lake.h"

namespace hc {
namespace {

std::string test_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "hc_ckpt_" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

Bytes test_key(std::uint8_t seed) {
  Bytes key(16);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(seed + 3 * i);
  }
  return key;
}

analytics::Matrix filled_matrix(std::size_t rows, std::size_t cols, double base) {
  analytics::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = base + 0.25 * static_cast<double>(r * cols + c);
    }
  }
  return m;
}

analytics::JmfResume sample_jmf() {
  analytics::JmfResume s;
  s.next_epoch = 3;
  s.u = filled_matrix(2, 3, 0.5);
  s.v = filled_matrix(4, 3, -1.5);
  s.drug_source_weights = {0.25, 0.75};
  s.disease_source_weights = {0.6, 0.4};
  s.objective_history = {10.5, 9.25, 8.0};
  return s;
}

// --- format layer ---------------------------------------------------------

TEST(CkptFormatTest, DeriveMacKeyIsKindAndKeyScoped) {
  const Bytes key = test_key(1);
  EXPECT_NE(ckpt::derive_mac_key(key, ckpt::kKindJmf),
            ckpt::derive_mac_key(key, ckpt::kKindMf));
  EXPECT_NE(ckpt::derive_mac_key(key, ckpt::kKindJmf),
            ckpt::derive_mac_key(test_key(2), ckpt::kKindJmf));
}

TEST(CkptFormatTest, WriterReaderRoundTrip) {
  const Bytes key = test_key(1);
  ckpt::ChunkWriter w(ckpt::kKindLake, key);
  w.add({'A', 'A', 'A', 'A'}, Bytes{1, 2, 3});
  w.add({'B', 'B', 'B', 'B'}, Bytes{});
  w.add({'A', 'A', 'A', 'A'}, Bytes{9});
  const Bytes file = w.finish();

  auto reader = ckpt::ChunkReader::open(file, ckpt::kKindLake, key);
  ASSERT_TRUE(reader.is_ok()) << reader.status().to_string();
  ASSERT_EQ(reader->chunks().size(), 3u);

  auto first = reader->find({'A', 'A', 'A', 'A'});
  ASSERT_TRUE(first.is_ok());
  ASSERT_EQ(first->length, 3u);
  EXPECT_EQ(first->payload[0], 1u);

  auto empty = reader->find({'B', 'B', 'B', 'B'});
  ASSERT_TRUE(empty.is_ok());
  EXPECT_EQ(empty->length, 0u);

  EXPECT_EQ(reader->find_all({'A', 'A', 'A', 'A'}).size(), 2u);

  auto missing = reader->find({'Z', 'Z', 'Z', 'Z'});
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(missing.status().message(), "ckpt: missing chunk ZZZZ");
}

TEST(CkptFormatTest, JmfRoundTripIsByteExact) {
  const Bytes key = test_key(7);
  const analytics::JmfResume state = sample_jmf();
  const Bytes file = ckpt::encode_jmf(state, key);

  auto decoded = ckpt::decode_jmf(file, key);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->next_epoch, 3);
  EXPECT_EQ(decoded->u.rows(), 2u);
  EXPECT_EQ(decoded->u.cols(), 3u);
  EXPECT_EQ(decoded->v.rows(), 4u);
  EXPECT_EQ(decoded->drug_source_weights, state.drug_source_weights);
  EXPECT_EQ(decoded->disease_source_weights, state.disease_source_weights);
  EXPECT_EQ(decoded->objective_history, state.objective_history);
  // Re-encoding the decoded state reproduces the file bit for bit — the
  // byte-identical resume contract at the codec level.
  EXPECT_EQ(ckpt::encode_jmf(*decoded, key), file);
}

TEST(CkptFormatTest, MfRoundTripIsByteExact) {
  const Bytes key = test_key(8);
  analytics::MfResume state;
  state.next_epoch = 12;
  state.u = filled_matrix(3, 2, 0.125);
  state.v = filled_matrix(5, 2, 2.0);
  state.objective_history = {4.5};
  const Bytes file = ckpt::encode_mf(state, key);

  auto decoded = ckpt::decode_mf(file, key);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->next_epoch, 12);
  EXPECT_EQ(decoded->objective_history, state.objective_history);
  EXPECT_EQ(ckpt::encode_mf(*decoded, key), file);
}

TEST(CkptFormatTest, DeltRoundTripIsByteExact) {
  const Bytes key = test_key(9);
  analytics::DeltResume state;
  state.next_iteration = 4;
  state.drug_effects = {-0.5, 0.0, 0.25};
  state.patient_baselines = {6.0, 7.5};
  state.patient_drifts = {0.05, -0.125};
  state.drug_sum = {1.5, 2.25, 0.0};
  state.objective_history = {100.0, 50.0, 25.0, 12.5};
  const Bytes file = ckpt::encode_delt(state, key);

  auto decoded = ckpt::decode_delt(file, key);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->next_iteration, 4);
  EXPECT_EQ(decoded->drug_effects, state.drug_effects);
  EXPECT_EQ(decoded->drug_sum, state.drug_sum);
  EXPECT_EQ(ckpt::encode_delt(*decoded, key), file);
}

// The rejection table: every class of file damage fails with the exact
// pinned diagnostic and the right status code — nothing is ever partially
// accepted.
TEST(CkptFormatTest, RejectionTable) {
  const Bytes key = test_key(11);
  const Bytes file = ckpt::encode_jmf(sample_jmf(), key);
  // Chunk 0 record starts at kHeaderSize: type @+0, index @+4, length @+8,
  // payload @+16.
  struct Case {
    const char* name;
    void (*mutate)(Bytes&);
    StatusCode code;
    const char* message;
  };
  const Case cases[] = {
      {"truncated header", [](Bytes& f) { f.resize(10); },
       StatusCode::kDataLoss, "ckpt: truncated header"},
      {"bad magic", [](Bytes& f) { f[0] ^= 0xff; },
       StatusCode::kInvalidArgument, "ckpt: bad magic"},
      {"unsupported version", [](Bytes& f) { f[8] = 2; },
       StatusCode::kInvalidArgument, "ckpt: unsupported version 2"},
      {"truncated chunk header",
       [](Bytes& f) { f.resize(ckpt::kHeaderSize + 6); },
       StatusCode::kDataLoss, "ckpt: truncated chunk header (chunk 0)"},
      {"chunk index mismatch", [](Bytes& f) { f[ckpt::kHeaderSize + 4] ^= 1; },
       StatusCode::kDataLoss, "ckpt: chunk index mismatch (chunk 0)"},
      {"chunk length lie", [](Bytes& f) { f[ckpt::kHeaderSize + 15] = 0xff; },
       StatusCode::kDataLoss, "ckpt: chunk length overruns file (chunk 0)"},
      {"payload bit flip", [](Bytes& f) { f[ckpt::kHeaderSize + 16] ^= 1; },
       StatusCode::kDataLoss, "ckpt: chunk integrity tag mismatch (chunk 0)"},
      {"truncated footer", [](Bytes& f) { f.pop_back(); },
       StatusCode::kDataLoss, "ckpt: truncated footer"},
      {"trailing garbage", [](Bytes& f) { f.push_back(0); },
       StatusCode::kDataLoss, "ckpt: trailing garbage after footer"},
      {"footer tag flip", [](Bytes& f) { f.back() ^= 1; },
       StatusCode::kDataLoss, "ckpt: footer tag mismatch"},
  };
  for (const Case& c : cases) {
    Bytes mutated = file;
    c.mutate(mutated);
    auto result = ckpt::decode_jmf(mutated, key);
    ASSERT_FALSE(result.is_ok()) << c.name;
    EXPECT_EQ(result.status().code(), c.code) << c.name;
    EXPECT_EQ(result.status().message(), c.message) << c.name;
  }
}

TEST(CkptFormatTest, WrongSectionKindIsRejected) {
  const Bytes key = test_key(11);
  const Bytes file = ckpt::encode_jmf(sample_jmf(), key);
  auto result = ckpt::decode_mf(file, key);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(),
            "ckpt: wrong section kind JMF  (want MF  )");
}

TEST(CkptFormatTest, WrongKeyFailsTheFirstChunkTag) {
  const Bytes file = ckpt::encode_jmf(sample_jmf(), test_key(11));
  auto result = ckpt::decode_jmf(file, test_key(12));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.status().message(),
            "ckpt: chunk integrity tag mismatch (chunk 0)");
}

// Rewriting the header's kind field cannot splice a file between kinds:
// the MAC key is derived from (data key, kind), so every chunk tag fails
// under the retargeted kind even though the same data key signs both.
TEST(CkptFormatTest, RetaggedKindDefeatedByKindScopedMacKeys) {
  const Bytes key = test_key(11);
  Bytes file = ckpt::encode_jmf(sample_jmf(), key);
  file[12] = 'M';
  file[13] = 'F';
  file[14] = ' ';
  file[15] = ' ';
  auto result = ckpt::decode_mf(file, key);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.status().message(),
            "ckpt: chunk integrity tag mismatch (chunk 0)");
}

TEST(CkptFormatTest, MissingChunkIsRejected) {
  const Bytes key = test_key(13);
  ckpt::ChunkWriter w(ckpt::kKindJmf, key);
  Bytes meta;
  ckpt::put_u32(meta, 1);
  w.add({'M', 'E', 'T', 'A'}, std::move(meta));
  auto result = ckpt::decode_jmf(w.finish(), key);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.status().message(), "ckpt: missing chunk MATU");
}

// A correctly-tagged chunk whose matrix header lies about its size must be
// rejected through the pre-allocation bound — cleanly, never via bad_alloc.
TEST(CkptFormatTest, LengthLyingMatrixHeaderIsMalformedNotBadAlloc) {
  const Bytes key = test_key(13);
  ckpt::ChunkWriter w(ckpt::kKindJmf, key);
  Bytes meta;
  ckpt::put_u32(meta, 1);
  w.add({'M', 'E', 'T', 'A'}, std::move(meta));
  Bytes matu;
  ckpt::put_u32(matu, 0xffffffffu);
  ckpt::put_u32(matu, 0xffffffffu);
  w.add({'M', 'A', 'T', 'U'}, std::move(matu));
  auto result = ckpt::decode_jmf(w.finish(), key);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.status().message(), "ckpt: chunk MATU malformed payload");
}

TEST(CkptFormatTest, LengthLyingVectorCountIsMalformedNotBadAlloc) {
  const Bytes key = test_key(13);
  Bytes matrix_payload;
  ckpt::put_u32(matrix_payload, 1);
  ckpt::put_u32(matrix_payload, 1);
  ckpt::put_f64(matrix_payload, 0.5);
  ckpt::ChunkWriter w(ckpt::kKindJmf, key);
  Bytes meta;
  ckpt::put_u32(meta, 1);
  w.add({'M', 'E', 'T', 'A'}, std::move(meta));
  w.add({'M', 'A', 'T', 'U'}, matrix_payload);
  w.add({'M', 'A', 'T', 'V'}, matrix_payload);
  Bytes wgtd;
  ckpt::put_u64(wgtd, std::uint64_t{1} << 60);  // claims 2^60 doubles
  w.add({'W', 'G', 'T', 'D'}, std::move(wgtd));
  auto result = ckpt::decode_jmf(w.finish(), key);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.status().message(), "ckpt: chunk WGTD malformed payload");
}

TEST(CkptFormatTest, TrailingBytesInsideTaggedChunkAreRejected) {
  const Bytes key = test_key(13);
  ckpt::ChunkWriter w(ckpt::kKindJmf, key);
  Bytes meta;
  ckpt::put_u32(meta, 1);
  meta.push_back(0);  // one stray byte, correctly tagged
  w.add({'M', 'E', 'T', 'A'}, std::move(meta));
  auto result = ckpt::decode_jmf(w.finish(), key);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(result.status().message(), "ckpt: chunk META malformed payload");
}

// --- io layer -------------------------------------------------------------

TEST(CkptIoTest, AtomicWriteReadRoundTrip) {
  const std::string dir = test_dir("io");
  const std::string path = dir + "/file.ckpt";
  ckpt::remove_file(path);

  EXPECT_FALSE(ckpt::file_exists(path));
  auto missing = ckpt::read_file(path);
  ASSERT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  const Bytes data{1, 2, 3, 4, 5};
  ASSERT_TRUE(ckpt::atomic_write_file(path, data).is_ok());
  EXPECT_TRUE(ckpt::file_exists(path));
  // Publication is atomic: no temp file survives a successful publish.
  EXPECT_FALSE(ckpt::file_exists(path + ".tmp"));
  auto read = ckpt::read_file(path);
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(*read, data);

  const Bytes next{9, 8, 7};
  ASSERT_TRUE(ckpt::atomic_write_file(path, next).is_ok());
  auto reread = ckpt::read_file(path);
  ASSERT_TRUE(reread.is_ok());
  EXPECT_EQ(*reread, next);

  ckpt::remove_file(path);
  EXPECT_FALSE(ckpt::file_exists(path));
}

// --- lake checkpoints -----------------------------------------------------

TEST(CkptLakeTest, CaptureEncodeDecodeRestoreRoundTrip) {
  crypto::KeyManagementService kms("tenant", Rng(7));
  const crypto::KeyId key_id = kms.create_symmetric_key("lake");
  storage::DataLake lake(kms, "lake", Rng(11));
  storage::MetadataStore meta;

  Rng body_rng(31);
  std::vector<std::string> refs;
  for (int i = 0; i < 8; ++i) {
    auto ref = lake.put(body_rng.bytes(48 + i), key_id);
    ASSERT_TRUE(ref.is_ok());
    refs.push_back(*ref);
    storage::RecordMetadata rm;
    rm.reference_id = *ref;
    rm.pseudonym = "pseudo-" + std::to_string(i);
    rm.consent_group = "study-a";
    rm.schema = "fhir-bundle";
    rm.privacy_level = "de-identified";
    rm.content_hash = body_rng.bytes(32);
    ASSERT_TRUE(meta.put(rm).is_ok());
  }

  ckpt::LakeSnapshot snapshot = ckpt::capture_lake(lake, &meta);
  EXPECT_EQ(snapshot.objects.size(), 8u);
  EXPECT_EQ(snapshot.metadata.size(), 8u);

  const Bytes data_key = test_key(21);
  const Bytes file = ckpt::encode_lake(snapshot, data_key);
  auto decoded = ckpt::decode_lake(file, data_key);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(ckpt::encode_lake(*decoded, data_key), file);

  // Restore into a fresh lake on a different id seed (so its own id stream
  // cannot collide with the restored references).
  storage::DataLake restored(kms, "lake", Rng(12), 0x2d5eed);
  storage::MetadataStore restored_meta;
  ASSERT_TRUE(ckpt::restore_lake(*decoded, restored, &restored_meta).is_ok());
  EXPECT_EQ(restored.object_count(), 8u);
  EXPECT_EQ(restored_meta.size(), 8u);
  for (const std::string& ref : refs) {
    auto before = lake.get(ref);
    auto after = restored.get(ref);
    ASSERT_TRUE(before.is_ok());
    ASSERT_TRUE(after.is_ok());
    EXPECT_EQ(*after, *before) << ref;
    auto rm = restored_meta.get(ref);
    ASSERT_TRUE(rm.is_ok());
    EXPECT_EQ(rm->consent_group, "study-a");
  }

  // Re-restoring the same snapshot is a no-op (idempotent import).
  ASSERT_TRUE(ckpt::restore_lake(*decoded, restored, &restored_meta).is_ok());
  EXPECT_EQ(restored.object_count(), 8u);
}

// A sharded checkpoint stores (reference, routing key, sealed object) with
// no placement — so a capture on 4 hosts restores onto 2, placement
// re-derived from the target ring, and a recapture re-encodes the same file.
TEST(CkptShardedTest, RestoreAcrossDifferentRingSizes) {
  ClockPtr clock = make_clock();
  crypto::KeyManagementService kms("tenant", Rng(7));
  const crypto::KeyId key_id = kms.create_symmetric_key("lake");

  cluster::ClusterConfig four_config;
  four_config.hosts = 4;
  four_config.replication = 2;
  cluster::Cluster four(four_config, clock);
  cluster::ShardedLake source(four, kms, "lake", Rng(21));

  Rng body_rng(41);
  std::vector<std::string> refs;
  for (int i = 0; i < 10; ++i) {
    auto ref = source.put(body_rng.bytes(64), key_id,
                          "route-" + std::to_string(i));
    ASSERT_TRUE(ref.is_ok());
    refs.push_back(*ref);
  }

  auto snapshot = ckpt::capture_sharded(source);
  ASSERT_TRUE(snapshot.is_ok()) << snapshot.status().to_string();
  const Bytes data_key = test_key(22);
  const Bytes file = ckpt::encode_sharded(*snapshot, data_key);
  auto decoded = ckpt::decode_sharded(file, data_key);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();

  cluster::ClusterConfig two_config;
  two_config.hosts = 2;
  two_config.replication = 2;
  cluster::Cluster two(two_config, clock);
  cluster::ShardedLake target(two, kms, "lake", Rng(22));
  ASSERT_TRUE(ckpt::restore_sharded(*decoded, target).is_ok());

  EXPECT_EQ(target.object_count(), source.object_count());
  for (const std::string& ref : refs) {
    auto before = source.get(ref);
    auto after = target.get(ref);
    ASSERT_TRUE(before.is_ok());
    ASSERT_TRUE(after.is_ok()) << after.status().to_string();
    EXPECT_EQ(*after, *before) << ref;
  }
  auto source_digest = source.content_digest();
  auto target_digest = target.content_digest();
  ASSERT_TRUE(source_digest.is_ok());
  ASSERT_TRUE(target_digest.is_ok());
  EXPECT_EQ(*target_digest, *source_digest);

  // The sealed bytes moved verbatim: recapturing from the 2-host ring
  // serializes the byte-identical checkpoint file.
  auto recaptured = ckpt::capture_sharded(target);
  ASSERT_TRUE(recaptured.is_ok());
  EXPECT_EQ(ckpt::encode_sharded(*recaptured, data_key), file);
}

// --- FitSession units -----------------------------------------------------

struct FitRig {
  crypto::KeyManagementService kms{"analytics-tenant", Rng(5)};
  crypto::KeyId key_id = kms.create_symmetric_key("analytics");
  Bytes data_key = *kms.symmetric_key(key_id, "analytics");
  std::string dir;

  explicit FitRig(const std::string& name) : dir(test_dir(name)) {}
};

TEST(CkptFitTest, RejectsBadConfig) {
  FitRig rig("bad_config");
  ckpt::FitSessionConfig config;
  config.dir = rig.dir;
  config.checkpoint_every_n_epochs = 0;
  EXPECT_THROW(ckpt::FitSession(config, rig.kms, rig.key_id, "analytics",
                                make_clock()),
               std::invalid_argument);
  config.checkpoint_every_n_epochs = 1;
  EXPECT_THROW(
      ckpt::FitSession(config, rig.kms, rig.key_id, "analytics", nullptr),
      std::invalid_argument);
}

TEST(CkptFitTest, LoadBeforeFirstCheckpointIsNotFound) {
  FitRig rig("load_notfound");
  ckpt::FitSessionConfig config;
  config.dir = rig.dir;
  config.name = "never-published";
  ckpt::FitSession session(config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  ckpt::remove_file(session.path());
  auto loaded = session.load_mf();
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CkptFitTest, CheckpointEveryNSchedule) {
  FitRig rig("schedule");
  ckpt::FitSessionConfig config;
  config.dir = rig.dir;
  config.name = "mf-every-2";
  config.checkpoint_every_n_epochs = 2;
  ckpt::FitSession session(config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  ckpt::remove_file(session.path());

  analytics::Matrix observed = filled_matrix(8, 6, 0.1);
  analytics::Matrix mask(8, 6, 1.0);
  analytics::MfConfig mf;
  mf.rank = 3;
  mf.epochs = 6;
  mf.epoch_hook = session.mf_hook();
  Rng rng(17);
  (void)analytics::factorize(observed, mask, mf, rng);

  // Boundaries 1, 3, 5 are due under every-2: three checkpoints, and the
  // last one resumes at epoch 6 (i.e. the fit was complete).
  EXPECT_EQ(session.checkpoints_written(), 3);
  auto loaded = session.load_mf();
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->next_epoch, 6);
  ckpt::remove_file(session.path());
}

TEST(CkptFitTest, TornCheckpointFileIsRejectedOnLoad) {
  FitRig rig("torn");
  ckpt::FitSessionConfig config;
  config.dir = rig.dir;
  config.name = "torn";
  ckpt::FitSession session(config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  const Bytes file = ckpt::encode_mf(analytics::MfResume{}, rig.data_key);
  Bytes torn(file.begin(), file.begin() + static_cast<std::ptrdiff_t>(file.size() / 2));
  ASSERT_TRUE(ckpt::atomic_write_file(session.path(), torn).is_ok());
  auto loaded = session.load_mf();
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ckpt::remove_file(session.path());
}

// --- kill-and-resume wall -------------------------------------------------
//
// Shape shared by all three solvers: run the fit with a FitSession hook
// under a FaultPlan that crashes the analytics host at one exact epoch
// boundary; catch SimulatedCrash; load the last published checkpoint
// (kNotFound when the crash hit boundary 0 — resume from scratch); re-run
// with config.resume; assert the final state is byte-identical to an
// uninterrupted run. Every boundary is swept, and worker counts 1/2/4/8.

analytics::DrugDiseaseWorkload small_jmf_workload() {
  analytics::WorkloadConfig config;
  config.drugs = 24;
  config.diseases = 18;
  config.latent_rank = 3;
  config.drug_source_noise = {0.05, 0.3};
  config.disease_source_noise = {0.05, 0.3};
  Rng rng(77);
  return analytics::make_drug_disease_workload(config, rng);
}

Bytes jmf_final_bytes(const analytics::JmfResult& result, int epochs,
                      const Bytes& data_key) {
  analytics::JmfResume fin;
  fin.next_epoch = epochs;
  fin.u = result.factor_u;
  fin.v = result.factor_v;
  fin.drug_source_weights = result.drug_source_weights;
  fin.disease_source_weights = result.disease_source_weights;
  fin.objective_history = result.objective_history;
  return ckpt::encode_jmf(fin, data_key);
}

Bytes run_jmf_crash_resume(const analytics::DrugDiseaseWorkload& workload,
                           analytics::JmfConfig config, int crash_epoch,
                           FitRig& rig, const std::string& name) {
  ckpt::FitSessionConfig fit_config;
  fit_config.dir = rig.dir;
  fit_config.name = name;
  {
    ClockPtr clock = make_clock();
    fault::FaultPlan plan;
    plan.crash("analytics", (crash_epoch + 1) * kMillisecond,
               (crash_epoch + 1) * kMillisecond + 1);
    auto faults = fault::make_injector(plan, clock, Rng(99));
    ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                             clock, faults);
    ckpt::remove_file(session.path());
    analytics::JmfConfig crashed = config;
    crashed.epoch_hook = session.jmf_hook();
    Rng rng(123);
    bool threw = false;
    try {
      (void)analytics::joint_matrix_factorization(
          workload.observed, workload.drug_similarities,
          workload.disease_similarities, crashed, rng);
    } catch (const ckpt::SimulatedCrash& crash) {
      threw = true;
      EXPECT_EQ(crash.epoch, crash_epoch);
    }
    EXPECT_TRUE(threw) << "crash window missed at boundary " << crash_epoch;
  }
  ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  analytics::JmfConfig resumed = config;
  resumed.epoch_hook = session.jmf_hook();
  analytics::JmfResume checkpoint;
  auto loaded = session.load_jmf();
  if (crash_epoch == 0) {
    // Crash fires before the boundary-0 seal: no checkpoint — from scratch.
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  } else {
    EXPECT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    if (loaded.is_ok()) {
      checkpoint = std::move(*loaded);
      EXPECT_EQ(checkpoint.next_epoch, crash_epoch);
      resumed.resume = &checkpoint;
    }
  }
  Rng rng(123);
  auto result = analytics::joint_matrix_factorization(
      workload.observed, workload.drug_similarities,
      workload.disease_similarities, resumed, rng);
  ckpt::remove_file(session.path());
  return jmf_final_bytes(result, config.epochs, rig.data_key);
}

TEST(CkptWallTest, JmfKillAndResumeAtEveryBoundary) {
  const analytics::DrugDiseaseWorkload workload = small_jmf_workload();
  analytics::JmfConfig config;
  config.rank = 4;
  config.epochs = 5;
  config.materialize_scores = false;
  FitRig rig("jmf_wall");

  Rng golden_rng(123);
  const Bytes golden = jmf_final_bytes(
      analytics::joint_matrix_factorization(
          workload.observed, workload.drug_similarities,
          workload.disease_similarities, config, golden_rng),
      config.epochs, rig.data_key);

  for (int e = 0; e < config.epochs; ++e) {
    EXPECT_EQ(run_jmf_crash_resume(workload, config, e, rig, "jmf"), golden)
        << "resume after crash at boundary " << e;
  }
}

TEST(CkptWallTest, JmfResumeByteIdenticalAcrossSolverPathsAndWorkers) {
  const analytics::DrugDiseaseWorkload workload = small_jmf_workload();
  FitRig rig("jmf_paths");

  struct Path {
    const char* name;
    bool use_sparse;
    bool use_newton;
    int epochs;
  };
  const Path paths[] = {
      {"dense-fast", false, false, 5},
      {"sparse", true, false, 5},
      {"newton-cg", false, true, 3},
  };
  for (const Path& path : paths) {
    analytics::JmfConfig config;
    config.rank = 4;
    config.epochs = path.epochs;
    config.use_sparse = path.use_sparse;
    config.use_newton_cg = path.use_newton;
    config.materialize_scores = false;

    Rng golden_rng(123);
    const Bytes golden = jmf_final_bytes(
        analytics::joint_matrix_factorization(
            workload.observed, workload.drug_similarities,
            workload.disease_similarities, config, golden_rng),
        config.epochs, rig.data_key);

    const int crash_epoch = path.epochs / 2;
    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      analytics::JmfConfig swept = config;
      swept.workers = workers;
      EXPECT_EQ(run_jmf_crash_resume(workload, swept, crash_epoch, rig,
                                     std::string("jmf-") + path.name),
                golden)
          << path.name << " with " << workers << " workers";
    }
  }
}

Bytes mf_final_bytes(const analytics::MfModel& model, int epochs,
                     const Bytes& data_key) {
  analytics::MfResume fin;
  fin.next_epoch = epochs;
  fin.u = model.u;
  fin.v = model.v;
  fin.objective_history = model.objective_history;
  return ckpt::encode_mf(fin, data_key);
}

Bytes run_mf_crash_resume(const analytics::Matrix& observed,
                          const analytics::Matrix& mask,
                          analytics::MfConfig config, int crash_epoch,
                          FitRig& rig, const std::string& name) {
  ckpt::FitSessionConfig fit_config;
  fit_config.dir = rig.dir;
  fit_config.name = name;
  {
    ClockPtr clock = make_clock();
    fault::FaultPlan plan;
    plan.crash("analytics", (crash_epoch + 1) * kMillisecond,
               (crash_epoch + 1) * kMillisecond + 1);
    auto faults = fault::make_injector(plan, clock, Rng(99));
    ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                             clock, faults);
    ckpt::remove_file(session.path());
    analytics::MfConfig crashed = config;
    crashed.epoch_hook = session.mf_hook();
    Rng rng(123);
    bool threw = false;
    try {
      (void)analytics::factorize(observed, mask, crashed, rng);
    } catch (const ckpt::SimulatedCrash& crash) {
      threw = true;
      EXPECT_EQ(crash.epoch, crash_epoch);
    }
    EXPECT_TRUE(threw) << "crash window missed at boundary " << crash_epoch;
  }
  ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  analytics::MfConfig resumed = config;
  resumed.epoch_hook = session.mf_hook();
  analytics::MfResume checkpoint;
  auto loaded = session.load_mf();
  if (crash_epoch == 0) {
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  } else {
    EXPECT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    if (loaded.is_ok()) {
      checkpoint = std::move(*loaded);
      EXPECT_EQ(checkpoint.next_epoch, crash_epoch);
      resumed.resume = &checkpoint;
    }
  }
  Rng rng(123);
  auto model = analytics::factorize(observed, mask, resumed, rng);
  ckpt::remove_file(session.path());
  return mf_final_bytes(model, config.epochs, rig.data_key);
}

TEST(CkptWallTest, MfKillAndResumeAtEveryBoundary) {
  const analytics::Matrix observed = filled_matrix(10, 8, 0.2);
  const analytics::Matrix mask(10, 8, 1.0);
  analytics::MfConfig config;
  config.rank = 3;
  config.epochs = 6;
  FitRig rig("mf_wall");

  Rng golden_rng(123);
  const Bytes golden =
      mf_final_bytes(analytics::factorize(observed, mask, config, golden_rng),
                     config.epochs, rig.data_key);

  for (int e = 0; e < config.epochs; ++e) {
    EXPECT_EQ(run_mf_crash_resume(observed, mask, config, e, rig, "mf"),
              golden)
        << "resume after crash at boundary " << e;
  }
}

TEST(CkptWallTest, MfResumeByteIdenticalAcrossSolverPathsAndWorkers) {
  const analytics::Matrix observed = filled_matrix(10, 8, 0.2);
  const analytics::Matrix mask(10, 8, 1.0);
  FitRig rig("mf_paths");

  struct Path {
    const char* name;
    bool use_sparse;
    bool use_newton;
  };
  const Path paths[] = {
      {"sparse", true, false},
      {"newton-cg", false, true},
  };
  for (const Path& path : paths) {
    analytics::MfConfig config;
    config.rank = 3;
    config.epochs = 6;
    config.use_sparse = path.use_sparse;
    config.use_newton_cg = path.use_newton;

    Rng golden_rng(123);
    const Bytes golden = mf_final_bytes(
        analytics::factorize(observed, mask, config, golden_rng),
        config.epochs, rig.data_key);

    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      analytics::MfConfig swept = config;
      swept.workers = workers;
      EXPECT_EQ(run_mf_crash_resume(observed, mask, swept, 3, rig,
                                    std::string("mf-") + path.name),
                golden)
          << path.name << " with " << workers << " workers";
    }
  }
}

analytics::EmrDataset small_emr_dataset() {
  analytics::EmrConfig config;
  config.patients = 60;
  config.drugs = 12;
  config.planted_drugs = 3;
  config.measurements_per_patient = 5;
  config.medications_per_patient = 3;
  config.confounded_drugs = 2;
  Rng rng(55);
  return analytics::make_emr_dataset(config, rng);
}

void expect_delt_equal(const analytics::DeltModel& resumed,
                       const analytics::DeltModel& golden,
                       const std::string& label) {
  EXPECT_EQ(resumed.drug_effects, golden.drug_effects) << label;
  EXPECT_EQ(resumed.patient_baselines, golden.patient_baselines) << label;
  EXPECT_EQ(resumed.patient_drifts, golden.patient_drifts) << label;
  EXPECT_EQ(resumed.objective_history, golden.objective_history) << label;
}

analytics::DeltModel run_delt_crash_resume(const analytics::EmrDataset& dataset,
                                           analytics::DeltConfig config,
                                           int crash_iteration, FitRig& rig,
                                           const std::string& name) {
  ckpt::FitSessionConfig fit_config;
  fit_config.dir = rig.dir;
  fit_config.name = name;
  {
    ClockPtr clock = make_clock();
    fault::FaultPlan plan;
    plan.crash("analytics", (crash_iteration + 1) * kMillisecond,
               (crash_iteration + 1) * kMillisecond + 1);
    auto faults = fault::make_injector(plan, clock, Rng(99));
    ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                             clock, faults);
    ckpt::remove_file(session.path());
    analytics::DeltConfig crashed = config;
    crashed.epoch_hook = session.delt_hook();
    bool threw = false;
    try {
      (void)analytics::fit_delt(dataset, crashed);
    } catch (const ckpt::SimulatedCrash& crash) {
      threw = true;
      EXPECT_EQ(crash.epoch, crash_iteration);
    }
    EXPECT_TRUE(threw) << "crash window missed at boundary " << crash_iteration;
  }
  ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  analytics::DeltConfig resumed = config;
  resumed.epoch_hook = session.delt_hook();
  analytics::DeltResume checkpoint;
  auto loaded = session.load_delt();
  if (crash_iteration == 0) {
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  } else {
    EXPECT_TRUE(loaded.is_ok()) << loaded.status().to_string();
    if (loaded.is_ok()) {
      checkpoint = std::move(*loaded);
      EXPECT_EQ(checkpoint.next_iteration, crash_iteration);
      resumed.resume = &checkpoint;
    }
  }
  analytics::DeltModel model = analytics::fit_delt(dataset, resumed);
  ckpt::remove_file(session.path());
  return model;
}

TEST(CkptWallTest, DeltKillAndResumeAtEveryIteration) {
  const analytics::EmrDataset dataset = small_emr_dataset();
  analytics::DeltConfig config;
  config.iterations = 5;
  FitRig rig("delt_wall");

  const analytics::DeltModel golden = analytics::fit_delt(dataset, config);
  for (int e = 0; e < config.iterations; ++e) {
    expect_delt_equal(run_delt_crash_resume(dataset, config, e, rig, "delt"),
                      golden, "crash at iteration " + std::to_string(e));
  }
}

TEST(CkptWallTest, DeltResumeAcrossSparseAndWorkers) {
  const analytics::EmrDataset dataset = small_emr_dataset();
  FitRig rig("delt_paths");
  for (bool use_sparse : {false, true}) {
    analytics::DeltConfig config;
    config.iterations = 5;
    config.use_sparse = use_sparse;
    const analytics::DeltModel golden = analytics::fit_delt(dataset, config);
    for (std::size_t workers : {1u, 2u, 4u, 8u}) {
      analytics::DeltConfig swept = config;
      swept.workers = workers;
      expect_delt_equal(
          run_delt_crash_resume(dataset, swept, 2, rig, "delt-sweep"), golden,
          (use_sparse ? std::string("sparse ") : std::string("dense ")) +
              std::to_string(workers) + " workers");
    }
  }
}

// The Newton-CG DELT path is a single joint solve: its one checkpoint (at
// iteration boundary 0) *is* the final state, and a resume returns it
// without re-solving. A crash at boundary 0 finds no checkpoint and
// re-solves from scratch — both land on the golden model.
TEST(CkptWallTest, DeltNewtonCheckpointRoundTrip) {
  const analytics::EmrDataset dataset = small_emr_dataset();
  analytics::DeltConfig config;
  config.iterations = 1;
  config.use_newton_cg = true;
  FitRig rig("delt_newton");

  const analytics::DeltModel golden = analytics::fit_delt(dataset, config);

  // Crash at boundary 0: nothing sealed; resume re-solves from scratch.
  expect_delt_equal(run_delt_crash_resume(dataset, config, 0, rig,
                                          "delt-newton"),
                    golden, "newton crash at boundary 0");

  // Uninterrupted run with a hook seals exactly one checkpoint whose resume
  // short-circuits to the restored (final) state.
  ckpt::FitSessionConfig fit_config;
  fit_config.dir = rig.dir;
  fit_config.name = "delt-newton-full";
  ckpt::FitSession session(fit_config, rig.kms, rig.key_id, "analytics",
                           make_clock());
  ckpt::remove_file(session.path());
  analytics::DeltConfig hooked = config;
  hooked.epoch_hook = session.delt_hook();
  (void)analytics::fit_delt(dataset, hooked);
  EXPECT_EQ(session.checkpoints_written(), 1);
  auto loaded = session.load_delt();
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->next_iteration, 1);
  analytics::DeltConfig restored = config;
  restored.resume = &*loaded;
  expect_delt_equal(analytics::fit_delt(dataset, restored), golden,
                    "newton resume from sealed final state");
  ckpt::remove_file(session.path());
}

}  // namespace
}  // namespace hc
