#include <gtest/gtest.h>

#include "rbac/federated.h"
#include "rbac/rbac.h"

namespace hc::rbac {
namespace {

class RbacFixture : public ::testing::Test {
 protected:
  RbacFixture() {
    tenant_ = rbac_.register_tenant("mercy-health").value();
    env_ = tenant_.default_env;
    alice_ = rbac_.add_user(tenant_.id, "alice").value();
    study_ = rbac_.add_group(tenant_.id, "diabetes-study").value();
  }

  RbacSystem rbac_;
  TenantInfo tenant_;
  std::string env_;
  std::string alice_;
  std::string study_;
};

TEST_F(RbacFixture, RegistrationCreatesDefaults) {
  EXPECT_FALSE(tenant_.default_org.empty());
  EXPECT_FALSE(tenant_.default_env.empty());
  EXPECT_TRUE(rbac_.environment_exists(tenant_.default_env));
}

TEST_F(RbacFixture, DuplicateTenantNameRejected) {
  EXPECT_EQ(rbac_.register_tenant("mercy-health").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(RbacFixture, EntityCreationRequiresExistingParents) {
  EXPECT_EQ(rbac_.add_organization("ghost", "x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rbac_.add_environment("ghost", "x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rbac_.add_group("ghost", "x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rbac_.add_user("ghost", "x").status().code(), StatusCode::kNotFound);
}

TEST_F(RbacFixture, DefaultDeny) {
  auto s = rbac_.check_access(alice_, env_, tenant_.id, "datalake/records/1",
                              Permission::kRead);
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
}

TEST_F(RbacFixture, RoleGrantAllowsAccess) {
  ASSERT_TRUE(rbac_.assign_role(alice_, env_, Role::kAnalyst).is_ok());
  ASSERT_TRUE(rbac_
                  .grant_permission(tenant_.id, Role::kAnalyst, "datalake/deidentified/",
                                    Permission::kRead)
                  .is_ok());
  EXPECT_TRUE(rbac_
                  .check_access(alice_, env_, tenant_.id,
                                "datalake/deidentified/rec-1", Permission::kRead)
                  .is_ok());
  // Write was not granted.
  EXPECT_FALSE(rbac_
                   .check_access(alice_, env_, tenant_.id,
                                 "datalake/deidentified/rec-1", Permission::kWrite)
                   .is_ok());
  // Different resource prefix is denied.
  EXPECT_FALSE(rbac_
                   .check_access(alice_, env_, tenant_.id, "datalake/identified/rec-1",
                                 Permission::kRead)
                   .is_ok());
}

TEST_F(RbacFixture, RolesAreEnvironmentScoped) {
  auto env2 = rbac_.add_environment(tenant_.default_org, "prod").value();
  ASSERT_TRUE(rbac_.assign_role(alice_, env_, Role::kDeveloper).is_ok());
  ASSERT_TRUE(rbac_
                  .grant_permission(tenant_.id, Role::kDeveloper, "models/",
                                    Permission::kWrite)
                  .is_ok());
  EXPECT_TRUE(
      rbac_.check_access(alice_, env_, tenant_.id, "models/jmf", Permission::kWrite)
          .is_ok());
  // Same user, prod environment, no role there -> denied.
  EXPECT_FALSE(
      rbac_.check_access(alice_, env2, tenant_.id, "models/jmf", Permission::kWrite)
          .is_ok());
  EXPECT_TRUE(rbac_.has_role(alice_, env_, Role::kDeveloper));
  EXPECT_FALSE(rbac_.has_role(alice_, env2, Role::kDeveloper));
}

TEST_F(RbacFixture, RevokeRoleRemovesAccess) {
  ASSERT_TRUE(rbac_.assign_role(alice_, env_, Role::kAnalyst).is_ok());
  ASSERT_TRUE(
      rbac_.grant_permission(tenant_.id, Role::kAnalyst, "kb/", Permission::kRead)
          .is_ok());
  ASSERT_TRUE(
      rbac_.check_access(alice_, env_, tenant_.id, "kb/drugbank", Permission::kRead)
          .is_ok());
  ASSERT_TRUE(rbac_.revoke_role(alice_, env_, Role::kAnalyst).is_ok());
  EXPECT_FALSE(
      rbac_.check_access(alice_, env_, tenant_.id, "kb/drugbank", Permission::kRead)
          .is_ok());
  EXPECT_EQ(rbac_.revoke_role(alice_, env_, Role::kAnalyst).code(),
            StatusCode::kNotFound);
}

TEST_F(RbacFixture, GroupScopedAccessRequiresMembership) {
  ASSERT_TRUE(rbac_.assign_role(alice_, env_, Role::kClinician).is_ok());
  ASSERT_TRUE(rbac_
                  .grant_permission(study_, Role::kClinician, "phi/",
                                    Permission::kRead)
                  .is_ok());
  // Consent group membership missing -> denied even though role+grant exist.
  EXPECT_FALSE(
      rbac_.check_access(alice_, env_, study_, "phi/patient-1", Permission::kRead)
          .is_ok());
  ASSERT_TRUE(rbac_.add_user_to_group(alice_, study_).is_ok());
  EXPECT_TRUE(
      rbac_.check_access(alice_, env_, study_, "phi/patient-1", Permission::kRead)
          .is_ok());
  EXPECT_TRUE(rbac_.is_group_member(alice_, study_));
}

TEST_F(RbacFixture, CrossTenantGroupMembershipRejected) {
  auto other = rbac_.register_tenant("other-hospital").value();
  auto other_group = rbac_.add_group(other.id, "their-study").value();
  EXPECT_EQ(rbac_.add_user_to_group(alice_, other_group).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(RbacFixture, UnknownUserIsUnauthenticated) {
  EXPECT_EQ(rbac_.check_access("ghost", env_, tenant_.id, "x", Permission::kRead).code(),
            StatusCode::kUnauthenticated);
}

TEST_F(RbacFixture, GrantRequiresValidScope) {
  EXPECT_EQ(
      rbac_.grant_permission("ghost-scope", Role::kAnalyst, "x", Permission::kRead)
          .code(),
      StatusCode::kNotFound);
}

TEST_F(RbacFixture, MeteringCounts) {
  ASSERT_TRUE(rbac_.meter_call(tenant_.id).is_ok());
  ASSERT_TRUE(rbac_.meter_call(tenant_.id).is_ok());
  EXPECT_EQ(rbac_.metered_calls(tenant_.id).value(), 2u);
  EXPECT_EQ(rbac_.meter_call("ghost").code(), StatusCode::kNotFound);
}

TEST_F(RbacFixture, NamesForAllRolesAndPermissions) {
  for (auto r : {Role::kTenantAdmin, Role::kDeveloper, Role::kAnalyst,
                 Role::kClinician, Role::kAuditor}) {
    EXPECT_NE(role_name(r), "unknown");
  }
  EXPECT_EQ(permission_name(Permission::kRead), "read");
  EXPECT_EQ(permission_name(Permission::kWrite), "write");
}

// ------------------------------------------------------------- federated

class FederatedFixture : public ::testing::Test {
 protected:
  FederatedFixture()
      : clock_(make_clock()),
        rng_(20),
        idp_("hospital-idp", rng_, clock_),
        auth_(clock_) {
    auth_.approve_idp(idp_.name(), idp_.public_key());
    auth_.enroll("hospital-idp", "jane@hospital.org", "user-jane");
  }

  ClockPtr clock_;
  Rng rng_;
  IdentityProvider idp_;
  FederatedAuthenticator auth_;
};

TEST_F(FederatedFixture, ValidTokenAuthenticates) {
  auto token = idp_.issue("jane@hospital.org", "tenant-1");
  auto user = auth_.authenticate(token);
  ASSERT_TRUE(user.is_ok());
  EXPECT_EQ(*user, "user-jane");
}

TEST_F(FederatedFixture, UnapprovedIdpRejected) {
  Rng rng2(21);
  IdentityProvider rogue("rogue-idp", rng2, clock_);
  auto token = rogue.issue("jane@hospital.org", "tenant-1");
  EXPECT_EQ(auth_.authenticate(token).status().code(), StatusCode::kUnauthenticated);
}

TEST_F(FederatedFixture, ForgedSignatureRejected) {
  auto token = idp_.issue("jane@hospital.org", "tenant-1");
  token.subject = "mallory@hospital.org";  // altered after signing
  EXPECT_EQ(auth_.authenticate(token).status().code(), StatusCode::kUnauthenticated);
}

TEST_F(FederatedFixture, ExpiredTokenRejected) {
  auto token = idp_.issue("jane@hospital.org", "tenant-1");
  clock_->advance(2 * kHour);
  EXPECT_EQ(auth_.authenticate(token).status().code(), StatusCode::kUnauthenticated);
}

TEST_F(FederatedFixture, UnenrolledSubjectRejected) {
  auto token = idp_.issue("bob@hospital.org", "tenant-1");
  EXPECT_EQ(auth_.authenticate(token).status().code(), StatusCode::kUnauthenticated);
}

TEST_F(FederatedFixture, RevokedIdpStopsAuthenticating) {
  auto token = idp_.issue("jane@hospital.org", "tenant-1");
  ASSERT_TRUE(auth_.authenticate(token).is_ok());
  auth_.revoke_idp(idp_.name());
  EXPECT_FALSE(auth_.authenticate(token).is_ok());
}

}  // namespace
}  // namespace hc::rbac
