// Parser robustness: the ingestion path feeds attacker-controlled bytes to
// the JSON/FHIR/HL7 parsers, so none of them may crash, hang, or accept
// garbage — across randomized inputs and structure-aware mutations. The
// wire fuzzer does the same for the transport: random in-flight bit flips
// must always be rejected by the HMAC, never crash. The router fuzzer at
// the bottom hammers the shard router (hc::cluster) with hostile ids and
// mid-rebalance ring churn: it must never crash, never misroute, and
// never drop a key. The sparse-constructor fuzzer feeds hostile triplet
// streams (duplicates, unsorted, out-of-range) to the analytics CSR
// builder: it must canonicalize or reject cleanly, never crash or emit a
// non-canonical matrix. The checkpoint-blob fuzzer at the very bottom
// attacks the chunked checkpoint decoder (hc::ckpt) with random blobs,
// every single-bit flip of valid files, truncations, extensions, and
// lying length fields: every mutant must be rejected with a clean
// kDataLoss/kInvalidArgument status — never a crash, a bad_alloc from an
// attacker-chosen length, or a silent accept.
#include <gtest/gtest.h>

#include "analytics/sparse.h"
#include "ckpt/checkpoint.h"
#include "cluster/cluster.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "fhir/hl7.h"
#include "fhir/json.h"
#include "fhir/resources.h"
#include "fhir/synthetic.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "provenance/provenance.h"
#include "scenario/compiler.h"
#include "scenario/validator.h"

namespace hc::fhir {
namespace {

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    auto bytes = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 200)));
    // Must return (ok or error), never crash or throw.
    auto result = parse_json(to_string(bytes));
    if (result.is_ok()) {
      // Whatever parsed must re-serialize and re-parse stably.
      auto again = parse_json(result->dump());
      ASSERT_TRUE(again.is_ok());
      EXPECT_EQ(again->dump(), result->dump());
    }
  }
}

TEST_P(JsonFuzz, StructureAwareMutationsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const std::string valid =
      R"({"resourceType":"Bundle","id":"b","entry":[{"resourceType":"Patient",)"
      R"("id":"p","name":"J \"D\" é","age":37,"zip":"10598"}]})";
  for (int i = 0; i < 500; ++i) {
    std::string mutated = valid;
    int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: mutated[pos] = static_cast<char>(rng.uniform_int(1, 255)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(1, 255)));
      }
    }
    (void)parse_json(mutated);                 // no crash
    (void)parse_bundle(to_bytes(mutated));     // no crash, no bogus accept of
                                               // structurally broken bundles
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4));

TEST(JsonFuzz, GeneratedValuesRoundTrip) {
  Rng rng(99);
  // Random JSON trees: dump -> parse -> dump must be a fixed point.
  std::function<Json(int)> gen = [&](int depth) -> Json {
    if (depth <= 0 || rng.bernoulli(0.3)) {
      switch (rng.uniform_int(0, 3)) {
        case 0: return Json(nullptr);
        case 1: return Json(rng.bernoulli(0.5));
        case 2: return Json(rng.uniform(-1e6, 1e6));
        default: return Json("s" + std::to_string(rng.uniform_int(0, 999)) + "\n\"x");
      }
    }
    if (rng.bernoulli(0.5)) {
      JsonArray arr;
      for (int i = 0; i < rng.uniform_int(0, 4); ++i) arr.push_back(gen(depth - 1));
      return Json(std::move(arr));
    }
    JsonObject obj;
    for (int i = 0; i < rng.uniform_int(0, 4); ++i) {
      obj.emplace("k" + std::to_string(i), gen(depth - 1));
    }
    return Json(std::move(obj));
  };
  for (int i = 0; i < 200; ++i) {
    Json value = gen(4);
    auto parsed = parse_json(value.dump());
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed->dump(), value.dump());
  }
}

class Hl7Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Hl7Fuzz, RandomSegmentsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  const char* segments[] = {"MSH", "PID", "OBX", "ZZZ", ""};
  for (int i = 0; i < 300; ++i) {
    std::string message;
    int lines = static_cast<int>(rng.uniform_int(0, 5));
    for (int l = 0; l < lines; ++l) {
      message += segments[rng.uniform_int(0, 4)];
      int fields = static_cast<int>(rng.uniform_int(0, 12));
      for (int f = 0; f < fields; ++f) {
        message += "|";
        if (rng.bernoulli(0.7)) {
          message += to_string(rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 8))));
        }
      }
      message += rng.bernoulli(0.5) ? "\r" : "\n";
    }
    auto bundle = hl7v2_to_bundle(message, "fuzz");
    if (bundle.is_ok()) {
      // Anything accepted must serialize cleanly.
      (void)serialize_bundle(*bundle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hl7Fuzz, ::testing::Values(1, 2, 3));

TEST(Hl7Fuzz, SyntheticBundlesRoundTripThroughHl7) {
  // Property: Patient+Observation bundles survive FHIR -> HL7 -> FHIR.
  Rng rng(77);
  for (std::size_t i = 0; i < 20; ++i) {
    SyntheticOptions options;
    options.patient_count = 1;
    options.first_patient_index = i;
    options.medications_per_patient = 0;  // HL7 adapter covers PID/OBX only
    options.condition_probability = 0.0;
    Bundle bundle = make_synthetic_bundles(rng, options).front();

    auto hl7 = bundle_to_hl7v2(bundle);
    ASSERT_TRUE(hl7.is_ok());
    auto back = hl7v2_to_bundle(*hl7, bundle.id);
    ASSERT_TRUE(back.is_ok());
    ASSERT_EQ(back->resources.size(), bundle.resources.size());
    const auto& original = std::get<Patient>(bundle.resources[0]);
    const auto& round_tripped = std::get<Patient>(back->resources[0]);
    EXPECT_EQ(round_tripped.id, original.id);
    EXPECT_EQ(round_tripped.name, original.name);
    EXPECT_EQ(round_tripped.gender, original.gender);
    EXPECT_EQ(round_tripped.age, original.age);
  }
}

}  // namespace
}  // namespace hc::fhir

namespace hc::net {
namespace {

// Corrupted-on-the-wire fuzzer (ISSUE satellite): the FaultInjector flips
// 1-3 random bits of every secure-channel message. Ingestion of the
// mangled ciphertext must never crash, and encrypt-then-MAC must reject
// every single flip — there is no bit position whose corruption survives
// authentication.
class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, BitFlippedMessagesAlwaysRejectedByHmac) {
  auto clock = make_clock();
  SimNetwork network(clock, Rng(static_cast<std::uint64_t>(GetParam())));
  LinkProfile link;
  link.base_latency = 1 * kMillisecond;
  network.set_link("client", "cloud", link);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  auto keys = crypto::generate_keypair(rng);
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  auto channel = SecureChannel::establish(network, "client", "cloud", keys.pub,
                                          keys.priv, rng, metrics);
  ASSERT_TRUE(channel.is_ok());

  // Bind corruption only after the handshake so every data message — and
  // nothing else — is mangled in flight.
  fault::FaultPlan plan;
  plan.corrupt("client", "cloud", 1.0);
  network.set_fault_injector(fault::make_injector(
      plan, clock, Rng(static_cast<std::uint64_t>(GetParam()) + 3000)));

  Rng payload_rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  for (int i = 0; i < 200; ++i) {
    Bytes payload =
        payload_rng.bytes(static_cast<std::size_t>(payload_rng.uniform_int(1, 300)));
    auto delivered = channel->transmit(payload);
    ASSERT_FALSE(delivered.is_ok()) << "corrupted message " << i << " accepted";
    EXPECT_EQ(delivered.status().code(), StatusCode::kIntegrityError);
  }
  EXPECT_EQ(metrics->counter("hc.net.auth_failures"), 200u);

  // Detach the chaos plan: the channel itself must still be healthy.
  network.set_fault_injector(nullptr);
  EXPECT_TRUE(channel->transmit(to_bytes("clean again")).is_ok());
}

TEST_P(WireFuzz, CorruptionNeverCrashesAcrossPayloadShapes) {
  // Degenerate shapes: tiny, block-aligned, and large payloads, all
  // corrupted — exercise padding and MAC boundaries.
  auto clock = make_clock();
  SimNetwork network(clock, Rng(static_cast<std::uint64_t>(GetParam()) + 1));
  LinkProfile link;
  link.base_latency = 1 * kMillisecond;
  network.set_link("client", "cloud", link);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  auto keys = crypto::generate_keypair(rng);
  auto channel =
      SecureChannel::establish(network, "client", "cloud", keys.pub, keys.priv, rng);
  ASSERT_TRUE(channel.is_ok());

  fault::FaultPlan plan;
  plan.corrupt("client", "cloud", 1.0);
  network.set_fault_injector(fault::make_injector(
      plan, clock, Rng(static_cast<std::uint64_t>(GetParam()) + 6000)));

  for (std::size_t size : {1u, 15u, 16u, 17u, 32u, 1024u, 65536u}) {
    auto delivered = channel->transmit(Bytes(size, 0x5a));
    ASSERT_FALSE(delivered.is_ok());
    EXPECT_EQ(delivered.status().code(), StatusCode::kIntegrityError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::net

namespace hc::scenario {
namespace {

// Scenario-file fuzzer (ISSUE satellite): operators hand-edit these files,
// so the parser+validator face arbitrarily mangled text. Every mutation
// must produce either a clean kInvalidArgument diagnostic or a fully
// validated Scenario — never a crash, a hang, or a half-initialized config
// that violates the invariants validate() promises.
class ScenarioFuzz : public ::testing::TestWithParam<int> {};

// A valid file touching every block kind, so single-byte edits land in
// interesting places: quoted names, durations, probabilities, fault rules.
const char* valid_scenario_text() {
  return "scenario \"fuzz target\" {\n"
         "  seed 7\n"
         "  horizon 2s\n"
         "  sweep 0.5 1.0\n"
         "  nominal_rate 200\n"
         "  timeline_resolution 500ms\n"
         "}\n"
         "server {\n"
         "  scheduler both\n"
         "  deadline 50ms\n"
         "}\n"
         "quota \"gold\" {\n"
         "  rate 120\n"
         "  burst 24\n"
         "  weight 2\n"
         "}\n"
         "network \"edge\" {\n"
         "  latency 5ms\n"
         "  jitter 1ms\n"
         "  loss 0.01\n"
         "}\n"
         "tenant \"ward\" {\n"
         "  quota \"gold\"\n"
         "  rate 80\n"
         "  cost 600 1400\n"
         "  network \"edge\"\n"
         "  consent_probability 0.9\n"
         "}\n"
         "tenant \"lab\" {\n"
         "  arrival poisson\n"
         "  rate 40\n"
         "}\n"
         "phase \"burst\" {\n"
         "  from 1s\n"
         "  until 2s\n"
         "  rate_scale 2\n"
         "  tenants \"lab\"\n"
         "}\n"
         "fault {\n"
         "  drop \"ward\" \"server\" 0.05\n"
         "}\n"
         "verdict \"sane\" {\n"
         "  require min_served_fraction\n"
         "  bound 0.1\n"
         "}\n";
}

// If a mutant is accepted, its config must be internally consistent —
// the all-or-nothing contract — and must compile without crashing. The
// compile is skipped for mutants whose (valid!) numbers would expand to
// millions of arrivals; the point here is memory safety, not throughput.
void check_accepted(const Scenario& scenario) {
  ASSERT_FALSE(scenario.tenants.empty());
  ASSERT_GT(scenario.horizon, 0);
  ASSERT_FALSE(scenario.sweep.empty());
  bool small = scenario.horizon <= 5 * kSecond;
  for (const TenantSpec& tenant : scenario.tenants) {
    if (!tenant.network.empty()) {
      EXPECT_NE(scenario.network_for(tenant), nullptr);
    }
    small = small && tenant.rate_per_sec <= 5000.0 && tenant.clients <= 1000;
  }
  for (const PhaseSpec& phase : scenario.phases) {
    small = small && phase.rate_scale <= 100.0;
  }
  if (!small) return;
  Result<CompiledCell> cell = compile(scenario, scenario.sweep[0]);
  if (cell.is_ok()) {
    for (std::size_t i = 1; i < cell->arrivals.size(); ++i) {
      ASSERT_GE(cell->arrivals[i].at, cell->arrivals[i - 1].at);
    }
  }
}

TEST_P(ScenarioFuzz, MutatedScenarioFilesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 7000);
  const std::string valid = valid_scenario_text();
  for (int i = 0; i < 250; ++i) {
    std::string mutated = valid;
    int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits && !mutated.empty(); ++e) {
      auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.uniform_int(1, 255));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(1, 255)));
      }
    }
    Result<Scenario> result = load_string(mutated);  // must not crash/hang
    if (result.is_ok()) {
      check_accepted(*result);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(ScenarioFuzz, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 8000);
  for (int i = 0; i < 300; ++i) {
    auto bytes = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 300)));
    Result<Scenario> result = load_string(to_string(bytes));
    if (result.is_ok()) check_accepted(*result);
  }
}

// Line-shuffle mutants: whole statements moved across blocks exercise the
// cross-reference and structure checks rather than the tokenizer.
TEST_P(ScenarioFuzz, ShuffledLinesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 9000);
  std::vector<std::string> lines;
  {
    std::string current;
    for (char c : std::string(valid_scenario_text())) {
      if (c == '\n') {
        lines.push_back(current);
        current.clear();
      } else {
        current += c;
      }
    }
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<std::string> shuffled = lines;
    for (int swaps = 0; swaps < 6; ++swaps) {
      auto a = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shuffled.size()) - 1));
      auto b = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shuffled.size()) - 1));
      std::swap(shuffled[a], shuffled[b]);
    }
    std::string text;
    for (const std::string& line : shuffled) text += line + "\n";
    Result<Scenario> result = load_string(text);
    if (result.is_ok()) check_accepted(*result);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::scenario

namespace hc::provenance {
namespace {

// Membership-proof blob fuzzer (ISSUE satellite): auditors hand these
// blobs to third-party verifiers, so parse_proof faces untrusted bytes.
// It must never crash, never allocate from a lying length field, and a
// mutated blob must never verify as the proof it was forged from.
class ProofFuzz : public ::testing::TestWithParam<int> {};

MembershipProof fuzz_target_proof(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 13; ++i) leaves.push_back(rng.bytes(24));
  crypto::MerkleTree tree(leaves);
  MembershipProof proof;
  proof.batch_id = 42;
  proof.leaf = leaves[5];
  proof.path = tree.prove(5);
  proof.root = tree.root();
  return proof;
}

TEST_P(ProofFuzz, RandomBytesNeverCrashOrVerify) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 10000);
  for (int i = 0; i < 400; ++i) {
    auto blob = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 400)));
    auto parsed = parse_proof(blob);  // must not crash or throw
    if (parsed.is_ok()) {
      // Random bytes that happen to parse must still re-serialize to the
      // same blob, and essentially never carry a valid Merkle path.
      EXPECT_EQ(serialize_proof(*parsed), blob);
      EXPECT_FALSE(ProvenanceAuditor::verify(*parsed));
    }
  }
}

TEST_P(ProofFuzz, EverySingleBitFlipIsRejectedOrChangesTheProof) {
  MembershipProof proof =
      fuzz_target_proof(static_cast<std::uint64_t>(GetParam()) + 11000);
  Bytes blob = serialize_proof(proof);
  ASSERT_TRUE(ProvenanceAuditor::verify(proof));

  for (std::size_t byte = 0; byte < blob.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = blob;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      auto parsed = parse_proof(mutated);
      if (!parsed.is_ok()) continue;  // rejected cleanly — fine
      // Accepted mutants must be semantically different from the original
      // (the flip landed in the batch id) or fail path verification; no
      // flip may yield the same verified proof.
      const bool same_identity = parsed->batch_id == proof.batch_id &&
                                 parsed->leaf == proof.leaf &&
                                 parsed->root == proof.root;
      if (same_identity && ProvenanceAuditor::verify(*parsed)) {
        // Only a side-byte change inside the path could get here; it must
        // not reproduce the original path.
        bool path_differs = parsed->path.size() != proof.path.size();
        for (std::size_t n = 0; !path_differs && n < proof.path.size(); ++n) {
          path_differs = parsed->path[n].hash != proof.path[n].hash ||
                         parsed->path[n].sibling_on_left !=
                             proof.path[n].sibling_on_left;
        }
        ADD_FAILURE() << "bit " << byte << ":" << bit
                      << " produced an identical verified proof"
                      << (path_differs ? " (path differs)" : "");
      }
    }
  }
}

TEST_P(ProofFuzz, TruncationsAndExtensionsNeverCrash) {
  MembershipProof proof =
      fuzz_target_proof(static_cast<std::uint64_t>(GetParam()) + 12000);
  Bytes blob = serialize_proof(proof);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    Bytes prefix(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(parse_proof(prefix).is_ok()) << "prefix " << len;
  }
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 13000);
  for (int i = 0; i < 50; ++i) {
    Bytes extended = blob;
    auto tail = rng.bytes(static_cast<std::size_t>(rng.uniform_int(1, 64)));
    extended.insert(extended.end(), tail.begin(), tail.end());
    EXPECT_FALSE(parse_proof(extended).is_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::provenance

namespace hc::cluster {
namespace {

// Shard-router fuzzer (ISSUE satellite): the gateway routes every record,
// tenant, and staging key through the consistent-hash ring, and those ids
// arrive straight from untrusted uploads. Hostile ids — empty, huge,
// NUL-laden, colliding with host names, vnode labels, or the "meta|" /
// "stage|" namespace prefixes — must never crash the router; routing must
// stay total (no dropped key), deterministic on recomputation, and
// duplicate-blind, even on ring states captured mid-rebalance (hosts
// joined or crashed, copies not yet moved).
class RouterFuzz : public ::testing::TestWithParam<int> {};

std::string fuzz_id(Rng& rng) {
  switch (rng.uniform_int(0, 7)) {
    case 0:
      return "";  // boundary: empty id
    case 1:  // single arbitrary byte, NUL included
      return std::string(1, static_cast<char>(rng.uniform_int(0, 255)));
    case 2: {  // collides with a host name or a vnode label
      std::string host = "shard-" + std::to_string(rng.uniform_int(0, 9));
      if (rng.bernoulli(0.5)) return host;
      return host + "#" + std::to_string(rng.uniform_int(0, 127));
    }
    case 3:  // collides with the metadata/staging hash namespaces
      return (rng.bernoulli(0.5) ? "meta|" : "stage|") +
             std::to_string(rng.uniform_int(0, 99));
    case 4: {  // 4 KiB id
      std::string id = "patient-";
      while (id.size() < 4096) id += std::to_string(rng.uniform_int(0, 9));
      return id;
    }
    case 5: {  // raw bytes: embedded NULs, high bit set
      auto raw = rng.bytes(static_cast<std::size_t>(rng.uniform_int(1, 32)));
      return std::string(raw.begin(), raw.end());
    }
    default:
      return "rec-" + std::to_string(rng.uniform_int(0, 1'000'000));
  }
}

TEST_P(RouterFuzz, HostileIdsRouteTotallyAndDeterministically) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 20000);
  HashRing ring(64);
  for (int h = 0; h < 5; ++h) {
    ASSERT_TRUE(ring.add_host("shard-" + std::to_string(h)).is_ok());
  }
  for (int i = 0; i < 2000; ++i) {
    std::string id = fuzz_id(rng);
    const std::string* first = ring.owner(id);
    ASSERT_NE(first, nullptr) << "router dropped a key";
    EXPECT_TRUE(ring.has_host(*first));
    const std::string owner = *first;
    EXPECT_EQ(*ring.owner(id), owner) << "owner recomputation disagrees";
    auto replicas = ring.owners(id, 3);
    ASSERT_EQ(replicas.size(), std::min<std::size_t>(3, ring.host_count()));
    EXPECT_EQ(replicas.front(), owner) << "replica chain is not owner-first";
    std::set<std::string> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size()) << "duplicate replica host";
  }
}

TEST_P(RouterFuzz, ChurningRingNeverDropsOrMisroutesKeys) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 21000);
  ClusterConfig cfg;
  cfg.hosts = 3;
  Cluster cluster(cfg, make_clock());

  // Fixed population including literal duplicates: duplicate record ids
  // must always land on the same host as their twin.
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) {
    keys.push_back(fuzz_id(rng));
    if (i % 5 == 0) keys.push_back(keys.back());
  }

  auto snapshot = [&] {
    std::map<std::string, std::string> owner_of;
    for (const std::string& k : keys) {
      const std::string* host = cluster.owner(k);
      if (host != nullptr) owner_of[k] = *host;
    }
    return owner_of;
  };

  for (int step = 0; step < 24; ++step) {
    auto before = snapshot();
    std::string changed;
    bool joined = false;
    auto live = cluster.hosts();
    if (rng.bernoulli(0.5) || live.size() <= 1) {
      auto added = cluster.add_host();
      ASSERT_TRUE(added.is_ok());
      changed = *added;
      joined = true;
    } else {
      changed = live[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
      ASSERT_TRUE(cluster.crash_host(changed).is_ok());
    }

    // Minimal disruption holds under churn: a join moves keys only *to*
    // the joiner; a crash moves only the crashed host's keys.
    auto after = snapshot();
    ASSERT_EQ(after.size(), keys.size() == 0 ? 0 : before.size());
    for (const auto& [k, owner_before] : before) {
      const std::string& owner_after = after.at(k);
      if (owner_after == owner_before) continue;
      if (joined) {
        EXPECT_EQ(owner_after, changed) << "join moved a key to a non-joiner";
      } else {
        EXPECT_EQ(owner_before, changed) << "crash moved an unaffected key";
      }
    }

    // Partition must cover every key exactly once (no dropped key), on
    // live hosts only, and agree with the per-key owner.
    auto parts = cluster.partition(keys);
    std::size_t covered = 0;
    for (const auto& [host, slice] : parts) {
      EXPECT_TRUE(cluster.host_up(host));
      for (const std::string& k : slice) EXPECT_EQ(after.at(k), host);
      covered += slice.size();
    }
    EXPECT_EQ(covered, keys.size()) << "partition dropped or duplicated keys";

    // The metadata/staging namespaces stay total too.
    for (std::size_t i = 0; i < keys.size(); i += 37) {
      EXPECT_NE(cluster.metadata_owner(keys[i]), nullptr);
      EXPECT_NE(cluster.staging_owner(keys[i]), nullptr);
    }
  }
}

TEST_P(RouterFuzz, LakeSurvivesChurnWithHostileRoutingKeys) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 22000);
  ClockPtr clock = make_clock();
  LogPtr log = make_log(clock);
  crypto::KeyManagementService kms{"tenant-a", Rng(71), log};
  crypto::KeyId key = kms.create_symmetric_key("platform");
  ClusterConfig cfg;
  cfg.hosts = 3;
  cfg.replication = 2;
  Cluster cluster(cfg, clock);
  ShardedLake lake(cluster, kms, "platform", Rng(9));

  std::map<std::string, Bytes> objects;  // ref -> plaintext
  auto put_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Bytes plain = rng.bytes(static_cast<std::size_t>(rng.uniform_int(1, 200)));
      auto ref = lake.put(plain, key, fuzz_id(rng));
      ASSERT_TRUE(ref.is_ok()) << ref.status().to_string();
      // Distinct partitions must never mint colliding reference ids (the
      // latent bug this wall originally surfaced).
      EXPECT_EQ(objects.count(*ref), 0u) << "duplicate reference id " << *ref;
      objects[*ref] = std::move(plain);
    }
  };
  put_some(40);

  for (int step = 0; step < 8; ++step) {
    auto live = cluster.hosts();
    if (rng.bernoulli(0.5) || live.size() <= 2) {
      ASSERT_TRUE(cluster.add_host().is_ok());
    } else {
      // One crash per step with replication 2 and a rebalance every step
      // keeps at least one live copy of everything.
      std::string victim = live[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
      ASSERT_TRUE(cluster.crash_host(victim).is_ok());
    }

    // Mid-rebalance state: the ring changed but no copy has moved yet.
    // Every object must still be retrievable (replica-chain walk plus
    // live-partition fallback), byte-for-byte.
    for (const auto& [ref, plain] : objects) {
      auto got = lake.get(ref);
      ASSERT_TRUE(got.is_ok()) << "mid-rebalance get lost " << ref;
      EXPECT_EQ(*got, plain);
    }

    auto report = lake.rebalance();
    EXPECT_EQ(report.lost_objects, 0u);
    put_some(5);  // keep writing against the reshaped ring
  }

  for (const auto& [ref, plain] : objects) {
    auto got = lake.get(ref);
    ASSERT_TRUE(got.is_ok()) << "post-churn get lost " << ref;
    EXPECT_EQ(*got, plain);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::cluster

namespace hc::analytics {
namespace {

class SparseTripletFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SparseTripletFuzz, HostileTripletsCanonicalizeOrRejectCleanly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 31000);
  for (int round = 0; round < 200; ++round) {
    std::size_t rows = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::size_t cols = static_cast<std::size_t>(rng.uniform_int(1, 40));
    std::size_t count = static_cast<std::size_t>(rng.uniform_int(0, 300));
    // ~1 in 4 rounds injects out-of-range coordinates; the rest push
    // unsorted, heavily duplicated in-range streams.
    bool inject_bad = rng.uniform_int(0, 3) == 0;
    bool any_bad = false;
    std::vector<sparse::Triplet> triplets;
    triplets.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      sparse::Triplet t;
      if (inject_bad && rng.bernoulli(0.05)) {
        t.row = static_cast<std::uint32_t>(
            rng.uniform_int(static_cast<std::int64_t>(rows), 1 << 20));
        t.col = static_cast<std::uint32_t>(rng.uniform_int(0, 1 << 20));
        any_bad = any_bad || t.row >= rows || t.col >= cols;
      } else {
        // Small coordinate range on purpose: lots of duplicates.
        t.row = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(rows) - 1));
        t.col = static_cast<std::uint32_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(cols) - 1));
      }
      t.value = rng.uniform(-2.0, 2.0);
      triplets.push_back(t);
    }

    if (any_bad) {
      EXPECT_THROW(sparse::CsrMatrix::from_triplets(rows, cols, triplets),
                   std::invalid_argument);
      continue;
    }
    sparse::CsrMatrix m = sparse::CsrMatrix::from_triplets(rows, cols, triplets);

    // Canonical form: monotone row_ptr bracketing nnz, strictly ascending
    // column indices inside each row, nothing out of range.
    EXPECT_EQ(m.rows(), rows);
    EXPECT_EQ(m.cols(), cols);
    EXPECT_LE(m.nnz(), triplets.size());
    EXPECT_EQ(m.row_ptr()[0], 0u);
    EXPECT_EQ(m.row_ptr()[rows], static_cast<std::uint32_t>(m.nnz()));
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_LE(m.row_ptr()[r], m.row_ptr()[r + 1]);
      for (std::uint32_t k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) {
        EXPECT_LT(m.col_idx()[k], cols);
        if (k > m.row_ptr()[r]) {
          EXPECT_LT(m.col_idx()[k - 1], m.col_idx()[k]);
        }
      }
    }

    // Semantics: the dense projection equals a hand-accumulated sum.
    Matrix expected(rows, cols);
    for (const auto& t : triplets) expected(t.row, t.col) += t.value;
    Matrix dense = m.to_dense();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(dense.data()[i], expected.data()[i], 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseTripletFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::analytics

namespace hc::ckpt {
namespace {

// Checkpoint-blob fuzzer (ISSUE satellite): checkpoint files sit on shared
// storage between crash and resume, so the decoder faces torn writes, disk
// corruption, and outright hostile blobs. Every mutant must come back as a
// clean kDataLoss / kInvalidArgument status: no crash, no throw, no
// attacker-sized allocation, and — because every chunk is HMAC-tagged under
// a kind-scoped key — no corrupted file may ever decode successfully.
class CkptFuzz : public ::testing::TestWithParam<int> {};

Bytes fuzz_data_key() {
  Bytes key(16);
  for (std::size_t i = 0; i < key.size(); ++i) {
    key[i] = static_cast<std::uint8_t>(0xc0 + i);
  }
  return key;
}

Bytes small_jmf_file(const Bytes& key) {
  analytics::JmfResume state;
  state.next_epoch = 2;
  state.u = analytics::Matrix(2, 3);
  state.v = analytics::Matrix(3, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) state.u(r, c) = 0.5 + 0.25 * (r * 3 + c);
  }
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) state.v(r, c) = -1.0 + 0.125 * (r * 3 + c);
  }
  state.drug_source_weights = {0.5, 0.5};
  state.disease_source_weights = {0.7, 0.3};
  state.objective_history = {4.5, 3.25};
  return encode_jmf(state, key);
}

Bytes small_lake_file(const Bytes& key, std::uint64_t seed) {
  Rng rng(seed);
  LakeSnapshot snapshot;
  for (int i = 0; i < 3; ++i) {
    LakeSnapshot::Object object;
    object.reference_id = "ref-" + std::to_string(i);
    object.sealed.key_id = "key-1";
    object.sealed.key_version = 1;
    object.sealed.ciphertext = rng.bytes(48);
    object.sealed.tag = rng.bytes(32);
    snapshot.objects.push_back(std::move(object));
  }
  return encode_lake(snapshot, key);
}

// A decode outcome is acceptable only if it is a clean rejection with one
// of the two contract status codes.
void expect_clean_rejection(const Status& status, const char* what) {
  ASSERT_FALSE(status.is_ok()) << what << " accepted a corrupted blob";
  EXPECT_TRUE(status.code() == StatusCode::kDataLoss ||
              status.code() == StatusCode::kInvalidArgument)
      << what << " returned " << status.to_string();
  EXPECT_FALSE(status.message().empty());
}

TEST_P(CkptFuzz, RandomBlobsNeverCrashAndNeverDecode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 40000);
  const Bytes key = fuzz_data_key();
  for (int i = 0; i < 400; ++i) {
    auto blob = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 400)));
    expect_clean_rejection(decode_jmf(blob, key).status(), "decode_jmf");
    expect_clean_rejection(decode_lake(blob, key).status(), "decode_lake");
  }
}

TEST_P(CkptFuzz, EverySingleBitFlipOfAValidFileIsRejected) {
  const Bytes key = fuzz_data_key();
  const Bytes jmf = small_jmf_file(key);
  ASSERT_TRUE(decode_jmf(jmf, key).is_ok());
  for (std::size_t byte = 0; byte < jmf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = jmf;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_clean_rejection(decode_jmf(mutated, key).status(), "decode_jmf");
      if (HasFatalFailure()) return;
    }
  }

  const Bytes lake =
      small_lake_file(key, static_cast<std::uint64_t>(GetParam()) + 41000);
  ASSERT_TRUE(decode_lake(lake, key).is_ok());
  for (std::size_t byte = 0; byte < lake.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = lake;
      mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
      expect_clean_rejection(decode_lake(mutated, key).status(), "decode_lake");
      if (HasFatalFailure()) return;
    }
  }
}

TEST_P(CkptFuzz, TruncationsAndExtensionsNeverCrashAndAlwaysReject) {
  const Bytes key = fuzz_data_key();
  const Bytes file = small_jmf_file(key);
  for (std::size_t len = 0; len < file.size(); ++len) {
    Bytes prefix(file.begin(), file.begin() + static_cast<std::ptrdiff_t>(len));
    expect_clean_rejection(decode_jmf(prefix, key).status(), "decode_jmf");
    if (HasFatalFailure()) return;
  }
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 42000);
  for (int i = 0; i < 50; ++i) {
    Bytes extended = file;
    auto tail = rng.bytes(static_cast<std::size_t>(rng.uniform_int(1, 64)));
    extended.insert(extended.end(), tail.begin(), tail.end());
    expect_clean_rejection(decode_jmf(extended, key).status(), "decode_jmf");
  }
}

TEST_P(CkptFuzz, HostileLengthFieldsNeverAllocate) {
  // Overwrite chunk 0's 8-byte length field (offset kHeaderSize + 8) with
  // hostile values — huge, near-SIZE_MAX, off-by-one overruns. The decoder
  // must bound every length against the bytes actually present *before*
  // allocating or hashing, so each lie dies as a clean status, not a
  // bad_alloc or an out-of-bounds read.
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 43000);
  const Bytes key = fuzz_data_key();
  const Bytes file = small_jmf_file(key);
  auto with_length = [&](std::uint64_t lie) {
    Bytes mutated = file;
    for (int b = 0; b < 8; ++b) {
      mutated[kHeaderSize + 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(lie >> (8 * b));
    }
    return mutated;
  };
  std::uint64_t actual = 0;
  for (int b = 0; b < 8; ++b) {
    actual |= static_cast<std::uint64_t>(file[kHeaderSize + 8 +
                                              static_cast<std::size_t>(b)])
              << (8 * b);
  }
  const std::uint64_t fixed_lies[] = {
      file.size(),      file.size() * 2,  std::uint64_t{1} << 32,
      std::uint64_t{1} << 62, ~std::uint64_t{0}, ~std::uint64_t{0} - 15};
  for (std::uint64_t lie : fixed_lies) {
    expect_clean_rejection(decode_jmf(with_length(lie), key).status(),
                           "decode_jmf");
    if (HasFatalFailure()) return;
  }
  for (int i = 0; i < 200; ++i) {
    std::uint64_t lie =
        static_cast<std::uint64_t>(rng.uniform_int(0, std::int64_t{1} << 62));
    if (lie == actual) continue;  // the one honest value
    expect_clean_rejection(decode_jmf(with_length(lie), key).status(),
                           "decode_jmf");
    if (HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CkptFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::ckpt
