// Parser robustness: the ingestion path feeds attacker-controlled bytes to
// the JSON/FHIR/HL7 parsers, so none of them may crash, hang, or accept
// garbage — across randomized inputs and structure-aware mutations. The
// wire fuzzer at the bottom does the same for the transport: random
// in-flight bit flips must always be rejected by the HMAC, never crash.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "fault/fault.h"
#include "fhir/hl7.h"
#include "fhir/json.h"
#include "fhir/resources.h"
#include "fhir/synthetic.h"
#include "net/network.h"
#include "net/secure_channel.h"

namespace hc::fhir {
namespace {

class JsonFuzz : public ::testing::TestWithParam<int> {};

TEST_P(JsonFuzz, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    auto bytes = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 200)));
    // Must return (ok or error), never crash or throw.
    auto result = parse_json(to_string(bytes));
    if (result.is_ok()) {
      // Whatever parsed must re-serialize and re-parse stably.
      auto again = parse_json(result->dump());
      ASSERT_TRUE(again.is_ok());
      EXPECT_EQ(again->dump(), result->dump());
    }
  }
}

TEST_P(JsonFuzz, StructureAwareMutationsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  const std::string valid =
      R"({"resourceType":"Bundle","id":"b","entry":[{"resourceType":"Patient",)"
      R"("id":"p","name":"J \"D\" é","age":37,"zip":"10598"}]})";
  for (int i = 0; i < 500; ++i) {
    std::string mutated = valid;
    int edits = static_cast<int>(rng.uniform_int(1, 4));
    for (int e = 0; e < edits; ++e) {
      auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: mutated[pos] = static_cast<char>(rng.uniform_int(1, 255)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(1, 255)));
      }
    }
    (void)parse_json(mutated);                 // no crash
    (void)parse_bundle(to_bytes(mutated));     // no crash, no bogus accept of
                                               // structurally broken bundles
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonFuzz, ::testing::Values(1, 2, 3, 4));

TEST(JsonFuzz, GeneratedValuesRoundTrip) {
  Rng rng(99);
  // Random JSON trees: dump -> parse -> dump must be a fixed point.
  std::function<Json(int)> gen = [&](int depth) -> Json {
    if (depth <= 0 || rng.bernoulli(0.3)) {
      switch (rng.uniform_int(0, 3)) {
        case 0: return Json(nullptr);
        case 1: return Json(rng.bernoulli(0.5));
        case 2: return Json(rng.uniform(-1e6, 1e6));
        default: return Json("s" + std::to_string(rng.uniform_int(0, 999)) + "\n\"x");
      }
    }
    if (rng.bernoulli(0.5)) {
      JsonArray arr;
      for (int i = 0; i < rng.uniform_int(0, 4); ++i) arr.push_back(gen(depth - 1));
      return Json(std::move(arr));
    }
    JsonObject obj;
    for (int i = 0; i < rng.uniform_int(0, 4); ++i) {
      obj.emplace("k" + std::to_string(i), gen(depth - 1));
    }
    return Json(std::move(obj));
  };
  for (int i = 0; i < 200; ++i) {
    Json value = gen(4);
    auto parsed = parse_json(value.dump());
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed->dump(), value.dump());
  }
}

class Hl7Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Hl7Fuzz, RandomSegmentsNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  const char* segments[] = {"MSH", "PID", "OBX", "ZZZ", ""};
  for (int i = 0; i < 300; ++i) {
    std::string message;
    int lines = static_cast<int>(rng.uniform_int(0, 5));
    for (int l = 0; l < lines; ++l) {
      message += segments[rng.uniform_int(0, 4)];
      int fields = static_cast<int>(rng.uniform_int(0, 12));
      for (int f = 0; f < fields; ++f) {
        message += "|";
        if (rng.bernoulli(0.7)) {
          message += to_string(rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 8))));
        }
      }
      message += rng.bernoulli(0.5) ? "\r" : "\n";
    }
    auto bundle = hl7v2_to_bundle(message, "fuzz");
    if (bundle.is_ok()) {
      // Anything accepted must serialize cleanly.
      (void)serialize_bundle(*bundle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Hl7Fuzz, ::testing::Values(1, 2, 3));

TEST(Hl7Fuzz, SyntheticBundlesRoundTripThroughHl7) {
  // Property: Patient+Observation bundles survive FHIR -> HL7 -> FHIR.
  Rng rng(77);
  for (std::size_t i = 0; i < 20; ++i) {
    SyntheticOptions options;
    options.patient_count = 1;
    options.first_patient_index = i;
    options.medications_per_patient = 0;  // HL7 adapter covers PID/OBX only
    options.condition_probability = 0.0;
    Bundle bundle = make_synthetic_bundles(rng, options).front();

    auto hl7 = bundle_to_hl7v2(bundle);
    ASSERT_TRUE(hl7.is_ok());
    auto back = hl7v2_to_bundle(*hl7, bundle.id);
    ASSERT_TRUE(back.is_ok());
    ASSERT_EQ(back->resources.size(), bundle.resources.size());
    const auto& original = std::get<Patient>(bundle.resources[0]);
    const auto& round_tripped = std::get<Patient>(back->resources[0]);
    EXPECT_EQ(round_tripped.id, original.id);
    EXPECT_EQ(round_tripped.name, original.name);
    EXPECT_EQ(round_tripped.gender, original.gender);
    EXPECT_EQ(round_tripped.age, original.age);
  }
}

}  // namespace
}  // namespace hc::fhir

namespace hc::net {
namespace {

// Corrupted-on-the-wire fuzzer (ISSUE satellite): the FaultInjector flips
// 1-3 random bits of every secure-channel message. Ingestion of the
// mangled ciphertext must never crash, and encrypt-then-MAC must reject
// every single flip — there is no bit position whose corruption survives
// authentication.
class WireFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzz, BitFlippedMessagesAlwaysRejectedByHmac) {
  auto clock = make_clock();
  SimNetwork network(clock, Rng(static_cast<std::uint64_t>(GetParam())));
  LinkProfile link;
  link.base_latency = 1 * kMillisecond;
  network.set_link("client", "cloud", link);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
  auto keys = crypto::generate_keypair(rng);
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  auto channel = SecureChannel::establish(network, "client", "cloud", keys.pub,
                                          keys.priv, rng, metrics);
  ASSERT_TRUE(channel.is_ok());

  // Bind corruption only after the handshake so every data message — and
  // nothing else — is mangled in flight.
  fault::FaultPlan plan;
  plan.corrupt("client", "cloud", 1.0);
  network.set_fault_injector(fault::make_injector(
      plan, clock, Rng(static_cast<std::uint64_t>(GetParam()) + 3000)));

  Rng payload_rng(static_cast<std::uint64_t>(GetParam()) + 4000);
  for (int i = 0; i < 200; ++i) {
    Bytes payload =
        payload_rng.bytes(static_cast<std::size_t>(payload_rng.uniform_int(1, 300)));
    auto delivered = channel->transmit(payload);
    ASSERT_FALSE(delivered.is_ok()) << "corrupted message " << i << " accepted";
    EXPECT_EQ(delivered.status().code(), StatusCode::kIntegrityError);
  }
  EXPECT_EQ(metrics->counter("hc.net.auth_failures"), 200u);

  // Detach the chaos plan: the channel itself must still be healthy.
  network.set_fault_injector(nullptr);
  EXPECT_TRUE(channel->transmit(to_bytes("clean again")).is_ok());
}

TEST_P(WireFuzz, CorruptionNeverCrashesAcrossPayloadShapes) {
  // Degenerate shapes: tiny, block-aligned, and large payloads, all
  // corrupted — exercise padding and MAC boundaries.
  auto clock = make_clock();
  SimNetwork network(clock, Rng(static_cast<std::uint64_t>(GetParam()) + 1));
  LinkProfile link;
  link.base_latency = 1 * kMillisecond;
  network.set_link("client", "cloud", link);

  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5000);
  auto keys = crypto::generate_keypair(rng);
  auto channel =
      SecureChannel::establish(network, "client", "cloud", keys.pub, keys.priv, rng);
  ASSERT_TRUE(channel.is_ok());

  fault::FaultPlan plan;
  plan.corrupt("client", "cloud", 1.0);
  network.set_fault_injector(fault::make_injector(
      plan, clock, Rng(static_cast<std::uint64_t>(GetParam()) + 6000)));

  for (std::size_t size : {1u, 15u, 16u, 17u, 32u, 1024u, 65536u}) {
    auto delivered = channel->transmit(Bytes(size, 0x5a));
    ASSERT_FALSE(delivered.is_ok());
    EXPECT_EQ(delivered.status().code(), StatusCode::kIntegrityError);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hc::net
