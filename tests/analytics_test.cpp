#include <gtest/gtest.h>

#include <cmath>

#include "analytics/ddi.h"
#include "analytics/delt.h"
#include "analytics/emr.h"
#include "analytics/jmf.h"
#include "analytics/lifecycle.h"
#include "analytics/matrix.h"
#include "analytics/metrics.h"
#include "analytics/mf.h"
#include "analytics/similarity.h"

namespace hc::analytics {
namespace {

// ---------------------------------------------------------------- matrix

TEST(Matrix, BasicAccessAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyTransposedConsistent) {
  Rng rng(80);
  Matrix a = Matrix::random(4, 3, rng);
  Matrix b = Matrix::random(5, 3, rng);
  Matrix direct = a.multiply(b.transpose());
  Matrix fused = a.multiply_transposed(b);
  EXPECT_LT(direct.frobenius_distance(fused), 1e-12);
}

TEST(Matrix, IdentityIsMultiplicativeUnit) {
  Rng rng(81);
  Matrix a = Matrix::random(4, 4, rng);
  EXPECT_LT(a.multiply(Matrix::identity(4)).frobenius_distance(a), 1e-12);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  Matrix c(4, 4);
  EXPECT_THROW(a.add_scaled(c, 1.0), std::invalid_argument);
  EXPECT_THROW(a.frobenius_distance(c), std::invalid_argument);
}

TEST(Matrix, NormAndScale) {
  Matrix m(1, 2);
  m(0, 0) = 3; m(0, 1) = 4;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  m.scale(2.0);
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 10.0);
}

// --------------------------------------------------------------- metrics

TEST(Metrics, AucPerfectAndInverted) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels{true, true, false, false};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 1.0);
  std::vector<bool> inverted{false, false, true, true};
  EXPECT_DOUBLE_EQ(auc_roc(scores, inverted), 0.0);
}

TEST(Metrics, AucHandlesTies) {
  std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  std::vector<bool> labels{true, false, true, false};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.5);
}

TEST(Metrics, AucDegenerateLabels) {
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 2.0}, {true, true}), 0.5);
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 2.0}, {false, false}), 0.5);
}

TEST(Metrics, AuprPerfect) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels{true, true, false, false};
  EXPECT_DOUBLE_EQ(auc_pr(scores, labels), 1.0);
  EXPECT_DOUBLE_EQ(auc_pr(scores, {false, false, false, false}), 0.0);
}

TEST(Metrics, PrecisionAtK) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.1};
  std::vector<bool> labels{true, false, true, false};
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 1), 1.0);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 2), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 4), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 0), 0.0);
}

TEST(Metrics, PrecisionAtKBeyondCandidatesCountsMissingAsMisses) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.1};
  std::vector<bool> labels{true, false, true, false};
  // Asked for 100, only 4 candidates exist, 2 of them positive: the other
  // 96 slots are misses. The old clamp-to-n behavior reported 0.5 here,
  // making p@10 and p@1000 indistinguishable on a 4-item result set.
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 100), 0.02);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 8), 0.25);
  // k == n is the boundary: both conventions agree.
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 4), 0.5);
}

TEST(Metrics, AuprInvariantUnderTieOrdering) {
  // Two items share one score, one positive and one negative. The PR curve
  // has a single threshold (the tie block), so both input orders must give
  // precision 1/2 at recall 1 -> area 0.5. The per-item walk scored the
  // positive-first order 1.0 and the negative-first order 0.5.
  EXPECT_DOUBLE_EQ(auc_pr({0.5, 0.5}, {true, false}), 0.5);
  EXPECT_DOUBLE_EQ(auc_pr({0.5, 0.5}, {false, true}), 0.5);
  // Larger mixed block between distinct scores.
  std::vector<double> scores{0.9, 0.5, 0.5, 0.5, 0.1};
  std::vector<bool> fwd{true, true, false, false, false};
  std::vector<bool> rev{true, false, false, true, false};
  EXPECT_DOUBLE_EQ(auc_pr(scores, fwd), auc_pr(scores, rev));
}

TEST(Metrics, AucRocTieRegression) {
  // Hand check: scores {1, .5, .5, 0}, labels {+, +, -, -}. The tied pair
  // shares rank 2.5, so U = (4 + 2.5) - 3 = 3.5 and AUC = 3.5/4.
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 0.5, 0.5, 0.0}, {true, true, false, false}), 0.875);
  // Tie order must not matter.
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 0.5, 0.5, 0.0}, {true, false, true, false}), 0.875);
}

TEST(Metrics, SpearmanTieRegression) {
  // a has a tied pair sharing fractional rank 1.5; hand computation gives
  // cov/sqrt(var_a*var_b) = 1.5/sqrt(0.5*3) ~ 0.866.
  std::vector<double> a{1.0, 1.0, 2.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(a, b), 1.5 / std::sqrt(3.0), 1e-12);
  // All-tied input has zero rank variance: correlation defined as 0.
  EXPECT_DOUBLE_EQ(spearman({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Metrics, Rmse) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_THROW(rmse({1}, {1, 2}), std::invalid_argument);
}

TEST(Metrics, SpearmanMonotone) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
  std::vector<double> c{50, 40, 30, 20, 10};
  EXPECT_NEAR(spearman(a, c), -1.0, 1e-12);
}

// ------------------------------------------------------------ similarity

TEST(Similarity, TanimotoBasics) {
  Fingerprint a{1, 1, 0, 0}, b{1, 0, 1, 0}, c{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(tanimoto(a, c), 1.0);
  EXPECT_DOUBLE_EQ(tanimoto(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tanimoto({0, 0}, {0, 0}), 1.0);
  EXPECT_THROW(tanimoto({1}, {1, 0}), std::invalid_argument);
}

TEST(Similarity, CosineBasics) {
  EXPECT_NEAR(cosine({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(cosine({1, 1}, {2, 2}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cosine({0, 0}, {1, 1}), 0.0);
}

TEST(Similarity, MatrixSymmetricUnitDiagonal) {
  std::vector<Fingerprint> fps{{1, 0, 1}, {1, 1, 0}, {0, 0, 1}};
  Matrix sim = similarity_matrix(fps);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sim(i, i), 1.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(sim(i, j), sim(j, i));
  }
}

// ------------------------------------------------------------------- MF

TEST(Mf, ReconstructsLowRankMatrix) {
  Rng rng(82);
  Matrix u_true = Matrix::random(20, 3, rng, 0.0, 1.0);
  Matrix v_true = Matrix::random(15, 3, rng, 0.0, 1.0);
  Matrix observed = u_true.multiply_transposed(v_true);
  Matrix mask(20, 15, 1.0);

  MfConfig config;
  config.rank = 3;
  config.epochs = 400;
  MfModel model = factorize(observed, mask, config, rng);
  EXPECT_LT(model.scores().frobenius_distance(observed) / observed.frobenius_norm(),
            0.08);
}

TEST(Mf, MaskLimitsFitting) {
  Rng rng(83);
  Matrix observed(4, 4, 1.0);
  Matrix mask(4, 4, 0.0);  // nothing observed: factors stay near init
  MfConfig config;
  config.epochs = 50;
  MfModel model = factorize(observed, mask, config, rng);
  EXPECT_LT(model.scores().frobenius_norm(), 1.0);
}

TEST(Mf, GuiltByAssociationPropagates) {
  // Drug 0 and 1 are similar; drug 1 treats disease 0.
  Matrix associations(3, 2);
  associations(1, 0) = 1.0;
  Matrix similarity = Matrix::identity(3);
  similarity(0, 1) = similarity(1, 0) = 0.9;

  Matrix scores = guilt_by_association(associations, similarity);
  EXPECT_GT(scores(0, 0), 0.5);   // inherits via similarity
  EXPECT_DOUBLE_EQ(scores(2, 0), 0.0);  // no similar neighbor treats it
  EXPECT_THROW(guilt_by_association(associations, Matrix(2, 2)),
               std::invalid_argument);
}

// ------------------------------------------------------------------ JMF

class JmfFixture : public ::testing::Test {
 protected:
  JmfFixture() : rng_(84) {
    WorkloadConfig config;
    config.drugs = 60;
    config.diseases = 40;
    config.latent_rank = 5;
    workload_ = make_drug_disease_workload(config, rng_);
  }

  JmfConfig jmf_config() {
    JmfConfig config;
    config.rank = 8;
    config.epochs = 80;
    return config;
  }

  Rng rng_;
  DrugDiseaseWorkload workload_;
};

TEST_F(JmfFixture, WorkloadShapesAndHoldout) {
  EXPECT_EQ(workload_.truth.rows(), 60u);
  EXPECT_EQ(workload_.truth.cols(), 40u);
  EXPECT_EQ(workload_.drug_similarities.size(), 3u);
  EXPECT_EQ(workload_.disease_similarities.size(), 3u);
  EXPECT_FALSE(workload_.held_out.empty());
  // Held-out cells are zeroed in the training matrix but 1 in truth.
  for (const auto& [i, j] : workload_.held_out) {
    EXPECT_DOUBLE_EQ(workload_.observed(i, j), 0.0);
    EXPECT_DOUBLE_EQ(workload_.truth(i, j), 1.0);
  }
}

TEST_F(JmfFixture, ObjectiveDecreases) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  ASSERT_GE(result.objective_history.size(), 2u);
  EXPECT_LT(result.objective_history.back(), result.objective_history.front());
}

TEST_F(JmfFixture, RecoversHeldOutAssociations) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  double auc = evaluate_held_out_auc(result.scores, workload_, rng_);
  EXPECT_GT(auc, 0.80) << "JMF should rank held-out positives highly";
}

TEST_F(JmfFixture, BeatsGuiltByAssociationBaseline) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  double jmf_auc = evaluate_held_out_auc(result.scores, workload_, rng_);

  // GBA on the noisiest single drug source — the prior-art single-aspect
  // approach the paper contrasts with.
  Matrix gba = guilt_by_association(workload_.observed,
                                    workload_.drug_similarities.back());
  double gba_auc = evaluate_held_out_auc(gba, workload_, rng_);
  EXPECT_GT(jmf_auc, gba_auc);
}

TEST_F(JmfFixture, CleanerSourcesEarnHigherWeights) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  // Sources are ordered by ascending noise; the cleanest should outweigh
  // the noisiest ("interpretable importance of different sources").
  EXPECT_GT(result.drug_source_weights.front(), result.drug_source_weights.back());
  double sum = 0.0;
  for (double w : result.drug_source_weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(JmfFixture, ProducesGroupAssignments) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  EXPECT_EQ(result.drug_groups.size(), 60u);
  EXPECT_EQ(result.disease_groups.size(), 40u);
  for (auto g : result.drug_groups) EXPECT_LT(g, jmf_config().rank);
}

TEST_F(JmfFixture, RejectsBadInputs) {
  EXPECT_THROW(joint_matrix_factorization(workload_.observed, {},
                                          workload_.disease_similarities,
                                          jmf_config(), rng_),
               std::invalid_argument);
  std::vector<Matrix> wrong{Matrix(3, 3)};
  EXPECT_THROW(joint_matrix_factorization(workload_.observed, wrong,
                                          workload_.disease_similarities,
                                          jmf_config(), rng_),
               std::invalid_argument);
}

// ----------------------------------------------------------------- DELT

class DeltFixture : public ::testing::Test {
 protected:
  DeltFixture() : rng_(85) {
    EmrConfig config;
    config.patients = 800;
    config.drugs = 60;
    config.planted_drugs = 6;
    // Make the confounding strong enough that marginal correlation cannot
    // tie DELT even at this small cohort size: weaker true effects, more
    // comorbidity-linked innocent drugs.
    config.effect_mean = -0.4;
    config.confounded_drugs = 10;
    config.comorbidity_probability = 0.5;
    dataset_ = make_emr_dataset(config, rng_);
  }

  Rng rng_;
  EmrDataset dataset_;
};

TEST_F(DeltFixture, DatasetHasPlantedStructure) {
  std::size_t planted = 0, confounded = 0;
  for (std::size_t d = 0; d < dataset_.drug_count; ++d) {
    planted += dataset_.is_planted[d] ? 1 : 0;
    confounded += dataset_.is_confounded[d] ? 1 : 0;
    if (dataset_.is_planted[d]) {
      EXPECT_LT(dataset_.true_effects[d], 0.0);
      EXPECT_FALSE(dataset_.is_confounded[d]);  // disjoint sets
    }
  }
  EXPECT_EQ(planted, 6u);
  EXPECT_EQ(confounded, 10u);
  EXPECT_EQ(dataset_.patients.size(), 800u);
}

TEST_F(DeltFixture, ObjectiveDecreases) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  ASSERT_GE(model.objective_history.size(), 2u);
  EXPECT_LE(model.objective_history.back(), model.objective_history.front());
}

TEST_F(DeltFixture, RecoversPlantedDrugs) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  auto metrics = score_recovery(model.drug_effects, dataset_);
  EXPECT_GT(metrics.auc, 0.95) << "DELT should cleanly separate planted drugs";
  EXPECT_GE(metrics.precision_at_n, 0.8);
  EXPECT_LT(metrics.effect_rmse, 0.25);
}

TEST_F(DeltFixture, BeatsMarginalCorrelation) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  auto delt_metrics = score_recovery(model.drug_effects, dataset_);
  auto marginal = marginal_correlation_effects(dataset_);
  auto marginal_metrics = score_recovery(marginal, dataset_);
  EXPECT_GT(delt_metrics.auc, marginal_metrics.auc);
}

TEST_F(DeltFixture, BaselineAblationHurts) {
  DeltConfig full;
  DeltConfig no_baseline;
  no_baseline.model_baseline = false;
  no_baseline.model_drift = false;
  auto full_metrics = score_recovery(fit_delt(dataset_, full).drug_effects, dataset_);
  auto ablated_metrics =
      score_recovery(fit_delt(dataset_, no_baseline).drug_effects, dataset_);
  // The paper's contribution (2): baselines + drift absorb confounders.
  EXPECT_GE(full_metrics.auc, ablated_metrics.auc);
  EXPECT_LT(full_metrics.effect_rmse, ablated_metrics.effect_rmse + 1e-9);
}

TEST_F(DeltFixture, EstimatesBaselinesNearTruth) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  double total_error = 0.0;
  for (std::size_t p = 0; p < dataset_.patients.size(); ++p) {
    total_error +=
        std::abs(model.patient_baselines[p] - dataset_.patients[p].true_baseline);
  }
  EXPECT_LT(total_error / static_cast<double>(dataset_.patients.size()), 0.5);
}

TEST(Delt, RejectsEmptyDataset) {
  EXPECT_THROW(fit_delt(EmrDataset{}, DeltConfig{}), std::invalid_argument);
}

TEST(Delt, ScoreRecoveryValidatesSize) {
  Rng rng(86);
  EmrConfig config;
  config.patients = 10;
  config.drugs = 5;
  config.planted_drugs = 1;
  config.confounded_drugs = 1;
  auto dataset = make_emr_dataset(config, rng);
  EXPECT_THROW(score_recovery(std::vector<double>(3), dataset), std::invalid_argument);
}

// ------------------------------------------------------------------ DDI

TEST(Ddi, PredictsInteractionsAboveChance) {
  Rng rng(87);
  auto workload = make_ddi_workload(50, 5, rng);
  DdiPredictor predictor(workload.similarities);
  predictor.train(workload.train_positives, workload.train_negatives, DdiConfig{});

  std::vector<double> scores;
  scores.reserve(workload.test_pairs.size());
  for (const auto& pair : workload.test_pairs) scores.push_back(predictor.predict(pair));
  double auc = auc_roc(scores, workload.test_labels);
  EXPECT_GT(auc, 0.85);
}

TEST(Ddi, FeaturesBoundedAndKeyedToKnownPairs) {
  Rng rng(88);
  auto workload = make_ddi_workload(30, 5, rng);
  DdiPredictor predictor(workload.similarities);
  predictor.train(workload.train_positives, workload.train_negatives, DdiConfig{});
  for (const auto& pair : workload.test_pairs) {
    for (double f : predictor.pair_features(pair)) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(Ddi, RejectsBadConstruction) {
  EXPECT_THROW(DdiPredictor({}), std::invalid_argument);
  Rng rng(89);
  EXPECT_THROW(make_ddi_workload(10, 2, rng), std::invalid_argument);
  DdiPredictor predictor({Matrix::identity(4)});
  EXPECT_THROW(predictor.train({}, {}, DdiConfig{}), std::invalid_argument);
}

// ------------------------------------------------------------- lifecycle

class LifecycleFixture : public ::testing::Test {
 protected:
  ModelRegistry registry_;
};

TEST_F(LifecycleFixture, FullLifecyclePath) {
  auto v = registry_.create("jmf-alzheimers", to_bytes("artifact-v1"));
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*v, 1u);
  EXPECT_EQ(registry_.get("jmf-alzheimers", 1).value().stage,
            ModelStage::kDataCleaning);

  ASSERT_TRUE(registry_.advance("jmf-alzheimers", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("jmf-alzheimers", 1, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.record_metric("jmf-alzheimers", 1, "auc", 0.91).is_ok());
  ASSERT_TRUE(registry_.approve("jmf-alzheimers", 1, "compliance-officer").is_ok());
  ASSERT_TRUE(registry_.advance("jmf-alzheimers", 1, ModelStage::kDeployed).is_ok());

  auto deployed = registry_.deployed("jmf-alzheimers");
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_EQ(deployed->version, 1u);
  EXPECT_DOUBLE_EQ(deployed->metrics.at("auc"), 0.91);
}

TEST_F(LifecycleFixture, DeploymentGatedOnApproval) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kTesting).is_ok());
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kDeployed).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(LifecycleFixture, IllegalTransitionsRejected) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kDeployed).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kTesting).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kDataCleaning).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LifecycleFixture, TestingCanLoopBackToGeneration) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
}

TEST_F(LifecycleFixture, UpdateCreatesNewVersionAndRetiresOld) {
  ASSERT_TRUE(registry_.create("m", to_bytes("v1")).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.approve("m", 1, "officer").is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kDeployed).is_ok());

  auto v2 = registry_.update("m", to_bytes("v2"));
  ASSERT_TRUE(v2.is_ok());
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(registry_.get("m", 2).value().stage, ModelStage::kGeneration);
  ASSERT_TRUE(registry_.advance("m", 2, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.approve("m", 2, "officer").is_ok());
  ASSERT_TRUE(registry_.advance("m", 2, ModelStage::kDeployed).is_ok());

  EXPECT_EQ(registry_.deployed("m").value().version, 2u);
  EXPECT_EQ(registry_.get("m", 1).value().stage, ModelStage::kRetired);
  EXPECT_EQ(registry_.latest_version("m"), 2u);
}

TEST_F(LifecycleFixture, MetricsOnlyDuringTesting) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  EXPECT_EQ(registry_.record_metric("m", 1, "auc", 0.5).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry_.approve("m", 1, "officer").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LifecycleFixture, UnknownModelsNotFound) {
  EXPECT_EQ(registry_.update("ghost", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.get("ghost", 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.deployed("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.advance("ghost", 1, ModelStage::kGeneration).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry_.latest_version("ghost"), 0u);
  ASSERT_TRUE(registry_.create("m", {}).is_ok());
  EXPECT_EQ(registry_.create("m", {}).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry_.get("m", 7).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hc::analytics
