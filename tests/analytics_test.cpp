#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "analytics/ddi.h"
#include "analytics/delt.h"
#include "analytics/emr.h"
#include "analytics/jmf.h"
#include "analytics/kernels.h"
#include "analytics/lifecycle.h"
#include "analytics/matrix.h"
#include "analytics/metrics.h"
#include "analytics/mf.h"
#include "analytics/similarity.h"

namespace hc::analytics {
namespace {

/// Exact bitwise equality — the compute-plane contract is bit-identity with
/// the naive kernels, not tolerance-level agreement.
bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Random matrix with ~30% exact zeros so the kernels' zero-skip branches
/// (inherited from Matrix::multiply) are exercised, not just dense paths.
Matrix random_sparse(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m = Matrix::random(rows, cols, rng, -1.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = m.row(i);
    for (std::size_t j = 0; j < cols; ++j) {
      if (rng.uniform_int(0, 9) < 3) row[j] = 0.0;
    }
  }
  return m;
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------- matrix

TEST(Matrix, BasicAccessAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyTransposedConsistent) {
  Rng rng(80);
  Matrix a = Matrix::random(4, 3, rng);
  Matrix b = Matrix::random(5, 3, rng);
  Matrix direct = a.multiply(b.transpose());
  Matrix fused = a.multiply_transposed(b);
  EXPECT_LT(direct.frobenius_distance(fused), 1e-12);
}

TEST(Matrix, IdentityIsMultiplicativeUnit) {
  Rng rng(81);
  Matrix a = Matrix::random(4, 4, rng);
  EXPECT_LT(a.multiply(Matrix::identity(4)).frobenius_distance(a), 1e-12);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
  Matrix c(4, 4);
  EXPECT_THROW(a.add_scaled(c, 1.0), std::invalid_argument);
  EXPECT_THROW(a.frobenius_distance(c), std::invalid_argument);
}

TEST(Matrix, NormAndScale) {
  Matrix m(1, 2);
  m(0, 0) = 3; m(0, 1) = 4;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  m.scale(2.0);
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 10.0);
}

TEST(Matrix, ResizeIsInPlaceAndFillSetsEveryCell) {
  Matrix m(3, 4, 2.0);
  const double* before = m.data();
  m.resize(3, 4);  // same shape: must be a no-op that keeps contents
  EXPECT_EQ(m.data(), before);
  EXPECT_DOUBLE_EQ(m(2, 3), 2.0);

  m.resize(6, 2);
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.size(), 12u);
  m.fill(1.5);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(m.data()[i], 1.5);
}

// ---------------------------------------------------------------- kernels
//
// Randomized property tests: every blocked/parallel kernel must be
// *bitwise* equal to the naive Matrix-method composition it replaces, for
// sizes that straddle block boundaries and for 1/2/4/8 workers.

TEST(Kernels, MultiplyMatchesNaiveBitwise) {
  Rng rng(93);
  const std::size_t shapes[][3] = {{5, 1, 3}, {17, 9, 23}, {48, 16, 70}, {33, 40, 65}};
  for (const auto& s : shapes) {
    Matrix a = random_sparse(s[0], s[1], rng);
    Matrix b = random_sparse(s[1], s[2], rng);
    Matrix expected = a.multiply(b);
    for (std::size_t workers : kWorkerCounts) {
      Matrix out;
      kernels::multiply_into(a, b, out, workers);
      EXPECT_TRUE(bit_equal(expected, out))
          << s[0] << "x" << s[1] << "x" << s[2] << " workers=" << workers;
    }
  }
}

TEST(Kernels, MultiplyTransposedMatchesNaiveBitwise) {
  Rng rng(94);
  const std::size_t shapes[][3] = {{7, 5, 11}, {30, 12, 67}, {65, 9, 65}};
  for (const auto& s : shapes) {
    Matrix a = random_sparse(s[0], s[1], rng);
    Matrix b = random_sparse(s[2], s[1], rng);
    Matrix expected = a.multiply_transposed(b);
    for (std::size_t workers : kWorkerCounts) {
      Matrix out;
      kernels::multiply_transposed_into(a, b, out, workers);
      EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
    }
  }
}

TEST(Kernels, TransposeMultiplyMatchesNaiveBitwise) {
  Rng rng(95);
  const std::size_t shapes[][3] = {{9, 7, 5}, {41, 33, 18}, {70, 65, 10}};
  for (const auto& s : shapes) {
    Matrix a = random_sparse(s[0], s[1], rng);
    Matrix b = random_sparse(s[0], s[2], rng);
    Matrix expected = a.transpose().multiply(b);
    for (std::size_t workers : kWorkerCounts) {
      Matrix out;
      kernels::transpose_multiply_into(a, b, out, workers);
      EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
    }
  }
}

TEST(Kernels, TransposeMatchesNaiveBitwise) {
  Rng rng(96);
  Matrix a = random_sparse(37, 53, rng);
  Matrix expected = a.transpose();
  Matrix out;
  kernels::transpose_into(a, out);
  EXPECT_TRUE(bit_equal(expected, out));
}

TEST(Kernels, SyrkMatchesFullProductBitwise) {
  Rng rng(97);
  for (std::size_t n : {3u, 16u, 41u, 77u}) {
    Matrix f = random_sparse(n, 9, rng);
    Matrix expected = f.multiply_transposed(f);
    for (std::size_t workers : kWorkerCounts) {
      Matrix out;
      kernels::syrk_into(f, out, workers);
      EXPECT_TRUE(bit_equal(expected, out)) << "n=" << n << " workers=" << workers;
    }
  }
}

TEST(Kernels, ResidualMatchesComposedNaiveBitwise) {
  Rng rng(98);
  Matrix u = random_sparse(35, 6, rng);
  Matrix v = random_sparse(27, 6, rng);
  Matrix r = random_sparse(35, 27, rng);
  // Seed formulation: residual = R + (-1.0) * (U V^T).
  Matrix expected = r;
  expected.add_scaled(u.multiply_transposed(v), -1.0);
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    kernels::residual_into(r, u, v, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
  }
}

TEST(Kernels, SyrkResidualMatchesComposedNaiveBitwise) {
  Rng rng(99);
  Matrix f = random_sparse(44, 7, rng);
  // s must be bitwise symmetric (the kernel's documented precondition —
  // it mirrors the upper triangle, as similarity matrices allow).
  Matrix s = random_sparse(44, 44, rng);
  for (std::size_t i = 0; i < 44; ++i) {
    for (std::size_t j = i + 1; j < 44; ++j) s(j, i) = s(i, j);
  }
  Matrix expected = s;
  expected.add_scaled(f.multiply_transposed(f), -1.0);
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    kernels::syrk_residual_into(s, f, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
  }
}

TEST(Kernels, SubMultiplyAddMatchesComposedNaiveBitwise) {
  Rng rng(100);
  Matrix s = random_sparse(38, 38, rng);
  Matrix m = random_sparse(38, 38, rng);
  Matrix f = random_sparse(38, 8, rng);
  Matrix base = random_sparse(38, 8, rng);
  // Seed formulation: grad += factor * ((S - M) * F) via explicit temporaries.
  Matrix diff = s;
  diff.add_scaled(m, -1.0);
  Matrix expected = base;
  expected.add_scaled(diff.multiply(f), 0.37);
  for (std::size_t workers : kWorkerCounts) {
    Matrix grad = base;
    Matrix scratch;
    kernels::sub_multiply_add_into(grad, s, m, f, 0.37, scratch, workers);
    EXPECT_TRUE(bit_equal(expected, grad)) << "workers=" << workers;
  }
}

TEST(Kernels, FusedSubMultiplyAddMatchesSequentialBitwise) {
  Rng rng(103);
  std::vector<Matrix> sources;
  for (int i = 0; i < 3; ++i) sources.push_back(random_sparse(33, 33, rng));
  Matrix m = random_sparse(33, 33, rng);
  Matrix f = random_sparse(33, 7, rng);
  Matrix base = random_sparse(33, 7, rng);
  std::vector<double> factors = {0.37, -0.12, 0.81};
  // Reference: sequential per-source sub_multiply_add_into calls. The fused
  // kernel promises the exact same ascending-source per-cell add order.
  Matrix expected = base;
  Matrix scratch;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    kernels::sub_multiply_add_into(expected, sources[i], m, f, factors[i],
                                   scratch, 1);
  }
  for (std::size_t workers : kWorkerCounts) {
    Matrix grad = base;
    Matrix fused_scratch;
    kernels::fused_sub_multiply_add_into(grad, sources, m, f, factors,
                                         fused_scratch, workers);
    EXPECT_TRUE(bit_equal(expected, grad)) << "workers=" << workers;
  }
}

TEST(Kernels, ResidualTransposeMultiplyMatchesComposedNaiveBitwise) {
  Rng rng(101);
  Matrix u = random_sparse(31, 5, rng);
  Matrix v = random_sparse(24, 5, rng);
  Matrix r = random_sparse(31, 24, rng);
  Matrix f = random_sparse(31, 9, rng);
  Matrix residual = r;
  residual.add_scaled(u.multiply_transposed(v), -1.0);
  Matrix expected = residual.transpose().multiply(f);
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    kernels::residual_transpose_multiply_into(r, u, v, f, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
  }
}

TEST(Kernels, MaskedResidualMatchesPerCellLoopBitwise) {
  Rng rng(102);
  Matrix u = random_sparse(29, 6, rng);
  Matrix v = random_sparse(22, 6, rng);
  Matrix observed = random_sparse(29, 22, rng);
  Matrix mask(29, 22);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.uniform_int(0, 3) == 0 ? 0.0 : 1.0;
  }
  // Seed formulation: zero-initialized residual, per-cell predict().
  Matrix expected(29, 22);
  for (std::size_t i = 0; i < 29; ++i) {
    for (std::size_t j = 0; j < 22; ++j) {
      if (mask(i, j) == 0.0) continue;
      double dot = 0.0;
      for (std::size_t k = 0; k < 6; ++k) dot += u(i, k) * v(j, k);
      expected(i, j) = observed(i, j) - dot;
    }
  }
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    kernels::masked_residual_into(observed, mask, u, v, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
  }
}

TEST(Kernels, AddScaledAndClampMatchNaiveBitwise) {
  Rng rng(103);
  Matrix base = random_sparse(45, 19, rng);
  Matrix src = random_sparse(45, 19, rng);
  Matrix expected = base;
  expected.add_scaled(src, -0.81);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected.data()[i] = std::max(0.0, expected.data()[i]);
  }
  for (std::size_t workers : kWorkerCounts) {
    Matrix dst = base;
    kernels::add_scaled_into(dst, src, -0.81, workers);
    kernels::clamp_nonnegative(dst, workers);
    EXPECT_TRUE(bit_equal(expected, dst)) << "workers=" << workers;
  }
}

TEST(Kernels, ShapeMismatchesThrow) {
  Matrix a(3, 4), b(5, 6), out;
  EXPECT_THROW(kernels::multiply_into(a, b, out), std::invalid_argument);
  EXPECT_THROW(kernels::multiply_transposed_into(a, b, out), std::invalid_argument);
  EXPECT_THROW(kernels::transpose_multiply_into(a, b, out), std::invalid_argument);
  EXPECT_THROW(kernels::sub_into(a, b, out), std::invalid_argument);
  EXPECT_THROW(kernels::residual_into(a, a, b, out), std::invalid_argument);
  EXPECT_THROW(kernels::syrk_residual_into(a, b, out), std::invalid_argument);
  EXPECT_THROW(kernels::add_scaled_into(a, b, 1.0), std::invalid_argument);
}

// --------------------------------------------------------------- metrics

TEST(Metrics, AucPerfectAndInverted) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels{true, true, false, false};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 1.0);
  std::vector<bool> inverted{false, false, true, true};
  EXPECT_DOUBLE_EQ(auc_roc(scores, inverted), 0.0);
}

TEST(Metrics, AucHandlesTies) {
  std::vector<double> scores{0.5, 0.5, 0.5, 0.5};
  std::vector<bool> labels{true, false, true, false};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.5);
}

TEST(Metrics, AucDegenerateLabels) {
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 2.0}, {true, true}), 0.5);
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 2.0}, {false, false}), 0.5);
}

TEST(Metrics, AuprPerfect) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<bool> labels{true, true, false, false};
  EXPECT_DOUBLE_EQ(auc_pr(scores, labels), 1.0);
  EXPECT_DOUBLE_EQ(auc_pr(scores, {false, false, false, false}), 0.0);
}

TEST(Metrics, PrecisionAtK) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.1};
  std::vector<bool> labels{true, false, true, false};
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 1), 1.0);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 2), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 4), 0.5);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 0), 0.0);
}

TEST(Metrics, PrecisionAtKBeyondCandidatesCountsMissingAsMisses) {
  std::vector<double> scores{0.9, 0.8, 0.7, 0.1};
  std::vector<bool> labels{true, false, true, false};
  // Asked for 100, only 4 candidates exist, 2 of them positive: the other
  // 96 slots are misses. The old clamp-to-n behavior reported 0.5 here,
  // making p@10 and p@1000 indistinguishable on a 4-item result set.
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 100), 0.02);
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 8), 0.25);
  // k == n is the boundary: both conventions agree.
  EXPECT_DOUBLE_EQ(precision_at_k(scores, labels, 4), 0.5);
}

TEST(Metrics, AuprInvariantUnderTieOrdering) {
  // Two items share one score, one positive and one negative. The PR curve
  // has a single threshold (the tie block), so both input orders must give
  // precision 1/2 at recall 1 -> area 0.5. The per-item walk scored the
  // positive-first order 1.0 and the negative-first order 0.5.
  EXPECT_DOUBLE_EQ(auc_pr({0.5, 0.5}, {true, false}), 0.5);
  EXPECT_DOUBLE_EQ(auc_pr({0.5, 0.5}, {false, true}), 0.5);
  // Larger mixed block between distinct scores.
  std::vector<double> scores{0.9, 0.5, 0.5, 0.5, 0.1};
  std::vector<bool> fwd{true, true, false, false, false};
  std::vector<bool> rev{true, false, false, true, false};
  EXPECT_DOUBLE_EQ(auc_pr(scores, fwd), auc_pr(scores, rev));
}

TEST(Metrics, AucRocTieRegression) {
  // Hand check: scores {1, .5, .5, 0}, labels {+, +, -, -}. The tied pair
  // shares rank 2.5, so U = (4 + 2.5) - 3 = 3.5 and AUC = 3.5/4.
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 0.5, 0.5, 0.0}, {true, true, false, false}), 0.875);
  // Tie order must not matter.
  EXPECT_DOUBLE_EQ(auc_roc({1.0, 0.5, 0.5, 0.0}, {true, false, true, false}), 0.875);
}

TEST(Metrics, SpearmanTieRegression) {
  // a has a tied pair sharing fractional rank 1.5; hand computation gives
  // cov/sqrt(var_a*var_b) = 1.5/sqrt(0.5*3) ~ 0.866.
  std::vector<double> a{1.0, 1.0, 2.0};
  std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_NEAR(spearman(a, b), 1.5 / std::sqrt(3.0), 1e-12);
  // All-tied input has zero rank variance: correlation defined as 0.
  EXPECT_DOUBLE_EQ(spearman({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Metrics, Rmse) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_THROW(rmse({1}, {1, 2}), std::invalid_argument);
}

TEST(Metrics, SpearmanMonotone) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{10, 20, 30, 40, 50};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
  std::vector<double> c{50, 40, 30, 20, 10};
  EXPECT_NEAR(spearman(a, c), -1.0, 1e-12);
}

// ------------------------------------------------------------ similarity

TEST(Similarity, TanimotoBasics) {
  Fingerprint a{1, 1, 0, 0}, b{1, 0, 1, 0}, c{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(tanimoto(a, c), 1.0);
  EXPECT_DOUBLE_EQ(tanimoto(a, b), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(tanimoto({0, 0}, {0, 0}), 1.0);
  EXPECT_THROW(tanimoto({1}, {1, 0}), std::invalid_argument);
}

TEST(Similarity, CosineBasics) {
  EXPECT_NEAR(cosine({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(cosine({1, 1}, {2, 2}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cosine({0, 0}, {1, 1}), 0.0);
}

TEST(Similarity, MatrixSymmetricUnitDiagonal) {
  std::vector<Fingerprint> fps{{1, 0, 1}, {1, 1, 0}, {0, 0, 1}};
  Matrix sim = similarity_matrix(fps);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(sim(i, i), 1.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(sim(i, j), sim(j, i));
  }
}

TEST(Similarity, MatricesBitIdenticalAcrossWorkerCounts) {
  Rng rng(92);
  std::vector<Fingerprint> fingerprints(37);
  for (auto& fp : fingerprints) {
    fp.resize(64);
    for (auto& bit : fp) bit = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  }
  std::vector<std::vector<double>> profiles(37);
  for (auto& profile : profiles) {
    profile.resize(16);
    for (auto& x : profile) x = rng.normal();
  }
  Matrix base_tanimoto = similarity_matrix(fingerprints, 1);
  Matrix base_cosine = cosine_similarity_matrix(profiles, 1);
  for (std::size_t workers : {2u, 4u, 8u}) {
    EXPECT_TRUE(bit_equal(base_tanimoto, similarity_matrix(fingerprints, workers)))
        << "workers=" << workers;
    EXPECT_TRUE(bit_equal(base_cosine, cosine_similarity_matrix(profiles, workers)))
        << "workers=" << workers;
  }
}

// ------------------------------------------------------------------- MF

TEST(Mf, ReconstructsLowRankMatrix) {
  Rng rng(82);
  Matrix u_true = Matrix::random(20, 3, rng, 0.0, 1.0);
  Matrix v_true = Matrix::random(15, 3, rng, 0.0, 1.0);
  Matrix observed = u_true.multiply_transposed(v_true);
  Matrix mask(20, 15, 1.0);

  MfConfig config;
  config.rank = 3;
  config.epochs = 400;
  MfModel model = factorize(observed, mask, config, rng);
  EXPECT_LT(model.scores().frobenius_distance(observed) / observed.frobenius_norm(),
            0.08);
}

TEST(Mf, MaskLimitsFitting) {
  Rng rng(83);
  Matrix observed(4, 4, 1.0);
  Matrix mask(4, 4, 0.0);  // nothing observed: factors stay near init
  MfConfig config;
  config.epochs = 50;
  MfModel model = factorize(observed, mask, config, rng);
  EXPECT_LT(model.scores().frobenius_norm(), 1.0);
}

/// Verbatim copy of the pre-kernel factorize() — per-cell operator() and
/// predict() walks, fresh temporaries every epoch. Kept as the equivalence
/// oracle for the row-pointer kernel rewrite.
MfModel factorize_reference(const Matrix& observed, const Matrix& mask,
                            const MfConfig& config, Rng& rng) {
  std::size_t rows = observed.rows();
  std::size_t cols = observed.cols();
  MfModel model;
  model.u = Matrix::random(rows, config.rank, rng, 0.0, 0.1);
  model.v = Matrix::random(cols, config.rank, rng, 0.0, 0.1);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix residual(rows, cols);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        if (mask(i, j) != 0.0) residual(i, j) = observed(i, j) - model.predict(i, j);
      }
    }
    Matrix grad_u = residual.multiply(model.v);
    grad_u.add_scaled(model.u, -config.regularization);
    Matrix grad_v = residual.transpose().multiply(model.u);
    grad_v.add_scaled(model.v, -config.regularization);
    model.u.add_scaled(grad_u, config.learning_rate);
    model.v.add_scaled(grad_v, config.learning_rate);
    for (std::size_t i = 0; i < rows; ++i) {
      double* row = model.u.row(i);
      for (std::size_t k = 0; k < config.rank; ++k) row[k] = std::max(0.0, row[k]);
    }
    for (std::size_t j = 0; j < cols; ++j) {
      double* row = model.v.row(j);
      for (std::size_t k = 0; k < config.rank; ++k) row[k] = std::max(0.0, row[k]);
    }
  }
  return model;
}

TEST(Mf, KernelRewriteBitIdenticalToPerCellReference) {
  Rng setup_rng(90);
  Matrix u_true = Matrix::random(33, 4, setup_rng, 0.0, 1.0);
  Matrix v_true = Matrix::random(21, 4, setup_rng, 0.0, 1.0);
  Matrix observed = u_true.multiply_transposed(v_true);
  Matrix mask(33, 21);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = setup_rng.uniform_int(0, 3) == 0 ? 0.0 : 1.0;
  }

  MfConfig config;
  config.rank = 4;
  config.epochs = 60;
  Rng ref_rng(7);
  MfModel reference = factorize_reference(observed, mask, config, ref_rng);

  for (std::size_t workers : kWorkerCounts) {
    Rng rng(7);
    MfConfig c = config;
    c.workers = workers;
    MfWorkspace workspace;
    MfModel model = factorize(observed, mask, c, rng, &workspace);
    EXPECT_TRUE(bit_equal(reference.u, model.u)) << "workers=" << workers;
    EXPECT_TRUE(bit_equal(reference.v, model.v)) << "workers=" << workers;
  }
}

TEST(Mf, GuiltByAssociationPropagates) {
  // Drug 0 and 1 are similar; drug 1 treats disease 0.
  Matrix associations(3, 2);
  associations(1, 0) = 1.0;
  Matrix similarity = Matrix::identity(3);
  similarity(0, 1) = similarity(1, 0) = 0.9;

  Matrix scores = guilt_by_association(associations, similarity);
  EXPECT_GT(scores(0, 0), 0.5);   // inherits via similarity
  EXPECT_DOUBLE_EQ(scores(2, 0), 0.0);  // no similar neighbor treats it
  EXPECT_THROW(guilt_by_association(associations, Matrix(2, 2)),
               std::invalid_argument);
}

// ------------------------------------------------------------------ JMF

class JmfFixture : public ::testing::Test {
 protected:
  JmfFixture() : rng_(84) {
    WorkloadConfig config;
    config.drugs = 60;
    config.diseases = 40;
    config.latent_rank = 5;
    workload_ = make_drug_disease_workload(config, rng_);
  }

  JmfConfig jmf_config() {
    JmfConfig config;
    config.rank = 8;
    config.epochs = 80;
    return config;
  }

  Rng rng_;
  DrugDiseaseWorkload workload_;
};

TEST_F(JmfFixture, WorkloadShapesAndHoldout) {
  EXPECT_EQ(workload_.truth.rows(), 60u);
  EXPECT_EQ(workload_.truth.cols(), 40u);
  EXPECT_EQ(workload_.drug_similarities.size(), 3u);
  EXPECT_EQ(workload_.disease_similarities.size(), 3u);
  EXPECT_FALSE(workload_.held_out.empty());
  // Held-out cells are zeroed in the training matrix but 1 in truth.
  for (const auto& [i, j] : workload_.held_out) {
    EXPECT_DOUBLE_EQ(workload_.observed(i, j), 0.0);
    EXPECT_DOUBLE_EQ(workload_.truth(i, j), 1.0);
  }
}

TEST_F(JmfFixture, ObjectiveDecreases) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  ASSERT_GE(result.objective_history.size(), 2u);
  EXPECT_LT(result.objective_history.back(), result.objective_history.front());
}

TEST_F(JmfFixture, RecoversHeldOutAssociations) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  double auc = evaluate_held_out_auc(result.scores, workload_, rng_);
  EXPECT_GT(auc, 0.80) << "JMF should rank held-out positives highly";
}

TEST_F(JmfFixture, BeatsGuiltByAssociationBaseline) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  double jmf_auc = evaluate_held_out_auc(result.scores, workload_, rng_);

  // GBA on the noisiest single drug source — the prior-art single-aspect
  // approach the paper contrasts with.
  Matrix gba = guilt_by_association(workload_.observed,
                                    workload_.drug_similarities.back());
  double gba_auc = evaluate_held_out_auc(gba, workload_, rng_);
  EXPECT_GT(jmf_auc, gba_auc);
}

TEST_F(JmfFixture, CleanerSourcesEarnHigherWeights) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  // Sources are ordered by ascending noise; the cleanest should outweigh
  // the noisiest ("interpretable importance of different sources").
  EXPECT_GT(result.drug_source_weights.front(), result.drug_source_weights.back());
  double sum = 0.0;
  for (double w : result.drug_source_weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(JmfFixture, ProducesGroupAssignments) {
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  EXPECT_EQ(result.drug_groups.size(), 60u);
  EXPECT_EQ(result.disease_groups.size(), 40u);
  for (auto g : result.drug_groups) EXPECT_LT(g, jmf_config().rank);
}

TEST_F(JmfFixture, RejectsBadInputs) {
  EXPECT_THROW(joint_matrix_factorization(workload_.observed, {},
                                          workload_.disease_similarities,
                                          jmf_config(), rng_),
               std::invalid_argument);
  std::vector<Matrix> wrong{Matrix(3, 3)};
  EXPECT_THROW(joint_matrix_factorization(workload_.observed, wrong,
                                          workload_.disease_similarities,
                                          jmf_config(), rng_),
               std::invalid_argument);
}

TEST_F(JmfFixture, FastKernelsBitIdenticalToNaiveAcrossWorkers) {
  auto run = [&](bool fast, std::size_t workers) {
    Rng rng(12345);
    JmfConfig config = jmf_config();
    config.use_fast_kernels = fast;
    config.workers = workers;
    return joint_matrix_factorization(workload_.observed, workload_.drug_similarities,
                                      workload_.disease_similarities, config, rng);
  };
  auto naive = run(false, 1);
  for (std::size_t workers : kWorkerCounts) {
    auto fast = run(true, workers);
    EXPECT_TRUE(bit_equal(naive.scores, fast.scores)) << "workers=" << workers;
    EXPECT_EQ(naive.objective_history, fast.objective_history)
        << "workers=" << workers;
    EXPECT_EQ(naive.drug_source_weights, fast.drug_source_weights)
        << "workers=" << workers;
    EXPECT_EQ(naive.disease_source_weights, fast.disease_source_weights)
        << "workers=" << workers;
  }
}

TEST_F(JmfFixture, GoldenOutputUnchangedFromSeed) {
  // Values captured from the pre-kernel seed implementation on this exact
  // fixture (Rng 84, 60x40, rank 8, 80 epochs). The compute-plane rewrite
  // promises bit-identical results, so these must hold to the last digit;
  // a tolerance here would let a silent numerics change through.
  auto result = joint_matrix_factorization(workload_.observed,
                                           workload_.drug_similarities,
                                           workload_.disease_similarities,
                                           jmf_config(), rng_);
  EXPECT_DOUBLE_EQ(result.objective_history.front(), 397.43594523175761);
  EXPECT_DOUBLE_EQ(result.objective_history.back(), 81.040102680138972);
  ASSERT_EQ(result.drug_source_weights.size(), 3u);
  EXPECT_DOUBLE_EQ(result.drug_source_weights[0], 0.83701674982573671);
  EXPECT_DOUBLE_EQ(result.drug_source_weights[1], 0.16273478878216327);
  EXPECT_DOUBLE_EQ(result.drug_source_weights[2], 0.00024846139209992361);
  // The seed's top-ranked score cells, in rank order — pins the ranking the
  // repositioning pipeline would emit.
  EXPECT_DOUBLE_EQ(result.scores(42, 37), 1.1807680540438326);
  EXPECT_DOUBLE_EQ(result.scores(55, 35), 1.0936356367121403);
  EXPECT_DOUBLE_EQ(result.scores(30, 35), 1.0463586709694173);
  EXPECT_DOUBLE_EQ(result.scores(42, 7), 1.0320486189451596);
  EXPECT_DOUBLE_EQ(result.scores(47, 37), 0.99336446673578083);
  EXPECT_DOUBLE_EQ(result.scores(10, 35), 0.98331323534434811);
  EXPECT_DOUBLE_EQ(result.scores(55, 0), 0.98100249764699166);
  EXPECT_DOUBLE_EQ(result.scores(55, 25), 0.97620495313297906);
  EXPECT_DOUBLE_EQ(result.scores(59, 29), 0.97608681820482435);
  EXPECT_DOUBLE_EQ(result.scores(55, 20), 0.95269942450022504);
  // Two arbitrary non-top cells guard the rest of the matrix.
  EXPECT_DOUBLE_EQ(result.scores(0, 0), 0.77012274226351274);
  EXPECT_DOUBLE_EQ(result.scores(30, 20), 0.90725986529573632);
}

TEST_F(JmfFixture, WorkspaceReuseAcrossCallsIsBitIdentical) {
  JmfConfig config = jmf_config();
  config.workers = 2;
  JmfWorkspace workspace;
  Rng r1(5), r2(5);
  auto cold = joint_matrix_factorization(workload_.observed,
                                         workload_.drug_similarities,
                                         workload_.disease_similarities, config, r1,
                                         &workspace);
  // Second call reuses the warm workspace; stale contents must not leak in.
  auto warm = joint_matrix_factorization(workload_.observed,
                                         workload_.drug_similarities,
                                         workload_.disease_similarities, config, r2,
                                         &workspace);
  EXPECT_TRUE(bit_equal(cold.scores, warm.scores));
  EXPECT_EQ(cold.objective_history, warm.objective_history);
}

// ----------------------------------------------------------------- DELT

class DeltFixture : public ::testing::Test {
 protected:
  DeltFixture() : rng_(85) {
    EmrConfig config;
    config.patients = 800;
    config.drugs = 60;
    config.planted_drugs = 6;
    // Make the confounding strong enough that marginal correlation cannot
    // tie DELT even at this small cohort size: weaker true effects, more
    // comorbidity-linked innocent drugs.
    config.effect_mean = -0.4;
    config.confounded_drugs = 10;
    config.comorbidity_probability = 0.5;
    dataset_ = make_emr_dataset(config, rng_);
  }

  Rng rng_;
  EmrDataset dataset_;
};

TEST_F(DeltFixture, DatasetHasPlantedStructure) {
  std::size_t planted = 0, confounded = 0;
  for (std::size_t d = 0; d < dataset_.drug_count; ++d) {
    planted += dataset_.is_planted[d] ? 1 : 0;
    confounded += dataset_.is_confounded[d] ? 1 : 0;
    if (dataset_.is_planted[d]) {
      EXPECT_LT(dataset_.true_effects[d], 0.0);
      EXPECT_FALSE(dataset_.is_confounded[d]);  // disjoint sets
    }
  }
  EXPECT_EQ(planted, 6u);
  EXPECT_EQ(confounded, 10u);
  EXPECT_EQ(dataset_.patients.size(), 800u);
}

TEST_F(DeltFixture, ObjectiveDecreases) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  ASSERT_GE(model.objective_history.size(), 2u);
  EXPECT_LE(model.objective_history.back(), model.objective_history.front());
}

TEST_F(DeltFixture, RecoversPlantedDrugs) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  auto metrics = score_recovery(model.drug_effects, dataset_);
  EXPECT_GT(metrics.auc, 0.95) << "DELT should cleanly separate planted drugs";
  EXPECT_GE(metrics.precision_at_n, 0.8);
  EXPECT_LT(metrics.effect_rmse, 0.25);
}

TEST_F(DeltFixture, BeatsMarginalCorrelation) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  auto delt_metrics = score_recovery(model.drug_effects, dataset_);
  auto marginal = marginal_correlation_effects(dataset_);
  auto marginal_metrics = score_recovery(marginal, dataset_);
  EXPECT_GT(delt_metrics.auc, marginal_metrics.auc);
}

TEST_F(DeltFixture, BaselineAblationHurts) {
  DeltConfig full;
  DeltConfig no_baseline;
  no_baseline.model_baseline = false;
  no_baseline.model_drift = false;
  auto full_metrics = score_recovery(fit_delt(dataset_, full).drug_effects, dataset_);
  auto ablated_metrics =
      score_recovery(fit_delt(dataset_, no_baseline).drug_effects, dataset_);
  // The paper's contribution (2): baselines + drift absorb confounders.
  EXPECT_GE(full_metrics.auc, ablated_metrics.auc);
  EXPECT_LT(full_metrics.effect_rmse, ablated_metrics.effect_rmse + 1e-9);
}

TEST_F(DeltFixture, EstimatesBaselinesNearTruth) {
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  double total_error = 0.0;
  for (std::size_t p = 0; p < dataset_.patients.size(); ++p) {
    total_error +=
        std::abs(model.patient_baselines[p] - dataset_.patients[p].true_baseline);
  }
  EXPECT_LT(total_error / static_cast<double>(dataset_.patients.size()), 0.5);
}

TEST_F(DeltFixture, GoldenEffectsUnchangedFromSeed) {
  // Captured from the pre-parallel seed on this exact fixture (Rng 85, 800
  // patients, 60 drugs, default DeltConfig). The per-patient solves are
  // bit-identical under the parallel rewrite, so exact equality is required.
  DeltModel model = fit_delt(dataset_, DeltConfig{});
  EXPECT_DOUBLE_EQ(model.objective_history.front(), 329.99078366764337);
  EXPECT_DOUBLE_EQ(model.objective_history.back(), 299.70086750655889);
  // The six most negative betas, in rank order — the repositioning ranking.
  EXPECT_DOUBLE_EQ(model.drug_effects[52], -0.56310748048539294);
  EXPECT_DOUBLE_EQ(model.drug_effects[16], -0.49289802796316312);
  EXPECT_DOUBLE_EQ(model.drug_effects[0], -0.36125195895391771);
  EXPECT_DOUBLE_EQ(model.drug_effects[40], -0.30439780409436468);
  EXPECT_DOUBLE_EQ(model.drug_effects[56], -0.30034072514954147);
  EXPECT_DOUBLE_EQ(model.drug_effects[53], -0.21182358517683467);
  EXPECT_DOUBLE_EQ(model.patient_baselines[0], 6.0657824151638042);
  EXPECT_DOUBLE_EQ(model.patient_drifts[0], 0.079737947449063498);
}

TEST_F(DeltFixture, BitIdenticalAcrossWorkerCounts) {
  DeltModel base = fit_delt(dataset_, DeltConfig{});
  for (std::size_t workers : {2u, 4u, 8u}) {
    DeltConfig config;
    config.workers = workers;
    DeltModel model = fit_delt(dataset_, config);
    EXPECT_EQ(base.drug_effects, model.drug_effects) << "workers=" << workers;
    EXPECT_EQ(base.patient_baselines, model.patient_baselines)
        << "workers=" << workers;
    EXPECT_EQ(base.patient_drifts, model.patient_drifts) << "workers=" << workers;
    EXPECT_EQ(base.objective_history, model.objective_history)
        << "workers=" << workers;
  }
}

TEST(Delt, RejectsEmptyDataset) {
  EXPECT_THROW(fit_delt(EmrDataset{}, DeltConfig{}), std::invalid_argument);
}

TEST(Delt, ScoreRecoveryValidatesSize) {
  Rng rng(86);
  EmrConfig config;
  config.patients = 10;
  config.drugs = 5;
  config.planted_drugs = 1;
  config.confounded_drugs = 1;
  auto dataset = make_emr_dataset(config, rng);
  EXPECT_THROW(score_recovery(std::vector<double>(3), dataset), std::invalid_argument);
}

// ------------------------------------------------------------------ DDI

TEST(Ddi, PredictsInteractionsAboveChance) {
  Rng rng(87);
  auto workload = make_ddi_workload(50, 5, rng);
  DdiPredictor predictor(workload.similarities);
  predictor.train(workload.train_positives, workload.train_negatives, DdiConfig{});

  std::vector<double> scores;
  scores.reserve(workload.test_pairs.size());
  for (const auto& pair : workload.test_pairs) scores.push_back(predictor.predict(pair));
  double auc = auc_roc(scores, workload.test_labels);
  EXPECT_GT(auc, 0.85);
}

TEST(Ddi, FeaturesBoundedAndKeyedToKnownPairs) {
  Rng rng(88);
  auto workload = make_ddi_workload(30, 5, rng);
  DdiPredictor predictor(workload.similarities);
  predictor.train(workload.train_positives, workload.train_negatives, DdiConfig{});
  for (const auto& pair : workload.test_pairs) {
    for (double f : predictor.pair_features(pair)) {
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(Ddi, TrainingBitIdenticalAcrossWorkerCounts) {
  Rng rng(91);
  auto workload = make_ddi_workload(40, 5, rng);
  auto train = [&](std::size_t workers) {
    DdiPredictor predictor(workload.similarities);
    DdiConfig config;
    config.workers = workers;
    predictor.train(workload.train_positives, workload.train_negatives, config);
    return predictor.weights();
  };
  auto base = train(1);
  for (std::size_t workers : {2u, 4u, 8u}) {
    EXPECT_EQ(base, train(workers)) << "workers=" << workers;
  }
}

TEST(Ddi, RejectsBadConstruction) {
  EXPECT_THROW(DdiPredictor({}), std::invalid_argument);
  Rng rng(89);
  EXPECT_THROW(make_ddi_workload(10, 2, rng), std::invalid_argument);
  DdiPredictor predictor({Matrix::identity(4)});
  EXPECT_THROW(predictor.train({}, {}, DdiConfig{}), std::invalid_argument);
}

// ------------------------------------------------------------- lifecycle

class LifecycleFixture : public ::testing::Test {
 protected:
  ModelRegistry registry_;
};

TEST_F(LifecycleFixture, FullLifecyclePath) {
  auto v = registry_.create("jmf-alzheimers", to_bytes("artifact-v1"));
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*v, 1u);
  EXPECT_EQ(registry_.get("jmf-alzheimers", 1).value().stage,
            ModelStage::kDataCleaning);

  ASSERT_TRUE(registry_.advance("jmf-alzheimers", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("jmf-alzheimers", 1, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.record_metric("jmf-alzheimers", 1, "auc", 0.91).is_ok());
  ASSERT_TRUE(registry_.approve("jmf-alzheimers", 1, "compliance-officer").is_ok());
  ASSERT_TRUE(registry_.advance("jmf-alzheimers", 1, ModelStage::kDeployed).is_ok());

  auto deployed = registry_.deployed("jmf-alzheimers");
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_EQ(deployed->version, 1u);
  EXPECT_DOUBLE_EQ(deployed->metrics.at("auc"), 0.91);
}

TEST_F(LifecycleFixture, DeploymentGatedOnApproval) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kTesting).is_ok());
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kDeployed).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(LifecycleFixture, IllegalTransitionsRejected) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kDeployed).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kTesting).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  EXPECT_EQ(registry_.advance("m", 1, ModelStage::kDataCleaning).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LifecycleFixture, TestingCanLoopBackToGeneration) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
}

TEST_F(LifecycleFixture, UpdateCreatesNewVersionAndRetiresOld) {
  ASSERT_TRUE(registry_.create("m", to_bytes("v1")).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.approve("m", 1, "officer").is_ok());
  ASSERT_TRUE(registry_.advance("m", 1, ModelStage::kDeployed).is_ok());

  auto v2 = registry_.update("m", to_bytes("v2"));
  ASSERT_TRUE(v2.is_ok());
  EXPECT_EQ(*v2, 2u);
  EXPECT_EQ(registry_.get("m", 2).value().stage, ModelStage::kGeneration);
  ASSERT_TRUE(registry_.advance("m", 2, ModelStage::kTesting).is_ok());
  ASSERT_TRUE(registry_.approve("m", 2, "officer").is_ok());
  ASSERT_TRUE(registry_.advance("m", 2, ModelStage::kDeployed).is_ok());

  EXPECT_EQ(registry_.deployed("m").value().version, 2u);
  EXPECT_EQ(registry_.get("m", 1).value().stage, ModelStage::kRetired);
  EXPECT_EQ(registry_.latest_version("m"), 2u);
}

TEST_F(LifecycleFixture, MetricsOnlyDuringTesting) {
  ASSERT_TRUE(registry_.create("m", to_bytes("a")).is_ok());
  EXPECT_EQ(registry_.record_metric("m", 1, "auc", 0.5).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry_.approve("m", 1, "officer").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LifecycleFixture, UnknownModelsNotFound) {
  EXPECT_EQ(registry_.update("ghost", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.get("ghost", 1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.deployed("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.advance("ghost", 1, ModelStage::kGeneration).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry_.latest_version("ghost"), 0u);
  ASSERT_TRUE(registry_.create("m", {}).is_ok());
  EXPECT_EQ(registry_.create("m", {}).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry_.get("m", 7).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hc::analytics
