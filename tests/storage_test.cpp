#include <gtest/gtest.h>

#include "storage/data_lake.h"
#include "storage/staging.h"
#include "storage/status_tracker.h"

namespace hc::storage {
namespace {

class DataLakeFixture : public ::testing::Test {
 protected:
  DataLakeFixture()
      : kms_("tenant-a", Rng(30)),
        lake_(kms_, "datalake-service", Rng(31)) {
    key_ = kms_.create_symmetric_key("datalake-service");
  }

  crypto::KeyManagementService kms_;
  DataLake lake_;
  crypto::KeyId key_;
};

TEST_F(DataLakeFixture, PutGetRoundTrip) {
  Bytes record = to_bytes("de-identified fhir bundle");
  auto ref = lake_.put(record, key_);
  ASSERT_TRUE(ref.is_ok());
  EXPECT_TRUE(ref->starts_with("ref-"));
  EXPECT_EQ(lake_.get(*ref).value(), record);
  EXPECT_TRUE(lake_.contains(*ref));
  EXPECT_EQ(lake_.object_count(), 1u);
}

TEST_F(DataLakeFixture, StoresCiphertextNotPlaintext) {
  // Stored bytes exceed plaintext (IV + padding) and get() requires the key.
  Bytes record(100, 0x7a);
  auto ref = lake_.put(record, key_);
  ASSERT_TRUE(ref.is_ok());
  EXPECT_GT(lake_.stored_bytes(), record.size());
}

TEST_F(DataLakeFixture, UnknownReferenceNotFound) {
  EXPECT_EQ(lake_.get("ref-nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(lake_.erase("ref-nope").code(), StatusCode::kNotFound);
  EXPECT_FALSE(lake_.contains("ref-nope"));
}

TEST_F(DataLakeFixture, PutWithUnauthorizedKeyFails) {
  auto foreign_key = kms_.create_symmetric_key("someone-else");
  EXPECT_EQ(lake_.put(to_bytes("x"), foreign_key).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(DataLakeFixture, CryptoShreddingBlocksReads) {
  auto ref = lake_.put(to_bytes("patient-42 record"), key_);
  ASSERT_TRUE(ref.is_ok());
  ASSERT_TRUE(kms_.destroy(key_, "datalake-service").is_ok());
  // Blob still present, but unrecoverable: the GDPR right-to-forget path.
  EXPECT_TRUE(lake_.contains(*ref));
  EXPECT_EQ(lake_.get(*ref).status().code(), StatusCode::kDataLoss);
}

TEST_F(DataLakeFixture, KeyRotationDoesNotStrandOldObjects) {
  auto before = lake_.put(to_bytes("written under v1"), key_);
  ASSERT_TRUE(before.is_ok());

  ASSERT_TRUE(kms_.rotate(key_, "datalake-service").is_ok());
  auto after = lake_.put(to_bytes("written under v2"), key_);
  ASSERT_TRUE(after.is_ok());

  // Both generations decrypt with their own key version.
  EXPECT_EQ(to_string(lake_.get(*before).value()), "written under v1");
  EXPECT_EQ(to_string(lake_.get(*after).value()), "written under v2");

  // Shredding wipes ALL versions -> both become unrecoverable.
  ASSERT_TRUE(kms_.destroy(key_, "datalake-service").is_ok());
  EXPECT_EQ(lake_.get(*before).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(lake_.get(*after).status().code(), StatusCode::kDataLoss);
}

TEST_F(DataLakeFixture, EraseRemovesBlobAndAccounting) {
  auto ref = lake_.put(Bytes(1000, 1), key_);
  ASSERT_TRUE(ref.is_ok());
  auto before = lake_.stored_bytes();
  EXPECT_GT(before, 0u);
  ASSERT_TRUE(lake_.erase(*ref).is_ok());
  EXPECT_EQ(lake_.stored_bytes(), 0u);
  EXPECT_FALSE(lake_.contains(*ref));
}

// ------------------------------------------------------------- metadata

TEST(MetadataStore, PutGetErase) {
  MetadataStore store;
  RecordMetadata md;
  md.reference_id = "ref-1";
  md.pseudonym = "pseu-77";
  md.consent_group = "study-a";
  ASSERT_TRUE(store.put(md).is_ok());
  EXPECT_EQ(store.get("ref-1").value().pseudonym, "pseu-77");
  ASSERT_TRUE(store.erase("ref-1").is_ok());
  EXPECT_EQ(store.get("ref-1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.erase("ref-1").code(), StatusCode::kNotFound);
}

TEST(MetadataStore, RejectsEmptyReferenceId) {
  MetadataStore store;
  EXPECT_EQ(store.put(RecordMetadata{}).code(), StatusCode::kInvalidArgument);
}

TEST(MetadataStore, QueriesByPseudonymAndGroup) {
  MetadataStore store;
  for (int i = 0; i < 5; ++i) {
    RecordMetadata md;
    md.reference_id = "ref-" + std::to_string(i);
    md.pseudonym = i < 2 ? "pseu-a" : "pseu-b";
    md.consent_group = i % 2 == 0 ? "study-x" : "study-y";
    ASSERT_TRUE(store.put(md).is_ok());
  }
  EXPECT_EQ(store.by_pseudonym("pseu-a").size(), 2u);
  EXPECT_EQ(store.by_pseudonym("pseu-b").size(), 3u);
  EXPECT_EQ(store.by_group("study-x").size(), 3u);
  EXPECT_EQ(store.by_group("study-z").size(), 0u);
}

// ------------------------------------------------------------- staging

TEST(StagingArea, PutGetRemove) {
  StagingArea staging;
  ASSERT_TRUE(staging.put("up-1", to_bytes("encrypted-blob")).is_ok());
  EXPECT_EQ(to_string(staging.get("up-1").value()), "encrypted-blob");
  ASSERT_TRUE(staging.remove("up-1").is_ok());
  EXPECT_EQ(staging.get("up-1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(staging.size(), 0u);
}

TEST(StagingArea, RejectsDuplicateUploadIds) {
  StagingArea staging;
  ASSERT_TRUE(staging.put("up-1", {}).is_ok());
  EXPECT_EQ(staging.put("up-1", {}).code(), StatusCode::kAlreadyExists);
}

TEST(StagingArea, RemoveUnknownNotFound) {
  StagingArea staging;
  EXPECT_EQ(staging.remove("up-404").code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- queue

TEST(MessageQueue, FifoOrder) {
  MessageQueue q;
  EXPECT_TRUE(q.empty());
  q.push({"up-1", "user-a", "study", "key-1"});
  q.push({"up-2", "user-b", "study", "key-2"});
  EXPECT_EQ(q.depth(), 2u);

  auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->upload_id, "up-1");
  auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->upload_id, "up-2");
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MessageQueue, EnqueueAtCapacityReturnsRetryableBackpressure) {
  MessageQueue q;
  q.set_capacity(2);
  ASSERT_TRUE(q.push({"up-1", "user-a", "study", "key-1"}).is_ok());
  ASSERT_TRUE(q.push({"up-2", "user-a", "study", "key-2"}).is_ok());

  Status full = q.push({"up-3", "user-a", "study", "key-3"});
  ASSERT_FALSE(full.is_ok());
  // The backpressure contract: retryable (kUnavailable), so upstream
  // RetryPolicy backoff handles it; nothing already queued is dropped.
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_NE(full.message().find("retry with backoff"), std::string::npos);
  EXPECT_EQ(q.depth(), 2u);

  // Draining one frees a slot; capacity 0 restores unbounded.
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.push({"up-3", "user-a", "study", "key-3"}).is_ok());
  q.set_capacity(0);
  EXPECT_TRUE(q.push({"up-4", "user-a", "study", "key-4"}).is_ok());
  EXPECT_TRUE(q.push({"up-5", "user-a", "study", "key-5"}).is_ok());
}

TEST(MessageQueue, FairModeDrainsTenantLanesByDeficitRoundRobin) {
  MessageQueue q;
  q.enable_fair_mode(/*quantum=*/1);
  EXPECT_TRUE(q.fair_mode());
  q.set_tenant_weight("loud", 1);
  q.set_tenant_weight("soft", 1);

  // Four "loud" messages arrive before two "soft" ones (all unit cost):
  // FIFO would starve "soft" behind the flood; DRR alternates lanes.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        q.push({"l" + std::to_string(i), "user-a", "study", "k", "loud"}).is_ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        q.push({"s" + std::to_string(i), "user-b", "study", "k", "soft"}).is_ok());
  }
  EXPECT_EQ(q.backlog_cost(), 6u);

  std::vector<std::string> order;
  while (auto msg = q.pop()) order.push_back(msg->upload_id);
  EXPECT_EQ(order,
            (std::vector<std::string>{"l0", "s0", "l1", "s1", "l2", "l3"}));
}

TEST(MessageQueue, FifoRemainderDrainsBeforeFairLanes) {
  // Messages queued before enable_fair_mode keep their FIFO position and
  // drain ahead of anything scheduled by the fair queue.
  MessageQueue q;
  ASSERT_TRUE(q.push({"old-1", "user-a", "study", "k"}).is_ok());
  q.enable_fair_mode();
  ASSERT_TRUE(q.push({"new-1", "user-a", "study", "k", "tenant-x"}).is_ok());
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.pop()->upload_id, "old-1");
  EXPECT_EQ(q.pop()->upload_id, "new-1");
  EXPECT_TRUE(q.empty());
}

// --------------------------------------------------------------- status

TEST(StatusTracker, TracksLifecycle) {
  StatusTracker tracker;
  std::string url = tracker.track("up-1");
  EXPECT_TRUE(url.find("up-1") != std::string::npos);

  EXPECT_EQ(tracker.status("up-1").value().stage, IngestionStage::kReceived);
  tracker.set_stage("up-1", IngestionStage::kValidating);
  EXPECT_EQ(tracker.status(url).value().stage, IngestionStage::kValidating);

  tracker.set_stored("up-1", "ref-9");
  auto final_status = tracker.status(url).value();
  EXPECT_EQ(final_status.stage, IngestionStage::kStored);
  EXPECT_EQ(final_status.reference_id, "ref-9");
}

TEST(StatusTracker, FailureCarriesReason) {
  StatusTracker tracker;
  tracker.track("up-2");
  tracker.set_failed("up-2", "malware detected");
  auto s = tracker.status("up-2").value();
  EXPECT_EQ(s.stage, IngestionStage::kFailed);
  EXPECT_EQ(s.failure_reason, "malware detected");
}

TEST(StatusTracker, UnknownUploadNotFound) {
  StatusTracker tracker;
  EXPECT_EQ(tracker.status("up-404").status().code(), StatusCode::kNotFound);
}

TEST(StatusTracker, AllStagesHaveNames) {
  for (int s = 0; s <= static_cast<int>(IngestionStage::kFailed); ++s) {
    EXPECT_NE(ingestion_stage_name(static_cast<IngestionStage>(s)), "unknown");
  }
}

}  // namespace
}  // namespace hc::storage
