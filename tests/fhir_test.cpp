#include <gtest/gtest.h>

#include "fhir/hl7.h"
#include "fhir/json.h"
#include "fhir/resources.h"
#include "fhir/synthetic.h"

namespace hc::fhir {
namespace {

// ------------------------------------------------------------------ json

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParseNestedStructures) {
  auto doc = parse_json(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ((*doc)["a"].as_array().size(), 3u);
  EXPECT_EQ((*doc)["a"].as_array()[2]["b"].as_string(), "c");
  EXPECT_TRUE((*doc)["d"]["e"].is_null());
  EXPECT_TRUE((*doc)["missing"].is_null());
}

TEST(Json, StringEscapes) {
  auto doc = parse_json(R"("line\nbreak \"quoted\" tab\t back\\slash A")");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->as_string(), "line\nbreak \"quoted\" tab\t back\\slash A");
}

TEST(Json, UnicodeEscapesToUtf8) {
  EXPECT_EQ(parse_json(R"("é")")->as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(parse_json(R"("中")")->as_string(), "\xe4\xb8\xad");  // 中
}

TEST(Json, DumpParseRoundTrip) {
  Json original(JsonObject{
      {"name", "Jane \"JD\" Doe"},
      {"age", 37},
      {"scores", JsonArray{1.5, 2, 3}},
      {"active", true},
      {"note", nullptr},
  });
  auto reparsed = parse_json(original.dump());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed->dump(), original.dump());
}

TEST(Json, MalformedInputsRejected) {
  for (const char* bad : {"{", "[1,", "\"unterminated", "{\"a\" 1}", "tru",
                          "1 2", "{\"a\":}", "", "[1,]nope"}) {
    EXPECT_FALSE(parse_json(bad).is_ok()) << "accepted: " << bad;
  }
}

TEST(Json, GettersWithDefaults) {
  auto doc = parse_json(R"({"s": "x", "n": 5})");
  EXPECT_EQ(doc->string_or("s", "d"), "x");
  EXPECT_EQ(doc->string_or("missing", "d"), "d");
  EXPECT_EQ(doc->string_or("n", "d"), "d");  // wrong type -> default
  EXPECT_DOUBLE_EQ(doc->number_or("n", 0), 5.0);
  EXPECT_DOUBLE_EQ(doc->number_or("s", 7), 7.0);
}

// ------------------------------------------------------------- resources

Bundle sample_bundle() {
  Bundle b;
  b.id = "bundle-1";
  Patient p;
  p.id = "patient-1";
  p.name = "Jane Doe";
  p.birth_date = "1981-03-15";
  p.gender = "female";
  p.zip = "10598";
  p.age = 37;
  b.resources.emplace_back(p);

  Observation o;
  o.id = "obs-1";
  o.patient_id = "patient-1";
  o.code = "hba1c";
  o.value = 7.2;
  o.unit = "%";
  o.effective_date = "2017-06-01";
  b.resources.emplace_back(o);

  MedicationRequest m;
  m.id = "med-1";
  m.patient_id = "patient-1";
  m.drug = "metformin";
  m.start_date = "2016-01-10";
  m.days_supply = 90;
  b.resources.emplace_back(m);

  Condition c;
  c.id = "cond-1";
  c.patient_id = "patient-1";
  c.code = "type-2-diabetes";
  c.onset_date = "2015-11-02";
  b.resources.emplace_back(c);
  return b;
}

TEST(Resources, SerializeParseRoundTrip) {
  Bundle original = sample_bundle();
  auto parsed = parse_bundle(serialize_bundle(original));
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed->resources.size(), 4u);
  EXPECT_EQ(parsed->id, "bundle-1");

  const auto& p = std::get<Patient>(parsed->resources[0]);
  EXPECT_EQ(p.name, "Jane Doe");
  EXPECT_EQ(p.age, 37);
  const auto& o = std::get<Observation>(parsed->resources[1]);
  EXPECT_DOUBLE_EQ(o.value, 7.2);
  const auto& m = std::get<MedicationRequest>(parsed->resources[2]);
  EXPECT_EQ(m.days_supply, 90);
  const auto& c = std::get<Condition>(parsed->resources[3]);
  EXPECT_EQ(c.code, "type-2-diabetes");
}

TEST(Resources, TypeNames) {
  Bundle b = sample_bundle();
  EXPECT_EQ(resource_type_name(b.resources[0]), "Patient");
  EXPECT_EQ(resource_type_name(b.resources[1]), "Observation");
  EXPECT_EQ(resource_type_name(b.resources[2]), "MedicationRequest");
  EXPECT_EQ(resource_type_name(b.resources[3]), "Condition");
}

TEST(Resources, ParseRejectsNonBundle) {
  EXPECT_EQ(parse_bundle(to_bytes(R"({"resourceType":"Patient"})")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_bundle(to_bytes("not json")).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(parse_bundle(to_bytes(R"({"resourceType":"Bundle","id":"x"})"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // no entry array
  EXPECT_EQ(
      parse_bundle(to_bytes(
                       R"({"resourceType":"Bundle","id":"x","entry":[{"resourceType":"Alien"}]})"))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(Validation, AcceptsWellFormedBundle) {
  EXPECT_TRUE(validate_bundle(sample_bundle()).is_ok());
}

TEST(Validation, RejectsStructuralProblems) {
  Bundle b = sample_bundle();
  b.id = "";
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  b.resources.clear();
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<Patient>(b.resources[0]).birth_date = "1981/03/15";
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<Patient>(b.resources[0]).gender = "robot";
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<Patient>(b.resources[0]).age = 200;
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<Observation>(b.resources[1]).patient_id = "";
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<Observation>(b.resources[1]).value = std::nan("");
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<MedicationRequest>(b.resources[2]).drug = "";
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<MedicationRequest>(b.resources[2]).days_supply = -1;
  EXPECT_FALSE(validate_bundle(b).is_ok());

  b = sample_bundle();
  std::get<Condition>(b.resources[3]).code = "";
  EXPECT_FALSE(validate_bundle(b).is_ok());
}

TEST(Resources, PatientFieldsBridge) {
  Bundle b = sample_bundle();
  auto fields = patient_fields(std::get<Patient>(b.resources[0]));
  EXPECT_EQ(fields.at("patient_id"), "patient-1");
  EXPECT_EQ(fields.at("age"), "37");
  EXPECT_EQ(fields.at("zip"), "10598");
}

// ------------------------------------------------------------------ hl7

TEST(Hl7, ParsesPidAndObxSegments) {
  std::string msg =
      "MSH|^~\\&|sender\r"
      "PID|1|patient-9|John Smith|1960-05-01|M|9 Elm Dr|30301|555-0199|987-65-4321|58\r"
      "OBX|1|patient-9|hba1c|6.8|%|2017-02-03\r";
  auto bundle = hl7v2_to_bundle(msg, "bundle-hl7");
  ASSERT_TRUE(bundle.is_ok());
  ASSERT_EQ(bundle->resources.size(), 2u);

  const auto& p = std::get<Patient>(bundle->resources[0]);
  EXPECT_EQ(p.id, "patient-9");
  EXPECT_EQ(p.gender, "male");
  EXPECT_EQ(p.age, 58);

  const auto& o = std::get<Observation>(bundle->resources[1]);
  EXPECT_EQ(o.code, "hba1c");
  EXPECT_DOUBLE_EQ(o.value, 6.8);
  EXPECT_EQ(o.effective_date, "2017-02-03");
  EXPECT_TRUE(validate_bundle(*bundle).is_ok());
}

TEST(Hl7, RoundTripThroughAdapter) {
  std::string msg =
      "PID|1|patient-9|John Smith|1960-05-01|M|9 Elm Dr|30301|555-0199|987-65-4321|58\r"
      "OBX|1|patient-9|hba1c|6.8|%|2017-02-03\r";
  auto bundle = hl7v2_to_bundle(msg, "b");
  ASSERT_TRUE(bundle.is_ok());
  auto back = bundle_to_hl7v2(*bundle);
  ASSERT_TRUE(back.is_ok());
  auto again = hl7v2_to_bundle(*back, "b2");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(std::get<Patient>(again->resources[0]).name, "John Smith");
  EXPECT_DOUBLE_EQ(std::get<Observation>(again->resources[1]).value, 6.8);
}

TEST(Hl7, RejectsMalformedSegments) {
  EXPECT_FALSE(hl7v2_to_bundle("ZZZ|what", "b").is_ok());
  EXPECT_FALSE(hl7v2_to_bundle("PID|1||name", "b").is_ok());  // no patient id
  EXPECT_FALSE(hl7v2_to_bundle("OBX|1|patient||", "b").is_ok());  // no code
}

TEST(Hl7, RendererRejectsUnsupportedResources) {
  Bundle b;
  b.id = "x";
  Condition c;
  c.id = "c";
  c.patient_id = "p";
  c.code = "dx";
  b.resources.emplace_back(c);
  EXPECT_EQ(bundle_to_hl7v2(b).status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------------- synthetic

TEST(Synthetic, BundlesAreValidAndComplete) {
  Rng rng(50);
  SyntheticOptions options;
  options.patient_count = 25;
  auto bundles = make_synthetic_bundles(rng, options);
  ASSERT_EQ(bundles.size(), 25u);
  for (const auto& bundle : bundles) {
    EXPECT_TRUE(validate_bundle(bundle).is_ok()) << bundle.id;
    EXPECT_TRUE(std::holds_alternative<Patient>(bundle.resources[0]));
  }
}

TEST(Synthetic, ResourceMixMatchesOptions) {
  Rng rng(51);
  SyntheticOptions options;
  options.patient_count = 10;
  options.observations_per_patient = 3;
  options.medications_per_patient = 2;
  options.condition_probability = 0.0;
  auto bundles = make_synthetic_bundles(rng, options);
  for (const auto& bundle : bundles) {
    EXPECT_EQ(bundle.resources.size(), 1u + 3u + 2u);
  }
}

TEST(Synthetic, DeterministicForSeed) {
  Rng a(52), b(52);
  SyntheticOptions options;
  options.patient_count = 5;
  auto ba = make_synthetic_bundles(a, options);
  auto bb = make_synthetic_bundles(b, options);
  EXPECT_EQ(serialize_bundle(ba[3]), serialize_bundle(bb[3]));
}

TEST(Synthetic, RoundTripsThroughSerialization) {
  Rng rng(53);
  Bundle bundle = make_synthetic_bundle(rng, "demo");
  auto parsed = parse_bundle(serialize_bundle(bundle));
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->resources.size(), bundle.resources.size());
  EXPECT_TRUE(validate_bundle(*parsed).is_ok());
}

TEST(Synthetic, CatalogsNonEmpty) {
  EXPECT_GE(synthetic_drug_names().size(), 10u);
  EXPECT_GE(synthetic_condition_codes().size(), 5u);
}

}  // namespace
}  // namespace hc::fhir
