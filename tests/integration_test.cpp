// Whole-platform end-to-end scenario across two cloud instances and a
// mobile client — the paper's architecture exercised as one story:
//
//   1. data-cloud boots (measured + attested); patients enroll and consent
//   2. a phone collects readings offline, anonymizes/encrypts client-side,
//      syncs, and the ingestion pipeline stores de-identified records
//   3. analytics-cloud develops a model through the lifecycle, signs it,
//      and ships it to data-cloud via the intercloud secure gateway with
//      remote attestation (compute moves to the data)
//   4. a CRO pulls a k-anonymous export; a clinician pulls a full export
//   5. one patient exercises GDPR right-to-forget
//   6. the auditor verifies provenance and the compliance report passes
#include <gtest/gtest.h>

#include "blockchain/auditor.h"
#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/compliance.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"
#include "platform/intercloud.h"
#include "privacy/kanonymity.h"

namespace hc {
namespace {

TEST(EndToEnd, FullPlatformScenario) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(200));

  // --- 1. two trusted instances + a phone ------------------------------
  platform::InstanceConfig data_config;
  data_config.name = "data-cloud";
  data_config.seed = 201;
  platform::InstanceConfig analytics_config;
  analytics_config.name = "analytics-cloud";
  analytics_config.seed = 202;
  platform::HealthCloudInstance data_cloud(data_config, clock, network);
  platform::HealthCloudInstance analytics_cloud(analytics_config, clock, network);
  network.set_link("phone", "data-cloud", net::LinkProfile::mobile());
  network.set_link("data-cloud", "analytics-cloud", net::LinkProfile::intercloud());
  data_cloud.images().approve_key(analytics_cloud.platform_signing_keys().pub);

  platform::EnhancedClientConfig phone_config;
  phone_config.name = "phone";
  platform::EnhancedClient phone(phone_config, data_cloud, "patient-app");

  // --- 2. offline capture -> sync -> ingestion --------------------------
  Rng rng(203);
  phone.set_connected(false);
  constexpr std::size_t kPatients = 25;
  for (std::size_t i = 0; i < kPatients; ++i) {
    fhir::Bundle bundle =
        fhir::make_synthetic_bundle(rng, "reading-" + std::to_string(i), i);
    ASSERT_TRUE(data_cloud.ledger()
                    .submit_and_commit(
                        "consent",
                        {{"action", "grant"},
                         {"patient", std::get<fhir::Patient>(bundle.resources[0]).id},
                         {"group", "cohort"}},
                        "provider")
                    .is_ok());
    ASSERT_TRUE(phone.upload_bundle(bundle, "cohort").is_ok());
  }
  EXPECT_EQ(phone.pending_uploads(), kPatients);

  phone.set_connected(true);
  ASSERT_EQ(phone.sync().value(), kPatients);
  EXPECT_EQ(data_cloud.ingestion().process_all(), kPatients);
  EXPECT_EQ(data_cloud.metadata().by_group("cohort").size(), kPatients);

  // --- 3. model lifecycle + intercloud shipped workload ------------------
  Bytes artifact = to_bytes("delt-model-weights");
  auto& models = analytics_cloud.models();
  ASSERT_TRUE(models.create("delt", artifact).is_ok());
  ASSERT_TRUE(models.advance("delt", 1, analytics::ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(models.advance("delt", 1, analytics::ModelStage::kTesting).is_ok());
  ASSERT_TRUE(models.approve("delt", 1, "compliance-officer").is_ok());
  ASSERT_TRUE(models.advance("delt", 1, analytics::ModelStage::kDeployed).is_ok());

  auto manifest = tpm::sign_image("delt", "1.0", artifact, {},
                                  analytics_cloud.platform_signing_keys());
  ASSERT_TRUE(analytics_cloud.images().register_image(manifest, artifact).is_ok());
  platform::IntercloudGateway gateway(analytics_cloud, data_cloud);
  auto receipt = gateway.transfer_and_launch("delt", "1.0");
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_TRUE(data_cloud.images().content("delt", "1.0").is_ok());

  // --- 4. exports ---------------------------------------------------------
  auto anonymized = data_cloud.exporter().export_anonymized("cohort", 5);
  ASSERT_TRUE(anonymized.is_ok());
  EXPECT_TRUE(privacy::is_k_anonymous(anonymized->rows, {"age", "zip"}, 5));

  auto full = data_cloud.exporter().export_full("cohort", "cro-17");
  ASSERT_TRUE(full.is_ok());
  EXPECT_EQ(full->size(), kPatients);

  // --- 5. right to forget ---------------------------------------------------
  const std::string pseudonym = data_cloud.metadata().by_group("cohort")[0].pseudonym;
  ASSERT_TRUE(data_cloud.forget_patient(pseudonym).is_ok());
  auto after = data_cloud.exporter().export_full("cohort", "cro-17");
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after->size(), kPatients - 1);

  // --- 6. audit + compliance --------------------------------------------------
  blockchain::AuditorView auditor(data_cloud.ledger());
  EXPECT_TRUE(auditor.verify_integrity().is_ok());
  EXPECT_GT(auditor.total_transactions(), kPatients * 2);

  // Register an administrative user so the workforce control passes.
  auto tenant = data_cloud.rbac().register_tenant("operator").value();
  (void)data_cloud.rbac().add_user(tenant.id, "admin");
  platform::ComplianceReport report = platform::ComplianceAuditor(data_cloud).audit();
  EXPECT_TRUE(report.compliant()) << [&] {
    std::string out;
    for (const auto& f : report.failures()) out += f.control + "; ";
    return out;
  }();

  // The simulation advanced meaningful time across all of this.
  EXPECT_GT(clock->now(), kSecond);
}

}  // namespace
}  // namespace hc
