// Sparse compute plane conformance (see src/analytics/sparse.h).
//
// The contract under test is the same one the dense kernel layer carries:
// every sparse kernel is *bitwise* equal to the dense kernel it shadows
// (applied to to_dense() of the operand), for any worker count in
// {1, 2, 4, 8}. Constructors must canonicalize to one representation per
// logical matrix, and the solver flags (use_sparse) must leave JMF/DELT/MF
// outputs bit-identical to the dense paths. The second-order
// (use_newton_cg) paths are a different algorithm — there the contract is
// byte-reproducibility across reruns and worker counts plus convergence
// gates, not bit-identity with gradient descent.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "analytics/delt.h"
#include "analytics/emr.h"
#include "analytics/jmf.h"
#include "analytics/kernels.h"
#include "analytics/matrix.h"
#include "analytics/mf.h"
#include "analytics/sparse.h"

namespace hc::analytics {
namespace {

bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Dense matrix with an exact-zero fraction of ~(1 - density).
Matrix random_with_density(std::size_t rows, std::size_t cols, double density,
                           Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (rng.uniform(0.0, 1.0) < density) m.data()[i] = rng.uniform(-1.0, 1.0);
  }
  return m;
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------- constructors

TEST(SparseCsr, FromDenseStoresExactlyTheNonzeros) {
  Matrix dense(2, 3);
  dense(0, 1) = 2.5;
  dense(1, 0) = -1.0;
  dense(1, 2) = 4.0;
  sparse::CsrMatrix csr = sparse::CsrMatrix::from_dense(dense);
  EXPECT_EQ(csr.rows(), 2u);
  EXPECT_EQ(csr.cols(), 3u);
  ASSERT_EQ(csr.nnz(), 3u);
  EXPECT_DOUBLE_EQ(csr.density(), 0.5);
  EXPECT_EQ(csr.row_ptr()[0], 0u);
  EXPECT_EQ(csr.row_ptr()[1], 1u);
  EXPECT_EQ(csr.row_ptr()[2], 3u);
  EXPECT_EQ(csr.col_idx()[0], 1u);
  EXPECT_EQ(csr.col_idx()[1], 0u);
  EXPECT_EQ(csr.col_idx()[2], 2u);
  EXPECT_DOUBLE_EQ(csr.values()[0], 2.5);
  EXPECT_TRUE(bit_equal(csr.to_dense(), dense));
  EXPECT_DOUBLE_EQ(csr.norm_squared(), 2.5 * 2.5 + 1.0 + 16.0);
  EXPECT_GT(csr.bytes(), 0u);
}

TEST(SparseCsr, FromTripletsCanonicalizesUnsortedInput) {
  // Shuffled coordinates must land in the same canonical representation as
  // from_dense — byte-comparable via operator==.
  std::vector<sparse::Triplet> triplets = {
      {1, 2, 4.0}, {0, 1, 2.5}, {1, 0, -1.0}};
  sparse::CsrMatrix a = sparse::CsrMatrix::from_triplets(2, 3, triplets);
  Matrix dense(2, 3);
  dense(0, 1) = 2.5;
  dense(1, 0) = -1.0;
  dense(1, 2) = 4.0;
  EXPECT_EQ(a, sparse::CsrMatrix::from_dense(dense));
}

TEST(SparseCsr, FromTripletsSumsDuplicatesInInputOrder) {
  // Duplicate coalescing promises *input order* summation; with three
  // addends the grouping is pinned: ((0.1 + 0.2) + 0.3).
  std::vector<sparse::Triplet> triplets = {
      {0, 0, 0.1}, {1, 1, 7.0}, {0, 0, 0.2}, {0, 0, 0.3}};
  sparse::CsrMatrix a = sparse::CsrMatrix::from_triplets(2, 2, triplets);
  ASSERT_EQ(a.nnz(), 2u);
  double expected = 0.1;
  expected += 0.2;
  expected += 0.3;
  EXPECT_EQ(a.values()[0], expected);  // exact bits, not tolerance
  EXPECT_EQ(a.values()[1], 7.0);
}

TEST(SparseCsr, FromTripletsKeepsZeroSumEntriesStored) {
  std::vector<sparse::Triplet> triplets = {{0, 0, 1.0}, {0, 0, -1.0}};
  sparse::CsrMatrix a = sparse::CsrMatrix::from_triplets(1, 1, triplets);
  EXPECT_EQ(a.nnz(), 1u);  // stored, value 0.0 — kernels skip it
  EXPECT_DOUBLE_EQ(a.values()[0], 0.0);
  EXPECT_DOUBLE_EQ(a.to_dense()(0, 0), 0.0);
}

TEST(SparseCsr, FromTripletsRejectsOutOfRange) {
  EXPECT_THROW(sparse::CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(sparse::CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               std::invalid_argument);
}

TEST(SparseCsr, FromDenseMaskedKeepsPatternWithZeroValues) {
  Matrix values(2, 2);
  values(0, 0) = 3.0;  // observed, nonzero
  Matrix mask(2, 2);
  mask(0, 0) = 1.0;
  mask(1, 1) = 1.0;  // observed, value 0.0 — must stay stored
  sparse::CsrMatrix m = sparse::CsrMatrix::from_dense_masked(values, mask);
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.values()[0], 3.0);
  EXPECT_DOUBLE_EQ(m.values()[1], 0.0);
}

TEST(SparseRoundTrip, RandomizedAcrossSizesAndDensities) {
  // 1..4096 rows, densities from 0.1% to 50% — CSR and CSC round-trips must
  // reproduce the dense input bit-for-bit, and every constructor must agree
  // on the canonical representation.
  const std::size_t shapes[][2] = {{1, 7},    {3, 5},    {64, 48},
                                   {257, 33}, {1024, 16}, {4096, 9}};
  const double densities[] = {0.001, 0.01, 0.1, 0.5};
  Rng rng(4242);
  for (const auto& s : shapes) {
    for (double density : densities) {
      Matrix dense = random_with_density(s[0], s[1], density, rng);
      sparse::CsrMatrix csr = sparse::CsrMatrix::from_dense(dense);
      EXPECT_TRUE(bit_equal(csr.to_dense(), dense))
          << s[0] << "x" << s[1] << " d=" << density;

      sparse::CscMatrix csc = sparse::CscMatrix::from_csr(csr);
      EXPECT_TRUE(bit_equal(csc.to_dense(), dense));
      EXPECT_TRUE(bit_equal(sparse::CscMatrix::from_dense(dense).to_dense(), dense));
      EXPECT_EQ(csc.nnz(), csr.nnz());

      // Rebuild via triplets from the stored walk: must be the identical
      // canonical object.
      std::vector<sparse::Triplet> triplets;
      triplets.reserve(csr.nnz());
      for (std::size_t i = 0; i < csr.rows(); ++i) {
        for (std::uint32_t k = csr.row_ptr()[i]; k < csr.row_ptr()[i + 1]; ++k) {
          triplets.push_back(sparse::Triplet{static_cast<std::uint32_t>(i),
                                             csr.col_idx()[k], csr.values()[k]});
        }
      }
      EXPECT_EQ(csr, sparse::CsrMatrix::from_triplets(s[0], s[1], triplets));
    }
  }
}

TEST(SparseTranspose, DoubleTransposeIsIdentityAndRefillTracksValues) {
  Rng rng(77);
  Matrix dense = random_with_density(37, 29, 0.2, rng);
  sparse::CsrMatrix a = sparse::CsrMatrix::from_dense(dense);
  sparse::CsrMatrix at, att;
  std::vector<std::uint32_t> perm, perm2;
  sparse::build_transpose(a, at, perm);
  EXPECT_TRUE(bit_equal(at.to_dense(), dense.transpose()));
  sparse::build_transpose(at, att, perm2);
  EXPECT_EQ(att, a);

  // Change values (same pattern), refill the transpose through the
  // remembered permutation: identical to rebuilding from scratch.
  for (std::size_t i = 0; i < a.nnz(); ++i) a.mutable_values()[i] *= -1.5;
  sparse::refill_transpose(a, at, perm);
  sparse::CsrMatrix rebuilt;
  std::vector<std::uint32_t> perm3;
  sparse::build_transpose(a, rebuilt, perm3);
  EXPECT_EQ(at, rebuilt);
}

TEST(SparseCsc, RefillFromCsrMatchesRebuildAndValidates) {
  Rng rng(78);
  Matrix dense = random_with_density(23, 31, 0.3, rng);
  sparse::CsrMatrix csr = sparse::CsrMatrix::from_dense(dense);
  sparse::CscMatrix csc = sparse::CscMatrix::from_csr(csr);
  for (std::size_t i = 0; i < csr.nnz(); ++i) csr.mutable_values()[i] += 0.25;
  csc.refill_from_csr(csr);
  sparse::CscMatrix rebuilt = sparse::CscMatrix::from_csr(csr);
  EXPECT_TRUE(bit_equal(csc.to_dense(), rebuilt.to_dense()));

  // A CSC not built by from_csr has no slot map: refill must throw.
  sparse::CscMatrix direct = sparse::CscMatrix::from_dense(dense);
  EXPECT_THROW(direct.refill_from_csr(csr), std::invalid_argument);
  // And an nnz mismatch is rejected.
  sparse::CsrMatrix other = sparse::CsrMatrix::from_dense(
      random_with_density(23, 31, 0.05, rng));
  EXPECT_THROW(csc.refill_from_csr(other), std::invalid_argument);
}

// --------------------------------------------------------------- kernels
//
// Each sparse kernel vs the dense kernel it shadows, on shapes that
// straddle the kRowBlock=16 partition boundary, for 1/2/4/8 workers.

TEST(SparseKernels, MultiplyMatchesDenseBitwise) {
  Rng rng(101);
  const std::size_t shapes[][3] = {{5, 3, 4}, {48, 16, 20}, {33, 40, 17}};
  for (const auto& s : shapes) {
    Matrix a_dense = random_with_density(s[0], s[1], 0.15, rng);
    Matrix b = Matrix::random(s[1], s[2], rng, -1.0, 1.0);
    sparse::CsrMatrix a = sparse::CsrMatrix::from_dense(a_dense);
    Matrix expected;
    kernels::multiply_into(a_dense, b, expected, 1);
    for (std::size_t workers : kWorkerCounts) {
      Matrix out;
      sparse::multiply_into(a, b, out, workers);
      EXPECT_TRUE(bit_equal(expected, out))
          << s[0] << "x" << s[1] << " workers=" << workers;
    }
  }
}

TEST(SparseKernels, TransposeMultiplyMatchesDenseBitwise) {
  Rng rng(102);
  const std::size_t shapes[][3] = {{9, 7, 5}, {41, 33, 18}, {64, 17, 10}};
  for (const auto& s : shapes) {
    Matrix a_dense = random_with_density(s[0], s[1], 0.2, rng);
    Matrix b = Matrix::random(s[0], s[2], rng, -1.0, 1.0);
    sparse::CscMatrix a =
        sparse::CscMatrix::from_csr(sparse::CsrMatrix::from_dense(a_dense));
    Matrix expected;
    kernels::transpose_multiply_into(a_dense, b, expected, 1);
    for (std::size_t workers : kWorkerCounts) {
      Matrix out;
      sparse::transpose_multiply_into(a, b, out, workers);
      EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
    }
  }
}

TEST(SparseKernels, ResidualMatchesDenseBitwise) {
  Rng rng(103);
  Matrix r_dense = random_with_density(35, 27, 0.1, rng);
  Matrix u = Matrix::random(35, 6, rng, -1.0, 1.0);
  Matrix v = Matrix::random(27, 6, rng, -1.0, 1.0);
  sparse::CsrMatrix r = sparse::CsrMatrix::from_dense(r_dense);
  Matrix expected;
  kernels::residual_into(r_dense, u, v, expected, 1);
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    sparse::residual_into(r, u, v, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
  }
}

TEST(SparseKernels, MaskedResidualMatchesDenseBitwise) {
  Rng rng(104);
  Matrix observed = random_with_density(29, 22, 0.4, rng);
  Matrix mask(29, 22);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = rng.uniform_int(0, 3) == 0 ? 0.0 : 1.0;
  }
  Matrix u = Matrix::random(29, 6, rng, -1.0, 1.0);
  Matrix v = Matrix::random(22, 6, rng, -1.0, 1.0);
  sparse::CsrMatrix pattern = sparse::CsrMatrix::from_dense_masked(observed, mask);
  Matrix expected;
  kernels::masked_residual_into(observed, mask, u, v, expected, 1);
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    sparse::masked_residual_into(pattern, u, v, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;

    sparse::CsrMatrix out_sparse;
    sparse::masked_residual_values(pattern, u, v, out_sparse, workers);
    EXPECT_TRUE(bit_equal(expected, out_sparse.to_dense())) << "workers=" << workers;
    // Rule 3: a second call reuses the pattern — the value array must not
    // reallocate.
    const double* before = out_sparse.values();
    sparse::masked_residual_values(pattern, u, v, out_sparse, workers);
    EXPECT_EQ(out_sparse.values(), before);
  }
}

TEST(SparseKernels, SyrkResidualMatchesDenseBitwise) {
  Rng rng(105);
  Matrix s_dense = random_with_density(44, 44, 0.15, rng);
  for (std::size_t i = 0; i < 44; ++i) {
    for (std::size_t j = i + 1; j < 44; ++j) s_dense(j, i) = s_dense(i, j);
  }
  Matrix f = Matrix::random(44, 7, rng, -1.0, 1.0);
  sparse::CsrMatrix s = sparse::CsrMatrix::from_dense(s_dense);
  Matrix expected;
  kernels::syrk_residual_into(s_dense, f, expected, 1);
  for (std::size_t workers : kWorkerCounts) {
    Matrix out;
    sparse::syrk_residual_into(s, f, out, workers);
    EXPECT_TRUE(bit_equal(expected, out)) << "workers=" << workers;
  }
}

TEST(SparseKernels, FusedSubMultiplyAddMatchesDenseBitwise) {
  Rng rng(106);
  std::vector<Matrix> dense_sources;
  std::vector<sparse::CsrMatrix> sources;
  for (int i = 0; i < 3; ++i) {
    dense_sources.push_back(random_with_density(33, 33, 0.2, rng));
    sources.push_back(sparse::CsrMatrix::from_dense(dense_sources.back()));
  }
  Matrix m = Matrix::random(33, 33, rng, -1.0, 1.0);
  Matrix f = Matrix::random(33, 7, rng, -1.0, 1.0);
  Matrix base = Matrix::random(33, 7, rng, -1.0, 1.0);
  std::vector<double> factors = {0.37, -0.12, 0.81};
  Matrix expected = base;
  Matrix scratch;
  kernels::fused_sub_multiply_add_into(expected, dense_sources, m, f, factors,
                                       scratch, 1);
  for (std::size_t workers : kWorkerCounts) {
    Matrix grad = base;
    Matrix sparse_scratch;
    sparse::fused_sub_multiply_add_into(grad, sources, m, f, factors,
                                        sparse_scratch, workers);
    EXPECT_TRUE(bit_equal(expected, grad)) << "workers=" << workers;
  }
}

TEST(SparseKernels, InnerProductAndFrobeniusDistanceMatchDense) {
  Rng rng(107);
  Matrix a_dense = random_with_density(31, 24, 0.2, rng);
  Matrix u = Matrix::random(31, 5, rng, -1.0, 1.0);
  Matrix v = Matrix::random(24, 5, rng, -1.0, 1.0);
  Matrix m = Matrix::random(31, 24, rng, -1.0, 1.0);
  sparse::CsrMatrix a = sparse::CsrMatrix::from_dense(a_dense);

  // Reference for <A, U V^T>: the same ascending (row, col, k) walk over
  // the surviving nonzeros.
  double expected = 0.0;
  for (std::size_t i = 0; i < 31; ++i) {
    for (std::size_t j = 0; j < 24; ++j) {
      if (a_dense(i, j) == 0.0) continue;
      double dot = 0.0;
      for (std::size_t k = 0; k < 5; ++k) dot += u(i, k) * v(j, k);
      expected += a_dense(i, j) * dot;
    }
  }
  EXPECT_EQ(sparse::inner_product_uv(a, u, v), expected);
  EXPECT_EQ(sparse::frobenius_distance(a, m), a_dense.frobenius_distance(m));
}

TEST(SparseKernels, MaskedGramApplyMatchesHandLoop) {
  Rng rng(108);
  Matrix pat_dense = random_with_density(26, 19, 0.3, rng);
  sparse::CsrMatrix pattern = sparse::CsrMatrix::from_dense(pat_dense);
  sparse::CscMatrix pattern_csc = sparse::CscMatrix::from_csr(pattern);
  Matrix g = Matrix::random(19, 6, rng, -1.0, 1.0);
  Matrix gu = Matrix::random(26, 6, rng, -1.0, 1.0);
  Matrix p = Matrix::random(26, 6, rng, -1.0, 1.0);
  Matrix pv = Matrix::random(19, 6, rng, -1.0, 1.0);

  // U side: out.row(i) = sum over stored j of (p_i . g_j) g_j.
  Matrix expected_u(26, 6);
  for (std::size_t i = 0; i < 26; ++i) {
    for (std::size_t j = 0; j < 19; ++j) {
      if (pat_dense(i, j) == 0.0) continue;
      double dot = 0.0;
      for (std::size_t k = 0; k < 6; ++k) dot += p(i, k) * g(j, k);
      for (std::size_t k = 0; k < 6; ++k) expected_u(i, k) += dot * g(j, k);
    }
  }
  // V side off the CSC: out.row(j) = sum over stored i of (pv_j . gu_i) gu_i.
  Matrix expected_v(19, 6);
  for (std::size_t j = 0; j < 19; ++j) {
    for (std::size_t i = 0; i < 26; ++i) {
      if (pat_dense(i, j) == 0.0) continue;
      double dot = 0.0;
      for (std::size_t k = 0; k < 6; ++k) dot += pv(j, k) * gu(i, k);
      for (std::size_t k = 0; k < 6; ++k) expected_v(j, k) += dot * gu(i, k);
    }
  }
  for (std::size_t workers : kWorkerCounts) {
    Matrix out_u, out_v;
    sparse::masked_gram_apply(pattern, g, p, out_u, workers);
    sparse::masked_gram_apply(pattern_csc, gu, pv, out_v, workers);
    EXPECT_TRUE(bit_equal(expected_u, out_u)) << "workers=" << workers;
    EXPECT_TRUE(bit_equal(expected_v, out_v)) << "workers=" << workers;
  }
}

// ------------------------------------------------- solver flag integration

TEST(SparseMf, FirstOrderBitIdenticalToDenseAcrossWorkers) {
  Rng setup(90);
  Matrix u_true = Matrix::random(33, 4, setup, 0.0, 1.0);
  Matrix v_true = Matrix::random(21, 4, setup, 0.0, 1.0);
  Matrix observed = u_true.multiply_transposed(v_true);
  Matrix mask(33, 21);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = setup.uniform_int(0, 3) == 0 ? 0.0 : 1.0;
  }
  MfConfig config;
  config.rank = 4;
  config.epochs = 60;
  Rng dense_rng(7);
  MfModel dense = factorize(observed, mask, config, dense_rng);
  for (std::size_t workers : kWorkerCounts) {
    MfConfig c = config;
    c.use_sparse = true;
    c.workers = workers;
    Rng rng(7);
    MfModel model = factorize(observed, mask, c, rng);
    EXPECT_TRUE(bit_equal(dense.u, model.u)) << "workers=" << workers;
    EXPECT_TRUE(bit_equal(dense.v, model.v)) << "workers=" << workers;
  }
}

TEST(SparseJmf, FirstOrderBitIdenticalToDenseAcrossWorkers) {
  Rng setup(84);
  WorkloadConfig wc;
  wc.drugs = 60;
  wc.diseases = 40;
  wc.latent_rank = 5;
  DrugDiseaseWorkload workload = make_drug_disease_workload(wc, setup);
  auto run = [&](bool use_sparse, std::size_t workers) {
    Rng rng(12345);
    JmfConfig config;
    config.rank = 8;
    config.epochs = 40;
    config.use_sparse = use_sparse;
    config.workers = workers;
    return joint_matrix_factorization(workload.observed, workload.drug_similarities,
                                      workload.disease_similarities, config, rng);
  };
  auto dense = run(false, 1);
  for (std::size_t workers : kWorkerCounts) {
    auto sparse_result = run(true, workers);
    EXPECT_TRUE(bit_equal(dense.scores, sparse_result.scores))
        << "workers=" << workers;
    EXPECT_EQ(dense.objective_history, sparse_result.objective_history)
        << "workers=" << workers;
    EXPECT_EQ(dense.drug_source_weights, sparse_result.drug_source_weights)
        << "workers=" << workers;
    EXPECT_EQ(dense.disease_source_weights, sparse_result.disease_source_weights)
        << "workers=" << workers;
  }
}

TEST(SparseDelt, BetaSweepBitIdenticalToDense) {
  Rng rng(85);
  EmrConfig ec;
  ec.patients = 300;
  ec.drugs = 40;
  ec.planted_drugs = 4;
  ec.confounded_drugs = 5;
  EmrDataset dataset = make_emr_dataset(ec, rng);
  DeltModel dense = fit_delt(dataset, DeltConfig{});
  for (std::size_t workers : kWorkerCounts) {
    DeltConfig config;
    config.use_sparse = true;
    config.workers = workers;
    DeltModel model = fit_delt(dataset, config);
    EXPECT_EQ(dense.drug_effects, model.drug_effects) << "workers=" << workers;
    EXPECT_EQ(dense.patient_baselines, model.patient_baselines);
    EXPECT_EQ(dense.patient_drifts, model.patient_drifts);
    EXPECT_EQ(dense.objective_history, model.objective_history);
  }
}

TEST(SparseNewton, JmfByteReproducibleAndConvergesFaster) {
  Rng setup(84);
  WorkloadConfig wc;
  wc.drugs = 60;
  wc.diseases = 40;
  wc.latent_rank = 5;
  DrugDiseaseWorkload workload = make_drug_disease_workload(wc, setup);

  auto run_dense = [&](int epochs) {
    Rng rng(7);
    JmfConfig config;
    config.rank = 8;
    config.epochs = epochs;
    return joint_matrix_factorization(workload.observed, workload.drug_similarities,
                                      workload.disease_similarities, config, rng);
  };
  auto run_newton = [&](int epochs, std::size_t workers) {
    Rng rng(7);
    JmfConfig config;
    config.rank = 8;
    config.epochs = epochs;
    config.use_newton_cg = true;
    config.workers = workers;
    return joint_matrix_factorization(workload.observed, workload.drug_similarities,
                                      workload.disease_similarities, config, rng);
  };

  auto dense = run_dense(80);
  auto newton = run_newton(8, 1);  // 10x fewer epochs
  ASSERT_FALSE(newton.objective_history.empty());
  EXPECT_LT(newton.objective_history.back(), newton.objective_history.front());
  // The epochs-to-tolerance claim (locked harder in BENCH_sparse_analytics):
  // 8 Newton epochs reach at least the objective 80 first-order epochs reach.
  EXPECT_LE(newton.objective_history.back(),
            dense.objective_history.back() * (1.0 + 1e-9));

  // Byte-reproducible across worker counts and reruns.
  for (std::size_t workers : kWorkerCounts) {
    auto again = run_newton(8, workers);
    EXPECT_TRUE(bit_equal(newton.factor_u, again.factor_u)) << "workers=" << workers;
    EXPECT_TRUE(bit_equal(newton.factor_v, again.factor_v)) << "workers=" << workers;
    EXPECT_EQ(newton.objective_history, again.objective_history)
        << "workers=" << workers;
    EXPECT_EQ(newton.drug_source_weights, again.drug_source_weights);
  }
}

TEST(SparseNewton, MfByteReproducibleAndObjectiveDecreases) {
  Rng setup(91);
  Matrix u_true = Matrix::random(40, 4, setup, 0.0, 1.0);
  Matrix v_true = Matrix::random(30, 4, setup, 0.0, 1.0);
  Matrix observed = u_true.multiply_transposed(v_true);
  Matrix mask(40, 30);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask.data()[i] = setup.uniform_int(0, 3) == 0 ? 0.0 : 1.0;
  }
  auto run = [&](std::size_t workers) {
    MfConfig config;
    config.rank = 4;
    config.epochs = 10;
    config.use_newton_cg = true;
    config.workers = workers;
    Rng rng(7);
    return factorize(observed, mask, config, rng);
  };
  MfModel base = run(1);
  ASSERT_GE(base.objective_history.size(), 2u);
  EXPECT_LT(base.objective_history.back(), base.objective_history.front());
  for (std::size_t workers : {2u, 4u, 8u}) {
    MfModel again = run(workers);
    EXPECT_TRUE(bit_equal(base.u, again.u)) << "workers=" << workers;
    EXPECT_TRUE(bit_equal(base.v, again.v)) << "workers=" << workers;
    EXPECT_EQ(base.objective_history, again.objective_history);
  }
}

TEST(SparseNewton, DeltSingleSolveMatchesCoordinateDescentSse) {
  Rng rng(85);
  EmrConfig ec;
  ec.patients = 300;
  ec.drugs = 40;
  ec.planted_drugs = 4;
  ec.confounded_drugs = 5;
  EmrDataset dataset = make_emr_dataset(ec, rng);

  DeltModel cd = fit_delt(dataset, DeltConfig{});  // 25 alternating sweeps
  auto run_newton = [&](std::size_t workers) {
    DeltConfig config;
    config.use_newton_cg = true;
    config.workers = workers;
    return fit_delt(dataset, config);
  };
  DeltModel newton = run_newton(1);
  // One solve, one history entry — 25x fewer "epochs" than the sweep path.
  ASSERT_EQ(newton.objective_history.size(), 1u);
  // The joint CG solve reaches (or beats) the coordinate-descent SSE.
  EXPECT_LE(newton.objective_history.back(),
            cd.objective_history.back() * (1.0 + 1e-6));
  // And recovers the planted drugs just as well.
  auto newton_metrics = score_recovery(newton.drug_effects, dataset);
  auto cd_metrics = score_recovery(cd.drug_effects, dataset);
  EXPECT_GE(newton_metrics.auc, cd_metrics.auc - 1e-9);

  for (std::size_t workers : {2u, 4u, 8u}) {
    DeltModel again = run_newton(workers);
    EXPECT_EQ(newton.drug_effects, again.drug_effects) << "workers=" << workers;
    EXPECT_EQ(newton.patient_baselines, again.patient_baselines);
    EXPECT_EQ(newton.patient_drifts, again.patient_drifts);
    EXPECT_EQ(newton.objective_history, again.objective_history);
  }
}

TEST(SparseMemory, SparsePlaneShrinksPeakWorkspace) {
  // A 5%-dense observed matrix: the sparse plane's residual lives on the
  // nnz pattern instead of rows x cols, so peak workspace must drop.
  Rng setup(93);
  Matrix observed(200, 150);
  Matrix mask(200, 150);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (setup.uniform(0.0, 1.0) < 0.05) {
      mask.data()[i] = 1.0;
      observed.data()[i] = setup.uniform(0.0, 1.0);
    }
  }
  MfConfig config;
  config.rank = 8;
  config.epochs = 5;
  Rng r1(7), r2(7);
  MfModel dense = factorize(observed, mask, config, r1);
  MfConfig sparse_config = config;
  sparse_config.use_sparse = true;
  MfModel sparse_model = factorize(observed, mask, sparse_config, r2);
  ASSERT_GT(dense.peak_workspace_bytes, 0u);
  ASSERT_GT(sparse_model.peak_workspace_bytes, 0u);
  EXPECT_LT(sparse_model.peak_workspace_bytes, dense.peak_workspace_bytes);
  EXPECT_TRUE(bit_equal(dense.u, sparse_model.u));
  EXPECT_TRUE(bit_equal(dense.v, sparse_model.v));
}

TEST(SparseMemory, JmfReportsWorkspaceAndHonorsMaterializeScores) {
  Rng setup(84);
  WorkloadConfig wc;
  wc.drugs = 60;
  wc.diseases = 40;
  wc.latent_rank = 5;
  DrugDiseaseWorkload workload = make_drug_disease_workload(wc, setup);
  JmfConfig config;
  config.rank = 8;
  config.epochs = 4;
  config.use_newton_cg = true;
  config.materialize_scores = false;
  Rng rng(7);
  auto result = joint_matrix_factorization(workload.observed,
                                           workload.drug_similarities,
                                           workload.disease_similarities, config, rng);
  EXPECT_EQ(result.scores.size(), 0u);  // skipped: the one dense n x m output
  EXPECT_EQ(result.factor_u.rows(), 60u);
  EXPECT_EQ(result.factor_v.rows(), 40u);
  EXPECT_GT(result.peak_workspace_bytes, 0u);
}

}  // namespace
}  // namespace hc::analytics
