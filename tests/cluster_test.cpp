// Cluster scale-out test wall (`ctest -L scaleout`).
//
// Three layers of evidence that sharding changes nothing but speed:
//   1. Hash-ring property tests (randomized): load balance within a
//      pinned bound across 1..64 hosts x 1e5 keys, and minimal
//      disruption — a host join moves keys only *to* the joiner and only
//      the owed fraction; a leave remaps exactly the leaver's keys.
//   2. ShardedLake semantics: sealed replication, crash survival through
//      the replica chain, rebalance convergence, placement-invariant
//      content digests.
//   3. The differential wall: the same 50-upload mixed ingestion queue
//      (tests/parallel_ingestion_test.cpp's workload) run on 1/2/4/8
//      shard-hosts — and against the historical single-lake path —
//      produces byte-identical aggregate metrics, the same canonical
//      lake digest, the same pseudonym set, and identical anchored
//      provenance Merkle roots.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analytics/emr.h"
#include "blockchain/contracts.h"
#include "cluster/cluster.h"
#include "crypto/sha256.h"
#include "exec/executor.h"
#include "fhir/synthetic.h"
#include "ingestion/ingestion.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "provenance/provenance.h"

namespace hc::cluster {
namespace {

std::vector<std::string> random_keys(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back("key-" + std::to_string(rng.uniform_int(0, 1'000'000'000)) +
                   "-" + std::to_string(i));
  }
  return keys;
}

HashRing make_ring(std::size_t hosts, std::size_t vnodes = 128) {
  HashRing ring(vnodes);
  for (std::size_t i = 0; i < hosts; ++i) {
    EXPECT_TRUE(ring.add_host("shard-" + std::to_string(i)).is_ok());
  }
  return ring;
}

// --- ring properties -------------------------------------------------------

TEST(HashRingProperty, LoadBalanceWithinPinnedBoundAcrossHostCounts) {
  // 1e5 random keys; host counts spanning 1..64. With 128 vnodes per host
  // the max/mean per-host load stays within the pinned envelope — the
  // bound bench_scaleout's near-linear speedup claim rests on.
  const std::vector<std::string> keys = random_keys(100'000, 0xbeef);
  for (std::size_t hosts : {1u, 2u, 3u, 4u, 8u, 16u, 32u, 64u}) {
    HashRing ring = make_ring(hosts);
    auto load = ring.load_of(keys);
    ASSERT_EQ(load.size(), hosts);
    std::size_t total = 0, max_load = 0;
    std::size_t min_load = keys.size();
    for (const auto& [host, count] : load) {
      total += count;
      max_load = std::max(max_load, count);
      min_load = std::min(min_load, count);
    }
    EXPECT_EQ(total, keys.size()) << "every key has exactly one owner";
    const double mean =
        static_cast<double>(keys.size()) / static_cast<double>(hosts);
    EXPECT_LE(static_cast<double>(max_load), 1.35 * mean)
        << hosts << " hosts: max load " << max_load << " vs mean " << mean;
    EXPECT_GE(static_cast<double>(min_load), 0.65 * mean)
        << hosts << " hosts: min load " << min_load << " vs mean " << mean;
  }
}

TEST(HashRingProperty, JoinMovesKeysOnlyToTheJoinerAndOnlyTheOwedShare) {
  const std::vector<std::string> keys = random_keys(100'000, 0xcafe);
  for (std::size_t hosts : {1u, 2u, 4u, 8u, 16u, 32u}) {
    HashRing ring = make_ring(hosts);
    std::map<std::string, std::string> before;
    for (const auto& key : keys) before[key] = *ring.owner(key);

    const std::string joiner = "shard-" + std::to_string(hosts);
    ASSERT_TRUE(ring.add_host(joiner).is_ok());

    std::size_t moved = 0;
    for (const auto& key : keys) {
      const std::string& now = *ring.owner(key);
      if (now != before[key]) {
        ++moved;
        EXPECT_EQ(now, joiner)
            << "a key may only move to the joining host, never between "
               "incumbents";
      }
    }
    // Fair share is 1/(hosts+1); vnode variance is bounded by the load-
    // balance envelope above, so 1.5x fair share is a safe pin.
    const double fair =
        static_cast<double>(keys.size()) / static_cast<double>(hosts + 1);
    EXPECT_LE(static_cast<double>(moved), 1.5 * fair)
        << hosts << "->" << hosts + 1 << " hosts moved " << moved;
    EXPECT_GT(moved, 0u) << "the joiner must take over a nonempty arc";
  }
}

TEST(HashRingProperty, LeaveRemapsExactlyTheLeaversKeys) {
  const std::vector<std::string> keys = random_keys(100'000, 0xd00d);
  for (std::size_t hosts : {2u, 4u, 8u, 16u}) {
    HashRing ring = make_ring(hosts);
    std::map<std::string, std::string> before;
    for (const auto& key : keys) before[key] = *ring.owner(key);

    const std::string leaver = "shard-1";
    ASSERT_TRUE(ring.remove_host(leaver).is_ok());

    for (const auto& key : keys) {
      const std::string& now = *ring.owner(key);
      if (before[key] == leaver) {
        EXPECT_NE(now, leaver) << "orphaned keys must be adopted";
      } else {
        EXPECT_EQ(now, before[key])
            << "keys not owned by the leaver must keep their owner exactly";
      }
    }
  }
}

TEST(HashRingProperty, PlacementIsInsertionOrderIndependent) {
  // Same host set added in different orders -> identical owners for every
  // key (points order by (hash, host), nothing remembers arrival order).
  const std::vector<std::string> keys = random_keys(10'000, 0xfeed);
  HashRing forward(64);
  HashRing reverse(64);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(forward.add_host("shard-" + std::to_string(i)).is_ok());
  }
  for (int i = 7; i >= 0; --i) {
    ASSERT_TRUE(reverse.add_host("shard-" + std::to_string(i)).is_ok());
  }
  for (const auto& key : keys) {
    EXPECT_EQ(*forward.owner(key), *reverse.owner(key));
  }
}

TEST(HashRingProperty, ReplicaSetsAreDistinctOwnerFirstAndCapped) {
  HashRing ring = make_ring(4);
  const std::vector<std::string> keys = random_keys(2'000, 0xace);
  for (const auto& key : keys) {
    auto replicas = ring.owners(key, 3);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], *ring.owner(key));
    std::set<std::string> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size());
  }
  // n capped at the host count; empty ring -> no owner.
  EXPECT_EQ(ring.owners("k", 16).size(), 4u);
  HashRing empty(8);
  EXPECT_EQ(empty.owner("k"), nullptr);
  EXPECT_TRUE(empty.owners("k", 2).empty());
}

// --- cluster + sharded lake ------------------------------------------------

struct LakeFixture {
  ClockPtr clock = make_clock();
  LogPtr log = make_log(clock);
  crypto::KeyManagementService kms{"tenant-a", Rng(71), log};
  crypto::KeyId key = kms.create_symmetric_key("platform");

  ClusterConfig config(std::size_t hosts, std::size_t replication = 2) {
    ClusterConfig c;
    c.hosts = hosts;
    c.replication = replication;
    return c;
  }
};

TEST(Cluster, TransferCostIsAPureFunctionOfBytes) {
  LakeFixture fx;
  Cluster cluster(fx.config(4), fx.clock);
  SimTime a = cluster.charge_transfer("gateway", "shard-0", 4096);
  SimTime b = cluster.charge_transfer("gateway", "shard-3", 4096);
  EXPECT_EQ(a, b) << "same bytes, same cost — independent of the endpoint";
  EXPECT_EQ(cluster.charge_transfer("shard-1", "shard-1", 1 << 20), 0)
      << "loopback is free";
  EXPECT_EQ(cluster.total_transfers(), 2u);
  EXPECT_EQ(cluster.total_bytes(), 8192u);
  EXPECT_EQ(fx.clock->now(), a + b);
  // Lane accounting defers the clock.
  SimTime lane = 0;
  cluster.charge_transfer("gateway", "shard-2", 4096, &lane);
  EXPECT_EQ(lane, a);
}

TEST(Cluster, CrashRefusesLastHostAndTracksLiveness) {
  LakeFixture fx;
  Cluster cluster(fx.config(2), fx.clock);
  EXPECT_TRUE(cluster.host_up("shard-0"));
  EXPECT_TRUE(cluster.crash_host("shard-0").is_ok());
  EXPECT_FALSE(cluster.host_up("shard-0"));
  EXPECT_EQ(cluster.crash_host("shard-1").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.crash_host("shard-9").code(), StatusCode::kNotFound);
  // add_host never reuses a crashed host's name.
  auto joined = cluster.add_host();
  ASSERT_TRUE(joined.is_ok());
  EXPECT_EQ(*joined, "shard-2");
}

TEST(ShardedLake, PutReplicatesSealedCopiesAndGetSurvivesACrash) {
  LakeFixture fx;
  Cluster cluster(fx.config(4, 2), fx.clock);
  ShardedLake lake(cluster, fx.kms, "platform", Rng(72));

  std::vector<std::string> refs;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 40; ++i) {
    Bytes payload = to_bytes("record-" + std::to_string(i));
    std::string routing = hex_encode(crypto::sha256(payload));
    auto ref = lake.put(payload, fx.key, routing);
    ASSERT_TRUE(ref.is_ok()) << ref.status().to_string();
    refs.push_back(*ref);
    payloads.push_back(std::move(payload));
  }
  EXPECT_EQ(lake.object_count(), 40u);
  EXPECT_EQ(lake.copy_count(), 80u) << "replication=2 -> two copies each";

  auto digest_before = lake.content_digest();
  ASSERT_TRUE(digest_before.is_ok());

  // Crash one host: every object stays readable through its replica chain.
  ASSERT_TRUE(cluster.crash_host("shard-1").is_ok());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto back = lake.get(refs[i]);
    ASSERT_TRUE(back.is_ok()) << refs[i] << " lost after a single crash";
    EXPECT_EQ(*back, payloads[i]);
  }

  // Rebalance restores full replication on the survivors, byte-identically.
  auto report = lake.rebalance();
  EXPECT_EQ(report.lost_objects, 0u);
  EXPECT_GT(report.moved_copies, 0u);
  EXPECT_EQ(lake.copy_count(), 80u);
  auto digest_after = lake.content_digest();
  ASSERT_TRUE(digest_after.is_ok());
  EXPECT_EQ(*digest_after, *digest_before)
      << "crash + rebalance must not change logical contents";

  // Every object's copies now sit exactly on its current replica set.
  for (std::size_t i = 0; i < refs.size(); ++i) {
    auto where = lake.locate(refs[i]);
    ASSERT_TRUE(where.is_ok());
    auto want = cluster.owners(hex_encode(crypto::sha256(payloads[i])));
    EXPECT_EQ(*where, want[0]) << "primary re-seated on the ring owner";
  }
}

TEST(ShardedLake, JoinThenRebalanceMovesOnlyTheOwedShare) {
  LakeFixture fx;
  Cluster cluster(fx.config(4, 2), fx.clock);
  ShardedLake lake(cluster, fx.kms, "platform", Rng(72));
  for (int i = 0; i < 64; ++i) {
    Bytes payload = to_bytes("join-record-" + std::to_string(i));
    ASSERT_TRUE(
        lake.put(payload, fx.key, hex_encode(crypto::sha256(payload))).is_ok());
  }
  auto digest_before = lake.content_digest();
  ASSERT_TRUE(digest_before.is_ok());

  ASSERT_TRUE(cluster.add_host().is_ok());
  auto report = lake.rebalance();
  EXPECT_EQ(report.lost_objects, 0u);
  // 64 objects x 2 copies = 128; the joiner's fair share is 1/5 of them.
  // Everything beyond the owed arcs must stay put.
  EXPECT_LE(report.moved_copies, 2 * 128 / 5)
      << "join rebalance moved more than ~the owed fraction";
  EXPECT_EQ(report.moved_copies, report.dropped_copies)
      << "every copy installed on the joiner retires one stale copy";
  EXPECT_EQ(lake.copy_count(), 128u);
  auto digest_after = lake.content_digest();
  ASSERT_TRUE(digest_after.is_ok());
  EXPECT_EQ(*digest_after, *digest_before);
}

// --- scatter-gather --------------------------------------------------------

TEST(ScatterGather, CohortStatsAreBitIdenticalAcrossHostCountsAndLanes) {
  // One EMR cohort; aggregate it on 1, 2, 4, and 8 shard-hosts, with and
  // without the affinity executor. Fixed-point accumulators make the
  // reduction associative, so every grouping lands on the same bits.
  analytics::EmrConfig config;
  config.patients = 400;
  Rng rng(7);
  analytics::EmrDataset dataset = analytics::make_emr_dataset(config, rng);

  std::map<std::string, const analytics::EmrPatient*> by_pseudonym;
  std::vector<std::string> keys;
  for (const auto& patient : dataset.patients) {
    by_pseudonym[patient.pseudonym] = &patient;
    keys.push_back(patient.pseudonym);
  }

  // Ground truth: a flat serial pass.
  std::vector<const analytics::EmrPatient*> all;
  for (const auto& patient : dataset.patients) all.push_back(&patient);
  const analytics::CohortStats expected = analytics::cohort_stats(all);
  ASSERT_GT(expected.measurements, 0);

  auto map_fn = [&](const std::string&, const std::vector<std::string>& shard_keys) {
    std::vector<const analytics::EmrPatient*> shard;
    for (const auto& key : shard_keys) shard.push_back(by_pseudonym.at(key));
    return analytics::cohort_stats(shard);
  };
  auto reduce_fn = [](analytics::CohortStats& into,
                      const analytics::CohortStats& from) { into.merge(from); };

  for (std::size_t hosts : {1u, 2u, 4u, 8u}) {
    LakeFixture fx;
    Cluster cluster(fx.config(hosts), fx.clock);
    auto inline_stats = cluster.scatter_gather<analytics::CohortStats>(
        keys, /*result_bytes_per_host=*/64, map_fn, reduce_fn);
    ASSERT_TRUE(inline_stats.is_ok());
    EXPECT_EQ(*inline_stats, expected) << hosts << " hosts, inline";

    exec::AffinityExecutor affinity(hosts);
    auto affine_stats = cluster.scatter_gather<analytics::CohortStats>(
        keys, 64, map_fn, reduce_fn, &affinity);
    affinity.shutdown();
    ASSERT_TRUE(affine_stats.is_ok());
    EXPECT_EQ(*affine_stats, expected) << hosts << " hosts, affinity lanes";
  }
}

// --- the ingestion differential wall ---------------------------------------

// The parallel_ingestion_test stack, cluster edition: same seeds (rng 70,
// kms 71, lake rng 72), same three-peer ledger, plus a Cluster and
// ShardedLake the store stage routes through, and a BatchAnchorer so the
// provenance Merkle roots can be compared across host counts.
struct ClusterStack {
  ClockPtr clock = make_clock();
  LogPtr log = make_log(clock);
  Rng rng{70};
  crypto::KeyManagementService kms{"tenant-a", Rng(71), log};
  storage::StagingArea staging;
  storage::MessageQueue queue;
  storage::StatusTracker tracker;
  storage::DataLake lake{kms, "platform", Rng(73)};  // unused in cluster mode
  storage::MetadataStore metadata;
  privacy::AnonymizationVerificationService verifier{
      privacy::FieldSchema::standard_patient(), 0.99, 1};
  privacy::ReidentificationMap reid_map;
  obs::MetricsPtr metrics = obs::make_metrics();
  std::unique_ptr<blockchain::PermissionedLedger> ledger;
  std::unique_ptr<Cluster> cluster;            // null in single-lake mode
  std::unique_ptr<ShardedLake> cluster_lake;   // null in single-lake mode
  std::unique_ptr<provenance::BatchAnchorer> anchorer;
  crypto::KeyId lake_key;
  crypto::KeyId client_key;
  std::unique_ptr<ingestion::IngestionService> service;

  /// hosts == 0 stands up the historical single-lake path (no cluster).
  explicit ClusterStack(std::size_t hosts) {
    blockchain::LedgerConfig config;
    config.peers = {"peer-a", "peer-b", "peer-c"};
    ledger = std::make_unique<blockchain::PermissionedLedger>(config, clock, log);
    EXPECT_TRUE(blockchain::register_hcls_contracts(*ledger).is_ok());
    EXPECT_TRUE(provenance::BatchAnchorer::register_contract(*ledger).is_ok());
    provenance::AnchorerConfig anchor_config;
    anchor_config.costs = provenance::ConsensusCostModel{};
    anchorer = std::make_unique<provenance::BatchAnchorer>(*ledger, clock,
                                                           anchor_config);
    lake_key = kms.create_symmetric_key("platform");

    ingestion::IngestionDeps deps;
    deps.clock = clock;
    deps.log = log;
    deps.kms = &kms;
    deps.staging = &staging;
    deps.queue = &queue;
    deps.tracker = &tracker;
    deps.lake = &lake;
    deps.metadata = &metadata;
    deps.ledger = ledger.get();
    deps.verifier = &verifier;
    deps.reid_map = &reid_map;
    deps.metrics = metrics;
    deps.anchorer = anchorer.get();
    if (hosts > 0) {
      ClusterConfig cluster_config;
      cluster_config.hosts = hosts;
      cluster_config.replication = 2;
      // No metrics bound to the cluster: the registry then holds exactly
      // the ingestion-plane metrics, which must be host-count-invariant.
      cluster = std::make_unique<Cluster>(cluster_config, clock);
      cluster_lake =
          std::make_unique<ShardedLake>(*cluster, kms, "platform", Rng(72));
      deps.cluster = cluster.get();
      deps.cluster_lake = cluster_lake.get();
    }
    service = std::make_unique<ingestion::IngestionService>(
        deps, lake_key, to_bytes("pseudo-key"), "platform");

    client_key = kms.create_keypair("clinic-a");
    EXPECT_TRUE(kms.authorize(client_key, "clinic-a", "platform").is_ok());
  }

  void grant_consent(const std::string& patient_id) {
    ASSERT_TRUE(ledger
                    ->submit_and_commit("consent",
                                        {{"action", "grant"},
                                         {"patient", patient_id},
                                         {"group", "study-a"}},
                                        "healthcare-provider")
                    .is_ok());
  }

  void upload(const fhir::Bundle& bundle) {
    auto pub = kms.public_key(client_key);
    ASSERT_TRUE(pub.is_ok());
    auto envelope = crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng);
    ASSERT_TRUE(
        service->upload(envelope, "clinic-a", "study-a", client_key).is_ok());
  }

  /// parallel_ingestion_test's fixed mixed workload: indices 0-4 malware
  /// (consented), 5-7 unconsented, 8-49 clean -> 42 stored, 8 rejected.
  void enqueue_mixed(std::size_t n = 50) {
    for (std::size_t i = 0; i < n; ++i) {
      fhir::Bundle bundle =
          fhir::make_synthetic_bundle(rng, "bundle-t" + std::to_string(i), i);
      const std::string patient_id =
          std::get<fhir::Patient>(bundle.resources[0]).id;
      if (i < 5 || i >= 8) grant_consent(patient_id);
      if (i < 5) {
        std::get<fhir::Patient>(bundle.resources[0]).address =
            to_string(ingestion::test_malware_payload());
      }
      upload(bundle);
    }
  }

  std::set<std::string> study_pseudonyms() const {
    std::set<std::string> pseudonyms;
    for (const auto& md : metadata.by_group("study-a")) {
      pseudonyms.insert(md.pseudonym);
    }
    return pseudonyms;
  }

  /// Anchored Merkle roots in batch order (flush() first).
  std::vector<Bytes> anchored_roots() {
    EXPECT_TRUE(anchorer->flush().is_ok());
    std::vector<Bytes> roots;
    for (const auto& batch : anchorer->batches()) {
      roots.push_back(batch.tree.root());
    }
    return roots;
  }
};

constexpr std::size_t kStoredExpected = 42;

TEST(ScaleoutDifferential, HostCountsChangeNothingButSpeed) {
  // The identical mixed queue at 1, 2, 4, and 8 shard-hosts, plus the
  // historical single-lake path as the golden. Every aggregate — metrics
  // document, pseudonym set, reject tallies, canonical content digest,
  // anchored Merkle roots — must be byte-identical across all five runs.
  ClusterStack golden(0);
  golden.enqueue_mixed();
  EXPECT_EQ(golden.service->process_all(4), kStoredExpected);
  const std::string golden_json = obs::to_json(*golden.metrics);
  const std::set<std::string> golden_pseudonyms = golden.study_pseudonyms();
  const std::vector<Bytes> golden_roots = golden.anchored_roots();
  ASSERT_FALSE(golden_roots.empty());

  Result<Bytes> first_digest = Status(StatusCode::kNotFound, "unset");
  for (std::size_t hosts : {1u, 2u, 4u, 8u}) {
    ClusterStack stack(hosts);
    stack.enqueue_mixed();
    EXPECT_EQ(stack.service->process_all(4), kStoredExpected) << hosts;

    // End state: verdict tallies and store counts, exactly the historical
    // single-lake numbers.
    EXPECT_TRUE(stack.queue.empty());
    EXPECT_EQ(stack.staging.size(), 0u);
    EXPECT_EQ(stack.metrics->counter("hc.ingestion.reject.malware"), 5u);
    EXPECT_EQ(stack.metrics->counter("hc.ingestion.reject.consent"), 3u);
    EXPECT_EQ(stack.cluster_lake->object_count(), 2 * kStoredExpected);
    EXPECT_EQ(stack.cluster_lake->copy_count(),
              std::min<std::size_t>(2, hosts) * 2 * kStoredExpected);
    EXPECT_EQ(stack.metadata.size(), 2 * kStoredExpected);
    EXPECT_EQ(stack.reid_map.size(), kStoredExpected);
    EXPECT_EQ(stack.lake.object_count(), 0u)
        << "cluster mode must not touch the single-node lake";

    // The differential core: aggregates are placement-invariant.
    EXPECT_EQ(obs::to_json(*stack.metrics), golden_json)
        << hosts << " hosts: metrics diverged from the single-lake golden";
    EXPECT_EQ(stack.study_pseudonyms(), golden_pseudonyms) << hosts;
    EXPECT_EQ(stack.anchored_roots(), golden_roots)
        << hosts << " hosts: anchored Merkle roots moved with placement";

    auto digest = stack.cluster_lake->content_digest();
    ASSERT_TRUE(digest.is_ok()) << hosts;
    if (!first_digest.is_ok()) {
      first_digest = *digest;
    } else {
      EXPECT_EQ(*digest, *first_digest)
          << hosts << " hosts: canonical lake digest diverged";
    }
  }
}

TEST(ScaleoutDifferential, WorkerCountsAndRerunsAreByteIdenticalAtFourHosts) {
  std::string first_json;
  Bytes first_digest;
  for (std::size_t workers : {1u, 2u, 4u, 8u, 4u}) {  // trailing 4 = rerun
    ClusterStack stack(4);
    stack.enqueue_mixed();
    EXPECT_EQ(stack.service->process_all(workers), kStoredExpected);
    std::string json = obs::to_json(*stack.metrics);
    auto digest = stack.cluster_lake->content_digest();
    ASSERT_TRUE(digest.is_ok());
    if (first_json.empty()) {
      first_json = json;
      first_digest = *digest;
    } else {
      EXPECT_EQ(json, first_json) << workers << " workers";
      EXPECT_EQ(*digest, first_digest) << workers << " workers";
    }
  }
}

TEST(ScaleoutDifferential, CrashAndRebalanceConvergesToTheUninterruptedState) {
  // Drain the mixed queue on 4 hosts, then crash one and rebalance: the
  // canonical digest, pseudonym set, and anchored roots must match an
  // uninterrupted 4-host run bit for bit.
  ClusterStack uninterrupted(4);
  uninterrupted.enqueue_mixed();
  EXPECT_EQ(uninterrupted.service->process_all(4), kStoredExpected);
  auto undisturbed_digest = uninterrupted.cluster_lake->content_digest();
  ASSERT_TRUE(undisturbed_digest.is_ok());

  ClusterStack crashed(4);
  crashed.enqueue_mixed();
  EXPECT_EQ(crashed.service->process_all(4), kStoredExpected);
  ASSERT_TRUE(crashed.cluster->crash_host("shard-2").is_ok());
  auto report = crashed.cluster_lake->rebalance();
  EXPECT_EQ(report.lost_objects, 0u);
  EXPECT_GT(report.moved_copies, 0u);
  EXPECT_EQ(crashed.cluster_lake->copy_count(), 2 * 2 * kStoredExpected)
      << "replication restored on the three survivors";

  auto crashed_digest = crashed.cluster_lake->content_digest();
  ASSERT_TRUE(crashed_digest.is_ok());
  EXPECT_EQ(*crashed_digest, *undisturbed_digest);
  EXPECT_EQ(crashed.study_pseudonyms(), uninterrupted.study_pseudonyms());
  EXPECT_EQ(crashed.anchored_roots(), uninterrupted.anchored_roots());
}

}  // namespace
}  // namespace hc::cluster
