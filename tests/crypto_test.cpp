#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/asymmetric.h"
#include "crypto/hmac.h"
#include "crypto/kms.h"
#include "crypto/merkle.h"
#include "crypto/redactable.h"
#include "crypto/session_cache.h"
#include "crypto/sha256.h"
#include "crypto/sha256_multi.h"

namespace hc::crypto {
namespace {

// ---------------------------------------------------------------- SHA-256
// Vectors from FIPS 180-4 / NIST CAVP.

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(sha256(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(sha256(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_encode(sha256(std::string_view(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(1);
  Bytes data = rng.bytes(10000);
  Sha256 h;
  // Feed in irregular chunk sizes to cross block boundaries.
  std::size_t off = 0;
  std::size_t step = 1;
  while (off < data.size()) {
    std::size_t take = std::min(step, data.size() - off);
    h.update(data.data() + off, take);
    off += take;
    step = step * 2 + 1;
  }
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256, UpdateAfterFinalizeThrows) {
  Sha256 h;
  h.update(std::string_view("x"));
  (void)h.finalize();
  EXPECT_THROW(h.update(std::string_view("y")), std::logic_error);
  Sha256 h2;
  (void)h2.finalize();
  EXPECT_THROW(h2.finalize(), std::logic_error);
}

// Property sweep: message lengths that straddle padding boundaries hash
// consistently and injectively (no accidental collisions among them).
class Sha256LengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthSweep, DistinctFromNeighbors) {
  std::size_t n = GetParam();
  Bytes a(n, 0x41), b(n + 1, 0x41);
  EXPECT_EQ(sha256(a).size(), kSha256DigestSize);
  EXPECT_NE(sha256(a), sha256(b));
}

INSTANTIATE_TEST_SUITE_P(PaddingBoundaries, Sha256LengthSweep,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 127, 128, 1000));

// ---------------------------------------------------------------- HMAC
// Vectors from RFC 4231.

TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_encode(hmac_sha256(to_bytes("Jefe"),
                                   to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(hex_encode(hmac_sha256(
                key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  Bytes key = to_bytes("shared-ingestion-key");
  Bytes data = to_bytes("fhir bundle payload");
  Bytes tag = hmac_sha256(key, data);
  EXPECT_TRUE(hmac_verify(key, data, tag));

  Bytes tampered = data;
  tampered[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, tampered, tag));
  EXPECT_FALSE(hmac_verify(to_bytes("wrong-key"), data, tag));
  Bytes bad_tag = tag;
  bad_tag[31] ^= 1;
  EXPECT_FALSE(hmac_verify(key, data, bad_tag));
}

// ---------------------------------------------------------------- AES
// FIPS-197 Appendix C.1 / SP 800-38A vectors.

TEST(Aes, Fips197SingleBlock) {
  Bytes key = hex_decode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(Bytes(out, out + 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes.decrypt_block(out, back);
  EXPECT_EQ(Bytes(back, back + 16), pt);
}

TEST(Aes, Sp80038aCbcVector) {
  Bytes key = hex_decode("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes iv = hex_decode("000102030405060708090a0b0c0d0e0f");
  Bytes pt = hex_decode("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct = aes_cbc_encrypt(key, pt, iv);
  // Output is iv || ciphertext-with-padding; first ciphertext block matches
  // the SP 800-38A CBC-AES128 vector.
  EXPECT_EQ(hex_encode(Bytes(ct.begin() + 16, ct.begin() + 32)),
            "7649abac8119b246cee98e9b12e9197d");
  EXPECT_EQ(aes_cbc_decrypt(key, ct), pt);
}

TEST(Aes, KeySizeValidated) {
  EXPECT_THROW(Aes128(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes128(Bytes(32)), std::invalid_argument);
}

TEST(Aes, DecryptRejectsTruncatedAndCorruptPadding) {
  Rng rng(2);
  Bytes key = rng.bytes(16);
  Bytes ct = aes_cbc_encrypt(key, to_bytes("hello"), rng);
  Bytes truncated(ct.begin(), ct.begin() + 16);
  EXPECT_THROW(aes_cbc_decrypt(key, truncated), std::invalid_argument);
  Bytes odd(ct.begin(), ct.end() - 3);
  EXPECT_THROW(aes_cbc_decrypt(key, odd), std::invalid_argument);
}

class AesRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesRoundTrip, EncryptDecryptIdentity) {
  Rng rng(GetParam() + 77);
  Bytes key = rng.bytes(16);
  Bytes pt = rng.bytes(GetParam());
  Bytes ct = aes_cbc_encrypt(key, pt, rng);
  EXPECT_EQ(aes_cbc_decrypt(key, ct), pt);
  // Output carries a 16-byte IV plus padded ciphertext.
  EXPECT_EQ(ct.size(), 16 + (pt.size() / 16 + 1) * 16);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AesRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255,
                                           256, 1000, 4096));

TEST(Aes, AuthenticatedModeDetectsTampering) {
  Rng rng(3);
  Bytes enc_key = rng.bytes(16), mac_key = rng.bytes(16);
  Bytes pt = to_bytes("patient record: hba1c 7.2");
  auto ct = aes_encrypt_authenticated(enc_key, mac_key, pt, rng);

  auto ok = aes_decrypt_authenticated(enc_key, mac_key, ct);
  ASSERT_TRUE(ok.authentic);
  EXPECT_EQ(ok.plaintext, pt);

  auto tampered = ct;
  tampered.ciphertext[20] ^= 0x80;
  EXPECT_FALSE(aes_decrypt_authenticated(enc_key, mac_key, tampered).authentic);

  auto bad_tag = ct;
  bad_tag.tag[0] ^= 1;
  EXPECT_FALSE(aes_decrypt_authenticated(enc_key, mac_key, bad_tag).authentic);
}

// ---------------------------------------------------------------- RSA (toy)

TEST(Rsa, KeypairGeneratesValidModulus) {
  Rng rng(5);
  KeyPair kp = generate_keypair(rng);
  EXPECT_GT(kp.pub.n, 1ULL << 59);
  EXPECT_EQ(kp.pub.e, 65537u);
  EXPECT_EQ(kp.pub.n, kp.priv.n);
}

class RsaRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaRoundTrip, EncryptDecryptIdentity) {
  Rng rng(GetParam() + 11);
  KeyPair kp = generate_keypair(rng);
  Bytes pt = rng.bytes(GetParam());
  EXPECT_EQ(rsa_decrypt(kp.priv, rsa_encrypt(kp.pub, pt)), pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RsaRoundTrip,
                         ::testing::Values(0, 1, 3, 4, 5, 16, 100, 1000));

TEST(Rsa, SignatureVerifies) {
  Rng rng(6);
  KeyPair kp = generate_keypair(rng);
  Bytes data = to_bytes("container image manifest");
  Bytes sig = rsa_sign(kp.priv, data);
  EXPECT_TRUE(rsa_verify(kp.pub, data, sig));

  Bytes other = to_bytes("container image manifest!");
  EXPECT_FALSE(rsa_verify(kp.pub, other, sig));

  KeyPair other_kp = generate_keypair(rng);
  EXPECT_FALSE(rsa_verify(other_kp.pub, data, sig));

  Bytes bad_sig = sig;
  bad_sig[3] ^= 1;
  EXPECT_FALSE(rsa_verify(kp.pub, data, bad_sig));
  EXPECT_FALSE(rsa_verify(kp.pub, data, Bytes{}));
}

TEST(Rsa, FingerprintStableAndDistinct) {
  Rng rng(7);
  KeyPair a = generate_keypair(rng), b = generate_keypair(rng);
  EXPECT_EQ(a.pub.fingerprint(), a.pub.fingerprint());
  EXPECT_NE(a.pub.fingerprint(), b.pub.fingerprint());
  EXPECT_EQ(a.pub.fingerprint().size(), 16u);
}

TEST(Rsa, EnvelopeSealOpen) {
  Rng rng(8);
  KeyPair kp = generate_keypair(rng);
  Bytes pt = rng.bytes(5000);
  Envelope env = envelope_seal(kp.pub, pt, rng);
  EXPECT_EQ(envelope_open(kp.priv, env), pt);
  // Wrapped key is small relative to the body (hybrid property).
  EXPECT_LT(env.wrapped_key.size(), 64u);
}

TEST(Rsa, EnvelopeTamperDetectedByHmacTag) {
  Rng rng(14);
  KeyPair kp = generate_keypair(rng);
  Envelope env = envelope_seal(kp.pub, to_bytes("phi payload"), rng);

  Envelope tampered_body = env;
  tampered_body.body[tampered_body.body.size() / 2] ^= 1;
  EXPECT_THROW(envelope_open(kp.priv, tampered_body), std::invalid_argument);

  Envelope tampered_tag = env;
  tampered_tag.tag[0] ^= 1;
  EXPECT_THROW(envelope_open(kp.priv, tampered_tag), std::invalid_argument);

  // Untampered still opens.
  EXPECT_EQ(envelope_open(kp.priv, env), to_bytes("phi payload"));
}

TEST(Rsa, EnvelopeWrongKeyFails) {
  Rng rng(9);
  KeyPair kp = generate_keypair(rng);
  KeyPair other = generate_keypair(rng);
  Envelope env = envelope_seal(kp.pub, to_bytes("phi data"), rng);
  // Wrong private key yields garbage session key -> padding failure (or, in
  // the unlucky case, garbage plaintext; padding check makes that vanishingly
  // rare for this payload).
  EXPECT_THROW(
      {
        Bytes out = envelope_open(other.priv, env);
        if (out == to_bytes("phi data")) throw std::invalid_argument("impossible");
      },
      std::invalid_argument);
}

// ---------------------------------------------------------------- Merkle

TEST(Merkle, EmptyTreeHasCanonicalRoot) {
  MerkleTree t({});
  EXPECT_EQ(t.root(), sha256(Bytes{}));
  EXPECT_EQ(t.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  Bytes leaf = to_bytes("only");
  MerkleTree t({leaf});
  EXPECT_EQ(t.root(), MerkleTree::hash_leaf(leaf));
  EXPECT_TRUE(MerkleTree::verify(leaf, t.prove(0), t.root()));
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, AllLeavesProvable) {
  std::size_t n = GetParam();
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
  MerkleTree t(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(leaves[i], t.prove(i), t.root())) << "leaf " << i;
    // Proof for leaf i must not verify a different leaf.
    EXPECT_FALSE(MerkleTree::verify(to_bytes("forged"), t.prove(i), t.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33));

TEST(Merkle, RootChangesWithAnyLeaf) {
  std::vector<Bytes> leaves{to_bytes("a"), to_bytes("b"), to_bytes("c")};
  MerkleTree t1(leaves);
  leaves[1] = to_bytes("B");
  MerkleTree t2(leaves);
  EXPECT_NE(t1.root(), t2.root());
}

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree t({to_bytes("a")});
  EXPECT_THROW(t.prove(1), std::out_of_range);
}

TEST(Merkle, LeafInteriorDomainSeparation) {
  // hash_leaf(x) must never equal hash_interior parts; check the tags differ.
  Bytes x = to_bytes("x");
  EXPECT_NE(MerkleTree::hash_leaf(x), sha256(x));
}

// ---------------------------------------------------------------- Redactable

class RedactableFixture : public ::testing::Test {
 protected:
  RedactableFixture() : rng_(10), kp_(generate_keypair(rng_)) {}

  std::vector<Bytes> sample_parts() const {
    return {to_bytes("name: Jane Doe"), to_bytes("dob: 1970-01-01"),
            to_bytes("dx: type 2 diabetes"), to_bytes("rx: metformin")};
  }

  Rng rng_;
  KeyPair kp_;
};

TEST_F(RedactableFixture, IntactDocumentVerifies) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  EXPECT_EQ(redactable_verify(kp_.pub, doc), RedactableVerdict::kValid);
  EXPECT_EQ(intact_count(doc), 4u);
}

TEST_F(RedactableFixture, RedactedDocumentStillVerifies) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  redact(doc, 0);  // remove the name
  redact(doc, 1);  // remove the dob
  EXPECT_EQ(redactable_verify(kp_.pub, doc), RedactableVerdict::kValid);
  EXPECT_EQ(intact_count(doc), 2u);
  EXPECT_FALSE(doc.parts[0].content.has_value());
  EXPECT_TRUE(doc.parts[2].content.has_value());
}

TEST_F(RedactableFixture, RedactionIsIdempotent) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  redact(doc, 2);
  redact(doc, 2);
  EXPECT_EQ(redactable_verify(kp_.pub, doc), RedactableVerdict::kValid);
}

TEST_F(RedactableFixture, ContentSubstitutionDetected) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  doc.parts[3].content = to_bytes("rx: oxycodone");
  EXPECT_EQ(redactable_verify(kp_.pub, doc), RedactableVerdict::kBadCommitment);
}

TEST_F(RedactableFixture, CommitmentTamperDetected) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  redact(doc, 1);
  doc.parts[1].commitment[0] ^= 1;
  EXPECT_EQ(redactable_verify(kp_.pub, doc), RedactableVerdict::kBadSignature);
}

TEST_F(RedactableFixture, ReorderingDetected) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  std::swap(doc.parts[0], doc.parts[1]);
  // Positions are bound into commitments, so swapped parts fail verification.
  EXPECT_NE(redactable_verify(kp_.pub, doc), RedactableVerdict::kValid);
}

TEST_F(RedactableFixture, WrongSignerDetected) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  KeyPair other = generate_keypair(rng_);
  EXPECT_EQ(redactable_verify(other.pub, doc), RedactableVerdict::kBadSignature);
}

TEST_F(RedactableFixture, LeakageFreedom_SameContentDifferentCommitments) {
  // Two documents with identical part content produce unlinkable commitments
  // (salted), so a verifier of one cannot confirm content in the other.
  std::vector<Bytes> parts{to_bytes("dx: hiv positive")};
  auto doc1 = redactable_sign(kp_.priv, parts, rng_);
  auto doc2 = redactable_sign(kp_.priv, parts, rng_);
  EXPECT_NE(doc1.parts[0].commitment, doc2.parts[0].commitment);
}

TEST_F(RedactableFixture, RedactOutOfRangeThrows) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  EXPECT_THROW(redact(doc, 4), std::out_of_range);
}

TEST_F(RedactableFixture, SaltWithoutContentRejected) {
  auto doc = redactable_sign(kp_.priv, sample_parts(), rng_);
  doc.parts[0].content.reset();  // salt kept -> inconsistent part
  EXPECT_EQ(redactable_verify(kp_.pub, doc), RedactableVerdict::kBadCommitment);
}

// ---------------------------------------------------------------- KMS

class KmsFixture : public ::testing::Test {
 protected:
  KmsFixture()
      : clock_(make_clock()),
        log_(make_log(clock_)),
        kms_("tenant-a", Rng(11), log_) {}

  ClockPtr clock_;
  LogPtr log_;
  KeyManagementService kms_;
};

TEST_F(KmsFixture, OwnerCanFetchSymmetricKey) {
  auto id = kms_.create_symmetric_key("alice");
  auto key = kms_.symmetric_key(id, "alice");
  ASSERT_TRUE(key.is_ok());
  EXPECT_EQ(key->size(), kAesKeySize);
}

TEST_F(KmsFixture, UnauthorizedPrincipalDenied) {
  auto id = kms_.create_symmetric_key("alice");
  auto key = kms_.symmetric_key(id, "mallory");
  EXPECT_EQ(key.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(KmsFixture, AuthorizationGrantsAccess) {
  auto id = kms_.create_symmetric_key("alice");
  EXPECT_TRUE(kms_.authorize(id, "alice", "ingestion-service").is_ok());
  EXPECT_TRUE(kms_.symmetric_key(id, "ingestion-service").is_ok());
}

TEST_F(KmsFixture, OnlyOwnerMayAuthorize) {
  auto id = kms_.create_symmetric_key("alice");
  EXPECT_EQ(kms_.authorize(id, "mallory", "mallory").code(),
            StatusCode::kPermissionDenied);
}

TEST_F(KmsFixture, RotationKeepsOldVersionsFetchable) {
  auto id = kms_.create_symmetric_key("alice");
  Bytes v1 = kms_.symmetric_key(id, "alice").value();
  ASSERT_TRUE(kms_.rotate(id, "alice").is_ok());
  Bytes v2 = kms_.symmetric_key(id, "alice").value();
  EXPECT_NE(v1, v2);
  EXPECT_EQ(kms_.version(id).value(), 2u);
  EXPECT_EQ(kms_.symmetric_key_version(id, "alice", 1).value(), v1);
}

TEST_F(KmsFixture, CryptoShreddingMakesDataUnrecoverable) {
  Rng rng(12);
  auto id = kms_.create_symmetric_key("alice");
  Bytes key = kms_.symmetric_key(id, "alice").value();
  Bytes ct = aes_cbc_encrypt(key, to_bytes("patient-42 full record"), rng);

  ASSERT_TRUE(kms_.destroy(id, "alice").is_ok());
  EXPECT_TRUE(kms_.is_destroyed(id));
  EXPECT_EQ(kms_.symmetric_key(id, "alice").status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(kms_.symmetric_key_version(id, "alice", 1).status().code(),
            StatusCode::kDataLoss);
  // The ciphertext still exists but is now undecryptable without the key --
  // the GDPR right-to-forget mechanism. (We can only assert the KMS refuses.)
  (void)ct;
}

TEST_F(KmsFixture, KeypairPublicHalfWorldReadable) {
  auto id = kms_.create_keypair("platform");
  EXPECT_TRUE(kms_.public_key(id).is_ok());
  EXPECT_EQ(kms_.private_key(id, "mallory").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(kms_.private_key(id, "platform").is_ok());
}

TEST_F(KmsFixture, KeyAccessIsAudited) {
  auto id = kms_.create_symmetric_key("alice");
  (void)kms_.symmetric_key(id, "alice");
  (void)kms_.symmetric_key(id, "mallory");
  auto denied = log_->by_event("key_access_denied");
  ASSERT_EQ(denied.size(), 1u);
  auto granted = log_->by_event("key_access");
  EXPECT_EQ(granted.size(), 1u);
}

TEST_F(KmsFixture, UnknownKeyIsNotFound) {
  EXPECT_EQ(kms_.symmetric_key("nope", "alice").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(kms_.rotate("nope", "alice").code(), StatusCode::kNotFound);
  EXPECT_EQ(kms_.destroy("nope", "alice").code(), StatusCode::kNotFound);
  EXPECT_FALSE(kms_.is_destroyed("nope"));
}

TEST_F(KmsFixture, SymmetricAccessorRejectsKeypairId) {
  auto id = kms_.create_keypair("alice");
  EXPECT_EQ(kms_.symmetric_key(id, "alice").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------- multi-lane crypto hot path
// The batched kernels (4-lane lock-step SHA-256, batched HMAC verify, the
// 4-block interleaved AES decrypt) must be *bitwise* equal to their scalar
// references for every length, alignment, and batch size — the property
// that lets checkpoint sealing and ingest verification share one fast core.

TEST(Sha256Multi, FourLanesBitwiseEqualScalarOverRandomLengthsAndAlignments) {
  Rng rng(2024);
  for (int round = 0; round < 50; ++round) {
    // Lane buffers carved at random offsets out of one arena, so lane
    // pointers hit every alignment class.
    Bytes arena = rng.bytes(4096);
    const std::uint8_t* data[4];
    std::size_t len[4];
    Bytes expected[4];
    for (int lane = 0; lane < 4; ++lane) {
      // Lengths straddle the padding boundaries (0, <64, ==64, multi-block).
      len[lane] = static_cast<std::size_t>(rng.uniform_int(0, 300));
      std::size_t offset = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(arena.size() - 301)));
      data[lane] = len[lane] == 0 ? nullptr : arena.data() + offset;
      expected[lane] =
          sha256(Bytes(arena.data() + offset, arena.data() + offset + len[lane]));
    }
    std::uint8_t out[4][32];
    sha256_x4(data, len, out);
    for (int lane = 0; lane < 4; ++lane) {
      EXPECT_EQ(Bytes(out[lane], out[lane] + 32), expected[lane])
          << "round " << round << " lane " << lane << " len " << len[lane];
    }
  }
}

TEST(HmacMulti, BatchedTagsBitwiseEqualScalarForAnyKeySizeAndBatchShape) {
  Rng rng(77);
  // Batch sizes deliberately not multiples of the lane width.
  for (std::size_t batch : {1u, 3u, 4u, 7u, 13u}) {
    std::vector<Bytes> keys(batch), messages(batch);
    std::vector<HmacInput> items(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      // Key sizes cross the block-size boundary (>64 keys are pre-hashed).
      keys[i] = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 100)));
      messages[i] = rng.bytes(static_cast<std::size_t>(rng.uniform_int(0, 400)));
      items[i] = HmacInput{&keys[i], messages[i].data(), messages[i].size()};
    }
    std::vector<Bytes> tags = hmac_sha256_multi(items);
    ASSERT_EQ(tags.size(), batch);
    for (std::size_t i = 0; i < batch; ++i) {
      EXPECT_EQ(tags[i], hmac_sha256(keys[i], messages[i]))
          << "batch " << batch << " item " << i;
    }
  }
}

TEST(HmacMulti, VerifyBatchMatchesScalarVerdictsBothOverloads) {
  Rng rng(78);
  const std::size_t batch = 9;
  std::vector<Bytes> keys(batch), messages(batch), tags(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    keys[i] = rng.bytes(16);
    messages[i] = rng.bytes(30 * i + 1);
    tags[i] = hmac_sha256(keys[i], messages[i]);
  }
  // Damage tags 2 and 6 (flip one bit) and message 4 (payload mutation).
  tags[2][0] ^= 0x01;
  tags[6][31] ^= 0x80;
  messages[4][0] ^= 0xff;

  std::vector<HmacVerifyItem> items(batch);
  std::vector<HmacVerifyView> views(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    items[i] = HmacVerifyItem{&keys[i], &messages[i], &tags[i]};
    views[i] = HmacVerifyView{&keys[i], messages[i].data(), messages[i].size(),
                              tags[i].data(), tags[i].size()};
  }
  const std::vector<bool> item_verdicts = hmac_verify_batch(items);
  const std::vector<bool> view_verdicts = hmac_verify_batch(views);
  ASSERT_EQ(item_verdicts.size(), batch);
  ASSERT_EQ(view_verdicts.size(), batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const bool expected = hmac_verify(keys[i], messages[i], tags[i]);
    EXPECT_EQ(item_verdicts[i], expected) << i;
    EXPECT_EQ(view_verdicts[i], expected) << i;
    EXPECT_EQ(expected, i != 2 && i != 4 && i != 6) << i;
  }
}

TEST(Aes, DecryptBlocks4BitwiseEqualFourScalarBlocks) {
  Rng rng(79);
  for (int round = 0; round < 25; ++round) {
    Aes128 aes(rng.bytes(16));
    const Bytes in = rng.bytes(64);
    std::uint8_t batched[64];
    aes.decrypt_blocks4(in.data(), batched);
    std::uint8_t scalar[64];
    for (int b = 0; b < 4; ++b) {
      aes.decrypt_block(in.data() + 16 * b, scalar + 16 * b);
    }
    EXPECT_EQ(Bytes(batched, batched + 64), Bytes(scalar, scalar + 64))
        << "round " << round;
  }
}

TEST(Aes, SpanDecryptOverloadEqualsBytesOverloadAtAnyOffset) {
  Rng rng(80);
  for (std::size_t size : {1u, 15u, 16u, 17u, 64u, 257u}) {
    const Bytes key = rng.bytes(16);
    const Bytes plaintext = rng.bytes(size);
    const Bytes sealed = aes_cbc_encrypt(key, plaintext, rng);
    // Embed the ciphertext at an odd offset inside a larger blob — the
    // zero-copy staged-envelope shape.
    Bytes blob = rng.bytes(7);
    blob.insert(blob.end(), sealed.begin(), sealed.end());
    EXPECT_EQ(aes_cbc_decrypt(key, blob.data() + 7, sealed.size()), plaintext);
    EXPECT_EQ(aes_cbc_decrypt(key, sealed), plaintext);
  }
}

// ------------------------------------------------- per-tenant session cache

class SessionCacheFixture : public ::testing::Test {
 protected:
  SessionCacheFixture()
      : kms_("tenant-a", Rng(501)),
        client_key_(kms_.create_keypair("client")) {
    EXPECT_TRUE(kms_.authorize(client_key_, "client", "ingest").is_ok());
  }

  KeyManagementService kms_;
  KeyId client_key_;
};

TEST_F(SessionCacheFixture, UnwrapMatchesUncachedPathAndCachesRepeats) {
  Rng rng(502);
  auto pub = kms_.public_key(client_key_);
  ASSERT_TRUE(pub.is_ok());
  const Bytes session_key = rng.bytes(16);
  Envelope env = envelope_seal_with_key(*pub, session_key, rng.bytes(40), rng);

  SessionKeyCache cache(kms_, "ingest");
  auto first = cache.unwrap(client_key_, env.wrapped_key);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  EXPECT_EQ(*first, session_key);

  auto second = cache.unwrap(client_key_, env.wrapped_key);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(*second, session_key);

  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(SessionCacheFixture, DistinctSessionsAreDistinctEntries) {
  Rng rng(503);
  auto pub = kms_.public_key(client_key_);
  ASSERT_TRUE(pub.is_ok());
  SessionKeyCache cache(kms_, "ingest");
  for (int i = 0; i < 3; ++i) {
    Envelope env = envelope_seal(*pub, rng.bytes(24), rng);
    ASSERT_TRUE(cache.unwrap(client_key_, env.wrapped_key).is_ok());
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(SessionCacheFixture, InvalidateDropsSessionsAfterRotation) {
  Rng rng(504);
  auto pub = kms_.public_key(client_key_);
  ASSERT_TRUE(pub.is_ok());
  Envelope env = envelope_seal(*pub, rng.bytes(24), rng);
  SessionKeyCache cache(kms_, "ingest");
  ASSERT_TRUE(cache.unwrap(client_key_, env.wrapped_key).is_ok());
  EXPECT_EQ(cache.size(), 1u);

  cache.invalidate(client_key_);
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.unwrap(client_key_, env.wrapped_key).is_ok());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(SessionCacheFixture, KmsDenialsPassThroughAndAreNeverCached) {
  Rng rng(505);
  auto pub = kms_.public_key(client_key_);
  ASSERT_TRUE(pub.is_ok());
  Envelope env = envelope_seal(*pub, rng.bytes(24), rng);
  SessionKeyCache cache(kms_, "stranger");
  auto denied = cache.unwrap(client_key_, env.wrapped_key);
  ASSERT_FALSE(denied.is_ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(SessionCacheFixture, MalformedWrappedBytesThrowLikeUncachedPath) {
  SessionKeyCache cache(kms_, "ingest");
  EXPECT_THROW((void)cache.unwrap(client_key_, Bytes{1, 2, 3}),
               std::invalid_argument);
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace hc::crypto
