// Golden-artifact tests locking the metrics.json / metrics.csv emission
// contract (field names, units, number formatting, stable lexicographic
// key ordering). If one of these fails, the exporter's output changed —
// that is a breaking change for anything consuming bench artifacts, so
// update the contract note in src/obs/export.h alongside the goldens.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/export.h"
#include "sched/sched.h"

namespace hc::obs {
namespace {

/// The fixed registry every golden below is rendered from: one counter
/// per unit style, a gauge, and a histogram with hand-checkable stats.
MetricsRegistry golden_registry() {
  MetricsRegistry reg;
  reg.add("hc.test.bytes", 2048, "bytes");
  reg.add("hc.test.count", 3);
  reg.set_gauge("hc.test.ratio", 0.5);
  std::vector<double> bounds{10.0, 100.0};
  reg.observe("hc.test.lat_us", 5.0, "us", &bounds);
  reg.observe("hc.test.lat_us", 50.0);
  reg.observe("hc.test.lat_us", 500.0);
  return reg;
}

constexpr const char* kGoldenJson = R"({
  "metrics": [
    {"name": "hc.test.bytes", "type": "counter", "unit": "bytes", "value": 2048},
    {"name": "hc.test.count", "type": "counter", "unit": "1", "value": 3},
    {"name": "hc.test.lat_us", "type": "histogram", "unit": "us", "count": 3, "sum": 555, "min": 5, "max": 500, "p50": 100, "p95": 500, "p99": 500, "buckets": [{"le": 10, "count": 1}, {"le": 100, "count": 1}, {"le": "+inf", "count": 1}]},
    {"name": "hc.test.ratio", "type": "gauge", "unit": "1", "value": 0.5}
  ]
}
)";

constexpr const char* kGoldenCsv =
    "name,type,unit,value,count,sum,min,max,p50,p95,p99\n"
    "hc.test.bytes,counter,bytes,2048,,,,,,,\n"
    "hc.test.count,counter,1,3,,,,,,,\n"
    "hc.test.lat_us,histogram,us,,3,555,5,500,100,500,500\n"
    "hc.test.ratio,gauge,1,0.5,,,,,,,\n";

TEST(MetricsExport, JsonMatchesGolden) {
  EXPECT_EQ(to_json(golden_registry()), kGoldenJson);
}

TEST(MetricsExport, CsvMatchesGolden) {
  EXPECT_EQ(to_csv(golden_registry()), kGoldenCsv);
}

/// The hc.sched.* metric family the QoS layer emits (admission counters,
/// per-lane depth gauges, the batch-size and queue-wait histograms, and
/// the AIMD headroom gauge), rendered exactly as bench artifacts consume
/// it. The batch_size histogram uses the same power-of-two bounds the
/// scheduler records with (sched::batch_size_bounds), so a bounds change
/// there breaks this golden on purpose.
MetricsRegistry sched_registry() {
  MetricsRegistry reg;
  reg.add("hc.sched.admitted", 6);
  reg.add("hc.sched.deferred", 1);
  reg.add("hc.sched.shed", 2);
  reg.add("hc.sched.shed.deadline", 1);
  reg.add("hc.sched.shed.rate", 1);
  reg.set_gauge("hc.sched.headroom", 0.55);
  reg.set_gauge("hc.sched.queue_depth.gateway.mercy", 3.0);
  reg.observe("hc.sched.batch_size", 8.0, "1", &sched::batch_size_bounds());
  reg.observe("hc.sched.batch_size", 2.0, "1", &sched::batch_size_bounds());
  std::vector<double> wait_bounds{100.0, 1000.0, 10000.0};
  reg.observe("hc.sched.wait_us", 250.0, "us", &wait_bounds);
  reg.observe("hc.sched.wait_us", 1500.0, "us", &wait_bounds);
  return reg;
}

constexpr const char* kSchedGoldenJson = R"({
  "metrics": [
    {"name": "hc.sched.admitted", "type": "counter", "unit": "1", "value": 6},
    {"name": "hc.sched.batch_size", "type": "histogram", "unit": "1", "count": 2, "sum": 10, "min": 2, "max": 8, "p50": 2, "p95": 8, "p99": 8, "buckets": [{"le": 1, "count": 0}, {"le": 2, "count": 1}, {"le": 4, "count": 0}, {"le": 8, "count": 1}, {"le": 16, "count": 0}, {"le": 32, "count": 0}, {"le": 64, "count": 0}, {"le": 128, "count": 0}, {"le": 256, "count": 0}, {"le": 512, "count": 0}, {"le": "+inf", "count": 0}]},
    {"name": "hc.sched.deferred", "type": "counter", "unit": "1", "value": 1},
    {"name": "hc.sched.headroom", "type": "gauge", "unit": "1", "value": 0.55},
    {"name": "hc.sched.queue_depth.gateway.mercy", "type": "gauge", "unit": "1", "value": 3},
    {"name": "hc.sched.shed", "type": "counter", "unit": "1", "value": 2},
    {"name": "hc.sched.shed.deadline", "type": "counter", "unit": "1", "value": 1},
    {"name": "hc.sched.shed.rate", "type": "counter", "unit": "1", "value": 1},
    {"name": "hc.sched.wait_us", "type": "histogram", "unit": "us", "count": 2, "sum": 1750, "min": 250, "max": 1500, "p50": 1000, "p95": 1500, "p99": 1500, "buckets": [{"le": 100, "count": 0}, {"le": 1000, "count": 1}, {"le": 10000, "count": 1}, {"le": "+inf", "count": 0}]}
  ]
}
)";

constexpr const char* kSchedGoldenCsv =
    "name,type,unit,value,count,sum,min,max,p50,p95,p99\n"
    "hc.sched.admitted,counter,1,6,,,,,,,\n"
    "hc.sched.batch_size,histogram,1,,2,10,2,8,2,8,8\n"
    "hc.sched.deferred,counter,1,1,,,,,,,\n"
    "hc.sched.headroom,gauge,1,0.55,,,,,,,\n"
    "hc.sched.queue_depth.gateway.mercy,gauge,1,3,,,,,,,\n"
    "hc.sched.shed,counter,1,2,,,,,,,\n"
    "hc.sched.shed.deadline,counter,1,1,,,,,,,\n"
    "hc.sched.shed.rate,counter,1,1,,,,,,,\n"
    "hc.sched.wait_us,histogram,us,,2,1750,250,1500,1000,1500,1500\n";

TEST(MetricsExport, SchedFamilyJsonMatchesGolden) {
  EXPECT_EQ(to_json(sched_registry()), kSchedGoldenJson);
}

TEST(MetricsExport, SchedFamilyCsvMatchesGolden) {
  EXPECT_EQ(to_csv(sched_registry()), kSchedGoldenCsv);
}

TEST(MetricsExport, EmptyRegistryStillEmitsValidDocuments) {
  MetricsRegistry reg;
  EXPECT_EQ(to_json(reg), "{\n  \"metrics\": [\n  ]\n}\n");
  EXPECT_EQ(to_csv(reg), "name,type,unit,value,count,sum,min,max,p50,p95,p99\n");
}

TEST(MetricsExport, NoInfinitiesLeakIntoArtifacts) {
  // min/max start at +/-inf internally; the only "inf" in an artifact must
  // be the overflow bucket's "+inf" label, never a stat value.
  std::string json = to_json(golden_registry());
  std::size_t pos = json.find("inf");
  while (pos != std::string::npos) {
    ASSERT_GE(pos, 2u);
    EXPECT_EQ(json.substr(pos - 2, 6), "\"+inf\"");
    pos = json.find("inf", pos + 1);
  }
  EXPECT_EQ(to_csv(golden_registry()).find("inf"), std::string::npos);
}

TEST(MetricsExport, NumberFormattingIsStable) {
  MetricsRegistry reg;
  reg.set_gauge("hc.test.fraction", 0.125);
  reg.set_gauge("hc.test.integral", 12345.0);
  reg.set_gauge("hc.test.large", 1234567.25);
  std::string json = to_json(reg);
  EXPECT_NE(json.find("\"value\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"value\": 12345"), std::string::npos);  // no ".0"
  EXPECT_NE(json.find("\"value\": 1.23457e+06"), std::string::npos);
}

TEST(MetricsExport, WriteRoundTripsThroughDisk) {
  std::string dir = ::testing::TempDir();
  std::string json_path = dir + "/obs_export_test_metrics.json";
  std::string csv_path = dir + "/obs_export_test_metrics.csv";
  MetricsRegistry reg = golden_registry();

  ASSERT_TRUE(write_metrics_json(reg, json_path).is_ok());
  ASSERT_TRUE(write_metrics_csv(reg, csv_path).is_ok());

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(json_path), kGoldenJson);
  EXPECT_EQ(slurp(csv_path), kGoldenCsv);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(MetricsExport, UnwritablePathIsUnavailable) {
  MetricsRegistry reg;
  EXPECT_EQ(write_metrics_json(reg, "/nonexistent-dir/metrics.json").code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace hc::obs
