#include <gtest/gtest.h>

#include "cache/cache.h"
#include "cache/multilevel.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace hc::cache {
namespace {

class CacheFixture : public ::testing::Test {
 protected:
  CacheFixture() : clock_(make_clock()) {}

  Cache make(std::size_t cap, EvictionPolicy policy) {
    return Cache(cap, policy, clock_);
  }

  ClockPtr clock_;
};

TEST_F(CacheFixture, PutGetHit) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"));
  auto e = c.get("k");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(to_string(e->value), "v");
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST_F(CacheFixture, MissCounted) {
  auto c = make(4, EvictionPolicy::kLru);
  EXPECT_FALSE(c.get("absent").has_value());
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST_F(CacheFixture, NeverExceedsCapacity) {
  auto c = make(8, EvictionPolicy::kLru);
  for (int i = 0; i < 100; ++i) {
    c.put("k" + std::to_string(i), to_bytes("v"));
    EXPECT_LE(c.size(), 8u);
  }
  EXPECT_EQ(c.stats().evictions, 92u);
}

TEST_F(CacheFixture, LruEvictsLeastRecentlyUsed) {
  auto c = make(2, EvictionPolicy::kLru);
  c.put("a", to_bytes("1"));
  c.put("b", to_bytes("2"));
  ASSERT_TRUE(c.get("a").has_value());  // a now most recent
  c.put("c", to_bytes("3"));            // evicts b
  EXPECT_TRUE(c.contains("a"));
  EXPECT_FALSE(c.contains("b"));
  EXPECT_TRUE(c.contains("c"));
}

TEST_F(CacheFixture, FifoEvictsOldestInsertion) {
  auto c = make(2, EvictionPolicy::kFifo);
  c.put("a", to_bytes("1"));
  c.put("b", to_bytes("2"));
  ASSERT_TRUE(c.get("a").has_value());  // access does NOT protect under FIFO
  c.put("c", to_bytes("3"));            // evicts a
  EXPECT_FALSE(c.contains("a"));
  EXPECT_TRUE(c.contains("b"));
  EXPECT_TRUE(c.contains("c"));
}

TEST_F(CacheFixture, LfuEvictsLeastFrequentlyUsed) {
  auto c = make(2, EvictionPolicy::kLfu);
  c.put("hot", to_bytes("1"));
  c.put("cold", to_bytes("2"));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(c.get("hot").has_value());
  c.put("new", to_bytes("3"));  // evicts cold (freq 1) not hot (freq 6)
  EXPECT_TRUE(c.contains("hot"));
  EXPECT_FALSE(c.contains("cold"));
  EXPECT_TRUE(c.contains("new"));
}

TEST_F(CacheFixture, ZeroCapacityCachesNothing) {
  auto c = make(0, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_FALSE(c.get("k").has_value());
}

TEST_F(CacheFixture, TtlExpires) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"), 10 * kMillisecond);
  EXPECT_TRUE(c.get("k").has_value());
  clock_->advance(11 * kMillisecond);
  EXPECT_FALSE(c.get("k").has_value());
  EXPECT_EQ(c.stats().expirations, 1u);
  EXPECT_FALSE(c.contains("k"));
}

TEST_F(CacheFixture, NoTtlNeverExpires) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"));
  clock_->advance(365 * kDay);
  EXPECT_TRUE(c.get("k").has_value());
}

TEST_F(CacheFixture, VersionsIncrementOnOverwrite) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v1"));
  EXPECT_EQ(c.get("k")->version, 1u);
  c.put("k", to_bytes("v2"));
  EXPECT_EQ(c.get("k")->version, 2u);
  EXPECT_EQ(to_string(c.get("k")->value), "v2");
}

TEST_F(CacheFixture, MinVersionDropsStaleEntry) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("old"), 0, 3);
  EXPECT_FALSE(c.get("k", 5).has_value());  // demand >= v5; cached is v3
  EXPECT_EQ(c.stats().invalidations, 1u);
  EXPECT_FALSE(c.contains("k"));  // stale entry was dropped
}

TEST_F(CacheFixture, MinVersionAcceptsFreshEntry) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("new"), 0, 7);
  EXPECT_TRUE(c.get("k", 5).has_value());
}

TEST_F(CacheFixture, InvalidateRemoves) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"));
  EXPECT_TRUE(c.invalidate("k"));
  EXPECT_FALSE(c.invalidate("k"));
  EXPECT_FALSE(c.contains("k"));
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST_F(CacheFixture, ClearEmptiesEverything) {
  auto c = make(4, EvictionPolicy::kLfu);
  c.put("a", to_bytes("1"));
  c.put("b", to_bytes("2"));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  c.put("c", to_bytes("3"));  // still usable after clear
  EXPECT_TRUE(c.contains("c"));
}

TEST_F(CacheFixture, HitRatioComputed) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"));
  (void)c.get("k");
  (void)c.get("k");
  (void)c.get("absent");
  EXPECT_NEAR(c.stats().hit_ratio(), 2.0 / 3.0, 1e-9);
  c.reset_stats();
  EXPECT_EQ(c.stats().hit_ratio(), 0.0);
}

TEST_F(CacheFixture, MetricsMatchHandComputedAccessSequence) {
  auto c = make(2, EvictionPolicy::kLru);
  auto metrics = obs::make_metrics();
  c.bind_metrics(metrics, "client");

  c.put("a", to_bytes("1"));
  c.put("b", to_bytes("2"));
  (void)c.get("a");       // hit; a becomes most recent
  (void)c.get("a");       // hit
  (void)c.get("absent");  // miss
  c.put("c", to_bytes("3"));  // evicts b (a was touched more recently)
  (void)c.get("b");           // miss

  EXPECT_EQ(metrics->counter("hc.cache.client.hits"), 2u);
  EXPECT_EQ(metrics->counter("hc.cache.client.misses"), 2u);
  EXPECT_EQ(metrics->counter("hc.cache.client.evictions"), 1u);
  // Registry counts agree with the cache's own stats.
  EXPECT_EQ(metrics->counter("hc.cache.client.hits"), c.stats().hits);
  EXPECT_EQ(metrics->counter("hc.cache.client.misses"), c.stats().misses);
}

TEST_F(CacheFixture, MetricsCountExpirationsAndInvalidations) {
  auto c = make(4, EvictionPolicy::kLru);
  auto metrics = obs::make_metrics();
  c.bind_metrics(metrics, "client");

  c.put("k", to_bytes("v"), 10 * kMillisecond);
  clock_->advance(11 * kMillisecond);
  EXPECT_FALSE(c.get("k").has_value());  // expired -> expiration + miss
  c.put("k", to_bytes("v"));
  EXPECT_TRUE(c.invalidate("k"));

  EXPECT_EQ(metrics->counter("hc.cache.client.expirations"), 1u);
  EXPECT_EQ(metrics->counter("hc.cache.client.misses"), 1u);
  EXPECT_EQ(metrics->counter("hc.cache.client.invalidations"), 1u);
  EXPECT_EQ(metrics->counter("hc.cache.client.hits"), 0u);
}

TEST_F(CacheFixture, UnboundCacheRecordsNothing) {
  auto c = make(4, EvictionPolicy::kLru);
  c.put("k", to_bytes("v"));
  (void)c.get("k");
  (void)c.get("absent");  // no registry bound: must not crash, no metrics
  EXPECT_EQ(c.stats().hits, 1u);
}

// Property: under any policy, hits + misses == number of get() calls, and
// size never exceeds capacity, across a randomized workload.
class CachePolicySweep : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(CachePolicySweep, InvariantsUnderRandomWorkload) {
  auto clock = make_clock();
  Cache c(16, GetParam(), clock);
  Rng rng(99);
  std::uint64_t gets = 0;
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.uniform_int(0, 60));
    if (rng.bernoulli(0.4)) {
      c.put(key, to_bytes("v"), rng.bernoulli(0.2) ? 5 * kMillisecond : 0);
    } else {
      (void)c.get(key);
      ++gets;
    }
    if (rng.bernoulli(0.01)) clock->advance(3 * kMillisecond);
    ASSERT_LE(c.size(), 16u);
  }
  EXPECT_EQ(c.stats().hits + c.stats().misses, gets);
}

INSTANTIATE_TEST_SUITE_P(Policies, CachePolicySweep,
                         ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kLfu,
                                           EvictionPolicy::kFifo));

// ------------------------------------------------------------ hierarchy

class HierarchyFixture : public ::testing::Test {
 protected:
  HierarchyFixture()
      : clock_(make_clock()),
        client_(4, EvictionPolicy::kLru, clock_),
        server_(64, EvictionPolicy::kLru, clock_) {
    hierarchy_ = std::make_unique<CacheHierarchy>(
        std::vector<Tier>{{"client", &client_, 10},         // 10us local
                          {"server", &server_, 2 * kMillisecond}},  // RTT to server
        [this](const std::string& key) -> Result<Bytes> {
          ++origin_fetches_;
          clock_->advance(80 * kMillisecond);  // remote knowledge base
          if (key == "missing") return Status(StatusCode::kNotFound, "no such key");
          return to_bytes("origin:" + key);
        },
        clock_);
  }

  ClockPtr clock_;
  Cache client_;
  Cache server_;
  std::unique_ptr<CacheHierarchy> hierarchy_;
  int origin_fetches_ = 0;
};

TEST_F(HierarchyFixture, MissGoesToOriginAndPopulatesAllTiers) {
  auto r = hierarchy_->get("gene-tp53");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->served_by, "origin");
  EXPECT_EQ(origin_fetches_, 1);
  EXPECT_TRUE(client_.contains("gene-tp53"));
  EXPECT_TRUE(server_.contains("gene-tp53"));
}

TEST_F(HierarchyFixture, SecondReadServedByClientTier) {
  ASSERT_TRUE(hierarchy_->get("gene-tp53").is_ok());
  auto r = hierarchy_->get("gene-tp53");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->served_by, "client");
  EXPECT_EQ(origin_fetches_, 1);
  // Client-tier latency is orders of magnitude below the origin's 80ms.
  EXPECT_LT(r->latency, kMillisecond);
}

TEST_F(HierarchyFixture, ServerHitPopulatesClient) {
  ASSERT_TRUE(hierarchy_->get("a").is_ok());
  // Push "a" out of the tiny client cache.
  for (char k = 'b'; k <= 'f'; ++k) {
    ASSERT_TRUE(hierarchy_->get(std::string(1, k)).is_ok());
  }
  EXPECT_FALSE(client_.contains("a"));
  auto r = hierarchy_->get("a");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->served_by, "server");
  EXPECT_TRUE(client_.contains("a"));  // repopulated upward
}

TEST_F(HierarchyFixture, OriginLatencyDominatesMiss) {
  auto miss = hierarchy_->get("x");
  ASSERT_TRUE(miss.is_ok());
  EXPECT_GE(miss->latency, 80 * kMillisecond);
}

TEST_F(HierarchyFixture, OriginErrorPropagates) {
  auto r = hierarchy_->get("missing");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(client_.contains("missing"));
}

TEST_F(HierarchyFixture, InvalidatePropagatesToAllTiers) {
  ASSERT_TRUE(hierarchy_->get("k").is_ok());
  hierarchy_->invalidate("k");
  EXPECT_FALSE(client_.contains("k"));
  EXPECT_FALSE(server_.contains("k"));
  auto r = hierarchy_->get("k");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->served_by, "origin");
  EXPECT_EQ(origin_fetches_, 2);
}

TEST_F(HierarchyFixture, PutThroughMakesNewVersionVisible) {
  ASSERT_TRUE(hierarchy_->get("k").is_ok());
  hierarchy_->put_through("k", to_bytes("fresh"), 9);
  auto r = hierarchy_->get("k");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->served_by, "client");
  EXPECT_EQ(to_string(r->value), "fresh");
}

TEST_F(HierarchyFixture, MetricsAttributeServesToTiersAndOrigin) {
  auto metrics = obs::make_metrics();
  hierarchy_->bind_metrics(metrics);

  ASSERT_TRUE(hierarchy_->get("k").is_ok());  // origin fetch
  ASSERT_TRUE(hierarchy_->get("k").is_ok());  // client hit
  ASSERT_TRUE(hierarchy_->get("k").is_ok());  // client hit

  EXPECT_EQ(metrics->counter("hc.cache.served.origin"), 1u);
  EXPECT_EQ(metrics->counter("hc.cache.served.client"), 2u);
  EXPECT_EQ(metrics->counter("hc.cache.served.server"), 0u);
  // Per-tier caches record through the same registry: the first lookup
  // missed both tiers, the next two hit the client tier.
  EXPECT_EQ(metrics->counter("hc.cache.client.misses"), 1u);
  EXPECT_EQ(metrics->counter("hc.cache.server.misses"), 1u);
  EXPECT_EQ(metrics->counter("hc.cache.client.hits"), 2u);

  // The lookup-latency histogram shows the cache speedup: one ~80ms origin
  // fetch plus two ~10us client hits.
  const obs::Histogram* lookups = metrics->histogram("hc.cache.lookup_us");
  ASSERT_NE(lookups, nullptr);
  EXPECT_EQ(lookups->count, 3u);
  EXPECT_GE(lookups->max, 80.0 * kMillisecond);
  EXPECT_LT(lookups->min, static_cast<double>(kMillisecond));
}

TEST_F(HierarchyFixture, TtlWritesExpireAcrossTiers) {
  ASSERT_TRUE(hierarchy_->get("k", 5 * kMillisecond).is_ok());
  clock_->advance(6 * kMillisecond);
  auto r = hierarchy_->get("k", 5 * kMillisecond);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r->served_by, "origin");  // both tiers expired
}

}  // namespace
}  // namespace hc::cache
