// Scenario validator conformance (ISSUE satellite): every malformed input
// class is rejected with an exact, actionable diagnostic — out-of-range
// values, unknown keys, dangling cross-references, overlapping phases,
// zero-duration runs, broken syntax. The table pins the message text:
// diagnostics are part of the contract (operators grep for them), so a
// reworded error is a breaking change and must show up in review.
#include <gtest/gtest.h>

#include "scenario/validator.h"

namespace hc::scenario {
namespace {

struct RejectCase {
  const char* name;     // gtest-visible case name (alphanumeric)
  const char* text;     // scenario source fed to load_string
  const char* message;  // exact Status message expected back
};

// A minimal valid skeleton for reference — cases below are mutations of it:
//   scenario "t" {\n  horizon 1s\n}\ntenant "a" {\n  rate 10\n}\n
constexpr RejectCase kCases[] = {
    // --- parser syntax --------------------------------------------------
    {"UnterminatedQuote",
     "scenario \"t {\n",
     "parse error: line 1: unterminated quoted string"},
    {"HeaderWithoutBrace",
     "scenario \"t\"\n",
     "parse error: line 1: expected '{' at end of block header"},
    {"CloseWithoutOpen",
     "}\n",
     "parse error: line 1: '}' without an open block"},
    {"UnterminatedBlock",
     "scenario \"t\" {\n  horizon 1s\n",
     "parse error: line 3: unterminated block \"scenario\""},
    {"BraceInEntryValue",
     "scenario \"t\" {\n  seed {\n}\n",
     "parse error: line 2: braces are not allowed in entry values"},
    {"TrailingTokensAfterClose",
     "scenario \"t\" {\n} junk\n",
     "parse error: line 2: unexpected tokens after '}'"},
    {"QuotedEntryKey",
     "scenario \"t\" {\n  \"seed\" 1\n}\n",
     "parse error: line 2: entry key must not be quoted"},
    {"EntryWithoutValue",
     "scenario \"t\" {\n  seed\n}\n",
     "parse error: line 2: entry needs at least one value: seed"},

    // --- structure ------------------------------------------------------
    {"MissingScenarioBlock",
     "tenant \"a\" {\n  rate 10\n}\n",
     "missing scenario block"},
    {"NoTenants",
     "scenario \"t\" {\n  horizon 1s\n}\n",
     "scenario must declare at least one tenant"},
    {"UnknownBlockKind",
     "scenario \"t\" {\n}\nwidget \"w\" {\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "unknown block \"widget\" (line 3)"},
    {"QuotaNeedsName",
     "scenario \"t\" {\n}\nquota {\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "quota block requires a name (line 3)"},
    {"ServerTakesNoName",
     "scenario \"t\" {\n}\nserver \"s\" {\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "server block does not take a name (line 3)"},
    {"DuplicateScenarioBlock",
     "scenario \"t\" {\n}\nscenario \"u\" {\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "duplicate scenario block (line 3)"},
    {"DuplicateTenant",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\ntenant \"a\" {\n"
     "  rate 10\n}\n",
     "duplicate tenant \"a\" (line 6)"},
    {"NetworkShadowsPreset",
     "scenario \"t\" {\n}\nnetwork \"lan\" {\n  latency 1ms\n}\n"
     "tenant \"a\" {\n  rate 10\n}\n",
     "network \"lan\" collides with a built-in preset (line 3)"},

    // --- range and type checks ------------------------------------------
    {"ZeroDurationRun",
     "scenario \"t\" {\n  horizon 0s\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "scenario \"t\": horizon must be > 0 (got 0s) (line 2)"},
    {"HorizonTooLong",
     "scenario \"t\" {\n  horizon 11m\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "scenario \"t\": horizon must be <= 600.000s (got 11m) (line 2)"},
    {"BadDurationToken",
     "scenario \"t\" {\n  horizon 5parsecs\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "scenario \"t\": horizon: invalid duration \"5parsecs\" "
     "(expected e.g. 250ms, 5s) (line 2)"},
    {"TenantRateOutOfRange",
     "scenario \"t\" {\n  horizon 1s\n}\ntenant \"a\" {\n  rate 2000000\n}\n",
     "tenant \"a\": rate must be in [0, 1000000] (got 2000000) (line 5)"},
    {"TenantRateNotANumber",
     "scenario \"t\" {\n  horizon 1s\n}\ntenant \"a\" {\n  rate many\n}\n",
     "tenant \"a\": rate: invalid number \"many\" (line 5)"},
    {"NegativeWeight",
     "scenario \"t\" {\n}\nquota \"q\" {\n  weight -3\n}\n"
     "tenant \"a\" {\n  rate 10\n  quota \"q\"\n}\n",
     "quota \"q\": weight must be in [1, 1000] (got -3) (line 4)"},
    {"ZeroQuotaRate",
     "scenario \"t\" {\n}\nquota \"q\" {\n  rate 0\n}\n"
     "tenant \"a\" {\n  rate 10\n  quota \"q\"\n}\n",
     "quota \"q\": rate must be in (0, 1000000000] (got 0) (line 4)"},
    {"ConsentProbabilityOutOfRange",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n"
     "  consent_probability 1.5\n}\n",
     "tenant \"a\": consent_probability must be in [0, 1] (got 1.5) (line 5)"},
    {"CostRangeInverted",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n  cost 500 100\n}\n",
     "tenant \"a\": cost range must satisfy lo <= hi (got 500 100) (line 5)"},
    {"BadSchedulerKeyword",
     "scenario \"t\" {\n}\nserver {\n  scheduler magic\n}\n"
     "tenant \"a\" {\n  rate 10\n}\n",
     "server: scheduler must be one of fifo|sched|both (got \"magic\") "
     "(line 4)"},
    {"SweepTooManyValues",
     "scenario \"t\" {\n  sweep 1 2 3 4 5 6 7 8 9\n}\n"
     "tenant \"a\" {\n  rate 10\n}\n",
     "scenario \"t\": key \"sweep\" expects 1 to 8 values (got 9) (line 2)"},

    // --- duplicate and unknown keys -------------------------------------
    {"DuplicateKey",
     "scenario \"t\" {\n  seed 1\n  seed 2\n}\ntenant \"a\" {\n  rate 10\n}\n",
     "scenario \"t\": duplicate key \"seed\" (line 3)"},
    {"UnknownKey",
     "scenario \"t\" {\n  horizon 1s\n  colour blue\n}\n"
     "tenant \"a\" {\n  rate 10\n}\n",
     "scenario \"t\": unknown key \"colour\" (line 3)"},
    {"UnknownTenantKey",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n  priority 9\n}\n",
     "tenant \"a\": unknown key \"priority\" (line 5)"},

    // --- arrival consistency --------------------------------------------
    {"ClosedLoopWithoutClients",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  arrival closed\n}\n",
     "tenant \"a\": closed-loop arrival requires clients"},
    {"ClosedLoopWithRate",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  arrival closed\n  clients 4\n"
     "  rate 10\n}\n",
     "tenant \"a\": closed-loop arrival does not take rate"},
    {"ClientsWithoutClosedLoop",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n  clients 4\n}\n",
     "tenant \"a\": clients is only valid with closed-loop arrival"},
    {"OpenLoopWithoutRate",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  role clinician\n}\n",
     "tenant \"a\": open-loop arrival requires rate > 0 or rate fill"},
    {"TwoFillTenants",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate fill\n}\n"
     "tenant \"b\" {\n  rate fill\n}\n",
     "tenant \"b\": only one tenant may use rate fill "
     "(tenant \"a\" already does)"},

    // --- dangling cross-references --------------------------------------
    {"DanglingQuotaRef",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n  quota \"gold\"\n}\n",
     "tenant \"a\": unknown quota \"gold\""},
    {"DanglingNetworkRef",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n  network \"mars\"\n}\n",
     "tenant \"a\": unknown network \"mars\""},
    {"VerdictDanglingTenant",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "verdict \"v\" {\n  require min_served_fraction\n  bound 0.5\n"
     "  tenant \"ghost\"\n}\n",
     "verdict \"v\": unknown tenant \"ghost\""},
    {"PhaseDanglingTenant",
     "scenario \"t\" {\n  horizon 2s\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "phase \"p\" {\n  from 0s\n  until 1s\n  tenants \"ghost\"\n}\n",
     "phase \"p\": unknown tenant \"ghost\""},
    {"FaultDanglingEndpoint",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  drop \"x\" \"server\" 0.5\n}\n",
     "fault: drop endpoint \"x\" is not a tenant or the server host (line 7)"},

    // --- phases ----------------------------------------------------------
    {"PhaseZeroLength",
     "scenario \"t\" {\n  horizon 2s\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "phase \"p\" {\n  from 1s\n  until 1s\n}\n",
     "phase \"p\": until (1.000s) must be after from (1.000s)"},
    {"PhaseBeyondHorizon",
     "scenario \"t\" {\n  horizon 2s\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "phase \"p\" {\n  from 1s\n  until 3s\n}\n",
     "phase \"p\": until (3.000s) must be <= horizon (2.000s)"},
    {"OverlappingPhases",
     "scenario \"t\" {\n  horizon 2s\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "phase \"p1\" {\n  from 0s\n  until 1s\n}\n"
     "phase \"p2\" {\n  from 500ms\n  until 1500ms\n}\n",
     "phase \"p2\" overlaps phase \"p1\" ([500.000ms, 1.500s) vs "
     "[0us, 1.000s))"},

    // --- verdicts ---------------------------------------------------------
    {"VerdictMissingRequire",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "verdict \"v\" {\n  bound 0.5\n}\n",
     "verdict \"v\": missing required key \"require\""},
    {"VerdictStoredWithoutIngestion",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "verdict \"v\" {\n  require min_stored_fraction\n  bound 0.5\n}\n",
     "verdict \"v\": min_stored_fraction requires an ingestion block"},
    {"VerdictModeNotRun",
     "scenario \"t\" {\n}\nserver {\n  scheduler sched\n}\n"
     "tenant \"a\" {\n  rate 10\n}\n"
     "verdict \"v\" {\n  require min_served_fraction\n  bound 0.5\n"
     "  mode fifo\n}\n",
     "verdict \"v\": mode fifo but server scheduler is sched"},
    {"VerdictLoadNotInSweep",
     "scenario \"t\" {\n  sweep 1.0 2.0\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "verdict \"v\" {\n  require min_served_fraction\n  bound 0.5\n"
     "  loads 3\n}\n",
     "verdict \"v\": load 3 is not in the sweep"},

    // --- ingestion provenance --------------------------------------------
    {"BadProvenanceKeyword",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  provenance maybe\n}\n",
     "ingestion: provenance must be one of per-record|anchored "
     "(got \"maybe\") (line 7)"},
    {"AuditReadsWithoutAnchored",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  audit_reads 8\n}\n",
     "ingestion: audit_reads requires provenance anchored"},
    {"AuditReadsOutOfRange",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  provenance anchored\n  audit_reads 200000\n}\n",
     "ingestion: audit_reads must be in [0, 100000] (got 200000) (line 8)"},

    // --- ingestion cluster scale-out -------------------------------------
    {"ShardHostsOutOfRange",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_hosts 65\n}\n",
     "ingestion: shard_hosts must be in [0, 64] (got 65) (line 7)"},
    {"ShardVnodesWithoutHosts",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_vnodes 64\n}\n",
     "ingestion: shard_vnodes requires shard_hosts > 0"},
    {"ShardReplicationWithoutHosts",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_replication 2\n}\n",
     "ingestion: shard_replication requires shard_hosts > 0"},
    {"CrashShardWithoutHosts",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  crash_shard_host \"shard-0\"\n}\n",
     "ingestion: crash_shard_host requires shard_hosts > 0"},
    {"ShardReplicationAboveHosts",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_hosts 2\n  shard_replication 3\n}\n",
     "ingestion: shard_replication (3) must be <= shard_hosts (2)"},
    {"CrashShardUnknownHost",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_hosts 4\n  crash_shard_host \"shard-9\"\n}\n",
     "ingestion: crash_shard_host \"shard-9\" is not one of "
     "shard-0..shard-3"},
    {"CrashShardWithoutReplication",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_hosts 4\n  shard_replication 1\n"
     "  crash_shard_host \"shard-1\"\n}\n",
     "ingestion: crash_shard_host requires shard_replication >= 2 "
     "(a lone copy dies with its host)"},

    // --- ingestion checkpoint / crash-and-resume --------------------------
    {"CrashResumeWithoutCheckpoint",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  crash_and_resume 10\n}\n",
     "ingestion: crash_and_resume requires checkpoint_after > 0"},
    {"CheckpointWithShardHosts",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  shard_hosts 2\n  checkpoint_after 10\n}\n",
     "ingestion: checkpoint_after requires shard_hosts == 0"},
    {"CheckpointWithAnchoredProvenance",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  provenance anchored\n  checkpoint_after 10\n}\n",
     "ingestion: checkpoint_after requires provenance per-record"},
    {"CheckpointAboveMaxUploads",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  max_uploads 50\n  checkpoint_after 60\n}\n",
     "ingestion: checkpoint_after (60) must be <= max_uploads (50)"},
    {"CrashResumeBeforeCheckpoint",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  max_uploads 50\n  checkpoint_after 40\n"
     "  crash_and_resume 30\n}\n",
     "ingestion: crash_and_resume (30) must be >= checkpoint_after (40)"},
    {"CrashResumeAboveMaxUploads",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "ingestion {\n  max_uploads 50\n  checkpoint_after 40\n"
     "  crash_and_resume 60\n}\n",
     "ingestion: crash_and_resume (60) must be <= max_uploads (50)"},

    // --- fault rules ------------------------------------------------------
    {"FaultProbabilityOutOfRange",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  drop \"a\" \"server\" 1.5\n}\n",
     "fault: drop probability must be in [0, 1] (got 1.5) (line 7)"},
    {"FaultUnknownRule",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  mangle \"a\" \"server\" 0.5\n}\n",
     "fault: unknown rule \"mangle\" (line 7)"},
    {"CrashWrongArity",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  crash \"server\" 1s\n}\n",
     "fault: crash expects: crash <host> <at> <restart> (line 7)"},
    {"CrashRestartBeforeAt",
     "scenario \"t\" {\n  horizon 4s\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  crash \"server\" 2s 1s\n}\n",
     "fault: crash restart (1.000s) must be after at (2.000s) (line 8)"},
    {"CrashWildcardHost",
     "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  crash \"*\" 1s 2s\n}\n",
     "fault: crash host must not be a wildcard (line 7)"},
    {"FaultWindowInverted",
     "scenario \"t\" {\n  horizon 4s\n}\ntenant \"a\" {\n  rate 10\n}\n"
     "fault {\n  drop \"a\" \"server\" 0.5 2s 1s\n}\n",
     "fault: drop window end (1.000s) must be after start (2.000s) (line 8)"},
};

class Reject : public ::testing::TestWithParam<RejectCase> {};

TEST_P(Reject, ExactDiagnostic) {
  Result<Scenario> result = load_string(GetParam().text);
  ASSERT_FALSE(result.is_ok()) << "malformed scenario was accepted";
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), GetParam().message);
}

INSTANTIATE_TEST_SUITE_P(
    Table, Reject, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<RejectCase>& info) {
      return info.param.name;
    });

// load_file on a missing path is kNotFound, not kInvalidArgument: callers
// distinguish "no such scenario" from "scenario is broken".
TEST(ScenarioValidator, MissingFileIsNotFound) {
  Result<Scenario> result = load_file("/nonexistent/path.scn");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(),
            "cannot read scenario file: /nonexistent/path.scn");
}

// The all-or-nothing contract: a minimal file loads with every documented
// default in place, so the rejection table above really is the only gate.
TEST(ScenarioValidator, MinimalScenarioLoadsWithDefaults) {
  Result<Scenario> result = load_string(
      "scenario \"tiny\" {\n}\ntenant \"a\" {\n  rate 10\n}\n");
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  const Scenario& scenario = *result;
  EXPECT_EQ(scenario.name, "tiny");
  EXPECT_EQ(scenario.seed, 1u);
  EXPECT_EQ(scenario.horizon, kSecond);
  ASSERT_EQ(scenario.sweep.size(), 1u);
  EXPECT_EQ(scenario.sweep[0], 1.0);
  EXPECT_EQ(scenario.server.mode, SchedulerMode::kSched);
  EXPECT_EQ(scenario.server.deadline_budget, 50 * kMillisecond);
  ASSERT_EQ(scenario.tenants.size(), 1u);
  EXPECT_EQ(scenario.tenants[0].name, "a");
  EXPECT_EQ(scenario.tenants[0].rate_per_sec, 10.0);
  EXPECT_EQ(scenario.tenants[0].cost_lo, 600);
  EXPECT_EQ(scenario.tenants[0].cost_hi, 1400);
  EXPECT_FALSE(scenario.ingestion.enabled);
}

// The ingestion block accepts the hybrid-provenance keys, and defaults
// keep the historical per-record behaviour.
TEST(ScenarioValidator, IngestionProvenanceKeys) {
  Result<Scenario> plain = load_string(
      "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
      "ingestion {\n  max_uploads 50\n}\n");
  ASSERT_TRUE(plain.is_ok()) << plain.status().message();
  EXPECT_EQ(plain->ingestion.provenance, ProvenanceMode::kPerRecord);
  EXPECT_EQ(plain->ingestion.audit_reads, 0u);

  Result<Scenario> anchored = load_string(
      "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
      "ingestion {\n  max_uploads 50\n  provenance anchored\n"
      "  audit_reads 16\n}\n");
  ASSERT_TRUE(anchored.is_ok()) << anchored.status().message();
  EXPECT_TRUE(anchored->ingestion.enabled);
  EXPECT_EQ(anchored->ingestion.provenance, ProvenanceMode::kAnchored);
  EXPECT_EQ(anchored->ingestion.audit_reads, 16u);
}

// The cluster scale-out keys decode with documented defaults, and the
// historical single-lake path stays the default (shard_hosts 0).
TEST(ScenarioValidator, IngestionShardKeys) {
  Result<Scenario> plain = load_string(
      "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
      "ingestion {\n  max_uploads 50\n}\n");
  ASSERT_TRUE(plain.is_ok()) << plain.status().message();
  EXPECT_EQ(plain->ingestion.shard_hosts, 0u);
  EXPECT_TRUE(plain->ingestion.crash_shard_host.empty());

  Result<Scenario> sharded = load_string(
      "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
      "ingestion {\n  max_uploads 50\n  shard_hosts 4\n  shard_vnodes 64\n"
      "  shard_replication 3\n  crash_shard_host \"shard-2\"\n}\n");
  ASSERT_TRUE(sharded.is_ok()) << sharded.status().message();
  EXPECT_EQ(sharded->ingestion.shard_hosts, 4u);
  EXPECT_EQ(sharded->ingestion.shard_vnodes, 64u);
  EXPECT_EQ(sharded->ingestion.shard_replication, 3u);
  EXPECT_EQ(sharded->ingestion.crash_shard_host, "shard-2");

  // Defaults when only shard_hosts is given: 128 vnodes, 2 copies.
  Result<Scenario> defaults = load_string(
      "scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n}\n"
      "ingestion {\n  shard_hosts 2\n}\n");
  ASSERT_TRUE(defaults.is_ok()) << defaults.status().message();
  EXPECT_EQ(defaults->ingestion.shard_vnodes, 128u);
  EXPECT_EQ(defaults->ingestion.shard_replication, 2u);
}

// Comments and blank lines are ignored everywhere; quoted names may hold
// spaces and '#' without starting a comment.
TEST(ScenarioValidator, CommentsAndQuotedNames) {
  Result<Scenario> result = load_string(
      "# leading comment\n"
      "scenario \"ward #3\" {  # trailing comment\n"
      "\n"
      "  seed 7   # per-entry comment\n"
      "}\n"
      "tenant \"icu east\" {\n"
      "  rate 10\n"
      "}\n");
  ASSERT_TRUE(result.is_ok()) << result.status().message();
  EXPECT_EQ(result->name, "ward #3");
  EXPECT_EQ(result->tenants[0].name, "icu east");
  EXPECT_EQ(result->seed, 7u);
}

// Every built-in network preset resolves without a network block.
TEST(ScenarioValidator, BuiltInNetworkPresetsResolve) {
  for (const char* preset :
       {"loopback", "lan", "wan", "mobile", "intercloud"}) {
    Result<Scenario> result = load_string(
        std::string("scenario \"t\" {\n}\ntenant \"a\" {\n  rate 10\n"
                    "  network \"") +
        preset + "\"\n}\n");
    ASSERT_TRUE(result.is_ok()) << preset << ": " << result.status().message();
    EXPECT_NE(result->network_for(result->tenants[0]), nullptr) << preset;
  }
}

}  // namespace
}  // namespace hc::scenario
