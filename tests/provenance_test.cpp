// Hybrid-storage provenance conformance (ROADMAP item 4).
//
// Four pillars:
//   * Merkle property suite — randomized trees across 1..4096 leaves
//     (odd widths, duplicate leaves): every leaf's proof verifies, and
//     every single-bit flip in the leaf, the path, or the root fails.
//   * Proof wire format — round-trips byte-exactly; truncations, trailing
//     bytes, length-field lies and bad side bytes are rejected cleanly.
//   * Anchoring — batch composition and roots are pure functions of the
//     event *set* (append order never matters), batch sizes follow the
//     AdaptiveBatcher plan, roots land in the chain state, and the
//     pipelined consensus schedule beats the serial one.
//   * Crash consistency — a commit-quorum outage mid-flush anchors
//     nothing (no partial roots), and the post-restart flush re-anchors
//     the identical roots byte for byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "blockchain/contracts.h"
#include "blockchain/ledger.h"
#include "common/clock.h"
#include "common/rng.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "fault/fault.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "platform/instance.h"
#include "provenance/provenance.h"

namespace hc {
namespace {

using blockchain::LedgerConfig;
using blockchain::PermissionedLedger;
using provenance::AnchorContract;
using provenance::AnchorerConfig;
using provenance::BatchAnchorer;
using provenance::ConsensusCostModel;
using provenance::MembershipProof;
using provenance::ProvenanceAuditor;
using provenance::ProvenanceEvent;

// ------------------------------------------------------- Merkle properties

std::vector<Bytes> random_leaves(Rng& rng, std::size_t n) {
  std::vector<Bytes> leaves;
  leaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // A quarter of the leaves duplicate an earlier one: equal payloads in
    // distinct positions must still prove individually.
    if (i > 0 && rng.bernoulli(0.25)) {
      leaves.push_back(leaves[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    } else {
      leaves.push_back(rng.bytes(1 + static_cast<std::size_t>(rng.uniform_int(0, 47))));
    }
  }
  return leaves;
}

class MerkleProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProperty, EveryLeafProves) {
  Rng rng(0x137 + GetParam());
  std::vector<Bytes> leaves = random_leaves(rng, GetParam());
  crypto::MerkleTree tree(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    crypto::MerkleProof proof = tree.prove(i);
    EXPECT_TRUE(crypto::MerkleTree::verify(leaves[i], proof, tree.root()))
        << "leaf " << i << " of " << leaves.size();
  }
  EXPECT_THROW(tree.prove(leaves.size()), std::out_of_range);
}

TEST_P(MerkleProperty, EverySingleBitFlipFails) {
  Rng rng(0x9b1 + GetParam());
  std::vector<Bytes> leaves = random_leaves(rng, GetParam());
  crypto::MerkleTree tree(leaves);
  // Exhaustive bit flips are quadratic in tree size; past a threshold,
  // spot-check a deterministic sample of leaves instead.
  std::vector<std::size_t> picks;
  if (leaves.size() <= 64) {
    for (std::size_t i = 0; i < leaves.size(); ++i) picks.push_back(i);
  } else {
    for (std::size_t i = 0; i < 16; ++i) {
      picks.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(leaves.size()) - 1)));
    }
  }
  for (std::size_t i : picks) {
    crypto::MerkleProof proof = tree.prove(i);
    // Flip every bit of the leaf payload.
    for (std::size_t byte = 0; byte < leaves[i].size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes mutated = leaves[i];
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_FALSE(crypto::MerkleTree::verify(mutated, proof, tree.root()))
            << "leaf bit " << byte << ":" << bit << " accepted";
      }
    }
    // Flip every bit of every path hash, and each side flag.
    for (std::size_t node = 0; node < proof.size(); ++node) {
      for (std::size_t byte = 0; byte < proof[node].hash.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
          crypto::MerkleProof mutated = proof;
          mutated[node].hash[byte] ^= static_cast<std::uint8_t>(1u << bit);
          EXPECT_FALSE(crypto::MerkleTree::verify(leaves[i], mutated, tree.root()))
              << "path " << node << " bit " << byte << ":" << bit << " accepted";
        }
      }
      crypto::MerkleProof flipped_side = proof;
      flipped_side[node].sibling_on_left = !flipped_side[node].sibling_on_left;
      bool ok =
          crypto::MerkleTree::verify(leaves[i], flipped_side, tree.root());
      // A flipped side bit may only verify when both operands of that
      // combine are identical bytes (duplicate-leaf corner); otherwise
      // the recomputed root must change.
      if (ok) {
        Bytes acc = crypto::MerkleTree::hash_leaf(leaves[i]);
        bool symmetric_level = false;
        for (std::size_t l = 0; l <= node; ++l) {
          if (l == node && proof[l].hash == acc) symmetric_level = true;
          acc = proof[l].sibling_on_left
                    ? crypto::MerkleTree::hash_interior(proof[l].hash, acc)
                    : crypto::MerkleTree::hash_interior(acc, proof[l].hash);
        }
        EXPECT_TRUE(symmetric_level)
            << "side flip at node " << node << " accepted non-symmetrically";
      }
    }
    // Flip every bit of the root.
    for (std::size_t byte = 0; byte < tree.root().size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        Bytes mutated = tree.root();
        mutated[byte] ^= static_cast<std::uint8_t>(1u << bit);
        EXPECT_FALSE(crypto::MerkleTree::verify(leaves[i], proof, mutated))
            << "root bit " << byte << ":" << bit << " accepted";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 13, 31, 32,
                                           33, 63, 100, 255, 256, 257, 1000,
                                           4096));

// ------------------------------------------------------------- wire format

ProvenanceEvent make_event(Rng& rng, const std::string& ref,
                           const std::string& event, std::uint32_t seq) {
  ProvenanceEvent e;
  e.record_ref = ref;
  e.content_hash = crypto::sha256(rng.bytes(16));
  e.event = event;
  e.seq = seq;
  e.payload_bytes = 1024;
  return e;
}

MembershipProof sample_proof() {
  Rng rng(0xabc);
  std::vector<Bytes> leaves = random_leaves(rng, 9);
  crypto::MerkleTree tree(leaves);
  MembershipProof proof;
  proof.batch_id = 7;
  proof.leaf = leaves[4];
  proof.path = tree.prove(4);
  proof.root = tree.root();
  return proof;
}

TEST(ProofWire, RoundTripsByteExactly) {
  MembershipProof proof = sample_proof();
  Bytes blob = provenance::serialize_proof(proof);
  auto parsed = provenance::parse_proof(blob);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->batch_id, proof.batch_id);
  EXPECT_EQ(parsed->leaf, proof.leaf);
  EXPECT_EQ(parsed->root, proof.root);
  ASSERT_EQ(parsed->path.size(), proof.path.size());
  for (std::size_t i = 0; i < proof.path.size(); ++i) {
    EXPECT_EQ(parsed->path[i].hash, proof.path[i].hash);
    EXPECT_EQ(parsed->path[i].sibling_on_left, proof.path[i].sibling_on_left);
  }
  EXPECT_EQ(provenance::serialize_proof(*parsed), blob);
  EXPECT_TRUE(ProvenanceAuditor::verify(*parsed));
}

TEST(ProofWire, RejectsEveryTruncation) {
  Bytes blob = provenance::serialize_proof(sample_proof());
  for (std::size_t len = 0; len < blob.size(); ++len) {
    Bytes prefix(blob.begin(), blob.begin() + static_cast<std::ptrdiff_t>(len));
    auto parsed = provenance::parse_proof(prefix);
    EXPECT_FALSE(parsed.is_ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  Bytes padded = blob;
  padded.push_back(0x00);
  EXPECT_FALSE(provenance::parse_proof(padded).is_ok());
}

TEST(ProofWire, RejectsLengthFieldLies) {
  Bytes blob = provenance::serialize_proof(sample_proof());
  // Claim a 4 GiB leaf: must be rejected by the cap, not by an allocation.
  Bytes lie = blob;
  lie[12] = 0xff;
  lie[13] = 0xff;
  lie[14] = 0xff;
  lie[15] = 0xff;
  EXPECT_FALSE(provenance::parse_proof(lie).is_ok());
  // Claim 2^32-1 path nodes.
  lie = blob;
  lie[16] = 0xff;
  lie[17] = 0xff;
  lie[18] = 0xff;
  lie[19] = 0xff;
  EXPECT_FALSE(provenance::parse_proof(lie).is_ok());
  // Zero-length leaf.
  lie = blob;
  lie[12] = lie[13] = lie[14] = lie[15] = 0;
  EXPECT_FALSE(provenance::parse_proof(lie).is_ok());
}

// --------------------------------------------------------------- anchoring

struct AnchorStack {
  explicit AnchorStack(AnchorerConfig config = {})
      : clock(make_clock()),
        ledger(LedgerConfig{{"p0", "p1", "p2"}}, clock),
        anchorer_config(std::move(config)) {
    EXPECT_TRUE(BatchAnchorer::register_contract(ledger).is_ok());
    anchorer = std::make_unique<BatchAnchorer>(ledger, clock, anchorer_config,
                                               metrics);
  }

  ClockPtr clock;
  PermissionedLedger ledger;
  AnchorerConfig anchorer_config;
  obs::MetricsPtr metrics = obs::make_metrics();
  std::unique_ptr<BatchAnchorer> anchorer;
};

std::vector<ProvenanceEvent> workload(std::size_t records) {
  Rng rng(0x777);
  std::vector<ProvenanceEvent> events;
  for (std::size_t i = 0; i < records; ++i) {
    std::string ref = "ref-" + std::to_string(i);
    ProvenanceEvent received = make_event(rng, ref, "received", 0);
    ProvenanceEvent anonymized = received;
    anonymized.event = "anonymized";
    anonymized.seq = 1;
    events.push_back(received);
    events.push_back(anonymized);
  }
  return events;
}

std::vector<std::string> anchored_roots(const BatchAnchorer& anchorer) {
  std::vector<std::string> roots;
  for (const auto& batch : anchorer.batches()) {
    roots.push_back(hex_encode(batch.tree.root()));
  }
  return roots;
}

TEST(Anchoring, RootsAreAppendOrderInvariant) {
  std::vector<ProvenanceEvent> events = workload(100);

  AnchorStack forward;
  for (const ProvenanceEvent& e : events) forward.anchorer->append(e);
  ASSERT_TRUE(forward.anchorer->flush().is_ok());

  AnchorStack shuffled;
  std::vector<ProvenanceEvent> mixed = events;
  Rng(42).shuffle(mixed);
  for (const ProvenanceEvent& e : mixed) shuffled.anchorer->append(e);
  ASSERT_TRUE(shuffled.anchorer->flush().is_ok());

  EXPECT_EQ(anchored_roots(*forward.anchorer), anchored_roots(*shuffled.anchorer));
  EXPECT_EQ(forward.anchorer->sealed_batches(), shuffled.anchorer->sealed_batches());
  EXPECT_EQ(forward.anchorer->anchored_events(), shuffled.anchorer->anchored_events());
}

TEST(Anchoring, BatchSizesFollowTheSchedulerPlan) {
  AnchorStack stack;
  std::vector<ProvenanceEvent> events = workload(150);  // 300 events
  for (const ProvenanceEvent& e : events) stack.anchorer->append(e);
  ASSERT_TRUE(stack.anchorer->flush().is_ok());

  sched::AdaptiveBatcher reference(stack.anchorer_config.batcher);
  std::vector<std::size_t> plan = reference.plan(events.size());
  ASSERT_EQ(stack.anchorer->sealed_batches(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(stack.anchorer->batches()[i].events.size(), plan[i]) << i;
  }
}

TEST(Anchoring, RootsLandInChainStateAndChainValidates) {
  AnchorStack stack;
  for (const ProvenanceEvent& e : workload(40)) stack.anchorer->append(e);
  ASSERT_TRUE(stack.anchorer->flush().is_ok());
  ASSERT_GT(stack.anchorer->anchored_batches(), 0u);

  for (const auto& batch : stack.anchorer->batches()) {
    auto root = stack.ledger.state_value(
        std::string(AnchorContract::kName),
        "batch/" + std::to_string(batch.batch_id) + "/root");
    ASSERT_TRUE(root.is_ok());
    EXPECT_EQ(*root, hex_encode(batch.tree.root()));
    EXPECT_FALSE(batch.tx_id.empty());
  }
  EXPECT_TRUE(stack.ledger.validate_chain().is_ok());
  EXPECT_EQ(stack.anchorer->bytes_onchain(),
            stack.anchorer->anchored_batches() *
                stack.anchorer_config.manifest_bytes);
  EXPECT_EQ(stack.anchorer->bytes_offchain(), 80u * 1024u);
}

TEST(Anchoring, DuplicateAnchorIsRejectedByTheContract) {
  AnchorStack stack;
  for (const ProvenanceEvent& e : workload(4)) stack.anchorer->append(e);
  ASSERT_TRUE(stack.anchorer->flush().is_ok());
  const auto& batch = stack.anchorer->batches()[0];
  auto dup = stack.ledger.submit(std::string(AnchorContract::kName),
                                 {{"action", "anchor_batch"},
                                  {"batch_id", std::to_string(batch.batch_id)},
                                  {"root", hex_encode(batch.tree.root())},
                                  {"leaf_count", "1"},
                                  {"manifest", "dup"}},
                                 "attacker");
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(Anchoring, PipelinedConsensusBeatsSerial) {
  AnchorerConfig config;
  config.costs = ConsensusCostModel{};
  AnchorStack stack(config);
  for (const ProvenanceEvent& e : workload(500)) stack.anchorer->append(e);
  SimTime before = stack.clock->now();
  ASSERT_TRUE(stack.anchorer->flush().is_ok());
  ASSERT_GT(stack.anchorer->sealed_batches(), 1u);

  EXPECT_GT(stack.anchorer->anchor_us_total(), 0);
  EXPECT_LT(stack.anchorer->anchor_us_total(),
            stack.anchorer->anchor_serial_us_total());
  EXPECT_EQ(stack.clock->now() - before, stack.anchorer->anchor_us_total());
}

TEST(Anchoring, HybridIsOrdersOfMagnitudeCheaperThanFullRecord) {
  ConsensusCostModel costs;
  AnchorerConfig hybrid_config;
  hybrid_config.costs = costs;
  AnchorStack hybrid(hybrid_config);

  AnchorerConfig full_config;
  full_config.mode = AnchorerConfig::Mode::kFullRecord;
  full_config.costs = costs;
  AnchorStack full(full_config);

  std::vector<ProvenanceEvent> events = workload(64);
  for (const ProvenanceEvent& e : events) {
    hybrid.anchorer->append(e);
    full.anchorer->append(e);
  }
  ASSERT_TRUE(hybrid.anchorer->flush().is_ok());
  ASSERT_TRUE(full.anchorer->flush().is_ok());

  EXPECT_EQ(full.anchorer->sealed_batches(), events.size());  // one per event
  EXPECT_GT(full.anchorer->bytes_onchain(), hybrid.anchorer->bytes_onchain());
  // The tentpole claim in miniature: anchoring must cost far less than the
  // seed's per-record consensus path on the same workload.
  EXPECT_LT(hybrid.anchorer->anchor_us_total() * 10,
            full.anchorer->anchor_us_total());
}

// ----------------------------------------------------------------- auditor

TEST(Auditor, ServesVerifiableProofsAndRefusesUnknownRecords) {
  AnchorStack stack;
  std::vector<ProvenanceEvent> events = workload(25);
  for (const ProvenanceEvent& e : events) stack.anchorer->append(e);
  ASSERT_TRUE(stack.anchorer->flush().is_ok());

  ProvenanceAuditor auditor(*stack.anchorer, stack.ledger, stack.clock,
                            stack.metrics);
  for (const ProvenanceEvent& e : events) {
    auto proof = auditor.prove(e.record_ref, e.event);
    ASSERT_TRUE(proof.is_ok()) << e.record_ref << "/" << e.event;
    EXPECT_TRUE(ProvenanceAuditor::verify(*proof));
    EXPECT_TRUE(auditor.verify_onchain(*proof).is_ok());
    EXPECT_EQ(proof->leaf, provenance::leaf_bytes(e));
  }
  EXPECT_EQ(auditor.prove("ref-404").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(auditor.prove("ref-1", "teleported").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(stack.metrics->counter("hc.prov.proofs_served"), 50u);
}

TEST(Auditor, RejectsProofAgainstTheWrongAnchoredRoot) {
  AnchorStack stack;
  for (const ProvenanceEvent& e : workload(40)) stack.anchorer->append(e);
  ASSERT_TRUE(stack.anchorer->flush().is_ok());
  ASSERT_GT(stack.anchorer->sealed_batches(), 1u);

  ProvenanceAuditor auditor(*stack.anchorer, stack.ledger);
  auto proof = auditor.prove(stack.anchorer->batches()[0].events[0].record_ref,
                             stack.anchorer->batches()[0].events[0].event);
  ASSERT_TRUE(proof.is_ok());
  // Point the proof at a different (validly anchored) batch: the path
  // still verifies in isolation but the chain disagrees.
  proof->batch_id = stack.anchorer->batches()[1].batch_id;
  EXPECT_TRUE(ProvenanceAuditor::verify(*proof));
  auto onchain = auditor.verify_onchain(*proof);
  EXPECT_EQ(onchain.code(), StatusCode::kIntegrityError);
  // And at a batch id that was never anchored.
  proof->batch_id = 999;
  EXPECT_EQ(auditor.verify_onchain(*proof).code(), StatusCode::kNotFound);
}

// --------------------------------------------------------- crash consistency

class CrashConsistency : public ::testing::Test {
 protected:
  CrashConsistency() : clock_(make_clock()), network_(clock_, Rng(170)) {
    for (const char* peer : {"p1", "p2", "p3", "p4"}) {
      network_.set_link("p0", peer, net::LinkProfile::lan());
    }
  }

  std::unique_ptr<PermissionedLedger> make_ledger() {
    LedgerConfig config;
    config.peers = {"p0", "p1", "p2", "p3", "p4"};
    config.max_unresponsive_fraction = 0.34;  // 5 peers: needs 4 responsive
    auto ledger = std::make_unique<PermissionedLedger>(config, clock_, nullptr,
                                                       &network_, metrics_);
    EXPECT_TRUE(BatchAnchorer::register_contract(*ledger).is_ok());
    return ledger;
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  obs::MetricsPtr metrics_ = obs::make_metrics();
};

TEST_F(CrashConsistency, OutageAnchorsNothingThenRecoveryConvergesByteForByte) {
  std::vector<ProvenanceEvent> events = workload(30);

  // Control run: no faults, same events — the roots recovery must match.
  auto control_ledger = make_ledger();
  BatchAnchorer control(*control_ledger, clock_);
  for (const ProvenanceEvent& e : events) control.append(e);
  ASSERT_TRUE(control.flush().is_ok());
  std::vector<std::string> expected_roots = anchored_roots(control);

  // Crashed run: two peers die before the flush, so the commit quorum
  // (4 of 5) is unreachable for the whole first attempt.
  SimTime outage_end = clock_->now() + 5 * kSecond;
  fault::FaultPlan plan;
  plan.crash("p3", 0, outage_end);
  plan.crash("p4", 0, outage_end);
  network_.set_fault_injector(fault::make_injector(plan, clock_, Rng(557)));

  auto ledger = make_ledger();
  BatchAnchorer anchorer(*ledger, clock_);
  for (const ProvenanceEvent& e : events) anchorer.append(e);

  Status deferred = anchorer.flush();
  EXPECT_EQ(deferred.code(), StatusCode::kUnavailable);
  // All-or-nothing: the flush sealed every batch but anchored none, and
  // no partial root reached the chain state.
  EXPECT_GT(anchorer.sealed_batches(), 0u);
  EXPECT_EQ(anchorer.anchored_batches(), 0u);
  for (const auto& batch : anchorer.batches()) {
    EXPECT_FALSE(ledger
                     ->state_value(std::string(AnchorContract::kName),
                                   "batch/" + std::to_string(batch.batch_id) +
                                       "/root")
                     .is_ok());
  }
  // A proof request for a sealed-but-unanchored event is refused, not
  // served against an unanchored root.
  ProvenanceAuditor auditor(anchorer, *ledger);
  EXPECT_EQ(auditor.prove(events[0].record_ref).status().code(),
            StatusCode::kFailedPrecondition);

  // Recovery: hosts restart, the next flush anchors the identical batches.
  clock_->advance_to(outage_end);
  ASSERT_TRUE(anchorer.flush().is_ok());
  EXPECT_EQ(anchorer.anchored_batches(), anchorer.sealed_batches());
  EXPECT_EQ(anchored_roots(anchorer), expected_roots);
  EXPECT_TRUE(ledger->validate_chain().is_ok());
  for (const ProvenanceEvent& e : events) {
    auto proof = auditor.prove(e.record_ref, e.event);
    ASSERT_TRUE(proof.is_ok());
    EXPECT_TRUE(auditor.verify_onchain(*proof).is_ok());
  }
}

TEST_F(CrashConsistency, AbortedCommitLeavesPoolRetryableNotPartial) {
  // Endorsement succeeds while every peer is up; the crash window opens
  // before the commit votes, so the block aborts and returns to the pool.
  std::vector<ProvenanceEvent> events = workload(10);
  auto ledger = make_ledger();
  BatchAnchorer anchorer(*ledger, clock_);
  for (const ProvenanceEvent& e : events) anchorer.append(e);

  // Find when endorsement will be done by dry-running on sim time: crash
  // from "shortly after now" so the submit round completes but the commit
  // votes land inside the outage.
  SimTime start = clock_->now() + 1;  // after the first broadcast begins
  SimTime outage_end = clock_->now() + 10 * kSecond;
  fault::FaultPlan plan;
  plan.crash("p3", start, outage_end);
  plan.crash("p4", start, outage_end);
  network_.set_fault_injector(fault::make_injector(plan, clock_, Rng(558)));

  Status deferred = anchorer.flush();
  EXPECT_FALSE(deferred.is_ok());
  EXPECT_EQ(anchorer.anchored_batches(), 0u);

  clock_->advance_to(outage_end);
  ASSERT_TRUE(anchorer.flush().is_ok());
  EXPECT_EQ(anchorer.anchored_batches(), anchorer.sealed_batches());
  EXPECT_EQ(ledger->pending_count(), 0u);
  EXPECT_TRUE(ledger->validate_chain().is_ok());
}

// ------------------------------------------------- platform end-to-end flag

TEST(PlatformHybrid, FlagKeepsSeedBehaviourWhenOff) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(9));
  platform::InstanceConfig config;
  platform::HealthCloudInstance instance(config, clock, network);
  EXPECT_EQ(instance.anchorer(), nullptr);
  EXPECT_EQ(instance.auditor(), nullptr);
}

TEST(PlatformHybrid, FlagWiresAnchorerAndAuditor) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(9));
  platform::InstanceConfig config;
  config.hybrid_provenance = true;
  platform::HealthCloudInstance instance(config, clock, network);
  ASSERT_NE(instance.anchorer(), nullptr);
  ASSERT_NE(instance.auditor(), nullptr);
  EXPECT_EQ(instance.anchorer()->buffered(), 0u);
}

}  // namespace
}  // namespace hc
