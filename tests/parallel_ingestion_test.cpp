// Parallel ingestion tests (`ctest -L exec`): N workers draining a fixed
// mixed queue must land on exactly the serial end-state — same lake
// contents, reject tallies, ledger entry counts, and aggregate metrics —
// order-insensitively; the shared clock must advance by the deterministic
// ideal makespan ceil(total/n_workers); and repeated parallel runs of the
// same seeded workload must be bit-identical. Also the 8-thread stress
// tests for the sharded DataLake / metadata / re-identification stores
// that `check-tsan` runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>
#include <vector>

#include "blockchain/contracts.h"
#include "exec/executor.h"
#include "fhir/synthetic.h"
#include "ingestion/ingestion.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace hc::ingestion {
namespace {

// The whole platform stack wired exactly like tests/ingestion_test.cpp's
// PipelineFixture (same seeds: rng 70, kms 71, lake 72; verifier min_k=1;
// three-peer ledger without a network). A plain struct instead of a test
// fixture so one TEST can stand up several identical stacks and process
// them with different worker counts.
struct Stack {
  ClockPtr clock = make_clock();
  LogPtr log = make_log(clock);
  Rng rng{70};
  crypto::KeyManagementService kms{"tenant-a", Rng(71), log};
  storage::StagingArea staging;
  storage::MessageQueue queue;
  storage::StatusTracker tracker;
  storage::DataLake lake{kms, "platform", Rng(72)};
  storage::MetadataStore metadata;
  privacy::AnonymizationVerificationService verifier{
      privacy::FieldSchema::standard_patient(), 0.99, 1};
  privacy::ReidentificationMap reid_map;
  obs::MetricsPtr metrics = obs::make_metrics();
  std::unique_ptr<blockchain::PermissionedLedger> ledger;
  crypto::KeyId lake_key;
  crypto::KeyId client_key;
  std::unique_ptr<IngestionService> service;

  Stack() {
    blockchain::LedgerConfig config;
    config.peers = {"peer-a", "peer-b", "peer-c"};
    ledger = std::make_unique<blockchain::PermissionedLedger>(config, clock, log);
    EXPECT_TRUE(blockchain::register_hcls_contracts(*ledger).is_ok());
    lake_key = kms.create_symmetric_key("platform");

    IngestionDeps deps;
    deps.clock = clock;
    deps.log = log;
    deps.kms = &kms;
    deps.staging = &staging;
    deps.queue = &queue;
    deps.tracker = &tracker;
    deps.lake = &lake;
    deps.metadata = &metadata;
    deps.ledger = ledger.get();
    deps.verifier = &verifier;
    deps.reid_map = &reid_map;
    deps.metrics = metrics;
    service = std::make_unique<IngestionService>(deps, lake_key,
                                                 to_bytes("pseudo-key"), "platform");

    client_key = kms.create_keypair("clinic-a");
    EXPECT_TRUE(kms.authorize(client_key, "clinic-a", "platform").is_ok());
  }

  void grant_consent(const std::string& patient_id) {
    ASSERT_TRUE(ledger
                    ->submit_and_commit("consent",
                                        {{"action", "grant"},
                                         {"patient", patient_id},
                                         {"group", "study-a"}},
                                        "healthcare-provider")
                    .is_ok());
  }

  void upload(const fhir::Bundle& bundle) {
    auto pub = kms.public_key(client_key);
    ASSERT_TRUE(pub.is_ok());
    auto envelope = crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng);
    ASSERT_TRUE(
        service->upload(envelope, "clinic-a", "study-a", client_key).is_ok());
  }

  /// The fixed 50-upload workload every test in this file reasons about:
  /// indices 0-4 carry the malware signature (consented), 5-7 have no
  /// consent grant, 8-49 are clean — so a full drain stores 42 and rejects
  /// 5 as malware + 3 for missing consent, regardless of processing order.
  void enqueue_mixed(std::size_t n = 50) {
    for (std::size_t i = 0; i < n; ++i) {
      fhir::Bundle bundle = fhir::make_synthetic_bundle(
          rng, "bundle-t" + std::to_string(i), i);
      const std::string patient_id =
          std::get<fhir::Patient>(bundle.resources[0]).id;
      if (i < 5 || i >= 8) grant_consent(patient_id);
      if (i < 5) {
        std::get<fhir::Patient>(bundle.resources[0]).address =
            to_string(test_malware_payload());
      }
      upload(bundle);
    }
  }

  std::set<std::string> study_pseudonyms() const {
    std::set<std::string> pseudonyms;
    for (const auto& md : metadata.by_group("study-a")) {
      pseudonyms.insert(md.pseudonym);
    }
    return pseudonyms;
  }
};

constexpr std::size_t kUploads = 50;
constexpr std::size_t kStoredExpected = 42;  // 50 - 5 malware - 3 no-consent

void expect_mixed_end_state(const Stack& stack) {
  EXPECT_TRUE(stack.queue.empty());
  EXPECT_EQ(stack.staging.size(), 0u) << "staging cleaned for every verdict";
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.uploads"), kUploads);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.stored"), kStoredExpected);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.rejects"), 8u);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.reject.malware"), 5u);
  EXPECT_EQ(stack.metrics->counter("hc.ingestion.reject.consent"), 3u);
  // De-identified + retained original per stored record.
  EXPECT_EQ(stack.lake.object_count(), 2 * kStoredExpected);
  EXPECT_EQ(stack.metadata.size(), 2 * kStoredExpected);
  EXPECT_EQ(stack.reid_map.size(), kStoredExpected);  // 42 distinct patients
  EXPECT_EQ(
      blockchain::MalwareContract::infected_count(*stack.ledger, "clinic-a"), 5u);
  EXPECT_TRUE(stack.ledger->validate_chain().is_ok());
}

TEST(ParallelIngestion, FourWorkersMatchSerialEndStateOrderInsensitively) {
  Stack serial;
  Stack parallel;
  serial.enqueue_mixed();
  parallel.enqueue_mixed();

  SimTime serial_start = serial.clock->now();
  EXPECT_EQ(serial.service->process_all(/*n_workers=*/0), kStoredExpected);
  SimTime serial_elapsed = serial.clock->now() - serial_start;

  SimTime parallel_start = parallel.clock->now();
  EXPECT_EQ(parallel.service->process_all(/*n_workers=*/4), kStoredExpected);
  SimTime parallel_elapsed = parallel.clock->now() - parallel_start;

  expect_mixed_end_state(serial);
  expect_mixed_end_state(parallel);

  // Same patients stored -> same pseudonym set (pseudonyms derive from the
  // patient id + pseudonym key, independent of processing order).
  EXPECT_EQ(serial.study_pseudonyms(), parallel.study_pseudonyms());
  // Same ledger entry set: every consent grant, malware report, provenance
  // pair, and privacy degree committed exactly once in both runs.
  EXPECT_EQ(serial.ledger->chain().size(), parallel.ledger->chain().size());

  // Aggregate metrics are order-independent: counter adds and histogram
  // merges commute, and both paths charge identical per-stage costs — so
  // the exported documents match byte for byte.
  EXPECT_EQ(obs::to_json(*serial.metrics), obs::to_json(*parallel.metrics));

  // Deterministic speedup: total stage cost is a workload property, the
  // parallel clock advances once by the ideal makespan ceil(total / 4).
  EXPECT_EQ(parallel_elapsed, (serial_elapsed + 3) / 4);
  EXPECT_GE(serial_elapsed, 2 * parallel_elapsed)
      << "4 workers must be at least 2x serial in sim time";
}

TEST(ParallelIngestion, SerialWorkerCountsReproduceTheGoldenPathExactly) {
  // n_workers 0, n_workers 1, and a process_next() loop are the same
  // historical serial path: byte-identical metrics and identical sim time.
  Stack by_next;
  Stack zero_workers;
  Stack one_worker;
  by_next.enqueue_mixed();
  zero_workers.enqueue_mixed();
  one_worker.enqueue_mixed();

  std::size_t stored = 0;
  while (by_next.service->process_next().is_ok()) ++stored;
  // process_next() reports rejects as ok outcomes; count via metrics.
  EXPECT_EQ(by_next.metrics->counter("hc.ingestion.stored"), kStoredExpected);
  EXPECT_EQ(zero_workers.service->process_all(0), kStoredExpected);
  EXPECT_EQ(one_worker.service->process_all(1), kStoredExpected);

  std::string golden = obs::to_json(*by_next.metrics);
  EXPECT_EQ(obs::to_json(*zero_workers.metrics), golden);
  EXPECT_EQ(obs::to_json(*one_worker.metrics), golden);
  EXPECT_EQ(zero_workers.clock->now(), by_next.clock->now());
  EXPECT_EQ(one_worker.clock->now(), by_next.clock->now());
}

TEST(ParallelIngestion, RepeatedParallelRunsAreDeterministic) {
  // Five fresh stacks, same seeds, 4 workers each: identical stored counts,
  // final sim time, and aggregate metrics documents on every run.
  std::string first_json;
  SimTime first_clock = 0;
  for (int run = 0; run < 5; ++run) {
    Stack stack;
    stack.enqueue_mixed();
    EXPECT_EQ(stack.service->process_all(4), kStoredExpected) << "run " << run;
    std::string json = obs::to_json(*stack.metrics);
    if (run == 0) {
      first_json = json;
      first_clock = stack.clock->now();
    } else {
      EXPECT_EQ(json, first_json) << "metrics diverged on run " << run;
      EXPECT_EQ(stack.clock->now(), first_clock) << "sim time diverged on run " << run;
    }
  }
}

TEST(ParallelIngestion, WorkerCountChangesMakespanButNotAggregates) {
  Stack two;
  Stack eight;
  two.enqueue_mixed();
  eight.enqueue_mixed();
  EXPECT_EQ(two.service->process_all(2), kStoredExpected);
  EXPECT_EQ(eight.service->process_all(8), kStoredExpected);
  // What was recorded is worker-count independent...
  EXPECT_EQ(obs::to_json(*two.metrics), obs::to_json(*eight.metrics));
  // ...while sim time shrinks with the worker count.
  EXPECT_GT(two.clock->now(), eight.clock->now());
}

// --- sharded-store stress (the `check-tsan` hot spots) ---------------------

TEST(DataLakeConcurrency, EightThreadPutGetEraseStress) {
  auto clock = make_clock();
  auto log = make_log(clock);
  crypto::KeyManagementService kms("tenant-a", Rng(90), log);
  storage::DataLake lake(kms, "platform", Rng(91));
  auto key = kms.create_symmetric_key("platform");

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 40;
  std::array<std::vector<std::string>, kThreads> refs;
  std::array<std::vector<Bytes>, kThreads> payloads;

  exec::parallel_for(kThreads, kThreads, [&](std::size_t w) {
    for (std::size_t i = 0; i < kOpsPerThread; ++i) {
      Bytes payload =
          to_bytes("record-" + std::to_string(w) + "-" + std::to_string(i));
      auto ref = lake.put(payload, key);
      ASSERT_TRUE(ref.is_ok());
      refs[w].push_back(*ref);
      payloads[w].push_back(std::move(payload));
      // Interleave reads and scans with other threads' writes.
      EXPECT_TRUE(lake.contains(refs[w].front()));
      auto back = lake.get(refs[w][i / 2]);
      EXPECT_TRUE(back.is_ok());
      (void)lake.object_count();
      (void)lake.stored_bytes();
    }
    for (std::size_t i = 0; i < kOpsPerThread; i += 2) {
      EXPECT_TRUE(lake.erase(refs[w][i]).is_ok());
    }
  });

  EXPECT_EQ(lake.object_count(), kThreads * kOpsPerThread / 2);
  EXPECT_EQ(lake.references().size(), kThreads * kOpsPerThread / 2);
  // Every survivor decrypts back to exactly what its writer stored.
  for (std::size_t w = 0; w < kThreads; ++w) {
    for (std::size_t i = 1; i < kOpsPerThread; i += 2) {
      auto back = lake.get(refs[w][i]);
      ASSERT_TRUE(back.is_ok());
      EXPECT_EQ(*back, payloads[w][i]);
    }
  }
}

TEST(MetadataStoreConcurrency, EightThreadPutScanStress) {
  storage::MetadataStore metadata;
  privacy::ReidentificationMap reid_map;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRecordsPerThread = 50;

  exec::parallel_for(kThreads, kThreads, [&](std::size_t w) {
    for (std::size_t i = 0; i < kRecordsPerThread; ++i) {
      std::string suffix = std::to_string(w) + "-" + std::to_string(i);
      storage::RecordMetadata md;
      md.reference_id = "ref-" + suffix;
      md.pseudonym = "pseu-" + suffix;
      md.consent_group = "study-a";
      md.schema = "fhir-bundle";
      md.privacy_level = "de-identified";
      EXPECT_TRUE(metadata.put(md).is_ok());
      reid_map.record(md.pseudonym, "patient-" + suffix);
      // Scans race against other threads' puts.
      EXPECT_EQ(metadata.by_pseudonym(md.pseudonym).size(), 1u);
      (void)metadata.by_group("study-a");
      (void)metadata.size();
      (void)reid_map.size();
    }
  });

  EXPECT_EQ(metadata.size(), kThreads * kRecordsPerThread);
  EXPECT_EQ(metadata.by_group("study-a").size(), kThreads * kRecordsPerThread);
  EXPECT_EQ(reid_map.size(), kThreads * kRecordsPerThread);
  EXPECT_EQ(reid_map.identity("pseu-3-7").value(), "patient-3-7");
}

}  // namespace
}  // namespace hc::ingestion
