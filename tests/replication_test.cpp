// HA/DR data-lake replication (Section II.B).
#include <gtest/gtest.h>

#include "storage/replication.h"

namespace hc::storage {
namespace {

class ReplicationFixture : public ::testing::Test {
 protected:
  ReplicationFixture() : kms_("tenant", Rng(180)) {
    key_ = kms_.create_symmetric_key("storage");
    for (int i = 0; i < 3; ++i) {
      lakes_.push_back(std::make_unique<DataLake>(kms_, "storage", Rng(181 + i)));
    }
    replicated_ = std::make_unique<ReplicatedDataLake>(
        std::vector<DataLake*>{lakes_[0].get(), lakes_[1].get(), lakes_[2].get()});
  }

  crypto::KeyManagementService kms_;
  crypto::KeyId key_;
  std::vector<std::unique_ptr<DataLake>> lakes_;
  std::unique_ptr<ReplicatedDataLake> replicated_;
};

TEST_F(ReplicationFixture, WritesReachAllReplicas) {
  auto ref = replicated_->put(to_bytes("record"), key_);
  ASSERT_TRUE(ref.is_ok());
  EXPECT_EQ(replicated_->copies_of(*ref), 3u);
  for (auto& lake : lakes_) {
    EXPECT_EQ(to_string(lake->get(*ref).value()), "record");
  }
}

TEST_F(ReplicationFixture, ReadsFailOverWhenReplicaDies) {
  auto ref = replicated_->put(to_bytes("survivable"), key_);
  ASSERT_TRUE(ref.is_ok());
  replicated_->fail_replica(0);
  EXPECT_EQ(to_string(replicated_->get(*ref).value()), "survivable");
  replicated_->fail_replica(1);
  EXPECT_EQ(to_string(replicated_->get(*ref).value()), "survivable");
}

TEST_F(ReplicationFixture, ReadsFailOverPastCorruptedReplica) {
  auto ref = replicated_->put(to_bytes("authentic"), key_);
  ASSERT_TRUE(ref.is_ok());
  // Replica 0 silently corrupts its copy; the authenticated read detects
  // it and the replicated lake serves from a healthy peer.
  ASSERT_TRUE(lakes_[0]->tamper_for_test(*ref).is_ok());
  EXPECT_EQ(lakes_[0]->get(*ref).status().code(), StatusCode::kIntegrityError);
  EXPECT_EQ(to_string(replicated_->get(*ref).value()), "authentic");
}

TEST_F(ReplicationFixture, WritesSucceedWithQuorumFailWithout) {
  replicated_->fail_replica(2);
  auto ref = replicated_->put(to_bytes("two-of-three"), key_);
  ASSERT_TRUE(ref.is_ok());  // 2/3 >= majority
  EXPECT_EQ(replicated_->copies_of(*ref), 2u);

  replicated_->fail_replica(1);
  auto refused = replicated_->put(to_bytes("one-of-three"), key_);
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  // Failed writes leave no partial copies on the surviving replica.
  EXPECT_EQ(lakes_[0]->object_count(), 1u);
}

TEST_F(ReplicationFixture, RepairBackfillsRecoveredReplica) {
  replicated_->fail_replica(2);
  auto ref = replicated_->put(to_bytes("written during outage"), key_);
  ASSERT_TRUE(ref.is_ok());
  EXPECT_FALSE(lakes_[2]->contains(*ref));

  replicated_->recover_replica(2);
  EXPECT_EQ(replicated_->repair(), 1u);
  EXPECT_EQ(replicated_->copies_of(*ref), 3u);
  EXPECT_EQ(to_string(lakes_[2]->get(*ref).value()), "written during outage");
  // Repair is idempotent.
  EXPECT_EQ(replicated_->repair(), 0u);
}

TEST_F(ReplicationFixture, EraseRemovesFromAllAvailableReplicas) {
  auto ref = replicated_->put(to_bytes("to delete"), key_);
  ASSERT_TRUE(ref.is_ok());
  ASSERT_TRUE(replicated_->erase(*ref).is_ok());
  EXPECT_EQ(replicated_->copies_of(*ref), 0u);
  EXPECT_EQ(replicated_->erase(*ref).code(), StatusCode::kNotFound);
}

TEST_F(ReplicationFixture, AllReplicasDownIsUnavailable) {
  auto ref = replicated_->put(to_bytes("x"), key_);
  ASSERT_TRUE(ref.is_ok());
  for (std::size_t i = 0; i < 3; ++i) replicated_->fail_replica(i);
  EXPECT_EQ(replicated_->put(to_bytes("y"), key_).status().code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(replicated_->get(*ref).is_ok());
}

TEST(Replication, ConstructionGuards) {
  EXPECT_THROW(ReplicatedDataLake({}), std::invalid_argument);
  crypto::KeyManagementService kms("t", Rng(1));
  DataLake lake(kms, "s", Rng(2));
  EXPECT_THROW(ReplicatedDataLake({&lake}, 5), std::invalid_argument);
}

TEST(Replication, SealedReplicationNeverDecrypts) {
  // The importing replica's KMS principal has NO access to the key, yet
  // replication still works — proof the ciphertext moves sealed.
  crypto::KeyManagementService kms("t", Rng(3));
  auto key = kms.create_symmetric_key("writer");
  DataLake primary(kms, "writer", Rng(4));
  DataLake mirror(kms, "mirror-no-key-access", Rng(5));

  auto ref = primary.put(to_bytes("sealed payload"), key);
  ASSERT_TRUE(ref.is_ok());
  auto sealed = primary.export_object(*ref);
  ASSERT_TRUE(sealed.is_ok());
  ASSERT_TRUE(mirror.import_object(*ref, *sealed).is_ok());

  // The mirror holds the bytes but cannot read them...
  EXPECT_EQ(mirror.get(*ref).status().code(), StatusCode::kPermissionDenied);
  // ...while the authorized principal can, from either replica's bytes.
  EXPECT_EQ(to_string(primary.get(*ref).value()), "sealed payload");
}

}  // namespace
}  // namespace hc::storage
