// Conformance tests for the second-order solver building blocks
// (src/analytics/solver/): truncated CG on hand-computed SPD systems,
// backtracking-Armijo schedules pinned step by step, and newton_step on
// exact quadratics where the answer is known in closed form. Determinism
// is part of the contract: identical inputs must give byte-identical
// trajectories for any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "analytics/kernels.h"
#include "analytics/matrix.h"
#include "analytics/solver/cg.h"
#include "analytics/solver/line_search.h"
#include "analytics/solver/newton.h"
#include "common/rng.h"

namespace hc::analytics::solver {
namespace {

bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// -------------------------------------------------------------------- CG

TEST(Cg, SolvesHandComputedSpdSystem) {
  // H = [[4, 1], [1, 3]], b = [1, 2] — textbook 2x2; x* = [1/11, 7/11].
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out.resize(2, 1);
    out.data()[0] = 4.0 * p.data()[0] + 1.0 * p.data()[1];
    out.data()[1] = 1.0 * p.data()[0] + 3.0 * p.data()[1];
  };
  Matrix b(2, 1);
  b.data()[0] = 1.0;
  b.data()[1] = 2.0;
  Matrix x;
  CgConfig config;
  config.max_iterations = 10;
  config.tolerance = 1e-12;
  CgWorkspace ws;
  CgResult result = conjugate_gradient(apply, b, x, config, ws, 1);
  // Exact termination in at most dim steps.
  EXPECT_LE(result.iterations, 2u);
  EXPECT_FALSE(result.negative_curvature);
  EXPECT_NEAR(x.data()[0], 1.0 / 11.0, 1e-10);
  EXPECT_NEAR(x.data()[1], 7.0 / 11.0, 1e-10);
  EXPECT_LE(result.residual_norm, 1e-10);
}

TEST(Cg, JacobiPreconditionerSolvesDiagonalSystemInOneIteration) {
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out.resize(3, 1);
    out.data()[0] = 2.0 * p.data()[0];
    out.data()[1] = 5.0 * p.data()[1];
    out.data()[2] = 0.5 * p.data()[2];
  };
  Matrix b(3, 1);
  b.data()[0] = 4.0;
  b.data()[1] = -10.0;
  b.data()[2] = 1.0;
  Matrix jacobi(3, 1);
  jacobi.data()[0] = 2.0;
  jacobi.data()[1] = 5.0;
  jacobi.data()[2] = 0.5;
  Matrix x;
  CgConfig config;
  config.tolerance = 1e-12;
  CgWorkspace ws;
  CgResult result = conjugate_gradient(apply, b, x, config, ws, 1, &jacobi);
  // M^{-1} H = I: one CG iteration lands exactly on the solution.
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_NEAR(x.data()[0], 2.0, 1e-12);
  EXPECT_NEAR(x.data()[1], -2.0, 1e-12);
  EXPECT_NEAR(x.data()[2], 2.0, 1e-12);
}

TEST(Cg, ZeroRhsReturnsZeroWithoutIterating) {
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out = p;  // identity
  };
  Matrix b(4, 1);  // all zeros
  Matrix x;
  CgWorkspace ws;
  CgResult result = conjugate_gradient(apply, b, x, CgConfig{}, ws, 1);
  EXPECT_EQ(result.iterations, 0u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(x.data()[i], 0.0);
}

TEST(Cg, NegativeCurvatureFallsBackToPreconditionedGradient) {
  // H = -I is negative definite: p^T H p < 0 on the first iteration, so the
  // solve must flag it and return x = M^{-1} b (here b itself).
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out = p;
    out.scale(-1.0);
  };
  Matrix b(2, 1);
  b.data()[0] = 3.0;
  b.data()[1] = -1.0;
  Matrix x;
  CgWorkspace ws;
  CgResult result = conjugate_gradient(apply, b, x, CgConfig{}, ws, 1);
  EXPECT_TRUE(result.negative_curvature);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(x.data()[0], 3.0);
  EXPECT_EQ(x.data()[1], -1.0);
}

TEST(Cg, RejectsJacobiShapeMismatch) {
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) { out = p; };
  Matrix b(3, 1, 1.0);
  Matrix jacobi(2, 1, 1.0);
  Matrix x;
  CgWorkspace ws;
  EXPECT_THROW(conjugate_gradient(apply, b, x, CgConfig{}, ws, 1, &jacobi),
               std::invalid_argument);
}

TEST(Cg, ByteIdenticalAcrossWorkerCountsOnKernelOperator) {
  // Operator built from the rule-2 kernels (H = A^T A + I via two SpMM-like
  // passes): the whole solve must be byte-identical for any worker count.
  Rng rng(55);
  Matrix a = Matrix::random(40, 24, rng, -1.0, 1.0);
  Matrix b = Matrix::random(24, 1, rng, -1.0, 1.0);
  auto solve = [&](std::size_t workers) {
    Matrix tmp, x;
    auto apply = [&](const Matrix& p, Matrix& out, std::size_t w) {
      kernels::multiply_into(a, p, tmp, w);
      kernels::transpose_multiply_into(a, tmp, out, w);
      kernels::add_scaled_into(out, p, 1.0, w);
    };
    CgConfig config;
    config.max_iterations = 50;
    config.tolerance = 1e-10;
    CgWorkspace ws;
    conjugate_gradient(apply, b, x, config, ws, workers);
    return x;
  };
  Matrix base = solve(1);
  for (std::size_t workers : {2u, 4u, 8u}) {
    EXPECT_TRUE(bit_equal(base, solve(workers))) << "workers=" << workers;
  }
}

// ----------------------------------------------------------- line search

TEST(LineSearch, AcceptsFullStepOnPerfectQuadratic) {
  // phi(t) = (1 - t)^2: phi0 = 1, slope = -2; t = 1 satisfies Armijo
  // immediately (0 <= 1 - 2e-4).
  auto phi = [](double t) { return (1.0 - t) * (1.0 - t); };
  LineSearchResult result = backtracking_armijo(phi, 1.0, -2.0, LineSearchConfig{});
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.step, 1.0);
  EXPECT_EQ(result.evaluations, 1u);
}

TEST(LineSearch, ShrinksOnFixedGeometricScheduleToHandComputedStep) {
  // phi(t) = 100 t^2 - t with phi0 = 0, slope = -1. Armijo requires
  // 100 t^2 - t <= -1e-4 t, i.e. t <= (1 - 1e-4) / 100. On the fixed
  // halving schedule the first such step is 2^-7 = 0.0078125.
  auto phi = [](double t) { return 100.0 * t * t - t; };
  LineSearchResult result = backtracking_armijo(phi, 0.0, -1.0, LineSearchConfig{});
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.step, 0.0078125);
  EXPECT_EQ(result.evaluations, 8u);
}

TEST(LineSearch, RejectsNonDescentSlopeWithoutEvaluating) {
  int calls = 0;
  auto phi = [&](double) {
    ++calls;
    return 0.0;
  };
  LineSearchResult up = backtracking_armijo(phi, 1.0, 0.5, LineSearchConfig{});
  EXPECT_FALSE(up.accepted);
  LineSearchResult flat = backtracking_armijo(phi, 1.0, 0.0, LineSearchConfig{});
  EXPECT_FALSE(flat.accepted);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(up.evaluations, 0u);
}

TEST(LineSearch, GivesUpAfterMaxBacktracks) {
  // phi never decreases: every trial fails, bounded by max_backtracks.
  auto phi = [](double) { return 10.0; };
  LineSearchConfig config;
  config.max_backtracks = 5;
  LineSearchResult result = backtracking_armijo(phi, 0.0, -1.0, config);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.evaluations, 6u);  // initial step + 5 shrinks
}

// ------------------------------------------------------------ newton_step

TEST(NewtonStep, LandsOnQuadraticMinimumInOneStep) {
  // f(x) = (x0 - 3)^2 + (x1 + 1)^2: grad = 2 (x - a), H = 2 I. From x = 0
  // the Newton direction is exactly a, the unit step passes Armijo with
  // f = 0, and x must land on the minimizer.
  Matrix x(2, 1);  // starts at 0
  Matrix grad(2, 1);
  grad.data()[0] = 2.0 * (x.data()[0] - 3.0);
  grad.data()[1] = 2.0 * (x.data()[1] + 1.0);
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out = p;
    out.scale(2.0);
  };
  auto objective = [](const Matrix& trial) {
    double d0 = trial.data()[0] - 3.0;
    double d1 = trial.data()[1] + 1.0;
    return d0 * d0 + d1 * d1;
  };
  NewtonConfig config;
  config.cg.tolerance = 1e-12;
  NewtonWorkspace ws;
  NewtonStepResult result =
      newton_step(apply, grad, x, objective, 10.0, config, ws, 1);
  EXPECT_EQ(result.step, 1.0);
  EXPECT_FALSE(result.gradient_fallback);
  EXPECT_NEAR(result.objective, 0.0, 1e-18);
  EXPECT_NEAR(x.data()[0], 3.0, 1e-10);
  EXPECT_NEAR(x.data()[1], -1.0, 1e-10);
}

TEST(NewtonStep, ProjectionClampsTrialNonnegative) {
  // Minimum at (-2, 5): with projection on, the accepted trial is clamped,
  // so x0 lands at 0 instead of going negative.
  Matrix x(2, 1);
  x.data()[0] = 1.0;
  x.data()[1] = 1.0;
  Matrix grad(2, 1);
  grad.data()[0] = 2.0 * (x.data()[0] + 2.0);
  grad.data()[1] = 2.0 * (x.data()[1] - 5.0);
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out = p;
    out.scale(2.0);
  };
  auto objective = [](const Matrix& trial) {
    double d0 = trial.data()[0] + 2.0;
    double d1 = trial.data()[1] - 5.0;
    return d0 * d0 + d1 * d1;
  };
  NewtonConfig config;
  config.cg.tolerance = 1e-12;
  config.project_nonnegative = true;
  NewtonWorkspace ws;
  double fx = objective(x);
  NewtonStepResult result = newton_step(apply, grad, x, objective, fx, config, ws, 1);
  EXPECT_LT(result.objective, fx);
  EXPECT_EQ(x.data()[0], 0.0);  // clamped, not -2
  EXPECT_NEAR(x.data()[1], 5.0, 1e-9);
}

TEST(NewtonStep, ZeroGradientLeavesIterateUntouched) {
  // At a stationary point CG gets a zero right-hand side, the slope check
  // routes through the -g fallback, finds that too is flat, and the step
  // must return fx with x unchanged (step 0) instead of evaluating trials.
  Matrix x(2, 1);
  x.data()[0] = 1.5;
  x.data()[1] = -0.5;
  Matrix before = x;
  Matrix grad(2, 1);  // zero gradient
  auto apply = [](const Matrix& p, Matrix& out, std::size_t) {
    out = p;
    out.scale(2.0);
  };
  int objective_calls = 0;
  auto objective = [&](const Matrix&) {
    ++objective_calls;
    return 0.0;
  };
  NewtonConfig config;
  NewtonWorkspace ws;
  NewtonStepResult result = newton_step(apply, grad, x, objective, 7.5, config, ws, 1);
  EXPECT_TRUE(result.gradient_fallback);
  EXPECT_EQ(result.step, 0.0);
  EXPECT_EQ(result.objective, 7.5);
  EXPECT_EQ(objective_calls, 0);
  EXPECT_TRUE(bit_equal(before, x));
}

TEST(NewtonStep, RepeatedRunsAreByteIdentical) {
  Rng rng(66);
  Matrix a = Matrix::random(30, 12, rng, -1.0, 1.0);
  Matrix target = Matrix::random(12, 1, rng, -1.0, 1.0);
  auto run = [&](std::size_t workers) {
    Matrix x(12, 1);  // least-squares min ||A x - A target||^2 from x = 0
    Matrix tmp, resid, grad;
    auto apply = [&](const Matrix& p, Matrix& out, std::size_t w) {
      kernels::multiply_into(a, p, tmp, w);
      kernels::transpose_multiply_into(a, tmp, out, w);
      out.scale(2.0);
    };
    auto objective = [&](const Matrix& trial) {
      kernels::multiply_into(a, trial, resid, 1);
      Matrix at;
      kernels::multiply_into(a, target, at, 1);
      resid.add_scaled(at, -1.0);
      double s = 0.0;
      for (std::size_t i = 0; i < resid.size(); ++i)
        s += resid.data()[i] * resid.data()[i];
      return s;
    };
    // grad at x=0: 2 A^T A (x - target) = -2 A^T A target.
    Matrix tmp2;
    kernels::multiply_into(a, target, tmp2, 1);
    kernels::transpose_multiply_into(a, tmp2, grad, 1);
    grad.scale(-2.0);
    NewtonConfig config;
    config.cg.max_iterations = 30;
    config.cg.tolerance = 1e-10;
    NewtonWorkspace ws;
    newton_step(apply, grad, x, objective, objective(x), config, ws, workers);
    return x;
  };
  Matrix base = run(1);
  EXPECT_TRUE(bit_equal(base, run(1)));  // rerun
  for (std::size_t workers : {2u, 4u, 8u}) {
    EXPECT_TRUE(bit_equal(base, run(workers))) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace hc::analytics::solver
