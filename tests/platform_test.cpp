// Platform-level integration tests: the wired instance, API gateway,
// change management, intercloud transfer, and the enhanced client.
#include <gtest/gtest.h>

#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/change_mgmt.h"
#include "platform/enhanced_client.h"
#include "platform/gateway.h"
#include "platform/instance.h"
#include "platform/intercloud.h"

namespace hc::platform {
namespace {

class PlatformFixture : public ::testing::Test {
 protected:
  PlatformFixture()
      : clock_(make_clock()), network_(clock_, Rng(100)), rng_(101) {
    InstanceConfig config;
    config.name = "cloud-a";
    cloud_ = std::make_unique<HealthCloudInstance>(config, clock_, network_);
    network_.set_link("client-1", "cloud-a", net::LinkProfile::wan());
  }

  void grant_consent(const std::string& patient_id, const std::string& group) {
    ASSERT_TRUE(cloud_->ledger()
                    .submit_and_commit("consent",
                                       {{"action", "grant"},
                                        {"patient", patient_id},
                                        {"group", group}},
                                       "provider")
                    .is_ok());
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  Rng rng_;
  std::unique_ptr<HealthCloudInstance> cloud_;
};

// ---------------------------------------------------------------- instance

TEST_F(PlatformFixture, BootIsMeasuredAndAttestable) {
  EXPECT_FALSE(cloud_->boot_log().empty());
  Bytes nonce = cloud_->attestation().challenge();
  tpm::Quote quote = cloud_->hardware_tpm().quote(
      {tpm::kFirmwarePcr, tpm::kKernelPcr, tpm::kLibraryPcr}, nonce);
  auto verdict = cloud_->attestation().verify(quote, cloud_->boot_log());
  EXPECT_TRUE(verdict.trusted) << verdict.reason;
}

TEST_F(PlatformFixture, EndToEndIngestionThroughWiredInstance) {
  auto key = cloud_->issue_client_keypair("clinic-a");
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "b1", 1);
  grant_consent(std::get<fhir::Patient>(bundle.resources[0]).id, "study-a");

  auto pub = cloud_->kms().public_key(key);
  auto envelope = crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng_);
  auto receipt = cloud_->ingestion().upload(envelope, "clinic-a", "study-a", key);
  ASSERT_TRUE(receipt.is_ok());
  auto outcome = cloud_->ingestion().process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->stored) << outcome->failure_reason;
  EXPECT_TRUE(cloud_->ledger().validate_chain().is_ok());
}

TEST_F(PlatformFixture, ForgetPatientErasesEverything) {
  auto key = cloud_->issue_client_keypair("clinic-a");
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "b1", 1);
  grant_consent(std::get<fhir::Patient>(bundle.resources[0]).id, "study-a");
  auto pub = cloud_->kms().public_key(key);
  auto envelope = crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng_);
  ASSERT_TRUE(cloud_->ingestion().upload(envelope, "clinic-a", "study-a", key).is_ok());
  auto outcome = cloud_->ingestion().process_next();
  ASSERT_TRUE(outcome.is_ok() && outcome->stored);

  auto md = cloud_->metadata().get(outcome->reference_id).value();
  auto data_key = cloud_->ingestion().patient_key(md.pseudonym);
  ASSERT_TRUE(data_key.is_ok());

  auto forgotten = cloud_->forget_patient(md.pseudonym);
  ASSERT_TRUE(forgotten.is_ok());
  EXPECT_EQ(*forgotten, 2u);  // de-identified copy + retained original

  // The patient's data key was crypto-shredded: any surviving ciphertext
  // copies (backups/replicas) are unrecoverable.
  EXPECT_TRUE(cloud_->kms().is_destroyed(*data_key));

  EXPECT_FALSE(cloud_->lake().contains(outcome->reference_id));
  EXPECT_EQ(cloud_->metadata().get(outcome->reference_id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(cloud_->reid_map().identity(md.pseudonym).status().code(),
            StatusCode::kNotFound);
  // Provenance closed with a 'deleted' event.
  EXPECT_EQ(cloud_->ledger()
                .state_value("provenance", outcome->reference_id + "/last_event")
                .value(),
            "deleted");
  EXPECT_EQ(cloud_->forget_patient("pseu-unknown").status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlatformFixture, LogScrubberMasksSensitiveTokens) {
  cloud_->log()->info("test", "event", "patient ssn=123-45-6789 reachable");
  cloud_->log()->info("test", "event", "contact jane.doe@hospital.org now");
  auto records = cloud_->log()->by_component("test");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].detail.find("123-45-6789"), std::string::npos);
  EXPECT_NE(records[0].detail.find("[ssn]"), std::string::npos);
  EXPECT_EQ(records[1].detail.find("jane.doe@hospital.org"), std::string::npos);
  EXPECT_NE(records[1].detail.find("[email]"), std::string::npos);
}

// ---------------------------------------------------------------- gateway

class GatewayFixture : public PlatformFixture {
 protected:
  GatewayFixture() : gateway_(*cloud_) {
    tenant_ = cloud_->rbac().register_tenant("mercy").value();
    alice_ = cloud_->rbac().add_user(tenant_.id, "alice").value();
    EXPECT_TRUE(cloud_->rbac()
                    .assign_role(alice_, tenant_.default_env, rbac::Role::kAnalyst)
                    .is_ok());
    EXPECT_TRUE(cloud_->rbac()
                    .grant_permission(tenant_.id, rbac::Role::kAnalyst, "kb/",
                                      rbac::Permission::kRead)
                    .is_ok());
    gateway_.route("kb/", [](const std::string&, const ApiRequest& request) {
      return Result<ApiResponse>(ApiResponse{to_bytes("kb:" + request.resource)});
    });
  }

  ApiRequest request_for(const std::string& resource) {
    ApiRequest request;
    request.user_id = alice_;
    request.environment = tenant_.default_env;
    request.scope = tenant_.id;
    request.resource = resource;
    return request;
  }

  ApiGateway gateway_;
  rbac::TenantInfo tenant_;
  std::string alice_;
};

TEST_F(GatewayFixture, AuthorizedRequestServed) {
  auto response = gateway_.handle(request_for("kb/drugbank/drug-1"));
  ASSERT_TRUE(response.is_ok());
  EXPECT_EQ(to_string(response->body), "kb:kb/drugbank/drug-1");
  EXPECT_EQ(gateway_.stats().served, 1u);
  // Metering recorded against the tenant.
  EXPECT_EQ(cloud_->rbac().metered_calls(tenant_.id).value(), 1u);
}

TEST_F(GatewayFixture, UnauthenticatedRejected) {
  ApiRequest request = request_for("kb/x");
  request.user_id = "ghost-user";
  EXPECT_EQ(gateway_.handle(request).status().code(), StatusCode::kUnauthenticated);
  request.user_id.clear();
  EXPECT_EQ(gateway_.handle(request).status().code(), StatusCode::kUnauthenticated);
  EXPECT_EQ(gateway_.stats().unauthenticated, 2u);
}

TEST_F(GatewayFixture, RbacDenialEnforced) {
  auto request = request_for("datalake/identified/rec-1");  // no grant
  EXPECT_EQ(gateway_.handle(request).status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(gateway_.stats().denied, 1u);
}

TEST_F(GatewayFixture, FederatedTokenPath) {
  Rng idp_rng(102);
  rbac::IdentityProvider idp("hospital-idp", idp_rng, clock_);
  cloud_->federated_auth().approve_idp(idp.name(), idp.public_key());
  cloud_->federated_auth().enroll("hospital-idp", "alice@hospital.org", alice_);

  ApiRequest request = request_for("kb/wikidata/q42");
  request.user_id.clear();
  request.token = idp.issue("alice@hospital.org", tenant_.id);
  auto response = gateway_.handle(request);
  ASSERT_TRUE(response.is_ok());

  // Expired token fails.
  clock_->advance(3 * kHour);
  EXPECT_EQ(gateway_.handle(request).status().code(), StatusCode::kUnauthenticated);
}

TEST_F(GatewayFixture, UnroutedResourceNotFound) {
  ASSERT_TRUE(cloud_->rbac()
                  .grant_permission(tenant_.id, rbac::Role::kAnalyst, "unrouted/",
                                    rbac::Permission::kRead)
                  .is_ok());
  EXPECT_EQ(gateway_.handle(request_for("unrouted/x")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(GatewayFixture, LongestPrefixRouting) {
  gateway_.route("kb/drugbank/", [](const std::string&, const ApiRequest&) {
    return Result<ApiResponse>(ApiResponse{to_bytes("specific")});
  });
  auto response = gateway_.handle(request_for("kb/drugbank/drug-9"));
  ASSERT_TRUE(response.is_ok());
  EXPECT_EQ(to_string(response->body), "specific");
}

// ------------------------------------------------------------ change mgmt

TEST_F(PlatformFixture, ChangeManagementDrivesAttestation) {
  ChangeManagementService cm(cloud_->attestation(), cloud_->log());
  Bytes new_kernel = to_bytes("cloud-a-kernel-v6");

  auto id = cm.propose("kernel", new_kernel, "security patch", /*replace=*/true);
  EXPECT_EQ(cm.open_count(), 1u);
  // Straight to approve fails; evaluation first, two-person rule enforced.
  EXPECT_EQ(cm.approve(id, "bob").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cm.evaluate(id, "alice").is_ok());
  EXPECT_EQ(cm.approve(id, "alice").code(), StatusCode::kPermissionDenied);
  ASSERT_TRUE(cm.approve(id, "bob").is_ok());

  // The old kernel is still golden until apply.
  EXPECT_TRUE(cloud_->attestation().is_approved(
      "kernel", crypto::sha256(to_bytes("cloud-a-kernel-v5"))));
  ASSERT_TRUE(cm.apply(id).is_ok());
  EXPECT_FALSE(cloud_->attestation().is_approved(
      "kernel", crypto::sha256(to_bytes("cloud-a-kernel-v5"))));
  EXPECT_TRUE(cloud_->attestation().is_approved("kernel", crypto::sha256(new_kernel)));
  EXPECT_EQ(cm.open_count(), 0u);
  EXPECT_EQ(cm.get(id).value().state, ChangeState::kApplied);
}

TEST_F(PlatformFixture, ChangeRejectionAndErrors) {
  ChangeManagementService cm(cloud_->attestation());
  auto id = cm.propose("libssl", to_bytes("v3"), "update");
  ASSERT_TRUE(cm.reject(id, "fails review").is_ok());
  EXPECT_EQ(cm.get(id).value().state, ChangeState::kRejected);
  EXPECT_EQ(cm.evaluate(id, "x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cm.apply(id).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cm.get(999).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cm.evaluate(999, "x").code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- intercloud

class IntercloudFixture : public ::testing::Test {
 protected:
  IntercloudFixture() : clock_(make_clock()), network_(clock_, Rng(110)) {
    InstanceConfig a;
    a.name = "data-cloud";
    a.seed = 111;
    InstanceConfig b;
    b.name = "analytics-cloud";
    b.seed = 112;
    source_ = std::make_unique<HealthCloudInstance>(a, clock_, network_);
    destination_ = std::make_unique<HealthCloudInstance>(b, clock_, network_);
    network_.set_link("data-cloud", "analytics-cloud", net::LinkProfile::intercloud());

    // Destination trusts the source's signing key (federation agreement).
    destination_->images().approve_key(source_->platform_signing_keys().pub);

    // Source registers a signed model container.
    Bytes container = to_bytes("jmf-model-container-layers-v3");
    auto manifest = tpm::sign_image("jmf-model", "3.0", container,
                                    {to_bytes("layer-base"), to_bytes("layer-model")},
                                    source_->platform_signing_keys());
    EXPECT_TRUE(source_->images().register_image(manifest, container).is_ok());
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  std::unique_ptr<HealthCloudInstance> source_;
  std::unique_ptr<HealthCloudInstance> destination_;
};

TEST_F(IntercloudFixture, TrustedTransferSucceeds) {
  IntercloudGateway gateway(*source_, *destination_);
  auto receipt = gateway.transfer_and_launch("jmf-model", "3.0");
  ASSERT_TRUE(receipt.is_ok()) << receipt.status().to_string();
  EXPECT_GT(receipt->transfer_latency, 0);
  EXPECT_EQ(receipt->image, "jmf-model@3.0");
  // Image now available at the destination.
  EXPECT_TRUE(destination_->images().content("jmf-model", "3.0").is_ok());
  // And the launch was attested.
  EXPECT_FALSE(destination_->log()->by_event("workload_attested_and_started").empty());
}

TEST_F(IntercloudFixture, TamperedContainerRejected) {
  IntercloudGateway gateway(*source_, *destination_);
  gateway.tamper_next_transfer();
  auto receipt = gateway.transfer_and_launch("jmf-model", "3.0");
  EXPECT_EQ(receipt.status().code(), StatusCode::kIntegrityError);
  EXPECT_FALSE(destination_->images().content("jmf-model", "3.0").is_ok());
}

TEST_F(IntercloudFixture, UntrustedSignerRejected) {
  // A second destination that never approved the source's key.
  InstanceConfig c;
  c.name = "untrusting-cloud";
  c.seed = 113;
  HealthCloudInstance untrusting(c, clock_, network_);
  network_.set_link("data-cloud", "untrusting-cloud", net::LinkProfile::intercloud());

  IntercloudGateway gateway(*source_, untrusting);
  auto receipt = gateway.transfer_and_launch("jmf-model", "3.0");
  EXPECT_EQ(receipt.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(IntercloudFixture, MissingImageNotFound) {
  IntercloudGateway gateway(*source_, *destination_);
  EXPECT_EQ(gateway.transfer_and_launch("ghost", "1.0").status().code(),
            StatusCode::kNotFound);
}

// ----------------------------------------------------------- enhanced client

class ClientFixture : public PlatformFixture {
 protected:
  ClientFixture() {
    EnhancedClientConfig config;
    config.name = "client-1";
    config.cache_capacity = 16;
    client_ = std::make_unique<EnhancedClient>(config, *cloud_, "clinic-a");
  }

  /// Ingests one consented bundle and returns its lake reference.
  std::string ingest_one(std::size_t patient_index) {
    fhir::Bundle bundle =
        fhir::make_synthetic_bundle(rng_, "b" + std::to_string(patient_index),
                                    patient_index);
    grant_consent(std::get<fhir::Patient>(bundle.resources[0]).id, "study-a");
    auto receipt = client_->upload_bundle(bundle, "study-a");
    EXPECT_TRUE(receipt.is_ok());
    auto outcome = cloud_->ingestion().process_next();
    EXPECT_TRUE(outcome.is_ok() && outcome->stored) << outcome->failure_reason;
    return outcome->reference_id;
  }

  std::unique_ptr<EnhancedClient> client_;
};

TEST_F(ClientFixture, UploadFlowsThroughIngestion) {
  std::string ref = ingest_one(1);
  EXPECT_TRUE(cloud_->lake().contains(ref));
}

TEST_F(ClientFixture, FetchUsesCacheSecondTime) {
  std::string ref = ingest_one(1);
  auto first = client_->fetch_record(ref);
  ASSERT_TRUE(first.is_ok());
  EXPECT_FALSE(first->from_cache);
  EXPECT_GT(first->latency, 40 * kMillisecond);  // WAN round trip

  auto second = client_->fetch_record(ref);
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_LT(second->latency * 1000, first->latency);  // orders of magnitude
  EXPECT_EQ(second->data, first->data);
}

TEST_F(ClientFixture, OfflineFetchServedFromCacheOnly) {
  std::string ref = ingest_one(1);
  ASSERT_TRUE(client_->fetch_record(ref).is_ok());  // warm cache
  client_->set_connected(false);
  auto cached = client_->fetch_record(ref);
  ASSERT_TRUE(cached.is_ok());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_EQ(client_->fetch_record("ref-not-cached").status().code(),
            StatusCode::kUnavailable);
}

TEST_F(ClientFixture, OfflineUploadsQueueAndSync) {
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "off", 7);
  grant_consent(std::get<fhir::Patient>(bundle.resources[0]).id, "study-a");

  client_->set_connected(false);
  auto receipt = client_->upload_bundle(bundle, "study-a");
  ASSERT_TRUE(receipt.is_ok());
  EXPECT_EQ(receipt->upload_id, "queued-offline");
  EXPECT_EQ(client_->pending_uploads(), 1u);
  EXPECT_EQ(client_->sync().status().code(), StatusCode::kUnavailable);

  client_->set_connected(true);
  auto flushed = client_->sync();
  ASSERT_TRUE(flushed.is_ok());
  EXPECT_EQ(*flushed, 1u);
  EXPECT_EQ(client_->pending_uploads(), 0u);
  auto outcome = cloud_->ingestion().process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->stored) << outcome->failure_reason;
}

TEST_F(ClientFixture, LocalAnonymizationStripsIdentifiers) {
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "anon", 3);
  auto anonymized = client_->anonymize_locally(bundle);
  ASSERT_TRUE(anonymized.is_ok());
  const auto& patient = std::get<fhir::Patient>(anonymized->resources[0]);
  EXPECT_TRUE(patient.name.empty());
  EXPECT_TRUE(patient.ssn.empty());
  EXPECT_TRUE(patient.id.starts_with("pseu-"));
  // References rewritten to the pseudonym.
  for (std::size_t i = 1; i < anonymized->resources.size(); ++i) {
    std::visit(
        [&](const auto& r) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(r)>, fhir::Patient>) {
            EXPECT_EQ(r.patient_id, patient.id);
          }
        },
        anonymized->resources[i]);
  }

  fhir::Bundle empty;
  empty.id = "no-patient";
  EXPECT_EQ(client_->anonymize_locally(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClientFixture, ModelPushRequiresApprovedDeployment) {
  // No model at all -> precondition failure.
  EXPECT_EQ(client_->pull_model("delt").status().code(),
            StatusCode::kFailedPrecondition);

  // Created but not deployed -> still refused.
  ASSERT_TRUE(cloud_->models().create("delt", to_bytes("weights-v1")).is_ok());
  ASSERT_TRUE(cloud_->models().advance("delt", 1, analytics::ModelStage::kGeneration).is_ok());
  ASSERT_TRUE(cloud_->models().advance("delt", 1, analytics::ModelStage::kTesting).is_ok());
  EXPECT_EQ(client_->pull_model("delt").status().code(),
            StatusCode::kFailedPrecondition);

  // Approved + deployed -> pull succeeds and installs v1.
  ASSERT_TRUE(cloud_->models().approve("delt", 1, "compliance-officer").is_ok());
  ASSERT_TRUE(cloud_->models().advance("delt", 1, analytics::ModelStage::kDeployed).is_ok());
  auto version = client_->pull_model("delt");
  ASSERT_TRUE(version.is_ok()) << version.status().to_string();
  EXPECT_EQ(*version, 1u);
  EXPECT_EQ(client_->installed_model_version("delt").value(), 1u);
  EXPECT_EQ(client_->installed_model_artifact("delt").value(), to_bytes("weights-v1"));
}

TEST_F(ClientFixture, ModelPushUpdatesAndVerifies) {
  ASSERT_TRUE(cloud_->models().create("delt", to_bytes("v1")).is_ok());
  for (auto stage : {analytics::ModelStage::kGeneration, analytics::ModelStage::kTesting}) {
    ASSERT_TRUE(cloud_->models().advance("delt", 1, stage).is_ok());
  }
  ASSERT_TRUE(cloud_->models().approve("delt", 1, "officer").is_ok());
  ASSERT_TRUE(cloud_->models().advance("delt", 1, analytics::ModelStage::kDeployed).is_ok());
  ASSERT_TRUE(client_->pull_model("delt").is_ok());

  // Model update: v2 goes through the lifecycle; client pulls the update.
  ASSERT_TRUE(cloud_->models().update("delt", to_bytes("v2")).is_ok());
  ASSERT_TRUE(cloud_->models().advance("delt", 2, analytics::ModelStage::kTesting).is_ok());
  ASSERT_TRUE(cloud_->models().approve("delt", 2, "officer").is_ok());
  ASSERT_TRUE(cloud_->models().advance("delt", 2, analytics::ModelStage::kDeployed).is_ok());
  EXPECT_EQ(client_->pull_model("delt").value(), 2u);
  EXPECT_EQ(client_->installed_model_artifact("delt").value(), to_bytes("v2"));

  // Tampered package rejected; installed version untouched.
  client_->tamper_next_model_pull();
  EXPECT_EQ(client_->pull_model("delt").status().code(), StatusCode::kIntegrityError);
  EXPECT_EQ(client_->installed_model_version("delt").value(), 2u);

  // Offline pulls refused.
  client_->set_connected(false);
  EXPECT_EQ(client_->pull_model("delt").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client_->installed_model_version("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ClientFixture, LocalAnalysisWorksOfflineRemoteDoesNot) {
  Rng data_rng(120);
  std::vector<analytics::Fingerprint> dataset;
  for (int i = 0; i < 50; ++i) {
    analytics::Fingerprint fp(64);
    for (auto& bit : fp) bit = data_rng.bernoulli(0.3) ? 1 : 0;
    dataset.push_back(std::move(fp));
  }
  analytics::Fingerprint query = dataset[0];

  client_->set_connected(false);
  auto local = client_->analyze(query, dataset, /*local=*/true);
  ASSERT_TRUE(local.is_ok());
  EXPECT_EQ(local->computed_at, "client-1");
  EXPECT_DOUBLE_EQ(local->similarities[0], 1.0);
  EXPECT_EQ(client_->analyze(query, dataset, /*local=*/false).status().code(),
            StatusCode::kUnavailable);

  client_->set_connected(true);
  auto remote = client_->analyze(query, dataset, /*local=*/false);
  ASSERT_TRUE(remote.is_ok());
  EXPECT_EQ(remote->computed_at, "cloud-a");
  EXPECT_EQ(remote->similarities, local->similarities);
  // Offload trade-off: shipping data over the WAN dwarfs local compute.
  EXPECT_GT(remote->latency, local->latency * 100);
}

}  // namespace
}  // namespace hc::platform
