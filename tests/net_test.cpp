#include <gtest/gtest.h>

#include "net/network.h"
#include "net/secure_channel.h"

namespace hc::net {
namespace {

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : clock_(make_clock()), net_(clock_, Rng(1)) {
    net_.set_link("client", "cloud", LinkProfile::wan());
    net_.set_link("cloud", "cloud-2", LinkProfile::intercloud());
    net_.set_link("svc-a", "svc-b", LinkProfile::lan());
  }

  ClockPtr clock_;
  SimNetwork net_;
};

TEST_F(NetworkFixture, SendChargesClock) {
  SimTime before = clock_->now();
  auto cost = net_.send("client", "cloud", 1024);
  ASSERT_TRUE(cost.is_ok());
  EXPECT_GT(*cost, 0);
  EXPECT_EQ(clock_->now(), before + *cost);
}

TEST_F(NetworkFixture, WanSlowerThanLan) {
  auto wan = net_.estimate("client", "cloud", 4096);
  auto lan = net_.estimate("svc-a", "svc-b", 4096);
  ASSERT_TRUE(wan.is_ok());
  ASSERT_TRUE(lan.is_ok());
  // Paper Section I: remote access costs orders of magnitude more than local.
  EXPECT_GT(*wan, *lan * 100);
}

TEST_F(NetworkFixture, LargerPayloadsCostMore) {
  auto small = net_.estimate("client", "cloud", 100);
  auto large = net_.estimate("client", "cloud", 10'000'000);
  EXPECT_GT(*large, *small);
}

TEST_F(NetworkFixture, LinksAreSymmetric) {
  EXPECT_TRUE(net_.send("cloud", "client", 10).is_ok());
  EXPECT_TRUE(net_.has_link("cloud", "client"));
  EXPECT_TRUE(net_.has_link("client", "cloud"));
}

TEST_F(NetworkFixture, MissingLinkIsFailedPrecondition) {
  auto r = net_.send("client", "mars", 10);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(net_.estimate("client", "mars", 10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(NetworkFixture, StatsAccumulate) {
  net_.reset_stats();
  ASSERT_TRUE(net_.send("svc-a", "svc-b", 100).is_ok());
  ASSERT_TRUE(net_.send("svc-a", "svc-b", 200).is_ok());
  EXPECT_EQ(net_.stats().messages, 2u);
  EXPECT_EQ(net_.stats().bytes, 300u);
  EXPECT_GT(net_.stats().busy_time, 0);
}

TEST_F(NetworkFixture, EstimateDoesNotAdvanceClock) {
  SimTime before = clock_->now();
  (void)net_.estimate("client", "cloud", 1024);
  EXPECT_EQ(clock_->now(), before);
}

TEST(Network, LossyLinkEventuallyDrops) {
  auto clock = make_clock();
  SimNetwork net(clock, Rng(7));
  LinkProfile lossy = LinkProfile::mobile();
  lossy.drop_probability = 0.5;
  net.set_link("phone", "cloud", lossy);

  int drops = 0;
  for (int i = 0; i < 100; ++i) {
    if (!net.send("phone", "cloud", 10).is_ok()) ++drops;
  }
  EXPECT_GT(drops, 20);
  EXPECT_LT(drops, 80);
  EXPECT_EQ(net.stats().drops, static_cast<std::uint64_t>(drops));
}

TEST(Network, SendWithRetrySurvivesLossyLink) {
  auto clock = make_clock();
  SimNetwork net(clock, Rng(8));
  LinkProfile lossy = LinkProfile::lan();
  lossy.drop_probability = 0.4;
  net.set_link("phone", "cloud", lossy);

  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    if (net.send_with_retry("phone", "cloud", 100, 5).is_ok()) ++delivered;
  }
  // P(all 5 attempts drop) = 0.4^5 ~= 1% -> nearly everything delivers.
  EXPECT_GT(delivered, 90);
}

TEST(Network, SendWithRetryDoesNotRetryMissingLinks) {
  auto clock = make_clock();
  SimNetwork net(clock, Rng(9));
  SimTime before = clock->now();
  auto r = net.send_with_retry("a", "nowhere", 10, 5);
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(clock->now(), before);  // non-retryable fails fast, no latency
}

TEST(Network, ZeroDropLinkNeverDrops) {
  auto clock = make_clock();
  SimNetwork net(clock, Rng(7));
  net.set_link("a", "b", LinkProfile::lan());
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(net.send("a", "b", 10).is_ok());
}

// ------------------------------------------------------------- channel

class ChannelFixture : public ::testing::Test {
 protected:
  ChannelFixture()
      : clock_(make_clock()), net_(clock_, Rng(2)), rng_(3),
        server_keys_(crypto::generate_keypair(rng_)) {
    net_.set_link("client", "cloud", LinkProfile::wan());
  }

  ClockPtr clock_;
  SimNetwork net_;
  Rng rng_;
  crypto::KeyPair server_keys_;
};

TEST_F(ChannelFixture, EstablishAndTransmit) {
  auto ch = SecureChannel::establish(net_, "client", "cloud", server_keys_.pub,
                                     server_keys_.priv, rng_);
  ASSERT_TRUE(ch.is_ok());
  EXPECT_GT(ch->handshake_cost(), 0);

  Bytes payload = to_bytes("observation: hba1c=6.9");
  auto delivered = ch->transmit(payload);
  ASSERT_TRUE(delivered.is_ok());
  EXPECT_EQ(*delivered, payload);
  EXPECT_EQ(ch->messages_sent(), 1u);
}

TEST_F(ChannelFixture, ResponsesFlowBack) {
  auto ch = SecureChannel::establish(net_, "client", "cloud", server_keys_.pub,
                                     server_keys_.priv, rng_);
  ASSERT_TRUE(ch.is_ok());
  auto resp = ch->respond(to_bytes("ack: stored as ref-123"));
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(to_string(*resp), "ack: stored as ref-123");
}

TEST_F(ChannelFixture, TamperedMessageDetected) {
  auto ch = SecureChannel::establish(net_, "client", "cloud", server_keys_.pub,
                                     server_keys_.priv, rng_);
  ASSERT_TRUE(ch.is_ok());
  ch->tamper_next_message();
  auto r = ch->transmit(to_bytes("phi"));
  EXPECT_EQ(r.status().code(), StatusCode::kIntegrityError);
  // Channel recovers for subsequent messages.
  EXPECT_TRUE(ch->transmit(to_bytes("phi")).is_ok());
}

TEST_F(ChannelFixture, EstablishFailsWithoutLink) {
  auto ch = SecureChannel::establish(net_, "client", "nowhere", server_keys_.pub,
                                     server_keys_.priv, rng_);
  EXPECT_FALSE(ch.is_ok());
}

TEST_F(ChannelFixture, TransmitChargesNetworkTime) {
  auto ch = SecureChannel::establish(net_, "client", "cloud", server_keys_.pub,
                                     server_keys_.priv, rng_);
  ASSERT_TRUE(ch.is_ok());
  SimTime before = clock_->now();
  ASSERT_TRUE(ch->transmit(Bytes(100'000, 0x5a)).is_ok());
  EXPECT_GT(clock_->now() - before, 40 * kMillisecond);
}

}  // namespace
}  // namespace hc::net
