// Executor-layer tests: thread pool semantics (bounded queue, drain,
// exception surfacing), parallel_for, stable sharding, and the
// concurrency-safety of the substrate pieces the parallel ingestion
// pipeline leans on (atomic SimClock, sharded MetricsRegistry). All tests
// here carry the `exec` ctest label and are the suite `check-tsan` runs
// under ThreadSanitizer.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace hc::exec {
namespace {

// --- hashing / sharding ----------------------------------------------------

TEST(Fnv1a64, MatchesPublishedTestVectors) {
  // Standard FNV-1a 64-bit vectors: the offset basis for the empty string,
  // and the canonical single-byte results.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(ShardBy, StaysInRangeAndIsDeterministic) {
  for (int i = 0; i < 100; ++i) {
    std::string key = "patient-" + std::to_string(i);
    std::size_t shard = shard_by(key, 16);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, shard_by(key, 16)) << "same key must map to same shard";
  }
}

TEST(ShardBy, SpreadsKeysAcrossAllShards) {
  constexpr std::size_t kShards = 16;
  std::vector<std::size_t> counts(kShards, 0);
  for (int i = 0; i < 1600; ++i) {
    ++counts[shard_by("ref-" + std::to_string(i), kShards)];
  }
  // With 100 expected per shard, any empty (or nearly empty) shard means
  // the hash is degenerate for our key shapes.
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], 40u) << "shard " << s << " is starved";
  }
}

TEST(ShardBy, SingleShardAlwaysZero) {
  EXPECT_EQ(shard_by("anything", 1), 0u);
}

// --- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.drain();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.completed(), 100u);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, BoundedQueueAppliesBackpressure) {
  ThreadPool pool(1, /*queue_capacity=*/2);

  // Block the single worker so queued tasks pile up.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.submit([&] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  // Wait until the worker has actually picked the blocker up.
  while (pool.pending() > 0) std::this_thread::yield();

  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_TRUE(pool.try_submit([] {}));
  EXPECT_FALSE(pool.try_submit([] {})) << "queue at capacity must refuse";
  EXPECT_EQ(pool.pending(), 2u);

  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.drain();
  EXPECT_EQ(pool.completed(), 3u);
}

TEST(ThreadPool, DrainRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task exploded"); });
  EXPECT_THROW(pool.drain(), std::runtime_error);

  // The error is cleared and the pool stays usable.
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  EXPECT_NO_THROW(pool.drain());
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, ThrowingTaskDoesNotKillWorker) {
  ThreadPool pool(1);
  std::atomic<int> survived{0};
  pool.submit([] { throw std::logic_error("boom"); });
  pool.submit([&survived] { ++survived; });
  pool.submit([&survived] { ++survived; });
  EXPECT_THROW(pool.drain(), std::logic_error);
  EXPECT_EQ(survived.load(), 2) << "tasks after the throwing one must still run";
}

TEST(ThreadPool, ShutdownIsIdempotentAndSubmitAfterThrows) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) pool.submit([&count] { ++count; });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(count.load(), 10);
  EXPECT_THROW(pool.submit([] {}), std::logic_error);
}

TEST(ThreadPool, DrainWithEmptyQueueReturnsImmediately) {
  ThreadPool pool(2);
  pool.drain();
  pool.drain();
  EXPECT_EQ(pool.completed(), 0u);
}

// --- parallel_for ----------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(kN, 4, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, InlineWhenSingleWorker) {
  std::size_t sum = 0;  // no atomics needed: workers<=1 runs inline
  parallel_for(10, 1, [&sum](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [](std::size_t i) {
                     if (i == 17) throw std::runtime_error("index 17");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

// --- parallel_for grain ----------------------------------------------------

TEST(ParallelForGrain, CoversEveryIndexExactlyOnce) {
  // Including n not divisible by grain: the tail chunk must still cover its
  // partial range and nothing past n.
  for (std::size_t grain : {1u, 7u, 16u, 1000u, 5000u}) {
    constexpr std::size_t kN = 1003;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(
        kN, 4,
        [&hits](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
        grain);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ParallelForGrain, ChunksRunContiguouslyAscendingWithinChunk) {
  // Each chunk's indices must arrive contiguously in ascending order —
  // callers like the DELT patient solver rely on chunk-local locality.
  constexpr std::size_t kN = 256;
  constexpr std::size_t kGrain = 32;
  std::mutex mu;
  std::vector<std::vector<std::size_t>> chunk_orders((kN + kGrain - 1) / kGrain);
  parallel_for(
      kN, 4,
      [&](std::size_t i) {
        std::lock_guard lock(mu);
        chunk_orders[i / kGrain].push_back(i);
      },
      kGrain);
  for (std::size_t c = 0; c < chunk_orders.size(); ++c) {
    const auto& order = chunk_orders[c];
    ASSERT_EQ(order.size(), kGrain);
    for (std::size_t k = 0; k < order.size(); ++k) {
      EXPECT_EQ(order[k], c * kGrain + k) << "chunk " << c << " ran out of order";
    }
  }
}

TEST(ParallelForGrain, SingleChunkRunsInlineWithoutAtomics) {
  std::size_t sum = 0;  // grain >= n collapses to one chunk: inline, no pool
  parallel_for(10, 8, [&sum](std::size_t i) { sum += i; }, /*grain=*/10);
  EXPECT_EQ(sum, 45u);
}

TEST(ParallelForGrain, PropagatesExceptionFromInsideChunk) {
  EXPECT_THROW(
      parallel_for(
          100, 4,
          [](std::size_t i) {
            if (i == 63) throw std::runtime_error("index 63");
          },
          /*grain=*/8),
      std::runtime_error);
}

TEST(ParallelForGrain, DefaultGrainMatchesHistoricalPerIndexDispatch) {
  // Omitting grain must behave exactly like the pre-grain API: n tasks, all
  // indices covered. (Guards the default argument.)
  std::vector<std::atomic<int>> hits(64);
  parallel_for(64, 3, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 64; ++i) ASSERT_EQ(hits[i].load(), 1);
}

// --- shared-clock concurrency ---------------------------------------------

TEST(SimClockConcurrency, ConcurrentAdvancesSumExactly) {
  auto clock = make_clock();
  constexpr int kThreads = 8;
  constexpr int kAdvancesPerThread = 1000;
  parallel_for(kThreads, kThreads, [&clock](std::size_t) {
    for (int i = 0; i < kAdvancesPerThread; ++i) clock->advance(3);
  });
  EXPECT_EQ(clock->now(), static_cast<SimTime>(kThreads) * kAdvancesPerThread * 3);
}

TEST(SimClockConcurrency, AdvanceToIsAMonotonicMax) {
  auto clock = make_clock();
  parallel_for(8, 8, [&clock](std::size_t w) {
    clock->advance_to(static_cast<SimTime>((w + 1) * 100));
  });
  EXPECT_EQ(clock->now(), 800);
  // An explicitly backwards target is a programming error (concurrent
  // racers past the target are tolerated by the CAS-max loop instead).
  EXPECT_THROW(clock->advance_to(50), std::invalid_argument);
  EXPECT_EQ(clock->now(), 800);
}

// --- sharded metrics registry under contention -----------------------------

TEST(MetricsRegistryConcurrency, EightThreadCounterStress) {
  auto metrics = obs::make_metrics();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  parallel_for(kThreads, kThreads, [&metrics](std::size_t w) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      metrics->add("hc.stress.shared");                            // contended
      metrics->add("hc.stress.lane." + std::to_string(w));         // sharded
      metrics->observe("hc.stress.latency_us", static_cast<double>(i % 50));
    }
  });
  EXPECT_EQ(metrics->counter("hc.stress.shared"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(metrics->counter("hc.stress.lane." + std::to_string(w)),
              static_cast<std::uint64_t>(kOpsPerThread));
  }
  const obs::Histogram* histogram = metrics->histogram("hc.stress.latency_us");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(MetricsRegistryConcurrency, SnapshotWhileWritersRun) {
  auto metrics = obs::make_metrics();
  std::atomic<bool> stop{false};
  ThreadPool pool(4);
  for (int w = 0; w < 3; ++w) {
    pool.submit([&metrics, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        metrics->add("hc.stress.snapshot");
      }
    });
  }
  pool.submit([&metrics, &stop] {
    for (int i = 0; i < 50; ++i) {
      auto snapshot = metrics->metrics();  // merged copy, must not tear
      (void)snapshot.size();
    }
    stop = true;
  });
  pool.drain();
  pool.shutdown();
  EXPECT_GT(metrics->counter("hc.stress.snapshot"), 0u);
}

// --- AffinityExecutor ------------------------------------------------------
// Per-lane single-thread FIFO queues (cluster scale-out's shard affinity:
// one lane per shard-host, so per-shard work is ordered and race-free).

TEST(AffinityExecutor, KeyedSubmitPinsEachKeyToOneLane) {
  AffinityExecutor exec(4);
  std::array<std::set<std::string>, 4> seen_by_lane;
  std::array<std::mutex, 4> mu;
  for (int round = 0; round < 8; ++round) {
    for (int k = 0; k < 32; ++k) {
      std::string key = "shard-" + std::to_string(k);
      std::size_t lane = shard_by(key, exec.lanes());
      exec.submit_keyed(key, [&, key, lane] {
        std::lock_guard hold(mu[lane]);
        seen_by_lane[lane].insert(key);
      });
    }
  }
  exec.drain();
  // Every key appears on exactly one lane, and it is the shard_by lane.
  std::size_t total = 0;
  for (std::size_t lane = 0; lane < 4; ++lane) {
    for (const std::string& key : seen_by_lane[lane]) {
      EXPECT_EQ(shard_by(key, 4), lane);
    }
    total += seen_by_lane[lane].size();
  }
  EXPECT_EQ(total, 32u) << "keys leaked across lanes or went missing";
}

TEST(AffinityExecutor, TasksOnOneLaneRunInFifoOrder) {
  AffinityExecutor exec(3);
  std::vector<int> order;
  for (int i = 0; i < 200; ++i) {
    exec.submit(1, [&order, i] { order.push_back(i); });  // one lane: no lock needed
  }
  exec.drain();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(AffinityExecutor, LaneIndexWrapsModuloLaneCount) {
  AffinityExecutor exec(2);
  std::mutex mu;
  std::vector<int> lane_hits(2, 0);
  for (std::size_t lane = 0; lane < 6; ++lane) {
    exec.submit(lane, [&, lane] {
      std::lock_guard hold(mu);
      ++lane_hits[lane % 2];
    });
  }
  exec.drain();
  EXPECT_EQ(lane_hits[0], 3);
  EXPECT_EQ(lane_hits[1], 3);
}

TEST(AffinityExecutor, DrainRethrowsFirstErrorAndStaysUsable) {
  AffinityExecutor exec(2);
  exec.submit(0, [] { throw std::runtime_error("lane task exploded"); });
  EXPECT_THROW(exec.drain(), std::runtime_error);

  std::atomic<bool> ran{false};
  exec.submit(1, [&ran] { ran = true; });
  EXPECT_NO_THROW(exec.drain());
  EXPECT_TRUE(ran.load());
}

TEST(AffinityExecutor, ThrowingTaskDoesNotKillItsLane) {
  AffinityExecutor exec(1);
  std::atomic<int> survived{0};
  exec.submit(0, [] { throw std::logic_error("boom"); });
  exec.submit(0, [&survived] { ++survived; });
  exec.submit(0, [&survived] { ++survived; });
  EXPECT_THROW(exec.drain(), std::logic_error);
  EXPECT_EQ(survived.load(), 2) << "tasks after the throwing one must still run";
}

TEST(AffinityExecutor, ShutdownIsIdempotentAndSubmitAfterThrows) {
  AffinityExecutor exec(2);
  std::atomic<int> count{0};
  for (std::size_t i = 0; i < 10; ++i) exec.submit(i, [&count] { ++count; });
  exec.shutdown();
  exec.shutdown();  // second call is a no-op
  EXPECT_EQ(count.load(), 10);
  EXPECT_THROW(exec.submit(0, [] {}), std::logic_error);
}

TEST(AffinityExecutor, BoundedLaneQueueAppliesBackpressure) {
  AffinityExecutor exec(1, /*queue_capacity=*/2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  exec.submit(0, [&] {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  exec.submit(0, [] {});
  exec.submit(0, [] {});  // queue now at capacity behind the blocked task
  std::atomic<bool> fourth_queued{false};
  std::thread submitter([&] {
    exec.submit(0, [] {});  // must block until the lane frees a slot
    fourth_queued = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(fourth_queued.load()) << "submit did not block on a full lane";
  {
    std::lock_guard lock(mu);
    release = true;
  }
  cv.notify_all();
  submitter.join();
  EXPECT_TRUE(fourth_queued.load());
  exec.drain();
}

}  // namespace
}  // namespace hc::exec
