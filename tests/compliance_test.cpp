#include <gtest/gtest.h>

#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/compliance.h"
#include "platform/log_anchor.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"

namespace hc::platform {
namespace {

class ComplianceFixture : public ::testing::Test {
 protected:
  ComplianceFixture() : clock_(make_clock()), network_(clock_, Rng(130)) {
    InstanceConfig config;
    config.name = "cloud";
    cloud_ = std::make_unique<HealthCloudInstance>(config, clock_, network_);
    network_.set_link("client", "cloud", net::LinkProfile::wan());
  }

  /// Puts the instance into a realistic in-use state.
  void populate() {
    auto tenant = cloud_->rbac().register_tenant("mercy").value();
    (void)cloud_->rbac().add_user(tenant.id, "alice");

    EnhancedClientConfig client_config;
    client_config.name = "client";
    EnhancedClient client(client_config, *cloud_, "clinic");
    Rng rng(131);
    fhir::Bundle bundle = fhir::make_synthetic_bundle(rng, "b", 1);
    (void)cloud_->ledger().submit_and_commit(
        "consent",
        {{"action", "grant"},
         {"patient", std::get<fhir::Patient>(bundle.resources[0]).id},
         {"group", "study"}},
        "provider");
    (void)client.upload_bundle(bundle, "study");
    (void)cloud_->ingestion().process_all();
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  std::unique_ptr<HealthCloudInstance> cloud_;
};

TEST_F(ComplianceFixture, PopulatedInstancePassesAllControls) {
  populate();
  ComplianceAuditor auditor(*cloud_);
  ComplianceReport report = auditor.audit();
  for (const auto& control : report.controls) {
    EXPECT_TRUE(control.passed) << control.control << ": " << control.evidence;
  }
  EXPECT_TRUE(report.compliant());
  EXPECT_EQ(report.passed_count(), report.controls.size());
  EXPECT_TRUE(report.failures().empty());
}

TEST_F(ComplianceFixture, CoversAllFourPillars) {
  populate();
  ComplianceReport report = ComplianceAuditor(*cloud_).audit();
  bool pillars[4] = {false, false, false, false};
  for (const auto& control : report.controls) {
    pillars[static_cast<int>(control.pillar)] = true;
  }
  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(pillars[p]) << "missing pillar "
                            << pillar_name(static_cast<CompliancePillar>(p));
  }
}

TEST_F(ComplianceFixture, FreshInstanceFailsWorkforceControl) {
  // No users registered yet: the administrative pillar must flag it.
  ComplianceReport report = ComplianceAuditor(*cloud_).audit();
  bool workforce_failed = false;
  for (const auto& control : report.controls) {
    if (control.control == "workforce-registered" && !control.passed) {
      workforce_failed = true;
    }
  }
  EXPECT_TRUE(workforce_failed);
  EXPECT_FALSE(report.compliant());
}

TEST_F(ComplianceFixture, TamperedLedgerFailsIntegrityControl) {
  populate();
  cloud_->ledger().tamper_for_test(1, 0, "patient", "mallory");
  ComplianceReport report = ComplianceAuditor(*cloud_).audit();
  bool integrity_failed = false;
  for (const auto& control : report.failures()) {
    if (control.control == "provenance-ledger-integrity") integrity_failed = true;
  }
  EXPECT_TRUE(integrity_failed);
}

TEST_F(ComplianceFixture, AuditItselfIsAudited) {
  populate();
  auto before = cloud_->log()->by_event("audit_completed").size();
  (void)ComplianceAuditor(*cloud_).audit();
  EXPECT_EQ(cloud_->log()->by_event("audit_completed").size(), before + 1);
}

// ------------------------------------------------------------ log anchoring

class LogAnchorFixture : public ComplianceFixture {
 protected:
  LogAnchorFixture() : anchor_(*cloud_->log(), cloud_->ledger(), "cloud") {}

  LogAnchorService anchor_;
};

TEST_F(LogAnchorFixture, CheckpointAndVerify) {
  populate();
  auto cp = anchor_.checkpoint();
  ASSERT_TRUE(cp.is_ok()) << cp.status().to_string();
  EXPECT_GT(cp->end, cp->begin);
  EXPECT_TRUE(anchor_.verify().is_ok());

  // New records accumulate; a second checkpoint covers only the new span.
  cloud_->log()->info("test", "more", "activity");
  auto cp2 = anchor_.checkpoint();
  ASSERT_TRUE(cp2.is_ok());
  EXPECT_EQ(cp2->begin, cp->end);
  EXPECT_TRUE(anchor_.verify().is_ok());
  EXPECT_EQ(anchor_.checkpoints().size(), 2u);
}

TEST(LogAnchor, NothingNewIsFailedPrecondition) {
  // Use a ledger with no log sink so anchoring doesn't itself append
  // records; the "fully sealed" state is then reachable.
  auto clock = make_clock();
  auto log = make_log(clock);
  blockchain::LedgerConfig config;
  config.peers = {"p0", "p1", "p2"};
  blockchain::PermissionedLedger ledger(config, clock);
  ASSERT_TRUE(blockchain::register_hcls_contracts(ledger).is_ok());
  LogAnchorService anchor(*log, ledger, "standalone");

  EXPECT_EQ(anchor.checkpoint().status().code(), StatusCode::kFailedPrecondition);
  log->info("app", "event", "one record");
  ASSERT_TRUE(anchor.checkpoint().is_ok());
  EXPECT_EQ(anchor.checkpoint().status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(anchor.verify().is_ok());
  EXPECT_EQ(anchor.anchored_records(), 1u);
}

TEST_F(LogAnchorFixture, RetroactiveEditDetected) {
  populate();
  ASSERT_TRUE(anchor_.checkpoint().is_ok());
  ASSERT_TRUE(anchor_.verify().is_ok());

  // An insider rewrites an anchored audit record.
  cloud_->log()->tamper_for_test(2, "history, laundered");
  auto verdict = anchor_.verify();
  EXPECT_EQ(verdict.code(), StatusCode::kIntegrityError);
}

TEST(Compliance, PillarNames) {
  EXPECT_EQ(pillar_name(CompliancePillar::kAdministrative), "administrative");
  EXPECT_EQ(pillar_name(CompliancePillar::kPhysical), "physical");
  EXPECT_EQ(pillar_name(CompliancePillar::kTechnical), "technical");
  EXPECT_EQ(pillar_name(CompliancePillar::kPolicies), "policies-and-documentation");
}

}  // namespace
}  // namespace hc::platform
