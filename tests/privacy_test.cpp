#include <gtest/gtest.h>

#include "common/rng.h"
#include "privacy/deid.h"
#include "privacy/kanonymity.h"
#include "privacy/verification.h"

namespace hc::privacy {
namespace {

FieldMap sample_record() {
  return FieldMap{
      {"patient_id", "patient-42"}, {"name", "Jane Doe"},
      {"ssn", "123-45-6789"},       {"phone", "555-0101"},
      {"email", "jane@example.org"},{"address", "12 Oak St"},
      {"age", "37"},                {"zip", "10598"},
      {"gender", "female"},         {"birth_date", "1981-03-15"},
      {"diagnosis", "type-2-diabetes"}, {"hba1c", "7.2"},
  };
}

// ------------------------------------------------------------ generalize

TEST(Generalize, AgeBands) {
  EXPECT_EQ(generalize_quasi_identifier("age", "37"), "35-39");
  EXPECT_EQ(generalize_quasi_identifier("age", "0"), "0-4");
  EXPECT_EQ(generalize_quasi_identifier("age", "89"), "85-89");
}

TEST(Generalize, OldAgesPooledPerSafeHarbor) {
  EXPECT_EQ(generalize_quasi_identifier("age", "90"), "90+");
  EXPECT_EQ(generalize_quasi_identifier("age", "104"), "90+");
}

TEST(Generalize, ZipTruncatedToThreeDigits) {
  EXPECT_EQ(generalize_quasi_identifier("zip", "10598"), "105**");
}

TEST(Generalize, DatesToYear) {
  EXPECT_EQ(generalize_quasi_identifier("birth_date", "1981-03-15"), "1981");
}

TEST(Generalize, NonMatchingValuesUntouched) {
  EXPECT_EQ(generalize_quasi_identifier("gender", "female"), "female");
  EXPECT_EQ(generalize_quasi_identifier("age", "unknown"), "unknown");
  EXPECT_EQ(generalize_quasi_identifier("zip", "123"), "123");
}

TEST(Generalize, IsIdempotent) {
  for (auto [field, value] : std::vector<std::pair<std::string, std::string>>{
           {"age", "37"}, {"zip", "10598"}, {"birth_date", "1981-03-15"}}) {
    std::string once = generalize_quasi_identifier(field, value);
    EXPECT_EQ(generalize_quasi_identifier(field, once), once);
  }
}

// ---------------------------------------------------------- pseudonymizer

TEST(Pseudonymizer, StableAndKeyDependent) {
  Pseudonymizer a(to_bytes("key-a")), a2(to_bytes("key-a")), b(to_bytes("key-b"));
  EXPECT_EQ(a.pseudonym_for("patient-42"), a2.pseudonym_for("patient-42"));
  EXPECT_NE(a.pseudonym_for("patient-42"), b.pseudonym_for("patient-42"));
  EXPECT_NE(a.pseudonym_for("patient-42"), a.pseudonym_for("patient-43"));
  EXPECT_TRUE(a.pseudonym_for("patient-42").starts_with("pseu-"));
}

TEST(ReidentificationMap, RecordLookupForget) {
  ReidentificationMap map;
  map.record("pseu-1", "patient-42");
  EXPECT_EQ(map.identity("pseu-1").value(), "patient-42");
  EXPECT_TRUE(map.forget("pseu-1"));
  EXPECT_FALSE(map.forget("pseu-1"));
  EXPECT_EQ(map.identity("pseu-1").status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- deid

TEST(Deidentify, RemovesDirectIdentifiers) {
  Pseudonymizer pseudo(to_bytes("k"));
  auto result = deidentify(sample_record(), FieldSchema::standard_patient(), pseudo);
  ASSERT_TRUE(result.is_ok());
  const auto& fields = result->fields;
  for (const char* gone : {"patient_id", "name", "ssn", "phone", "email", "address"}) {
    EXPECT_FALSE(fields.contains(gone)) << gone << " survived de-identification";
  }
}

TEST(Deidentify, GeneralizesQuasiIdentifiers) {
  Pseudonymizer pseudo(to_bytes("k"));
  auto result = deidentify(sample_record(), FieldSchema::standard_patient(), pseudo);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->fields.at("age"), "35-39");
  EXPECT_EQ(result->fields.at("zip"), "105**");
  EXPECT_EQ(result->fields.at("birth_date"), "1981");
}

TEST(Deidentify, KeepsClinicalPayload) {
  Pseudonymizer pseudo(to_bytes("k"));
  auto result = deidentify(sample_record(), FieldSchema::standard_patient(), pseudo);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->fields.at("diagnosis"), "type-2-diabetes");
  EXPECT_EQ(result->fields.at("hba1c"), "7.2");
  EXPECT_EQ(result->fields.at("pseudonym"), result->pseudonym);
}

TEST(Deidentify, SamePatientSamePseudonym) {
  Pseudonymizer pseudo(to_bytes("k"));
  auto schema = FieldSchema::standard_patient();
  auto r1 = deidentify(sample_record(), schema, pseudo);
  auto record2 = sample_record();
  record2["hba1c"] = "8.8";  // later visit, same patient
  auto r2 = deidentify(record2, schema, pseudo);
  EXPECT_EQ(r1->pseudonym, r2->pseudonym);  // longitudinal linkage preserved
}

TEST(Deidentify, MissingIdFieldRejected) {
  Pseudonymizer pseudo(to_bytes("k"));
  FieldMap record{{"name", "Jane"}};
  auto result = deidentify(record, FieldSchema::standard_patient(), pseudo);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- k-anonymity

std::vector<FieldMap> make_population(Rng& rng, std::size_t n) {
  std::vector<FieldMap> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    records.push_back(FieldMap{
        {"age", std::to_string(rng.uniform_int(18, 95))},
        {"zip", std::to_string(rng.uniform_int(10000, 99999))},
        {"diagnosis", std::string("dx-") + std::to_string(rng.uniform_int(0, 8))},
    });
  }
  return records;
}

class KAnonymitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KAnonymitySweep, OutputSatisfiesK) {
  Rng rng(40);
  auto records = make_population(rng, 500);
  std::vector<std::string> qi{"age", "zip"};
  auto result = k_anonymize(records, qi, GetParam());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->suppressed, 0u);
  EXPECT_EQ(result->records.size(), records.size());
  EXPECT_TRUE(is_k_anonymous(result->records, qi, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Ks, KAnonymitySweep, ::testing::Values(2, 5, 10, 25, 50));

TEST(KAnonymity, SensitiveFieldsPreserved) {
  Rng rng(41);
  auto records = make_population(rng, 200);
  auto result = k_anonymize(records, {"age", "zip"}, 5);
  ASSERT_TRUE(result.is_ok());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(result->records[i].at("diagnosis"), records[i].at("diagnosis"));
  }
}

TEST(KAnonymity, HigherKMeansCoarserClasses) {
  Rng rng(42);
  auto records = make_population(rng, 400);
  auto k2 = k_anonymize(records, {"age", "zip"}, 2);
  auto k25 = k_anonymize(records, {"age", "zip"}, 25);
  ASSERT_TRUE(k2.is_ok());
  ASSERT_TRUE(k25.is_ok());
  // Utility/privacy trade-off: larger k -> larger average class size.
  EXPECT_GT(average_class_size(k25->records, {"age", "zip"}),
            average_class_size(k2->records, {"age", "zip"}));
}

TEST(KAnonymity, TinyInputSuppressed) {
  Rng rng(43);
  auto records = make_population(rng, 3);
  auto result = k_anonymize(records, {"age"}, 5);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->suppressed, 3u);
  EXPECT_TRUE(result->records.empty());
}

TEST(KAnonymity, RejectsBadInputs) {
  Rng rng(44);
  auto records = make_population(rng, 10);
  EXPECT_EQ(k_anonymize(records, {"age"}, 0).status().code(),
            StatusCode::kInvalidArgument);
  records[0]["age"] = "not-a-number";
  EXPECT_EQ(k_anonymize(records, {"age"}, 2).status().code(),
            StatusCode::kInvalidArgument);
  records[0].erase("age");
  EXPECT_EQ(k_anonymize(records, {"age"}, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(KAnonymity, IsKAnonymousDetectsViolation) {
  std::vector<FieldMap> records{
      {{"age", "30-34"}}, {{"age", "30-34"}}, {{"age", "35-39"}}};
  EXPECT_TRUE(is_k_anonymous(records, {"age"}, 1));
  EXPECT_FALSE(is_k_anonymous(records, {"age"}, 2));  // lone 35-39 class
  EXPECT_TRUE(is_k_anonymous({}, {"age"}, 5));        // vacuous
}

TEST(KAnonymity, LDiversityComputed) {
  std::vector<FieldMap> records{
      {{"age", "a"}, {"dx", "flu"}},
      {{"age", "a"}, {"dx", "diabetes"}},
      {{"age", "b"}, {"dx", "flu"}},
      {{"age", "b"}, {"dx", "flu"}},
  };
  // Class "a" has 2 distinct dx, class "b" has 1 -> l = 1.
  EXPECT_EQ(l_diversity(records, {"age"}, "dx"), 1u);
  EXPECT_EQ(l_diversity({}, {"age"}, "dx"), 0u);
}

TEST(KAnonymity, SingleDimensionAllEqual) {
  // All QI values identical: one class, no split possible, still k-anonymous.
  std::vector<FieldMap> records(10, FieldMap{{"age", "50"}});
  auto result = k_anonymize(records, {"age"}, 5);
  ASSERT_TRUE(result.is_ok());
  EXPECT_TRUE(is_k_anonymous(result->records, {"age"}, 5));
  EXPECT_EQ(result->records[0].at("age"), "50");  // degenerate range collapses
}

// ----------------------------------------------------------- verification

class VerificationFixture : public ::testing::Test {
 protected:
  VerificationFixture()
      : service_(FieldSchema::standard_patient(), 0.99, 2),
        pseudo_(to_bytes("k")) {}

  FieldMap deidentified(const FieldMap& raw) {
    return deidentify(raw, FieldSchema::standard_patient(), pseudo_)->fields;
  }

  AnonymizationVerificationService service_;
  Pseudonymizer pseudo_;
};

TEST_F(VerificationFixture, ProperlyDeidentifiedRecordAccepted) {
  auto fields = deidentified(sample_record());
  auto degree = service_.verify(fields, {"age", "zip", "gender"});
  EXPECT_DOUBLE_EQ(degree.record_score, 1.0);
  EXPECT_TRUE(degree.acceptable) << degree.reason;
}

TEST_F(VerificationFixture, RawRecordRejected) {
  auto degree = service_.verify(sample_record(), {"age", "zip", "gender"});
  EXPECT_LT(degree.record_score, 0.99);
  EXPECT_FALSE(degree.acceptable);
  EXPECT_FALSE(degree.reason.empty());
}

TEST_F(VerificationFixture, SurvivingSsnIsDisqualifying) {
  auto fields = deidentified(sample_record());
  fields["ssn"] = "123-45-6789";  // sloppy client left the SSN in
  auto degree = service_.verify(fields, {"age", "zip", "gender"});
  EXPECT_FALSE(degree.acceptable);
}

TEST_F(VerificationFixture, RawQuasiIdentifierPenalized) {
  auto fields = deidentified(sample_record());
  fields["age"] = "37";  // raw age instead of a band
  auto degree = service_.verify(fields, {"age", "zip", "gender"});
  EXPECT_LT(degree.record_score, 1.0);
  EXPECT_FALSE(degree.acceptable);
}

TEST_F(VerificationFixture, HolisticKGrowsWithCrowd) {
  auto fields = deidentified(sample_record());
  auto first = service_.verify(fields, {"age", "zip", "gender"});
  auto second = service_.verify(fields, {"age", "zip", "gender"});
  EXPECT_EQ(first.holistic_k, 1u);
  EXPECT_EQ(second.holistic_k, 2u);
  EXPECT_TRUE(second.acceptable);
  EXPECT_EQ(service_.population_size(), 1u);  // same signature, one class
}

TEST_F(VerificationFixture, LonelyEquivalenceClassRejectedOncePopulated) {
  auto common = deidentified(sample_record());
  (void)service_.verify(common, {"age", "zip", "gender"});
  (void)service_.verify(common, {"age", "zip", "gender"});

  auto outlier = sample_record();
  outlier["age"] = "104";
  outlier["zip"] = "99999";
  auto fields = deidentified(outlier);
  auto degree = service_.verify(fields, {"age", "zip", "gender"});
  EXPECT_FALSE(degree.acceptable);
  EXPECT_NE(degree.reason.find("equivalence class"), std::string::npos);
}

}  // namespace
}  // namespace hc::privacy
