// Integration-grade tests: the full ingestion pipeline and export service
// wired exactly the way the platform wires them.
#include <gtest/gtest.h>

#include <set>

#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "ingestion/export.h"
#include "ingestion/ingestion.h"
#include "obs/metrics.h"

namespace hc::ingestion {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture()
      : clock_(make_clock()),
        log_(make_log(clock_)),
        rng_(70),
        kms_("tenant-a", Rng(71), log_),
        lake_(kms_, "platform", Rng(72)),
        verifier_(privacy::FieldSchema::standard_patient(), 0.99, 1) {
    LedgerConfig();
    blockchain::LedgerConfig config;
    config.peers = {"peer-a", "peer-b", "peer-c"};
    ledger_ = std::make_unique<blockchain::PermissionedLedger>(config, clock_, log_);
    EXPECT_TRUE(blockchain::register_hcls_contracts(*ledger_).is_ok());

    lake_key_ = kms_.create_symmetric_key("platform");

    IngestionDeps deps;
    deps.clock = clock_;
    deps.log = log_;
    deps.kms = &kms_;
    deps.staging = &staging_;
    deps.queue = &queue_;
    deps.tracker = &tracker_;
    deps.lake = &lake_;
    deps.metadata = &metadata_;
    deps.ledger = ledger_.get();
    deps.verifier = &verifier_;
    deps.reid_map = &reid_map_;
    deps.metrics = metrics_;
    service_ = std::make_unique<IngestionService>(deps, lake_key_,
                                                  to_bytes("pseudo-key"), "platform");
  }

  void LedgerConfig() {}  // silence clang-tidy style confusion in fixtures

  /// Registers a client keypair the way the platform's registration
  /// service does, authorizing the ingestion worker on it.
  crypto::KeyId register_client(const std::string& user) {
    auto key_id = kms_.create_keypair(user);
    EXPECT_TRUE(kms_.authorize(key_id, user, "platform").is_ok());
    return key_id;
  }

  void grant_consent(const std::string& patient_id, const std::string& group) {
    ASSERT_TRUE(ledger_
                    ->submit_and_commit("consent",
                                        {{"action", "grant"},
                                         {"patient", patient_id},
                                         {"group", group}},
                                        "healthcare-provider")
                    .is_ok());
  }

  /// Seals a bundle to the client key and uploads it.
  Result<UploadReceipt> upload_bundle(const fhir::Bundle& bundle,
                                      const std::string& user,
                                      const crypto::KeyId& key_id,
                                      const std::string& group = "study-a") {
    auto pub = kms_.public_key(key_id);
    EXPECT_TRUE(pub.is_ok());
    auto envelope = crypto::envelope_seal(*pub, fhir::serialize_bundle(bundle), rng_);
    return service_->upload(envelope, user, group, key_id);
  }

  fhir::Bundle consented_bundle(const std::string& group = "study-a") {
    fhir::Bundle bundle = fhir::make_synthetic_bundle(
        rng_, "bundle-t" + std::to_string(patient_counter_), patient_counter_);
    ++patient_counter_;
    const auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    grant_consent(patient.id, group);
    return bundle;
  }

  std::size_t patient_counter_ = 0;

  ClockPtr clock_;
  LogPtr log_;
  Rng rng_;
  crypto::KeyManagementService kms_;
  storage::StagingArea staging_;
  storage::MessageQueue queue_;
  storage::StatusTracker tracker_;
  storage::DataLake lake_;
  storage::MetadataStore metadata_;
  privacy::AnonymizationVerificationService verifier_;
  privacy::ReidentificationMap reid_map_;
  obs::MetricsPtr metrics_ = obs::make_metrics();
  std::unique_ptr<blockchain::PermissionedLedger> ledger_;
  crypto::KeyId lake_key_;
  std::unique_ptr<IngestionService> service_;
};

TEST_F(PipelineFixture, HappyPathStoresDeidentifiedBundle) {
  auto key = register_client("clinic-a");
  fhir::Bundle bundle = consented_bundle();
  const auto original_patient = std::get<fhir::Patient>(bundle.resources[0]);

  auto receipt = upload_bundle(bundle, "clinic-a", key);
  ASSERT_TRUE(receipt.is_ok());
  EXPECT_EQ(queue_.depth(), 1u);
  EXPECT_EQ(tracker_.status(receipt->status_url).value().stage,
            storage::IngestionStage::kReceived);

  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_TRUE(outcome->stored) << outcome->failure_reason;

  // Status URL reports stored + reference id.
  auto status = tracker_.status(receipt->status_url).value();
  EXPECT_EQ(status.stage, storage::IngestionStage::kStored);
  EXPECT_EQ(status.reference_id, outcome->reference_id);

  // The stored bundle is de-identified: no name/ssn, pseudonymized refs.
  auto stored = lake_.get(outcome->reference_id);
  ASSERT_TRUE(stored.is_ok());
  auto parsed = fhir::parse_bundle(*stored);
  ASSERT_TRUE(parsed.is_ok());
  const auto& patient = std::get<fhir::Patient>(parsed->resources[0]);
  EXPECT_TRUE(patient.name.empty());
  EXPECT_TRUE(patient.ssn.empty());
  EXPECT_TRUE(patient.id.starts_with("pseu-"));
  EXPECT_NE(patient.id, original_patient.id);
  for (std::size_t i = 1; i < parsed->resources.size(); ++i) {
    std::visit(
        [&](const auto& r) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(r)>, fhir::Patient>) {
            EXPECT_EQ(r.patient_id, patient.id);
          }
        },
        parsed->resources[i]);
  }

  // Re-identification map links pseudonym back to the original patient.
  EXPECT_EQ(reid_map_.identity(patient.id).value(), original_patient.id);

  // Staging was cleaned up.
  EXPECT_EQ(staging_.size(), 0u);
}

TEST_F(PipelineFixture, ProvenanceAndPrivacyRecordedOnLedger) {
  auto key = register_client("clinic-a");
  auto receipt = upload_bundle(consented_bundle(), "clinic-a", key);
  ASSERT_TRUE(receipt.is_ok());
  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok() && outcome->stored);

  EXPECT_EQ(ledger_->state_value("provenance", outcome->reference_id + "/last_event")
                .value(),
            "anonymized");
  EXPECT_TRUE(
      ledger_->state_value("privacy", outcome->reference_id + "/score").is_ok());
  EXPECT_TRUE(ledger_->validate_chain().is_ok());
}

TEST_F(PipelineFixture, MissingConsentRejected) {
  auto key = register_client("clinic-a");
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "bundle-nc");  // no consent
  auto receipt = upload_bundle(bundle, "clinic-a", key);
  ASSERT_TRUE(receipt.is_ok());

  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("consent"), std::string::npos);
  EXPECT_EQ(tracker_.status(receipt->upload_id).value().stage,
            storage::IngestionStage::kFailed);
  EXPECT_EQ(lake_.object_count(), 0u);
}

TEST_F(PipelineFixture, MalwareRejectedAndReportedOnLedger) {
  auto key = register_client("sketchy-sender");
  fhir::Bundle bundle = consented_bundle();
  // Embed the test signature in a clinical field so it survives into bytes.
  std::get<fhir::Patient>(bundle.resources[0]).address =
      to_string(test_malware_payload());
  auto receipt = upload_bundle(bundle, "sketchy-sender", key);
  ASSERT_TRUE(receipt.is_ok());

  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("malware"), std::string::npos);
  EXPECT_EQ(blockchain::MalwareContract::infected_count(*ledger_, "sketchy-sender"), 1u);
}

TEST_F(PipelineFixture, MalformedBundleRejected) {
  auto key = register_client("clinic-a");
  auto pub = kms_.public_key(key);
  auto envelope = crypto::envelope_seal(*pub, to_bytes("this is not json"), rng_);
  auto receipt = service_->upload(envelope, "clinic-a", "study-a", key);
  ASSERT_TRUE(receipt.is_ok());

  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("parse"), std::string::npos);
}

TEST_F(PipelineFixture, InvalidBundleRejected) {
  auto key = register_client("clinic-a");
  fhir::Bundle bundle = consented_bundle();
  std::get<fhir::Patient>(bundle.resources[0]).age = 999;  // fails validation
  auto receipt = upload_bundle(bundle, "clinic-a", key);
  ASSERT_TRUE(receipt.is_ok());

  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("validation"), std::string::npos);
}

TEST_F(PipelineFixture, WrongClientKeyRejected) {
  auto key = register_client("clinic-a");
  auto other_key = register_client("clinic-b");
  fhir::Bundle bundle = consented_bundle();
  // Sealed to clinic-b's key but the message claims clinic-a's key id.
  auto pub_b = kms_.public_key(other_key);
  auto envelope = crypto::envelope_seal(*pub_b, fhir::serialize_bundle(bundle), rng_);
  auto receipt = service_->upload(envelope, "clinic-a", "study-a", key);
  ASSERT_TRUE(receipt.is_ok());

  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("decryption failed"), std::string::npos);
}

TEST_F(PipelineFixture, UploadRequiresConsentGroup) {
  auto key = register_client("clinic-a");
  auto pub = kms_.public_key(key);
  auto envelope = crypto::envelope_seal(*pub, Bytes{1}, rng_);
  EXPECT_EQ(service_->upload(envelope, "clinic-a", "", key).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PipelineFixture, EmptyQueueIsFailedPrecondition) {
  EXPECT_EQ(service_->process_next().status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PipelineFixture, ProcessAllDrainsMixedQueue) {
  auto key = register_client("clinic-a");
  // 3 good uploads + 1 without consent.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(upload_bundle(consented_bundle(), "clinic-a", key).is_ok());
  }
  ASSERT_TRUE(
      upload_bundle(fhir::make_synthetic_bundle(rng_, "nc", 9999), "clinic-a", key)
          .is_ok());

  EXPECT_EQ(service_->process_all(), 3u);
  EXPECT_TRUE(queue_.empty());
  EXPECT_EQ(lake_.object_count(), 6u);  // de-identified + original per record
  EXPECT_EQ(metadata_.size(), 6u);
}

TEST_F(PipelineFixture, PerPatientDataKeysReusedAndDistinct) {
  auto key = register_client("clinic-a");
  fhir::Bundle first_patient = consented_bundle();
  ASSERT_TRUE(upload_bundle(first_patient, "clinic-a", key).is_ok());
  ASSERT_TRUE(upload_bundle(first_patient, "clinic-a", key).is_ok());  // 2nd visit
  fhir::Bundle second_patient = consented_bundle();
  ASSERT_TRUE(upload_bundle(second_patient, "clinic-a", key).is_ok());
  ASSERT_EQ(service_->process_all(), 3u);

  std::set<std::string> pseudonyms;
  for (const auto& md : metadata_.by_group("study-a")) pseudonyms.insert(md.pseudonym);
  ASSERT_EQ(pseudonyms.size(), 2u);

  std::set<crypto::KeyId> keys;
  for (const auto& pseudonym : pseudonyms) {
    auto data_key = service_->patient_key(pseudonym);
    ASSERT_TRUE(data_key.is_ok());
    keys.insert(*data_key);
  }
  // Two patients -> two distinct data keys; the repeat visit reused one.
  EXPECT_EQ(keys.size(), 2u);
  EXPECT_EQ(service_->patient_key("pseu-unknown").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------- metrics

TEST_F(PipelineFixture, StoredUploadRecordsOneSamplePerPipelineStage) {
  auto key = register_client("clinic-a");
  ASSERT_TRUE(upload_bundle(consented_bundle(), "clinic-a", key).is_ok());
  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok() && outcome->stored);

  for (const char* stage :
       {"decrypt", "validate", "scan", "consent", "deidentify", "store"}) {
    const obs::Histogram* h =
        metrics_->histogram(std::string("hc.ingestion.stage.") + stage + "_us");
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count, 1u) << stage;
    EXPECT_GT(h->sum, 0.0) << stage;
  }
  EXPECT_EQ(metrics_->counter("hc.ingestion.uploads"), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.stored"), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.rejects"), 0u);
}

TEST_F(PipelineFixture, StageLatenciesSumToChargedSimTime) {
  auto key = register_client("clinic-a");
  ASSERT_TRUE(upload_bundle(consented_bundle(), "clinic-a", key).is_ok());
  SimTime before = clock_->now();
  ASSERT_TRUE(service_->process_next().is_ok());

  // All worker sim time is attributed to exactly one stage histogram
  // (the ledger commits in between do not advance this clock: no network).
  double recorded = 0.0;
  for (const auto& [name, metric] : metrics_->metrics()) {
    if (name.starts_with("hc.ingestion.stage.")) recorded += metric.histogram.sum;
  }
  EXPECT_DOUBLE_EQ(recorded, static_cast<double>(clock_->now() - before));
}

TEST_F(PipelineFixture, RejectedUploadIncrementsMatchingRejectCounter) {
  auto key = register_client("clinic-a");
  // No consent granted for this bundle.
  ASSERT_TRUE(
      upload_bundle(fhir::make_synthetic_bundle(rng_, "bundle-nc"), "clinic-a", key)
          .is_ok());
  auto outcome = service_->process_next();
  ASSERT_TRUE(outcome.is_ok());
  ASSERT_FALSE(outcome->stored);

  EXPECT_EQ(metrics_->counter("hc.ingestion.rejects"), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.reject.consent"), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.stored"), 0u);
  // The pipeline stopped at consent: no de-identify or store samples.
  EXPECT_EQ(metrics_->histogram("hc.ingestion.stage.deidentify_us"), nullptr);
  EXPECT_EQ(metrics_->histogram("hc.ingestion.stage.store_us"), nullptr);
  // ...but every stage before the verdict ran exactly once.
  EXPECT_EQ(metrics_->histogram("hc.ingestion.stage.decrypt_us")->count, 1u);
  EXPECT_EQ(metrics_->histogram("hc.ingestion.stage.consent_us")->count, 1u);
}

TEST_F(PipelineFixture, EachRejectCategoryCountsSeparately) {
  auto key = register_client("clinic-a");
  // 1) malware
  fhir::Bundle infected = consented_bundle();
  std::get<fhir::Patient>(infected.resources[0]).address =
      to_string(test_malware_payload());
  ASSERT_TRUE(upload_bundle(infected, "clinic-a", key).is_ok());
  // 2) parse failure
  auto pub = kms_.public_key(key);
  auto envelope = crypto::envelope_seal(*pub, to_bytes("not json"), rng_);
  ASSERT_TRUE(service_->upload(envelope, "clinic-a", "study-a", key).is_ok());
  // 3) one clean upload
  ASSERT_TRUE(upload_bundle(consented_bundle(), "clinic-a", key).is_ok());

  EXPECT_EQ(service_->process_all(), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.uploads"), 3u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.rejects"), 2u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.reject.malware"), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.reject.parse"), 1u);
  EXPECT_EQ(metrics_->counter("hc.ingestion.stored"), 1u);
}

// ----------------------------------------------------------------- export

class ExportFixture : public PipelineFixture {
 protected:
  /// Ingest `n` consented synthetic patients into study-a.
  void ingest_population(std::size_t n) {
    auto key = register_client("clinic-a");
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(upload_bundle(consented_bundle(), "clinic-a", key).is_ok());
    }
    ASSERT_EQ(service_->process_all(), n);
  }
};

TEST_F(ExportFixture, AnonymizedExportIsKAnonymous) {
  ingest_population(40);
  ExportService exporter(lake_, metadata_, reid_map_, ledger_.get());
  auto result = exporter.export_anonymized("study-a", 5);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result->record_count, 40u);
  EXPECT_EQ(result->rows.size() + result->suppressed, 40u);
  EXPECT_TRUE(privacy::is_k_anonymous(result->rows, {"age", "zip"}, 5));
  // No pseudonym-free identifiers in the rows.
  for (const auto& row : result->rows) {
    EXPECT_FALSE(row.contains("name"));
    EXPECT_FALSE(row.contains("ssn"));
  }
}

TEST_F(ExportFixture, FullExportReidentifies) {
  ingest_population(5);
  ExportService exporter(lake_, metadata_, reid_map_, ledger_.get());
  auto result = exporter.export_full("study-a", "cro-7");
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result->size(), 5u);
  for (const auto& record : *result) {
    EXPECT_TRUE(record.patient_id.starts_with("patient-"));
    // Full export delivers the retained *original* bundle: identifiers are
    // back (Section IV.B.1 stores both versions).
    auto bundle = fhir::parse_bundle(record.bundle_bytes);
    ASSERT_TRUE(bundle.is_ok());
    const auto& patient = std::get<fhir::Patient>(bundle->resources[0]);
    EXPECT_EQ(patient.id, record.patient_id);
    EXPECT_FALSE(patient.name.empty());
    EXPECT_FALSE(patient.ssn.empty());
    // Export recorded on the provenance ledger.
    EXPECT_EQ(
        ledger_->state_value("provenance", record.reference_id + "/last_event").value(),
        "exported");
  }
}

TEST_F(ExportFixture, OriginalCopiesAreCryptoShreddedWithThePatientKey) {
  ingest_population(1);
  auto mds = metadata_.by_group("study-a");
  ASSERT_EQ(mds.size(), 1u);
  ASSERT_FALSE(mds[0].original_reference_id.empty());

  // Destroy the per-patient key: BOTH stored copies become unreadable.
  auto key = service_->patient_key(mds[0].pseudonym).value();
  ASSERT_TRUE(kms_.destroy(key, "platform").is_ok());
  EXPECT_EQ(lake_.get(mds[0].reference_id).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(lake_.get(mds[0].original_reference_id).status().code(),
            StatusCode::kDataLoss);
}

TEST_F(ExportFixture, ForgottenPatientExcludedFromFullExport) {
  ingest_population(3);
  // Forget one patient (GDPR right-to-forget).
  auto records = metadata_.by_group("study-a");
  ASSERT_EQ(records.size(), 3u);
  ASSERT_TRUE(reid_map_.forget(records[0].pseudonym));

  ExportService exporter(lake_, metadata_, reid_map_, ledger_.get());
  auto result = exporter.export_full("study-a", "cro-7");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST_F(ExportFixture, UnknownGroupNotFound) {
  ingest_population(2);
  ExportService exporter(lake_, metadata_, reid_map_, ledger_.get());
  EXPECT_EQ(exporter.export_anonymized("ghost-study", 2).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(exporter.export_full("ghost-study", "cro").status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------- malware

TEST(MalwareScanner, DetectsKnownSignatures) {
  MalwareScanner scanner;
  Bytes clean = to_bytes("an ordinary fhir bundle");
  EXPECT_FALSE(scanner.scan(clean).infected);

  Bytes infected = clean;
  Bytes payload = test_malware_payload();
  infected.insert(infected.end(), payload.begin(), payload.end());
  auto result = scanner.scan(infected);
  EXPECT_TRUE(result.infected);
  EXPECT_EQ(result.signature_name, "hc-test-signature");
}

TEST(MalwareScanner, CustomSignatures) {
  MalwareScanner scanner;
  auto before = scanner.signature_count();
  scanner.add_signature("custom", to_bytes("EVIL-BYTES"));
  EXPECT_EQ(scanner.signature_count(), before + 1);
  EXPECT_TRUE(scanner.scan(to_bytes("xxEVIL-BYTESxx")).infected);
}

TEST(MalwareScanner, EmptyDataClean) {
  MalwareScanner scanner;
  EXPECT_FALSE(scanner.scan({}).infected);
}

}  // namespace
}  // namespace hc::ingestion
