// Threat-model tests (Section IV.A): the paper names honest-but-curious
// and malicious adversaries, external attackers and insiders. Each test
// plays one adversary against the platform's controls and asserts the
// attack is contained with the failure visible to audit.
#include <gtest/gtest.h>

#include <algorithm>

#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/enhanced_client.h"
#include "platform/gateway.h"
#include "platform/instance.h"
#include "platform/routes.h"

namespace hc {
namespace {

class AdversaryFixture : public ::testing::Test {
 protected:
  AdversaryFixture()
      : clock_(make_clock()), network_(clock_, Rng(170)), rng_(171) {
    platform::InstanceConfig config;
    config.name = "cloud";
    cloud_ = std::make_unique<platform::HealthCloudInstance>(config, clock_, network_);
    network_.set_link("client", "cloud", net::LinkProfile::wan());

    client_config_.name = "client";
    client_ = std::make_unique<platform::EnhancedClient>(client_config_, *cloud_,
                                                         "honest-clinic");
  }

  /// Ingest one consented record; returns (reference, pseudonym, patient id).
  std::tuple<std::string, std::string, std::string> ingest_one() {
    fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "b", counter_++);
    std::string patient_id = std::get<fhir::Patient>(bundle.resources[0]).id;
    (void)cloud_->ledger().submit_and_commit(
        "consent",
        {{"action", "grant"}, {"patient", patient_id}, {"group", "study"}},
        "provider");
    (void)client_->upload_bundle(bundle, "study");
    auto outcome = cloud_->ingestion().process_next();
    EXPECT_TRUE(outcome.is_ok() && outcome->stored);
    auto md = cloud_->metadata().get(outcome->reference_id).value();
    return {outcome->reference_id, md.pseudonym, patient_id};
  }

  ClockPtr clock_;
  net::SimNetwork network_;
  Rng rng_;
  std::unique_ptr<platform::HealthCloudInstance> cloud_;
  platform::EnhancedClientConfig client_config_;
  std::unique_ptr<platform::EnhancedClient> client_;
  std::size_t counter_ = 0;
};

// --- honest-but-curious analyst -----------------------------------------

TEST_F(AdversaryFixture, CuriousAnalystSeesNoIdentifiers) {
  auto [reference, pseudonym, patient_id] = ingest_one();

  // Whatever the analyst can legitimately read is de-identified: the
  // stored bundle carries no name/ssn/phone/email and no raw patient id.
  auto record = cloud_->lake().get(reference);
  ASSERT_TRUE(record.is_ok());
  std::string text = to_string(*record);
  EXPECT_EQ(text.find(patient_id), std::string::npos);
  auto bundle = fhir::parse_bundle(*record).value();
  const auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
  EXPECT_TRUE(patient.name.empty());
  EXPECT_TRUE(patient.ssn.empty());
  EXPECT_TRUE(patient.phone.empty());
  EXPECT_TRUE(patient.email.empty());
}

TEST_F(AdversaryFixture, CuriousAnalystCannotReidentifyViaMetadata) {
  auto [reference, pseudonym, patient_id] = ingest_one();
  // Metadata carries only the pseudonym; the reid map is a separate store
  // the analyst has no handle to through any read API.
  auto md = cloud_->metadata().get(reference).value();
  EXPECT_EQ(md.pseudonym.find("pseu-"), 0u);
  EXPECT_EQ(md.pseudonym.find(patient_id), std::string::npos);
}

// --- malicious external client --------------------------------------------

TEST_F(AdversaryFixture, StolenEnvelopeReplayedUnderWrongKeyRejected) {
  // Mallory captures Alice's encrypted upload and replays it claiming her
  // own key id: decryption under Mallory's key fails, nothing is stored.
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "steal", 50);
  auto alice_pub = cloud_->kms().public_key(client_->client_key()).value();
  auto envelope = crypto::envelope_seal(alice_pub, fhir::serialize_bundle(bundle), rng_);

  auto mallory_key = cloud_->issue_client_keypair("mallory");
  auto receipt = cloud_->ingestion().upload(envelope, "mallory", "study", mallory_key);
  ASSERT_TRUE(receipt.is_ok());
  auto outcome = cloud_->ingestion().process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("decryption failed"), std::string::npos);
  EXPECT_EQ(cloud_->lake().object_count(), 0u);
}

TEST_F(AdversaryFixture, ForgedConsentDoesNotAdmitData) {
  // Mallory uploads data for a patient who never consented.
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "noconsent", 60);
  auto key = cloud_->issue_client_keypair("mallory");
  auto pub = cloud_->kms().public_key(key).value();
  auto envelope = crypto::envelope_seal(pub, fhir::serialize_bundle(bundle), rng_);
  ASSERT_TRUE(cloud_->ingestion().upload(envelope, "mallory", "study", key).is_ok());
  auto outcome = cloud_->ingestion().process_next();
  ASSERT_TRUE(outcome.is_ok());
  EXPECT_FALSE(outcome->stored);
  EXPECT_NE(outcome->failure_reason.find("consent"), std::string::npos);
}

// --- malicious insider -------------------------------------------------------

TEST_F(AdversaryFixture, InsiderLakeTamperDetectedOnRead) {
  auto [reference, pseudonym, patient_id] = ingest_one();
  ASSERT_TRUE(cloud_->lake().tamper_for_test(reference).is_ok());
  // Encrypt-then-MAC: the flipped ciphertext bit surfaces as an integrity
  // error, never as silently corrupted clinical data.
  auto read = cloud_->lake().get(reference);
  EXPECT_EQ(read.status().code(), StatusCode::kIntegrityError);
}

TEST_F(AdversaryFixture, InsiderWithoutKmsGrantReadsNothing) {
  auto [reference, pseudonym, patient_id] = ingest_one();
  // A storage admin clones the lake but acts as an unauthorized principal:
  // the KMS refuses the data key.
  storage::DataLake stolen_replica(cloud_->kms(), "rogue-admin", Rng(9));
  auto key = cloud_->ingestion().patient_key(pseudonym).value();
  EXPECT_EQ(cloud_->kms().symmetric_key(key, "rogue-admin").status().code(),
            StatusCode::kPermissionDenied);
  (void)stolen_replica;
  // And the denial is on the audit log.
  EXPECT_FALSE(cloud_->log()->by_event("key_access_denied").empty());
}

TEST_F(AdversaryFixture, InsiderLedgerRewriteDetected) {
  auto [reference, pseudonym, patient_id] = ingest_one();
  ASSERT_TRUE(cloud_->ledger().validate_chain().is_ok());
  cloud_->ledger().tamper_for_test(1, 0, "patient", "someone-else");
  EXPECT_EQ(cloud_->ledger().validate_chain().code(), StatusCode::kIntegrityError);
}

// --- insider vs hybrid-storage provenance ------------------------------------

class HybridTamperFixture : public AdversaryFixture {
 protected:
  HybridTamperFixture() {
    platform::InstanceConfig config;
    config.name = "cloud";
    config.hybrid_provenance = true;
    cloud_ = std::make_unique<platform::HealthCloudInstance>(config, clock_,
                                                             network_);
    client_ = std::make_unique<platform::EnhancedClient>(client_config_, *cloud_,
                                                         "honest-clinic");
  }

  /// Uploads `n` consented records, drains the pipeline (which flushes the
  /// anchorer), and returns the stored references.
  std::vector<std::string> ingest_anchored(std::size_t n) {
    std::vector<std::string> patients;
    for (std::size_t i = 0; i < n; ++i) {
      fhir::Bundle bundle = fhir::make_synthetic_bundle(rng_, "hb", counter_++);
      std::string patient_id = std::get<fhir::Patient>(bundle.resources[0]).id;
      (void)cloud_->ledger().submit_and_commit(
          "consent",
          {{"action", "grant"}, {"patient", patient_id}, {"group", "study"}},
          "provider");
      (void)client_->upload_bundle(bundle, "study");
      patients.push_back(patient_id);
    }
    EXPECT_EQ(cloud_->ingestion().process_all(), n);
    std::vector<std::string> references;
    for (const auto& batch : cloud_->anchorer()->batches()) {
      for (const auto& event : batch.events) {
        if (event.event == "received") references.push_back(event.record_ref);
      }
    }
    std::sort(references.begin(), references.end());
    EXPECT_EQ(references.size(), n);
    return references;
  }
};

TEST_F(HybridTamperFixture, AuditFlagsExactlyTheTamperedRecords) {
  std::vector<std::string> references = ingest_anchored(8);
  ASSERT_EQ(cloud_->anchorer()->anchored_batches(),
            cloud_->anchorer()->sealed_batches());

  // A clean sweep flags nothing.
  EXPECT_TRUE(cloud_->auditor()->audit(cloud_->metadata(), cloud_->lake()).empty());

  // The insider mutates three off-chain payloads *after* anchoring — two
  // ciphertext corruptions in the lake, one metadata content-hash rewrite.
  std::vector<std::string> expected = {references[1], references[4],
                                       references[6]};
  std::sort(expected.begin(), expected.end());
  ASSERT_TRUE(cloud_->lake().tamper_for_test(expected[0]).is_ok());
  ASSERT_TRUE(cloud_->lake().tamper_for_test(expected[1]).is_ok());
  auto md = cloud_->metadata().get(expected[2]).value();
  md.content_hash[0] ^= 0x01;
  ASSERT_TRUE(cloud_->metadata().put(md).is_ok());

  // The auditor flags exactly the hand-tampered set — nothing more.
  std::vector<std::string> flagged =
      cloud_->auditor()->audit(cloud_->metadata(), cloud_->lake());
  EXPECT_EQ(flagged, expected);

  // Untampered records still prove and verify against the chain.
  for (const std::string& reference : references) {
    if (std::find(expected.begin(), expected.end(), reference) !=
        expected.end()) {
      continue;
    }
    auto proof = cloud_->auditor()->prove(reference);
    ASSERT_TRUE(proof.is_ok()) << reference;
    EXPECT_TRUE(cloud_->auditor()->verify_onchain(*proof).is_ok());
  }
}

TEST_F(HybridTamperFixture, ForgedAnchorCannotShadowTheCommittedRoot) {
  ingest_anchored(4);
  const auto& batch = cloud_->anchorer()->batches()[0];
  // The insider tries to re-anchor batch 0 under a forged root: the
  // contract's duplicate check makes the committed root immutable.
  auto forged = cloud_->ledger().submit(
      std::string(provenance::AnchorContract::kName),
      {{"action", "anchor_batch"},
       {"batch_id", std::to_string(batch.batch_id)},
       {"root", std::string(64, 'a')},
       {"leaf_count", std::to_string(batch.events.size())},
       {"manifest", "forged"}},
      "insider");
  EXPECT_EQ(forged.status().code(), StatusCode::kAlreadyExists);
}

// --- API-surface attacks -----------------------------------------------------

TEST_F(AdversaryFixture, UnauthenticatedAndUnauthorizedApiAccessDenied) {
  platform::ApiGateway gateway(*cloud_);
  platform::install_standard_routes(gateway, *cloud_);
  auto [reference, pseudonym, patient_id] = ingest_one();

  platform::ApiRequest request;
  request.resource = "datalake/records/" + reference;

  // No credentials at all.
  EXPECT_EQ(gateway.handle(request).status().code(), StatusCode::kUnauthenticated);

  // A real user with no grants (default deny).
  auto tenant = cloud_->rbac().register_tenant("t").value();
  request.user_id = cloud_->rbac().add_user(tenant.id, "nobody").value();
  request.environment = tenant.default_env;
  request.scope = tenant.id;
  EXPECT_EQ(gateway.handle(request).status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(gateway.stats().served, 0u);
}

TEST_F(AdversaryFixture, TokenForgeryAndReplayAfterRevocation) {
  Rng idp_rng(172);
  rbac::IdentityProvider idp("partner-idp", idp_rng, clock_);
  cloud_->federated_auth().approve_idp(idp.name(), idp.public_key());
  cloud_->federated_auth().enroll("partner-idp", "dr@partner.org", "user-x");

  auto token = idp.issue("dr@partner.org", "tenant");
  ASSERT_TRUE(cloud_->federated_auth().authenticate(token).is_ok());

  // Forged subject on a captured token fails signature verification.
  auto forged = token;
  forged.subject = "admin@partner.org";
  EXPECT_FALSE(cloud_->federated_auth().authenticate(forged).is_ok());

  // After the IdP is revoked (e.g. compromise), previously valid tokens die.
  cloud_->federated_auth().revoke_idp("partner-idp");
  EXPECT_FALSE(cloud_->federated_auth().authenticate(token).is_ok());
}

}  // namespace
}  // namespace hc
