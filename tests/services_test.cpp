#include <gtest/gtest.h>

#include "services/knowledge.h"
#include "services/registry.h"

namespace hc::services {
namespace {

class RegistryFixture : public ::testing::Test {
 protected:
  RegistryFixture() : clock_(make_clock()), registry_(clock_, Rng(90)) {
    ServiceProfile fast;
    fast.name = "provider-a/text";
    fast.category = Category::kTextExtraction;
    fast.mean_latency = 20 * kMillisecond;
    fast.availability = 0.99;
    fast.accuracy = 0.85;
    registry_.register_service(fast);

    ServiceProfile slow;
    slow.name = "provider-b/text";
    slow.category = Category::kTextExtraction;
    slow.mean_latency = 200 * kMillisecond;
    slow.availability = 0.95;
    slow.accuracy = 0.92;
    registry_.register_service(slow);

    ServiceProfile speech;
    speech.name = "provider-a/speech";
    speech.category = Category::kSpeechRecognition;
    registry_.register_service(speech);
  }

  ClockPtr clock_;
  ServiceRegistry registry_;
};

TEST_F(RegistryFixture, ListsByCategory) {
  EXPECT_EQ(registry_.services_in(Category::kTextExtraction).size(), 2u);
  EXPECT_EQ(registry_.services_in(Category::kSpeechRecognition).size(), 1u);
  EXPECT_TRUE(registry_.services_in(Category::kVisualRecognition).empty());
}

TEST_F(RegistryFixture, InvokeChargesLatencyAndEchoes) {
  SimTime before = clock_->now();
  auto r = registry_.invoke("provider-a/text", to_bytes("extract this"));
  ASSERT_TRUE(r.is_ok());
  EXPECT_GE(clock_->now() - before, 20 * kMillisecond);
  EXPECT_EQ(to_string(r->response), "echo:extract this");
}

TEST_F(RegistryFixture, UnknownServiceNotFound) {
  EXPECT_EQ(registry_.invoke("nope", {}).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.stats("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry_.run_accuracy_test("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(RegistryFixture, StatsLearnFromInvocations) {
  for (int i = 0; i < 50; ++i) (void)registry_.invoke("provider-a/text", {});
  auto stats = registry_.stats("provider-a/text").value();
  EXPECT_EQ(stats.invocations, 50u);
  // EWMA latency near the true mean (within jitter).
  EXPECT_NEAR(stats.observed_latency_us, 25.0 * kMillisecond, 10.0 * kMillisecond);
  EXPECT_GT(stats.observed_availability, 0.8);
}

TEST_F(RegistryFixture, UnavailabilityTracked) {
  auto profile = registry_.mutable_profile("provider-b/text");
  ASSERT_TRUE(profile.is_ok());
  (*profile)->availability = 0.0;  // total outage
  int failures = 0;
  for (int i = 0; i < 20; ++i) {
    if (!registry_.invoke("provider-b/text", {}).is_ok()) ++failures;
  }
  EXPECT_EQ(failures, 20);
  auto stats = registry_.stats("provider-b/text").value();
  EXPECT_EQ(stats.failures, 20u);
  EXPECT_LT(stats.observed_availability, 0.1);
}

TEST_F(RegistryFixture, AccuracyTestApproximatesTruth) {
  auto measured = registry_.run_accuracy_test("provider-b/text", 400);
  ASSERT_TRUE(measured.is_ok());
  EXPECT_NEAR(*measured, 0.92 * 0.95, 0.08);  // accuracy x availability
  EXPECT_EQ(registry_.run_accuracy_test("provider-a/text", 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RegistryFixture, FeedbackStoredButSeparate) {
  EXPECT_EQ(registry_.average_feedback("provider-a/text").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(registry_.record_feedback("provider-a/text", 5).is_ok());
  ASSERT_TRUE(registry_.record_feedback("provider-a/text", 3).is_ok());
  EXPECT_DOUBLE_EQ(registry_.average_feedback("provider-a/text").value(), 4.0);
  EXPECT_EQ(registry_.record_feedback("provider-a/text", 6).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry_.record_feedback("provider-a/text", 0).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(RegistryFixture, BestServicePrefersFastWhenLatencyWeighted) {
  // Warm both with observations.
  for (int i = 0; i < 30; ++i) {
    (void)registry_.invoke("provider-a/text", {});
    (void)registry_.invoke("provider-b/text", {});
  }
  SelectionCriteria latency_first;
  latency_first.latency_weight = 5.0;
  latency_first.accuracy_weight = 0.1;
  auto best = registry_.best_service(Category::kTextExtraction, latency_first);
  ASSERT_TRUE(best.is_ok());
  EXPECT_EQ(*best, "provider-a/text");
}

TEST_F(RegistryFixture, BestServicePrefersAccurateWhenAccuracyWeighted) {
  SelectionCriteria accuracy_first;
  accuracy_first.latency_weight = 0.0;
  accuracy_first.availability_weight = 0.0;
  accuracy_first.accuracy_weight = 1.0;
  auto best = registry_.best_service(Category::kTextExtraction, accuracy_first);
  ASSERT_TRUE(best.is_ok());
  EXPECT_EQ(*best, "provider-b/text");
}

TEST_F(RegistryFixture, BestServiceAdaptsToDrift) {
  // provider-a degrades badly; selection should flip to provider-b.
  auto profile = registry_.mutable_profile("provider-a/text");
  (*profile)->mean_latency = 900 * kMillisecond;
  (*profile)->availability = 0.4;
  for (int i = 0; i < 60; ++i) {
    (void)registry_.invoke("provider-a/text", {});
    (void)registry_.invoke("provider-b/text", {});
  }
  auto best = registry_.best_service(Category::kTextExtraction);
  ASSERT_TRUE(best.is_ok());
  EXPECT_EQ(*best, "provider-b/text");
}

TEST_F(RegistryFixture, EmptyCategoryNotFound) {
  EXPECT_EQ(registry_.best_service(Category::kVisualRecognition).status().code(),
            StatusCode::kNotFound);
}

// --------------------------------------------------------------- knowledge

class KnowledgeFixture : public ::testing::Test {
 protected:
  KnowledgeFixture() : clock_(make_clock()), hub_(clock_) {
    KnowledgeBaseConfig config;
    config.name = "drugbank";
    config.fetch_latency = 90 * kMillisecond;
    config.cache_capacity = 8;
    hub_.add_knowledge_base(config, {{"drug-1", "targets:abc"},
                                     {"drug-2", "targets:def"}});
  }

  ClockPtr clock_;
  KnowledgeHub hub_;
};

TEST_F(KnowledgeFixture, MissFetchesRemotelyThenCaches) {
  auto first = hub_.query("drugbank", "drug-1");
  ASSERT_TRUE(first.is_ok());
  EXPECT_FALSE(first->from_cache);
  EXPECT_GE(first->latency, 90 * kMillisecond);

  auto second = hub_.query("drugbank", "drug-1");
  ASSERT_TRUE(second.is_ok());
  EXPECT_TRUE(second->from_cache);
  // The paper's point: cached access is orders of magnitude faster.
  EXPECT_LT(second->latency * 100, first->latency);
  EXPECT_EQ(second->value, "targets:abc");
}

TEST_F(KnowledgeFixture, UnknownKeysAndKbs) {
  EXPECT_EQ(hub_.query("drugbank", "drug-404").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(hub_.query("ghost-kb", "x").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(hub_.has_knowledge_base("ghost-kb"));
  EXPECT_TRUE(hub_.has_knowledge_base("drugbank"));
}

TEST_F(KnowledgeFixture, StaleCacheUntilRefreshOrInvalidate) {
  ASSERT_TRUE(hub_.query("drugbank", "drug-1").is_ok());
  ASSERT_TRUE(hub_.update_remote("drugbank", "drug-1", "targets:NEW").is_ok());

  // Cached copy is stale — the documented trade-off.
  EXPECT_EQ(hub_.query("drugbank", "drug-1")->value, "targets:abc");

  // query_fresh bypasses and refreshes.
  auto fresh = hub_.query_fresh("drugbank", "drug-1");
  ASSERT_TRUE(fresh.is_ok());
  EXPECT_EQ(fresh->value, "targets:NEW");
  EXPECT_EQ(hub_.query("drugbank", "drug-1")->value, "targets:NEW");
}

TEST_F(KnowledgeFixture, InvalidateForcesRefetch) {
  ASSERT_TRUE(hub_.query("drugbank", "drug-2").is_ok());
  ASSERT_TRUE(hub_.update_remote("drugbank", "drug-2", "targets:v2").is_ok());
  ASSERT_TRUE(hub_.invalidate("drugbank", "drug-2").is_ok());
  auto lookup = hub_.query("drugbank", "drug-2");
  ASSERT_TRUE(lookup.is_ok());
  EXPECT_FALSE(lookup->from_cache);
  EXPECT_EQ(lookup->value, "targets:v2");
}

TEST_F(KnowledgeFixture, CacheStatsExposed) {
  (void)hub_.query("drugbank", "drug-1");
  (void)hub_.query("drugbank", "drug-1");
  auto stats = hub_.cache_stats("drugbank").value();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST(KnowledgeHub, StandardKbsInstall) {
  auto clock = make_clock();
  KnowledgeHub hub(clock);
  Rng rng(91);
  install_standard_knowledge_bases(hub, rng, 100);
  for (const char* kb : {"drugbank", "sider", "pubchem", "disgenet", "dbpedia",
                         "wikidata", "wordnet"}) {
    EXPECT_TRUE(hub.has_knowledge_base(kb)) << kb;
  }
  EXPECT_TRUE(hub.query("drugbank", "drug-0").is_ok());
}

TEST(FactExtraction, FindsCooccurrences) {
  std::map<std::string, std::string> abstracts{
      {"pmid-1", "We study metformin effects in type-2-diabetes cohorts."},
      {"pmid-2", "Aspirin was not associated with asthma outcomes."},
      {"pmid-3", "No drugs mentioned here at all."},
  };
  auto facts = extract_facts(abstracts, {"metformin", "aspirin"},
                             {"type-2-diabetes", "asthma"});
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts[0].drug, "metformin");
  EXPECT_EQ(facts[0].disease, "type-2-diabetes");
  EXPECT_EQ(facts[0].paper_id, "pmid-1");
  EXPECT_EQ(facts[1].drug, "aspirin");
  EXPECT_EQ(facts[1].disease, "asthma");
}

TEST(FactExtraction, EmptyInputs) {
  EXPECT_TRUE(extract_facts({}, {"metformin"}, {"asthma"}).empty());
  EXPECT_TRUE(extract_facts({{"p", "text"}}, {}, {}).empty());
}

}  // namespace
}  // namespace hc::services
