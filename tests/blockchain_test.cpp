#include <gtest/gtest.h>

#include "blockchain/auditor.h"
#include "blockchain/contracts.h"
#include "blockchain/ledger.h"

namespace hc::blockchain {
namespace {

class LedgerFixture : public ::testing::Test {
 protected:
  LedgerFixture() : clock_(make_clock()) {
    LedgerConfig config;
    config.peers = {"peer-provider", "peer-ingestion", "peer-protection", "peer-audit"};
    ledger_ = std::make_unique<PermissionedLedger>(config, clock_);
    EXPECT_TRUE(register_hcls_contracts(*ledger_).is_ok());
  }

  Result<std::string> provenance_event(const std::string& ref, const std::string& event) {
    return ledger_->submit_and_commit(
        "provenance",
        {{"action", "record_event"}, {"record_ref", ref}, {"event", event},
         {"data_hash", "deadbeef"}},
        "peer-ingestion");
  }

  ClockPtr clock_;
  std::unique_ptr<PermissionedLedger> ledger_;
};

// ----------------------------------------------------------------- chain

TEST_F(LedgerFixture, GenesisBlockExists) {
  ASSERT_EQ(ledger_->chain().size(), 1u);
  EXPECT_EQ(ledger_->chain()[0].index, 0u);
  EXPECT_TRUE(ledger_->validate_chain().is_ok());
}

TEST_F(LedgerFixture, SubmitAndCommitAppendsBlock) {
  auto id = provenance_event("ref-1", "received");
  ASSERT_TRUE(id.is_ok()) << id.status().to_string();
  EXPECT_EQ(ledger_->chain().size(), 2u);
  EXPECT_EQ(ledger_->chain()[1].transactions.size(), 1u);
  EXPECT_TRUE(ledger_->validate_chain().is_ok());
}

TEST_F(LedgerFixture, CommitWithEmptyPoolFails) {
  EXPECT_EQ(ledger_->commit_block().status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LedgerFixture, BatchingRespectsMaxBlockSize) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ledger_
                    ->submit("provenance",
                             {{"action", "record_event"},
                              {"record_ref", "ref-" + std::to_string(i)},
                              {"event", "received"},
                              {"data_hash", "h"}},
                             "peer-ingestion")
                    .is_ok());
  }
  EXPECT_EQ(ledger_->pending_count(), 10u);
  auto receipt = ledger_->commit_block();
  ASSERT_TRUE(receipt.is_ok());
  EXPECT_EQ(receipt->transaction_count, 10u);
  EXPECT_EQ(ledger_->pending_count(), 0u);
}

TEST_F(LedgerFixture, UnknownContractRejected) {
  auto r = ledger_->submit("lottery", {{"action", "win"}}, "peer-ingestion");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(LedgerFixture, DuplicateContractRegistrationRejected) {
  EXPECT_EQ(ledger_->register_contract(std::make_unique<ConsentContract>()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(LedgerFixture, TamperingDetectedByValidation) {
  ASSERT_TRUE(provenance_event("ref-1", "received").is_ok());
  ASSERT_TRUE(provenance_event("ref-2", "received").is_ok());
  ASSERT_TRUE(ledger_->validate_chain().is_ok());

  ledger_->tamper_for_test(1, 0, "record_ref", "ref-evil");
  auto s = ledger_->validate_chain();
  EXPECT_EQ(s.code(), StatusCode::kIntegrityError);
  EXPECT_NE(s.message().find("merkle"), std::string::npos);
}

TEST(Ledger, RequiresPeers) {
  auto clock = make_clock();
  EXPECT_THROW(PermissionedLedger(LedgerConfig{}, clock), std::invalid_argument);
}

TEST(Ledger, ChargesNetworkWhenProvided) {
  auto clock = make_clock();
  net::SimNetwork net(clock, Rng(60));
  std::vector<std::string> peers{"p0", "p1", "p2", "p3"};
  for (std::size_t i = 0; i < peers.size(); ++i) {
    for (std::size_t j = i + 1; j < peers.size(); ++j) {
      net.set_link(peers[i], peers[j], net::LinkProfile::lan());
    }
  }
  PermissionedLedger ledger(LedgerConfig{peers}, clock, nullptr, &net);
  ASSERT_TRUE(register_hcls_contracts(ledger).is_ok());

  SimTime before = clock->now();
  ASSERT_TRUE(ledger
                  .submit_and_commit("consent",
                                     {{"action", "grant"},
                                      {"patient", "pseu-1"},
                                      {"group", "study-a"}},
                                     "p0")
                  .is_ok());
  EXPECT_GT(clock->now(), before);
  EXPECT_GT(net.stats().messages, 0u);
}

// ------------------------------------------------------------- contracts

TEST_F(LedgerFixture, ProvenanceLifecycle) {
  ASSERT_TRUE(provenance_event("ref-1", "received").is_ok());
  ASSERT_TRUE(provenance_event("ref-1", "anonymized").is_ok());
  ASSERT_TRUE(provenance_event("ref-1", "retrieved").is_ok());
  EXPECT_EQ(ledger_->state_value("provenance", "ref-1/last_event").value(), "retrieved");
  EXPECT_EQ(ledger_->state_value("provenance", "ref-1/events").value(), "3");
}

TEST_F(LedgerFixture, ProvenanceRejectsBadEvents) {
  EXPECT_FALSE(provenance_event("ref-1", "teleported").is_ok());
  auto r = ledger_->submit("provenance", {{"action", "record_event"}},
                           "peer-ingestion");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LedgerFixture, ProvenanceClosesLifecycleAfterDeletion) {
  ASSERT_TRUE(provenance_event("ref-1", "received").is_ok());
  ASSERT_TRUE(provenance_event("ref-1", "deleted").is_ok());
  auto r = provenance_event("ref-1", "retrieved");
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LedgerFixture, ConsentGrantRevokeCycle) {
  EXPECT_FALSE(ConsentContract::has_consent(*ledger_, "pseu-1", "study-a"));
  ASSERT_TRUE(ledger_
                  ->submit_and_commit("consent",
                                      {{"action", "grant"}, {"patient", "pseu-1"},
                                       {"group", "study-a"}},
                                      "peer-provider")
                  .is_ok());
  EXPECT_TRUE(ConsentContract::has_consent(*ledger_, "pseu-1", "study-a"));

  ASSERT_TRUE(ledger_
                  ->submit_and_commit("consent",
                                      {{"action", "revoke"}, {"patient", "pseu-1"},
                                       {"group", "study-a"}},
                                      "peer-provider")
                  .is_ok());
  EXPECT_FALSE(ConsentContract::has_consent(*ledger_, "pseu-1", "study-a"));
}

TEST_F(LedgerFixture, ConsentGuardsIllegalTransitions) {
  auto revoke_first = ledger_->submit(
      "consent",
      {{"action", "revoke"}, {"patient", "pseu-1"}, {"group", "study-a"}},
      "peer-provider");
  EXPECT_EQ(revoke_first.status().code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(ledger_
                  ->submit_and_commit("consent",
                                      {{"action", "grant"}, {"patient", "pseu-1"},
                                       {"group", "study-a"}},
                                      "peer-provider")
                  .is_ok());
  auto double_grant = ledger_->submit(
      "consent", {{"action", "grant"}, {"patient", "pseu-1"}, {"group", "study-a"}},
      "peer-provider");
  EXPECT_EQ(double_grant.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(LedgerFixture, MalwareTracksRiskySenders) {
  auto report = [&](const std::string& ref, const std::string& verdict,
                    const std::string& sender) {
    return ledger_->submit_and_commit(
        "malware",
        {{"action", "report"}, {"record_ref", ref}, {"verdict", verdict},
         {"sender", sender}},
        "peer-protection");
  };
  ASSERT_TRUE(report("ref-1", "clean", "clinic-a").is_ok());
  ASSERT_TRUE(report("ref-2", "infected", "botnet-b").is_ok());
  ASSERT_TRUE(report("ref-3", "infected", "botnet-b").is_ok());

  EXPECT_EQ(MalwareContract::infected_count(*ledger_, "botnet-b"), 2u);
  EXPECT_EQ(MalwareContract::infected_count(*ledger_, "clinic-a"), 0u);
  EXPECT_EQ(ledger_->state_value("malware", "ref-2/verdict").value(), "infected");
  EXPECT_FALSE(report("ref-4", "suspicious", "x").is_ok());
}

TEST_F(LedgerFixture, PrivacyDegreeRecorded) {
  ASSERT_TRUE(ledger_
                  ->submit_and_commit("privacy",
                                      {{"action", "record_degree"},
                                       {"record_ref", "ref-1"},
                                       {"score", "0.97"},
                                       {"k", "12"}},
                                      "peer-protection")
                  .is_ok());
  EXPECT_EQ(ledger_->state_value("privacy", "ref-1/score").value(), "0.97");
  EXPECT_EQ(ledger_->state_value("privacy", "ref-1/k").value(), "12");

  auto bad = ledger_->submit("privacy",
                             {{"action", "record_degree"}, {"record_ref", "r"},
                              {"score", "1.7"}, {"k", "2"}},
                             "peer-protection");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LedgerFixture, IdentityRegisterAndRotate) {
  ASSERT_TRUE(ledger_
                  ->submit_and_commit("identity",
                                      {{"action", "register"}, {"did", "did:hc:alice"},
                                       {"key_fingerprint", "fp-1"}},
                                      "peer-provider")
                  .is_ok());
  EXPECT_EQ(ledger_->state_value("identity", "did:hc:alice").value(), "fp-1");

  // Re-register rejected; rotate succeeds; rotate of unknown DID rejected.
  EXPECT_EQ(ledger_
                ->submit("identity",
                         {{"action", "register"}, {"did", "did:hc:alice"},
                          {"key_fingerprint", "fp-2"}},
                         "peer-provider")
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(ledger_
                  ->submit_and_commit("identity",
                                      {{"action", "rotate"}, {"did", "did:hc:alice"},
                                       {"key_fingerprint", "fp-2"}},
                                      "peer-provider")
                  .is_ok());
  EXPECT_EQ(ledger_->state_value("identity", "did:hc:alice").value(), "fp-2");
  EXPECT_EQ(ledger_
                ->submit("identity",
                         {{"action", "rotate"}, {"did", "did:hc:bob"},
                          {"key_fingerprint", "fp"}},
                         "peer-provider")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(LedgerFixture, StateValueNotFoundForUnknownKeys) {
  EXPECT_EQ(ledger_->state_value("provenance", "ref-404/last_event").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ledger_->state_value("nothing", "x").status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- auditor

TEST_F(LedgerFixture, AuditorSeesRecordLifecycle) {
  ASSERT_TRUE(provenance_event("ref-1", "received").is_ok());
  ASSERT_TRUE(provenance_event("ref-1", "anonymized").is_ok());
  ASSERT_TRUE(provenance_event("ref-2", "received").is_ok());

  AuditorView auditor(*ledger_);
  auto lifecycle = auditor.record_lifecycle("ref-1");
  EXPECT_EQ(lifecycle.events,
            (std::vector<std::string>{"received", "anonymized"}));
  EXPECT_EQ(lifecycle.last_hash, "deadbeef");
  EXPECT_EQ(auditor.total_transactions(), 3u);
  EXPECT_TRUE(auditor.verify_integrity().is_ok());
}

TEST_F(LedgerFixture, AuditorSeesConsentHistory) {
  for (const char* action : {"grant", "revoke", "grant"}) {
    ASSERT_TRUE(ledger_
                    ->submit_and_commit("consent",
                                        {{"action", action}, {"patient", "pseu-1"},
                                         {"group", "study-a"}},
                                        "peer-provider")
                    .is_ok());
  }
  AuditorView auditor(*ledger_);
  auto history = auditor.consent_history("pseu-1");
  EXPECT_EQ(history, (std::vector<std::string>{"grant:study-a", "revoke:study-a",
                                               "grant:study-a"}));
}

TEST_F(LedgerFixture, AuditorFlagsRiskySenders) {
  auto report = [&](const std::string& ref, const std::string& sender) {
    return ledger_->submit_and_commit(
        "malware",
        {{"action", "report"}, {"record_ref", ref}, {"verdict", "infected"},
         {"sender", sender}},
        "peer-protection");
  };
  ASSERT_TRUE(report("r1", "botnet").is_ok());
  ASSERT_TRUE(report("r2", "botnet").is_ok());
  ASSERT_TRUE(report("r3", "oops-clinic").is_ok());

  AuditorView auditor(*ledger_);
  EXPECT_EQ(auditor.risky_senders(2), std::vector<std::string>{"botnet"});
  EXPECT_EQ(auditor.risky_senders(1).size(), 2u);
}

TEST_F(LedgerFixture, AuditorTracksUserActivity) {
  ASSERT_TRUE(provenance_event("ref-1", "received").is_ok());
  ASSERT_TRUE(ledger_
                  ->submit_and_commit("consent",
                                      {{"action", "grant"}, {"patient", "p"},
                                       {"group", "g"}},
                                      "peer-provider")
                  .is_ok());
  AuditorView auditor(*ledger_);
  EXPECT_EQ(auditor.activity_of("peer-ingestion").size(), 1u);
  EXPECT_EQ(auditor.activity_of("peer-provider").size(), 1u);
  EXPECT_TRUE(auditor.activity_of("nobody").empty());
}

}  // namespace
}  // namespace hc::blockchain
