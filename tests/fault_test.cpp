// hc::fault unit coverage: injector rule semantics (windows, wildcards,
// trigger budgets, determinism), retry backoff arithmetic, deadlines, the
// circuit breaker's pinned transition schedule, and the SimNetwork
// integration points (drops, delays, duplicates, corruption, host crashes).
#include <gtest/gtest.h>

#include <bit>

#include "fault/fault.h"
#include "fault/resilience.h"
#include "net/network.h"
#include "net/secure_channel.h"
#include "obs/metrics.h"

namespace hc::fault {
namespace {

obs::MetricsPtr make_metrics() { return std::make_shared<obs::MetricsRegistry>(); }

// ------------------------------------------------------------- injector

TEST(FaultInjector, KindNames) {
  EXPECT_EQ(fault_kind_name(FaultKind::kDrop), "drop");
  EXPECT_EQ(fault_kind_name(FaultKind::kDelay), "delay");
  EXPECT_EQ(fault_kind_name(FaultKind::kDuplicate), "duplicate");
  EXPECT_EQ(fault_kind_name(FaultKind::kCorrupt), "corrupt");
}

TEST(FaultInjector, RuleFiresOnlyInsideItsWindow) {
  auto clock = make_clock();
  FaultPlan plan;
  plan.drop("a", "b", 1.0, 10 * kMillisecond, 20 * kMillisecond);
  FaultInjector injector(plan, clock, Rng(1));

  EXPECT_FALSE(injector.on_message("a", "b").drop);  // t=0, before window
  clock->advance_to(10 * kMillisecond);
  EXPECT_TRUE(injector.on_message("a", "b").drop);   // start is inclusive
  clock->advance_to(20 * kMillisecond - 1);
  EXPECT_TRUE(injector.on_message("a", "b").drop);
  clock->advance_to(20 * kMillisecond);
  EXPECT_FALSE(injector.on_message("a", "b").drop);  // end is exclusive
}

TEST(FaultInjector, EmptyEndpointsAreWildcards) {
  auto clock = make_clock();
  FaultPlan plan;
  plan.drop("", "replica-1", 1.0);
  FaultInjector injector(plan, clock, Rng(2));

  EXPECT_TRUE(injector.on_message("anyone", "replica-1").drop);
  EXPECT_TRUE(injector.on_message("someone-else", "replica-1").drop);
  EXPECT_FALSE(injector.on_message("anyone", "replica-2").drop);
}

TEST(FaultInjector, TriggerBudgetLimitsFirings) {
  auto clock = make_clock();
  FaultRule rule;
  rule.from = "a";
  rule.to = "b";
  rule.kind = FaultKind::kDrop;
  rule.max_triggers = 2;
  FaultPlan plan;
  plan.add_rule(rule);
  FaultInjector injector(plan, clock, Rng(3));

  EXPECT_TRUE(injector.on_message("a", "b").drop);
  EXPECT_TRUE(injector.on_message("a", "b").drop);
  EXPECT_FALSE(injector.on_message("a", "b").drop);  // budget exhausted
  EXPECT_EQ(injector.rule_triggers(0), 2u);
}

TEST(FaultInjector, DecisionSequenceIsSeedDeterministic) {
  auto make = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.drop("a", "b", 0.5).duplicate("a", "b", 0.3).delay("a", "b", 0.4,
                                                            2 * kMillisecond);
    return FaultInjector(plan, make_clock(), Rng(seed));
  };
  FaultInjector first = make(42);
  FaultInjector second = make(42);
  FaultInjector other = make(43);

  int diverged = 0;
  for (int i = 0; i < 200; ++i) {
    FaultDecision x = first.on_message("a", "b");
    FaultDecision y = second.on_message("a", "b");
    FaultDecision z = other.on_message("a", "b");
    EXPECT_EQ(x.drop, y.drop);
    EXPECT_EQ(x.duplicate, y.duplicate);
    EXPECT_EQ(x.extra_delay, y.extra_delay);
    if (x.drop != z.drop || x.duplicate != z.duplicate) ++diverged;
  }
  EXPECT_GT(diverged, 0);  // a different seed is a different schedule
}

TEST(FaultInjector, NonMatchingRulesConsumeNoRandomness) {
  // Adding a rule that never matches must not shift the decisions of the
  // rules that do — decisions depend only on (seed, plan, matched traffic).
  FaultPlan bare;
  bare.drop("a", "b", 0.5);
  FaultPlan padded;
  padded.drop("x", "y", 1.0);  // never matched below
  padded.drop("a", "b", 0.5);

  FaultInjector lean(bare, make_clock(), Rng(7));
  FaultInjector padded_injector(padded, make_clock(), Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lean.on_message("a", "b").drop,
              padded_injector.on_message("a", "b").drop);
  }
}

TEST(FaultInjector, HostCrashWindow) {
  auto clock = make_clock();
  FaultPlan plan;
  plan.crash("h", 5 * kMillisecond, 9 * kMillisecond);
  FaultInjector injector(plan, clock, Rng(4));

  EXPECT_FALSE(injector.host_down("h"));
  clock->advance_to(5 * kMillisecond);
  EXPECT_TRUE(injector.host_down("h"));
  clock->advance_to(9 * kMillisecond - 1);
  EXPECT_TRUE(injector.host_down("h"));
  clock->advance_to(9 * kMillisecond);
  EXPECT_FALSE(injector.host_down("h"));  // restarted
  EXPECT_FALSE(injector.host_down("other"));
}

TEST(FaultInjector, CorruptPayloadFlipsOneToThreeBits) {
  FaultInjector injector(FaultPlan{}, make_clock(), Rng(5));
  for (int i = 0; i < 50; ++i) {
    Bytes payload(32, 0x00);
    injector.corrupt_payload(payload);
    int flipped = 0;
    for (std::uint8_t b : payload) flipped += std::popcount(b);
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 3);
  }
  Bytes empty;
  injector.corrupt_payload(empty);  // must be a no-op, not a crash
  EXPECT_TRUE(empty.empty());
}

TEST(FaultInjector, MetricsCountInjectedFaults) {
  auto metrics = make_metrics();
  FaultPlan plan;
  plan.drop("a", "b", 1.0);
  FaultInjector injector(plan, make_clock(), Rng(6), metrics);
  for (int i = 0; i < 3; ++i) (void)injector.on_message("a", "b");
  EXPECT_EQ(metrics->counter("hc.fault.injected.drop"), 3u);
}

// ------------------------------------------------------------- retry

TEST(RetryPolicy, BackoffScheduleIsHandComputable) {
  RetryPolicy policy;
  policy.initial_backoff = 1 * kMillisecond;
  policy.multiplier = 2.0;
  policy.max_backoff = 8 * kMillisecond;

  EXPECT_EQ(policy.backoff_for(0), 0);  // attempt 0 never waits
  EXPECT_EQ(policy.backoff_for(1), 1 * kMillisecond);
  EXPECT_EQ(policy.backoff_for(2), 2 * kMillisecond);
  EXPECT_EQ(policy.backoff_for(3), 4 * kMillisecond);
  EXPECT_EQ(policy.backoff_for(4), 8 * kMillisecond);
  EXPECT_EQ(policy.backoff_for(5), 8 * kMillisecond);  // capped
  EXPECT_EQ(policy.backoff_for(20), 8 * kMillisecond);
}

TEST(RetryPolicy, JitterAddsBoundedDeterministicNoise) {
  RetryPolicy policy;
  policy.initial_backoff = 10 * kMillisecond;
  policy.jitter = 0.5;
  Rng a(11), b(11);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    SimTime base = policy.backoff_for(attempt);
    SimTime jittered = policy.backoff_with_jitter(attempt, a);
    EXPECT_GE(jittered, base);
    EXPECT_LE(jittered, base + static_cast<SimTime>(0.5 * static_cast<double>(base)));
    EXPECT_EQ(jittered, policy.backoff_with_jitter(attempt, b));  // same seed
  }
}

TEST(Retryable, OnlyOperationalFailuresRetry) {
  EXPECT_TRUE(retryable(Status(StatusCode::kUnavailable, "drop")));
  EXPECT_TRUE(retryable(Status(StatusCode::kIntegrityError, "bit flip")));
  EXPECT_FALSE(retryable(Status::ok()));
  EXPECT_FALSE(retryable(Status(StatusCode::kPermissionDenied, "rbac")));
  EXPECT_FALSE(retryable(Status(StatusCode::kNotFound, "missing")));
  EXPECT_FALSE(retryable(Status(StatusCode::kFailedPrecondition, "no link")));
}

TEST(WithRetry, SucceedsAfterTransientFailuresAndChargesBackoff) {
  auto clock = make_clock();
  Rng rng(12);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = 1 * kMillisecond;
  auto metrics = make_metrics();

  int calls = 0;
  Status out = with_retry(
      policy, *clock, rng,
      [&]() -> Status {
        ++calls;
        return calls < 3 ? Status(StatusCode::kUnavailable, "flaky") : Status::ok();
      },
      metrics.get());
  EXPECT_TRUE(out.is_ok());
  EXPECT_EQ(calls, 3);
  // Two backoffs: 1ms + 2ms (jitter is 0 by default).
  EXPECT_EQ(clock->now(), 3 * kMillisecond);
  EXPECT_EQ(metrics->counter("hc.fault.retry.retries"), 2u);
  EXPECT_EQ(metrics->counter("hc.fault.retry.exhausted"), 0u);
}

TEST(WithRetry, StopsImmediatelyOnNonRetryableFailure) {
  auto clock = make_clock();
  Rng rng(13);
  int calls = 0;
  Status out = with_retry(RetryPolicy{}, *clock, rng, [&]() -> Status {
    ++calls;
    return Status(StatusCode::kPermissionDenied, "not transient");
  });
  EXPECT_EQ(out.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock->now(), 0);  // no backoff burned on a hopeless call
}

TEST(WithRetry, ExhaustsAttemptBudget) {
  auto clock = make_clock();
  Rng rng(14);
  RetryPolicy policy;
  policy.max_attempts = 4;
  auto metrics = make_metrics();
  int calls = 0;
  Status out = with_retry(
      policy, *clock, rng,
      [&]() -> Status {
        ++calls;
        return Status(StatusCode::kUnavailable, "always down");
      },
      metrics.get());
  EXPECT_EQ(out.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(metrics->counter("hc.fault.retry.retries"), 3u);
  EXPECT_EQ(metrics->counter("hc.fault.retry.exhausted"), 1u);
}

TEST(WithRetry, RespectsTotalTimeBudget) {
  auto clock = make_clock();
  Rng rng(15);
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = 1 * kMillisecond;
  policy.total_budget = 10 * kMillisecond;
  int calls = 0;
  Status out = with_retry(policy, *clock, rng, [&]() -> Status {
    ++calls;
    return Status(StatusCode::kUnavailable, "always down");
  });
  EXPECT_FALSE(out.is_ok());
  // Backoffs 1+2+4 = 7ms fit; the next (8ms) would blow the 10ms budget.
  EXPECT_EQ(calls, 4);
  EXPECT_LE(clock->now(), policy.total_budget);
}

TEST(WithRetry, WorksWithResultValues) {
  auto clock = make_clock();
  Rng rng(16);
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  Result<int> out = with_retry(policy, *clock, rng, [&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status(StatusCode::kUnavailable, "flaky");
    return 99;
  });
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(*out, 99);
  EXPECT_EQ(calls, 2);
}

// ------------------------------------------------------------- deadline

TEST(Deadline, ExpiresOnSimClock) {
  auto clock = make_clock();
  Deadline deadline(*clock, 5 * kMillisecond);
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(deadline.check("op").is_ok());
  clock->advance(6 * kMillisecond);
  EXPECT_TRUE(deadline.expired());
  Status late = deadline.check("op");
  EXPECT_EQ(late.code(), StatusCode::kUnavailable);  // timeout is retryable
  EXPECT_TRUE(retryable(late));
}

TEST(Deadline, NonPositiveBudgetMeansNoDeadline) {
  auto clock = make_clock();
  Deadline deadline(*clock, 0);
  clock->advance(365LL * 24 * 3600 * kSecond);
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(deadline.check("op").is_ok());
}

// ------------------------------------------------------------- breaker

// The ISSUE's pinned schedule: threshold 3, cooldown 10s, 2 probe
// successes. Every transition below is hand-timed.
TEST(CircuitBreaker, PinnedOpenHalfOpenCloseSchedule) {
  auto clock = make_clock();
  auto metrics = make_metrics();
  CircuitBreakerConfig config;
  config.name = "pinned";
  config.failure_threshold = 3;
  config.open_cooldown = 10 * kSecond;
  config.half_open_successes = 2;
  CircuitBreaker breaker(config, clock, metrics);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow().is_ok());

  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // 2 < threshold
  breaker.record_failure();                            // 3rd opens it at t=0
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.allow().code(), StatusCode::kUnavailable);

  clock->advance(10 * kSecond - 1);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);  // cooldown not elapsed
  EXPECT_FALSE(breaker.allow().is_ok());

  clock->advance(1);  // t = 10s exactly: cooldown elapsed
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow().is_ok());  // the probe call
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // 1 of 2 probes
  EXPECT_TRUE(breaker.allow().is_ok());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);  // recovered

  EXPECT_EQ(metrics->counter("hc.fault.breaker.pinned.open"), 1u);
  EXPECT_EQ(metrics->counter("hc.fault.breaker.pinned.half_open"), 1u);
  EXPECT_EQ(metrics->counter("hc.fault.breaker.pinned.closed"), 1u);
}

TEST(CircuitBreaker, FailedProbeReopensWithFreshCooldown) {
  auto clock = make_clock();
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.open_cooldown = 1 * kSecond;
  config.half_open_successes = 1;
  CircuitBreaker breaker(config, clock);

  breaker.record_failure();
  breaker.record_failure();  // opens at t=0
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  clock->advance(1 * kSecond);
  EXPECT_TRUE(breaker.allow().is_ok());  // half-open probe
  breaker.record_failure();              // probe fails -> re-open at t=1s
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  clock->advance(1 * kSecond - 1);  // t = 2s - 1: fresh cooldown not done
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock->advance(1);
  EXPECT_TRUE(breaker.allow().is_ok());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, SuccessResetsFailureStreak) {
  auto clock = make_clock();
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  CircuitBreaker breaker(config, clock);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();  // streak broken
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
}

// ------------------------------------------------------------- network

net::LinkProfile flat_link(SimTime latency) {
  net::LinkProfile link;
  link.base_latency = latency;
  link.jitter = 0;
  link.drop_probability = 0.0;
  return link;
}

TEST(NetworkFaults, InjectedDropFailsSendAndCharges) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(20));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultPlan plan;
  plan.drop("a", "b", 1.0);
  network.set_fault_injector(make_injector(plan, clock, Rng(21)));

  auto sent = network.send("a", "b", 100);
  EXPECT_EQ(sent.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(clock->now(), 1 * kMillisecond);  // the attempt still costs
  EXPECT_EQ(network.stats().drops, 1u);
}

TEST(NetworkFaults, InjectedDelayStretchesLatency) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(22));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultPlan plan;
  plan.delay("a", "b", 1.0, 5 * kMillisecond);
  network.set_fault_injector(make_injector(plan, clock, Rng(23)));

  auto sent = network.send("a", "b", 0);
  ASSERT_TRUE(sent.is_ok());
  EXPECT_EQ(*sent, 6 * kMillisecond);  // base 1ms + injected 5ms
}

TEST(NetworkFaults, DuplicateDeliversTwiceInStats) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(24));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultPlan plan;
  plan.duplicate("a", "b", 1.0);
  network.set_fault_injector(make_injector(plan, clock, Rng(25)));

  ASSERT_TRUE(network.send("a", "b", 100).is_ok());
  EXPECT_EQ(network.stats().duplicates, 1u);
  EXPECT_EQ(network.stats().messages, 2u);  // original + duplicate
  EXPECT_EQ(network.stats().bytes, 200u);
}

TEST(NetworkFaults, CorruptionWithoutPayloadIsIntegrityError) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(26));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultPlan plan;
  plan.corrupt("a", "b", 1.0);
  network.set_fault_injector(make_injector(plan, clock, Rng(27)));

  auto sent = network.send("a", "b", 100);
  EXPECT_EQ(sent.status().code(), StatusCode::kIntegrityError);
  EXPECT_EQ(network.stats().corruptions, 1u);
}

TEST(NetworkFaults, CorruptionWithPayloadFlipsBitsInFlight) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(28));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultPlan plan;
  plan.corrupt("a", "b", 1.0);
  network.set_fault_injector(make_injector(plan, clock, Rng(29)));

  Bytes payload(64, 0xab);
  Bytes original = payload;
  // The send itself succeeds — corruption is for the receiver's MAC to catch.
  ASSERT_TRUE(network.send("a", "b", payload.size(), &payload).is_ok());
  EXPECT_NE(payload, original);
  EXPECT_EQ(network.stats().corruptions, 1u);
}

TEST(NetworkFaults, SendWithRetryRecoversFromTransientCorruption) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(30));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultRule rule;
  rule.from = "a";
  rule.to = "b";
  rule.kind = FaultKind::kCorrupt;
  rule.max_triggers = 1;  // one glitch, then clean
  FaultPlan plan;
  plan.add_rule(rule);
  network.set_fault_injector(make_injector(plan, clock, Rng(31)));

  EXPECT_TRUE(network.send_with_retry("a", "b", 100, 3).is_ok());
  EXPECT_EQ(network.stats().corruptions, 1u);
  EXPECT_EQ(network.stats().messages, 1u);  // only the clean attempt delivered
}

TEST(NetworkFaults, CrashedHostDropsTrafficUntilRestart) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(32));
  network.set_link("a", "b", flat_link(1 * kMillisecond));
  FaultPlan plan;
  plan.crash("b", 0, 5 * kMillisecond);
  network.set_fault_injector(make_injector(plan, clock, Rng(33)));

  EXPECT_TRUE(network.host_down("b"));
  auto sent = network.send("a", "b", 100);
  EXPECT_EQ(sent.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(network.stats().host_down_drops, 1u);

  clock->advance_to(5 * kMillisecond);
  EXPECT_FALSE(network.host_down("b"));
  EXPECT_TRUE(network.send("a", "b", 100).is_ok());
}

TEST(NetworkFaults, NoOpPlanLeavesBehaviourIdentical) {
  // The injector owns its own rng, so binding an empty plan must not
  // perturb link jitter draws: both runs see identical latencies.
  auto run = [](bool with_injector) {
    auto clock = make_clock();
    net::SimNetwork network(clock, Rng(34));
    net::LinkProfile link = flat_link(1 * kMillisecond);
    link.jitter = 500;  // nonzero so the network's own rng is exercised
    network.set_link("a", "b", link);
    if (with_injector) {
      network.set_fault_injector(make_injector(FaultPlan{}, clock, Rng(35)));
    }
    std::vector<SimTime> latencies;
    for (int i = 0; i < 50; ++i) latencies.push_back(*network.send("a", "b", 10));
    return latencies;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(NetworkFaults, SecureChannelRejectsInFlightCorruption) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(36));
  network.set_link("client", "cloud", flat_link(1 * kMillisecond));
  Rng rng(37);
  auto keys = crypto::generate_keypair(rng);
  auto metrics = make_metrics();
  auto channel = net::SecureChannel::establish(network, "client", "cloud",
                                               keys.pub, keys.priv, rng, metrics);
  ASSERT_TRUE(channel.is_ok());

  // Bind the chaos plan only after the handshake so the corruption lands
  // on the data message; HMAC (encrypt-then-MAC) must catch the flip.
  FaultRule rule;
  rule.from = "client";
  rule.to = "cloud";
  rule.kind = FaultKind::kCorrupt;
  rule.max_triggers = 1;
  FaultPlan plan;
  plan.add_rule(rule);
  network.set_fault_injector(make_injector(plan, clock, Rng(38)));

  auto delivered = channel->transmit(to_bytes("phi: hba1c=6.9"));
  EXPECT_EQ(delivered.status().code(), StatusCode::kIntegrityError);
  EXPECT_EQ(metrics->counter("hc.net.auth_failures"), 1u);
  // The channel itself is intact once the glitch budget is spent.
  EXPECT_TRUE(channel->transmit(to_bytes("phi: hba1c=6.9")).is_ok());
}

}  // namespace
}  // namespace hc::fault
