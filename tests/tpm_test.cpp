#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "tpm/attestation.h"
#include "tpm/image.h"
#include "tpm/tpm.h"
#include "tpm/trust_chain.h"
#include "tpm/vtpm.h"

namespace hc::tpm {
namespace {

// ----------------------------------------------------------------- Tpm

TEST(Tpm, PcrsStartZeroed) {
  Rng rng(1);
  Tpm tpm("hw-0", rng);
  EXPECT_EQ(tpm.pcr(0), Bytes(crypto::kSha256DigestSize, 0));
  EXPECT_EQ(tpm.pcr(kPcrCount - 1), Bytes(crypto::kSha256DigestSize, 0));
}

TEST(Tpm, ExtendFollowsStandardSemantics) {
  Rng rng(1);
  Tpm tpm("hw-0", rng);
  Bytes m = crypto::sha256(std::string_view("kernel"));
  tpm.extend(2, m);
  EXPECT_EQ(tpm.pcr(2), crypto::sha256_concat(Bytes(32, 0), m));

  Bytes m2 = crypto::sha256(std::string_view("driver"));
  Bytes after_first = tpm.pcr(2);
  tpm.extend(2, m2);
  EXPECT_EQ(tpm.pcr(2), crypto::sha256_concat(after_first, m2));
}

TEST(Tpm, ExtendOrderMatters) {
  Rng rng(1);
  Tpm a("a", rng), b("b", rng);
  Bytes m1 = crypto::sha256(std::string_view("x")), m2 = crypto::sha256(std::string_view("y"));
  a.extend(0, m1);
  a.extend(0, m2);
  b.extend(0, m2);
  b.extend(0, m1);
  EXPECT_NE(a.pcr(0), b.pcr(0));
}

TEST(Tpm, BadPcrIndexThrows) {
  Rng rng(1);
  Tpm tpm("hw-0", rng);
  EXPECT_THROW(tpm.extend(kPcrCount, Bytes(32, 0)), std::out_of_range);
  EXPECT_THROW(tpm.pcr(kPcrCount), std::out_of_range);
}

TEST(Tpm, QuoteVerifiesAndBindsNonce) {
  Rng rng(1);
  Tpm tpm("hw-0", rng);
  tpm.extend(0, crypto::sha256(std::string_view("bios")));

  Bytes nonce = rng.bytes(16);
  Quote q = tpm.quote({0, 2}, nonce);
  EXPECT_TRUE(Tpm::verify_quote_signature(q, tpm.endorsement_key()));

  Quote forged = q;
  forged.nonce = rng.bytes(16);
  EXPECT_FALSE(Tpm::verify_quote_signature(forged, tpm.endorsement_key()));

  Quote tampered = q;
  tampered.pcr_values[0][0] ^= 1;
  EXPECT_FALSE(Tpm::verify_quote_signature(tampered, tpm.endorsement_key()));
}

TEST(Tpm, ResetClearsPcrsKeepsIdentity) {
  Rng rng(1);
  Tpm tpm("hw-0", rng);
  auto ek = tpm.endorsement_key();
  tpm.extend(0, crypto::sha256(std::string_view("bios")));
  tpm.reset();
  EXPECT_EQ(tpm.pcr(0), Bytes(32, 0));
  EXPECT_EQ(tpm.endorsement_key(), ek);
}

// ----------------------------------------------------------------- vTPM

TEST(VTpm, ManagerIssuesVerifiableCertificates) {
  Rng rng(2);
  Tpm hw("hw-0", rng);
  // The manager guards the hardware private key; reconstruct it the way the
  // platform does (same Rng stream is not replayable, so the Tpm would need
  // to expose it — instead build the pair explicitly).
  crypto::KeyPair hw_keys = crypto::generate_keypair(rng);
  Tpm hw2("hw-1", rng);
  (void)hw2;

  // Use a TPM whose keys we control for the manager:
  VTpmManager mgr(hw, hw_keys.priv, Rng(3));
  // The certificate chains to hw_keys, so verify against hw_keys.pub.
  VTpm& v = mgr.create("vm-1");
  EXPECT_EQ(v.id(), "vm-1");
  EXPECT_TRUE(VTpmManager::verify_certificate(v.certificate(), hw_keys.pub));
  EXPECT_FALSE(VTpmManager::verify_certificate(v.certificate(), hw.endorsement_key()));
}

TEST(VTpm, CreateIsIdempotent) {
  Rng rng(2);
  Tpm hw("hw-0", rng);
  crypto::KeyPair hw_keys = crypto::generate_keypair(rng);
  VTpmManager mgr(hw, hw_keys.priv, Rng(3));
  VTpm& a = mgr.create("vm-1");
  VTpm& b = mgr.create("vm-1");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(mgr.vtpm_count(), 1u);
}

TEST(VTpm, FindReportsMissing) {
  Rng rng(2);
  Tpm hw("hw-0", rng);
  crypto::KeyPair hw_keys = crypto::generate_keypair(rng);
  VTpmManager mgr(hw, hw_keys.priv, Rng(3));
  EXPECT_EQ(mgr.find("vm-404").status().code(), StatusCode::kNotFound);
  mgr.create("vm-1");
  EXPECT_TRUE(mgr.find("vm-1").is_ok());
}

// -------------------------------------------------------- trust chain

TEST(TrustChain, MeasuredLaunchExtendsAndLogs) {
  Rng rng(4);
  Tpm tpm("hw-0", rng);
  auto stack = standard_vm_stack(to_bytes("bios-v1"), to_bytes("kernel-v5"),
                                 {to_bytes("libssl"), to_bytes("libphi")});
  MeasurementLog log = measured_launch(tpm, stack);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].component, "crtm-bios");
  EXPECT_EQ(log[0].pcr, kFirmwarePcr);

  // Replay matches live PCRs.
  auto replayed = replay_log(log);
  EXPECT_EQ(replayed.at(kFirmwarePcr), tpm.pcr(kFirmwarePcr));
  EXPECT_EQ(replayed.at(kKernelPcr), tpm.pcr(kKernelPcr));
  EXPECT_EQ(replayed.at(kLibraryPcr), tpm.pcr(kLibraryPcr));
}

TEST(TrustChain, ReplayDetectsMissingEvent) {
  Rng rng(4);
  Tpm tpm("hw-0", rng);
  auto stack = standard_vm_stack(to_bytes("bios"), to_bytes("kernel"), {to_bytes("lib")});
  MeasurementLog log = measured_launch(tpm, stack);
  log.pop_back();  // attacker hides the last load
  auto replayed = replay_log(log);
  auto it = replayed.find(kLibraryPcr);
  Bytes expected = it != replayed.end() ? it->second : Bytes(32, 0);
  EXPECT_NE(expected, tpm.pcr(kLibraryPcr));
}

// ----------------------------------------------------------- attestation

class AttestationFixture : public ::testing::Test {
 protected:
  AttestationFixture()
      : rng_(5), tpm_("hw-0", rng_), service_(Rng(6)) {
    service_.register_tpm(tpm_.id(), tpm_.endorsement_key());
    stack_ = standard_vm_stack(to_bytes("bios-v1"), to_bytes("kernel-v5"),
                               {to_bytes("libssl")});
    for (const auto& c : stack_) {
      service_.approve_component(c.name, crypto::sha256(c.content));
    }
  }

  AttestationVerdict attest() {
    MeasurementLog log = measured_launch(tpm_, stack_);
    Bytes nonce = service_.challenge();
    Quote q = tpm_.quote({kFirmwarePcr, kKernelPcr, kLibraryPcr}, nonce);
    return service_.verify(q, log);
  }

  Rng rng_;
  Tpm tpm_;
  AttestationService service_;
  std::vector<Component> stack_;
};

TEST_F(AttestationFixture, CleanBootIsTrusted) {
  auto verdict = attest();
  EXPECT_TRUE(verdict.trusted) << verdict.reason;
}

TEST_F(AttestationFixture, UnknownTpmRejected) {
  MeasurementLog log = measured_launch(tpm_, stack_);
  Bytes nonce = service_.challenge();
  Quote q = tpm_.quote({kFirmwarePcr}, nonce);
  q.tpm_id = "rogue";
  auto verdict = service_.verify(q, log);
  EXPECT_FALSE(verdict.trusted);
  EXPECT_NE(verdict.reason.find("unknown TPM"), std::string::npos);
}

TEST_F(AttestationFixture, TamperedKernelRejected) {
  stack_[1].content = to_bytes("kernel-v5-rootkit");  // not approved
  auto verdict = attest();
  EXPECT_FALSE(verdict.trusted);
  EXPECT_NE(verdict.reason.find("not approved"), std::string::npos);
}

TEST_F(AttestationFixture, LogPcrMismatchRejected) {
  MeasurementLog log = measured_launch(tpm_, stack_);
  // Extra unlogged extension — live PCRs diverge from the log.
  tpm_.extend(kKernelPcr, crypto::sha256(std::string_view("implant")));
  Bytes nonce = service_.challenge();
  Quote q = tpm_.quote({kFirmwarePcr, kKernelPcr, kLibraryPcr}, nonce);
  auto verdict = service_.verify(q, log);
  EXPECT_FALSE(verdict.trusted);
  EXPECT_NE(verdict.reason.find("PCR"), std::string::npos);
}

TEST_F(AttestationFixture, NonceReplayRejected) {
  MeasurementLog log = measured_launch(tpm_, stack_);
  Bytes nonce = service_.challenge();
  Quote q = tpm_.quote({kFirmwarePcr, kKernelPcr, kLibraryPcr}, nonce);
  EXPECT_TRUE(service_.verify(q, log).trusted);
  auto replay = service_.verify(q, log);
  EXPECT_FALSE(replay.trusted);
  EXPECT_NE(replay.reason.find("nonce"), std::string::npos);
}

TEST_F(AttestationFixture, SelfInventedNonceRejected) {
  MeasurementLog log = measured_launch(tpm_, stack_);
  Quote q = tpm_.quote({kFirmwarePcr, kKernelPcr, kLibraryPcr}, rng_.bytes(16));
  EXPECT_FALSE(service_.verify(q, log).trusted);
}

TEST_F(AttestationFixture, RevokedComponentRejected) {
  service_.revoke_component("kernel");
  auto verdict = attest();
  EXPECT_FALSE(verdict.trusted);
}

TEST_F(AttestationFixture, VtpmChainOfTrust) {
  // vTPM manager guards a keypair registered as hardware TPM "hw-anchor".
  crypto::KeyPair anchor = crypto::generate_keypair(rng_);
  service_.register_tpm("hw-anchor", anchor.pub);
  Tpm anchor_tpm("hw-anchor", rng_);
  VTpmManager mgr(anchor_tpm, anchor.priv, Rng(9));
  VTpm& vtpm = mgr.create("analytics-vm");

  ASSERT_TRUE(service_.register_vtpm(vtpm.certificate()).is_ok());

  auto container_stack = std::vector<Component>{
      {"model-container:v1", to_bytes("trained-model-image"), kWorkloadPcr}};
  service_.approve_component("model-container:v1",
                             crypto::sha256(to_bytes("trained-model-image")));
  MeasurementLog log = measured_launch(vtpm, container_stack);
  Bytes nonce = service_.challenge();
  Quote q = vtpm.quote({kWorkloadPcr}, nonce);
  auto verdict = service_.verify(q, log);
  EXPECT_TRUE(verdict.trusted) << verdict.reason;
}

TEST_F(AttestationFixture, ForgedVtpmCertificateRejected) {
  crypto::KeyPair anchor = crypto::generate_keypair(rng_);
  service_.register_tpm("hw-anchor", anchor.pub);
  crypto::KeyPair rogue = crypto::generate_keypair(rng_);

  Tpm anchor_tpm("hw-anchor", rng_);
  VTpmManager rogue_mgr(anchor_tpm, rogue.priv, Rng(9));  // wrong signing key
  VTpm& vtpm = rogue_mgr.create("evil-vm");
  EXPECT_EQ(service_.register_vtpm(vtpm.certificate()).code(),
            StatusCode::kIntegrityError);
}

// ----------------------------------------------------------------- images

class ImageFixture : public ::testing::Test {
 protected:
  ImageFixture() : rng_(10), builder_(crypto::generate_keypair(rng_)) {
    service_.approve_key(builder_.pub);
  }

  Rng rng_;
  crypto::KeyPair builder_;
  ImageManagementService service_;
};

TEST_F(ImageFixture, SignedImageByApprovedKeyAdmitted) {
  Bytes content = to_bytes("vm-image-bytes");
  auto manifest = sign_image("analytics-vm", "1.0", content, {}, builder_);
  EXPECT_TRUE(service_.register_image(manifest, content).is_ok());
  EXPECT_EQ(service_.image_count(), 1u);
  EXPECT_EQ(service_.content("analytics-vm", "1.0").value(), content);
}

TEST_F(ImageFixture, UnapprovedSignerRejected) {
  crypto::KeyPair rogue = crypto::generate_keypair(rng_);
  Bytes content = to_bytes("vm-image-bytes");
  auto manifest = sign_image("evil-vm", "1.0", content, {}, rogue);
  EXPECT_EQ(service_.register_image(manifest, content).code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ImageFixture, TamperedContentRejected) {
  Bytes content = to_bytes("vm-image-bytes");
  auto manifest = sign_image("analytics-vm", "1.0", content, {}, builder_);
  Bytes tampered = to_bytes("vm-image-bytes!");
  EXPECT_EQ(service_.register_image(manifest, tampered).code(),
            StatusCode::kIntegrityError);
}

TEST_F(ImageFixture, TamperedManifestRejected) {
  Bytes content = to_bytes("vm-image-bytes");
  auto manifest = sign_image("analytics-vm", "1.0", content, {}, builder_);
  manifest.version = "6.6.6";
  EXPECT_EQ(service_.register_image(manifest, content).code(),
            StatusCode::kIntegrityError);
}

TEST_F(ImageFixture, RevokedKeyStopsAdmission) {
  Bytes content = to_bytes("vm-image-bytes");
  auto manifest = sign_image("analytics-vm", "1.0", content, {}, builder_);
  service_.revoke_key(builder_.pub.fingerprint());
  EXPECT_EQ(service_.register_image(manifest, content).code(),
            StatusCode::kPermissionDenied);
  EXPECT_FALSE(service_.is_approved(builder_.pub.fingerprint()));
}

TEST_F(ImageFixture, DuplicateRegistrationRejected) {
  Bytes content = to_bytes("vm-image-bytes");
  auto manifest = sign_image("analytics-vm", "1.0", content, {}, builder_);
  ASSERT_TRUE(service_.register_image(manifest, content).is_ok());
  EXPECT_EQ(service_.register_image(manifest, content).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ImageFixture, AggregatePackageSignatures) {
  Bytes content = to_bytes("container-layers");
  std::vector<Bytes> packages{to_bytes("pkg-numpy"), to_bytes("pkg-openssl")};
  auto manifest = sign_image("model-ctr", "2.1", content, packages, builder_);
  EXPECT_EQ(manifest.package_digests.size(), 2u);
  EXPECT_TRUE(service_.register_image(manifest, content).is_ok());

  // Altering the recorded package set breaks the aggregate signature.
  auto fetched = service_.manifest("model-ctr", "2.1").value();
  fetched.package_digests.pop_back();
  EXPECT_EQ(service_.verify_image(fetched, content).code(),
            StatusCode::kIntegrityError);
}

TEST_F(ImageFixture, MissingImageIsNotFound) {
  EXPECT_EQ(service_.manifest("ghost", "0").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service_.content("ghost", "0").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace hc::tpm
