// Intercloud trusted workload transfer (Section II.C):
// a model container is signed at the analytics cloud, approved through
// change management, shipped to the data cloud via the intercloud secure
// gateway, remotely attested, and launched where the data lives. A
// tampered transfer is shown being rejected.
//
// Build & run:  cmake --build build && ./build/examples/intercloud_transfer
#include <cstdio>

#include "analytics/lifecycle.h"
#include "platform/change_mgmt.h"
#include "platform/instance.h"
#include "platform/intercloud.h"

using namespace hc;

int main() {
  std::printf("=== Intercloud trusted container transfer ===\n\n");

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(1));

  platform::InstanceConfig a;
  a.name = "analytics-cloud";
  a.seed = 11;
  platform::InstanceConfig b;
  b.name = "data-cloud";
  b.seed = 12;
  platform::HealthCloudInstance analytics_cloud(a, clock, network);
  platform::HealthCloudInstance data_cloud(b, clock, network);
  network.set_link("analytics-cloud", "data-cloud", net::LinkProfile::intercloud());

  // Federation agreement: the data cloud trusts containers signed by the
  // analytics cloud's platform key.
  data_cloud.images().approve_key(analytics_cloud.platform_signing_keys().pub);

  // 1. The model goes through its lifecycle at the analytics cloud.
  auto& models = analytics_cloud.models();
  Bytes artifact = to_bytes("jmf-model-weights-v2|layer-base|layer-runtime");
  (void)models.create("jmf-repositioning", artifact);
  (void)models.advance("jmf-repositioning", 1, analytics::ModelStage::kGeneration);
  (void)models.advance("jmf-repositioning", 1, analytics::ModelStage::kTesting);
  (void)models.record_metric("jmf-repositioning", 1, "auc", 0.93);
  (void)models.approve("jmf-repositioning", 1, "compliance-officer");
  (void)models.advance("jmf-repositioning", 1, analytics::ModelStage::kDeployed);
  std::printf("[1] model lifecycle complete; v1 deployed with AUC=%.2f\n",
              models.deployed("jmf-repositioning")->metrics.at("auc"));

  // 2. Package + sign the container, register the measurement via change
  //    management (describe -> evaluate -> approve -> apply).
  auto manifest = tpm::sign_image("jmf-repositioning", "2.0", artifact,
                                  {to_bytes("layer-base"), to_bytes("layer-runtime")},
                                  analytics_cloud.platform_signing_keys());
  (void)analytics_cloud.images().register_image(manifest, artifact);

  platform::ChangeManagementService cm(data_cloud.attestation(), data_cloud.log());
  auto change = cm.propose("container:jmf-repositioning@2.0", artifact,
                           "deploy repositioning model to data cloud");
  (void)cm.evaluate(change, "sre-team");
  (void)cm.approve(change, "compliance-officer");
  (void)cm.apply(change);
  std::printf("[2] container signed (%s) and change #%llu applied\n",
              manifest.signer_fingerprint.c_str(),
              static_cast<unsigned long long>(change));

  // 3. Transfer + remote attestation + launch at the data cloud.
  platform::IntercloudGateway gateway(analytics_cloud, data_cloud);
  auto receipt = gateway.transfer_and_launch("jmf-repositioning", "2.0");
  if (!receipt.is_ok()) {
    std::printf("transfer failed: %s\n", receipt.status().to_string().c_str());
    return 1;
  }
  std::printf("[3] transferred + attested: network %s, attestation %s, vTPM %s\n",
              format_duration(receipt->transfer_latency).c_str(),
              format_duration(receipt->attestation_latency).c_str(),
              receipt->vtpm_id.c_str());

  // 4. A tampered transfer is rejected by the destination.
  auto manifest2 = tpm::sign_image("jmf-repositioning", "2.1", artifact, {},
                                   analytics_cloud.platform_signing_keys());
  (void)analytics_cloud.images().register_image(manifest2, artifact);
  gateway.tamper_next_transfer();
  auto bad = gateway.transfer_and_launch("jmf-repositioning", "2.1");
  std::printf("[4] tampered transfer: %s\n",
              bad.is_ok() ? "UNEXPECTEDLY ACCEPTED" : bad.status().to_string().c_str());

  return bad.is_ok() ? 1 : 0;
}
