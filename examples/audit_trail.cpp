// Auditability and the GDPR right-to-forget (Sections IV.B.1, IV.E):
// an auditor walks the provenance/consent/malware/privacy ledgers for one
// patient's data, then the patient exercises right-to-forget and the
// auditor confirms the lifecycle is closed while the audit trail itself
// remains intact.
//
// Build & run:  cmake --build build && ./build/examples/audit_trail
#include <cstdio>

#include "blockchain/auditor.h"
#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "ingestion/malware.h"
#include "platform/compliance.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"
#include "platform/log_anchor.h"

using namespace hc;

int main() {
  std::printf("=== Auditor view & right-to-forget ===\n\n");

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(1));
  platform::InstanceConfig config;
  config.name = "health-cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("clinic", "health-cloud", net::LinkProfile::wan());

  platform::EnhancedClientConfig client_config;
  client_config.name = "clinic";
  platform::EnhancedClient clinic(client_config, cloud, "clinic-user");

  Rng rng(2);

  // Patient consents, uploads flow in; one upload is infected.
  fhir::Bundle visit1 = fhir::make_synthetic_bundle(rng, "visit-1", 1);
  const auto patient = std::get<fhir::Patient>(visit1.resources[0]);
  (void)cloud.ledger().submit_and_commit(
      "consent", {{"action", "grant"}, {"patient", patient.id}, {"group", "study"}},
      "provider");
  (void)clinic.upload_bundle(visit1, "study");

  fhir::Bundle infected = fhir::make_synthetic_bundle(rng, "visit-2", 1);
  std::get<fhir::Patient>(infected.resources[0]).address =
      to_string(ingestion::test_malware_payload());
  (void)clinic.upload_bundle(infected, "study");

  std::size_t stored = cloud.ingestion().process_all();
  std::printf("ingested: %zu stored, 1 rejected (malware)\n\n", stored);

  auto records = cloud.metadata().by_group("study");
  const std::string reference = records.front().reference_id;
  const std::string pseudonym = records.front().pseudonym;

  // --- auditor walks the ledgers ------------------------------------------
  blockchain::AuditorView auditor(cloud.ledger());
  std::printf("-- auditor view --\n");
  auto lifecycle = auditor.record_lifecycle(reference);
  std::printf("record %s lifecycle:", reference.c_str());
  for (const auto& event : lifecycle.events) std::printf(" %s", event.c_str());
  std::printf("\nconsent history for %s:", patient.id.c_str());
  for (const auto& entry : auditor.consent_history(patient.id)) {
    std::printf(" %s", entry.c_str());
  }
  std::printf("\nrisky senders (>=1 infected upload):");
  for (const auto& sender : auditor.risky_senders(1)) std::printf(" %s", sender.c_str());
  auto privacy_score = cloud.ledger().state_value("privacy", reference + "/score");
  std::printf("\nrecorded privacy degree: %s\n",
              privacy_score.is_ok() ? privacy_score->c_str() : "n/a");
  std::printf("ledger integrity: %s\n\n",
              auditor.verify_integrity().is_ok() ? "OK" : "BROKEN");

  // --- right to forget ------------------------------------------------------
  std::printf("-- right to forget --\n");
  auto forgotten = cloud.forget_patient(pseudonym);
  std::printf("records erased: %zu\n", *forgotten);
  std::printf("lake still holds record: %s\n",
              cloud.lake().contains(reference) ? "yes (BUG)" : "no");
  std::printf("re-identification possible: %s\n",
              cloud.reid_map().identity(pseudonym).is_ok() ? "yes (BUG)" : "no");

  // The audit trail itself is immutable: the lifecycle now ends in
  // 'deleted' and the chain still validates.
  lifecycle = auditor.record_lifecycle(reference);
  std::printf("post-forget lifecycle:");
  for (const auto& event : lifecycle.events) std::printf(" %s", event.c_str());
  std::printf("\nledger integrity after forget: %s\n",
              auditor.verify_integrity().is_ok() ? "OK" : "BROKEN");

  // Audit-grade platform log events captured along the way, sealed onto the
  // ledger so they cannot be rewritten.
  std::printf("\naudit log events recorded: %zu\n",
              cloud.log()->count(LogLevel::kAudit));
  platform::LogAnchorService anchor(*cloud.log(), cloud.ledger(), cloud.name());
  auto checkpoint = anchor.checkpoint();
  if (checkpoint.is_ok()) {
    std::printf("log checkpoint sealed: records [%zu,%zu) root=%s...\n",
                checkpoint->begin, checkpoint->end,
                hex_encode(checkpoint->root).substr(0, 16).c_str());
    std::printf("log integrity verification: %s\n",
                anchor.verify().is_ok() ? "OK" : "TAMPERED");
  }

  // Finally, the compliance report an external auditor would file (Fig 8).
  // A tenant with a registered user makes the workforce control meaningful.
  auto tenant = cloud.rbac().register_tenant("operator").value();
  (void)cloud.rbac().add_user(tenant.id, "admin");
  platform::ComplianceReport report = platform::ComplianceAuditor(cloud).audit();
  std::printf("\n-- HIPAA compliance report --\n");
  for (const auto& control : report.controls) {
    std::printf("  [%s] %-32s (%s)\n", control.passed ? "PASS" : "FAIL",
                control.control.c_str(),
                std::string(platform::pillar_name(control.pillar)).c_str());
  }
  std::printf("overall: %s (%zu/%zu controls)\n",
              report.compliant() ? "COMPLIANT" : "NON-COMPLIANT",
              report.passed_count(), report.controls.size());
  return 0;
}
