// Drug repositioning end-to-end (paper Section V.A):
// build drug/disease similarity matrices from (synthetic) knowledge bases,
// run Joint Matrix Factorization, and rank novel drug-disease candidates —
// the Alzheimer's/Lupus workflow of the paper on synthetic ground truth.
//
// Build & run:  cmake --build build && ./build/examples/drug_repositioning
#include <algorithm>
#include <cstdio>

#include "analytics/jmf.h"
#include "analytics/metrics.h"
#include "analytics/mf.h"
#include "analytics/similarity.h"
#include "common/rng.h"

using namespace hc;
using namespace hc::analytics;

int main() {
  std::printf("=== Drug repositioning with JMF (Section V.A) ===\n\n");

  // 1. Synthetic stand-ins for PubChem/DrugBank/SIDER drug profiles and
  //    phenotype/ontology/gene disease profiles, with known ground truth.
  WorkloadConfig config;
  config.drugs = 120;
  config.diseases = 80;
  config.latent_rank = 6;
  Rng rng(42);
  DrugDiseaseWorkload workload = make_drug_disease_workload(config, rng);
  std::printf("knowledge bases: %zu drug similarity sources, %zu disease sources\n",
              workload.drug_similarities.size(), workload.disease_similarities.size());
  std::printf("known associations: %zu held out for validation\n\n",
              workload.held_out.size());

  // 2. Run JMF integrating every source.
  JmfConfig jmf_config;
  jmf_config.rank = 8;
  jmf_config.epochs = 100;
  JmfResult result = joint_matrix_factorization(workload.observed,
                                                workload.drug_similarities,
                                                workload.disease_similarities,
                                                jmf_config, rng);
  std::printf("JMF converged: objective %.1f -> %.1f over %zu epochs\n",
              result.objective_history.front(), result.objective_history.back(),
              result.objective_history.size());

  std::printf("learned source importance (chemical/target/side-effect):");
  for (double w : result.drug_source_weights) std::printf(" %.3f", w);
  std::printf("\n\n");

  // 3. Rank unobserved drug-disease pairs by predicted score — these are
  //    the repositioning hypotheses.
  struct Candidate {
    std::size_t drug, disease;
    double score;
    bool actually_true;
  };
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < config.drugs; ++i) {
    for (std::size_t j = 0; j < config.diseases; ++j) {
      if (workload.observed(i, j) == 0.0) {
        candidates.push_back(
            {i, j, result.scores(i, j), workload.truth(i, j) == 1.0});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.score > b.score; });

  std::printf("top 15 repositioning hypotheses (checked against ground truth):\n");
  std::printf("%6s %10s %10s %8s %s\n", "rank", "drug", "disease", "score",
              "verified?");
  int verified = 0;
  for (int r = 0; r < 15; ++r) {
    const auto& c = candidates[static_cast<std::size_t>(r)];
    verified += c.actually_true ? 1 : 0;
    std::printf("%6d %10zu %10zu %8.3f %s\n", r + 1, c.drug, c.disease, c.score,
                c.actually_true ? "yes (held-out true association)" : "no");
  }
  std::printf("\n%d/15 top hypotheses are held-out true associations — the\n"
              "\"verified in clinical trials\" analogue on synthetic truth.\n\n",
              verified);

  // 4. By-product groupings (paper claim 3).
  std::printf("drug group sizes (factor-argmax clusters):");
  std::vector<int> sizes(jmf_config.rank, 0);
  for (auto g : result.drug_groups) sizes[g]++;
  for (int s : sizes) std::printf(" %d", s);
  std::printf("\n\n");

  // 5. The paper's other matrix-factorization use case (Section III):
  //    "predicting diseases caused by genes ... our system can use
  //    techniques such as matrix factorization to compute additional
  //    associations between genes and diseases" — same machinery applied
  //    to a DisGeNet-shaped gene-disease matrix.
  WorkloadConfig gene_config;
  gene_config.drugs = 150;   // rows: genes
  gene_config.diseases = 60; // cols: diseases
  gene_config.latent_rank = 5;
  gene_config.drug_source_noise = {0.1};
  gene_config.disease_source_noise = {0.1};
  Rng gene_rng(43);
  DrugDiseaseWorkload genes = make_drug_disease_workload(gene_config, gene_rng);

  MfConfig mf_config;
  mf_config.rank = 6;
  mf_config.epochs = 250;
  Matrix mask(genes.observed.rows(), genes.observed.cols(), 1.0);
  MfModel gene_model = factorize(genes.observed, mask, mf_config, gene_rng);
  double gene_auc = evaluate_held_out_auc(gene_model.scores(), genes, gene_rng);
  std::printf("gene-disease association completion (DisGeNet-shaped, plain MF):\n");
  std::printf("  %zu genes x %zu diseases, %zu held-out associations, AUC %.3f\n",
              gene_config.drugs, gene_config.diseases, genes.held_out.size(),
              gene_auc);
  return 0;
}
