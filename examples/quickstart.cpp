// Quickstart: stand up a trusted health-cloud instance, register a tenant
// and a clinician, ingest one patient bundle through the full trusted
// pipeline, read it back, and show the audit trail.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "blockchain/auditor.h"
#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/enhanced_client.h"
#include "platform/gateway.h"
#include "platform/instance.h"

using namespace hc;

int main() {
  std::printf("=== HealthCloud quickstart ===\n\n");

  // 1. Stand up the platform: simulated network + one trusted instance.
  //    Construction performs the measured boot and registers the TPM with
  //    the attestation service.
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(1));
  platform::InstanceConfig config;
  config.name = "health-cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("clinic-laptop", "health-cloud", net::LinkProfile::wan());
  std::printf("[1] instance '%s' booted; boot measured into %zu log entries\n",
              cloud.name().c_str(), cloud.boot_log().size());

  // 2. Registration service: a tenant with default org/environment, a
  //    clinician user with an analyst role, and a study group.
  auto tenant = cloud.rbac().register_tenant("mercy-health").value();
  auto clinician = cloud.rbac().add_user(tenant.id, "dr-garcia").value();
  auto study = cloud.rbac().add_group(tenant.id, "diabetes-study").value();
  (void)cloud.rbac().assign_role(clinician, tenant.default_env,
                                 rbac::Role::kClinician);
  (void)cloud.rbac().add_user_to_group(clinician, study);
  std::printf("[2] tenant '%s' registered; clinician %s enrolled in %s\n",
              tenant.name.c_str(), clinician.c_str(), study.c_str());

  // 3. An enhanced client for the clinic: registration issues its keypair.
  platform::EnhancedClientConfig client_config;
  client_config.name = "clinic-laptop";
  platform::EnhancedClient client(client_config, cloud, clinician);

  // 4. The patient consents to the study (recorded on the consent ledger),
  //    then the clinic uploads their FHIR bundle — encrypted client-side.
  Rng rng(2);
  fhir::Bundle bundle = fhir::make_synthetic_bundle(rng, "visit-2018-03-01");
  const auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
  (void)cloud.ledger().submit_and_commit(
      "consent", {{"action", "grant"}, {"patient", patient.id}, {"group", "study-a"}},
      "healthcare-provider");
  auto receipt = client.upload_bundle(bundle, "study-a");
  std::printf("[3] uploaded bundle for %s; status URL: %s\n", patient.name.c_str(),
              receipt->status_url.c_str());

  // 5. The background worker ingests: decrypt, validate, scan, consent
  //    check, de-identify, verify anonymization, store, record provenance.
  auto outcome = cloud.ingestion().process_next();
  if (!outcome.is_ok() || !outcome->stored) {
    std::printf("ingestion failed: %s\n",
                outcome.is_ok() ? outcome->failure_reason.c_str()
                                : outcome.status().to_string().c_str());
    return 1;
  }
  std::printf("[4] ingested -> reference %s\n", outcome->reference_id.c_str());
  auto status = cloud.status_tracker().status(receipt->status_url).value();
  std::printf("    status URL now reports: %s\n",
              std::string(storage::ingestion_stage_name(status.stage)).c_str());

  // 6. Read it back through the enhanced client (first remote, then cached).
  auto first = client.fetch_record(outcome->reference_id);
  auto second = client.fetch_record(outcome->reference_id);
  std::printf("[5] fetch: remote %s, cached %s\n",
              format_duration(first->latency).c_str(),
              format_duration(second->latency).c_str());
  auto stored = fhir::parse_bundle(first->data).value();
  const auto& stored_patient = std::get<fhir::Patient>(stored.resources[0]);
  std::printf("    stored record is de-identified: id=%s name='%s' zip=%s\n",
              stored_patient.id.c_str(), stored_patient.name.c_str(),
              stored_patient.zip.c_str());

  // 7. Audit trail from the provenance ledger.
  blockchain::AuditorView auditor(cloud.ledger());
  auto lifecycle = auditor.record_lifecycle(outcome->reference_id);
  std::printf("[6] provenance events:");
  for (const auto& event : lifecycle.events) std::printf(" %s", event.c_str());
  std::printf("\n    ledger integrity: %s\n",
              auditor.verify_integrity().is_ok() ? "OK" : "BROKEN");

  std::printf("\nquickstart complete.\n");
  return 0;
}
