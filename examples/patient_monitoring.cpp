// Patient monitoring from a mobile enhanced client (Sections I, III, V.B):
// vitals are collected on-device (including offline), anonymized and
// encrypted at the client, synced to the cloud, ingested through the
// trusted pipeline, and finally analyzed with DELT over the accumulated
// EMR to surface drug effects on HbA1c.
//
// Build & run:  cmake --build build && ./build/examples/patient_monitoring
#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>

#include "analytics/delt.h"
#include "blockchain/contracts.h"
#include "fhir/synthetic.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"

using namespace hc;

int main() {
  std::printf("=== Patient monitoring via enhanced clients ===\n\n");

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(1));
  platform::InstanceConfig config;
  config.name = "health-cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("phone", "health-cloud", net::LinkProfile::mobile());

  platform::EnhancedClientConfig client_config;
  client_config.name = "phone";
  platform::EnhancedClient phone(client_config, cloud, "patient-app");

  Rng rng(2);

  // 1. Collect readings while the phone is offline (subway commute).
  phone.set_connected(false);
  for (std::size_t visit = 0; visit < 3; ++visit) {
    fhir::Bundle bundle =
        fhir::make_synthetic_bundle(rng, "reading-" + std::to_string(visit), visit);
    const auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    // Consent was granted at enrollment (provider-side, already online).
    (void)cloud.ledger().submit_and_commit(
        "consent",
        {{"action", "grant"}, {"patient", patient.id}, {"group", "monitoring"}},
        "provider");
    auto receipt = phone.upload_bundle(bundle, "monitoring");
    std::printf("[offline] reading %zu captured -> %s\n", visit,
                receipt->upload_id.c_str());
  }
  std::printf("pending uploads on device: %zu\n\n", phone.pending_uploads());

  // 2. Connectivity returns; sync pushes the encrypted queue, and the
  //    background worker ingests everything.
  phone.set_connected(true);
  auto flushed = phone.sync();
  std::printf("[online] sync flushed %zu uploads\n", *flushed);
  std::size_t stored = cloud.ingestion().process_all();
  std::printf("[cloud]  ingestion stored %zu de-identified records\n\n", stored);

  // 3. Demonstrate client-side anonymization for data the patient shares
  //    with a third party directly.
  fhir::Bundle raw = fhir::make_synthetic_bundle(rng, "export-for-study", 99);
  auto anonymized = phone.anonymize_locally(raw);
  const auto& anon_patient = std::get<fhir::Patient>(anonymized->resources[0]);
  std::printf("client-side anonymization: '%s' -> id=%s, zip=%s\n\n",
              std::get<fhir::Patient>(raw.resources[0]).name.c_str(),
              anon_patient.id.c_str(), anon_patient.zip.c_str());

  // 4. Cloud-side analytics: DELT over an accumulated EMR cohort finds the
  //    drugs that actually lower HbA1c despite confounders.
  analytics::EmrConfig emr_config;
  emr_config.patients = 1500;
  emr_config.drugs = 80;
  emr_config.planted_drugs = 6;
  Rng emr_rng(3);
  auto emr = analytics::make_emr_dataset(emr_config, emr_rng);
  auto model = analytics::fit_delt(emr, analytics::DeltConfig{});
  auto metrics = analytics::score_recovery(model.drug_effects, emr);
  std::printf("DELT over %zu-patient cohort: AUC=%.3f P@N=%.2f\n",
              emr_config.patients, metrics.auc, metrics.precision_at_n);

  std::printf("strongest HbA1c-lowering signals (drug id: estimated effect):\n");
  std::vector<std::size_t> order(emr.drug_count);
  for (std::size_t d = 0; d < emr.drug_count; ++d) order[d] = d;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model.drug_effects[a] < model.drug_effects[b];
  });
  for (int r = 0; r < 6; ++r) {
    std::size_t d = order[static_cast<std::size_t>(r)];
    std::printf("  drug-%zu: %+.2f%%  (%s)\n", d, model.drug_effects[d],
                emr.is_planted[d] ? "true planted effect" : "no planted effect");
  }

  // 5. The fitted model goes through the compliance lifecycle and gets
  //    pushed to the phone as a signed package (Section II.C) so the app
  //    can flag risky prescriptions on-device, even offline.
  Bytes artifact;
  for (double effect : model.drug_effects) {
    auto bits = std::bit_cast<std::array<std::uint8_t, 8>>(effect);
    artifact.insert(artifact.end(), bits.begin(), bits.end());
  }
  auto& models = cloud.models();
  (void)models.create("hba1c-effects", artifact);
  (void)models.advance("hba1c-effects", 1, analytics::ModelStage::kGeneration);
  (void)models.advance("hba1c-effects", 1, analytics::ModelStage::kTesting);
  (void)models.record_metric("hba1c-effects", 1, "auc", metrics.auc);
  (void)models.approve("hba1c-effects", 1, "compliance-officer");
  (void)models.advance("hba1c-effects", 1, analytics::ModelStage::kDeployed);

  auto pulled = phone.pull_model("hba1c-effects");
  std::printf("\nmodel push to phone: %s (v%u, %zu bytes, verified against the\n"
              "platform key pinned at registration)\n",
              pulled.is_ok() ? "installed" : pulled.status().to_string().c_str(),
              pulled.is_ok() ? *pulled : 0,
              phone.installed_model_artifact("hba1c-effects")
                  .value_or(Bytes{})
                  .size());
  return 0;
}
