// Drug-drug interaction prediction, Tiresias-style (paper Section V.A):
// knowledge bases provide multiple drug-similarity views; pair features
// against known interactions feed a logistic model; PubMed-style abstracts
// are mined for supporting co-occurrence facts.
//
// Build & run:  cmake --build build && ./build/examples/drug_interactions
#include <algorithm>
#include <cstdio>

#include "analytics/ddi.h"
#include "analytics/metrics.h"
#include "services/knowledge.h"

using namespace hc;
using namespace hc::analytics;

int main() {
  std::printf("=== Drug-drug interaction prediction (Tiresias, V.A) ===\n\n");

  // 1. Synthetic stand-ins for the structure/target/side-effect similarity
  //    views Tiresias draws from DrugBank/PubChem/SIDER.
  Rng rng(7);
  DdiWorkload workload = make_ddi_workload(60, 5, rng);
  std::printf("drug universe: 60 drugs, %zu known interactions for training\n",
              workload.train_positives.size());

  // 2. Train the pair-similarity model.
  DdiPredictor predictor(workload.similarities);
  predictor.train(workload.train_positives, workload.train_negatives, DdiConfig{});
  std::printf("learned feature weights (structure/targets/side-effects + bias):");
  for (double w : predictor.weights()) std::printf(" %+.2f", w);
  std::printf("\n\n");

  // 3. Score the held-out pairs and show the strongest predictions.
  struct Scored {
    DrugPair pair;
    double probability;
    bool truly_interacts;
  };
  std::vector<Scored> scored;
  std::vector<double> all_scores;
  for (std::size_t i = 0; i < workload.test_pairs.size(); ++i) {
    double p = predictor.predict(workload.test_pairs[i]);
    scored.push_back({workload.test_pairs[i], p, workload.test_labels[i]});
    all_scores.push_back(p);
  }
  std::printf("test-set AUC: %.3f  AUPR: %.3f\n\n",
              auc_roc(all_scores, workload.test_labels),
              auc_pr(all_scores, workload.test_labels));

  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.probability > b.probability; });
  std::printf("top predicted interactions:\n");
  for (int r = 0; r < 8 && r < static_cast<int>(scored.size()); ++r) {
    const auto& s = scored[static_cast<std::size_t>(r)];
    std::printf("  drug-%zu x drug-%zu  p=%.2f  (%s)\n", s.pair.first, s.pair.second,
                s.probability, s.truly_interacts ? "true interaction" : "false alarm");
  }

  // 4. Literature support: mine PubMed-style abstracts for co-occurrence
  //    facts about the flagged drugs (paper Section III text analysis).
  std::map<std::string, std::string> abstracts{
      {"pmid-101", "Coadministration of warfarin and amiodarone increases INR."},
      {"pmid-102", "No interaction between metformin and lisinopril was observed."},
      {"pmid-103", "Warfarin dosing under amiodarone therapy requires monitoring."},
  };
  auto facts = services::extract_facts(abstracts, {"warfarin", "metformin"},
                                       {"amiodarone", "lisinopril"});
  std::printf("\nliterature co-occurrence facts extracted: %zu\n", facts.size());
  for (const auto& fact : facts) {
    std::printf("  %s <-> %s  (%s)\n", fact.drug.c_str(), fact.disease.c_str(),
                fact.paper_id.c_str());
  }
  return 0;
}
