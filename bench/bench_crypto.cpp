// Experiment F7-crypto (Fig 7, Section IV.B.1).
//
// Claims reproduced:
//   1. "first it is encrypted with a well-established shared key (public
//      key encryption is too expensive to maintain the scalability of the
//      system)" — AES-128-CBC vs per-chunk RSA encryption cost.
//   2. "we recommend using HMACs instead of digital signatures" — HMAC tag
//      vs RSA signature cost per message.
// Wall-clock microbenchmarks via google-benchmark over payload sizes
// 64B..1MB, plus a summary ratio table.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/asymmetric.h"
#include "crypto/hmac.h"

using namespace hc;

namespace {

Bytes payload(std::size_t n) {
  Rng rng(42);
  return rng.bytes(n);
}

void BM_AesCbcEncrypt(benchmark::State& state) {
  Rng rng(1);
  Bytes key = rng.bytes(crypto::kAesKeySize);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_encrypt(key, data, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144)->Arg(1048576);

void BM_RsaEncrypt(benchmark::State& state) {
  Rng rng(2);
  crypto::KeyPair kp = crypto::generate_keypair(rng);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_encrypt(kp.pub, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RsaEncrypt)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_HybridEnvelope(benchmark::State& state) {
  Rng rng(3);
  crypto::KeyPair kp = crypto::generate_keypair(rng);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::envelope_seal(kp.pub, data, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HybridEnvelope)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144)->Arg(1048576);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = payload(32);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144)->Arg(1048576);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(4);
  crypto::KeyPair kp = crypto::generate_keypair(rng);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_sign(kp.priv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RsaSign)->Arg(64)->Arg(1024)->Arg(16384)->Arg(262144)->Arg(1048576);

void BM_AesAuthenticated(benchmark::State& state) {
  Rng rng(5);
  Bytes enc_key = rng.bytes(16), mac_key = rng.bytes(16);
  Bytes data = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::aes_encrypt_authenticated(enc_key, mac_key, data, rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesAuthenticated)->Arg(64)->Arg(16384)->Arg(1048576);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== F7-crypto: shared-key vs public-key cost (Fig 7, IV.B.1) ==\n");
  std::printf("paper-shape check: RSA encryption must be >10x slower than AES at\n"
              "every size; HMAC must be >10x cheaper than RSA signatures; the\n"
              "hybrid envelope tracks AES for large payloads.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
