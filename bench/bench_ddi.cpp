// Experiment F9-ddi (Section V.A, Tiresias [40]).
//
// Reproduces the similarity-based drug-drug-interaction prediction result:
// pair features from multiple drug-similarity sources feed a logistic
// head; evaluated against ground-truth interacting group pairs. Sweeps
// the number of similarity sources (feature ablation) and the training
// fraction, reporting AUC/AUPR against a random baseline.
#include <chrono>
#include <cstdio>

#include "analytics/ddi.h"
#include "analytics/metrics.h"

using namespace hc;
using namespace hc::analytics;

namespace {

struct Eval {
  double auc = 0, aupr = 0;
  double train_s = 0;
};

Eval evaluate(const DdiWorkload& workload, std::size_t sources) {
  std::vector<Matrix> sims(workload.similarities.begin(),
                           workload.similarities.begin() +
                               static_cast<std::ptrdiff_t>(sources));
  DdiPredictor predictor(std::move(sims));
  auto t0 = std::chrono::steady_clock::now();
  predictor.train(workload.train_positives, workload.train_negatives, DdiConfig{});
  auto t1 = std::chrono::steady_clock::now();

  std::vector<double> scores;
  scores.reserve(workload.test_pairs.size());
  for (const auto& pair : workload.test_pairs) {
    scores.push_back(predictor.predict(pair));
  }
  Eval eval;
  eval.auc = auc_roc(scores, workload.test_labels);
  eval.aupr = auc_pr(scores, workload.test_labels);
  eval.train_s = std::chrono::duration<double>(t1 - t0).count();
  return eval;
}

}  // namespace

int main() {
  std::printf("== F9-ddi: similarity-based DDI prediction (Tiresias, V.A) ==\n");

  Rng rng(140);
  DdiWorkload workload = make_ddi_workload(80, 6, rng);
  std::printf("workload: 80 drugs, 6 latent groups, %zu train / %zu test pairs\n\n",
              workload.train_positives.size() + workload.train_negatives.size(),
              workload.test_pairs.size());

  std::printf("%-34s %8s %8s %10s\n", "configuration", "AUC", "AUPR", "train");
  for (std::size_t sources = 1; sources <= workload.similarities.size(); ++sources) {
    Eval eval = evaluate(workload, sources);
    char label[64];
    std::snprintf(label, sizeof(label), "%zu similarity source%s", sources,
                  sources == 1 ? "" : "s");
    std::printf("%-34s %8.3f %8.3f %9.2fs\n", label, eval.auc, eval.aupr,
                eval.train_s);
  }

  // Random baseline.
  {
    Rng noise(141);
    std::vector<double> random_scores;
    for (std::size_t i = 0; i < workload.test_pairs.size(); ++i) {
      random_scores.push_back(noise.uniform());
    }
    std::printf("%-34s %8.3f %8.3f %10s\n", "random scores (baseline)",
                auc_roc(random_scores, workload.test_labels),
                auc_pr(random_scores, workload.test_labels), "-");
  }

  std::printf("\npaper-shape check: similarity features put AUC far above the\n"
              "random baseline; additional sources do not hurt (and typically\n"
              "help the cleaner-feature configurations).\n");
  return 0;
}
