// Experiment F7-ingest (Fig 7, Sections II.B and IV.B.1).
//
// Reproduces the end-to-end asynchronous ingestion pipeline: client-side
// encryption -> staging -> queue -> decrypt -> validate -> malware scan ->
// consent -> de-identify + anonymization verification -> encrypted store +
// ledger provenance. Reports throughput, per-stage rejection breakdown,
// and the upload-vs-ingest asynchrony the paper designs for.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "blockchain/contracts.h"
#include "crypto/hmac.h"
#include "fhir/synthetic.h"
#include "ingestion/malware.h"
#include "obs/export.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"

using namespace hc;

namespace {

constexpr std::size_t kBundles = 1500;
constexpr double kMalwareRate = 0.01;
constexpr double kConsentMissRate = 0.02;
constexpr double kSloppyAnonymizationRate = 0.0;  // handled server-side anyway

/// `--metrics-out [path]` -> artifact path ("" = flag absent).
std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

/// Section III's ingest-crypto claim, measured: per-record verification
/// cost of the PKI path (hybrid envelope open, RSA-bound) vs a shared-key
/// HMAC check, wall clock. Records the per-op means and their ratio.
void record_hmac_vs_pki(obs::MetricsRegistry& metrics, Rng& rng) {
  constexpr int kOps = 50;
  Bytes payload(1024, 0x42);
  crypto::KeyPair keys = crypto::generate_keypair(rng);
  auto envelope = crypto::envelope_seal(keys.pub, payload, rng);
  Bytes mac_key = rng.bytes(32);
  Bytes tag = crypto::hmac_sha256(mac_key, payload);

  auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) (void)crypto::envelope_open(keys.priv, envelope);
  auto wall1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) (void)crypto::hmac_verify(mac_key, payload, tag);
  auto wall2 = std::chrono::steady_clock::now();

  double pki_us = std::chrono::duration<double, std::micro>(wall1 - wall0).count() / kOps;
  double hmac_us = std::chrono::duration<double, std::micro>(wall2 - wall1).count() / kOps;
  metrics.set_gauge("hc.bench.ingestion.pki_open_wall_us", pki_us, "us");
  metrics.set_gauge("hc.bench.ingestion.hmac_verify_wall_us", hmac_us, "us");
  metrics.set_gauge("hc.bench.ingestion.pki_over_hmac",
                    hmac_us > 0 ? pki_us / hmac_us : 0.0);
  std::printf("\n-- ingest crypto cost (1KB record, wall clock) --\n");
  std::printf("%-34s %9.1fus\n", "PKI envelope open", pki_us);
  std::printf("%-34s %9.2fus\n", "HMAC-SHA256 verify", hmac_us);
  std::printf("%-34s %9.0fx\n", "PKI / HMAC", hmac_us > 0 ? pki_us / hmac_us : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_ingestion.json");
  std::printf("== F7-ingest: trusted ingestion pipeline (Fig 7 / II.B) ==\n");
  std::printf("workload: %zu uploads, %.0f%% malware, %.0f%% missing consent\n\n",
              kBundles, kMalwareRate * 100, kConsentMissRate * 100);
  (void)kSloppyAnonymizationRate;

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(30));
  platform::InstanceConfig config;
  config.name = "cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("client", "cloud", net::LinkProfile::wan());

  platform::EnhancedClientConfig client_config;
  client_config.name = "client";
  platform::EnhancedClient client(client_config, cloud, "clinic-bench");

  Rng rng(31);
  // Pre-generate bundles with injected failures.
  std::vector<fhir::Bundle> bundles;
  bundles.reserve(kBundles);
  for (std::size_t i = 0; i < kBundles; ++i) {
    fhir::Bundle bundle = fhir::make_synthetic_bundle(rng, "b" + std::to_string(i), i);
    auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    bool infected = rng.bernoulli(kMalwareRate);
    bool no_consent = !infected && rng.bernoulli(kConsentMissRate);
    if (infected) patient.address = to_string(ingestion::test_malware_payload());
    if (!no_consent) {
      (void)cloud.ledger().submit_and_commit(
          "consent",
          {{"action", "grant"}, {"patient", patient.id}, {"group", "study"}},
          "provider");
    }
    bundles.push_back(std::move(bundle));
  }

  // Upload phase (client side, async).
  SimTime upload_start = clock->now();
  auto wall0 = std::chrono::steady_clock::now();
  for (const auto& bundle : bundles) {
    auto receipt = client.upload_bundle(bundle, "study");
    if (!receipt.is_ok()) std::printf("!! upload failed: %s\n", receipt.status().to_string().c_str());
  }
  SimTime upload_elapsed = clock->now() - upload_start;

  // Background processing phase.
  SimTime process_start = clock->now();
  std::size_t stored = 0;
  std::map<std::string, std::size_t> rejection_reasons;
  for (;;) {
    auto outcome = cloud.ingestion().process_next();
    if (!outcome.is_ok()) break;
    if (outcome->stored) {
      ++stored;
    } else {
      // Bucket by the leading word of the reason.
      std::string reason = outcome->failure_reason.substr(
          0, outcome->failure_reason.find(':'));
      ++rejection_reasons[reason];
    }
  }
  SimTime process_elapsed = clock->now() - process_start;
  auto wall1 = std::chrono::steady_clock::now();
  double wall_s = std::chrono::duration<double>(wall1 - wall0).count();

  std::printf("%-34s %10zu\n", "uploads accepted", kBundles);
  std::printf("%-34s %10zu\n", "stored in data lake", stored);
  for (const auto& [reason, count] : rejection_reasons) {
    std::printf("rejected: %-24s %10zu\n", reason.c_str(), count);
  }
  std::printf("\n%-34s %10s\n", "phase", "sim time");
  std::printf("%-34s %10s\n", "upload (client, async return)",
              format_duration(upload_elapsed).c_str());
  std::printf("%-34s %10s\n", "background ingestion",
              format_duration(process_elapsed).c_str());
  std::printf("%-34s %9.1f/s\n", "pipeline throughput (sim)",
              static_cast<double>(kBundles) / (static_cast<double>(process_elapsed) / kSecond));
  std::printf("%-34s %9.1f/s\n", "pipeline throughput (wall)",
              static_cast<double>(kBundles) / wall_s);

  std::printf("%-34s %10zu\n", "provenance ledger blocks",
              cloud.ledger().chain().size());
  bool chain_ok = cloud.ledger().validate_chain().is_ok();
  std::printf("%-34s %10s\n", "ledger integrity", chain_ok ? "OK" : "BROKEN");

  if (!metrics_path.empty()) {
    // The instance registry already holds the per-stage latency histograms,
    // reject counters, and ledger counters from the run; add the headline
    // throughput gauges and the HMAC-vs-PKI cost comparison.
    obs::MetricsRegistry& metrics = *cloud.metrics();
    metrics.set_gauge(
        "hc.bench.ingestion.throughput_sim_per_s",
        static_cast<double>(kBundles) / (static_cast<double>(process_elapsed) / kSecond));
    metrics.set_gauge("hc.bench.ingestion.throughput_wall_per_s",
                      static_cast<double>(kBundles) / wall_s);
    record_hmac_vs_pki(metrics, rng);
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("metrics artifact written to %s\n", metrics_path.c_str());
  }

  std::printf("\npaper-shape check: rejects match the injected malware/consent rates;\n"
              "every stored record is de-identified, encrypted, and has provenance.\n");
  return chain_ok && stored > 0 ? 0 : 1;
}
