// Experiment F7-ingest (Fig 7, Sections II.B and IV.B.1).
//
// Reproduces the end-to-end asynchronous ingestion pipeline: client-side
// encryption -> staging -> queue -> decrypt -> validate -> malware scan ->
// consent -> de-identify + anonymization verification -> encrypted store +
// ledger provenance. Reports throughput, per-stage rejection breakdown,
// and the upload-vs-ingest asynchrony the paper designs for.
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "blockchain/contracts.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/session_cache.h"
#include "crypto/sha256_multi.h"
#include "fhir/synthetic.h"
#include "ingestion/malware.h"
#include "obs/export.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"

using namespace hc;

namespace {

constexpr std::size_t kBundles = 1500;
constexpr double kMalwareRate = 0.01;
constexpr double kConsentMissRate = 0.02;
constexpr double kSloppyAnonymizationRate = 0.0;  // handled server-side anyway

/// `--metrics-out [path]` -> artifact path ("" = flag absent).
std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

/// Section III's ingest-crypto claim, measured: per-record verification
/// cost of the PKI path (hybrid envelope open, RSA-bound) vs a shared-key
/// HMAC check, wall clock. Records the per-op means and their ratio.
void record_hmac_vs_pki(obs::MetricsRegistry& metrics, Rng& rng) {
  constexpr int kOps = 50;
  Bytes payload(1024, 0x42);
  crypto::KeyPair keys = crypto::generate_keypair(rng);
  auto envelope = crypto::envelope_seal(keys.pub, payload, rng);
  Bytes mac_key = rng.bytes(32);
  Bytes tag = crypto::hmac_sha256(mac_key, payload);

  auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) (void)crypto::envelope_open(keys.priv, envelope);
  auto wall1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) (void)crypto::hmac_verify(mac_key, payload, tag);
  auto wall2 = std::chrono::steady_clock::now();

  double pki_us = std::chrono::duration<double, std::micro>(wall1 - wall0).count() / kOps;
  double hmac_us = std::chrono::duration<double, std::micro>(wall2 - wall1).count() / kOps;
  metrics.set_gauge("hc.bench.ingestion.pki_open_wall_us", pki_us, "us");
  metrics.set_gauge("hc.bench.ingestion.hmac_verify_wall_us", hmac_us, "us");
  metrics.set_gauge("hc.bench.ingestion.pki_over_hmac",
                    hmac_us > 0 ? pki_us / hmac_us : 0.0);
  std::printf("\n-- ingest crypto cost (1KB record, wall clock) --\n");
  std::printf("%-34s %9.1fus\n", "PKI envelope open", pki_us);
  std::printf("%-34s %9.2fus\n", "HMAC-SHA256 verify", hmac_us);
  std::printf("%-34s %9.0fx\n", "PKI / HMAC", hmac_us > 0 ? pki_us / hmac_us : 0.0);
}

/// `--crypto-out [path]` -> BENCH_crypto.json artifact path ("" = absent).
std::string crypto_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--crypto-out") {
      return i + 1 < argc && argv[i + 1][0] != '-' ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--crypto-out=", 0) == 0) {
      return arg.substr(std::string("--crypto-out=").size());
    }
  }
  return "";
}

/// The ingest crypto hot path, before vs after the ISSUE-10 treatment:
/// per-upload private-key fetch + RSA unwrap + scalar tag verify, against
/// the SessionKeyCache (one unwrap per *distinct* session) + one batched
/// hmac_verify_batch pass over the whole drain, plus the 4-lane SHA-256 and
/// 4-block AES kernels against their scalar references. Wall-clock rows go
/// to stdout only; the artifact records exclusively deterministic counts
/// (uploads, sessions, unwraps, cache hits/misses, bitwise-equality flags)
/// so BENCH_crypto.json is byte-reproducible — the two-pass gate below
/// refuses to write a diverging artifact.
bool record_crypto_hot_path(obs::MetricsRegistry& metrics, bool print) {
  constexpr std::size_t kUploads = 600;
  constexpr std::size_t kSessions = 12;
  constexpr std::size_t kPayloadBytes = 1024;

  Rng rng(41);
  crypto::KeyManagementService kms("bench-crypto", Rng(42));
  crypto::KeyId client_key = kms.create_keypair("client");
  if (!kms.authorize(client_key, "client", "ingest").is_ok()) return false;
  auto pub = kms.public_key(client_key);
  if (!pub.is_ok()) return false;

  // Clients hold a session open across many uploads: each of the 12
  // sessions re-wraps its key under the platform keypair, so 600 envelopes
  // carry only 12 distinct wrapped-key fields.
  std::vector<Bytes> session_keys;
  for (std::size_t s = 0; s < kSessions; ++s) session_keys.push_back(rng.bytes(16));
  std::vector<crypto::Envelope> envelopes;
  envelopes.reserve(kUploads);
  for (std::size_t i = 0; i < kUploads; ++i) {
    envelopes.push_back(crypto::envelope_seal_with_key(
        *pub, session_keys[i % kSessions], rng.bytes(kPayloadBytes), rng));
  }

  // BEFORE: the seed pipeline — every upload pays a KMS private-key fetch,
  // a full RSA unwrap, and a scalar HMAC verify.
  std::vector<Bytes> before_keys;
  before_keys.reserve(kUploads);
  bool before_ok = true;
  auto wall0 = std::chrono::steady_clock::now();
  for (const auto& env : envelopes) {
    auto priv = kms.private_key(client_key, "ingest");
    if (!priv.is_ok()) return false;
    Bytes key = crypto::envelope_unwrap_key(*priv, env);
    before_ok = before_ok && crypto::envelope_tag_ok(key, env);
    before_keys.push_back(std::move(key));
  }
  auto wall1 = std::chrono::steady_clock::now();

  // AFTER: SessionKeyCache (one fetch + unwrap per distinct session) and
  // one batched verify pass over the whole drain.
  crypto::SessionKeyCache cache(kms, "ingest");
  std::vector<Bytes> after_keys;
  after_keys.reserve(kUploads);
  auto wall2 = std::chrono::steady_clock::now();
  for (const auto& env : envelopes) {
    auto key = cache.unwrap(client_key, env.wrapped_key);
    if (!key.is_ok()) return false;
    after_keys.push_back(*key);
  }
  std::vector<crypto::HmacVerifyItem> items(kUploads);
  for (std::size_t i = 0; i < kUploads; ++i) {
    items[i] = {&after_keys[i], &envelopes[i].body, &envelopes[i].tag};
  }
  std::vector<bool> verdicts = crypto::hmac_verify_batch(items);
  auto wall3 = std::chrono::steady_clock::now();

  bool after_ok = true;
  for (bool verdict : verdicts) after_ok = after_ok && verdict;
  const bool keys_equal = before_keys == after_keys;
  const auto cache_stats = cache.stats();

  // Kernel bitwise-equality spot checks (the property tests pin these over
  // random lengths/alignments; the bench re-asserts on its own data).
  bool sha_equal = true;
  {
    const std::uint8_t* data[4];
    std::size_t len[4];
    for (int lane = 0; lane < 4; ++lane) {
      data[lane] = envelopes[static_cast<std::size_t>(lane)].body.data();
      len[lane] = envelopes[static_cast<std::size_t>(lane)].body.size();
    }
    std::uint8_t out[4][32];
    crypto::sha256_x4(data, len, out);
    for (int lane = 0; lane < 4; ++lane) {
      Bytes scalar = crypto::sha256(envelopes[static_cast<std::size_t>(lane)].body);
      sha_equal = sha_equal && Bytes(out[lane], out[lane] + 32) == scalar;
    }
  }
  bool aes_equal = true;
  double aes_scalar_us = 0.0;
  double aes_batched_us = 0.0;
  {
    crypto::Aes128 aes(session_keys[0]);
    Bytes blocks = rng.bytes(64);
    std::uint8_t scalar[64];
    std::uint8_t batched[64];
    constexpr int kAesReps = 20000;
    auto a0 = std::chrono::steady_clock::now();
    for (int r = 0; r < kAesReps; ++r) {
      for (int b = 0; b < 4; ++b) {
        aes.decrypt_block(blocks.data() + 16 * b, scalar + 16 * b);
      }
    }
    auto a1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kAesReps; ++r) aes.decrypt_blocks4(blocks.data(), batched);
    auto a2 = std::chrono::steady_clock::now();
    aes_equal = Bytes(scalar, scalar + 64) == Bytes(batched, batched + 64);
    aes_scalar_us = std::chrono::duration<double, std::micro>(a1 - a0).count() / kAesReps;
    aes_batched_us = std::chrono::duration<double, std::micro>(a2 - a1).count() / kAesReps;
  }

  const double before_us =
      std::chrono::duration<double, std::micro>(wall1 - wall0).count() / kUploads;
  const double after_us =
      std::chrono::duration<double, std::micro>(wall3 - wall2).count() / kUploads;
  if (print) {
    std::printf("\n-- ingest crypto hot path: before/after "
                "(%zu uploads, %zu sessions, %zuB payloads) --\n",
                kUploads, kSessions, kPayloadBytes);
    std::printf("%-34s %9.2fus   (per-upload key fetch + RSA unwrap + scalar verify)\n",
                "before: unwrap+verify / upload", before_us);
    std::printf("%-34s %9.2fus   (session cache + one batched verify pass)\n",
                "after:  unwrap+verify / upload", after_us);
    std::printf("%-34s %9.1fx\n", "hot-path speedup",
                after_us > 0 ? before_us / after_us : 0.0);
    std::printf("%-34s %6zu -> %zu\n", "rsa unwraps", kUploads,
                static_cast<std::size_t>(cache_stats.misses));
    std::printf("%-34s %6llu/%llu\n", "session cache hits/misses",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses));
    std::printf("%-34s %9.3fus vs %.3fus (%.1fx)\n", "aes 4-block decrypt (batched)",
                aes_scalar_us, aes_batched_us,
                aes_batched_us > 0 ? aes_scalar_us / aes_batched_us : 0.0);
    std::printf("%-34s %10s\n", "bitwise equal to scalar path",
                keys_equal && sha_equal && aes_equal ? "yes" : "NO");
  }

  metrics.add("hc.bench.crypto.uploads", kUploads);
  metrics.add("hc.bench.crypto.distinct_sessions", kSessions);
  metrics.add("hc.bench.crypto.payload_bytes", kUploads * kPayloadBytes, "B");
  metrics.add("hc.bench.crypto.rsa_unwraps_before", kUploads);
  metrics.add("hc.bench.crypto.rsa_unwraps_after", cache_stats.misses);
  metrics.add("hc.bench.crypto.session_cache_hits", cache_stats.hits);
  metrics.add("hc.bench.crypto.session_cache_misses", cache_stats.misses);
  metrics.set_gauge("hc.bench.crypto.session_keys_bitwise_equal",
                    keys_equal ? 1.0 : 0.0);
  metrics.set_gauge("hc.bench.crypto.batched_verify_matches_scalar",
                    before_ok && after_ok ? 1.0 : 0.0);
  metrics.set_gauge("hc.bench.crypto.sha256_x4_bitwise_equal", sha_equal ? 1.0 : 0.0);
  metrics.set_gauge("hc.bench.crypto.aes_blocks4_bitwise_equal",
                    aes_equal ? 1.0 : 0.0);
  return before_ok && after_ok && keys_equal && sha_equal && aes_equal &&
         cache_stats.misses == kSessions &&
         cache_stats.hits == kUploads - kSessions;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_ingestion.json");
  std::string crypto_path = crypto_out_path(argc, argv, "BENCH_crypto.json");
  std::printf("== F7-ingest: trusted ingestion pipeline (Fig 7 / II.B) ==\n");
  std::printf("workload: %zu uploads, %.0f%% malware, %.0f%% missing consent\n\n",
              kBundles, kMalwareRate * 100, kConsentMissRate * 100);
  (void)kSloppyAnonymizationRate;

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(30));
  platform::InstanceConfig config;
  config.name = "cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("client", "cloud", net::LinkProfile::wan());

  platform::EnhancedClientConfig client_config;
  client_config.name = "client";
  platform::EnhancedClient client(client_config, cloud, "clinic-bench");

  Rng rng(31);
  // Pre-generate bundles with injected failures.
  std::vector<fhir::Bundle> bundles;
  bundles.reserve(kBundles);
  for (std::size_t i = 0; i < kBundles; ++i) {
    fhir::Bundle bundle = fhir::make_synthetic_bundle(rng, "b" + std::to_string(i), i);
    auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    bool infected = rng.bernoulli(kMalwareRate);
    bool no_consent = !infected && rng.bernoulli(kConsentMissRate);
    if (infected) patient.address = to_string(ingestion::test_malware_payload());
    if (!no_consent) {
      (void)cloud.ledger().submit_and_commit(
          "consent",
          {{"action", "grant"}, {"patient", patient.id}, {"group", "study"}},
          "provider");
    }
    bundles.push_back(std::move(bundle));
  }

  // Upload phase (client side, async).
  SimTime upload_start = clock->now();
  auto wall0 = std::chrono::steady_clock::now();
  for (const auto& bundle : bundles) {
    auto receipt = client.upload_bundle(bundle, "study");
    if (!receipt.is_ok()) std::printf("!! upload failed: %s\n", receipt.status().to_string().c_str());
  }
  SimTime upload_elapsed = clock->now() - upload_start;

  // Background processing phase.
  SimTime process_start = clock->now();
  std::size_t stored = 0;
  std::map<std::string, std::size_t> rejection_reasons;
  for (;;) {
    auto outcome = cloud.ingestion().process_next();
    if (!outcome.is_ok()) break;
    if (outcome->stored) {
      ++stored;
    } else {
      // Bucket by the leading word of the reason.
      std::string reason = outcome->failure_reason.substr(
          0, outcome->failure_reason.find(':'));
      ++rejection_reasons[reason];
    }
  }
  SimTime process_elapsed = clock->now() - process_start;
  auto wall1 = std::chrono::steady_clock::now();
  double wall_s = std::chrono::duration<double>(wall1 - wall0).count();

  std::printf("%-34s %10zu\n", "uploads accepted", kBundles);
  std::printf("%-34s %10zu\n", "stored in data lake", stored);
  for (const auto& [reason, count] : rejection_reasons) {
    std::printf("rejected: %-24s %10zu\n", reason.c_str(), count);
  }
  std::printf("\n%-34s %10s\n", "phase", "sim time");
  std::printf("%-34s %10s\n", "upload (client, async return)",
              format_duration(upload_elapsed).c_str());
  std::printf("%-34s %10s\n", "background ingestion",
              format_duration(process_elapsed).c_str());
  std::printf("%-34s %9.1f/s\n", "pipeline throughput (sim)",
              static_cast<double>(kBundles) / (static_cast<double>(process_elapsed) / kSecond));
  std::printf("%-34s %9.1f/s\n", "pipeline throughput (wall)",
              static_cast<double>(kBundles) / wall_s);

  std::printf("%-34s %10zu\n", "provenance ledger blocks",
              cloud.ledger().chain().size());
  bool chain_ok = cloud.ledger().validate_chain().is_ok();
  std::printf("%-34s %10s\n", "ledger integrity", chain_ok ? "OK" : "BROKEN");

  if (!metrics_path.empty()) {
    // The instance registry already holds the per-stage latency histograms,
    // reject counters, and ledger counters from the run; add the headline
    // throughput gauges and the HMAC-vs-PKI cost comparison.
    obs::MetricsRegistry& metrics = *cloud.metrics();
    metrics.set_gauge(
        "hc.bench.ingestion.throughput_sim_per_s",
        static_cast<double>(kBundles) / (static_cast<double>(process_elapsed) / kSecond));
    metrics.set_gauge("hc.bench.ingestion.throughput_wall_per_s",
                      static_cast<double>(kBundles) / wall_s);
    record_hmac_vs_pki(metrics, rng);
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("metrics artifact written to %s\n", metrics_path.c_str());
  }

  // Before/after crypto hot path, with the two-pass reproducibility gate:
  // the artifact carries only deterministic counts and bitwise-equality
  // flags, so two fresh passes must serialize identically byte for byte.
  obs::MetricsRegistry crypto_metrics;
  obs::MetricsRegistry crypto_rerun;
  bool crypto_ok = record_crypto_hot_path(crypto_metrics, true) &&
                   record_crypto_hot_path(crypto_rerun, false);
  const bool crypto_reproducible =
      obs::to_json(crypto_metrics) == obs::to_json(crypto_rerun);
  crypto_ok = crypto_ok && crypto_reproducible;
  std::printf("%-34s %10s\n", "crypto artifact reproducible",
              crypto_reproducible ? "yes" : "NO");
  if (!crypto_path.empty()) {
    if (!crypto_ok) {
      std::printf("!! refusing to write %s: crypto hot path diverged\n",
                  crypto_path.c_str());
      return 1;
    }
    Status written = obs::write_metrics_json(crypto_metrics, crypto_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("crypto artifact written to %s\n", crypto_path.c_str());
  }

  std::printf("\npaper-shape check: rejects match the injected malware/consent rates;\n"
              "every stored record is de-identified, encrypted, and has provenance.\n");
  return chain_ok && crypto_ok && stored > 0 ? 0 : 1;
}
