// Experiment F8-rbac (Fig 8, Section II.B).
//
// Measures the per-call overhead of the compliance machinery on the API
// path: RBAC permission checks as the tenant/org/group population grows,
// and the full gateway pipeline (authenticate -> RBAC -> meter -> route)
// per request — the cost of "weaving" security into every call.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "platform/gateway.h"
#include "platform/instance.h"

using namespace hc;
using namespace hc::platform;

namespace {

struct World {
  ClockPtr clock = make_clock();
  std::unique_ptr<net::SimNetwork> network;
  std::unique_ptr<HealthCloudInstance> cloud;
  std::unique_ptr<ApiGateway> gateway;
  rbac::TenantInfo tenant;
  std::string user;
};

World make_world(std::size_t users, std::size_t groups, std::size_t grants) {
  World world;
  world.network = std::make_unique<net::SimNetwork>(world.clock, Rng(90));
  InstanceConfig config;
  config.name = "cloud";
  world.cloud = std::make_unique<HealthCloudInstance>(config, world.clock, *world.network);

  auto& rbac = world.cloud->rbac();
  world.tenant = rbac.register_tenant("bench-tenant").value();
  for (std::size_t u = 0; u < users; ++u) {
    auto id = rbac.add_user(world.tenant.id, "user-" + std::to_string(u)).value();
    if (u == 0) world.user = id;
    (void)rbac.assign_role(id, world.tenant.default_env, rbac::Role::kAnalyst);
  }
  for (std::size_t g = 0; g < groups; ++g) {
    (void)rbac.add_group(world.tenant.id, "group-" + std::to_string(g));
  }
  for (std::size_t g = 0; g < grants; ++g) {
    (void)rbac.grant_permission(world.tenant.id, rbac::Role::kAnalyst,
                                "resource-" + std::to_string(g) + "/",
                                rbac::Permission::kRead);
  }
  (void)rbac.grant_permission(world.tenant.id, rbac::Role::kAnalyst, "kb/",
                              rbac::Permission::kRead);

  world.gateway = std::make_unique<ApiGateway>(*world.cloud);
  world.gateway->route("kb/", [](const std::string&, const ApiRequest&) {
    return Result<ApiResponse>(ApiResponse{});
  });
  return world;
}

void BM_RbacCheck(benchmark::State& state) {
  World world = make_world(static_cast<std::size_t>(state.range(0)), 50,
                           static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.cloud->rbac().check_access(
        world.user, world.tenant.default_env, world.tenant.id, "kb/drugbank",
        rbac::Permission::kRead));
  }
  state.counters["users"] = static_cast<double>(state.range(0));
  state.counters["grants"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_RbacCheck)->Args({100, 10})->Args({1000, 10})->Args({10000, 10})
    ->Args({1000, 100})->Args({1000, 1000});

void BM_GatewayFullPipeline(benchmark::State& state) {
  World world = make_world(1000, 50, 100);
  ApiRequest request;
  request.user_id = world.user;
  request.environment = world.tenant.default_env;
  request.scope = world.tenant.id;
  request.resource = "kb/drugbank/drug-1";
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.gateway->handle(request));
  }
}
BENCHMARK(BM_GatewayFullPipeline);

void BM_GatewayDeniedRequest(benchmark::State& state) {
  World world = make_world(1000, 50, 100);
  ApiRequest request;
  request.user_id = world.user;
  request.environment = world.tenant.default_env;
  request.scope = world.tenant.id;
  request.resource = "phi/identified/rec-1";  // never granted
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.gateway->handle(request));
  }
}
BENCHMARK(BM_GatewayDeniedRequest);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== F8-rbac: RBAC + API-management overhead (Fig 8 / II.B) ==\n");
  std::printf("paper-shape check: permission checks stay microsecond-scale and\n"
              "grow with grant count, not user count; full gateway pipeline adds\n"
              "bounded overhead over the bare check.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
