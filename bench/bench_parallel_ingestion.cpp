// Experiment F7-parallel (Sections II.B and IV.B.1).
//
// Worker-count sweep over the parallelized ingestion pipeline: the same
// seeded mixed workload is uploaded to a fresh platform instance per run,
// then drained with process_all(n_workers) for n in {1, 2, 4, 8}. With
// n > 1 every stage cost lands in a worker-local sim lane and the shared
// clock advances once by the ideal makespan ceil(total / n), so sim-time
// throughput scales ~n x deterministically — independent of the host's
// core count (wall throughput is bounded by hardware concurrency; sim
// throughput is the quantity the platform's perf claims are stated in).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "fhir/synthetic.h"
#include "ingestion/malware.h"
#include "obs/export.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"

using namespace hc;

namespace {

constexpr std::size_t kBundles = 800;
constexpr double kMalwareRate = 0.01;
constexpr double kConsentMissRate = 0.02;
const std::vector<std::size_t> kWorkerSweep = {1, 2, 4, 8};

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

struct RunResult {
  std::size_t stored = 0;
  SimTime sim_elapsed = 0;
  double wall_s = 0.0;
  std::string metrics_json;  // aggregate-metrics document for the run
  bool chain_ok = false;
};

/// Stands up a fresh instance, replays the identical seeded workload, and
/// drains it with `workers`. Every run sees byte-identical uploads: all
/// Rngs are re-seeded, so only the drain strategy differs.
RunResult run_once(std::size_t workers, obs::MetricsPtr* registry_out) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(30));
  platform::InstanceConfig config;
  config.name = "cloud";
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("client", "cloud", net::LinkProfile::wan());

  platform::EnhancedClientConfig client_config;
  client_config.name = "client";
  platform::EnhancedClient client(client_config, cloud, "clinic-bench");

  Rng rng(31);
  for (std::size_t i = 0; i < kBundles; ++i) {
    fhir::Bundle bundle = fhir::make_synthetic_bundle(rng, "b" + std::to_string(i), i);
    auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    bool infected = rng.bernoulli(kMalwareRate);
    bool no_consent = !infected && rng.bernoulli(kConsentMissRate);
    if (infected) patient.address = to_string(ingestion::test_malware_payload());
    if (!no_consent) {
      (void)cloud.ledger().submit_and_commit(
          "consent",
          {{"action", "grant"}, {"patient", patient.id}, {"group", "study"}},
          "provider");
    }
    auto receipt = client.upload_bundle(bundle, "study");
    if (!receipt.is_ok()) {
      std::printf("!! upload failed: %s\n", receipt.status().to_string().c_str());
    }
  }

  RunResult result;
  SimTime start = clock->now();
  auto wall0 = std::chrono::steady_clock::now();
  result.stored = cloud.ingestion().process_all(workers);
  auto wall1 = std::chrono::steady_clock::now();
  result.sim_elapsed = clock->now() - start;
  result.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  result.metrics_json = obs::to_json(*cloud.metrics());
  result.chain_ok = cloud.ledger().validate_chain().is_ok();
  if (registry_out) *registry_out = cloud.metrics();
  return result;
}

double sim_throughput(const RunResult& r) {
  return static_cast<double>(kBundles) /
         (static_cast<double>(r.sim_elapsed) / kSecond);
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path =
      metrics_out_path(argc, argv, "BENCH_parallel_ingestion.json");
  std::printf("== F7-parallel: ingestion worker sweep (II.B / IV.B.1) ==\n");
  std::printf("workload: %zu uploads, %.0f%% malware, %.0f%% missing consent; "
              "hardware workers: %zu\n\n",
              kBundles, kMalwareRate * 100, kConsentMissRate * 100,
              exec::hardware_workers());

  obs::MetricsPtr registry;
  std::vector<RunResult> results;
  results.reserve(kWorkerSweep.size());
  for (std::size_t workers : kWorkerSweep) {
    // Keep the registry of the last (widest) run as the artifact base.
    results.push_back(run_once(workers, &registry));
  }
  const RunResult& baseline = results.front();

  std::printf("%-8s %-8s %-12s %-14s %-10s %-10s\n", "workers", "stored",
              "sim elapsed", "sim thpt (/s)", "speedup", "wall (s)");
  bool ok = baseline.chain_ok;
  double speedup_at_4 = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    double speedup = static_cast<double>(baseline.sim_elapsed) /
                     static_cast<double>(r.sim_elapsed);
    if (kWorkerSweep[i] == 4) speedup_at_4 = speedup;
    std::printf("%-8zu %-8zu %-12s %-14.1f %-10.2f %-10.2f\n", kWorkerSweep[i],
                r.stored, format_duration(r.sim_elapsed).c_str(),
                sim_throughput(r), speedup, r.wall_s);
    ok = ok && r.chain_ok && r.stored == baseline.stored;
    // The drain strategy must not change what was recorded: every run's
    // aggregate metrics document is byte-identical to the serial one.
    if (r.metrics_json != baseline.metrics_json) {
      std::printf("!! metrics diverged at %zu workers\n", kWorkerSweep[i]);
      ok = false;
    }
  }
  std::printf("\naggregate metrics identical across the sweep: %s\n",
              ok ? "yes" : "NO");
  if (speedup_at_4 < 2.0) {
    std::printf("!! expected >= 2x sim speedup at 4 workers, got %.2fx\n",
                speedup_at_4);
    ok = false;
  }

  if (!metrics_path.empty() && registry) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::string prefix = "hc.bench.parallel_ingestion.workers_" +
                           std::to_string(kWorkerSweep[i]);
      registry->set_gauge(prefix + ".sim_elapsed_us",
                          static_cast<double>(results[i].sim_elapsed), "us");
      registry->set_gauge(prefix + ".throughput_sim_per_s",
                          sim_throughput(results[i]));
      registry->set_gauge(prefix + ".speedup_vs_1",
                          static_cast<double>(baseline.sim_elapsed) /
                              static_cast<double>(results[i].sim_elapsed));
    }
    registry->set_gauge("hc.bench.parallel_ingestion.hardware_workers",
                        static_cast<double>(exec::hardware_workers()));
    registry->set_gauge("hc.bench.parallel_ingestion.uploads",
                        static_cast<double>(kBundles));
    Status written = obs::write_metrics_json(*registry, metrics_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("metrics artifact written to %s\n", metrics_path.c_str());
  }

  std::printf("\npaper-shape check: worker count divides the sim makespan without\n"
              "changing any verdict, stored record, or aggregate metric.\n");
  return ok ? 0 : 1;
}
