// Experiment C-privacy (Section IV.C).
//
// Reproduces the anonymization machinery's behaviour:
//   - k-anonymity (Mondrian) cost and utility vs k on 10k patient rows:
//     runtime, average equivalence-class size, l-diversity of the result,
//   - de-identification throughput (records/s),
//   - anonymization-verification service: acceptance of properly
//     de-identified records vs rejection of raw/sloppy ones.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/rng.h"
#include "privacy/deid.h"
#include "privacy/kanonymity.h"
#include "privacy/verification.h"

using namespace hc;
using namespace hc::privacy;

namespace {

std::vector<FieldMap> make_rows(std::size_t n, Rng& rng) {
  std::vector<FieldMap> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rows.push_back(FieldMap{
        {"age", std::to_string(rng.uniform_int(18, 95))},
        {"zip", std::to_string(rng.uniform_int(10000, 99999))},
        {"diagnosis", "dx-" + std::to_string(rng.uniform_int(0, 12))},
    });
  }
  return rows;
}

FieldMap raw_record(Rng& rng, std::size_t i) {
  return FieldMap{
      {"patient_id", "patient-" + std::to_string(i)},
      {"name", "Pat Doe"},
      {"ssn", "123-45-6789"},
      {"age", std::to_string(rng.uniform_int(18, 95))},
      {"zip", std::to_string(rng.uniform_int(10000, 99999))},
      {"gender", rng.bernoulli(0.5) ? "female" : "male"},
      {"birth_date", "1970-01-01"},
      {"diagnosis", "dx"},
  };
}

void BM_Deidentify(benchmark::State& state) {
  Rng rng(70);
  Pseudonymizer pseudonymizer(rng.bytes(32));
  auto schema = FieldSchema::standard_patient();
  auto record = raw_record(rng, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deidentify(record, schema, pseudonymizer));
  }
}
BENCHMARK(BM_Deidentify);

void BM_KAnonymize(benchmark::State& state) {
  Rng rng(71);
  auto rows = make_rows(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k_anonymize(rows, {"age", "zip"}, 10));
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_KAnonymize)->Arg(1000)->Arg(5000)->Arg(10000);

void BM_VerificationService(benchmark::State& state) {
  Rng rng(72);
  Pseudonymizer pseudonymizer(rng.bytes(32));
  auto schema = FieldSchema::standard_patient();
  AnonymizationVerificationService service(schema, 0.99, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    auto record = deidentify(raw_record(rng, i++), schema, pseudonymizer);
    benchmark::DoNotOptimize(service.verify(record->fields, {"age", "zip", "gender"}));
  }
}
BENCHMARK(BM_VerificationService);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== C-privacy: anonymization cost and utility (IV.C) ==\n\n");

  // --- k sweep table (utility/privacy trade-off) ------------------------
  Rng rng(73);
  auto rows = make_rows(10000, rng);
  std::printf("-- Mondrian k-anonymity on 10000 rows (age, zip QIs) --\n");
  std::printf("%6s %14s %16s %12s %12s\n", "k", "suppressed", "avg-class-size",
              "l-diversity", "k-holds");
  for (std::size_t k : {2, 5, 10, 25, 50}) {
    auto result = k_anonymize(rows, {"age", "zip"}, k);
    if (!result.is_ok()) {
      std::printf("k=%zu failed: %s\n", k, result.status().to_string().c_str());
      continue;
    }
    std::printf("%6zu %14zu %16.1f %12zu %12s\n", k, result->suppressed,
                average_class_size(result->records, {"age", "zip"}),
                l_diversity(result->records, {"age", "zip"}, "diagnosis"),
                is_k_anonymous(result->records, {"age", "zip"}, k) ? "yes" : "NO");
  }

  // --- verification service acceptance matrix ----------------------------
  // Record-level scoring (min_k = 1): the holistic crowd-size criterion is
  // exercised separately by the k-anonymity sweep above, since random
  // 5-digit zips rarely repeat in a 500-record probe population.
  std::printf("\n-- anonymization verification service (record-level) --\n");
  Pseudonymizer pseudonymizer(rng.bytes(32));
  auto schema = FieldSchema::standard_patient();
  AnonymizationVerificationService service(schema, 0.99, 1);
  int deid_accepted = 0, raw_accepted = 0, sloppy_accepted = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    auto raw = raw_record(rng, static_cast<std::size_t>(i));
    auto deid = deidentify(raw, schema, pseudonymizer)->fields;
    if (service.verify(deid, {"age", "zip", "gender"}).acceptable) ++deid_accepted;
    if (service.verify(raw, {"age", "zip", "gender"}).acceptable) ++raw_accepted;
    auto sloppy = deid;
    sloppy["ssn"] = "123-45-6789";
    if (service.verify(sloppy, {"age", "zip", "gender"}).acceptable) ++sloppy_accepted;
  }
  std::printf("%-36s %5.1f%%\n", "de-identified records accepted",
              100.0 * deid_accepted / trials);
  std::printf("%-36s %5.1f%%\n", "raw records accepted (want 0)",
              100.0 * raw_accepted / trials);
  std::printf("%-36s %5.1f%%\n", "records w/ surviving SSN accepted (want 0)",
              100.0 * sloppy_accepted / trials);

  std::printf("\npaper-shape check: larger k -> larger classes (less utility);\n"
              "raw/sloppy records are rejected, clean de-identified ones accepted.\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
