// Experiment F10 (ISSUE: scenario engine): run a declarative scenario
// file end to end and emit its artifact bundle.
//
//   bench_scenario <file.scn> [--out <dir>] [--workers <n>]
//
// Prints the per-(cell, mode, tenant) outcome table in bench_overload's
// format plus every verdict line; --out writes the triage bundle
// (metrics.json / timeline.txt / verdicts.txt), which is byte-identical
// across reruns and across --workers values. Exit code 0 iff every
// verdict passes — the F10 harness runs the same file twice and diffs
// the bundles to prove replayability.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "scenario/runner.h"
#include "scenario/validator.h"

using namespace hc;

int main(int argc, char** argv) {
  std::string path;
  std::string out_dir;
  scenario::RunOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      options.ingest_workers =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_scenario <file.scn> [--out <dir>] "
                 "[--workers <n>]\n");
    return 2;
  }

  Result<scenario::Scenario> loaded = scenario::load_file(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 loaded.status().message().c_str());
    return 2;
  }
  const scenario::Scenario& spec = *loaded;

  Result<scenario::RunReport> ran = scenario::run(spec, options);
  if (!ran.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", ran.status().message().c_str());
    return 2;
  }
  const scenario::RunReport& report = *ran;

  std::printf("== scenario %s (seed %llu, horizon %s) ==\n",
              report.scenario_name.c_str(),
              static_cast<unsigned long long>(report.seed),
              format_duration(report.horizon).c_str());
  std::printf("%-6s %-6s %-12s %8s %8s %7s %6s %6s %9s %8s %8s\n", "load",
              "mode", "tenant", "offered", "served", "shed", "late", "lost",
              "goodput", "p95-ms", "p99-ms");
  for (const scenario::CellModeResult& cell : report.cells) {
    for (std::size_t i = 0; i < cell.tenants.size(); ++i) {
      const scenario::TenantTally& tally = cell.tenants[i];
      if (tally.offered == 0) continue;
      char label[32];
      std::snprintf(label, sizeof(label), "x%.1f", cell.load);
      std::printf(
          "%-6s %-6s %-12s %8llu %8llu %7llu %6llu %6llu %8.1f%% %8.2f "
          "%8.2f\n",
          label, std::string(scenario::scheduler_mode_name(cell.mode)).c_str(),
          spec.tenants[i].name.c_str(),
          static_cast<unsigned long long>(tally.offered),
          static_cast<unsigned long long>(tally.served),
          static_cast<unsigned long long>(tally.shed),
          static_cast<unsigned long long>(tally.late),
          static_cast<unsigned long long>(tally.lost),
          100.0 * static_cast<double>(tally.served) /
              static_cast<double>(tally.offered),
          tally.percentile(0.95) / 1000.0, tally.percentile(0.99) / 1000.0);
    }
  }

  if (!report.ingest.empty()) {
    std::printf("\ningestion replay (first sweep cell):\n");
    for (std::size_t i = 0; i < report.ingest.size(); ++i) {
      const scenario::IngestTally& tally = report.ingest[i];
      if (tally.attempted == 0) continue;
      std::printf("  %-12s attempted %4llu stored %4llu malware %3llu "
                  "consent %3llu\n",
                  spec.tenants[i].name.c_str(),
                  static_cast<unsigned long long>(tally.attempted),
                  static_cast<unsigned long long>(tally.stored),
                  static_cast<unsigned long long>(tally.rejected_malware),
                  static_cast<unsigned long long>(tally.rejected_consent));
    }
  }

  std::printf("\n%s", scenario::verdicts_text(report).c_str());

  if (!out_dir.empty()) {
    Status written = scenario::write_bundle(report, out_dir);
    if (!written.is_ok()) {
      std::fprintf(stderr, "bundle write failed: %s\n",
                   written.message().c_str());
      return 2;
    }
    std::printf("bundle written to %s\n", out_dir.c_str());
  }
  return report.all_pass() ? 0 : 1;
}
