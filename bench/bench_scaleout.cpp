// Experiment F12-scaleout (ROADMAP item 1, Section II.B).
//
// Million-patient macro-bench over the consistent-hash cluster: one
// million synthetic patient records are placed on 1/2/4/8 shard-hosts
// through the real hc::cluster ring, every record's ingest cost is
// charged to its owner host's sim lane through the real byte-pure
// cluster link, and the makespan is the slowest host lane. Placement is
// the only thing a host count changes, so:
//
//   - sim speedup at h hosts is makespan(1)/makespan(h), gated at
//     >= 0.9x ideal (the ring's 128-vnode balance keeps the max/mean
//     host load within a few percent at this key count);
//   - the aggregate statistics (record count, byte total, fixed-point
//     value sum, an order-invariant placement fingerprint) reduce over
//     per-host partials in sorted host order and must come out
//     byte-identical across host counts, aggregation worker counts
//     (exec::parallel_for chunk sweep), and whole reruns.
//
// The second full rerun regenerates every number from scratch; the
// artifact (BENCH_scaleout.json) is written only if both passes agree.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "exec/executor.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace hc;

namespace {

constexpr std::size_t kPatients = 1'000'000;
const std::vector<std::size_t> kHostSweep = {1, 2, 4, 8};
const std::vector<std::size_t> kWorkerSweep = {1, 2, 4, 8};

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

/// splitmix64: each record's bytes/value derive from its index alone, so
/// any chunk of the id space can be generated independently (the worker
/// sweep partitions records without an Rng sequence dependence).
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

struct Record {
  std::size_t bytes;             // staged envelope size
  std::int64_t value_micro;      // synthetic measurement, fixed-point
  std::uint64_t fingerprint;     // per-record hash, XOR-combined
};

Record make_record(std::size_t i) {
  const std::uint64_t h = mix64(0x5ca1e0u + i);
  Record r;
  r.bytes = 200 + static_cast<std::size_t>(h % 1800);  // 200..1999 B
  r.value_micro = static_cast<std::int64_t>(h % 20'000'000) - 10'000'000;
  r.fingerprint = mix64(h);
  return r;
}

/// Per-host aggregation partial. merge() is associative and commutative
/// (sums and XOR), so the reduction over sorted host order is a pure
/// function of placement — never of charge or chunk interleaving.
struct Partial {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::int64_t value_micro = 0;
  std::uint64_t fingerprint = 0;

  void absorb(const Record& r) {
    ++records;
    bytes += r.bytes;
    value_micro += r.value_micro;
    fingerprint ^= r.fingerprint;
  }
  void merge(const Partial& o) {
    records += o.records;
    bytes += o.bytes;
    value_micro += o.value_micro;
    fingerprint ^= o.fingerprint;
  }
  bool operator==(const Partial& o) const {
    return records == o.records && bytes == o.bytes &&
           value_micro == o.value_micro && fingerprint == o.fingerprint;
  }
};

struct SweepResult {
  SimTime makespan = 0;                  // slowest host lane
  Partial total;                         // reduced in sorted host order
  std::uint64_t transfers = 0;
  std::uint64_t transfer_bytes = 0;
  bool workers_agree = true;
};

/// Owner-host index for record `i` without allocating the key string.
std::size_t owner_index(const cluster::Cluster& c,
                        const std::map<std::string, std::size_t>& index,
                        std::size_t i, char* buf) {
  int len = std::snprintf(buf, 32, "patient-%zu", i);
  const std::string* host = c.owner(std::string_view(buf, static_cast<std::size_t>(len)));
  return index.at(*host);
}

SweepResult run_hosts(std::size_t hosts) {
  cluster::ClusterConfig config;
  config.hosts = hosts;
  config.replication = 1;  // placement bench: the macro model charges the
                           // primary ingest path; replication is the
                           // differential wall's subject
  cluster::Cluster cluster(config, make_clock());

  std::map<std::string, std::size_t> host_index;
  std::vector<std::string> host_names = cluster.hosts();
  for (std::size_t h = 0; h < host_names.size(); ++h) {
    host_index.emplace(host_names[h], h);
  }

  // Serial placement pass: charge every record to its owner's sim lane
  // through the real cluster link (cost = base_latency + bytes/bandwidth,
  // a pure function of the record bytes).
  std::vector<SimTime> lanes(hosts, 0);
  std::vector<Partial> partials(hosts);
  char buf[32];
  for (std::size_t i = 0; i < kPatients; ++i) {
    const Record r = make_record(i);
    const std::size_t h = owner_index(cluster, host_index, i, buf);
    cluster.charge_transfer(cluster.origin(), host_names[h], r.bytes, &lanes[h]);
    partials[h].absorb(r);
  }

  SweepResult result;
  result.makespan = *std::max_element(lanes.begin(), lanes.end());
  for (const Partial& p : partials) result.total.merge(p);  // sorted host order
  result.transfers = cluster.total_transfers();
  result.transfer_bytes = cluster.total_bytes();

  // Aggregation worker sweep: the same per-host partials computed by
  // parallel_for over fixed record chunks must reduce to the identical
  // totals at every worker count (chunk partials merge in index order).
  constexpr std::size_t kChunks = 256;
  for (std::size_t workers : kWorkerSweep) {
    std::vector<std::vector<Partial>> chunk_partials(
        kChunks, std::vector<Partial>(hosts));
    exec::parallel_for(kChunks, workers, [&](std::size_t c) {
      char local[32];
      const std::size_t begin = c * kPatients / kChunks;
      const std::size_t end = (c + 1) * kPatients / kChunks;
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t h = owner_index(cluster, host_index, i, local);
        chunk_partials[c][h].absorb(make_record(i));
      }
    });
    std::vector<Partial> merged(hosts);
    for (std::size_t c = 0; c < kChunks; ++c) {
      for (std::size_t h = 0; h < hosts; ++h) merged[h].merge(chunk_partials[c][h]);
    }
    Partial total;
    for (const Partial& p : merged) total.merge(p);
    if (!(total == result.total) || !std::equal(merged.begin(), merged.end(),
                                                partials.begin())) {
      std::printf("!! %zu-host aggregate diverged at %zu workers\n", hosts,
                  workers);
      result.workers_agree = false;
    }
  }
  return result;
}

void record_artifact(obs::MetricsRegistry& registry, std::size_t hosts,
                     const SweepResult& r, const SweepResult& baseline) {
  const std::string prefix =
      "hc.bench.scaleout.hosts_" + std::to_string(hosts);
  registry.set_gauge(prefix + ".makespan_us",
                     static_cast<double>(r.makespan), "us");
  registry.set_gauge(prefix + ".speedup_vs_1",
                     static_cast<double>(baseline.makespan) /
                         static_cast<double>(r.makespan));
  registry.set_gauge(prefix + ".ideal_fraction",
                     static_cast<double>(baseline.makespan) /
                         static_cast<double>(r.makespan) /
                         static_cast<double>(hosts));
  registry.add(prefix + ".transfers", r.transfers);
  registry.set_gauge(prefix + ".transfer_bytes",
                     static_cast<double>(r.transfer_bytes), "B");
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_scaleout.json");
  std::printf("== F12-scaleout: million-patient shard-host sweep ==\n");
  std::printf("workload: %zu records, byte-pure cluster link, 128 vnodes/host\n\n",
              kPatients);

  bool ok = true;
  std::string rerun_json;
  obs::MetricsPtr registry;
  for (int pass = 0; pass < 2; ++pass) {
    registry = obs::make_metrics();
    std::vector<SweepResult> results;
    results.reserve(kHostSweep.size());
    for (std::size_t hosts : kHostSweep) results.push_back(run_hosts(hosts));
    const SweepResult& baseline = results.front();

    if (pass == 0) {
      std::printf("%-8s %-14s %-10s %-8s %-12s\n", "hosts", "sim makespan",
                  "speedup", "ideal", "aggregates");
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SweepResult& r = results[i];
      const double speedup = static_cast<double>(baseline.makespan) /
                             static_cast<double>(r.makespan);
      const double ideal = speedup / static_cast<double>(kHostSweep[i]);
      const bool aggregates_match = r.total == baseline.total;
      if (pass == 0) {
        std::printf("%-8zu %-14s %-10.2f %-8.3f %-12s\n", kHostSweep[i],
                    format_duration(r.makespan).c_str(), speedup, ideal,
                    aggregates_match && r.workers_agree ? "identical" : "DIVERGED");
      }
      ok = ok && aggregates_match && r.workers_agree;
      if (kHostSweep[i] > 1 && ideal < 0.9) {
        std::printf("!! %zu hosts: %.3fx of ideal speedup (gate: 0.9)\n",
                    kHostSweep[i], ideal);
        ok = false;
      }
      record_artifact(*registry, kHostSweep[i], r, baseline);
    }
    registry->add("hc.bench.scaleout.records", kPatients);
    registry->add("hc.bench.scaleout.fingerprint_low48",
                  baseline.total.fingerprint & 0xffffffffffffULL);
    registry->set_gauge("hc.bench.scaleout.value_sum_micro",
                        static_cast<double>(baseline.total.value_micro));
    registry->set_gauge("hc.bench.scaleout.byte_total",
                        static_cast<double>(baseline.total.bytes), "B");

    const std::string json = obs::to_json(*registry);
    if (pass == 0) {
      rerun_json = json;
    } else if (json != rerun_json) {
      std::printf("!! rerun diverged: the artifact is not reproducible\n");
      ok = false;
    }
  }
  std::printf("\nrerun reproducible: %s\n", ok ? "yes" : "NO");

  if (ok && !metrics_path.empty() && registry) {
    Status written = obs::write_metrics_json(*registry, metrics_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("metrics artifact written to %s\n", metrics_path.c_str());
  }

  std::printf("\npaper-shape check: host count divides the ingest makespan at\n"
              ">= 0.9x ideal without changing any aggregate statistic.\n");
  return ok ? 0 : 1;
}
