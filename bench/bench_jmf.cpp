// Experiment F9-jmf (Fig 9, Section V.A).
//
// Reproduces the JMF drug-repositioning result on synthetic data with
// known ground truth:
//   - JMF (all 3 drug + 3 disease sources) vs single-source MF vs GBA on
//     held-out drug-disease associations (AUC / AUPR / precision@50),
//   - learned source-importance weights vs the sources' true noise levels
//     (the paper's interpretability claim),
//   - group discovery purity (the paper's by-product claim).
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "analytics/jmf.h"
#include "analytics/metrics.h"
#include "analytics/mf.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace hc;
using namespace hc::analytics;

namespace {

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

struct Scores {
  double auc = 0, aupr = 0, p50 = 0;
};

Scores evaluate(const Matrix& scores, const DrugDiseaseWorkload& workload, Rng& rng) {
  Scores out;
  out.auc = evaluate_held_out_auc(scores, workload, rng);

  std::vector<double> score_list;
  std::vector<bool> labels;
  for (const auto& [i, j] : workload.held_out) {
    score_list.push_back(scores(i, j));
    labels.push_back(true);
  }
  Rng neg_rng(999);
  std::size_t negatives = workload.held_out.size() * 4;
  while (negatives > 0) {
    auto i = static_cast<std::size_t>(
        neg_rng.uniform_int(0, static_cast<std::int64_t>(workload.truth.rows()) - 1));
    auto j = static_cast<std::size_t>(
        neg_rng.uniform_int(0, static_cast<std::int64_t>(workload.truth.cols()) - 1));
    if (workload.truth(i, j) == 0.0) {
      score_list.push_back(scores(i, j));
      labels.push_back(false);
      --negatives;
    }
  }
  out.aupr = auc_pr(score_list, labels);
  out.p50 = precision_at_k(score_list, labels, 50);
  return out;
}

/// Group purity: fraction of drugs whose assigned group's majority latent
/// block matches their own (greedy mapping).
double group_purity(const std::vector<std::size_t>& groups, std::size_t latent_rank) {
  std::map<std::size_t, std::map<std::size_t, std::size_t>> counts;
  for (std::size_t i = 0; i < groups.size(); ++i) {
    counts[groups[i]][i % latent_rank]++;
  }
  std::size_t correct = 0;
  for (const auto& [group, blocks] : counts) {
    std::size_t best = 0;
    for (const auto& [block, count] : blocks) best = std::max(best, count);
    correct += best;
  }
  return static_cast<double>(correct) / static_cast<double>(groups.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_jmf.json");
  obs::MetricsRegistry metrics;

  std::printf("== F9-jmf: joint matrix factorization drug repositioning (Fig 9) ==\n");

  WorkloadConfig workload_config;
  workload_config.drugs = 200;
  workload_config.diseases = 150;
  workload_config.latent_rank = 8;
  Rng rng(50);
  DrugDiseaseWorkload workload = make_drug_disease_workload(workload_config, rng);
  std::printf("workload: %zu drugs x %zu diseases, %zu held-out positives,\n"
              "drug-source noise {0.05, 0.15, 0.40}\n\n",
              workload_config.drugs, workload_config.diseases,
              workload.held_out.size());

  std::printf("%-34s %8s %8s %8s %10s %12s\n", "method", "AUC", "AUPR", "P@50",
              "fit-time", "peak-ws");

  auto timed = [&](auto&& fn) {
    auto t0 = std::chrono::steady_clock::now();
    Matrix scores = fn();
    auto t1 = std::chrono::steady_clock::now();
    return std::pair<Matrix, double>(
        std::move(scores), std::chrono::duration<double>(t1 - t0).count());
  };

  // --- JMF with all sources -------------------------------------------
  JmfConfig jmf_config;
  jmf_config.rank = 10;
  jmf_config.epochs = 120;
  JmfResult jmf_result;
  auto [jmf_scores, jmf_time] = timed([&] {
    obs::WallSpan span(&metrics, "hc.analytics.jmf.fit.fast_wall_us");
    jmf_result = joint_matrix_factorization(workload.observed,
                                            workload.drug_similarities,
                                            workload.disease_similarities,
                                            jmf_config, rng);
    return jmf_result.scores;
  });
  Scores jmf_eval = evaluate(jmf_scores, workload, rng);
  std::printf("%-34s %8.3f %8.3f %8.3f %9.2fs %10.1fKB\n",
              "JMF (3 drug + 3 disease sources)", jmf_eval.auc, jmf_eval.aupr,
              jmf_eval.p50, jmf_time,
              static_cast<double>(jmf_result.peak_workspace_bytes) / 1024.0);
  metrics.set_gauge("hc.analytics.jmf.fit.fast_peak_ws_bytes",
                    static_cast<double>(jmf_result.peak_workspace_bytes));

  // --- before/after: seed kernels vs compute plane ----------------------
  {
    Rng before_rng(50);
    DrugDiseaseWorkload before_workload =
        make_drug_disease_workload(workload_config, before_rng);
    JmfConfig seed_config = jmf_config;
    seed_config.use_fast_kernels = false;
    JmfResult seed_result;
    auto [seed_scores, seed_time] = timed([&] {
      obs::WallSpan span(&metrics, "hc.analytics.jmf.fit.naive_wall_us");
      seed_result = joint_matrix_factorization(before_workload.observed,
                                               before_workload.drug_similarities,
                                               before_workload.disease_similarities,
                                               seed_config, before_rng);
      return seed_result.scores;
    });
    Scores eval = evaluate(seed_scores, before_workload, before_rng);
    std::printf("%-34s %8.3f %8.3f %8.3f %9.2fs %10.1fKB  (%.2fx vs compute plane)\n",
                "JMF seed kernels (before)", eval.auc, eval.aupr, eval.p50,
                seed_time,
                static_cast<double>(seed_result.peak_workspace_bytes) / 1024.0,
                seed_time / jmf_time);
    metrics.set_gauge("hc.analytics.jmf.fit.naive_peak_ws_bytes",
                      static_cast<double>(seed_result.peak_workspace_bytes));
  }

  // --- single-source JMF (ablation) ------------------------------------
  for (std::size_t s = 0; s < workload.drug_similarities.size(); ++s) {
    auto [scores, t] = timed([&] {
      return joint_matrix_factorization(workload.observed,
                                        {workload.drug_similarities[s]},
                                        {workload.disease_similarities[s]},
                                        jmf_config, rng)
          .scores;
    });
    Scores eval = evaluate(scores, workload, rng);
    char label[64];
    std::snprintf(label, sizeof(label), "JMF single source (noise %.2f)",
                  workload.drug_source_noise[s]);
    std::printf("%-34s %8.3f %8.3f %8.3f %9.2fs\n", label, eval.auc, eval.aupr,
                eval.p50, t);
  }

  // --- plain MF (no similarity sources) ---------------------------------
  {
    MfConfig mf_config;
    mf_config.rank = 10;
    mf_config.epochs = 200;
    Matrix mask(workload.observed.rows(), workload.observed.cols(), 1.0);
    auto [scores, t] = timed(
        [&] { return factorize(workload.observed, mask, mf_config, rng).scores(); });
    Scores eval = evaluate(scores, workload, rng);
    std::printf("%-34s %8.3f %8.3f %8.3f %9.2fs\n", "MF (associations only)",
                eval.auc, eval.aupr, eval.p50, t);
  }

  // --- GBA baselines -----------------------------------------------------
  for (std::size_t s : {std::size_t(0), workload.drug_similarities.size() - 1}) {
    auto [scores, t] = timed([&] {
      return guilt_by_association(workload.observed, workload.drug_similarities[s]);
    });
    Scores eval = evaluate(scores, workload, rng);
    char label[64];
    std::snprintf(label, sizeof(label), "GBA (drug source noise %.2f)",
                  workload.drug_source_noise[s]);
    std::printf("%-34s %8.3f %8.3f %8.3f %9.2fs\n", label, eval.auc, eval.aupr,
                eval.p50, t);
  }

  // --- interpretable source weights ---------------------------------------
  std::printf("\nlearned drug-source importance (noise -> weight):\n");
  for (std::size_t s = 0; s < jmf_result.drug_source_weights.size(); ++s) {
    std::printf("  source %zu  noise=%.2f  weight=%.3f\n", s,
                workload.drug_source_noise[s], jmf_result.drug_source_weights[s]);
  }

  std::printf("\ndrug group purity (by-product clustering): %.3f\n",
              group_purity(jmf_result.drug_groups, workload_config.latent_rank));

  std::printf("\npeak-ws counts the tracked resident workspace + factors; the seed\n"
              "path's small number means it churns untracked per-epoch temporaries\n"
              "instead of reusing a workspace (see DESIGN.md on rule 3).\n");

  std::printf("\npaper-shape check: JMF variants dominate GBA; integrating all\n"
              "sources matches the best single source without knowing in advance\n"
              "which source is clean (the weights discover it); group purity is\n"
              "high (the paper's by-product clustering claim).\n");

  if (!metrics_path.empty()) {
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_path.c_str(),
                   written.to_string().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
