// Experiment F9-overload (ISSUE: multi-tenant QoS & scheduling).
//
// Claim probed: with hc::sched in front of a shared server, one greedy
// tenant cannot starve the others — each normal tenant keeps its
// fair-share goodput with a bounded tail, while the overload turns into
// early retryable sheds of the greedy tenant's excess. Without it (FIFO,
// admit-everything), the same arrivals collapse every tenant's goodput
// together.
//
// Setup: a single simulated server with 1e6 us-of-work/sec capacity
// (~1000 req/s at the 600-1400us request costs used here), three normal
// tenants each offering 150 req/s, and one greedy tenant offering the
// remainder of an open-loop sweep at 0.5x / 1x / 2x / 4x total capacity.
// Every request carries an arrival + 50ms deadline. Two schedulers over
// identical arrivals:
//
//   fifo  — unbounded FIFO queue, no admission: everything queues and is
//           served in order, deadline or not.
//   sched — per-tenant token buckets (each tenant entitled to a 1/4
//           capacity quota) + shared burst pool, deadline-aware admission
//           with an AIMD headroom controller fed by observed latency, and
//           deficit-round-robin service order.
//
// Goodput = requests completed before their deadline. All arrivals,
// costs, and schedules derive from fixed seeds on the sim clock, so the
// emitted BENCH_overload.json is byte-reproducible.
#include <algorithm>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "sched/sched.h"

using namespace hc;

namespace {

constexpr SimTime kHorizon = 5 * kSecond;
constexpr SimTime kDeadlineBudget = 50 * kMillisecond;
constexpr double kCapacityPerSec = 1'000'000.0;  // us-of-work per second
constexpr int kNormalRate = 150;                 // req/s per normal tenant
constexpr int kTenants = 4;                      // [0] = greedy, [1..3] normal

const char* kTenantNames[kTenants] = {"greedy", "normal-1", "normal-2",
                                      "normal-3"};

struct Request {
  SimTime arrival = 0;
  SimTime cost = 0;  // us of server work
  SimTime deadline = 0;
  int tenant = 0;
};

struct TenantTally {
  std::uint64_t offered = 0;
  std::uint64_t served = 0;   // completed before the deadline
  std::uint64_t late = 0;     // completed after the deadline (wasted work)
  std::uint64_t shed = 0;     // rate-limited, admission-shed, or shed at dispatch
  std::vector<double> latency_us;  // completion - arrival, served only

  double goodput(double horizon_sec) const {
    return static_cast<double>(served) / horizon_sec;
  }
  double percentile(double p) const {
    if (latency_us.empty()) return 0.0;
    std::vector<double> sorted = latency_us;
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
  }
};

struct RunResult {
  TenantTally tenants[kTenants];
  double final_headroom = 1.0;
};

/// The open-loop arrival schedule for one sweep cell: evenly spaced per
/// tenant (tenant-specific phase breaks ties), costs from per-tenant
/// seeded Rngs — identical for both schedulers in the cell.
std::vector<Request> make_arrivals(double load_multiplier) {
  int total_rate = static_cast<int>(load_multiplier * 1000.0);
  int greedy_rate = std::max(0, total_rate - 3 * kNormalRate);

  std::vector<Request> arrivals;
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    int rate = tenant == 0 ? greedy_rate : kNormalRate;
    if (rate == 0) continue;
    Rng cost_rng(700 + tenant);
    SimTime spacing = kSecond / rate;
    for (SimTime t = tenant * 17; t < kHorizon; t += spacing) {
      Request request;
      request.arrival = t;
      request.cost = cost_rng.uniform_int(600, 1400);
      request.deadline = t + kDeadlineBudget;
      request.tenant = tenant;
      arrivals.push_back(request);
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Request& a, const Request& b) {
                     return a.arrival < b.arrival;
                   });
  return arrivals;
}

void record_completion(TenantTally& tally, const Request& request,
                       SimTime completion) {
  if (completion <= request.deadline) {
    ++tally.served;
    tally.latency_us.push_back(static_cast<double>(completion - request.arrival));
  } else {
    ++tally.late;
  }
}

RunResult run_fifo(const std::vector<Request>& arrivals) {
  RunResult result;
  std::deque<Request> queue;
  SimTime server_free = 0;

  auto serve_until = [&](SimTime limit) {
    while (!queue.empty() && server_free < limit) {
      Request request = queue.front();
      queue.pop_front();
      SimTime start = std::max(server_free, request.arrival);
      server_free = start + request.cost;
      record_completion(result.tenants[request.tenant], request, server_free);
    }
  };

  for (const Request& request : arrivals) {
    serve_until(request.arrival);
    ++result.tenants[request.tenant].offered;
    queue.push_back(request);
  }
  serve_until(kHorizon + kMinute);  // drain the backlog
  return result;
}

RunResult run_sched(const std::vector<Request>& arrivals) {
  RunResult result;
  ClockPtr clock = make_clock();
  obs::MetricsPtr signals = obs::make_metrics();

  // Every tenant — greedy included — is entitled to a 1/4-capacity quota;
  // short spikes beyond it ride the shared pool.
  sched::BurstPool burst({/*rate_per_sec=*/50.0, /*capacity=*/100.0}, clock);
  std::vector<sched::TokenBucket> buckets;
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    buckets.emplace_back(
        sched::TokenBucketConfig{/*rate_per_sec=*/250.0, /*capacity=*/50.0},
        clock, &burst);
  }

  sched::AdmissionConfig admission_config;
  admission_config.capacity_per_sec = kCapacityPerSec;
  admission_config.latency_metric = "bench.overload.observed_us";
  admission_config.target_p95_us = static_cast<double>(kDeadlineBudget);
  sched::AdmissionController admission(admission_config, clock, signals);

  sched::WeightedFairQueue<Request> queue(/*quantum=*/2000);  // ~2 requests/visit
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    queue.set_weight(kTenantNames[tenant], 1);
  }

  SimTime server_free = 0;
  std::uint64_t since_adapt = 0;

  auto serve_until = [&](SimTime limit) {
    while (server_free < limit) {
      auto popped = queue.pop();
      if (!popped) break;
      Request request = *popped;
      SimTime start = std::max(server_free, request.arrival);
      if (start > request.deadline) {
        // Expired while queued: shed at dispatch, costing no server time.
        ++result.tenants[request.tenant].shed;
        continue;
      }
      server_free = start + request.cost;
      record_completion(result.tenants[request.tenant], request, server_free);
      signals->observe("bench.overload.observed_us",
                       static_cast<double>(server_free - request.arrival));
      if (++since_adapt >= 200) {  // periodic AIMD step on observed latency
        admission.adapt();
        since_adapt = 0;
      }
    }
  };

  for (const Request& request : arrivals) {
    serve_until(request.arrival);
    clock->advance_to(request.arrival);
    TenantTally& tally = result.tenants[request.tenant];
    ++tally.offered;

    if (buckets[static_cast<std::size_t>(request.tenant)].acquire() ==
        sched::Grant::kDenied) {
      ++tally.shed;  // over quota and the shared pool is dry
      continue;
    }
    double backlog = static_cast<double>(queue.backlog_cost()) +
                     static_cast<double>(std::max<SimTime>(0, server_free -
                                                                  clock->now()));
    if (!admission
             .admit(kTenantNames[request.tenant],
                    static_cast<double>(request.cost), request.deadline, backlog)
             .is_ok()) {
      ++tally.shed;  // cannot meet its deadline at the current backlog
      continue;
    }
    queue.push(kTenantNames[request.tenant], request,
               static_cast<std::uint64_t>(request.cost));
  }
  serve_until(kHorizon + kMinute);
  result.final_headroom = admission.headroom();
  return result;
}

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

void report(double multiplier, const char* mode, const RunResult& result,
            obs::MetricsRegistry* metrics) {
  char cell[32];
  std::snprintf(cell, sizeof(cell), "x%.1f", multiplier);
  for (int tenant = 0; tenant < kTenants; ++tenant) {
    const TenantTally& tally = result.tenants[tenant];
    if (tally.offered == 0) continue;
    double p95_ms = tally.percentile(0.95) / 1000.0;
    double p99_ms = tally.percentile(0.99) / 1000.0;
    double served_frac =
        static_cast<double>(tally.served) / static_cast<double>(tally.offered);
    std::printf("%-6s %-6s %-9s %8llu %8llu %7llu %6llu %8.1f%% %8.2f %8.2f\n",
                cell, mode, kTenantNames[tenant],
                static_cast<unsigned long long>(tally.offered),
                static_cast<unsigned long long>(tally.served),
                static_cast<unsigned long long>(tally.shed),
                static_cast<unsigned long long>(tally.late),
                100.0 * served_frac, p95_ms, p99_ms);

    std::string prefix = std::string("bench.overload.") + cell + "." + mode +
                         "." + kTenantNames[tenant] + ".";
    metrics->add(prefix + "offered", tally.offered);
    metrics->add(prefix + "served", tally.served);
    metrics->add(prefix + "shed", tally.shed);
    metrics->add(prefix + "late", tally.late);
    metrics->set_gauge(prefix + "goodput_rps", tally.goodput(5.0), "1/s");
    metrics->set_gauge(prefix + "p95_ms", p95_ms, "ms");
    metrics->set_gauge(prefix + "p99_ms", p99_ms, "ms");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_overload.json");
  obs::MetricsRegistry metrics;

  std::printf("== F9-overload: fair goodput under a greedy tenant ==\n");
  std::printf("server 1000 req/s; 3 normal tenants at 150 req/s each, greedy\n"
              "takes the sweep remainder; deadline 50ms; fifo vs hc::sched\n\n");
  std::printf("%-6s %-6s %-9s %8s %8s %7s %6s %9s %8s %8s\n", "load", "mode",
              "tenant", "offered", "served", "shed", "late", "goodput",
              "p95-ms", "p99-ms");

  bool fair = true;
  for (double multiplier : {0.5, 1.0, 2.0, 4.0}) {
    std::vector<Request> arrivals = make_arrivals(multiplier);
    RunResult fifo = run_fifo(arrivals);
    RunResult qos = run_sched(arrivals);
    report(multiplier, "fifo", fifo, &metrics);
    report(multiplier, "sched", qos, &metrics);
    std::printf("\n");

    char cell[32];
    std::snprintf(cell, sizeof(cell), "x%.1f", multiplier);
    metrics.set_gauge(std::string("bench.overload.") + cell + ".sched.headroom",
                      qos.final_headroom);

    // The acceptance gate: under overload every normal tenant keeps at
    // least 90% of its offered load as goodput with hc::sched.
    if (multiplier >= 2.0) {
      for (int tenant = 1; tenant < kTenants; ++tenant) {
        const TenantTally& tally = qos.tenants[tenant];
        double kept = static_cast<double>(tally.served) /
                      static_cast<double>(tally.offered);
        if (kept < 0.90) {
          std::printf("FAIL: %s kept only %.1f%% goodput at %.1fx with sched\n",
                      kTenantNames[tenant], 100.0 * kept, multiplier);
          fair = false;
        }
      }
    }
  }

  if (!metrics_path.empty()) {
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::printf("metrics write failed: %s\n", written.message().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  std::printf("fairness gate: %s\n", fair ? "PASS" : "FAIL");
  return fair ? 0 : 1;
}
