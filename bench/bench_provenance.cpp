// Experiment F11-provenance (ROADMAP item 4, DESIGN.md "Hybrid-storage
// provenance").
//
// The claim: anchoring Merkle roots over AdaptiveBatcher-planned event
// batches keeps the provenance ledger at ingest line rate as load grows,
// where the seed's one-consensus-round-per-event design collapses. Per
// load multiplier L in {1, 2, 4}:
//
//   1. a fresh platform instance (hybrid_provenance on) ingests
//      kBaseBundles * L uploads and drains them; the ingest makespan is
//      the worker-invariant total stage time divided by the notional
//      line-worker count kLineWorkers * L (line rate scales with load —
//      the chain must keep up with an ever-faster pipeline);
//   2. every membership proof the run can emit (one per anchored event)
//      is served by the auditor and verified — path and on-chain root —
//      and the tamper sweep over lake + metadata must come back clean;
//   3. the captured canonical event stream is replayed through two fresh
//      ledgers under the deterministic ConsensusCostModel: the hybrid
//      anchorer (batched endorsement, pipelined commits) and the retained
//      full-record baseline (every event through consensus, seed shape).
//
// keep-up = min(1, anchor throughput / ingest throughput). The gate is
// hybrid keep-up >= 0.9 at 2x load. The --workers flag only picks how
// many workers drain the capture instance; every measured quantity is
// canonical (content-hash-sorted batches, stage-time totals), so
// BENCH_provenance.json is byte-identical across reruns and across
// --workers 1/2/4/8.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blockchain/ledger.h"
#include "fhir/synthetic.h"
#include "obs/export.h"
#include "platform/enhanced_client.h"
#include "platform/instance.h"
#include "provenance/provenance.h"

using namespace hc;

namespace {

constexpr std::size_t kBaseBundles = 500;
constexpr std::size_t kLineWorkers = 2;
const std::vector<std::size_t> kLoads = {1, 2, 4};
const char* const kStages[] = {"decrypt",    "validate", "scan",
                               "consent",    "deidentify", "store"};

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

std::size_t workers_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--workers") {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 4;
}

struct LoadResult {
  std::size_t load = 1;
  std::uint64_t events = 0;
  std::uint64_t batches = 0;
  SimTime ingest_us = 0;         // notional line makespan at this load
  SimTime hybrid_us = 0;         // pipelined consensus makespan
  SimTime hybrid_serial_us = 0;  // same rounds, no pipelining
  SimTime full_us = 0;           // per-event full-record baseline
  std::uint64_t bytes_onchain_hybrid = 0;
  std::uint64_t bytes_onchain_full = 0;
  std::uint64_t bytes_offchain = 0;
  std::uint64_t proofs_verified = 0;
  bool ok = true;
};

double events_per_s(std::uint64_t events, SimTime us) {
  if (us == 0) return 0.0;
  return static_cast<double>(events) * 1e6 / static_cast<double>(us);
}

double keepup(double anchor_tp, double ingest_tp) {
  if (ingest_tp <= 0.0) return 0.0;
  double ratio = anchor_tp / ingest_tp;
  return ratio > 1.0 ? 1.0 : ratio;
}

/// Ingests kBaseBundles * load uploads on a fresh hybrid-provenance
/// instance, verifies every emitted proof, and returns the canonical
/// event stream plus the worker-invariant measurements.
std::vector<provenance::ProvenanceEvent> capture(std::size_t load,
                                                 std::size_t workers,
                                                 LoadResult& out) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(30));
  platform::InstanceConfig config;
  config.name = "cloud";
  config.hybrid_provenance = true;
  platform::HealthCloudInstance cloud(config, clock, network);
  network.set_link("client", "cloud", net::LinkProfile::wan());

  platform::EnhancedClientConfig client_config;
  client_config.name = "client";
  platform::EnhancedClient client(client_config, cloud, "clinic-bench");

  const std::size_t uploads = kBaseBundles * load;
  Rng rng(31);
  for (std::size_t i = 0; i < uploads; ++i) {
    fhir::Bundle bundle =
        fhir::make_synthetic_bundle(rng, "b" + std::to_string(i), i);
    const auto& patient = std::get<fhir::Patient>(bundle.resources[0]);
    (void)cloud.ledger().submit_and_commit(
        "consent",
        {{"action", "grant"}, {"patient", patient.id}, {"group", "study"}},
        "provider");
    auto receipt = client.upload_bundle(bundle, "study");
    if (!receipt.is_ok()) {
      std::printf("!! upload failed: %s\n", receipt.status().to_string().c_str());
      out.ok = false;
    }
  }

  std::size_t stored = cloud.ingestion().process_all(workers);
  if (stored != uploads) {
    std::printf("!! stored %zu of %zu uploads\n", stored, uploads);
    out.ok = false;
  }

  // The ingest makespan is stated in canonical quantities only: total
  // stage time is the same work no matter how many workers drained it.
  double total_stage_us = 0.0;
  for (const char* stage : kStages) {
    const obs::Histogram* h = cloud.metrics()->histogram(
        std::string("hc.ingestion.stage.") + stage + "_us");
    if (h) total_stage_us += h->sum;
  }
  out.ingest_us = static_cast<SimTime>(
      total_stage_us / static_cast<double>(kLineWorkers * load));

  provenance::BatchAnchorer* anchorer = cloud.anchorer();
  provenance::ProvenanceAuditor* auditor = cloud.auditor();
  std::vector<provenance::ProvenanceEvent> events;
  if (!anchorer || !auditor) {
    std::printf("!! hybrid instance exposed no anchorer/auditor\n");
    out.ok = false;
    return events;
  }
  if (anchorer->sealed_batches() != anchorer->anchored_batches()) {
    std::printf("!! %llu sealed batches left unanchored\n",
                static_cast<unsigned long long>(anchorer->sealed_batches() -
                                                anchorer->anchored_batches()));
    out.ok = false;
  }

  // Every proof the bench emits is verified end to end: Merkle path and
  // committed on-chain root. One proof per anchored event.
  for (const provenance::BatchAnchorer::SealedBatch& batch :
       anchorer->batches()) {
    for (const provenance::ProvenanceEvent& event : batch.events) {
      events.push_back(event);
      Result<provenance::MembershipProof> proof =
          auditor->prove(event.record_ref, event.event);
      if (!proof.is_ok() || !provenance::ProvenanceAuditor::verify(*proof) ||
          !auditor->verify_onchain(*proof).is_ok()) {
        std::printf("!! proof failed for %s/%s\n", event.record_ref.c_str(),
                    event.event.c_str());
        out.ok = false;
        continue;
      }
      ++out.proofs_verified;
    }
  }
  std::vector<std::string> flagged =
      auditor->audit(cloud.metadata(), cloud.lake());
  if (!flagged.empty()) {
    std::printf("!! audit sweep flagged %zu untampered records\n",
                flagged.size());
    out.ok = false;
  }
  if (!cloud.ledger().validate_chain().is_ok()) {
    std::printf("!! chain validation failed after anchoring\n");
    out.ok = false;
  }
  out.events = events.size();
  return events;
}

/// A fresh ledger + clock pair replaying the captured canonical event
/// stream under the deterministic cost model.
struct Replay {
  ClockPtr clock;
  std::unique_ptr<blockchain::PermissionedLedger> ledger;
  std::unique_ptr<provenance::BatchAnchorer> anchorer;
};

Replay anchor_replay(const std::vector<provenance::ProvenanceEvent>& events,
                     provenance::AnchorerConfig::Mode mode, LoadResult& out) {
  Replay replay;
  replay.clock = make_clock();
  replay.ledger = std::make_unique<blockchain::PermissionedLedger>(
      blockchain::LedgerConfig{{"p0", "p1", "p2"}}, replay.clock);
  if (!provenance::BatchAnchorer::register_contract(*replay.ledger).is_ok()) {
    out.ok = false;
  }
  provenance::AnchorerConfig config;
  config.mode = mode;
  config.costs = provenance::ConsensusCostModel{};
  replay.anchorer = std::make_unique<provenance::BatchAnchorer>(
      *replay.ledger, replay.clock, config);
  for (const provenance::ProvenanceEvent& event : events) {
    replay.anchorer->append(event);
  }
  if (!replay.anchorer->flush().is_ok()) {
    std::printf("!! replay flush failed\n");
    out.ok = false;
  }
  if (replay.clock->now() != replay.anchorer->anchor_us_total()) {
    std::printf("!! clock advanced %llu but model charged %llu\n",
                static_cast<unsigned long long>(replay.clock->now()),
                static_cast<unsigned long long>(
                    replay.anchorer->anchor_us_total()));
    out.ok = false;
  }
  return replay;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path =
      metrics_out_path(argc, argv, "BENCH_provenance.json");
  const std::size_t workers = workers_arg(argc, argv);

  std::printf("== F11-provenance: Merkle-anchored ledger vs ingest line rate ==\n");
  std::printf("workload: %zu uploads per load unit, line workers %zu x load, "
              "capture drain workers %zu\n\n",
              kBaseBundles, kLineWorkers, workers);

  std::vector<LoadResult> results;
  bool ok = true;
  auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t load : kLoads) {
    LoadResult r;
    r.load = load;
    std::vector<provenance::ProvenanceEvent> events =
        capture(load, workers, r);

    Replay hybrid = anchor_replay(
        events, provenance::AnchorerConfig::Mode::kHybrid, r);
    r.hybrid_us = hybrid.anchorer->anchor_us_total();
    r.hybrid_serial_us = hybrid.anchorer->anchor_serial_us_total();
    r.batches = hybrid.anchorer->sealed_batches();
    r.bytes_onchain_hybrid = hybrid.anchorer->bytes_onchain();
    r.bytes_offchain = hybrid.anchorer->bytes_offchain();

    Replay full = anchor_replay(
        events, provenance::AnchorerConfig::Mode::kFullRecord, r);
    r.full_us = full.anchorer->anchor_us_total();
    r.bytes_onchain_full = full.anchorer->bytes_onchain();

    if (r.proofs_verified != r.events) {
      std::printf("!! only %llu of %llu proofs verified at x%zu\n",
                  static_cast<unsigned long long>(r.proofs_verified),
                  static_cast<unsigned long long>(r.events), load);
      r.ok = false;
    }
    ok = ok && r.ok;
    results.push_back(r);
  }
  double wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall0)
                      .count();

  std::printf("%-5s %-7s %-8s %-11s %-11s %-11s %-9s %-9s %-8s %-8s\n", "load",
              "events", "batches", "ingest", "hybrid", "full-rec", "hyb-tp/s",
              "ing-tp/s", "keep-hyb", "keep-ful");
  double keepup_hybrid_at_2x = 0.0;
  for (const LoadResult& r : results) {
    double ingest_tp = events_per_s(r.events, r.ingest_us);
    double hybrid_tp = events_per_s(r.events, r.hybrid_us);
    double full_tp = events_per_s(r.events, r.full_us);
    double keep_h = keepup(hybrid_tp, ingest_tp);
    double keep_f = keepup(full_tp, ingest_tp);
    if (r.load == 2) keepup_hybrid_at_2x = keep_h;
    std::printf("x%-4zu %-7llu %-8llu %-11s %-11s %-11s %-9.0f %-9.0f %-8.3f "
                "%-8.3f\n",
                r.load, static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.batches),
                format_duration(r.ingest_us).c_str(),
                format_duration(r.hybrid_us).c_str(),
                format_duration(r.full_us).c_str(), hybrid_tp, ingest_tp,
                keep_h, keep_f);
  }
  std::printf("\npipelining: ");
  for (const LoadResult& r : results) {
    std::printf("x%zu %.2fx  ", r.load,
                r.hybrid_us > 0 ? static_cast<double>(r.hybrid_serial_us) /
                                      static_cast<double>(r.hybrid_us)
                                : 0.0);
  }
  std::printf("(serial consensus / pipelined)\n");
  std::printf("on-chain bytes at x4: hybrid %llu vs full-record %llu "
              "(off-chain payload %llu)\n",
              static_cast<unsigned long long>(results.back().bytes_onchain_hybrid),
              static_cast<unsigned long long>(results.back().bytes_onchain_full),
              static_cast<unsigned long long>(results.back().bytes_offchain));

  if (keepup_hybrid_at_2x < 0.9) {
    std::printf("!! hybrid keep-up %.3f at 2x load, need >= 0.9\n",
                keepup_hybrid_at_2x);
    ok = false;
  }

  if (!metrics_path.empty()) {
    // Curated fresh registry: only canonical sim quantities, so the
    // artifact is byte-identical across reruns and --workers values.
    obs::MetricsPtr registry = obs::make_metrics();
    for (const LoadResult& r : results) {
      std::string prefix = "hc.bench.prov.x" + std::to_string(r.load);
      double ingest_tp = events_per_s(r.events, r.ingest_us);
      double hybrid_tp = events_per_s(r.events, r.hybrid_us);
      double full_tp = events_per_s(r.events, r.full_us);
      registry->set_gauge(prefix + ".events", static_cast<double>(r.events));
      registry->set_gauge(prefix + ".batches", static_cast<double>(r.batches));
      registry->set_gauge(prefix + ".ingest_us",
                          static_cast<double>(r.ingest_us), "us");
      registry->set_gauge(prefix + ".anchor_hybrid_us",
                          static_cast<double>(r.hybrid_us), "us");
      registry->set_gauge(prefix + ".anchor_hybrid_serial_us",
                          static_cast<double>(r.hybrid_serial_us), "us");
      registry->set_gauge(prefix + ".anchor_full_record_us",
                          static_cast<double>(r.full_us), "us");
      registry->set_gauge(prefix + ".ingest_tp_per_s", ingest_tp);
      registry->set_gauge(prefix + ".hybrid_tp_per_s", hybrid_tp);
      registry->set_gauge(prefix + ".full_record_tp_per_s", full_tp);
      registry->set_gauge(prefix + ".keepup_hybrid", keepup(hybrid_tp, ingest_tp));
      registry->set_gauge(prefix + ".keepup_full_record",
                          keepup(full_tp, ingest_tp));
      registry->set_gauge(prefix + ".bytes_onchain",
                          static_cast<double>(r.bytes_onchain_hybrid), "B");
      registry->set_gauge(prefix + ".bytes_onchain_full_record",
                          static_cast<double>(r.bytes_onchain_full), "B");
      registry->set_gauge(prefix + ".bytes_offchain",
                          static_cast<double>(r.bytes_offchain), "B");
      registry->set_gauge(prefix + ".proofs_verified",
                          static_cast<double>(r.proofs_verified));
    }
    registry->set_gauge("hc.bench.prov.base_uploads",
                        static_cast<double>(kBaseBundles));
    registry->set_gauge("hc.bench.prov.line_workers",
                        static_cast<double>(kLineWorkers));
    Status written = obs::write_metrics_json(*registry, metrics_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("metrics artifact written to %s\n", metrics_path.c_str());
  }

  std::printf("\npaper-shape check: anchored throughput tracks line rate at "
              "every load;\nfull-record consensus is the one that collapses. "
              "(wall %.2fs)\n", wall_s);
  return ok ? 0 : 1;
}
