// Experiment F4-cache (Fig 4; Section I refs [1][2][3]).
//
// Claim reproduced: "The cost for accessing data from remote cloud servers
// can be orders of magnitude higher than the cost for accessing data
// locally. Caching can thus dramatically improve performance. Our system
// employs caching at multiple levels and not just at the client level."
//
// Workload: Zipf(1.0)-popular keys over a client -> server -> origin
// hierarchy on the simulated network. Sweeps client-cache size and
// eviction policy; reports hit ratios per tier and mean access latency vs
// the no-cache baseline.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/multilevel.h"
#include "common/rng.h"
#include "net/network.h"
#include "obs/export.h"

using namespace hc;

namespace {

struct RunResult {
  double client_hit = 0, server_hit = 0;
  double mean_latency_us = 0;
};

constexpr std::size_t kKeySpace = 10000;
constexpr int kAccesses = 60000;

RunResult run(std::size_t client_capacity, std::size_t server_capacity,
              cache::EvictionPolicy policy, obs::MetricsPtr metrics = nullptr) {
  auto clock = make_clock();
  Rng rng(7);
  net::SimNetwork network(clock, Rng(8));
  network.set_link("server", "origin-kb", net::LinkProfile::wan());

  cache::Cache client(client_capacity, policy, clock);
  cache::Cache server(server_capacity, policy, clock);

  cache::CacheHierarchy hierarchy(
      {{"client", &client, 10}, {"server", &server, 2 * kMillisecond}},
      [&](const std::string&) -> Result<Bytes> {
        auto cost = network.send("server", "origin-kb", 4096);
        if (!cost.is_ok()) return cost.status();
        return Bytes(128, 0x5a);
      },
      clock);
  if (metrics) hierarchy.bind_metrics(metrics);

  ZipfSampler zipf(kKeySpace, 1.0);
  std::uint64_t client_hits = 0, server_hits = 0;
  SimTime total_latency = 0;
  for (int i = 0; i < kAccesses; ++i) {
    std::string key = "k" + std::to_string(zipf.sample(rng));
    auto outcome = hierarchy.get(key);
    if (!outcome.is_ok()) continue;
    total_latency += outcome->latency;
    if (outcome->served_by == "client") ++client_hits;
    if (outcome->served_by == "server") ++server_hits;
  }

  RunResult result;
  result.client_hit = static_cast<double>(client_hits) / kAccesses;
  result.server_hit = static_cast<double>(server_hits) / kAccesses;
  result.mean_latency_us = static_cast<double>(total_latency) / kAccesses;
  return result;
}

const char* policy_name(cache::EvictionPolicy policy) {
  switch (policy) {
    case cache::EvictionPolicy::kLru: return "LRU";
    case cache::EvictionPolicy::kLfu: return "LFU";
    case cache::EvictionPolicy::kFifo: return "FIFO";
  }
  return "?";
}

/// `--metrics-out [path]` -> artifact path ("" = flag absent).
std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_caching.json");
  std::printf("== F4-cache: multi-level caching vs remote access (Fig 4) ==\n");
  std::printf("workload: %d Zipf(1.0) reads over %zu keys; origin behind WAN\n\n",
              kAccesses, kKeySpace);

  RunResult no_cache = run(0, 0, cache::EvictionPolicy::kLru);
  std::printf("%-28s %10s %10s %14s %8s\n", "configuration", "client-hit",
              "server-hit", "mean-latency", "speedup");
  std::printf("%-28s %9.1f%% %9.1f%% %12.0fus %7.1fx\n", "no caching (baseline)",
              100 * no_cache.client_hit, 100 * no_cache.server_hit,
              no_cache.mean_latency_us, 1.0);

  for (double client_pct : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    auto client_capacity = static_cast<std::size_t>(client_pct * kKeySpace);
    RunResult r = run(client_capacity, kKeySpace / 4, cache::EvictionPolicy::kLru);
    char label[64];
    std::snprintf(label, sizeof(label), "client %2.0f%% + server 25%% LRU",
                  client_pct * 100);
    std::printf("%-28s %9.1f%% %9.1f%% %12.0fus %7.1fx\n", label,
                100 * r.client_hit, 100 * r.server_hit, r.mean_latency_us,
                no_cache.mean_latency_us / r.mean_latency_us);
  }

  std::printf("\n-- eviction policy comparison (client 5%%, server 25%%) --\n");
  for (auto policy : {cache::EvictionPolicy::kLru, cache::EvictionPolicy::kLfu,
                      cache::EvictionPolicy::kFifo}) {
    RunResult r = run(kKeySpace / 20, kKeySpace / 4, policy);
    std::printf("%-28s %9.1f%% %9.1f%% %12.0fus %7.1fx\n", policy_name(policy),
                100 * r.client_hit, 100 * r.server_hit, r.mean_latency_us,
                no_cache.mean_latency_us / r.mean_latency_us);
  }

  // ---- consistency ablation (Section III: "If the data are changing
  // frequently, cache consistency algorithms need to be applied") --------
  std::printf("\n-- consistency under writes (10%% of ops are updates) --\n");
  std::printf("%-26s %12s %14s %12s\n", "strategy", "stale-reads", "mean-latency",
              "origin-hits");

  enum class Strategy { kCacheForever, kTtl, kInvalidate, kWriteThrough };
  auto run_consistency = [&](Strategy strategy) {
    auto clock = make_clock();
    Rng rng(17);
    net::SimNetwork network(clock, Rng(18));
    network.set_link("server", "origin-kb", net::LinkProfile::wan());

    cache::Cache client(512, cache::EvictionPolicy::kLru, clock);
    cache::Cache server(2048, cache::EvictionPolicy::kLru, clock);
    std::vector<std::uint64_t> origin_version(2000, 1);
    std::uint64_t origin_hits = 0;

    cache::CacheHierarchy hierarchy(
        {{"client", &client, 10}, {"server", &server, 2 * kMillisecond}},
        [&](const std::string& key) -> Result<Bytes> {
          ++origin_hits;
          (void)network.send("server", "origin-kb", 1024);
          std::size_t idx = static_cast<std::size_t>(std::atoll(key.c_str() + 1));
          return to_bytes("v" + std::to_string(origin_version[idx]));
        },
        clock);

    ZipfSampler zipf(2000, 1.0);
    std::uint64_t stale = 0, reads = 0;
    SimTime read_latency = 0;
    for (int op = 0; op < 20000; ++op) {
      std::size_t idx = zipf.sample(rng);
      std::string key = "k" + std::to_string(idx);
      if (rng.bernoulli(0.10)) {  // a writer updates the origin
        ++origin_version[idx];
        if (strategy == Strategy::kInvalidate) hierarchy.invalidate(key);
        if (strategy == Strategy::kWriteThrough) {
          hierarchy.put_through(key, to_bytes("v" + std::to_string(origin_version[idx])),
                                origin_version[idx]);
        }
        continue;
      }
      SimTime ttl = strategy == Strategy::kTtl ? 50 * kMillisecond : 0;
      auto outcome = hierarchy.get(key, ttl);
      if (!outcome.is_ok()) continue;
      ++reads;
      read_latency += outcome->latency;
      if (to_string(outcome->value) != "v" + std::to_string(origin_version[idx])) {
        ++stale;
      }
    }
    std::printf("%-26s %11.2f%% %12.0fus %12llu\n",
                strategy == Strategy::kCacheForever  ? "cache forever"
                : strategy == Strategy::kTtl         ? "TTL 50ms"
                : strategy == Strategy::kInvalidate  ? "invalidate on write"
                                                     : "version write-through",
                100.0 * static_cast<double>(stale) / static_cast<double>(reads),
                static_cast<double>(read_latency) / static_cast<double>(reads),
                static_cast<unsigned long long>(origin_hits));
  };
  run_consistency(Strategy::kCacheForever);
  run_consistency(Strategy::kTtl);
  run_consistency(Strategy::kInvalidate);
  run_consistency(Strategy::kWriteThrough);

  if (!metrics_path.empty()) {
    // Re-run the representative configuration (client 5% + server 25% LRU)
    // with the registry bound, then attach the headline comparison as
    // gauges so the artifact carries the cache-speedup claim on its own.
    auto metrics = obs::make_metrics();
    RunResult instrumented =
        run(kKeySpace / 20, kKeySpace / 4, cache::EvictionPolicy::kLru, metrics);
    metrics->set_gauge("hc.bench.caching.baseline_mean_us", no_cache.mean_latency_us,
                       "us");
    metrics->set_gauge("hc.bench.caching.cached_mean_us", instrumented.mean_latency_us,
                       "us");
    metrics->set_gauge("hc.bench.caching.speedup",
                       no_cache.mean_latency_us / instrumented.mean_latency_us);
    metrics->set_gauge("hc.bench.caching.client_hit_ratio", instrumented.client_hit);
    metrics->set_gauge("hc.bench.caching.server_hit_ratio", instrumented.server_hit);
    Status written = obs::write_metrics_json(*metrics, metrics_path);
    if (!written.is_ok()) {
      std::printf("!! %s\n", written.to_string().c_str());
      return 1;
    }
    std::printf("\nmetrics artifact written to %s\n", metrics_path.c_str());
  }

  std::printf("\npaper-shape check: a client-tier hit costs ~10us vs ~45ms at the\n"
              "origin (the paper's orders-of-magnitude local/remote gap); mean\n"
              "latency and speedup improve monotonically with cache size, and\n"
              "LFU > LRU > FIFO under Zipf popularity. Consistency: cache-forever\n"
              "is fastest but stale; TTL bounds staleness at extra origin load;\n"
              "invalidation/write-through eliminate staleness, write-through\n"
              "cheapest — matching Section III's guidance for mutable data.\n");
  return 0;
}
