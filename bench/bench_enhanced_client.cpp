// Experiment F4-client (Fig 4, Sections I and III.A).
//
// Claim reproduced: "Allowing processing to take place at the clients
// conceptually moves computing to the edges of networks. It offloads
// computing from servers ... It can also improve performance by allowing
// certain computations to take place at the client without the need to
// incur latency for communication with a remote cloud server."
//
// Sweeps dataset size for a similarity-scoring task executed (a) locally
// at the enhanced client and (b) remotely at the cloud (shipping the data
// over the WAN), plus the cached-fetch latency profile and offline mode.
#include <cstdio>

#include "platform/enhanced_client.h"
#include "platform/instance.h"

using namespace hc;
using namespace hc::platform;

namespace {

std::vector<analytics::Fingerprint> make_dataset(std::size_t n, Rng& rng) {
  std::vector<analytics::Fingerprint> dataset;
  dataset.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    analytics::Fingerprint fp(128);
    for (auto& bit : fp) bit = rng.bernoulli(0.25) ? 1 : 0;
    dataset.push_back(std::move(fp));
  }
  return dataset;
}

}  // namespace

int main() {
  std::printf("== F4-client: enhanced-client edge computation (Fig 4) ==\n\n");

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(80));
  InstanceConfig config;
  config.name = "cloud";
  HealthCloudInstance cloud(config, clock, network);
  network.set_link("phone", "cloud", net::LinkProfile::mobile());

  EnhancedClientConfig client_config;
  client_config.name = "phone";
  client_config.cache_capacity = 64;
  EnhancedClient client(client_config, cloud, "patient-app");

  Rng rng(81);

  std::printf("-- similarity analysis: local (on-device) vs remote (cloud) --\n");
  std::printf("%10s %16s %16s %10s\n", "items", "local", "remote", "ratio");
  for (std::size_t n : {100, 1000, 10000, 100000}) {
    auto dataset = make_dataset(n, rng);
    auto query = dataset.front();

    auto local = client.analyze(query, dataset, /*local=*/true);
    auto remote = client.analyze(query, dataset, /*local=*/false);
    if (!local.is_ok() || !remote.is_ok()) {
      std::printf("%10zu  analysis failed\n", n);
      continue;
    }
    std::printf("%10zu %16s %16s %9.1fx\n", n,
                format_duration(local->latency).c_str(),
                format_duration(remote->latency).c_str(),
                static_cast<double>(remote->latency) /
                    static_cast<double>(std::max<SimTime>(local->latency, 1)));
  }

  // --- cached vs remote record fetch -------------------------------------
  std::printf("\n-- record fetch: first (WAN) vs cached --\n");
  // Store a record directly in the lake for fetching.
  auto key = cloud.kms().create_symmetric_key("platform");
  auto ref = cloud.lake().put(Bytes(2048, 0x42), key);
  if (ref.is_ok()) {
    auto first = client.fetch_record(*ref);
    auto second = client.fetch_record(*ref);
    if (first.is_ok() && second.is_ok()) {
      std::printf("first fetch  (remote): %s\n", format_duration(first->latency).c_str());
      std::printf("second fetch (cached): %s  (%.0fx faster)\n",
                  format_duration(second->latency).c_str(),
                  static_cast<double>(first->latency) /
                      static_cast<double>(std::max<SimTime>(second->latency, 1)));
    }
  }

  // --- offline operation ----------------------------------------------------
  std::printf("\n-- offline mode --\n");
  client.set_connected(false);
  auto dataset = make_dataset(5000, rng);
  auto offline_local = client.analyze(dataset[0], dataset, /*local=*/true);
  auto offline_remote = client.analyze(dataset[0], dataset, /*local=*/false);
  std::printf("local analysis while offline:  %s\n",
              offline_local.is_ok() ? "OK" : "failed");
  std::printf("remote analysis while offline: %s (expected)\n",
              offline_remote.is_ok() ? "unexpectedly OK"
                                     : offline_remote.status().to_string().c_str());

  std::printf("\npaper-shape check: local execution is orders of magnitude faster\n"
              "than shipping data over the mobile WAN, and keeps working offline.\n");
  return 0;
}
