// Experiment F10-delt (Figs 10-11, Section V.B).
//
// Reproduces the DELT drug-effect signal detection result on synthetic EMR
// data with planted HbA1c-lowering drugs and a comorbidity confounder:
//   - DELT vs the marginal-correlation prior art (AUC, precision@N, RMSE
//     of effect sizes),
//   - ablations matching the paper's contributions: no patient baseline
//     (alpha_i), no time drift (t_ij) — Figs 10 and 11 respectively,
//   - scaling of recovery quality with cohort size.
#include <chrono>
#include <cstdio>
#include <string>

#include "analytics/delt.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace hc;
using namespace hc::analytics;

namespace {

void print_row(const char* label, const RecoveryMetrics& m, double seconds,
               std::size_t peak_ws_bytes = 0) {
  std::printf("%-36s %8.3f %8.3f %8.3f %9.2fs", label, m.auc, m.precision_at_n,
              m.effect_rmse, seconds);
  if (peak_ws_bytes > 0) {
    std::printf(" %10.1fKB", static_cast<double>(peak_ws_bytes) / 1024.0);
  }
  std::printf("\n");
}

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_delt.json");
  obs::MetricsRegistry metrics;

  std::printf("== F10-delt: drug effects on laboratory tests (Figs 10-11) ==\n");

  EmrConfig config;
  config.patients = 3000;
  config.drugs = 150;
  config.planted_drugs = 10;
  config.confounded_drugs = 8;
  Rng rng(60);
  EmrDataset dataset = make_emr_dataset(config, rng);
  std::printf("workload: %zu patients x %d HbA1c measurements, %zu drugs,\n"
              "%zu planted lowering drugs, %zu comorbidity-confounded drugs\n\n",
              config.patients, config.measurements_per_patient, config.drugs,
              config.planted_drugs, config.confounded_drugs);

  std::printf("%-36s %8s %8s %8s %10s %12s\n", "method", "AUC", "P@N", "RMSE",
              "fit-time", "peak-ws");

  auto timed_fit = [&](const DeltConfig& delt_config, const char* metric) {
    obs::WallSpan span(&metrics, metric);
    auto t0 = std::chrono::steady_clock::now();
    DeltModel model = fit_delt(dataset, delt_config);
    auto t1 = std::chrono::steady_clock::now();
    span.finish();
    return std::pair<DeltModel, double>(std::move(model),
                                        std::chrono::duration<double>(t1 - t0).count());
  };

  auto [full, full_time] = timed_fit(DeltConfig{}, "hc.analytics.delt.fit.w1_wall_us");
  print_row("DELT (baseline + drift)", score_recovery(full.drug_effects, dataset),
            full_time, full.peak_workspace_bytes);
  metrics.set_gauge("hc.analytics.delt.fit.w1_peak_ws_bytes",
                    static_cast<double>(full.peak_workspace_bytes));

  // --- before/after: parallel patient solves across worker counts --------
  // On a single-core host the multi-worker rows measure dispatch overhead;
  // the point of this table is that drug_effects stay bit-identical.
  for (std::size_t workers : {2u, 4u, 8u}) {
    DeltConfig parallel_config;
    parallel_config.workers = workers;
    std::string metric =
        "hc.analytics.delt.fit.w" + std::to_string(workers) + "_wall_us";
    auto [model, seconds] = timed_fit(parallel_config, metric.c_str());
    char label[64];
    std::snprintf(label, sizeof(label), "DELT %zu workers (biteq: %s)", workers,
                  model.drug_effects == full.drug_effects ? "yes" : "NO");
    print_row(label, score_recovery(model.drug_effects, dataset), seconds,
              model.peak_workspace_bytes);
  }

  DeltConfig no_drift;
  no_drift.model_drift = false;
  auto [nd, nd_time] = timed_fit(no_drift, "hc.analytics.delt.fit.no_drift_wall_us");
  print_row("DELT w/o time drift (Fig 11 abl.)",
            score_recovery(nd.drug_effects, dataset), nd_time,
            nd.peak_workspace_bytes);

  DeltConfig no_baseline;
  no_baseline.model_baseline = false;
  no_baseline.model_drift = false;
  auto [nb, nb_time] =
      timed_fit(no_baseline, "hc.analytics.delt.fit.no_baseline_wall_us");
  print_row("DELT w/o baselines (Fig 10 abl.)",
            score_recovery(nb.drug_effects, dataset), nb_time,
            nb.peak_workspace_bytes);

  auto t0 = std::chrono::steady_clock::now();
  auto marginal = marginal_correlation_effects(dataset);
  auto t1 = std::chrono::steady_clock::now();
  print_row("marginal correlation (prior art)", score_recovery(marginal, dataset),
            std::chrono::duration<double>(t1 - t0).count());

  // --- cohort-size scaling ------------------------------------------------
  std::printf("\n-- recovery vs cohort size (DELT full model) --\n");
  std::printf("%10s %8s %8s %8s\n", "patients", "AUC", "P@N", "RMSE");
  for (std::size_t patients : {250, 500, 1000, 2000, 4000}) {
    EmrConfig sweep = config;
    sweep.patients = patients;
    Rng sweep_rng(61);
    EmrDataset sweep_data = make_emr_dataset(sweep, sweep_rng);
    DeltModel model = fit_delt(sweep_data, DeltConfig{});
    auto metrics = score_recovery(model.drug_effects, sweep_data);
    std::printf("%10zu %8.3f %8.3f %8.3f\n", patients, metrics.auc,
                metrics.precision_at_n, metrics.effect_rmse);
  }

  std::printf("\npaper-shape check: DELT > ablations > marginal correlation on AUC;\n"
              "effect-size RMSE shrinks and AUC rises with cohort size.\n");

  if (!metrics_path.empty()) {
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_path.c_str(),
                   written.to_string().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
