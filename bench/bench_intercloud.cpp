// Experiment C-intercloud (Section II.C).
//
// Claim reproduced: "transfer of trusted analytic workloads (packaged in
// containers) across different cloud instances ... This allows the
// computation to be transferred to data instead of otherwise, thereby
// making it very efficient and secured."
//
// Sweeps container size for the attested transfer (network + verification
// + measured launch + remote attestation), compares with the alternative
// of moving the *data* to the computation, and verifies tampered images
// are always rejected.
#include <cstdio>

#include "platform/instance.h"
#include "platform/intercloud.h"

using namespace hc;
using namespace hc::platform;

int main() {
  std::printf("== C-intercloud: trusted container transfer (II.C) ==\n\n");

  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(95));
  InstanceConfig a;
  a.name = "data-cloud";
  a.seed = 1;
  InstanceConfig b;
  b.name = "analytics-cloud";
  b.seed = 2;
  HealthCloudInstance source(a, clock, network);
  HealthCloudInstance destination(b, clock, network);
  network.set_link("data-cloud", "analytics-cloud", net::LinkProfile::intercloud());
  destination.images().approve_key(source.platform_signing_keys().pub);

  Rng rng(96);
  IntercloudGateway gateway(source, destination);

  std::printf("-- attested transfer latency vs container size --\n");
  std::printf("%12s %14s %16s %14s\n", "size", "transfer", "attestation", "total");
  for (std::size_t size : {std::size_t(64) << 10, std::size_t(512) << 10,
                           std::size_t(4) << 20}) {
    std::string version = "v" + std::to_string(size);
    Bytes container = rng.bytes(size);
    auto manifest = tpm::sign_image("model", version, container, {},
                                    source.platform_signing_keys());
    if (!source.images().register_image(manifest, container).is_ok()) continue;

    auto receipt = gateway.transfer_and_launch("model", version);
    if (!receipt.is_ok()) {
      std::printf("%12zu transfer failed: %s\n", size,
                  receipt.status().to_string().c_str());
      continue;
    }
    std::printf("%11zuK %14s %16s %14s\n", size >> 10,
                format_duration(receipt->transfer_latency).c_str(),
                format_duration(receipt->attestation_latency).c_str(),
                format_duration(receipt->transfer_latency +
                                receipt->attestation_latency)
                    .c_str());
  }

  // --- compute-to-data vs data-to-compute -------------------------------
  std::printf("\n-- move the model (4MB) vs move the data --\n");
  for (std::size_t dataset_mb : {16, 64, 256}) {
    auto data_move = network.estimate("data-cloud", "analytics-cloud",
                                      dataset_mb << 20);
    auto model_move = network.estimate("data-cloud", "analytics-cloud", 4 << 20);
    if (data_move.is_ok() && model_move.is_ok()) {
      std::printf("dataset %4zuMB: ship data %10s  vs ship container %10s (%.0fx)\n",
                  dataset_mb, format_duration(*data_move).c_str(),
                  format_duration(*model_move).c_str(),
                  static_cast<double>(*data_move) / static_cast<double>(*model_move));
    }
  }

  // --- tamper rejection -----------------------------------------------------
  std::printf("\n-- tamper injection (20 transfers, all must be rejected) --\n");
  Bytes container = rng.bytes(256 << 10);
  auto manifest = tpm::sign_image("model", "tamper-test", container, {},
                                  source.platform_signing_keys());
  (void)source.images().register_image(manifest, container);
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    gateway.tamper_next_transfer();
    if (!gateway.transfer_and_launch("model", "tamper-test").is_ok()) ++rejected;
  }
  std::printf("tampered transfers rejected: %d/20\n", rejected);

  std::printf("\npaper-shape check: shipping the container beats shipping the data\n"
              "by the dataset/model size ratio; attestation adds bounded overhead;\n"
              "tamper rejection is 20/20.\n");
  return rejected == 20 ? 0 : 1;
}
