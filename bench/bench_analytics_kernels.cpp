// Experiment F8-kernels (analytics compute plane).
//
// Measures the optimized kernel layer (src/analytics/kernels.h) against the
// naive Matrix methods it replaces, and the end-to-end effect on the JMF
// epoch loop:
//   - per-kernel wall-clock at bench sizes, naive vs blocked, workers
//     1/2/4/8 (results are bit-identical by construction; this bench
//     re-verifies that on every run),
//   - JMF fit wall-clock, seed path (use_fast_kernels=false) vs kernel
//     path across worker counts,
//   - every timing is recorded through obs::WallSpan into a
//     MetricsRegistry and exported with --metrics-out (default
//     BENCH_analytics_kernels.json) so artifacts carry wall-time series
//     next to the platform's sim-time series.
//
// Caveat for interpreting worker scaling: on a single-core host the 2/4/8
// worker rows measure dispatch overhead, not parallel speedup; the
// bit-identity columns are the part that is hardware-independent.
//
// F13-sparse (sparse analytics plane + Newton-CG) rides in the same
// binary: a sparse-vs-dense catalog sweep whose deterministic outcomes
// (objectives, epoch counts, peak workspace bytes, nnz, bit-identity
// flags — never wall times) are locked into BENCH_sparse_analytics.json.
// The sweep runs twice plus once per worker count in {1,2,4,8}; the
// artifact is written only when every serialized registry agrees byte
// for byte and every claim gate holds.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "analytics/delt.h"
#include "analytics/jmf.h"
#include "analytics/kernels.h"
#include "analytics/sparse.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace hc;
using namespace hc::analytics;

namespace {

bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return default_path;
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

struct KernelCase {
  const char* name;
  std::size_t rows, cols, rank;
  int reps;
};

void bench_kernels(obs::MetricsRegistry* metrics) {
  const KernelCase cases[] = {
      {"small", 60, 40, 8, 40},
      {"bench", 200, 150, 10, 10},
      {"large", 400, 300, 12, 3},
  };
  std::printf("%-7s %-22s %10s %10s %8s %6s\n", "size", "kernel", "naive-ms",
              "fast-ms", "speedup", "biteq");
  for (const auto& c : cases) {
    Rng rng(42);
    Matrix u = Matrix::random(c.rows, c.rank, rng, 0.0, 1.0);
    Matrix v = Matrix::random(c.cols, c.rank, rng, 0.0, 1.0);
    Matrix r = Matrix::random(c.rows, c.cols, rng, 0.0, 1.0);
    std::string prefix = std::string("hc.analytics.kernels.") + c.name;

    struct Op {
      const char* name;
      Matrix naive_out;
      Matrix fast_out;
    };

    auto run_op = [&](const char* op_name, auto&& naive_fn, auto&& fast_fn) {
      Matrix naive_result;
      auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < c.reps; ++rep) naive_result = naive_fn();
      double naive_ms = seconds_since(t0) * 1e3 / c.reps;
      metrics->observe(prefix + "." + op_name + ".naive_wall_us", naive_ms * 1e3,
                       "us");

      for (std::size_t workers : kWorkerCounts) {
        Matrix out;
        std::string metric = prefix + "." + op_name + ".w" +
                             std::to_string(workers) + "_wall_us";
        auto t1 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < c.reps; ++rep) {
          obs::WallSpan span(metrics, metric);
          fast_fn(out, workers);
        }
        double fast_ms = seconds_since(t1) * 1e3 / c.reps;
        bool same = bit_equal(naive_result, out);
        if (workers == 1) {
          std::printf("%-7s %-22s %10.3f %10.3f %7.2fx %6s\n", c.name, op_name,
                      naive_ms, fast_ms, naive_ms / fast_ms, same ? "yes" : "NO");
        } else {
          std::printf("%-7s %-22s %10s %10.3f %7s %6s\n", c.name,
                      (std::string(op_name) + " w" + std::to_string(workers)).c_str(),
                      "", fast_ms, "", same ? "yes" : "NO");
        }
      }
    };

    run_op(
        "multiply_transposed", [&] { return u.multiply_transposed(v); },
        [&](Matrix& out, std::size_t w) {
          kernels::multiply_transposed_into(u, v, out, w);
        });
    run_op(
        "multiply", [&] { return r.multiply(v); },
        [&](Matrix& out, std::size_t w) { kernels::multiply_into(r, v, out, w); });
    run_op(
        "transpose_multiply", [&] { return r.transpose().multiply(u); },
        [&](Matrix& out, std::size_t w) {
          kernels::transpose_multiply_into(r, u, out, w);
        });
    run_op(
        "syrk", [&] { return u.multiply_transposed(u); },
        [&](Matrix& out, std::size_t w) { kernels::syrk_into(u, out, w); });
    run_op(
        "residual",
        [&] {
          Matrix out = r;
          out.add_scaled(u.multiply_transposed(v), -1.0);
          return out;
        },
        [&](Matrix& out, std::size_t w) {
          kernels::residual_into(r, u, v, out, w);
        });
  }
}

void bench_jmf_epochs(obs::MetricsRegistry* metrics) {
  WorkloadConfig workload_config;
  workload_config.drugs = 200;
  workload_config.diseases = 150;
  workload_config.latent_rank = 8;
  Rng rng(50);
  DrugDiseaseWorkload workload = make_drug_disease_workload(workload_config, rng);

  JmfConfig base;
  base.rank = 10;
  base.epochs = 120;

  auto fit = [&](bool fast, std::size_t workers, const char* metric) {
    Rng fit_rng(7);
    JmfConfig config = base;
    config.use_fast_kernels = fast;
    config.workers = workers;
    obs::WallSpan span(metrics, metric);
    JmfResult result = joint_matrix_factorization(workload.observed,
                                                  workload.drug_similarities,
                                                  workload.disease_similarities,
                                                  config, fit_rng);
    return std::pair<JmfResult, double>(std::move(result), span.finish() / 1e6);
  };

  std::printf("\n-- JMF epoch loop, 200x150 rank 10, 120 epochs --\n");
  std::printf("%-28s %10s %9s %6s\n", "path", "fit-time", "speedup", "biteq");
  auto [naive, naive_time] =
      fit(false, 1, "hc.analytics.jmf.fit.naive_wall_us");
  std::printf("%-28s %9.2fs %9s %6s\n", "seed kernels", naive_time, "1.00x", "-");
  for (std::size_t workers : kWorkerCounts) {
    std::string metric =
        "hc.analytics.jmf.fit.w" + std::to_string(workers) + "_wall_us";
    auto [fast, fast_time] = fit(true, workers, metric.c_str());
    bool same = bit_equal(naive.scores, fast.scores) &&
                naive.objective_history == fast.objective_history &&
                naive.drug_source_weights == fast.drug_source_weights;
    std::printf("%-28s %9.2fs %8.2fx %6s\n",
                ("compute plane, " + std::to_string(workers) + " worker(s)").c_str(),
                fast_time, naive_time / fast_time, same ? "yes" : "NO");
  }
}

// --- F13-sparse: sparse plane + Newton-CG catalog sweep -----------------

std::size_t workers_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      return static_cast<std::size_t>(std::stoul(argv[i + 1]));
    }
    if (arg.rfind("--workers=", 0) == 0) {
      return static_cast<std::size_t>(
          std::stoul(arg.substr(std::string("--workers=").size())));
    }
  }
  return 1;
}

Matrix random_with_density(std::size_t rows, std::size_t cols, double density,
                           Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.uniform(0.0, 1.0) < density ? rng.uniform(0.5, 2.0) : 0.0;
  }
  return m;
}

/// One full deterministic sweep at the given worker count. Every value
/// put into `locked` is workers- and wall-clock-independent; timings go
/// to stdout only (and only when `verbose`). Returns false if a claim
/// gate fails.
bool sparse_catalog_sweep(obs::MetricsRegistry* locked, std::size_t workers,
                          bool verbose) {
  bool ok = true;
  auto gauge = [&](const std::string& name, double value) {
    locked->set_gauge(name, value);
  };

  // --- JMF epochs-to-quality: dense first-order vs Newton-CG ----------
  WorkloadConfig wc;
  wc.drugs = 200;
  wc.diseases = 150;
  wc.latent_rank = 8;
  Rng workload_rng(50);
  DrugDiseaseWorkload workload = make_drug_disease_workload(wc, workload_rng);

  JmfConfig dense_cfg;
  dense_cfg.rank = 10;
  dense_cfg.epochs = 120;
  dense_cfg.use_fast_kernels = true;
  dense_cfg.workers = workers;
  Rng dense_rng(7);
  auto t0 = std::chrono::steady_clock::now();
  JmfResult dense = joint_matrix_factorization(workload.observed,
                                               workload.drug_similarities,
                                               workload.disease_similarities,
                                               dense_cfg, dense_rng);
  double dense_s = seconds_since(t0);

  JmfConfig newton_cfg = dense_cfg;
  newton_cfg.epochs = 12;  // the 10x claim, with a little slack in the gate
  newton_cfg.use_newton_cg = true;
  newton_cfg.materialize_scores = false;
  Rng newton_rng(7);
  t0 = std::chrono::steady_clock::now();
  JmfResult newton = joint_matrix_factorization(workload.observed,
                                                workload.drug_similarities,
                                                workload.disease_similarities,
                                                newton_cfg, newton_rng);
  double newton_s = seconds_since(t0);

  double dense_final = dense.objective_history.back();
  std::size_t epochs_to = newton.objective_history.size();
  for (std::size_t i = 0; i < newton.objective_history.size(); ++i) {
    if (newton.objective_history[i] <= dense_final) {
      epochs_to = i;
      break;
    }
  }
  gauge("hc.sparse.jmf.dense.epochs", static_cast<double>(dense_cfg.epochs));
  gauge("hc.sparse.jmf.dense.final_objective", dense_final);
  gauge("hc.sparse.jmf.dense.peak_ws_bytes",
        static_cast<double>(dense.peak_workspace_bytes));
  gauge("hc.sparse.jmf.newton.epochs", static_cast<double>(newton_cfg.epochs));
  gauge("hc.sparse.jmf.newton.final_objective", newton.objective_history.back());
  gauge("hc.sparse.jmf.newton.epochs_to_dense_quality",
        static_cast<double>(epochs_to));
  gauge("hc.sparse.jmf.newton.peak_ws_bytes",
        static_cast<double>(newton.peak_workspace_bytes));
  bool jmf_gate = epochs_to <= 12;
  ok = ok && jmf_gate;
  if (verbose) {
    std::printf("\n-- F13-sparse: JMF 200x150 rank 10, dense 120 epochs vs "
                "Newton-CG --\n");
    std::printf("dense  final objective %.6f  (%.2fs, peak-ws %.1fKB)\n",
                dense_final, dense_s,
                static_cast<double>(dense.peak_workspace_bytes) / 1024.0);
    std::printf("newton final objective %.6f  (%.2fs, peak-ws %.1fKB)\n",
                newton.objective_history.back(), newton_s,
                static_cast<double>(newton.peak_workspace_bytes) / 1024.0);
    std::printf("newton reaches dense-120 quality after %zu epochs "
                "(gate: <= 12): %s\n", epochs_to, jmf_gate ? "pass" : "FAIL");
  }

  // --- catalog scale-out at the dense workspace budget ----------------
  WorkloadConfig big;
  big.drugs = 1000;
  big.diseases = 750;
  big.latent_rank = 8;
  Rng big_rng(51);
  DrugDiseaseWorkload big_workload = make_drug_disease_workload(big, big_rng);

  JmfConfig scaled_cfg;
  scaled_cfg.rank = 10;
  scaled_cfg.epochs = 6;  // memory gate, not a quality gate
  scaled_cfg.use_newton_cg = true;
  scaled_cfg.materialize_scores = false;
  scaled_cfg.workers = workers;
  Rng scaled_rng(7);
  t0 = std::chrono::steady_clock::now();
  JmfResult scaled = joint_matrix_factorization(big_workload.observed,
                                                big_workload.drug_similarities,
                                                big_workload.disease_similarities,
                                                scaled_cfg, scaled_rng);
  double scaled_s = seconds_since(t0);

  double base_cells = static_cast<double>(wc.drugs * wc.diseases);
  double scaled_cells = static_cast<double>(big.drugs * big.diseases);
  bool memory_gate = scaled_cells >= 10.0 * base_cells &&
                     scaled.peak_workspace_bytes <= dense.peak_workspace_bytes;
  ok = ok && memory_gate;
  gauge("hc.sparse.jmf.scaled.cells", scaled_cells);
  gauge("hc.sparse.jmf.scaled.cells_ratio", scaled_cells / base_cells);
  gauge("hc.sparse.jmf.scaled.peak_ws_bytes",
        static_cast<double>(scaled.peak_workspace_bytes));
  gauge("hc.sparse.jmf.scaled.fits_in_dense_budget", memory_gate ? 1.0 : 0.0);
  if (verbose) {
    std::printf("\n-- F13-sparse: catalog scale-out, %zux%zu (%.1fx cells) --\n",
                big.drugs, big.diseases, scaled_cells / base_cells);
    std::printf("scaled Newton-CG peak-ws %.1fKB vs dense 200x150 peak-ws "
                "%.1fKB (%.2fs)\n",
                static_cast<double>(scaled.peak_workspace_bytes) / 1024.0,
                static_cast<double>(dense.peak_workspace_bytes) / 1024.0,
                scaled_s);
    std::printf("fits a >= 10x catalog inside the dense workspace budget: %s\n",
                memory_gate ? "pass" : "FAIL");
  }

  // --- DELT: 25 coordinate-descent epochs vs one joint CG solve -------
  EmrConfig emr;
  emr.patients = 1500;
  emr.drugs = 120;
  emr.planted_drugs = 10;
  emr.confounded_drugs = 8;
  Rng emr_rng(62);
  EmrDataset dataset = make_emr_dataset(emr, emr_rng);

  DeltConfig cd_cfg;
  cd_cfg.workers = workers;
  cd_cfg.use_sparse = true;
  t0 = std::chrono::steady_clock::now();
  DeltModel cd = fit_delt(dataset, cd_cfg);
  double cd_s = seconds_since(t0);

  DeltConfig newton_delt_cfg = cd_cfg;
  newton_delt_cfg.use_sparse = false;
  newton_delt_cfg.use_newton_cg = true;
  t0 = std::chrono::steady_clock::now();
  DeltModel delt_newton = fit_delt(dataset, newton_delt_cfg);
  double delt_newton_s = seconds_since(t0);

  double cd_sse = cd.objective_history.back();
  double newton_sse = delt_newton.objective_history.back();
  RecoveryMetrics cd_rec = score_recovery(cd.drug_effects, dataset);
  RecoveryMetrics newton_rec = score_recovery(delt_newton.drug_effects, dataset);
  bool delt_gate = newton_sse <= cd_sse * (1.0 + 1e-6) &&
                   cd.objective_history.size() >= 10 &&
                   delt_newton.objective_history.size() == 1;
  ok = ok && delt_gate;
  gauge("hc.sparse.delt.cd.iterations",
        static_cast<double>(cd.objective_history.size()));
  gauge("hc.sparse.delt.cd.final_sse", cd_sse);
  gauge("hc.sparse.delt.cd.auc", cd_rec.auc);
  gauge("hc.sparse.delt.cd.peak_ws_bytes",
        static_cast<double>(cd.peak_workspace_bytes));
  gauge("hc.sparse.delt.newton.solves",
        static_cast<double>(delt_newton.objective_history.size()));
  gauge("hc.sparse.delt.newton.sse", newton_sse);
  gauge("hc.sparse.delt.newton.auc", newton_rec.auc);
  gauge("hc.sparse.delt.newton.peak_ws_bytes",
        static_cast<double>(delt_newton.peak_workspace_bytes));
  gauge("hc.sparse.delt.newton.sse_matches_cd", delt_gate ? 1.0 : 0.0);
  if (verbose) {
    std::printf("\n-- F13-sparse: DELT 1500x120, %zu CD epochs vs 1 CG solve --\n",
                cd.objective_history.size());
    std::printf("CD     SSE %.6f  AUC %.3f  (%.2fs)\n", cd_sse, cd_rec.auc, cd_s);
    std::printf("newton SSE %.6f  AUC %.3f  (%.2fs)\n", newton_sse,
                newton_rec.auc, delt_newton_s);
    std::printf("one joint solve matches %zu CD epochs' SSE: %s\n",
                cd.objective_history.size(), delt_gate ? "pass" : "FAIL");
  }

  // --- sparse-vs-dense kernel bit-identity across densities -----------
  if (verbose) {
    std::printf("\n-- F13-sparse: SpMM vs dense multiply, 400x300 rank 12 --\n");
    std::printf("%-9s %10s %10s %10s %6s\n", "density", "nnz", "dense-ms",
                "sparse-ms", "biteq");
  }
  for (double density : {0.01, 0.05, 0.20}) {
    Rng krng(static_cast<std::uint64_t>(density * 1000.0) + 5);
    Matrix a = random_with_density(400, 300, density, krng);
    Matrix b = Matrix::random(300, 12, krng, 0.0, 1.0);
    sparse::CsrMatrix csr = sparse::CsrMatrix::from_dense(a);

    Matrix dense_out, sparse_out;
    int reps = 20;
    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      kernels::multiply_into(a, b, dense_out, workers);
    }
    double dense_ms = seconds_since(t0) * 1e3 / reps;
    t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      sparse::multiply_into(csr, b, sparse_out, workers);
    }
    double sparse_ms = seconds_since(t0) * 1e3 / reps;
    bool same = bit_equal(dense_out, sparse_out);
    ok = ok && same;

    char key[64];
    std::snprintf(key, sizeof(key), "hc.sparse.kernels.multiply.d%03d",
                  static_cast<int>(density * 1000.0));
    gauge(std::string(key) + ".nnz", static_cast<double>(csr.nnz()));
    gauge(std::string(key) + ".biteq", same ? 1.0 : 0.0);
    if (verbose) {
      std::printf("%-9.3f %10zu %10.3f %10.3f %6s\n", density, csr.nnz(),
                  dense_ms, sparse_ms, same ? "yes" : "NO");
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path =
      metrics_out_path(argc, argv, "BENCH_analytics_kernels.json");
  obs::MetricsRegistry metrics;

  std::printf("== F8-kernels: analytics compute plane ==\n");
  std::printf("host: %u hardware thread(s) — worker rows beyond that measure\n"
              "dispatch overhead; bit-identity columns are hardware-independent\n\n",
              std::thread::hardware_concurrency());

  bench_kernels(&metrics);
  bench_jmf_epochs(&metrics);

  std::printf("\nclaim check: kernel path >= 2x on the JMF fit at 1 worker, and\n"
              "every row is bit-identical to the seed implementation.\n");

  // --- F13-sparse locked artifact --------------------------------------
  // Two passes at the requested worker count prove rerun determinism; one
  // pass per other worker count proves the locked values are
  // worker-invariant. The artifact only contains outcomes (objectives,
  // epoch counts, peak bytes, nnz, bit-identity flags), never wall times,
  // and is written only when every serialization agrees byte for byte.
  std::size_t workers = workers_flag(argc, argv);
  obs::MetricsRegistry locked;
  bool gates_ok = sparse_catalog_sweep(&locked, workers, /*verbose=*/true);
  std::string reference = obs::to_json(locked);
  bool deterministic = true;
  for (std::size_t pass_workers : {workers, std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    obs::MetricsRegistry repeat;
    gates_ok &= sparse_catalog_sweep(&repeat, pass_workers, /*verbose=*/false);
    if (obs::to_json(repeat) != reference) {
      std::fprintf(stderr,
                   "F13-sparse: pass at %zu worker(s) diverged byte-for-byte\n",
                   pass_workers);
      deterministic = false;
    }
  }
  std::printf("\nF13-sparse: reruns + workers 1/2/4/8 byte-identical: %s; "
              "claim gates: %s\n", deterministic ? "yes" : "NO",
              gates_ok ? "pass" : "FAIL");
  if (deterministic && gates_ok) {
    Status locked_written =
        obs::write_metrics_json(locked, "BENCH_sparse_analytics.json");
    if (!locked_written.is_ok()) {
      std::fprintf(stderr, "failed to write BENCH_sparse_analytics.json: %s\n",
                   locked_written.to_string().c_str());
      return 1;
    }
    std::printf("locked sparse artifact written to BENCH_sparse_analytics.json\n");
  }

  if (!metrics_path.empty()) {
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_path.c_str(),
                   written.to_string().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return deterministic && gates_ok ? 0 : 1;
}
