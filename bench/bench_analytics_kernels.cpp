// Experiment F8-kernels (analytics compute plane).
//
// Measures the optimized kernel layer (src/analytics/kernels.h) against the
// naive Matrix methods it replaces, and the end-to-end effect on the JMF
// epoch loop:
//   - per-kernel wall-clock at bench sizes, naive vs blocked, workers
//     1/2/4/8 (results are bit-identical by construction; this bench
//     re-verifies that on every run),
//   - JMF fit wall-clock, seed path (use_fast_kernels=false) vs kernel
//     path across worker counts,
//   - every timing is recorded through obs::WallSpan into a
//     MetricsRegistry and exported with --metrics-out (default
//     BENCH_analytics_kernels.json) so artifacts carry wall-time series
//     next to the platform's sim-time series.
//
// Caveat for interpreting worker scaling: on a single-core host the 2/4/8
// worker rows measure dispatch overhead, not parallel speedup; the
// bit-identity columns are the part that is hardware-independent.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "analytics/jmf.h"
#include "analytics/kernels.h"
#include "obs/export.h"
#include "obs/trace.h"

using namespace hc;
using namespace hc::analytics;

namespace {

bool bit_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return default_path;
}

constexpr std::size_t kWorkerCounts[] = {1, 2, 4, 8};

struct KernelCase {
  const char* name;
  std::size_t rows, cols, rank;
  int reps;
};

void bench_kernels(obs::MetricsRegistry* metrics) {
  const KernelCase cases[] = {
      {"small", 60, 40, 8, 40},
      {"bench", 200, 150, 10, 10},
      {"large", 400, 300, 12, 3},
  };
  std::printf("%-7s %-22s %10s %10s %8s %6s\n", "size", "kernel", "naive-ms",
              "fast-ms", "speedup", "biteq");
  for (const auto& c : cases) {
    Rng rng(42);
    Matrix u = Matrix::random(c.rows, c.rank, rng, 0.0, 1.0);
    Matrix v = Matrix::random(c.cols, c.rank, rng, 0.0, 1.0);
    Matrix r = Matrix::random(c.rows, c.cols, rng, 0.0, 1.0);
    std::string prefix = std::string("hc.analytics.kernels.") + c.name;

    struct Op {
      const char* name;
      Matrix naive_out;
      Matrix fast_out;
    };

    auto run_op = [&](const char* op_name, auto&& naive_fn, auto&& fast_fn) {
      Matrix naive_result;
      auto t0 = std::chrono::steady_clock::now();
      for (int rep = 0; rep < c.reps; ++rep) naive_result = naive_fn();
      double naive_ms = seconds_since(t0) * 1e3 / c.reps;
      metrics->observe(prefix + "." + op_name + ".naive_wall_us", naive_ms * 1e3,
                       "us");

      for (std::size_t workers : kWorkerCounts) {
        Matrix out;
        std::string metric = prefix + "." + op_name + ".w" +
                             std::to_string(workers) + "_wall_us";
        auto t1 = std::chrono::steady_clock::now();
        for (int rep = 0; rep < c.reps; ++rep) {
          obs::WallSpan span(metrics, metric);
          fast_fn(out, workers);
        }
        double fast_ms = seconds_since(t1) * 1e3 / c.reps;
        bool same = bit_equal(naive_result, out);
        if (workers == 1) {
          std::printf("%-7s %-22s %10.3f %10.3f %7.2fx %6s\n", c.name, op_name,
                      naive_ms, fast_ms, naive_ms / fast_ms, same ? "yes" : "NO");
        } else {
          std::printf("%-7s %-22s %10s %10.3f %7s %6s\n", c.name,
                      (std::string(op_name) + " w" + std::to_string(workers)).c_str(),
                      "", fast_ms, "", same ? "yes" : "NO");
        }
      }
    };

    run_op(
        "multiply_transposed", [&] { return u.multiply_transposed(v); },
        [&](Matrix& out, std::size_t w) {
          kernels::multiply_transposed_into(u, v, out, w);
        });
    run_op(
        "multiply", [&] { return r.multiply(v); },
        [&](Matrix& out, std::size_t w) { kernels::multiply_into(r, v, out, w); });
    run_op(
        "transpose_multiply", [&] { return r.transpose().multiply(u); },
        [&](Matrix& out, std::size_t w) {
          kernels::transpose_multiply_into(r, u, out, w);
        });
    run_op(
        "syrk", [&] { return u.multiply_transposed(u); },
        [&](Matrix& out, std::size_t w) { kernels::syrk_into(u, out, w); });
    run_op(
        "residual",
        [&] {
          Matrix out = r;
          out.add_scaled(u.multiply_transposed(v), -1.0);
          return out;
        },
        [&](Matrix& out, std::size_t w) {
          kernels::residual_into(r, u, v, out, w);
        });
  }
}

void bench_jmf_epochs(obs::MetricsRegistry* metrics) {
  WorkloadConfig workload_config;
  workload_config.drugs = 200;
  workload_config.diseases = 150;
  workload_config.latent_rank = 8;
  Rng rng(50);
  DrugDiseaseWorkload workload = make_drug_disease_workload(workload_config, rng);

  JmfConfig base;
  base.rank = 10;
  base.epochs = 120;

  auto fit = [&](bool fast, std::size_t workers, const char* metric) {
    Rng fit_rng(7);
    JmfConfig config = base;
    config.use_fast_kernels = fast;
    config.workers = workers;
    obs::WallSpan span(metrics, metric);
    JmfResult result = joint_matrix_factorization(workload.observed,
                                                  workload.drug_similarities,
                                                  workload.disease_similarities,
                                                  config, fit_rng);
    return std::pair<JmfResult, double>(std::move(result), span.finish() / 1e6);
  };

  std::printf("\n-- JMF epoch loop, 200x150 rank 10, 120 epochs --\n");
  std::printf("%-28s %10s %9s %6s\n", "path", "fit-time", "speedup", "biteq");
  auto [naive, naive_time] =
      fit(false, 1, "hc.analytics.jmf.fit.naive_wall_us");
  std::printf("%-28s %9.2fs %9s %6s\n", "seed kernels", naive_time, "1.00x", "-");
  for (std::size_t workers : kWorkerCounts) {
    std::string metric =
        "hc.analytics.jmf.fit.w" + std::to_string(workers) + "_wall_us";
    auto [fast, fast_time] = fit(true, workers, metric.c_str());
    bool same = bit_equal(naive.scores, fast.scores) &&
                naive.objective_history == fast.objective_history &&
                naive.drug_source_weights == fast.drug_source_weights;
    std::printf("%-28s %9.2fs %8.2fx %6s\n",
                ("compute plane, " + std::to_string(workers) + " worker(s)").c_str(),
                fast_time, naive_time / fast_time, same ? "yes" : "NO");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path =
      metrics_out_path(argc, argv, "BENCH_analytics_kernels.json");
  obs::MetricsRegistry metrics;

  std::printf("== F8-kernels: analytics compute plane ==\n");
  std::printf("host: %u hardware thread(s) — worker rows beyond that measure\n"
              "dispatch overhead; bit-identity columns are hardware-independent\n\n",
              std::thread::hardware_concurrency());

  bench_kernels(&metrics);
  bench_jmf_epochs(&metrics);

  std::printf("\nclaim check: kernel path >= 2x on the JMF fit at 1 worker, and\n"
              "every row is bit-identical to the seed implementation.\n");

  if (!metrics_path.empty()) {
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_path.c_str(),
                   written.to_string().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
