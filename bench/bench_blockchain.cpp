// Experiment F6-chain (Fig 6, Section IV.B.1).
//
// Claim reproduced: blockchain-based provenance/consent/malware/privacy
// networks provide auditable commitment at costs that scale with peer
// count. Sweeps peers 4..16 over a LAN-linked consensus group and reports
// simulated commit latency and throughput for a mixed contract workload,
// plus auditor-view query costs and chain validation time (wall clock).
#include <chrono>
#include <cstdio>

#include "blockchain/auditor.h"
#include "blockchain/contracts.h"
#include "blockchain/ledger.h"
#include "net/network.h"

using namespace hc;

namespace {

constexpr int kTransactions = 1000;

struct RunStats {
  double mean_commit_latency_us = 0;
  double throughput_tx_per_s = 0;  // in simulated time
  double audit_query_ms = 0;       // wall clock
  double validate_chain_ms = 0;    // wall clock
};

RunStats run(std::size_t peers, std::size_t batch) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(20));
  blockchain::LedgerConfig config;
  for (std::size_t i = 0; i < peers; ++i) {
    config.peers.push_back("peer-" + std::to_string(i));
  }
  for (std::size_t i = 0; i < peers; ++i) {
    for (std::size_t j = i + 1; j < peers; ++j) {
      network.set_link(config.peers[i], config.peers[j], net::LinkProfile::lan());
    }
  }
  config.max_block_transactions = batch;
  blockchain::PermissionedLedger ledger(config, clock, nullptr, &network);
  (void)blockchain::register_hcls_contracts(ledger);

  SimTime start = clock->now();
  SimTime total_commit = 0;
  std::size_t commits = 0;
  for (int i = 0; i < kTransactions; ++i) {
    std::string ref = "ref-" + std::to_string(i);
    switch (i % 4) {
      case 0:
        (void)ledger.submit("provenance",
                            {{"action", "record_event"}, {"record_ref", ref},
                             {"event", "received"}, {"data_hash", "h"}},
                            "ingestion");
        break;
      case 1:
        (void)ledger.submit("consent",
                            {{"action", "grant"}, {"patient", "p" + std::to_string(i)},
                             {"group", "study"}},
                            "provider");
        break;
      case 2:
        (void)ledger.submit("malware",
                            {{"action", "report"}, {"record_ref", ref},
                             {"verdict", i % 20 == 2 ? "infected" : "clean"},
                             {"sender", "clinic-" + std::to_string(i % 5)}},
                            "protection");
        break;
      default:
        (void)ledger.submit("privacy",
                            {{"action", "record_degree"}, {"record_ref", ref},
                             {"score", "0.99"}, {"k", "5"}},
                            "verifier");
    }
    if (ledger.pending_count() >= batch) {
      auto receipt = ledger.commit_block();
      if (receipt.is_ok()) {
        total_commit += receipt->commit_latency;
        ++commits;
      }
    }
  }
  while (ledger.pending_count() > 0) {
    auto receipt = ledger.commit_block();
    if (!receipt.is_ok()) break;
    total_commit += receipt->commit_latency;
    ++commits;
  }

  RunStats stats;
  stats.mean_commit_latency_us =
      commits ? static_cast<double>(total_commit) / static_cast<double>(commits) : 0;
  double elapsed_s = static_cast<double>(clock->now() - start) / kSecond;
  stats.throughput_tx_per_s = elapsed_s > 0 ? kTransactions / elapsed_s : 0;

  blockchain::AuditorView auditor(ledger);
  auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 50; ++i) {
    (void)auditor.record_lifecycle("ref-" + std::to_string(i * 4));
  }
  auto wall1 = std::chrono::steady_clock::now();
  stats.audit_query_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count() / 50.0;

  wall0 = std::chrono::steady_clock::now();
  if (!ledger.validate_chain().is_ok()) std::printf("!! chain validation failed\n");
  wall1 = std::chrono::steady_clock::now();
  stats.validate_chain_ms =
      std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  return stats;
}

}  // namespace

int main() {
  std::printf("== F6-chain: permissioned-ledger consensus scaling (Fig 6) ==\n");
  std::printf("workload: %d mixed txns (provenance/consent/malware/privacy)\n\n",
              kTransactions);
  std::printf("%6s %6s %18s %16s %14s %16s\n", "peers", "batch", "commit-latency",
              "throughput", "audit-query", "validate-chain");
  for (std::size_t peers : {4, 8, 12, 16}) {
    for (std::size_t batch : {16, 64}) {
      RunStats s = run(peers, batch);
      std::printf("%6zu %6zu %16.0fus %13.0ftx/s %12.3fms %14.1fms\n", peers, batch,
                  s.mean_commit_latency_us, s.throughput_tx_per_s, s.audit_query_ms,
                  s.validate_chain_ms);
    }
  }
  std::printf("\npaper-shape check: commit latency grows with peer count (broadcast\n"
              "rounds) and larger batches amortize consensus for higher throughput;\n"
              "auditor queries stay in the low-millisecond range.\n");
  return 0;
}
