// Experiment F5-attest (Fig 5, Section II.A).
//
// Claim reproduced: the transitive root of trust — TPM -> hypervisor ->
// guest (vTPM) -> containers — is cheap enough to run per launch. Measures
// (wall clock) the cost of each link: component measurement+extension as a
// function of image size, quote generation/verification, vTPM creation and
// certificate verification, and full attested launch as a function of
// chain depth.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "tpm/attestation.h"
#include "tpm/trust_chain.h"
#include "tpm/vtpm.h"

using namespace hc;

namespace {

void BM_MeasureAndExtend(benchmark::State& state) {
  Rng rng(1);
  tpm::Tpm device("hw", rng);
  Bytes image = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    device.extend(10, crypto::sha256(image));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MeasureAndExtend)->Arg(4096)->Arg(65536)->Arg(1048576)->Arg(4194304);

void BM_QuoteGeneration(benchmark::State& state) {
  Rng rng(2);
  tpm::Tpm device("hw", rng);
  device.extend(0, crypto::sha256(std::string_view("bios")));
  Bytes nonce = rng.bytes(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.quote({0, 2, 4, 10}, nonce));
  }
}
BENCHMARK(BM_QuoteGeneration);

void BM_QuoteVerification(benchmark::State& state) {
  Rng rng(3);
  tpm::Tpm device("hw", rng);
  tpm::Quote quote = device.quote({0, 2, 4, 10}, rng.bytes(16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpm::Tpm::verify_quote_signature(quote, device.endorsement_key()));
  }
}
BENCHMARK(BM_QuoteVerification);

void BM_VtpmCreateAndCertify(benchmark::State& state) {
  Rng rng(4);
  tpm::Tpm hw("hw", rng);
  crypto::KeyPair anchor = crypto::generate_keypair(rng);
  tpm::VTpmManager manager(hw, anchor.priv, Rng(5));
  int counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.create("vm-" + std::to_string(counter++)));
  }
}
BENCHMARK(BM_VtpmCreateAndCertify);

// Full attested launch: measured boot of `depth` components + challenge +
// quote + verification against golden values.
void BM_AttestedLaunch(benchmark::State& state) {
  Rng rng(6);
  auto depth = static_cast<std::size_t>(state.range(0));

  std::vector<tpm::Component> stack;
  for (std::size_t i = 0; i < depth; ++i) {
    stack.push_back(tpm::Component{"component-" + std::to_string(i),
                                   rng.bytes(16384),
                                   static_cast<std::uint32_t>(i % 8)});
  }
  tpm::AttestationService service{Rng(7)};
  for (const auto& c : stack) {
    service.approve_component(c.name, crypto::sha256(c.content));
  }

  std::vector<std::uint32_t> pcrs;
  for (std::uint32_t p = 0; p < 8; ++p) pcrs.push_back(p);

  int counter = 0;
  for (auto _ : state) {
    tpm::Tpm device("hw-" + std::to_string(counter++), rng);
    service.register_tpm(device.id(), device.endorsement_key());
    tpm::MeasurementLog log = tpm::measured_launch(device, stack);
    Bytes nonce = service.challenge();
    tpm::Quote quote = device.quote(pcrs, nonce);
    auto verdict = service.verify(quote, log);
    if (!verdict.trusted) state.SkipWithError("attestation unexpectedly failed");
  }
  state.counters["chain_depth"] = static_cast<double>(depth);
}
BENCHMARK(BM_AttestedLaunch)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== F5-attest: transitive trust chain costs (Fig 5) ==\n");
  std::printf("paper-shape check: measurement cost scales with image size (hash\n"
              "bound); quote/verify are O(1); attested launch grows linearly with\n"
              "chain depth and stays in the millisecond range.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
