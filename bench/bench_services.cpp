// Experiment C-services (Section III).
//
// Claim reproduced: "we maintain information on the different services to
// allow users to pick the best ones. This information includes response
// times and availability of the services."
//
// Five simulated text-extraction providers with drifting latency and
// availability. Compares (a) static choice of the initially-best provider
// against (b) adaptive selection via the registry's learned stats,
// re-polled every 50 calls. Reports mean latency and failure rate, plus
// knowledge-base cache effectiveness.
#include <cstdio>

#include "services/knowledge.h"
#include "services/registry.h"

using namespace hc;
using namespace hc::services;

int main() {
  std::printf("== C-services: adaptive external-service selection (III) ==\n\n");

  auto clock = make_clock();
  ServiceRegistry registry(clock, Rng(97));

  const char* names[5] = {"ibm/text", "ms/text", "amazon/text", "google/text",
                          "other/text"};
  for (int i = 0; i < 5; ++i) {
    ServiceProfile profile;
    profile.name = names[i];
    profile.category = Category::kTextExtraction;
    profile.mean_latency = (20 + 15 * i) * kMillisecond;  // ibm fastest initially
    profile.availability = 0.99;
    profile.accuracy = 0.85 + 0.02 * i;
    registry.register_service(profile);
  }

  constexpr int kCalls = 10000;
  constexpr int kDriftAt = 3000;  // the initially-fastest provider degrades

  auto run = [&](bool adaptive) {
    // Fresh registry per run so learned state is independent.
    ServiceRegistry reg(clock, Rng(98));
    for (int i = 0; i < 5; ++i) {
      ServiceProfile profile;
      profile.name = names[i];
      profile.category = Category::kTextExtraction;
      profile.mean_latency = (20 + 15 * i) * kMillisecond;
      profile.availability = 0.99;
      profile.accuracy = 0.85 + 0.02 * i;
      reg.register_service(profile);
    }

    std::string choice = reg.best_service(Category::kTextExtraction).value();
    SimTime total_latency = 0;
    int failures = 0;
    for (int call = 0; call < kCalls; ++call) {
      if (call == kDriftAt) {
        auto profile = reg.mutable_profile(names[0]);
        (*profile)->mean_latency = 400 * kMillisecond;
        (*profile)->availability = 0.6;
      }
      if (adaptive && call % 50 == 0) {
        choice = reg.best_service(Category::kTextExtraction).value();
      }
      SimTime before = clock->now();
      auto result = reg.invoke(choice, to_bytes("abstract"));
      total_latency += clock->now() - before;
      if (!result.is_ok()) ++failures;
    }
    return std::pair<double, double>(
        static_cast<double>(total_latency) / kCalls / kMillisecond,
        100.0 * failures / kCalls);
  };

  auto [static_latency, static_failures] = run(false);
  auto [adaptive_latency, adaptive_failures] = run(true);

  std::printf("%-36s %14s %12s\n", "strategy", "mean latency", "failure %");
  std::printf("%-36s %12.1fms %11.2f%%\n", "static (initial best, never re-picked)",
              static_latency, static_failures);
  std::printf("%-36s %12.1fms %11.2f%%\n", "adaptive (registry stats, re-picked)",
              adaptive_latency, adaptive_failures);

  // --- knowledge base caching ------------------------------------------
  std::printf("\n-- knowledge-base cache effectiveness (Zipf reads) --\n");
  KnowledgeHub hub(clock);
  Rng kb_rng(99);
  install_standard_knowledge_bases(hub, kb_rng, 400);
  ZipfSampler zipf(400, 1.0);
  SimTime kb_start = clock->now();
  for (int i = 0; i < 5000; ++i) {
    (void)hub.query("drugbank", "drug-" + std::to_string(zipf.sample(kb_rng)));
  }
  SimTime kb_elapsed = clock->now() - kb_start;
  auto stats = hub.cache_stats("drugbank").value();
  std::printf("5000 drugbank lookups: hit ratio %.1f%%, mean latency %s\n",
              100 * stats.hit_ratio(),
              format_duration(kb_elapsed / 5000).c_str());

  std::printf("\npaper-shape check: adaptive selection recovers after the provider\n"
              "drift (lower latency + failures than static); KB cache hit ratio is\n"
              "high under skewed access.\n");
  return adaptive_latency < static_latency ? 0 : 1;
}
