// Experiment R-fault (ISSUE: deterministic fault injection + resilience).
//
// Claim probed: the paper's trust story presumes the platform keeps
// working when the substrate misbehaves. This bench sweeps injected
// message-loss rates over a client -> cloud request workload (WAN link,
// one mid-run host crash) and compares a naive caller against the
// resilience stack (retry with backoff + circuit breaker). Reported per
// fault rate: request success fraction, mean end-to-end latency of
// successful requests, retries spent, and breaker fast-fails.
//
// Everything draws from fixed seeds on the sim clock, so every cell of
// the sweep is exactly reproducible.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "fault/resilience.h"
#include "net/network.h"
#include "obs/export.h"

using namespace hc;

namespace {

constexpr int kRequests = 2000;
constexpr std::size_t kRequestBytes = 4096;

struct RunResult {
  double success_rate = 0;
  double mean_latency_us = 0;   // successful requests only
  std::uint64_t retries = 0;
  std::uint64_t fast_fails = 0; // breaker rejections
};

RunResult run(double drop_rate, bool resilient, obs::MetricsRegistry* metrics) {
  auto clock = make_clock();
  net::SimNetwork network(clock, Rng(41));
  network.set_link("client", "cloud", net::LinkProfile::wan());

  // The fault schedule: uniform loss both ways plus a 2s cloud outage
  // halfway through the run (requests are paced at 25ms).
  fault::FaultPlan plan;
  if (drop_rate > 0) {
    plan.drop("client", "cloud", drop_rate);
  }
  SimTime outage_at = (kRequests / 2) * 25 * kMillisecond;
  plan.crash("cloud", outage_at, outage_at + 2 * kSecond);
  auto injector = fault::make_injector(plan, clock, Rng(42));
  network.set_fault_injector(injector);

  fault::RetryPolicy policy;
  policy.max_attempts = resilient ? 5 : 1;
  policy.initial_backoff = 10 * kMillisecond;
  policy.jitter = 0.2;
  Rng retry_rng(43);

  fault::CircuitBreakerConfig breaker_config;
  breaker_config.name = "bench";
  breaker_config.failure_threshold = 5;
  breaker_config.open_cooldown = 250 * kMillisecond;
  breaker_config.half_open_successes = 1;
  fault::CircuitBreaker breaker(breaker_config, clock, nullptr);

  std::uint64_t ok = 0, retries = 0, fast_fails = 0;
  SimTime ok_latency = 0;
  for (int i = 0; i < kRequests; ++i) {
    if (resilient && !breaker.allow().is_ok()) {
      ++fast_fails;  // known-dead dependency: no latency burned
    } else {
      SimTime start = clock->now();
      int attempts = 0;
      auto sent = fault::with_retry(policy, *clock, retry_rng, [&] {
        ++attempts;
        return network.send("client", "cloud", kRequestBytes);
      });
      retries += static_cast<std::uint64_t>(attempts - 1);
      if (sent.is_ok()) {
        ++ok;
        ok_latency += clock->now() - start;
        if (resilient) breaker.record_success();
      } else if (resilient) {
        breaker.record_failure();
      }
    }
    clock->advance(25 * kMillisecond);  // request pacing
  }

  if (metrics) {
    std::string prefix = "bench.faults.drop_" + std::to_string(
        static_cast<int>(drop_rate * 100)) + (resilient ? ".resilient" : ".naive");
    metrics->add(prefix + ".ok", ok);
    metrics->add(prefix + ".retries", retries);
    metrics->add(prefix + ".fast_fails", fast_fails);
    metrics->observe(prefix + ".mean_latency_us",
                     ok ? static_cast<double>(ok_latency) / static_cast<double>(ok)
                        : 0.0);
  }

  RunResult result;
  result.success_rate = static_cast<double>(ok) / kRequests;
  result.mean_latency_us =
      ok ? static_cast<double>(ok_latency) / static_cast<double>(ok) : 0.0;
  result.retries = retries;
  result.fast_fails = fast_fails;
  return result;
}

std::string metrics_out_path(int argc, char** argv, const char* default_path) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics-out") {
      return i + 1 < argc ? argv[i + 1] : default_path;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      return arg.substr(std::string("--metrics-out=").size());
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path = metrics_out_path(argc, argv, "BENCH_faults.json");
  obs::MetricsRegistry metrics;

  std::printf("== R-fault: resilience under injected faults ==\n");
  std::printf("workload: %d requests over WAN; 2s host crash mid-run;\n"
              "sweep of injected drop rates, naive vs retry+breaker\n\n",
              kRequests);
  std::printf("%-10s %-10s %9s %14s %9s %11s\n", "drop-rate", "caller",
              "success", "mean-latency", "retries", "fast-fails");

  for (double drop : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    for (bool resilient : {false, true}) {
      RunResult r = run(drop, resilient, &metrics);
      std::printf("%8.0f%% %-10s %8.1f%% %12.0fus %9llu %11llu\n", drop * 100,
                  resilient ? "resilient" : "naive", 100 * r.success_rate,
                  r.mean_latency_us,
                  static_cast<unsigned long long>(r.retries),
                  static_cast<unsigned long long>(r.fast_fails));
    }
  }
  std::printf("\nsuccess rate at 10%% loss is the headline: the naive caller "
              "loses every\ndropped request while retry+breaker recovers all "
              "transient losses and\nfast-fails only during the crash "
              "window.\n");

  if (!metrics_path.empty()) {
    Status written = obs::write_metrics_json(metrics, metrics_path);
    if (!written.is_ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", metrics_path.c_str(),
                   written.to_string().c_str());
      return 1;
    }
    std::printf("\nmetrics written to %s\n", metrics_path.c_str());
  }
  return 0;
}
