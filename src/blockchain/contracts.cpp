#include "blockchain/contracts.h"

#include <cstdlib>
#include <set>

namespace hc::blockchain {

namespace {

std::string arg_or(const Transaction& tx, const std::string& key) {
  auto it = tx.args.find(key);
  return it == tx.args.end() ? std::string() : it->second;
}

Status require_args(const Transaction& tx, std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    if (arg_or(tx, key).empty()) {
      return Status(StatusCode::kInvalidArgument,
                    std::string(tx.contract) + ": missing arg '" + key + "'");
    }
  }
  return Status::ok();
}

std::string state_or(const WorldState& state, const std::string& ns,
                     const std::string& key) {
  auto it = state.find(ns);
  if (it == state.end()) return {};
  auto kv = it->second.find(key);
  return kv == it->second.end() ? std::string() : kv->second;
}

const std::set<std::string> kProvenanceEvents = {"received", "retrieved", "anonymized",
                                                 "exported", "deleted"};

}  // namespace

// ----------------------------------------------------------- provenance

Status ProvenanceContract::validate(const Transaction& tx, const WorldState& state) const {
  if (arg_or(tx, "action") != "record_event") {
    return Status(StatusCode::kInvalidArgument, "provenance: unknown action");
  }
  if (Status s = require_args(tx, {"record_ref", "event", "data_hash"}); !s.is_ok()) {
    return s;
  }
  if (!kProvenanceEvents.contains(arg_or(tx, "event"))) {
    return Status(StatusCode::kInvalidArgument,
                  "provenance: unknown event " + arg_or(tx, "event"));
  }
  // A deleted record's lifecycle is closed.
  if (state_or(state, "provenance", arg_or(tx, "record_ref") + "/last_event") ==
      "deleted") {
    return Status(StatusCode::kFailedPrecondition,
                  "provenance: record already deleted");
  }
  return Status::ok();
}

void ProvenanceContract::apply(const Transaction& tx, WorldState& state) const {
  auto& ns = state["provenance"];
  std::string ref = arg_or(tx, "record_ref");
  ns[ref + "/last_event"] = arg_or(tx, "event");
  ns[ref + "/last_hash"] = arg_or(tx, "data_hash");
  auto& count = ns[ref + "/events"];
  count = std::to_string(std::atoll(count.c_str()) + 1);
}

// -------------------------------------------------------------- consent

Status ConsentContract::validate(const Transaction& tx, const WorldState& state) const {
  std::string action = arg_or(tx, "action");
  if (action != "grant" && action != "revoke") {
    return Status(StatusCode::kInvalidArgument, "consent: unknown action " + action);
  }
  if (Status s = require_args(tx, {"patient", "group"}); !s.is_ok()) return s;
  std::string key = arg_or(tx, "patient") + "|" + arg_or(tx, "group");
  std::string current = state_or(state, "consent", key);
  if (action == "revoke" && current != "granted") {
    return Status(StatusCode::kFailedPrecondition,
                  "consent: cannot revoke what was never granted");
  }
  if (action == "grant" && current == "granted") {
    return Status(StatusCode::kAlreadyExists, "consent: already granted");
  }
  return Status::ok();
}

void ConsentContract::apply(const Transaction& tx, WorldState& state) const {
  std::string key = arg_or(tx, "patient") + "|" + arg_or(tx, "group");
  state["consent"][key] = arg_or(tx, "action") == "grant" ? "granted" : "revoked";
}

bool ConsentContract::has_consent(const PermissionedLedger& ledger,
                                  const std::string& patient, const std::string& group) {
  auto value = ledger.state_value("consent", patient + "|" + group);
  return value.is_ok() && *value == "granted";
}

// -------------------------------------------------------------- malware

Status MalwareContract::validate(const Transaction& tx, const WorldState&) const {
  if (arg_or(tx, "action") != "report") {
    return Status(StatusCode::kInvalidArgument, "malware: unknown action");
  }
  if (Status s = require_args(tx, {"record_ref", "verdict", "sender"}); !s.is_ok()) {
    return s;
  }
  std::string verdict = arg_or(tx, "verdict");
  if (verdict != "clean" && verdict != "infected") {
    return Status(StatusCode::kInvalidArgument, "malware: unknown verdict " + verdict);
  }
  return Status::ok();
}

void MalwareContract::apply(const Transaction& tx, WorldState& state) const {
  auto& ns = state["malware"];
  ns[arg_or(tx, "record_ref") + "/verdict"] = arg_or(tx, "verdict");
  if (arg_or(tx, "verdict") == "infected") {
    auto& count = ns["sender/" + arg_or(tx, "sender") + "/infected"];
    count = std::to_string(std::atoll(count.c_str()) + 1);
  }
}

std::uint64_t MalwareContract::infected_count(const PermissionedLedger& ledger,
                                              const std::string& sender) {
  auto value = ledger.state_value("malware", "sender/" + sender + "/infected");
  return value.is_ok() ? static_cast<std::uint64_t>(std::atoll(value->c_str())) : 0;
}

// -------------------------------------------------------------- privacy

Status PrivacyContract::validate(const Transaction& tx, const WorldState&) const {
  if (arg_or(tx, "action") != "record_degree") {
    return Status(StatusCode::kInvalidArgument, "privacy: unknown action");
  }
  if (Status s = require_args(tx, {"record_ref", "score", "k"}); !s.is_ok()) return s;
  char* end = nullptr;
  double score = std::strtod(arg_or(tx, "score").c_str(), &end);
  if (*end != '\0' || score < 0.0 || score > 1.0) {
    return Status(StatusCode::kInvalidArgument,
                  "privacy: score must be in [0,1], got " + arg_or(tx, "score"));
  }
  return Status::ok();
}

void PrivacyContract::apply(const Transaction& tx, WorldState& state) const {
  auto& ns = state["privacy"];
  std::string ref = arg_or(tx, "record_ref");
  ns[ref + "/score"] = arg_or(tx, "score");
  ns[ref + "/k"] = arg_or(tx, "k");
}

// ------------------------------------------------------------- identity

Status IdentityContract::validate(const Transaction& tx, const WorldState& state) const {
  std::string action = arg_or(tx, "action");
  if (action != "register" && action != "rotate") {
    return Status(StatusCode::kInvalidArgument, "identity: unknown action " + action);
  }
  if (Status s = require_args(tx, {"did", "key_fingerprint"}); !s.is_ok()) return s;
  std::string existing = state_or(state, "identity", arg_or(tx, "did"));
  if (action == "register" && !existing.empty()) {
    return Status(StatusCode::kAlreadyExists, "identity: DID already registered");
  }
  if (action == "rotate" && existing.empty()) {
    return Status(StatusCode::kNotFound, "identity: DID not registered");
  }
  return Status::ok();
}

void IdentityContract::apply(const Transaction& tx, WorldState& state) const {
  state["identity"][arg_or(tx, "did")] = arg_or(tx, "key_fingerprint");
}

Status register_hcls_contracts(PermissionedLedger& ledger) {
  if (Status s = ledger.register_contract(std::make_unique<ProvenanceContract>());
      !s.is_ok()) {
    return s;
  }
  if (Status s = ledger.register_contract(std::make_unique<ConsentContract>());
      !s.is_ok()) {
    return s;
  }
  if (Status s = ledger.register_contract(std::make_unique<MalwareContract>());
      !s.is_ok()) {
    return s;
  }
  if (Status s = ledger.register_contract(std::make_unique<PrivacyContract>());
      !s.is_ok()) {
    return s;
  }
  return ledger.register_contract(std::make_unique<IdentityContract>());
}

}  // namespace hc::blockchain
