// Auditor view (Section IV.E).
//
// "Hyperledger has an auditor view that allows an auditor to get access to
// the ledgers and search for use and processing of data, system integrity
// and user provenance." AuditorView is a read-only lens over a
// PermissionedLedger providing the queries regulators and forensic teams
// run: full record lifecycles, consent histories, risky senders, and chain
// integrity.
#pragma once

#include <string>
#include <vector>

#include "blockchain/ledger.h"

namespace hc::blockchain {

struct RecordLifecycle {
  std::string record_ref;
  std::vector<std::string> events;  // chronological event names
  std::string last_hash;
};

class AuditorView {
 public:
  explicit AuditorView(const PermissionedLedger& ledger) : ledger_(&ledger) {}

  /// All provenance events for one record, oldest first.
  RecordLifecycle record_lifecycle(const std::string& record_ref) const;

  /// Chronological consent actions ("grant"/"revoke") for a patient.
  std::vector<std::string> consent_history(const std::string& patient) const;

  /// Senders whose infected-record count reaches the threshold.
  std::vector<std::string> risky_senders(std::uint64_t threshold) const;

  /// All transactions a given submitter ever committed (user provenance).
  std::vector<Transaction> activity_of(const std::string& submitter) const;

  /// Chain integrity — delegates to the ledger's full validation.
  Status verify_integrity() const { return ledger_->validate_chain(); }

  std::size_t total_transactions() const;

 private:
  const PermissionedLedger* ledger_;
};

}  // namespace hc::blockchain
