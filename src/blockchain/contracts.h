// Smart contracts for the HCLS blockchain networks (Section IV.B.1).
//
// The paper describes several ledger uses — data provenance, consent
// management, the malware-management network, the privacy network, and
// blockchain-based identity. Each is chaincode here; they can run on one
// shared ledger or separate PermissionedLedger instances ("It is a design
// decision").
//
// Transaction args all include an "action" plus the parameters below.
#pragma once

#include <memory>

#include "blockchain/ledger.h"

namespace hc::blockchain {

/// Data provenance: every lifecycle event of an HCLS record.
///   action=record_event, record_ref, event, data_hash, meta?
///   event in {received, retrieved, anonymized, exported, deleted}
/// State: "<record_ref>/last_event" and "<record_ref>/events" (count).
class ProvenanceContract : public SmartContract {
 public:
  std::string_view name() const override { return "provenance"; }
  Status validate(const Transaction& tx, const WorldState& state) const override;
  void apply(const Transaction& tx, WorldState& state) const override;
};

/// Consent provenance (GDPR/HIPAA): patients grant/revoke per study group.
///   action=grant|revoke, patient, group
/// State: "<patient>|<group>" -> "granted" | "revoked".
class ConsentContract : public SmartContract {
 public:
  std::string_view name() const override { return "consent"; }
  Status validate(const Transaction& tx, const WorldState& state) const override;
  void apply(const Transaction& tx, WorldState& state) const override;

  /// Convenience query against a ledger's state.
  static bool has_consent(const PermissionedLedger& ledger, const std::string& patient,
                          const std::string& group);
};

/// Malware-management network: records scan verdicts and accumulates
/// per-sender risk ("determine risky senders or risky records").
///   action=report, record_ref, verdict in {clean, infected}, sender
/// State: "<record_ref>/verdict"; "sender/<sender>/infected" (count).
class MalwareContract : public SmartContract {
 public:
  std::string_view name() const override { return "malware"; }
  Status validate(const Transaction& tx, const WorldState& state) const override;
  void apply(const Transaction& tx, WorldState& state) const override;

  static std::uint64_t infected_count(const PermissionedLedger& ledger,
                                      const std::string& sender);
};

/// Privacy network: records the verified privacy degree of each record.
///   action=record_degree, record_ref, score in [0,1], k
/// State: "<record_ref>/score", "<record_ref>/k".
class PrivacyContract : public SmartContract {
 public:
  std::string_view name() const override { return "privacy"; }
  Status validate(const Transaction& tx, const WorldState& state) const override;
  void apply(const Transaction& tx, WorldState& state) const override;
};

/// Self-sovereign identity: DIDs bound to key fingerprints, rotatable only
/// by an already-registered identity (identity-mixer is out of scope; the
/// registry semantics are what the platform consumes).
///   action=register|rotate, did, key_fingerprint
/// State: "<did>" -> key_fingerprint.
class IdentityContract : public SmartContract {
 public:
  std::string_view name() const override { return "identity"; }
  Status validate(const Transaction& tx, const WorldState& state) const override;
  void apply(const Transaction& tx, WorldState& state) const override;
};

/// Registers all five HCLS contracts on a ledger.
Status register_hcls_contracts(PermissionedLedger& ledger);

}  // namespace hc::blockchain
