#include "blockchain/auditor.h"

namespace hc::blockchain {

namespace {
std::string arg_or(const Transaction& tx, const std::string& key) {
  auto it = tx.args.find(key);
  return it == tx.args.end() ? std::string() : it->second;
}
}  // namespace

RecordLifecycle AuditorView::record_lifecycle(const std::string& record_ref) const {
  RecordLifecycle lifecycle;
  lifecycle.record_ref = record_ref;
  auto txs = ledger_->find_transactions([&](const Transaction& tx) {
    return tx.contract == "provenance" && arg_or(tx, "record_ref") == record_ref;
  });
  for (const auto& tx : txs) {
    lifecycle.events.push_back(arg_or(tx, "event"));
    lifecycle.last_hash = arg_or(tx, "data_hash");
  }
  return lifecycle;
}

std::vector<std::string> AuditorView::consent_history(const std::string& patient) const {
  std::vector<std::string> history;
  auto txs = ledger_->find_transactions([&](const Transaction& tx) {
    return tx.contract == "consent" && arg_or(tx, "patient") == patient;
  });
  history.reserve(txs.size());
  for (const auto& tx : txs) {
    history.push_back(arg_or(tx, "action") + ":" + arg_or(tx, "group"));
  }
  return history;
}

std::vector<std::string> AuditorView::risky_senders(std::uint64_t threshold) const {
  std::map<std::string, std::uint64_t> counts;
  auto txs = ledger_->find_transactions([](const Transaction& tx) {
    return tx.contract == "malware";
  });
  for (const auto& tx : txs) {
    if (arg_or(tx, "verdict") == "infected") counts[arg_or(tx, "sender")]++;
  }
  std::vector<std::string> risky;
  for (const auto& [sender, count] : counts) {
    if (count >= threshold) risky.push_back(sender);
  }
  return risky;
}

std::vector<Transaction> AuditorView::activity_of(const std::string& submitter) const {
  return ledger_->find_transactions(
      [&](const Transaction& tx) { return tx.submitter == submitter; });
}

std::size_t AuditorView::total_transactions() const {
  std::size_t n = 0;
  for (const auto& block : ledger_->chain()) n += block.transactions.size();
  return n;
}

}  // namespace hc::blockchain
