#include "blockchain/ledger.h"

#include <algorithm>

#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace hc::blockchain {

Bytes Transaction::serialize() const {
  crypto::Sha256 h;
  h.update(id);
  h.update(std::string_view("|"));
  h.update(contract);
  h.update(std::string_view("|"));
  for (const auto& [key, value] : args) {
    h.update(key);
    h.update(std::string_view("="));
    h.update(value);
    h.update(std::string_view(";"));
  }
  h.update(submitter);
  std::uint8_t ts[8];
  for (int i = 0; i < 8; ++i) {
    ts[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(timestamp) >> (56 - 8 * i));
  }
  h.update(ts, 8);
  return h.finalize();
}

Bytes Block::compute_hash() const {
  crypto::Sha256 h;
  std::uint8_t header[16];
  for (int i = 0; i < 8; ++i) {
    header[i] = static_cast<std::uint8_t>(index >> (56 - 8 * i));
    header[8 + i] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(timestamp) >> (56 - 8 * i));
  }
  h.update(header, 16);
  h.update(previous_hash);
  h.update(merkle_root);
  return h.finalize();
}

namespace {

Bytes merkle_root_of(const std::vector<Transaction>& transactions) {
  std::vector<Bytes> leaves;
  leaves.reserve(transactions.size());
  for (const auto& tx : transactions) leaves.push_back(tx.serialize());
  return crypto::MerkleTree(leaves).root();
}

// Consensus message sizes (bytes) for the latency model: a transaction
// proposal, an endorsement/vote, a block announcement.
constexpr std::size_t kProposalBytes = 512;
constexpr std::size_t kVoteBytes = 96;

}  // namespace

PermissionedLedger::PermissionedLedger(LedgerConfig config, ClockPtr clock, LogPtr log,
                                       net::SimNetwork* network, obs::MetricsPtr metrics)
    : config_(std::move(config)),
      clock_(std::move(clock)),
      log_(std::move(log)),
      network_(network),
      metrics_(std::move(metrics)) {
  if (config_.peers.empty()) {
    throw std::invalid_argument("PermissionedLedger: at least one peer required");
  }
  if (config_.endorsement_quorum == 0) {
    config_.endorsement_quorum = config_.peers.size() / 2 + 1;
  }
  // Genesis block anchors the chain.
  Block genesis;
  genesis.index = 0;
  genesis.previous_hash = Bytes(crypto::kSha256DigestSize, 0);
  genesis.merkle_root = merkle_root_of({});
  genesis.timestamp = clock_->now();
  genesis.hash = genesis.compute_hash();
  chain_.push_back(std::move(genesis));
}

Status PermissionedLedger::register_contract(std::unique_ptr<SmartContract> contract) {
  std::lock_guard lock(mu_);
  std::string name(contract->name());
  if (contracts_.contains(name)) {
    return Status(StatusCode::kAlreadyExists, "contract already registered: " + name);
  }
  contracts_.emplace(std::move(name), std::move(contract));
  return Status::ok();
}

const SmartContract* PermissionedLedger::find_contract(const std::string& name) const {
  auto it = contracts_.find(name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

PermissionedLedger::BroadcastResult PermissionedLedger::charge_broadcast(
    std::size_t message_bytes) {
  if (!network_) return {config_.peers.size() - 1, 0};
  const std::string& leader = config_.peers.front();
  BroadcastResult result;
  for (std::size_t i = 1; i < config_.peers.size(); ++i) {
    // Bracket each send with clock reads: dropped sends still advance the
    // clock by the attempt latency, and that cost belongs to this round.
    SimTime before = clock_->now();
    auto sent = network_->send(leader, config_.peers[i], message_bytes);
    result.charged += clock_->now() - before;
    // Only operational losses mark a peer unresponsive; an unconfigured
    // link keeps the legacy "cost model only" semantics.
    if (sent.is_ok() || sent.status().code() != StatusCode::kUnavailable) {
      ++result.acknowledged;
    } else if (metrics_) {
      metrics_->add("hc.blockchain.unresponsive_peer_msgs");
    }
  }
  return result;
}

std::size_t PermissionedLedger::required_responsive_peers() const {
  double fraction = config_.max_unresponsive_fraction;
  if (fraction >= 1.0) return 0;
  if (fraction < 0.0) fraction = 0.0;
  double allowed_down = fraction * static_cast<double>(config_.peers.size());
  return config_.peers.size() - static_cast<std::size_t>(allowed_down);
}

Result<std::string> PermissionedLedger::submit(const std::string& contract,
                                               std::map<std::string, std::string> args,
                                               const std::string& submitter) {
  std::lock_guard lock(mu_);
  return submit_locked(contract, std::move(args), submitter);
}

Result<std::string> PermissionedLedger::submit_locked(
    const std::string& contract, std::map<std::string, std::string> args,
    const std::string& submitter) {
  const SmartContract* chaincode = find_contract(contract);
  if (!chaincode) {
    return Status(StatusCode::kNotFound, "no such contract: " + contract);
  }

  Transaction tx;
  tx.id = "tx-" + ids_.next_uuid();
  tx.contract = contract;
  tx.args = std::move(args);
  tx.submitter = submitter;
  tx.timestamp = clock_->now();

  // Endorsement: leader broadcasts the proposal; every peer validates
  // against the current state (replicas are identical in-process, so one
  // validation decides, but the message costs are still charged per peer).
  // A peer only endorses if both the proposal and its response made it.
  std::size_t proposals = charge_broadcast(kProposalBytes).acknowledged;
  Status verdict = chaincode->validate(tx, state_);
  std::size_t votes = charge_broadcast(kVoteBytes).acknowledged;  // endorsement responses

  std::size_t responsive = 1 + std::min(proposals, votes);  // leader + followers
  std::size_t required = required_responsive_peers();
  if (required > 0 && responsive < std::max(required, config_.endorsement_quorum)) {
    if (log_) {
      log_->warn("blockchain", "endorsement_unreachable",
                 tx.id + " responsive=" + std::to_string(responsive) + "/" +
                     std::to_string(config_.peers.size()));
    }
    if (metrics_) metrics_->add("hc.blockchain.endorsement_unavailable");
    return Status(StatusCode::kUnavailable,
                  "endorsement quorum unreachable: " + std::to_string(responsive) +
                      "/" + std::to_string(config_.peers.size()) + " peers");
  }

  // With tolerance enforcement off (fraction 1.0), keep the historical
  // fault-oblivious accounting: every peer is presumed to endorse.
  std::size_t endorsements =
      verdict.is_ok() ? (required > 0 ? responsive : config_.peers.size()) : 0;
  if (endorsements < config_.endorsement_quorum) {
    if (log_) log_->warn("blockchain", "endorsement_failed", tx.id + " " + verdict.to_string());
    if (metrics_) metrics_->add("hc.blockchain.txs_rejected");
    return verdict.is_ok()
               ? Status(StatusCode::kFailedPrecondition, "endorsement quorum not met")
               : verdict;
  }

  std::string id = tx.id;
  pending_.push_back(std::move(tx));
  if (metrics_) metrics_->add("hc.blockchain.txs_endorsed");
  return id;
}

Result<CommitReceipt> PermissionedLedger::commit_block() {
  std::lock_guard lock(mu_);
  return commit_block_locked();
}

Result<CommitReceipt> PermissionedLedger::commit_block_locked() {
  if (pending_.empty()) {
    return Status(StatusCode::kFailedPrecondition, "no pending transactions");
  }

  std::size_t take = std::min(pending_.size(), config_.max_block_transactions);
  std::vector<Transaction> batch(pending_.begin(),
                                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(take));

  Block block;
  block.index = chain_.size();
  block.previous_hash = chain_.back().hash;
  block.merkle_root = merkle_root_of(batch);
  block.timestamp = clock_->now();
  block.transactions = std::move(batch);
  block.hash = block.compute_hash();

  // Commit vote: propose block, collect votes, announce commit. A peer
  // counts as committing only if every round reached it.
  BroadcastResult round1 = charge_broadcast(kProposalBytes + block.transactions.size() * 256);
  BroadcastResult round2 = charge_broadcast(kVoteBytes);
  BroadcastResult round3 = charge_broadcast(kVoteBytes);
  SimTime commit_latency = round1.charged + round2.charged + round3.charged;

  std::size_t responsive =
      1 + std::min({round1.acknowledged, round2.acknowledged, round3.acknowledged});
  std::size_t required = required_responsive_peers();
  if (required > 0 && responsive < required) {
    // Put the batch back at the head of the pool: the commit is aborted,
    // not lost, and succeeds once enough peers are reachable again.
    pending_.insert(pending_.begin(),
                    std::make_move_iterator(block.transactions.begin()),
                    std::make_move_iterator(block.transactions.end()));
    if (metrics_) metrics_->add("hc.blockchain.commit_aborts");
    if (log_) {
      log_->warn("blockchain", "commit_aborted",
                 "responsive=" + std::to_string(responsive) + "/" +
                     std::to_string(config_.peers.size()));
    }
    return Status(StatusCode::kUnavailable,
                  "commit vote unreachable: " + std::to_string(responsive) + "/" +
                      std::to_string(config_.peers.size()) + " peers");
  }

  for (const auto& tx : block.transactions) {
    find_contract(tx.contract)->apply(tx, state_);
  }
  CommitReceipt receipt{block.index, block.transactions.size(), commit_latency};
  chain_.push_back(std::move(block));
  if (metrics_) {
    metrics_->add("hc.blockchain.blocks_appended");
    metrics_->add("hc.blockchain.txs_committed", receipt.transaction_count);
    metrics_->observe("hc.blockchain.commit_us",
                      static_cast<double>(receipt.commit_latency));
  }
  if (log_) {
    log_->audit("blockchain", "block_committed",
                "index=" + std::to_string(receipt.block_index) +
                    " txs=" + std::to_string(receipt.transaction_count));
  }
  return receipt;
}

Result<std::string> PermissionedLedger::submit_and_commit(
    const std::string& contract, std::map<std::string, std::string> args,
    const std::string& submitter) {
  // One critical section for the pair: a concurrent worker must never
  // commit this worker's endorsed transaction out from under it.
  std::lock_guard lock(mu_);
  auto id = submit_locked(contract, std::move(args), submitter);
  if (!id.is_ok()) return id;
  auto receipt = commit_block_locked();
  if (!receipt.is_ok()) return receipt.status();
  return id;
}

Result<std::vector<std::string>> PermissionedLedger::submit_batch(
    const std::string& contract,
    std::vector<std::map<std::string, std::string>> args_list,
    const std::string& submitter) {
  std::lock_guard lock(mu_);
  if (args_list.empty()) {
    return Status(StatusCode::kInvalidArgument, "submit_batch: empty batch");
  }
  const SmartContract* chaincode = find_contract(contract);
  if (!chaincode) {
    return Status(StatusCode::kNotFound, "no such contract: " + contract);
  }

  // Build and validate the whole group before anything is charged or
  // pooled: a batch endorses atomically or not at all.
  std::vector<Transaction> txs;
  txs.reserve(args_list.size());
  for (auto& args : args_list) {
    Transaction tx;
    tx.id = "tx-" + ids_.next_uuid();
    tx.contract = contract;
    tx.args = std::move(args);
    tx.submitter = submitter;
    tx.timestamp = clock_->now();
    if (Status verdict = chaincode->validate(tx, state_); !verdict.is_ok()) {
      if (metrics_) metrics_->add("hc.blockchain.txs_rejected");
      return verdict;
    }
    txs.push_back(std::move(tx));
  }

  // One endorsement round trip for the group: the proposal carries every
  // transaction (kProposalBytes header + 256 bytes each), the vote round
  // acknowledges them all at once.
  std::size_t proposals =
      charge_broadcast(kProposalBytes + txs.size() * 256).acknowledged;
  std::size_t votes = charge_broadcast(kVoteBytes).acknowledged;
  std::size_t responsive = 1 + std::min(proposals, votes);
  std::size_t required = required_responsive_peers();
  if (required > 0 && responsive < std::max(required, config_.endorsement_quorum)) {
    if (metrics_) metrics_->add("hc.blockchain.endorsement_unavailable");
    return Status(StatusCode::kUnavailable,
                  "endorsement quorum unreachable: " + std::to_string(responsive) +
                      "/" + std::to_string(config_.peers.size()) + " peers");
  }

  std::vector<std::string> ids;
  ids.reserve(txs.size());
  for (Transaction& tx : txs) {
    ids.push_back(tx.id);
    pending_.push_back(std::move(tx));
  }
  if (metrics_) {
    metrics_->add("hc.blockchain.txs_endorsed", ids.size());
    metrics_->add("hc.blockchain.batch_endorsements");
  }
  return ids;
}

Result<std::string> PermissionedLedger::state_value(const std::string& contract,
                                                    const std::string& key) const {
  std::lock_guard lock(mu_);
  auto ns = state_.find(contract);
  if (ns == state_.end()) {
    return Status(StatusCode::kNotFound, "empty contract namespace: " + contract);
  }
  auto it = ns->second.find(key);
  if (it == ns->second.end()) {
    return Status(StatusCode::kNotFound, "no state for key: " + key);
  }
  return it->second;
}

std::vector<Transaction> PermissionedLedger::find_transactions(
    const std::function<bool(const Transaction&)>& predicate) const {
  std::lock_guard lock(mu_);
  std::vector<Transaction> out;
  for (const auto& block : chain_) {
    for (const auto& tx : block.transactions) {
      if (predicate(tx)) out.push_back(tx);
    }
  }
  return out;
}

Status PermissionedLedger::validate_chain() const {
  std::lock_guard lock(mu_);
  if (metrics_) metrics_->add("hc.blockchain.chain_verifications");
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    const Block& block = chain_[i];
    if (block.index != i) {
      return Status(StatusCode::kIntegrityError,
                    "block " + std::to_string(i) + " has wrong index");
    }
    if (!constant_time_equal(block.hash, block.compute_hash())) {
      return Status(StatusCode::kIntegrityError,
                    "block " + std::to_string(i) + " hash mismatch");
    }
    if (!constant_time_equal(block.merkle_root, merkle_root_of(block.transactions))) {
      return Status(StatusCode::kIntegrityError,
                    "block " + std::to_string(i) + " merkle root mismatch");
    }
    if (i > 0 && !constant_time_equal(block.previous_hash, chain_[i - 1].hash)) {
      return Status(StatusCode::kIntegrityError,
                    "block " + std::to_string(i) + " breaks the hash chain");
    }
  }
  return Status::ok();
}

void PermissionedLedger::tamper_for_test(std::size_t block_index, std::size_t tx_index,
                                         const std::string& key,
                                         const std::string& value) {
  std::lock_guard lock(mu_);
  chain_.at(block_index).transactions.at(tx_index).args[key] = value;
}

}  // namespace hc::blockchain
