// Permissioned blockchain ledger (Section IV, Fig 6).
//
// A Hyperledger-style permissioned network: named peers (sender, receiver,
// healthcare provider, data-protection service, audit service...), smart
// contracts that validate and apply transactions against a world state, an
// endorsement quorum, and hash-chained blocks with per-block Merkle roots.
//
// Per the paper, PHI itself is NEVER stored on the ledger — transactions
// carry a "handle/reference" to the encrypted record, the hash of the data,
// event information and metadata; the record body stays in the centralized
// encrypted store (separation of duties).
//
// The network is simulated in-process: every peer validates every
// transaction (endorsement) and every block (commit vote); message costs
// are charged on a SimNetwork when one is supplied, so the consensus
// benchmarks can sweep peer count against commit latency.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/log.h"
#include "common/status.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace hc::blockchain {

/// World state: contract name -> key -> value. Rebuilt deterministically by
/// replaying the chain; contracts read and write only their own namespace.
using WorldState = std::map<std::string, std::map<std::string, std::string>>;

struct Transaction {
  std::string id;
  std::string contract;                         // target contract name
  std::map<std::string, std::string> args;      // action + parameters
  std::string submitter;                        // peer/org identity
  SimTime timestamp = 0;

  /// Canonical serialization used for Merkle leaves and chain hashing.
  Bytes serialize() const;
};

struct Block {
  std::uint64_t index = 0;
  Bytes previous_hash;
  Bytes merkle_root;
  SimTime timestamp = 0;
  std::vector<Transaction> transactions;
  Bytes hash;  // over (index, previous_hash, merkle_root, timestamp)

  Bytes compute_hash() const;
};

/// Chaincode interface. Contracts must be deterministic: validate() may
/// reject, apply() must succeed on anything validate() accepted.
class SmartContract {
 public:
  virtual ~SmartContract() = default;
  virtual std::string_view name() const = 0;
  virtual Status validate(const Transaction& tx, const WorldState& state) const = 0;
  virtual void apply(const Transaction& tx, WorldState& state) const = 0;
};

struct LedgerConfig {
  std::vector<std::string> peers;       // at least 1; first peer leads
  std::size_t endorsement_quorum = 0;   // 0 = majority
  std::size_t max_block_transactions = 64;
  /// Fraction of peers that may be unreachable (crashed host / dropped
  /// consensus messages) before endorsement and commit refuse to proceed.
  /// 1.0 (default) keeps the historical fault-oblivious behaviour; chaos
  /// configurations set e.g. 0.34 so consensus needs 2/3 of peers live.
  /// Only kUnavailable send failures count as unresponsiveness — an
  /// unconfigured link (kFailedPrecondition) stays a cost-model no-op.
  double max_unresponsive_fraction = 1.0;
};

struct CommitReceipt {
  std::uint64_t block_index = 0;
  std::size_t transaction_count = 0;
  SimTime commit_latency = 0;
};

/// Thread-safe: one internal mutex serializes consensus (endorsement,
/// ordering, commit) and state queries, so parallel ingestion workers can
/// record provenance concurrently. Commit latency is accounted from the
/// ledger's *own* charged broadcast rounds, not a global clock delta, so
/// concurrent workers advancing the shared clock never leak into
/// `hc.blockchain.commit_us`. The chain()/state() reference accessors are
/// for quiesced (single-threaded) inspection only.
class PermissionedLedger {
 public:
  /// `network` may be null (no latency model); when present, each peer name
  /// must be a SimNetwork endpoint and consensus messages are charged.
  /// `metrics` (nullable) receives `hc.blockchain.*` append/verify counters
  /// and the block commit-latency histogram.
  PermissionedLedger(LedgerConfig config, ClockPtr clock, LogPtr log = nullptr,
                     net::SimNetwork* network = nullptr,
                     obs::MetricsPtr metrics = nullptr);

  /// Registers chaincode. Names must be unique.
  Status register_contract(std::unique_ptr<SmartContract> contract);

  /// Endorsement phase: every peer validates against its state replica; the
  /// transaction enters the pending pool when the quorum endorses.
  /// Validation failures return the contract's status verbatim.
  Result<std::string> submit(const std::string& contract,
                             std::map<std::string, std::string> args,
                             const std::string& submitter);

  /// Ordering/commit phase: drains (up to max_block_transactions of) the
  /// pool into a block, runs the commit vote, appends, applies to state.
  /// kFailedPrecondition when the pool is empty; kUnavailable when more
  /// than max_unresponsive_fraction of peers are unreachable — the batch
  /// is returned to the pool so a later commit (after hosts restart) can
  /// succeed.
  Result<CommitReceipt> commit_block();

  /// Submit + immediate commit — the common path for provenance events.
  Result<std::string> submit_and_commit(const std::string& contract,
                                        std::map<std::string, std::string> args,
                                        const std::string& submitter);

  /// Batched endorsement (hybrid-storage provenance anchoring): every
  /// transaction is validated against the replicas, but the whole group
  /// shares ONE proposal broadcast (sized by the combined payload) and
  /// ONE vote round instead of per-transaction rounds. All-or-nothing:
  /// the first validation failure rejects the entire batch and nothing
  /// enters the pool. Returns the assigned ids in input order.
  Result<std::vector<std::string>> submit_batch(
      const std::string& contract,
      std::vector<std::map<std::string, std::string>> args_list,
      const std::string& submitter);

  // --- queries ----------------------------------------------------------
  // chain()/state() return references into guarded storage: use only when
  // no other thread is mutating the ledger (tests, post-run audits).
  const std::vector<Block>& chain() const { return chain_; }
  const WorldState& state() const { return state_; }
  std::size_t pending_count() const {
    std::lock_guard lock(mu_);
    return pending_.size();
  }
  std::size_t peer_count() const { return config_.peers.size(); }

  /// Value in a contract namespace, or kNotFound.
  Result<std::string> state_value(const std::string& contract,
                                  const std::string& key) const;

  /// Transactions matching a predicate, oldest first (audit queries).
  std::vector<Transaction> find_transactions(
      const std::function<bool(const Transaction&)>& predicate) const;

  /// Full-chain integrity check: hash links, block hashes, Merkle roots.
  Status validate_chain() const;

  /// Testing hook: corrupt a committed transaction in place.
  void tamper_for_test(std::size_t block_index, std::size_t tx_index,
                       const std::string& key, const std::string& value);

 private:
  struct BroadcastResult {
    std::size_t acknowledged = 0;  // followers every message round reached
    SimTime charged = 0;           // sim time this round advanced the clock
  };

  const SmartContract* find_contract(const std::string& name) const;
  /// Charges one leader->peers broadcast round. `acknowledged` counts how
  /// many of the peers.size()-1 followers the round reached (all, without
  /// a network); `charged` is the clock time the round itself consumed.
  BroadcastResult charge_broadcast(std::size_t message_bytes);
  std::size_t required_responsive_peers() const;

  // Callers hold mu_.
  Result<std::string> submit_locked(const std::string& contract,
                                    std::map<std::string, std::string> args,
                                    const std::string& submitter);
  Result<CommitReceipt> commit_block_locked();

  mutable std::mutex mu_;
  LedgerConfig config_;
  ClockPtr clock_;
  LogPtr log_;
  net::SimNetwork* network_;
  obs::MetricsPtr metrics_;  // may be null
  IdGenerator ids_;
  std::map<std::string, std::unique_ptr<SmartContract>> contracts_;
  std::vector<Transaction> pending_;
  std::vector<Block> chain_;
  WorldState state_;
};

}  // namespace hc::blockchain
