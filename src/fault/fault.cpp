#include "fault/fault.h"

namespace hc::fault {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "unknown";
}

FaultPlan& FaultPlan::add_rule(FaultRule rule) {
  rules.push_back(std::move(rule));
  return *this;
}

FaultPlan& FaultPlan::drop(std::string from, std::string to, double probability,
                           SimTime start, SimTime end) {
  return add_rule({std::move(from), std::move(to), FaultKind::kDrop, probability,
                   start, end, 0, std::numeric_limits<std::uint64_t>::max()});
}

FaultPlan& FaultPlan::delay(std::string from, std::string to, double probability,
                            SimTime extra_delay, SimTime start, SimTime end) {
  return add_rule({std::move(from), std::move(to), FaultKind::kDelay, probability,
                   start, end, extra_delay,
                   std::numeric_limits<std::uint64_t>::max()});
}

FaultPlan& FaultPlan::duplicate(std::string from, std::string to,
                                double probability, SimTime start, SimTime end) {
  return add_rule({std::move(from), std::move(to), FaultKind::kDuplicate,
                   probability, start, end, 0,
                   std::numeric_limits<std::uint64_t>::max()});
}

FaultPlan& FaultPlan::corrupt(std::string from, std::string to, double probability,
                              SimTime start, SimTime end) {
  return add_rule({std::move(from), std::move(to), FaultKind::kCorrupt,
                   probability, start, end, 0,
                   std::numeric_limits<std::uint64_t>::max()});
}

FaultPlan& FaultPlan::crash(std::string host, SimTime at, SimTime restart_at) {
  crashes.push_back({std::move(host), at, restart_at});
  return *this;
}

FaultInjector::FaultInjector(FaultPlan plan, ClockPtr clock, Rng rng,
                             obs::MetricsPtr metrics)
    : plan_(std::move(plan)),
      clock_(std::move(clock)),
      rng_(rng),
      metrics_(std::move(metrics)),
      triggers_(plan_.rules.size(), 0) {}

bool FaultInjector::host_down(const std::string& host) const {
  SimTime now = clock_->now();
  for (const auto& crash : plan_.crashes) {
    if (crash.host == host && now >= crash.at && now < crash.restart_at) {
      return true;
    }
  }
  return false;
}

namespace {

bool endpoint_matches(const std::string& pattern, const std::string& endpoint) {
  return pattern.empty() || pattern == endpoint;
}

}  // namespace

FaultDecision FaultInjector::on_message(const std::string& from,
                                        const std::string& to) {
  FaultDecision decision;
  SimTime now = clock_->now();
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (now < rule.start || now >= rule.end) continue;
    if (!endpoint_matches(rule.from, from) || !endpoint_matches(rule.to, to)) {
      continue;
    }
    if (triggers_[i] >= rule.max_triggers) continue;
    if (!rng_.bernoulli(rule.probability)) continue;
    ++triggers_[i];
    if (metrics_) {
      metrics_->add("hc.fault.injected." +
                    std::string(fault_kind_name(rule.kind)));
    }
    switch (rule.kind) {
      case FaultKind::kDrop: decision.drop = true; break;
      case FaultKind::kDelay: decision.extra_delay += rule.extra_delay; break;
      case FaultKind::kDuplicate: decision.duplicate = true; break;
      case FaultKind::kCorrupt: decision.corrupt = true; break;
    }
  }
  return decision;
}

void FaultInjector::corrupt_payload(Bytes& payload) {
  if (payload.empty()) return;
  int flips = static_cast<int>(rng_.uniform_int(1, 3));
  for (int f = 0; f < flips; ++f) {
    auto index = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(payload.size()) - 1));
    auto bit = static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
    payload[index] ^= bit;
  }
  if (metrics_) metrics_->add("hc.fault.corrupted_payloads");
}

std::uint64_t FaultInjector::rule_triggers(std::size_t index) const {
  return index < triggers_.size() ? triggers_[index] : 0;
}

FaultInjectorPtr make_injector(FaultPlan plan, ClockPtr clock, Rng rng,
                               obs::MetricsPtr metrics) {
  return std::make_shared<FaultInjector>(std::move(plan), std::move(clock), rng,
                                         std::move(metrics));
}

}  // namespace hc::fault
