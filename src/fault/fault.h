// Deterministic fault injection (hc::fault).
//
// The paper claims trustworthy operation across gateways, intercloud
// transfer, replicated storage and blockchain peers, but those claims are
// only meaningful under failure. FaultPlan is a declarative schedule of
// message faults (drop / delay / duplicate / corrupt) and host
// crash/restart events; FaultInjector evaluates it against the shared
// SimClock with an explicitly seeded Rng, so a given (seed, plan) pair
// produces byte-identical outcomes on every run — chaos testing without
// flakiness. The SimNetwork consults the injector on every message; higher
// layers (registry, replication) consult host liveness directly.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace hc::fault {

enum class FaultKind { kDrop, kDelay, kDuplicate, kCorrupt };

std::string_view fault_kind_name(FaultKind kind);

/// One probabilistic message-fault rule. Empty `from`/`to` are wildcards;
/// the rule is live in the sim-time window [start, end) and fires at most
/// `max_triggers` times (a budget, so plans can model transient glitches).
struct FaultRule {
  std::string from;
  std::string to;
  FaultKind kind = FaultKind::kDrop;
  double probability = 1.0;
  SimTime start = 0;
  SimTime end = std::numeric_limits<SimTime>::max();
  SimTime extra_delay = 0;  // kDelay only: latency added to the message
  std::uint64_t max_triggers = std::numeric_limits<std::uint64_t>::max();
};

/// Scheduled outage of one simulated host: down in [at, restart_at).
struct CrashEvent {
  std::string host;
  SimTime at = 0;
  SimTime restart_at = std::numeric_limits<SimTime>::max();  // never, by default
};

/// Declarative fault schedule. The builder methods return *this so plans
/// read as scenarios:
///
///   FaultPlan plan;
///   plan.drop("client", "gateway", 0.10)
///       .delay("", "replica-1", 1.0, 5 * kMillisecond)
///       .crash("replica-2", 2 * kSecond, 6 * kSecond);
struct FaultPlan {
  std::vector<FaultRule> rules;
  std::vector<CrashEvent> crashes;

  FaultPlan& add_rule(FaultRule rule);
  FaultPlan& drop(std::string from, std::string to, double probability,
                  SimTime start = 0,
                  SimTime end = std::numeric_limits<SimTime>::max());
  FaultPlan& delay(std::string from, std::string to, double probability,
                   SimTime extra_delay, SimTime start = 0,
                   SimTime end = std::numeric_limits<SimTime>::max());
  FaultPlan& duplicate(std::string from, std::string to, double probability,
                       SimTime start = 0,
                       SimTime end = std::numeric_limits<SimTime>::max());
  FaultPlan& corrupt(std::string from, std::string to, double probability,
                     SimTime start = 0,
                     SimTime end = std::numeric_limits<SimTime>::max());
  FaultPlan& crash(std::string host, SimTime at,
                   SimTime restart_at = std::numeric_limits<SimTime>::max());
};

/// What the injector decided for one message. At most one drop; delay,
/// duplication and corruption compose (a delayed duplicate is legal).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  SimTime extra_delay = 0;
};

/// Evaluates a FaultPlan deterministically. All randomness comes from the
/// injector's own seeded Rng (never the network's), and rules only draw
/// when their window matches, so decision sequences depend only on
/// (seed, plan, message sequence). Counters land under `hc.fault.*`.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, ClockPtr clock, Rng rng,
                obs::MetricsPtr metrics = nullptr);

  /// True while `host` is inside a scheduled [at, restart_at) outage.
  bool host_down(const std::string& host) const;

  /// Evaluates every live matching rule against one message, consuming
  /// trigger budgets and recording `hc.fault.injected.<kind>` counters.
  FaultDecision on_message(const std::string& from, const std::string& to);

  /// Deterministically flips 1–3 bits of `payload` (no-op when empty) —
  /// the wire-corruption primitive the HMAC fuzzers drive.
  void corrupt_payload(Bytes& payload);

  /// Total number of times rule `index` has fired.
  std::uint64_t rule_triggers(std::size_t index) const;

  const FaultPlan& plan() const { return plan_; }
  ClockPtr clock() const { return clock_; }

 private:
  FaultPlan plan_;
  ClockPtr clock_;
  mutable Rng rng_;
  obs::MetricsPtr metrics_;  // may be null
  std::vector<std::uint64_t> triggers_;
};

using FaultInjectorPtr = std::shared_ptr<FaultInjector>;

FaultInjectorPtr make_injector(FaultPlan plan, ClockPtr clock, Rng rng,
                               obs::MetricsPtr metrics = nullptr);

}  // namespace hc::fault
