#include "fault/resilience.h"

#include <algorithm>
#include <cmath>

namespace hc::fault {

SimTime RetryPolicy::backoff_for(int attempt) const {
  if (attempt <= 0) return 0;
  double backoff = static_cast<double>(initial_backoff) *
                   std::pow(multiplier, attempt - 1);
  double cap = static_cast<double>(max_backoff);
  return static_cast<SimTime>(std::min(backoff, cap));
}

SimTime RetryPolicy::backoff_with_jitter(int attempt, Rng& rng) const {
  SimTime base = backoff_for(attempt);
  if (jitter <= 0.0 || base == 0) return base;
  auto spread = static_cast<SimTime>(jitter * static_cast<double>(base));
  return base + (spread > 0 ? rng.uniform_int(0, spread) : 0);
}

bool retryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIntegrityError;
}

Deadline::Deadline(const SimClock& clock, SimTime budget)
    : clock_(&clock),
      deadline_(budget <= 0 ? std::numeric_limits<SimTime>::max()
                            : clock.now() + budget) {}

bool Deadline::expired() const { return clock_->now() > deadline_; }

Status Deadline::check(const std::string& what) const {
  if (!expired()) return Status::ok();
  return Status(StatusCode::kUnavailable,
                what + " timed out at " + format_duration(clock_->now()));
}

std::string_view breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, ClockPtr clock,
                               obs::MetricsPtr metrics)
    : config_(std::move(config)), clock_(std::move(clock)),
      metrics_(std::move(metrics)) {}

void CircuitBreaker::transition(BreakerState next) {
  if (state_ == next) return;
  state_ = next;
  if (next == BreakerState::kOpen) opened_at_ = clock_->now();
  if (next != BreakerState::kHalfOpen) half_open_successes_ = 0;
  if (metrics_) {
    std::string prefix = "hc.fault.breaker." + config_.name;
    metrics_->add(prefix + "." + std::string(breaker_state_name(next)));
    metrics_->set_gauge(prefix + ".state", static_cast<double>(static_cast<int>(state())));
  }
}

BreakerState CircuitBreaker::state() const {
  if (state_ == BreakerState::kOpen &&
      clock_->now() >= opened_at_ + config_.open_cooldown) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

void CircuitBreaker::sync() {
  if (state_ == BreakerState::kOpen &&
      clock_->now() >= opened_at_ + config_.open_cooldown) {
    transition(BreakerState::kHalfOpen);
  }
}

Status CircuitBreaker::allow() {
  sync();
  if (state_ == BreakerState::kOpen) {
    return Status(StatusCode::kUnavailable,
                  "circuit '" + config_.name + "' is open");
  }
  return Status::ok();
}

void CircuitBreaker::record_success() {
  sync();
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen &&
      ++half_open_successes_ >= config_.half_open_successes) {
    transition(BreakerState::kClosed);
  }
}

void CircuitBreaker::record_failure() {
  sync();
  ++consecutive_failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // A failed probe re-opens immediately (fresh cooldown): still sick.
    transition(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    transition(BreakerState::kOpen);
  }
}

}  // namespace hc::fault
