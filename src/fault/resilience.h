// Resilience primitives (hc::fault): retry with exponential backoff,
// per-call timeouts, and a circuit breaker — all on the shared SimClock.
//
// These are the countermeasures the hot paths (gateway, intercloud
// transfer, service selection, storage replication, blockchain commit)
// deploy against the faults FaultInjector injects. Backoff jitter draws
// from an explicitly seeded Rng, so a retry schedule is a pure function of
// (policy, seed) and chaos tests can pin it exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace hc::fault {

/// Exponential backoff with deterministic jitter and two budgets: a count
/// budget (max_attempts) and a sim-time budget (total_budget, covering
/// work + backoff). backoff_for(k) = min(initial * multiplier^(k-1), cap)
/// before the k-th retry; attempt 0 never waits.
struct RetryPolicy {
  int max_attempts = 3;
  SimTime initial_backoff = 1 * kMillisecond;
  double multiplier = 2.0;
  SimTime max_backoff = 30 * kSecond;
  double jitter = 0.0;  // adds uniform [0, jitter * backoff]
  SimTime total_budget = std::numeric_limits<SimTime>::max();

  /// Base (jitter-free) backoff before retry `attempt` (1-based); 0 for
  /// attempt <= 0. Monotonically non-decreasing in `attempt`.
  SimTime backoff_for(int attempt) const;

  /// backoff_for(attempt) plus the deterministic jitter draw.
  SimTime backoff_with_jitter(int attempt, Rng& rng) const;
};

/// Is this an operational failure worth retrying? Unavailability (drops,
/// down hosts, timeouts) and in-flight corruption are; validation and
/// permission failures are not.
bool retryable(const Status& status);

namespace detail {
inline const Status& status_of(const Status& status) { return status; }
template <typename T>
const Status& status_of(const Result<T>& result) { return result.status(); }
}  // namespace detail

/// Runs `fn` under `policy`: re-invokes on retryable failures, charging
/// each backoff on `clock`, until success, a non-retryable failure, or a
/// budget is exhausted. `fn` returns Status or Result<T>; the last outcome
/// is returned. When `metrics` is non-null, retries and exhaustions are
/// counted under `<metric_prefix>.retries` / `<metric_prefix>.exhausted`.
template <typename Fn>
auto with_retry(const RetryPolicy& policy, SimClock& clock, Rng& rng, Fn&& fn,
                obs::MetricsRegistry* metrics = nullptr,
                const std::string& metric_prefix = "hc.fault.retry")
    -> std::invoke_result_t<Fn> {
  SimTime start = clock.now();
  auto outcome = fn();
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    if (outcome.is_ok() || !retryable(detail::status_of(outcome))) return outcome;
    SimTime backoff = policy.backoff_with_jitter(attempt, rng);
    if (clock.now() - start + backoff > policy.total_budget) break;
    clock.advance(backoff);
    if (metrics) metrics->add(metric_prefix + ".retries");
    outcome = fn();
  }
  if (!outcome.is_ok() && metrics) metrics->add(metric_prefix + ".exhausted");
  return outcome;
}

/// Sim-time deadline for one call: arm it before the work, then check().
class Deadline {
 public:
  /// `budget` <= 0 means no deadline.
  Deadline(const SimClock& clock, SimTime budget);

  bool expired() const;

  /// kOk while within budget; kUnavailable ("<what> timed out ...") once
  /// the clock has passed it — timeouts are retryable unavailability.
  Status check(const std::string& what) const;

 private:
  const SimClock* clock_;
  SimTime deadline_;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view breaker_state_name(BreakerState state);

struct CircuitBreakerConfig {
  std::string name = "default";   // metric key: hc.fault.breaker.<name>.*
  int failure_threshold = 5;      // consecutive failures that open the circuit
  SimTime open_cooldown = 10 * kSecond;  // open -> half-open probe delay
  int half_open_successes = 2;    // probe successes that close it again
};

/// Classic closed -> open -> half-open -> closed circuit breaker, clocked
/// on sim time. Callers ask allow() before the protected call and report
/// record_success()/record_failure() after it; when open, allow() fails
/// fast with kUnavailable so a dead dependency stops costing latency.
/// Every state transition emits an `hc.fault.breaker.<name>.<transition>`
/// counter and the current state lands in a gauge.
class CircuitBreaker {
 public:
  CircuitBreaker(CircuitBreakerConfig config, ClockPtr clock,
                 obs::MetricsPtr metrics = nullptr);

  /// kOk when a call may proceed. Flips open -> half-open once the
  /// cooldown has elapsed (the probe that sees it transitions the state).
  Status allow();

  void record_success();
  void record_failure();

  /// Current state, cooldown-aware (an open breaker whose cooldown has
  /// elapsed reports kHalfOpen without mutating until the next allow()).
  BreakerState state() const;

  int consecutive_failures() const { return consecutive_failures_; }
  const CircuitBreakerConfig& config() const { return config_; }

 private:
  void transition(BreakerState next);
  void sync();  // applies the cooldown-elapsed open -> half-open flip

  CircuitBreakerConfig config_;
  ClockPtr clock_;
  obs::MetricsPtr metrics_;  // may be null
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  SimTime opened_at_ = 0;
};

}  // namespace hc::fault
