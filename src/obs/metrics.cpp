#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/executor.h"

namespace hc::obs {

std::string_view metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds(std::move(bucket_bounds)) {
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  counts.assign(bounds.size() + 1, 0);
}

void Histogram::observe(double value) {
  std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds.begin(), bounds.end(), value) -
                               bounds.begin());
  ++counts[bucket];
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank: the smallest sample index (1-based) covering quantile q.
  std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    if (cumulative + counts[b] >= rank) {
      double lower = b == 0 ? 0.0 : bounds[b - 1];
      double upper = b < bounds.size() ? bounds[b] : max;
      double position = static_cast<double>(rank - cumulative) /
                        static_cast<double>(counts[b]);
      double value = lower + (upper - lower) * position;
      return std::clamp(value, min, max);
    }
    cumulative += counts[b];
  }
  return max;  // unreachable when count > 0
}

void Histogram::merge(const Histogram& other) {
  if (bounds != other.bounds) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

const std::vector<double>& default_latency_bounds_us() {
  static const std::vector<double> kBounds = {
      1,       2,       5,       10,      20,       50,       100,      200,
      500,     1000,    2000,    5000,    10000,    20000,    50000,    100000,
      200000,  500000,  1000000, 2000000, 5000000,  10000000, 30000000, 60000000};
  return kBounds;
}

MetricsRegistry::MetricsRegistry(const MetricsRegistry& other) {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    std::lock_guard lock(other.shards_[i].mu);
    shards_[i].metrics = other.shards_[i].metrics;
  }
}

MetricsRegistry& MetricsRegistry::operator=(const MetricsRegistry& other) {
  if (this == &other) return *this;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    std::scoped_lock lock(shards_[i].mu, other.shards_[i].mu);
    shards_[i].metrics = other.shards_[i].metrics;
  }
  return *this;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& name) {
  return shards_[exec::shard_by(name, kShardCount)];
}

const MetricsRegistry::Shard& MetricsRegistry::shard_for(
    const std::string& name) const {
  return shards_[exec::shard_by(name, kShardCount)];
}

Metric& MetricsRegistry::upsert(Shard& shard, const std::string& name,
                                MetricType type, std::string_view unit) {
  auto it = shard.metrics.find(name);
  if (it == shard.metrics.end()) {
    Metric metric;
    metric.type = type;
    metric.unit = std::string(unit);
    it = shard.metrics.emplace(name, std::move(metric)).first;
  } else if (it->second.type != type) {
    throw std::invalid_argument("metric '" + name + "' is a " +
                                std::string(metric_type_name(it->second.type)) +
                                ", not a " + std::string(metric_type_name(type)));
  }
  return it->second;
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta,
                          std::string_view unit) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mu);
  upsert(shard, name, MetricType::kCounter, unit).counter_value += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value,
                                std::string_view unit) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mu);
  upsert(shard, name, MetricType::kGauge, unit).gauge_value = value;
}

void MetricsRegistry::observe(const std::string& name, double value,
                              std::string_view unit,
                              const std::vector<double>* bounds) {
  Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mu);
  auto it = shard.metrics.find(name);
  if (it == shard.metrics.end()) {
    Metric metric;
    metric.type = MetricType::kHistogram;
    metric.unit = std::string(unit);
    metric.histogram = Histogram(bounds ? *bounds : default_latency_bounds_us());
    it = shard.metrics.emplace(name, std::move(metric)).first;
  } else if (it->second.type != MetricType::kHistogram) {
    throw std::invalid_argument("metric '" + name + "' is a " +
                                std::string(metric_type_name(it->second.type)) +
                                ", not a histogram");
  }
  it->second.histogram.observe(value);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mu);
  auto it = shard.metrics.find(name);
  return it != shard.metrics.end() && it->second.type == MetricType::kCounter
             ? it->second.counter_value
             : 0;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mu);
  auto it = shard.metrics.find(name);
  return it != shard.metrics.end() && it->second.type == MetricType::kGauge
             ? it->second.gauge_value
             : 0.0;
}

const Histogram* MetricsRegistry::histogram(const std::string& name) const {
  const Shard& shard = shard_for(name);
  std::lock_guard lock(shard.mu);
  auto it = shard.metrics.find(name);
  return it != shard.metrics.end() && it->second.type == MetricType::kHistogram
             ? &it->second.histogram
             : nullptr;
}

std::size_t MetricsRegistry::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.metrics.size();
  }
  return total;
}

std::map<std::string, Metric> MetricsRegistry::metrics() const {
  std::map<std::string, Metric> merged;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    merged.insert(shard.metrics.begin(), shard.metrics.end());
  }
  return merged;
}

void MetricsRegistry::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.metrics.clear();
  }
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  if (this == &other) {
    // Self-merge doubles counters/histograms; do it from a snapshot to
    // avoid locking one shard twice.
    MetricsRegistry copy(other);
    merge(copy);
    return;
  }
  // Names shard identically in both registries, so merging is pairwise by
  // shard index; scoped_lock's deadlock avoidance covers crossed merges.
  for (std::size_t i = 0; i < kShardCount; ++i) {
    std::scoped_lock lock(shards_[i].mu, other.shards_[i].mu);
    for (const auto& [name, theirs] : other.shards_[i].metrics) {
      auto it = shards_[i].metrics.find(name);
      if (it == shards_[i].metrics.end()) {
        shards_[i].metrics.emplace(name, theirs);
        continue;
      }
      Metric& ours = it->second;
      if (ours.type != theirs.type || ours.unit != theirs.unit) {
        throw std::invalid_argument("MetricsRegistry::merge: metric '" + name +
                                    "' type/unit mismatch");
      }
      switch (ours.type) {
        case MetricType::kCounter:
          ours.counter_value += theirs.counter_value;
          break;
        case MetricType::kGauge:
          ours.gauge_value = theirs.gauge_value;
          break;
        case MetricType::kHistogram:
          ours.histogram.merge(theirs.histogram);
          break;
      }
    }
  }
}

MetricsPtr make_metrics() { return std::make_shared<MetricsRegistry>(); }

}  // namespace hc::obs
