// Metrics exporters — the `metrics.json` / `metrics.csv` emission contract.
//
// Contract (locked by tests/obs_export_test.cpp; exporter drift is a
// breaking change):
//   - metrics appear in lexicographic name order,
//   - every metric row/object carries `name`, `type`
//     ("counter"|"gauge"|"histogram") and `unit`,
//   - counters and gauges carry `value`,
//   - histograms carry `count`, `sum`, `min`, `max`, `p50`, `p95`, `p99`
//     and (JSON only) a `buckets` array of {"le": <upper bound or "+inf">,
//     "count": n} objects,
//   - numbers with no fractional part print as integers; other values use
//     shortest-round-trip %.6g.
// Benches write these artifacts via --metrics-out (e.g. BENCH_caching.json)
// so successive PRs accumulate a perf trajectory.
#pragma once

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace hc::obs {

/// Serializes the registry as the metrics.json document.
std::string to_json(const MetricsRegistry& registry);

/// Serializes the registry as metrics.csv (header + one row per metric).
std::string to_csv(const MetricsRegistry& registry);

/// Writes to_json(registry) to `path`. kUnavailable when the file cannot
/// be opened.
Status write_metrics_json(const MetricsRegistry& registry, const std::string& path);

/// Writes to_csv(registry) to `path`.
Status write_metrics_csv(const MetricsRegistry& registry, const std::string& path);

}  // namespace hc::obs
