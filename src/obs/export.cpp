#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace hc::obs {

namespace {

/// 42 -> "42", 0.5 -> "0.5", 1234567.25 -> "1.23457e+06". Integral values
/// print without a decimal point so counters and sim-time sums stay stable
/// in golden artifacts.
std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string histogram_stat(const Histogram& h, double value) {
  // Empty histograms have min=+inf/max=-inf; export zeros instead.
  return format_number(h.count == 0 ? 0.0 : value);
}

Status write_file(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status(StatusCode::kUnavailable, "cannot open " + path + " for writing");
  }
  out << content;
  out.close();
  if (!out) return Status(StatusCode::kUnavailable, "short write to " + path);
  return Status::ok();
}

}  // namespace

std::string to_json(const MetricsRegistry& registry) {
  std::string out = "{\n  \"metrics\": [";
  bool first_metric = true;
  for (const auto& [name, metric] : registry.metrics()) {
    out += first_metric ? "\n" : ",\n";
    first_metric = false;
    out += "    {\"name\": \"" + name + "\", \"type\": \"" +
           std::string(metric_type_name(metric.type)) + "\", \"unit\": \"" +
           metric.unit + "\"";
    switch (metric.type) {
      case MetricType::kCounter:
        out += ", \"value\": " + format_number(static_cast<double>(metric.counter_value));
        break;
      case MetricType::kGauge:
        out += ", \"value\": " + format_number(metric.gauge_value);
        break;
      case MetricType::kHistogram: {
        const Histogram& h = metric.histogram;
        out += ", \"count\": " + format_number(static_cast<double>(h.count));
        out += ", \"sum\": " + histogram_stat(h, h.sum);
        out += ", \"min\": " + histogram_stat(h, h.min);
        out += ", \"max\": " + histogram_stat(h, h.max);
        out += ", \"p50\": " + format_number(h.p50());
        out += ", \"p95\": " + format_number(h.p95());
        out += ", \"p99\": " + format_number(h.p99());
        out += ", \"buckets\": [";
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          if (b > 0) out += ", ";
          std::string le = b < h.bounds.size()
                               ? format_number(h.bounds[b])
                               : std::string("\"+inf\"");
          out += "{\"le\": " + le +
                 ", \"count\": " + format_number(static_cast<double>(h.counts[b])) + "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string to_csv(const MetricsRegistry& registry) {
  std::string out = "name,type,unit,value,count,sum,min,max,p50,p95,p99\n";
  for (const auto& [name, metric] : registry.metrics()) {
    out += name + "," + std::string(metric_type_name(metric.type)) + "," + metric.unit;
    switch (metric.type) {
      case MetricType::kCounter:
        out += "," + format_number(static_cast<double>(metric.counter_value)) +
               ",,,,,,,";
        break;
      case MetricType::kGauge:
        out += "," + format_number(metric.gauge_value) + ",,,,,,,";
        break;
      case MetricType::kHistogram: {
        const Histogram& h = metric.histogram;
        out += ",," + format_number(static_cast<double>(h.count)) + "," +
               histogram_stat(h, h.sum) + "," + histogram_stat(h, h.min) + "," +
               histogram_stat(h, h.max) + "," + format_number(h.p50()) + "," +
               format_number(h.p95()) + "," + format_number(h.p99());
        break;
      }
    }
    out += "\n";
  }
  return out;
}

Status write_metrics_json(const MetricsRegistry& registry, const std::string& path) {
  return write_file(to_json(registry), path);
}

Status write_metrics_csv(const MetricsRegistry& registry, const std::string& path) {
  return write_file(to_csv(registry), path);
}

}  // namespace hc::obs
