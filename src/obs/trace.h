// TraceSpan — scoped sim-clock timer feeding a latency histogram.
//
// The platform charges all work on the shared SimClock (components advance
// it as they "compute"); a TraceSpan snapshots the clock at construction
// and records the elapsed sim time into a named histogram when finished or
// destroyed. Both the registry and the clock are nullable so instrumented
// code paths cost nothing when observability is not wired in.
//
//   obs::TraceSpan span(metrics.get(), clock.get(), "hc.gateway.request_us");
//   ... do clock-charged work ...
//   // span destructor records elapsed microseconds
#pragma once

#include <chrono>
#include <string>

#include "common/clock.h"
#include "obs/metrics.h"

namespace hc::obs {

class TraceSpan {
 public:
  /// Either pointer may be null, making the span a no-op. The histogram is
  /// created with default_latency_bounds_us() on first use.
  TraceSpan(MetricsRegistry* metrics, const SimClock* clock, std::string name);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

  /// Records the sample now and returns the elapsed sim time. Idempotent:
  /// repeated calls return the duration frozen at the first finish().
  SimTime finish();

  /// Elapsed sim time so far without recording.
  SimTime elapsed() const;

 private:
  MetricsRegistry* metrics_;
  const SimClock* clock_;
  std::string name_;
  SimTime start_ = 0;
  SimTime took_ = 0;
  bool finished_ = false;
};

/// WallSpan — scoped *wall-clock* timer feeding a latency histogram.
///
/// The compute-plane kernels do real CPU work that the SimClock never sees,
/// so benches time them against std::chrono::steady_clock instead. Same
/// contract as TraceSpan (nullable registry = no-op, record on finish() or
/// destruction, idempotent); by convention names end in `_wall_us` so
/// sim-time and wall-time series stay distinguishable in one export.
///
///   obs::WallSpan span(metrics.get(), "hc.analytics.jmf.epoch_wall_us");
///   ... do real work ...
///   // span destructor records elapsed wall microseconds
class WallSpan {
 public:
  /// `metrics` may be null, making the span a no-op.
  WallSpan(MetricsRegistry* metrics, std::string name);

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  ~WallSpan();

  /// Records the sample now and returns the elapsed wall microseconds.
  /// Idempotent: repeated calls return the duration frozen at the first
  /// finish().
  double finish();

  /// Elapsed wall microseconds so far without recording.
  double elapsed_us() const;

 private:
  MetricsRegistry* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  double took_us_ = 0.0;
  bool finished_ = false;
};

}  // namespace hc::obs
