#include "obs/trace.h"

namespace hc::obs {

TraceSpan::TraceSpan(MetricsRegistry* metrics, const SimClock* clock,
                     std::string name)
    : metrics_(metrics), clock_(clock), name_(std::move(name)) {
  if (clock_) start_ = clock_->now();
}

TraceSpan::~TraceSpan() { finish(); }

SimTime TraceSpan::elapsed() const { return clock_ ? clock_->now() - start_ : 0; }

SimTime TraceSpan::finish() {
  if (!finished_) {
    finished_ = true;
    took_ = elapsed();
    if (metrics_ && clock_) {
      metrics_->observe(name_, static_cast<double>(took_), "us");
    }
  }
  return took_;
}

}  // namespace hc::obs
