#include "obs/trace.h"

namespace hc::obs {

TraceSpan::TraceSpan(MetricsRegistry* metrics, const SimClock* clock,
                     std::string name)
    : metrics_(metrics), clock_(clock), name_(std::move(name)) {
  if (clock_) start_ = clock_->now();
}

TraceSpan::~TraceSpan() { finish(); }

SimTime TraceSpan::elapsed() const { return clock_ ? clock_->now() - start_ : 0; }

SimTime TraceSpan::finish() {
  if (!finished_) {
    finished_ = true;
    took_ = elapsed();
    if (metrics_ && clock_) {
      metrics_->observe(name_, static_cast<double>(took_), "us");
    }
  }
  return took_;
}

WallSpan::WallSpan(MetricsRegistry* metrics, std::string name)
    : metrics_(metrics), name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

WallSpan::~WallSpan() { finish(); }

double WallSpan::elapsed_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   start_)
      .count();
}

double WallSpan::finish() {
  if (!finished_) {
    finished_ = true;
    took_us_ = elapsed_us();
    if (metrics_) metrics_->observe(name_, took_us_, "us");
  }
  return took_us_;
}

}  // namespace hc::obs
