// Observability substrate: the metrics registry (hc::obs).
//
// The paper's performance claims ("caching improves performance by orders
// of magnitude", Section IV.C; "public-key encryption is too expensive at
// ingest scale", Section III) are architectural — quantifying them requires
// the platform to *measure itself*. MetricsRegistry is the platform-wide
// sink: named counters (monotonic), gauges (last-write-wins), and
// fixed-bucket latency histograms with quantile extraction. Subsystems
// receive a nullable MetricsPtr through their deps structs (exactly like
// LogPtr) so everything stays usable without observability wired in.
//
// Naming convention: `hc.<module>.<metric>` with `_us` suffixes for
// sim-time latency histograms (e.g. hc.ingestion.stage.decrypt_us,
// hc.cache.client.hits). All time-valued metrics are charged on the shared
// SimClock, never wall time, so recorded numbers are deterministic.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hc::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

std::string_view metric_type_name(MetricType type);

/// Fixed-bucket histogram. `bounds` are ascending inclusive upper edges;
/// one implicit overflow bucket follows the last bound, so `counts` always
/// has bounds.size() + 1 entries. Designed for nonnegative measures
/// (latencies, sizes): the first bucket's lower edge is 0.
struct Histogram {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  explicit Histogram(std::vector<double> bucket_bounds = {});

  void observe(double value);

  /// Quantile by in-bucket linear interpolation, clamped to the observed
  /// [min, max] (so single-sample and bucket-aligned distributions are
  /// exact). q in [0, 1]; returns 0 for an empty histogram. The overflow
  /// bucket interpolates between the last bound and the observed max.
  double quantile(double q) const;

  // Thread-safety note: a bare Histogram is single-writer — observe() and
  // merge() mutate counts/sum/min/max with no internal synchronization.
  // Concurrent recording must go through MetricsRegistry, whose sharded
  // locks serialize every observe/merge on the owning shard.

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Bucketwise merge. Throws std::invalid_argument on bound mismatch.
  void merge(const Histogram& other);
};

/// Default latency buckets in microseconds: 1us .. 60s on a 1-2-5 ladder.
/// Wide enough for a client-cache hit (~10us) and a WAN origin fetch
/// (~100ms) to land many buckets apart — the orders-of-magnitude gap the
/// cache experiments quantify.
const std::vector<double>& default_latency_bounds_us();

/// One named metric. Exactly one of the value fields is meaningful,
/// selected by `type`; `unit` rides into the exporters ("1", "us",
/// "bytes", ...).
struct Metric {
  MetricType type = MetricType::kCounter;
  std::string unit = "1";
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  Histogram histogram;
};

/// Platform-wide metrics sink. Metrics are created lazily on first use;
/// re-using a name with a different type is a programming error and
/// throws. Iteration order (and therefore export order) is the metric
/// name's lexicographic order — the emission contract relies on this.
///
/// Thread-safe via sharded locks: names are distributed over kShardCount
/// independent (mutex, map) shards keyed by exec::shard_by, so ingestion
/// workers recording different metrics rarely contend. Aggregate state is
/// order-independent — counter adds commute, histogram merges are
/// bucketwise — so a parallel run records the same registry contents as a
/// serial one. (Gauges are last-write-wins; concurrent writers of the
/// *same* gauge are races by construction and the platform doesn't do
/// that.) histogram() returns a pointer into a shard; dereferencing it is
/// safe once concurrent writers have quiesced (after drain/join).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  /// Copies snapshot the source's shards under their locks; the copy gets
  /// fresh, uncontended mutexes.
  MetricsRegistry(const MetricsRegistry& other);
  MetricsRegistry& operator=(const MetricsRegistry& other);

  /// Increments a counter (created at 0 on first touch). Counters are
  /// monotonic by construction: deltas are unsigned.
  void add(const std::string& name, std::uint64_t delta = 1,
           std::string_view unit = "1");

  /// Sets a gauge to an instantaneous value.
  void set_gauge(const std::string& name, double value, std::string_view unit = "1");

  /// Records one histogram sample. `bounds` applies only on first touch;
  /// nullptr selects default_latency_bounds_us().
  void observe(const std::string& name, double value, std::string_view unit = "us",
               const std::vector<double>* bounds = nullptr);

  // --- reads (absent names return zero values, not errors) ---------------
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  /// nullptr when the name is absent or not a histogram.
  const Histogram* histogram(const std::string& name) const;

  bool empty() const { return size() == 0; }
  std::size_t size() const;

  /// Merged snapshot of every shard, lexicographically ordered — the
  /// exporters' iteration source. Returns by value (it is a point-in-time
  /// copy, coherent per shard).
  std::map<std::string, Metric> metrics() const;

  /// Merges another registry in: counters add, gauges take the other's
  /// value, histograms merge bucketwise. Type or unit mismatch on a shared
  /// name throws std::invalid_argument.
  void merge(const MetricsRegistry& other);

  void clear();

  static constexpr std::size_t kShardCount = 16;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Metric> metrics;
  };

  Shard& shard_for(const std::string& name);
  const Shard& shard_for(const std::string& name) const;
  /// Caller must hold the shard's lock.
  static Metric& upsert(Shard& shard, const std::string& name, MetricType type,
                        std::string_view unit);

  std::array<Shard, kShardCount> shards_;
};

using MetricsPtr = std::shared_ptr<MetricsRegistry>;

MetricsPtr make_metrics();

}  // namespace hc::obs
