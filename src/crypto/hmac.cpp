#include "crypto/hmac.h"

#include "crypto/sha256.h"

namespace hc::crypto {

Bytes hmac_sha256(const Bytes& key, const Bytes& data) {
  constexpr std::size_t kBlockSize = 64;

  Bytes k = key;
  if (k.size() > kBlockSize) k = sha256(k);
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  Bytes inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

bool hmac_verify(const Bytes& key, const Bytes& data, const Bytes& tag) {
  return constant_time_equal(hmac_sha256(key, data), tag);
}

std::vector<bool> hmac_verify_batch(const std::vector<HmacVerifyItem>& items) {
  std::vector<bool> out;
  out.reserve(items.size());
  for (const HmacVerifyItem& item : items) {
    out.push_back(item.key && item.data && item.tag &&
                  hmac_verify(*item.key, *item.data, *item.tag));
  }
  return out;
}

}  // namespace hc::crypto
