#include "crypto/hmac.h"

#include "crypto/sha256.h"
#include "crypto/sha256_multi.h"

namespace hc::crypto {

Bytes hmac_sha256(const Bytes& key, const Bytes& data) {
  constexpr std::size_t kBlockSize = 64;

  Bytes k = key;
  if (k.size() > kBlockSize) k = sha256(k);
  k.resize(kBlockSize, 0);

  Bytes ipad(kBlockSize), opad(kBlockSize);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  Bytes inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

bool hmac_verify(const Bytes& key, const Bytes& data, const Bytes& tag) {
  return constant_time_equal(hmac_sha256(key, data), tag);
}

namespace {

/// Constant-time span comparison (the Bytes overload lives in bytes.cpp;
/// the view path avoids materializing Bytes for tags inside larger blobs).
bool ct_equal(const std::uint8_t* a, std::size_t a_len, const std::uint8_t* b,
              std::size_t b_len) {
  if (a_len != b_len) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a_len; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace

std::vector<bool> hmac_verify_batch(const std::vector<HmacVerifyItem>& items) {
  // Recompute all expected tags on the 4-lane lock-step core; malformed
  // (null-pointer) items get a dummy lane so indexes stay aligned and are
  // forced to false afterwards.
  static const Bytes kEmptyKey;
  std::vector<HmacInput> inputs;
  inputs.reserve(items.size());
  for (const HmacVerifyItem& item : items) {
    bool ok = item.key && item.data && item.tag;
    inputs.push_back(HmacInput{ok ? item.key : &kEmptyKey,
                               ok ? item.data->data() : nullptr,
                               ok ? item.data->size() : 0});
  }
  std::vector<Bytes> expected = hmac_sha256_multi(inputs);
  std::vector<bool> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const HmacVerifyItem& item = items[i];
    out.push_back(item.key && item.data && item.tag &&
                  constant_time_equal(expected[i], *item.tag));
  }
  return out;
}

std::vector<bool> hmac_verify_batch(const std::vector<HmacVerifyView>& items) {
  static const Bytes kEmptyKey;
  std::vector<HmacInput> inputs;
  inputs.reserve(items.size());
  for (const HmacVerifyView& item : items) {
    bool ok = item.key && (item.data || item.data_len == 0) && item.tag;
    inputs.push_back(HmacInput{ok ? item.key : &kEmptyKey,
                               ok ? item.data : nullptr, ok ? item.data_len : 0});
  }
  std::vector<Bytes> expected = hmac_sha256_multi(inputs);
  std::vector<bool> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const HmacVerifyView& item = items[i];
    out.push_back(item.key && (item.data || item.data_len == 0) && item.tag &&
                  ct_equal(expected[i].data(), expected[i].size(), item.tag,
                           item.tag_len));
  }
  return out;
}

}  // namespace hc::crypto
