// Toy-scale RSA: keypairs, block encryption, signatures, hybrid envelopes.
//
// The platform needs asymmetric primitives in several places — client
// upload certificates issued at registration (Section II.B), image and
// container signing (Section IV.B.2), attestation quotes — and the paper's
// explicit claim that "public key encryption is too expensive to maintain
// the scalability of the system" motivates measuring its cost against AES.
//
// SECURITY NOTE: this RSA uses 62-bit moduli so it fits native arithmetic
// (__int128 mulmod). It is *functionally* RSA — keygen, trapdoor, correct
// cost *ordering* vs symmetric crypto — but offers no real-world security.
// DESIGN.md records this substitution; swapping in a big-int RSA would not
// change any API here.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"

namespace hc::crypto {

struct PublicKey {
  std::uint64_t n = 0;  // modulus
  std::uint64_t e = 0;  // public exponent

  /// Stable fingerprint used by key-approval lists (image management).
  std::string fingerprint() const;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

struct PrivateKey {
  std::uint64_t n = 0;
  std::uint64_t d = 0;  // private exponent
};

struct KeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// Generates a fresh keypair from two random ~31-bit primes.
KeyPair generate_keypair(Rng& rng);

/// Raw RSA on 4-byte chunks (each chunk value < n). Output is a sequence of
/// 8-byte big-endian blocks. Deliberately chunk-per-exponentiation so the
/// cost scales with payload size like real hybrid-free RSA would.
Bytes rsa_encrypt(const PublicKey& pub, const Bytes& plaintext);
Bytes rsa_decrypt(const PrivateKey& priv, const Bytes& ciphertext);

/// Signature over sha256(data): the 32-byte digest is chunked and each chunk
/// exponentiated with the private key.
Bytes rsa_sign(const PrivateKey& priv, const Bytes& data);
bool rsa_verify(const PublicKey& pub, const Bytes& data, const Bytes& signature);

/// Hybrid envelope (what production systems actually do): fresh AES key,
/// AES-CBC body, RSA-wrapped key, HMAC integrity tag. The tag implements
/// the paper's Section IV.B.1 recommendation — "we recommend using HMACs
/// instead of digital signatures" for upload integrity — keyed by the
/// session secret so only the sealer and the key holder can produce it.
struct Envelope {
  Bytes wrapped_key;  // rsa_encrypt of the AES key
  Bytes body;         // aes_cbc iv||ciphertext
  Bytes tag;          // hmac_sha256(session_key, body)
};

Envelope envelope_seal(const PublicKey& pub, const Bytes& plaintext, Rng& rng);

/// Session-mode seal: wraps a caller-held session key instead of drawing a
/// fresh one, spending `rng` only on the CBC IV. A client that keeps one
/// session key across uploads produces byte-identical wrapped_key fields
/// (the toy RSA has no padding randomness), which is what makes the
/// server-side SessionKeyCache effective — each distinct session costs one
/// RSA unwrap total instead of one per upload. Opt-in: the default
/// envelope_seal's per-upload fresh keys (and rng draws) are unchanged.
Envelope envelope_seal_with_key(const PublicKey& pub, const Bytes& session_key,
                                const Bytes& plaintext, Rng& rng);

/// Unwraps, verifies the HMAC tag (constant time), then decrypts. Throws
/// std::invalid_argument on integrity failure or malformed input.
Bytes envelope_open(const PrivateKey& priv, const Envelope& env);

// Staged envelope opening. envelope_open() above is
// unwrap -> tag check -> decrypt in one call; these expose the stages so a
// batch consumer (parallel ingestion) can unwrap each envelope's session
// key, verify all the HMAC tags together via hmac_verify_batch, and only
// then pay for AES decryption of the survivors.

/// Stage 1: recovers the AES session key (caller must secure_wipe it).
Bytes envelope_unwrap_key(const PrivateKey& priv, const Envelope& env);

/// Stage 2: constant-time integrity check under an unwrapped session key.
bool envelope_tag_ok(const Bytes& session_key, const Envelope& env);

/// Stage 3: decrypts the body. Only valid after the tag checked out.
Bytes envelope_decrypt_body(const Bytes& session_key, const Envelope& env);

/// Zero-copy envelope view: spans into a serialized staging blob (see
/// ingestion's pack_envelope framing). The staged path used to copy wrapped
/// key, tag and body into an Envelope before touching any of them; a view
/// lets the batch pipeline unwrap, tag-check (hmac_verify_batch's view
/// overload) and decrypt (aes_cbc_decrypt's span overload) straight out of
/// the blob. The blob must outlive the view.
struct EnvelopeView {
  const std::uint8_t* wrapped_key = nullptr;
  std::size_t wrapped_key_len = 0;
  const std::uint8_t* tag = nullptr;  // 32 bytes
  std::size_t tag_len = 0;
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;
};

/// Stage-1 unwrap for a view (copies only the wrapped-key field, which the
/// chunked RSA needs as a buffer; the body stays in place).
Bytes envelope_unwrap_key(const PrivateKey& priv, const EnvelopeView& env);

/// Stage-3 decrypt for a view.
Bytes envelope_decrypt_body(const Bytes& session_key, const EnvelopeView& env);

}  // namespace hc::crypto
