#include "crypto/graph_mac.h"

#include <algorithm>
#include <set>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace hc::crypto {

Status RecordGraph::add_node(const std::string& id, Bytes payload) {
  if (payloads.contains(id)) {
    return Status(StatusCode::kAlreadyExists, "node exists: " + id);
  }
  payloads.emplace(id, std::move(payload));
  edges.emplace(id, std::vector<std::string>{});
  return Status::ok();
}

Status RecordGraph::add_edge(const std::string& from, const std::string& to) {
  if (!payloads.contains(from) || !payloads.contains(to)) {
    return Status(StatusCode::kNotFound, "edge endpoint missing");
  }
  auto& successors = edges[from];
  if (std::find(successors.begin(), successors.end(), to) != successors.end()) {
    return Status(StatusCode::kAlreadyExists, "duplicate edge");
  }
  successors.push_back(to);
  return Status::ok();
}

namespace {

/// Tag(v) = HMAC(key, id || payload || sorted child tags).
Bytes node_tag(const Bytes& key, const std::string& id, const Bytes& payload,
               std::vector<Bytes> child_tags) {
  std::sort(child_tags.begin(), child_tags.end());
  Bytes material = to_bytes(id);
  material.push_back(0);
  material.insert(material.end(), payload.begin(), payload.end());
  material.push_back(0);
  for (const auto& tag : child_tags) {
    material.insert(material.end(), tag.begin(), tag.end());
  }
  return hmac_sha256(key, material);
}

enum class VisitState { kUnvisited, kInProgress, kDone };

/// Post-order tag computation; returns false on a cycle.
bool compute(const Bytes& key, const RecordGraph& graph, const std::string& node,
             std::map<std::string, VisitState>& state,
             std::map<std::string, Bytes>& tags) {
  auto state_it = state.find(node);
  if (state_it != state.end()) {
    if (state_it->second == VisitState::kInProgress) return false;  // cycle
    return true;
  }
  state[node] = VisitState::kInProgress;

  std::vector<Bytes> child_tags;
  auto edges_it = graph.edges.find(node);
  if (edges_it != graph.edges.end()) {
    for (const auto& child : edges_it->second) {
      if (!graph.payloads.contains(child)) return false;  // dangling edge
      if (!compute(key, graph, child, state, tags)) return false;
      child_tags.push_back(tags.at(child));
    }
  }
  tags[node] = node_tag(key, node, graph.payloads.at(node), std::move(child_tags));
  state[node] = VisitState::kDone;
  return true;
}

}  // namespace

Result<GraphTags> mac_graph(const Bytes& key, const RecordGraph& graph) {
  GraphTags result;
  std::map<std::string, VisitState> state;
  for (const auto& [id, payload] : graph.payloads) {
    if (!compute(key, graph, id, state, result.tags)) {
      return Status(StatusCode::kInvalidArgument,
                    "graph has a cycle or dangling edge");
    }
  }
  return result;
}

bool verify_subgraph(const Bytes& key, const RecordGraph& subgraph,
                     const std::string& root, const Bytes& expected_root_tag) {
  if (!subgraph.payloads.contains(root)) return false;
  std::map<std::string, VisitState> state;
  std::map<std::string, Bytes> tags;
  if (!compute(key, subgraph, root, state, tags)) return false;
  return constant_time_equal(tags.at(root), expected_root_tag);
}

Result<RecordGraph> extract_subgraph(const RecordGraph& graph, const std::string& root) {
  if (!graph.payloads.contains(root)) {
    return Status(StatusCode::kNotFound, "no node " + root);
  }
  RecordGraph out;
  std::set<std::string> visited;
  std::vector<std::string> stack{root};
  while (!stack.empty()) {
    std::string node = stack.back();
    stack.pop_back();
    if (!visited.insert(node).second) continue;
    (void)out.add_node(node, graph.payloads.at(node));
    auto edges_it = graph.edges.find(node);
    if (edges_it != graph.edges.end()) {
      for (const auto& child : edges_it->second) stack.push_back(child);
    }
  }
  // Second pass: edges among included nodes.
  for (const auto& node : visited) {
    auto edges_it = graph.edges.find(node);
    if (edges_it == graph.edges.end()) continue;
    for (const auto& child : edges_it->second) {
      (void)out.add_edge(node, child);
    }
  }
  return out;
}

}  // namespace hc::crypto
