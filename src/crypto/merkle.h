// Merkle hash tree with inclusion proofs.
//
// Section IV.B.1 discusses Merkle hash techniques for proving authenticity
// of shared HCLS data (and their leakage problem, addressed by the
// redactable signatures built on top of this tree in redactable.h).
// Also used by the blockchain module for per-block transaction roots.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace hc::crypto {

/// One step of an inclusion proof: sibling hash + which side it is on.
struct ProofNode {
  Bytes hash;
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<ProofNode>;

class MerkleTree {
 public:
  /// Builds a tree over the leaves' hashes. Odd nodes are promoted
  /// (Bitcoin-style duplication is deliberately avoided to keep proofs
  /// unambiguous). Empty input yields the hash of the empty string as root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Bytes& root() const { return levels_.back().front(); }
  std::size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for leaf `index`. Throws std::out_of_range.
  MerkleProof prove(std::size_t index) const;

  /// Verifies that `leaf_data` is at some position under `root` given
  /// `proof`. Static so verifiers need no tree.
  static bool verify(const Bytes& leaf_data, const MerkleProof& proof,
                     const Bytes& root);

  /// Hash used for leaves (domain-separated from interior nodes to prevent
  /// second-preimage splicing attacks).
  static Bytes hash_leaf(const Bytes& data);
  static Bytes hash_interior(const Bytes& left, const Bytes& right);

 private:
  std::size_t leaf_count_;
  std::vector<std::vector<Bytes>> levels_;  // levels_[0] = leaf hashes
};

}  // namespace hc::crypto
