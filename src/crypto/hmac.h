// HMAC-SHA256 (RFC 2104).
//
// The paper recommends "using HMACs instead of digital signatures" for
// integrity of ingested HCLS data (Section IV.B.1); bench_crypto
// quantifies that recommendation.
#pragma once

#include <vector>

#include "common/bytes.h"

namespace hc::crypto {

/// HMAC-SHA256 of `data` under `key`. 32-byte tag.
Bytes hmac_sha256(const Bytes& key, const Bytes& data);

/// Constant-time verification of a previously computed tag.
bool hmac_verify(const Bytes& key, const Bytes& data, const Bytes& tag);

/// One (key, data, tag) triple awaiting verification. Pointers alias the
/// caller's buffers — no copies — and must outlive the batch call.
struct HmacVerifyItem {
  const Bytes* key = nullptr;
  const Bytes* data = nullptr;
  const Bytes* tag = nullptr;
};

/// Verifies a batch of tags in one pass (parallel ingestion workers verify
/// a whole message batch at once). Each verdict is independent and
/// constant-time; out[i] corresponds to items[i].
std::vector<bool> hmac_verify_batch(const std::vector<HmacVerifyItem>& items);

}  // namespace hc::crypto
