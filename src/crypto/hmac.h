// HMAC-SHA256 (RFC 2104).
//
// The paper recommends "using HMACs instead of digital signatures" for
// integrity of ingested HCLS data (Section IV.B.1); bench_crypto
// quantifies that recommendation.
#pragma once

#include "common/bytes.h"

namespace hc::crypto {

/// HMAC-SHA256 of `data` under `key`. 32-byte tag.
Bytes hmac_sha256(const Bytes& key, const Bytes& data);

/// Constant-time verification of a previously computed tag.
bool hmac_verify(const Bytes& key, const Bytes& data, const Bytes& tag);

}  // namespace hc::crypto
