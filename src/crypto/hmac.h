// HMAC-SHA256 (RFC 2104).
//
// The paper recommends "using HMACs instead of digital signatures" for
// integrity of ingested HCLS data (Section IV.B.1); bench_crypto
// quantifies that recommendation.
#pragma once

#include <vector>

#include "common/bytes.h"

namespace hc::crypto {

/// HMAC-SHA256 of `data` under `key`. 32-byte tag.
Bytes hmac_sha256(const Bytes& key, const Bytes& data);

/// Constant-time verification of a previously computed tag.
bool hmac_verify(const Bytes& key, const Bytes& data, const Bytes& tag);

/// One (key, data, tag) triple awaiting verification. Pointers alias the
/// caller's buffers — no copies — and must outlive the batch call.
struct HmacVerifyItem {
  const Bytes* key = nullptr;
  const Bytes* data = nullptr;
  const Bytes* tag = nullptr;
};

/// View-flavored verification item for callers whose message and tag live
/// inside a larger buffer (the zero-copy staged-envelope path, checkpoint
/// chunk tables): no Bytes objects need to exist for the spans.
struct HmacVerifyView {
  const Bytes* key = nullptr;
  const std::uint8_t* data = nullptr;
  std::size_t data_len = 0;
  const std::uint8_t* tag = nullptr;  // 32 bytes
  std::size_t tag_len = 0;
};

/// Verifies a batch of tags in one pass (parallel ingestion workers verify
/// a whole message batch at once). Tags are recomputed four lanes at a time
/// on the lock-step SHA-256 core (sha256_multi.h); each verdict is
/// independent, constant-time, and bitwise identical to hmac_verify.
/// out[i] corresponds to items[i].
std::vector<bool> hmac_verify_batch(const std::vector<HmacVerifyItem>& items);
std::vector<bool> hmac_verify_batch(const std::vector<HmacVerifyView>& items);

}  // namespace hc::crypto
