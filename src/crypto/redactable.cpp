#include "crypto/redactable.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace hc::crypto {

namespace {

Bytes commit(std::size_t index, const Bytes& salt, const Bytes& content) {
  Sha256 h;
  std::uint8_t idx[8];
  for (int i = 0; i < 8; ++i) idx[i] = static_cast<std::uint8_t>(index >> (56 - 8 * i));
  h.update(idx, 8);
  h.update(salt);
  h.update(content);
  return h.finalize();
}

Bytes commitment_transcript(const RedactableDocument& doc) {
  Sha256 h;
  for (const auto& part : doc.parts) h.update(part.commitment);
  return h.finalize();
}

}  // namespace

RedactableDocument redactable_sign(const PrivateKey& key,
                                   const std::vector<Bytes>& parts, Rng& rng) {
  RedactableDocument doc;
  doc.parts.reserve(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    RedactablePart p;
    p.salt = rng.bytes(32);
    p.content = parts[i];
    p.commitment = commit(i, *p.salt, *p.content);
    doc.parts.push_back(std::move(p));
  }
  doc.signature = rsa_sign(key, commitment_transcript(doc));
  return doc;
}

void redact(RedactableDocument& doc, std::size_t index) {
  if (index >= doc.parts.size()) {
    throw std::out_of_range("redact: part index out of range");
  }
  doc.parts[index].content.reset();
  doc.parts[index].salt.reset();
}

RedactableVerdict redactable_verify(const PublicKey& key,
                                    const RedactableDocument& doc) {
  if (!rsa_verify(key, commitment_transcript(doc), doc.signature)) {
    return RedactableVerdict::kBadSignature;
  }
  for (std::size_t i = 0; i < doc.parts.size(); ++i) {
    const auto& part = doc.parts[i];
    if (part.content.has_value() != part.salt.has_value()) {
      return RedactableVerdict::kBadCommitment;
    }
    if (part.content) {
      Bytes expected = commit(i, *part.salt, *part.content);
      if (!constant_time_equal(expected, part.commitment)) {
        return RedactableVerdict::kBadCommitment;
      }
    }
  }
  return RedactableVerdict::kValid;
}

std::size_t intact_count(const RedactableDocument& doc) {
  std::size_t n = 0;
  for (const auto& part : doc.parts) {
    if (part.content) ++n;
  }
  return n;
}

}  // namespace hc::crypto
