#include "crypto/session_cache.h"

#include "crypto/asymmetric.h"

namespace hc::crypto {

SessionKeyCache::SessionKeyCache(KeyManagementService& kms, Principal principal)
    : kms_(&kms), principal_(std::move(principal)) {}

Result<Bytes> SessionKeyCache::unwrap(const KeyId& client_key_id,
                                      const Bytes& wrapped_key) {
  {
    std::shared_lock lock(mu_);
    auto it = sessions_.find({client_key_id, wrapped_key});
    if (it != sessions_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // The RSA unwrap runs outside any lock — it is the expensive part this
  // cache exists to amortize, and stalling readers behind it would serialize
  // the very hot path being sped up.
  auto priv = kms_->private_key(client_key_id, principal_);
  if (!priv.is_ok()) return priv.status();
  Bytes session_key = rsa_decrypt(*priv, wrapped_key);

  std::unique_lock lock(mu_);
  auto [it, inserted] = sessions_.emplace(
      std::make_pair(client_key_id, wrapped_key), std::move(session_key));
  (void)inserted;  // a racing miss inserted the identical key — fine
  return it->second;
}

void SessionKeyCache::invalidate(const KeyId& client_key_id) {
  std::unique_lock lock(mu_);
  auto it = sessions_.lower_bound({client_key_id, Bytes{}});
  while (it != sessions_.end() && it->first.first == client_key_id) {
    it = sessions_.erase(it);
  }
}

void SessionKeyCache::clear() {
  std::unique_lock lock(mu_);
  sessions_.clear();
}

SessionKeyCache::Stats SessionKeyCache::stats() const {
  return Stats{hits_.load(std::memory_order_relaxed),
               misses_.load(std::memory_order_relaxed)};
}

std::size_t SessionKeyCache::size() const {
  std::shared_lock lock(mu_);
  return sessions_.size();
}

}  // namespace hc::crypto
