// Multi-lane SHA-256 / HMAC-SHA256 (the ingest + checkpoint crypto core).
//
// The scalar compression loop in sha256.cpp is a long serial dependency
// chain: every round needs the previous round's working variables, so the
// CPU's parallel ALU ports sit idle. Hashing four *independent* messages in
// lock-step — the same multi-accumulator ILP treatment the analytics
// kernels got (kernels.h) — gives the scheduler four disjoint dependency
// chains to interleave per cycle.
//
// Everything here is bitwise identical to the scalar reference: the 4-lane
// compression performs each lane's FIPS 180-4 round sequence exactly
// (same adds, same rotates, same constants), just textually interleaved.
// crypto_test pins this with a property test over random lengths and
// alignments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace hc::crypto {

/// Lanes hashed per lock-step group. Fixed by the interleaved compression
/// kernel; callers batch in groups of 4 and fall back to scalar for the
/// remainder.
constexpr std::size_t kSha256Lanes = 4;

namespace detail {

/// Compresses one 64-byte block per lane into four independent states,
/// interleaving the round computations of all lanes. Bitwise equal to four
/// sha256_compress calls.
void sha256_compress4(std::uint32_t* states[4], const std::uint8_t* blocks[4]);

}  // namespace detail

/// Four independent SHA-256 digests computed in lock-step. `out[i]` =
/// sha256 of `data[i][0..len[i])`. Lanes may have any lengths/alignments;
/// when lanes run out of blocks at different times, the stragglers finish
/// on the scalar compression. Null data pointers are only valid for
/// zero-length lanes.
void sha256_x4(const std::uint8_t* const data[4], const std::size_t len[4],
               std::uint8_t out[4][32]);

/// One message awaiting a batched HMAC-SHA256. `key` must outlive the call;
/// `data`/`len` view the caller's buffer (zero-copy — the staged-envelope
/// path points straight into the staging blob).
struct HmacInput {
  const Bytes* key = nullptr;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
};

/// Computes hmac_sha256(items[i].key, items[i].data) for every item, four
/// lanes at a time: the inner hashes (ipad block + message) run lock-step,
/// then the outer hashes (opad block + 32-byte inner digest — exactly two
/// blocks each) run lock-step. Tags are bitwise identical to the scalar
/// hmac_sha256 loop.
std::vector<Bytes> hmac_sha256_multi(const std::vector<HmacInput>& items);

}  // namespace hc::crypto
