// Key Management System (Section IV.B.1).
//
// "A key management system is a single-tenant isolated system that is
// dedicated only to a single customer or single instance of the regulated
// system." The KMS here:
//   - generates symmetric keys and asymmetric keypairs (statically at
//     registration or dynamically per data-flow),
//   - enforces need-to-know access: only authorized principals can fetch
//     key material, and every access is auditable,
//   - supports rotation with retained prior versions for decryption,
//   - supports *crypto-shredding*: destroying a key renders all data
//     encrypted under it unrecoverable, which is how the platform
//     implements GDPR right-to-forget ("encryption-based record deletion").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/id.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/status.h"
#include "crypto/asymmetric.h"

namespace hc::crypto {

using KeyId = std::string;
using Principal = std::string;

enum class KeyKind { kSymmetric, kAsymmetric };

/// Thread-safe: reads (key fetches, the hot ingestion path) take a shared
/// lock; mutations (create / authorize / rotate / destroy) take the lock
/// exclusively. Key material is returned by value, so callers never hold
/// references into guarded state.
class KeyManagementService {
 public:
  /// `tenant` scopes the instance (single-tenant isolation); `log` may be
  /// null for tests that do not care about auditing.
  KeyManagementService(std::string tenant, Rng rng, LogPtr log = nullptr);

  /// Creates a 16-byte symmetric key owned (and authorized) by `owner`.
  KeyId create_symmetric_key(const Principal& owner);

  /// Creates an RSA keypair; the public half is world-readable.
  KeyId create_keypair(const Principal& owner);

  /// Grants `principal` access to the key. Only the owner may grant.
  Status authorize(const KeyId& id, const Principal& owner, const Principal& principal);

  /// Fetches current symmetric material. kPermissionDenied unless authorized;
  /// kDataLoss if the key has been shredded.
  Result<Bytes> symmetric_key(const KeyId& id, const Principal& principal) const;

  /// Fetches a specific prior version (for decrypting old ciphertexts).
  Result<Bytes> symmetric_key_version(const KeyId& id, const Principal& principal,
                                      std::uint32_t version) const;

  /// Public keys are not secret.
  Result<PublicKey> public_key(const KeyId& id) const;

  Result<PrivateKey> private_key(const KeyId& id, const Principal& principal) const;

  /// Generates fresh material; prior versions remain fetchable.
  Status rotate(const KeyId& id, const Principal& owner);

  /// Crypto-shred: wipes *all* versions. Irreversible.
  Status destroy(const KeyId& id, const Principal& owner);

  /// Current version number (1-based), or error.
  Result<std::uint32_t> version(const KeyId& id) const;

  bool is_destroyed(const KeyId& id) const;
  std::string_view tenant() const { return tenant_; }
  std::size_t key_count() const {
    std::shared_lock lock(mu_);
    return keys_.size();
  }

 private:
  struct ManagedKey {
    KeyKind kind;
    Principal owner;
    std::set<Principal> authorized;
    std::vector<Bytes> symmetric_versions;   // kSymmetric
    std::vector<KeyPair> asymmetric_versions;  // kAsymmetric
    bool destroyed = false;
  };

  const ManagedKey* find(const KeyId& id) const;
  ManagedKey* find(const KeyId& id);
  void audit(const std::string& event, const std::string& detail) const;

  std::string tenant_;
  mutable Rng rng_;  // guarded by mu_ (exclusive): used only by mutations
  LogPtr log_;
  IdGenerator ids_;  // guarded by mu_ (exclusive)
  mutable std::shared_mutex mu_;
  std::map<KeyId, ManagedKey> keys_;
};

}  // namespace hc::crypto
