// Per-tenant session-key cache (the KMS side of the ingest crypto hot path).
//
// Every upload envelope carries an RSA-wrapped AES session key. The seed
// pipeline paid one private-key fetch plus one calibrated RSA unwrap *per
// upload* — the exact "public key encryption is too expensive" cost the
// paper warns about (Section IV.B.1). Clients that keep a session open
// re-wrap the same session key under the same platform keypair, and the
// toy RSA here is deterministic (no padding randomness), so identical
// sessions produce identical wrapped bytes: the server can key a cache on
// the wrapped-key ciphertext itself and unwrap each distinct session once.
//
// Determinism: a cached entry is a pure function of (client key id, wrapped
// bytes) — RSA decryption has one answer — so the cache's *contents* are
// derivation-order independent. Two workers racing on the same miss both
// compute the same key and the second insert is a no-op; only wall time
// varies, never a session key.
//
// The cache is scoped like the KMS it fronts: one instance per tenant
// (single-tenant isolation), holding key material for exactly one
// principal's unwrap authority.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>
#include <utility>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/kms.h"

namespace hc::crypto {

class SessionKeyCache {
 public:
  /// `principal` is the identity used for KMS private-key fetches (the
  /// ingestion worker's identity; must be authorized on client keys).
  SessionKeyCache(KeyManagementService& kms, Principal principal);

  /// Returns the AES session key wrapped in `wrapped_key` under the client
  /// keypair `client_key_id`. First sighting of the wrapped bytes pays the
  /// KMS fetch + RSA unwrap; repeats are a shared-lock map hit. Key-fetch
  /// failures (unauthorized, shredded) pass through as the KMS status.
  /// Throws std::invalid_argument on malformed wrapped bytes, exactly like
  /// the uncached rsa_decrypt path; failures are never cached.
  Result<Bytes> unwrap(const KeyId& client_key_id, const Bytes& wrapped_key);

  /// Drops every session under one client key — call after rotate() or
  /// destroy() of the keypair, which changes what the wrapped bytes mean.
  void invalidate(const KeyId& client_key_id);
  void clear();

  /// Monotonic counters. Totals are exact; the hit/miss split is exact in
  /// serial use but two workers racing one miss may both count it — don't
  /// put the split into byte-locked artifacts from parallel runs.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

  std::size_t size() const;

 private:
  KeyManagementService* kms_;
  Principal principal_;
  mutable std::shared_mutex mu_;
  std::map<std::pair<KeyId, Bytes>, Bytes> sessions_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace hc::crypto
