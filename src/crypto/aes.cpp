#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"

namespace hc::crypto {

namespace {

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

inline std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

inline std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

}  // namespace

Aes128::Aes128(const Bytes& key) {
  if (key.size() != kAesKeySize) {
    throw std::invalid_argument("Aes128: key must be 16 bytes");
  }
  std::memcpy(round_keys_, key.data(), 16);
  for (int i = 4; i < 44; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_ + (i - 1) * 4, 4);
    if (i % 4 == 0) {
      std::uint8_t t = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ kRcon[i / 4]);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[i * 4 + j] = round_keys_[(i - 4) * 4 + j] ^ temp[j];
    }
  }
}

void Aes128::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[i];

  for (int round = 1; round <= 10; ++round) {
    // SubBytes
    for (auto& b : s) b = kSbox[b];
    // ShiftRows (column-major state: s[r + 4c])
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
      }
    }
    std::memcpy(s, t, 16);
    // MixColumns (skipped in final round)
    if (round != 10) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
        col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
      }
    }
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  }
  std::memcpy(out, s, 16);
}

void Aes128::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[160 + i];

  for (int round = 9; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
      }
    }
    std::memcpy(s, t, 16);
    // InvSubBytes
    for (auto& b : s) b = kInvSbox[b];
    // AddRoundKey
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
    // InvMixColumns (skipped for round 0)
    if (round != 0) {
      for (int c = 0; c < 4; ++c) {
        std::uint8_t* col = s + 4 * c;
        std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^
                                           gmul(a2, 0x0d) ^ gmul(a3, 0x09));
        col[1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^
                                           gmul(a2, 0x0b) ^ gmul(a3, 0x0d));
        col[2] = static_cast<std::uint8_t>(gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^
                                           gmul(a2, 0x0e) ^ gmul(a3, 0x0b));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^
                                           gmul(a2, 0x09) ^ gmul(a3, 0x0e));
      }
    }
  }
  std::memcpy(out, s, 16);
}

void Aes128::decrypt_blocks4(const std::uint8_t in[64], std::uint8_t out[64]) const {
  // Four independent inverse-cipher states walked through the rounds in
  // lock-step. Every lane performs exactly the decrypt_block sequence; the
  // interleave gives the core four disjoint dependency chains per round.
  std::uint8_t s[4][16];
  for (int l = 0; l < 4; ++l) {
    for (int i = 0; i < 16; ++i) s[l][i] = in[l * 16 + i] ^ round_keys_[160 + i];
  }

  for (int round = 9; round >= 0; --round) {
    // InvShiftRows
    std::uint8_t t[4][16];
    for (int l = 0; l < 4; ++l) {
      for (int c = 0; c < 4; ++c) {
        for (int r = 0; r < 4; ++r) {
          t[l][r + 4 * ((c + r) % 4)] = s[l][r + 4 * c];
        }
      }
    }
    std::memcpy(s, t, sizeof(s));
    // InvSubBytes + AddRoundKey
    for (int l = 0; l < 4; ++l) {
      for (int i = 0; i < 16; ++i) {
        s[l][i] = kInvSbox[s[l][i]] ^ round_keys_[round * 16 + i];
      }
    }
    // InvMixColumns (skipped for round 0)
    if (round != 0) {
      for (int l = 0; l < 4; ++l) {
        for (int c = 0; c < 4; ++c) {
          std::uint8_t* col = s[l] + 4 * c;
          std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
          col[0] = static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^
                                             gmul(a2, 0x0d) ^ gmul(a3, 0x09));
          col[1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^
                                             gmul(a2, 0x0b) ^ gmul(a3, 0x0d));
          col[2] = static_cast<std::uint8_t>(gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^
                                             gmul(a2, 0x0e) ^ gmul(a3, 0x0b));
          col[3] = static_cast<std::uint8_t>(gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^
                                             gmul(a2, 0x09) ^ gmul(a3, 0x0e));
        }
      }
    }
  }
  std::memcpy(out, s, 64);
}

Bytes aes_cbc_encrypt(const Bytes& key, const Bytes& plaintext, const Bytes& iv) {
  if (iv.size() != kAesBlockSize) {
    throw std::invalid_argument("aes_cbc_encrypt: iv must be 16 bytes");
  }
  Aes128 aes(key);

  // PKCS#7 pad.
  std::size_t pad = kAesBlockSize - plaintext.size() % kAesBlockSize;
  Bytes padded = plaintext;
  padded.insert(padded.end(), pad, static_cast<std::uint8_t>(pad));

  Bytes out;
  out.reserve(kAesBlockSize + padded.size());
  out.insert(out.end(), iv.begin(), iv.end());

  std::uint8_t chain[16];
  std::memcpy(chain, iv.data(), 16);
  for (std::size_t off = 0; off < padded.size(); off += kAesBlockSize) {
    std::uint8_t block[16];
    for (int i = 0; i < 16; ++i) block[i] = padded[off + i] ^ chain[i];
    aes.encrypt_block(block, chain);
    out.insert(out.end(), chain, chain + 16);
  }
  return out;
}

Bytes aes_cbc_encrypt(const Bytes& key, const Bytes& plaintext, Rng& rng) {
  return aes_cbc_encrypt(key, plaintext, rng.bytes(kAesBlockSize));
}

Bytes aes_cbc_decrypt(const Bytes& key, const std::uint8_t* iv_and_ciphertext,
                      std::size_t len) {
  if (len < 2 * kAesBlockSize || len % kAesBlockSize != 0) {
    throw std::invalid_argument("aes_cbc_decrypt: malformed ciphertext length");
  }
  Aes128 aes(key);

  // CBC decryption is block-parallel: plain_i = D(c_i) XOR c_{i-1} with the
  // XOR operand read straight from the ciphertext, so four blocks at a time
  // go through the interleaved inverse cipher and the chain is applied
  // afterwards. Bitwise identical to the serial walk.
  std::size_t ct_len = len - kAesBlockSize;
  std::size_t n_blocks = ct_len / kAesBlockSize;
  const std::uint8_t* ct = iv_and_ciphertext + kAesBlockSize;
  Bytes plain(ct_len);

  std::size_t b = 0;
  for (; b + 4 <= n_blocks; b += 4) {
    aes.decrypt_blocks4(ct + b * kAesBlockSize, plain.data() + b * kAesBlockSize);
  }
  for (; b < n_blocks; ++b) {
    aes.decrypt_block(ct + b * kAesBlockSize, plain.data() + b * kAesBlockSize);
  }
  for (std::size_t blk = n_blocks; blk-- > 0;) {
    const std::uint8_t* prev =
        blk == 0 ? iv_and_ciphertext : ct + (blk - 1) * kAesBlockSize;
    std::uint8_t* out = plain.data() + blk * kAesBlockSize;
    for (int i = 0; i < 16; ++i) out[i] ^= prev[i];
  }

  if (plain.empty()) throw std::invalid_argument("aes_cbc_decrypt: empty plaintext");
  std::uint8_t pad = plain.back();
  if (pad == 0 || pad > kAesBlockSize || pad > plain.size()) {
    throw std::invalid_argument("aes_cbc_decrypt: bad padding");
  }
  for (std::size_t i = plain.size() - pad; i < plain.size(); ++i) {
    if (plain[i] != pad) throw std::invalid_argument("aes_cbc_decrypt: bad padding");
  }
  plain.resize(plain.size() - pad);
  return plain;
}

Bytes aes_cbc_decrypt(const Bytes& key, const Bytes& iv_and_ciphertext) {
  return aes_cbc_decrypt(key, iv_and_ciphertext.data(), iv_and_ciphertext.size());
}

AuthenticatedCiphertext aes_encrypt_authenticated(const Bytes& enc_key,
                                                  const Bytes& mac_key,
                                                  const Bytes& plaintext, Rng& rng) {
  AuthenticatedCiphertext out;
  out.ciphertext = aes_cbc_encrypt(enc_key, plaintext, rng);
  out.tag = hmac_sha256(mac_key, out.ciphertext);
  return out;
}

DecryptOutcome aes_decrypt_authenticated(const Bytes& enc_key, const Bytes& mac_key,
                                         const AuthenticatedCiphertext& ct) {
  DecryptOutcome out;
  if (!hmac_verify(mac_key, ct.ciphertext, ct.tag)) return out;
  out.authentic = true;
  out.plaintext = aes_cbc_decrypt(enc_key, ct.ciphertext);
  return out;
}

}  // namespace hc::crypto
