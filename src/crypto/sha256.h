// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used platform-wide: HMAC, Merkle trees, blockchain block hashes,
// TPM PCR extension, image measurement, redactable-signature commitments.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace hc::crypto {

constexpr std::size_t kSha256DigestSize = 32;

namespace detail {

/// The FIPS 180-4 round constants, shared with the multi-lane hasher
/// (sha256_multi.cpp) so both compression loops read one table.
extern const std::uint32_t kSha256K[64];

/// One compression of a 64-byte block into `state` (the H0..H7 words).
/// This is the single hot function both the incremental hasher and the
/// 4-lane lock-step hasher bottom out in.
void sha256_compress(std::uint32_t state[8], const std::uint8_t* block);

}  // namespace detail

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  void update(const Bytes& data);
  void update(std::string_view data);
  void update(const std::uint8_t* data, std::size_t len);

  /// Finalizes and returns the 32-byte digest. The hasher must not be
  /// reused after finalize().
  Bytes finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

/// One-shot convenience.
Bytes sha256(const Bytes& data);
Bytes sha256(std::string_view data);

/// sha256(a || b) — common pattern for tree/chain hashing.
Bytes sha256_concat(const Bytes& a, const Bytes& b);

}  // namespace hc::crypto
