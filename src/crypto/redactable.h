// Leakage-free redactable signatures (after Kundu-Atallah-Bertino, refs
// [27][28] in the paper).
//
// HCLS data "is shared in parts and not as a whole"; plain Merkle
// hash/signature schemes leak information about redacted parts (e.g. their
// position and hash, enabling dictionary confirmation). This scheme signs
// per-part *salted commitments* so that:
//   - a verifier of a redacted document learns nothing about the content of
//     redacted parts (the commitment is hiding: H(salt || content) with a
//     random 32-byte salt), and
//   - a redacted document's signature still verifies without the signer's
//     involvement, and
//   - parts cannot be reordered, substituted, or un-redacted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/asymmetric.h"

namespace hc::crypto {

/// One part of a (possibly redacted) document.
struct RedactablePart {
  /// Present iff the part has not been redacted.
  std::optional<Bytes> content;
  /// Salt revealed for intact parts, absent for redacted ones.
  std::optional<Bytes> salt;
  /// Commitment H(index || salt || content). Always present; for intact
  /// parts it is recomputable, carried for redacted ones.
  Bytes commitment;
};

struct RedactableDocument {
  std::vector<RedactablePart> parts;
  Bytes signature;  // rsa signature over the ordered commitment list
};

/// Signs the ordered parts and returns a fully-intact document.
RedactableDocument redactable_sign(const PrivateKey& key,
                                   const std::vector<Bytes>& parts, Rng& rng);

/// Removes the content+salt of `index` (repeatable; already-redacted is a
/// no-op). The signature remains valid.
void redact(RedactableDocument& doc, std::size_t index);

enum class RedactableVerdict {
  kValid,         // signature good, all intact parts consistent
  kBadSignature,  // commitment list does not match signature
  kBadCommitment, // some intact part's content does not match its commitment
};

RedactableVerdict redactable_verify(const PublicKey& key,
                                    const RedactableDocument& doc);

/// Number of parts still readable.
std::size_t intact_count(const RedactableDocument& doc);

}  // namespace hc::crypto
