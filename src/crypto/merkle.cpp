#include "crypto/merkle.h"

#include <stdexcept>

#include "crypto/sha256.h"

namespace hc::crypto {

Bytes MerkleTree::hash_leaf(const Bytes& data) {
  Sha256 h;
  std::uint8_t tag = 0x00;
  h.update(&tag, 1);
  h.update(data);
  return h.finalize();
}

Bytes MerkleTree::hash_interior(const Bytes& left, const Bytes& right) {
  Sha256 h;
  std::uint8_t tag = 0x01;
  h.update(&tag, 1);
  h.update(left);
  h.update(right);
  return h.finalize();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) : leaf_count_(leaves.size()) {
  std::vector<Bytes> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  if (level.empty()) level.push_back(sha256(Bytes{}));
  levels_.push_back(level);

  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Bytes> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i < prev.size(); i += 2) {
      if (i + 1 < prev.size()) {
        next.push_back(hash_interior(prev[i], prev[i + 1]));
      } else {
        next.push_back(prev[i]);  // promote odd node
      }
    }
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= leaf_count_) throw std::out_of_range("MerkleTree::prove: bad index");
  MerkleProof proof;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    std::size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling < level.size()) {
      proof.push_back(ProofNode{level[sibling], sibling < pos});
    }
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Bytes& leaf_data, const MerkleProof& proof,
                        const Bytes& root) {
  Bytes current = hash_leaf(leaf_data);
  for (const auto& node : proof) {
    current = node.sibling_on_left ? hash_interior(node.hash, current)
                                   : hash_interior(current, node.hash);
  }
  return constant_time_equal(current, root);
}

}  // namespace hc::crypto
