#include "crypto/asymmetric.h"

#include <stdexcept>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace hc::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

u64 mulmod(u64 a, u64 b, u64 m) { return static_cast<u64>(u128(a) * b % m); }

u64 powmod(u64 base, u64 exp, u64 m) {
  u64 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

// A 62-bit modular exponentiation underestimates the cost of production
// RSA-2048 by roughly three orders of magnitude (2048-bit squarings over
// 32 limbs vs one native word). The RSA data-path operations below pad each
// exponentiation with extra powmod work so the *relative* cost ordering the
// paper relies on (asymmetric >> symmetric >> MAC) is preserved in
// benchmarks. DESIGN.md documents this calibration; key generation and
// correctness are unaffected.
constexpr int kModexpWorkFactor = 192;

u64 powmod_calibrated(u64 base, u64 exp, u64 m) {
  u64 result = powmod(base, exp, m);
  volatile u64 sink = result;
  for (int i = 1; i < kModexpWorkFactor; ++i) {
    sink = powmod(sink + static_cast<u64>(i), exp, m);
  }
  return result;
}

bool miller_rabin(u64 n) {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int r = 0;
  while (d % 2 == 0) {
    d /= 2;
    ++r;
  }
  // Deterministic witness set for n < 3.3e24.
  for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                29ULL, 31ULL, 37ULL}) {
    u64 x = powmod(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

u64 random_prime(Rng& rng) {
  for (;;) {
    u64 candidate = static_cast<u64>(rng.uniform_int(1u << 30, (1u << 31) - 1)) | 1;
    if (miller_rabin(candidate)) return candidate;
  }
}

// Extended Euclid: returns x with a*x ≡ 1 (mod m), or 0 if not invertible.
u64 modinv(u64 a, u64 m) {
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(m), new_r = static_cast<std::int64_t>(a);
  while (new_r != 0) {
    std::int64_t q = r / new_r;
    std::int64_t tmp = t - q * new_t;
    t = new_t;
    new_t = tmp;
    tmp = r - q * new_r;
    r = new_r;
    new_r = tmp;
  }
  if (r > 1) return 0;
  if (t < 0) t += static_cast<std::int64_t>(m);
  return static_cast<u64>(t);
}

void put_u64_be(Bytes& out, u64 v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

u64 get_u64_be(const Bytes& in, std::size_t off) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | in[off + i];
  return v;
}

constexpr std::size_t kChunk = 4;  // plaintext bytes per exponentiation

}  // namespace

std::string PublicKey::fingerprint() const {
  Bytes material;
  put_u64_be(material, n);
  put_u64_be(material, e);
  return hex_encode(sha256(material)).substr(0, 16);
}

KeyPair generate_keypair(Rng& rng) {
  for (;;) {
    u64 p = random_prime(rng);
    u64 q = random_prime(rng);
    if (p == q) continue;
    u64 n = p * q;
    u64 phi = (p - 1) * (q - 1);
    u64 e = 65537;
    u64 d = modinv(e, phi);
    if (d == 0) continue;
    return KeyPair{PublicKey{n, e}, PrivateKey{n, d}};
  }
}

Bytes rsa_encrypt(const PublicKey& pub, const Bytes& plaintext) {
  if (pub.n == 0) throw std::invalid_argument("rsa_encrypt: empty key");
  Bytes out;
  out.reserve((plaintext.size() / kChunk + 2) * 8);
  // Length prefix chunk so decryption can strip padding exactly.
  put_u64_be(out, powmod_calibrated(static_cast<u64>(plaintext.size()) % pub.n, pub.e, pub.n));
  // NOTE: raw (unpadded) RSA per-chunk; fine for a cost model, not for security.
  for (std::size_t off = 0; off < plaintext.size(); off += kChunk) {
    u64 m = 0;
    for (std::size_t i = 0; i < kChunk; ++i) {
      m = (m << 8) | (off + i < plaintext.size() ? plaintext[off + i] : 0);
    }
    put_u64_be(out, powmod_calibrated(m, pub.e, pub.n));
  }
  return out;
}

Bytes rsa_decrypt(const PrivateKey& priv, const Bytes& ciphertext) {
  if (ciphertext.size() < 8 || ciphertext.size() % 8 != 0) {
    throw std::invalid_argument("rsa_decrypt: malformed ciphertext");
  }
  u64 len = powmod_calibrated(get_u64_be(ciphertext, 0), priv.d, priv.n);
  u64 max_len = (ciphertext.size() / 8 - 1) * kChunk;
  if (len > max_len) throw std::invalid_argument("rsa_decrypt: bad length prefix");
  Bytes out;
  out.reserve(len);
  for (std::size_t off = 8; off < ciphertext.size(); off += 8) {
    u64 m = powmod_calibrated(get_u64_be(ciphertext, off), priv.d, priv.n);
    for (std::size_t i = 0; i < kChunk; ++i) {
      out.push_back(static_cast<std::uint8_t>(m >> (8 * (kChunk - 1 - i))));
    }
  }
  if (len > out.size()) throw std::invalid_argument("rsa_decrypt: bad length prefix");
  out.resize(len);
  return out;
}

Bytes rsa_sign(const PrivateKey& priv, const Bytes& data) {
  Bytes digest = sha256(data);
  Bytes sig;
  sig.reserve((digest.size() / kChunk) * 8);
  for (std::size_t off = 0; off < digest.size(); off += kChunk) {
    u64 m = 0;
    for (std::size_t i = 0; i < kChunk; ++i) m = (m << 8) | digest[off + i];
    put_u64_be(sig, powmod_calibrated(m % priv.n, priv.d, priv.n));
  }
  return sig;
}

bool rsa_verify(const PublicKey& pub, const Bytes& data, const Bytes& signature) {
  Bytes digest = sha256(data);
  if (signature.size() != (digest.size() / kChunk) * 8) return false;
  for (std::size_t block = 0; block * 8 < signature.size(); ++block) {
    u64 recovered = powmod_calibrated(get_u64_be(signature, block * 8), pub.e, pub.n);
    u64 expected = 0;
    for (std::size_t i = 0; i < kChunk; ++i) {
      expected = (expected << 8) | digest[block * kChunk + i];
    }
    if (recovered != expected % pub.n) return false;
  }
  return true;
}

Envelope envelope_seal(const PublicKey& pub, const Bytes& plaintext, Rng& rng) {
  Bytes session_key = rng.bytes(kAesKeySize);
  Envelope env;
  env.wrapped_key = rsa_encrypt(pub, session_key);
  env.body = aes_cbc_encrypt(session_key, plaintext, rng);
  env.tag = hmac_sha256(session_key, env.body);
  secure_wipe(session_key);
  return env;
}

Envelope envelope_seal_with_key(const PublicKey& pub, const Bytes& session_key,
                                const Bytes& plaintext, Rng& rng) {
  if (session_key.size() != kAesKeySize) {
    throw std::invalid_argument("envelope_seal_with_key: session key must be 16 bytes");
  }
  Envelope env;
  env.wrapped_key = rsa_encrypt(pub, session_key);
  env.body = aes_cbc_encrypt(session_key, plaintext, rng);
  env.tag = hmac_sha256(session_key, env.body);
  return env;
}

Bytes envelope_unwrap_key(const PrivateKey& priv, const Envelope& env) {
  return rsa_decrypt(priv, env.wrapped_key);
}

Bytes envelope_unwrap_key(const PrivateKey& priv, const EnvelopeView& env) {
  Bytes wrapped(env.wrapped_key, env.wrapped_key + env.wrapped_key_len);
  return rsa_decrypt(priv, wrapped);
}

Bytes envelope_decrypt_body(const Bytes& session_key, const EnvelopeView& env) {
  return aes_cbc_decrypt(session_key, env.body, env.body_len);
}

bool envelope_tag_ok(const Bytes& session_key, const Envelope& env) {
  return hmac_verify(session_key, env.body, env.tag);
}

Bytes envelope_decrypt_body(const Bytes& session_key, const Envelope& env) {
  return aes_cbc_decrypt(session_key, env.body);
}

Bytes envelope_open(const PrivateKey& priv, const Envelope& env) {
  Bytes session_key = envelope_unwrap_key(priv, env);
  if (!envelope_tag_ok(session_key, env)) {
    secure_wipe(session_key);
    throw std::invalid_argument("envelope_open: integrity tag mismatch");
  }
  Bytes plain = envelope_decrypt_body(session_key, env);
  secure_wipe(session_key);
  return plain;
}

}  // namespace hc::crypto
