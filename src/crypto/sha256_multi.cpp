#include "crypto/sha256_multi.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"

namespace hc::crypto {

namespace detail {

namespace {

inline std::uint32_t rotr(std::uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

void sha256_compress4(std::uint32_t* states[4], const std::uint8_t* blocks[4]) {
  // Message schedules for all four lanes. The expansion recurrences of
  // different lanes are independent, so the lane loop inside each step is
  // free ILP for the out-of-order core.
  std::uint32_t w[4][64];
  for (int l = 0; l < 4; ++l) {
    const std::uint8_t* block = blocks[l];
    for (int i = 0; i < 16; ++i) {
      w[l][i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
                (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
                (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
                static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
  }
  for (int i = 16; i < 64; ++i) {
    for (int l = 0; l < 4; ++l) {
      std::uint32_t s0 =
          rotr(w[l][i - 15], 7) ^ rotr(w[l][i - 15], 18) ^ (w[l][i - 15] >> 3);
      std::uint32_t s1 =
          rotr(w[l][i - 2], 17) ^ rotr(w[l][i - 2], 19) ^ (w[l][i - 2] >> 10);
      w[l][i] = w[l][i - 16] + s0 + w[l][i - 7] + s1;
    }
  }

  std::uint32_t a[4], b[4], c[4], d[4], e[4], f[4], g[4], h[4];
  for (int l = 0; l < 4; ++l) {
    a[l] = states[l][0];
    b[l] = states[l][1];
    c[l] = states[l][2];
    d[l] = states[l][3];
    e[l] = states[l][4];
    f[l] = states[l][5];
    g[l] = states[l][6];
    h[l] = states[l][7];
  }

  // Each lane performs the exact scalar round sequence; the interleaving
  // keeps four independent a..h dependency chains in flight per round.
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t k = kSha256K[i];
    for (int l = 0; l < 4; ++l) {
      std::uint32_t s1 = rotr(e[l], 6) ^ rotr(e[l], 11) ^ rotr(e[l], 25);
      std::uint32_t ch = (e[l] & f[l]) ^ (~e[l] & g[l]);
      std::uint32_t temp1 = h[l] + s1 + ch + k + w[l][i];
      std::uint32_t s0 = rotr(a[l], 2) ^ rotr(a[l], 13) ^ rotr(a[l], 22);
      std::uint32_t maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
      std::uint32_t temp2 = s0 + maj;
      h[l] = g[l];
      g[l] = f[l];
      f[l] = e[l];
      e[l] = d[l] + temp1;
      d[l] = c[l];
      c[l] = b[l];
      b[l] = a[l];
      a[l] = temp1 + temp2;
    }
  }

  for (int l = 0; l < 4; ++l) {
    states[l][0] += a[l];
    states[l][1] += b[l];
    states[l][2] += c[l];
    states[l][3] += d[l];
    states[l][4] += e[l];
    states[l][5] += f[l];
    states[l][6] += g[l];
    states[l][7] += h[l];
  }
}

}  // namespace detail

namespace {

constexpr std::size_t kBlock = 64;

/// One SHA-256 message decomposed into a block sequence without copying the
/// bulk data: an optional 64-byte prefix block (the HMAC ipad/opad), the
/// full 64-byte blocks of `data` in place, then one or two tail blocks on
/// the stack holding the final partial bytes plus FIPS 180-4 padding.
struct Lane {
  const std::uint8_t* prefix = nullptr;  // exactly 64 bytes when non-null
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;

  std::uint8_t tail[2 * kBlock];
  std::size_t full_data_blocks = 0;
  std::size_t total_blocks = 0;
  std::uint32_t state[8];

  void init(const std::uint8_t* prefix_block, const std::uint8_t* d, std::size_t n) {
    prefix = prefix_block;
    data = d;
    len = n;
    state[0] = 0x6a09e667;
    state[1] = 0xbb67ae85;
    state[2] = 0x3c6ef372;
    state[3] = 0xa54ff53a;
    state[4] = 0x510e527f;
    state[5] = 0x9b05688c;
    state[6] = 0x1f83d9ab;
    state[7] = 0x5be0cd19;

    full_data_blocks = len / kBlock;
    std::size_t tail_data = len % kBlock;
    std::memset(tail, 0, sizeof(tail));
    if (tail_data > 0) std::memcpy(tail, data + full_data_blocks * kBlock, tail_data);
    tail[tail_data] = 0x80;
    std::size_t tail_blocks = tail_data < kBlock - 8 ? 1 : 2;
    std::uint64_t total_len = (prefix ? kBlock : 0) + len;
    std::uint64_t bit_len = total_len * 8;
    std::uint8_t* len_slot = tail + tail_blocks * kBlock - 8;
    for (int i = 0; i < 8; ++i) {
      len_slot[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    }
    total_blocks = (prefix ? 1 : 0) + full_data_blocks + tail_blocks;
  }

  const std::uint8_t* block(std::size_t i) const {
    if (prefix) {
      if (i == 0) return prefix;
      --i;
    }
    if (i < full_data_blocks) return data + i * kBlock;
    return tail + (i - full_data_blocks) * kBlock;
  }

  void digest(std::uint8_t out[32]) const {
    for (int i = 0; i < 8; ++i) {
      out[i * 4] = static_cast<std::uint8_t>(state[i] >> 24);
      out[i * 4 + 1] = static_cast<std::uint8_t>(state[i] >> 16);
      out[i * 4 + 2] = static_cast<std::uint8_t>(state[i] >> 8);
      out[i * 4 + 3] = static_cast<std::uint8_t>(state[i]);
    }
  }
};

/// Runs four prepared lanes to completion: lock-step while every lane still
/// has blocks, scalar for the stragglers. Lane lengths are independent, so
/// this is where mixed-size batches stay correct.
void run_lanes4(Lane lanes[4]) {
  std::size_t common = lanes[0].total_blocks;
  std::size_t max_blocks = lanes[0].total_blocks;
  for (int l = 1; l < 4; ++l) {
    common = std::min(common, lanes[l].total_blocks);
    max_blocks = std::max(max_blocks, lanes[l].total_blocks);
  }
  std::size_t i = 0;
  for (; i < common; ++i) {
    std::uint32_t* states[4] = {lanes[0].state, lanes[1].state, lanes[2].state,
                                lanes[3].state};
    const std::uint8_t* blocks[4] = {lanes[0].block(i), lanes[1].block(i),
                                     lanes[2].block(i), lanes[3].block(i)};
    detail::sha256_compress4(states, blocks);
  }
  for (; i < max_blocks; ++i) {
    for (int l = 0; l < 4; ++l) {
      if (i < lanes[l].total_blocks) {
        detail::sha256_compress(lanes[l].state, lanes[l].block(i));
      }
    }
  }
}

/// Scalar fallback over the same Lane machinery (remainder of a batch).
void run_lane1(Lane& lane) {
  for (std::size_t i = 0; i < lane.total_blocks; ++i) {
    detail::sha256_compress(lane.state, lane.block(i));
  }
}

/// RFC 2104 key preparation: hash keys longer than one block, zero-pad to
/// 64 bytes, XOR into the ipad/opad constants.
void prepare_hmac_pads(const Bytes& key, std::uint8_t ipad[64], std::uint8_t opad[64]) {
  std::uint8_t k[kBlock] = {0};
  if (key.size() > kBlock) {
    Bytes hashed = sha256(key);
    std::memcpy(k, hashed.data(), hashed.size());
  } else if (!key.empty()) {
    std::memcpy(k, key.data(), key.size());
  }
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
}

}  // namespace

void sha256_x4(const std::uint8_t* const data[4], const std::size_t len[4],
               std::uint8_t out[4][32]) {
  Lane lanes[4];
  for (int l = 0; l < 4; ++l) lanes[l].init(nullptr, data[l], len[l]);
  run_lanes4(lanes);
  for (int l = 0; l < 4; ++l) lanes[l].digest(out[l]);
}

std::vector<Bytes> hmac_sha256_multi(const std::vector<HmacInput>& items) {
  std::vector<Bytes> tags(items.size());

  std::size_t groups = items.size() / kSha256Lanes;
  for (std::size_t g = 0; g < groups; ++g) {
    const HmacInput* group = items.data() + g * kSha256Lanes;
    std::uint8_t ipads[4][kBlock], opads[4][kBlock];
    Lane inner[4];
    for (int l = 0; l < 4; ++l) {
      prepare_hmac_pads(*group[l].key, ipads[l], opads[l]);
      inner[l].init(ipads[l], group[l].data, group[l].len);
    }
    run_lanes4(inner);

    std::uint8_t inner_digests[4][32];
    Lane outer[4];
    for (int l = 0; l < 4; ++l) {
      inner[l].digest(inner_digests[l]);
      // opad block + 32-byte digest: every outer lane is exactly two
      // blocks, so the outer pass is pure lock-step.
      outer[l].init(opads[l], inner_digests[l], 32);
    }
    run_lanes4(outer);
    for (int l = 0; l < 4; ++l) {
      Bytes tag(kSha256DigestSize);
      outer[l].digest(tag.data());
      tags[g * kSha256Lanes + l] = std::move(tag);
    }
  }

  for (std::size_t i = groups * kSha256Lanes; i < items.size(); ++i) {
    std::uint8_t ipad[kBlock], opad[kBlock];
    prepare_hmac_pads(*items[i].key, ipad, opad);
    Lane inner;
    inner.init(ipad, items[i].data, items[i].len);
    run_lane1(inner);
    std::uint8_t inner_digest[32];
    inner.digest(inner_digest);
    Lane outer;
    outer.init(opad, inner_digest, 32);
    run_lane1(outer);
    Bytes tag(kSha256DigestSize);
    outer.digest(tag.data());
    tags[i] = std::move(tag);
  }
  return tags;
}

}  // namespace hc::crypto
