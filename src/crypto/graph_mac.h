// HMAC-based integrity for graph-structured HCLS data (Section IV.B.1,
// after Arshad-Kundu-Bertino-Ghafoor [30]).
//
// Health records are frequently graphs — care pathways, provenance DAGs,
// ontology fragments. A GraphMac authenticates a directed acyclic graph
// under a shared HMAC key such that:
//   - each node carries a tag binding its id, payload, and the tags of its
//     direct successors (bottom-up), so tampering with any descendant
//     payload or edge invalidates every ancestor's tag;
//   - a *subgraph* reachable from any node can be shared and verified on
//     its own (need-to-know sharing of record parts), without the verifier
//     seeing the rest of the graph;
//   - verification is keyed: only holders of the shared key can validate,
//     matching the paper's HMAC-over-signature recommendation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hc::crypto {

/// A DAG of records: node id -> payload, plus forward edges.
struct RecordGraph {
  std::map<std::string, Bytes> payloads;
  std::map<std::string, std::vector<std::string>> edges;  // id -> successors

  Status add_node(const std::string& id, Bytes payload);
  /// Both endpoints must exist; duplicate edges rejected.
  Status add_edge(const std::string& from, const std::string& to);
};

/// Per-node authentication tags for a RecordGraph.
struct GraphTags {
  std::map<std::string, Bytes> tags;  // node id -> 32-byte tag
};

/// Computes tags for every node, bottom-up. kInvalidArgument if the graph
/// has a cycle (tags are defined only for DAGs).
Result<GraphTags> mac_graph(const Bytes& key, const RecordGraph& graph);

/// Verifies that the subgraph reachable from `root` in `subgraph` is
/// authentic under `key`, given the root's expected tag. The subgraph must
/// contain every node reachable from the root (tags bind the full
/// downstream closure), but nothing else is needed.
bool verify_subgraph(const Bytes& key, const RecordGraph& subgraph,
                     const std::string& root, const Bytes& expected_root_tag);

/// Extracts the closure of `root` from `graph` — the shareable part.
Result<RecordGraph> extract_subgraph(const RecordGraph& graph, const std::string& root);

}  // namespace hc::crypto
