#include "crypto/kms.h"

#include "crypto/aes.h"

namespace hc::crypto {

KeyManagementService::KeyManagementService(std::string tenant, Rng rng, LogPtr log)
    : tenant_(std::move(tenant)), rng_(rng), log_(std::move(log)) {}

void KeyManagementService::audit(const std::string& event,
                                 const std::string& detail) const {
  if (log_) log_->audit("kms:" + tenant_, event, detail);
}

KeyId KeyManagementService::create_symmetric_key(const Principal& owner) {
  std::unique_lock lock(mu_);
  KeyId id = "key-" + ids_.next_uuid();
  ManagedKey key;
  key.kind = KeyKind::kSymmetric;
  key.owner = owner;
  key.authorized.insert(owner);
  key.symmetric_versions.push_back(rng_.bytes(kAesKeySize));
  keys_.emplace(id, std::move(key));
  audit("key_created", id + " owner=" + owner);
  return id;
}

KeyId KeyManagementService::create_keypair(const Principal& owner) {
  std::unique_lock lock(mu_);
  KeyId id = "keypair-" + ids_.next_uuid();
  ManagedKey key;
  key.kind = KeyKind::kAsymmetric;
  key.owner = owner;
  key.authorized.insert(owner);
  key.asymmetric_versions.push_back(generate_keypair(rng_));
  keys_.emplace(id, std::move(key));
  audit("keypair_created", id + " owner=" + owner);
  return id;
}

const KeyManagementService::ManagedKey* KeyManagementService::find(const KeyId& id) const {
  auto it = keys_.find(id);
  return it == keys_.end() ? nullptr : &it->second;
}

KeyManagementService::ManagedKey* KeyManagementService::find(const KeyId& id) {
  auto it = keys_.find(id);
  return it == keys_.end() ? nullptr : &it->second;
}

Status KeyManagementService::authorize(const KeyId& id, const Principal& owner,
                                       const Principal& principal) {
  std::unique_lock lock(mu_);
  ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->owner != owner) {
    return Status(StatusCode::kPermissionDenied, "only the key owner may authorize");
  }
  key->authorized.insert(principal);
  audit("key_authorized", id + " principal=" + principal);
  return Status::ok();
}

Result<Bytes> KeyManagementService::symmetric_key(const KeyId& id,
                                                  const Principal& principal) const {
  std::shared_lock lock(mu_);
  const ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->destroyed) return Status(StatusCode::kDataLoss, "key shredded: " + id);
  if (key->kind != KeyKind::kSymmetric) {
    return Status(StatusCode::kInvalidArgument, "not a symmetric key: " + id);
  }
  if (!key->authorized.contains(principal)) {
    audit("key_access_denied", id + " principal=" + principal);
    return Status(StatusCode::kPermissionDenied, principal + " not authorized for " + id);
  }
  audit("key_access", id + " principal=" + principal);
  return key->symmetric_versions.back();
}

Result<Bytes> KeyManagementService::symmetric_key_version(
    const KeyId& id, const Principal& principal, std::uint32_t version) const {
  std::shared_lock lock(mu_);
  const ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->destroyed) return Status(StatusCode::kDataLoss, "key shredded: " + id);
  if (key->kind != KeyKind::kSymmetric) {
    return Status(StatusCode::kInvalidArgument, "not a symmetric key: " + id);
  }
  if (!key->authorized.contains(principal)) {
    return Status(StatusCode::kPermissionDenied, principal + " not authorized for " + id);
  }
  if (version == 0 || version > key->symmetric_versions.size()) {
    return Status(StatusCode::kNotFound, "no such key version");
  }
  return key->symmetric_versions[version - 1];
}

Result<PublicKey> KeyManagementService::public_key(const KeyId& id) const {
  std::shared_lock lock(mu_);
  const ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->destroyed) return Status(StatusCode::kDataLoss, "key shredded: " + id);
  if (key->kind != KeyKind::kAsymmetric) {
    return Status(StatusCode::kInvalidArgument, "not a keypair: " + id);
  }
  return key->asymmetric_versions.back().pub;
}

Result<PrivateKey> KeyManagementService::private_key(const KeyId& id,
                                                     const Principal& principal) const {
  std::shared_lock lock(mu_);
  const ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->destroyed) return Status(StatusCode::kDataLoss, "key shredded: " + id);
  if (key->kind != KeyKind::kAsymmetric) {
    return Status(StatusCode::kInvalidArgument, "not a keypair: " + id);
  }
  if (!key->authorized.contains(principal)) {
    audit("key_access_denied", id + " principal=" + principal);
    return Status(StatusCode::kPermissionDenied, principal + " not authorized for " + id);
  }
  audit("key_access", id + " principal=" + principal);
  return key->asymmetric_versions.back().priv;
}

Status KeyManagementService::rotate(const KeyId& id, const Principal& owner) {
  std::unique_lock lock(mu_);
  ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->destroyed) return Status(StatusCode::kDataLoss, "key shredded: " + id);
  if (key->owner != owner) {
    return Status(StatusCode::kPermissionDenied, "only the key owner may rotate");
  }
  if (key->kind == KeyKind::kSymmetric) {
    key->symmetric_versions.push_back(rng_.bytes(kAesKeySize));
  } else {
    key->asymmetric_versions.push_back(generate_keypair(rng_));
  }
  audit("key_rotated", id);
  return Status::ok();
}

Status KeyManagementService::destroy(const KeyId& id, const Principal& owner) {
  std::unique_lock lock(mu_);
  ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->owner != owner) {
    return Status(StatusCode::kPermissionDenied, "only the key owner may destroy");
  }
  for (auto& version : key->symmetric_versions) secure_wipe(version);
  key->symmetric_versions.clear();
  key->asymmetric_versions.clear();
  key->destroyed = true;
  audit("key_shredded", id);
  return Status::ok();
}

Result<std::uint32_t> KeyManagementService::version(const KeyId& id) const {
  std::shared_lock lock(mu_);
  const ManagedKey* key = find(id);
  if (!key) return Status(StatusCode::kNotFound, "no such key: " + id);
  if (key->destroyed) return Status(StatusCode::kDataLoss, "key shredded: " + id);
  std::size_t n = key->kind == KeyKind::kSymmetric ? key->symmetric_versions.size()
                                                   : key->asymmetric_versions.size();
  return static_cast<std::uint32_t>(n);
}

bool KeyManagementService::is_destroyed(const KeyId& id) const {
  std::shared_lock lock(mu_);
  const ManagedKey* key = find(id);
  return key && key->destroyed;
}

}  // namespace hc::crypto
