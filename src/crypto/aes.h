// AES-128 (FIPS 197) in CBC mode with PKCS#7 padding, from scratch,
// plus an encrypt-then-MAC authenticated mode.
//
// This is the platform's shared-key cipher for data at rest (data lake)
// and the payload cipher inside secure channels. Section IV.B.1: data is
// "first encrypted with a well-established shared key (public key
// encryption is too expensive...)"; bench_crypto reproduces that cost gap.
#pragma once

#include "common/bytes.h"
#include "common/rng.h"

namespace hc::crypto {

constexpr std::size_t kAesBlockSize = 16;
constexpr std::size_t kAesKeySize = 16;

/// AES-128 key schedule + single-block ECB primitives. Exposed mainly for
/// tests against FIPS-197 vectors; application code should use the CBC or
/// authenticated interfaces below.
class Aes128 {
 public:
  explicit Aes128(const Bytes& key);  // throws std::invalid_argument on size

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  /// Decrypts four contiguous blocks (64 bytes) with the inverse rounds of
  /// all four states interleaved — multi-accumulator ILP, same treatment as
  /// sha256_compress4. CBC *decryption* is block-parallel (each plaintext
  /// block is D(c_i) XOR c_{i-1}, no chain through the cipher), which is
  /// what aes_cbc_decrypt rides. Bitwise equal to four decrypt_block calls.
  void decrypt_blocks4(const std::uint8_t in[64], std::uint8_t out[64]) const;

 private:
  std::uint8_t round_keys_[176];
};

/// CBC encrypt with PKCS#7 padding. `iv` must be 16 bytes; output is
/// iv || ciphertext so decryption is self-contained.
Bytes aes_cbc_encrypt(const Bytes& key, const Bytes& plaintext, const Bytes& iv);

/// Convenience overload drawing a random IV from `rng`.
Bytes aes_cbc_encrypt(const Bytes& key, const Bytes& plaintext, Rng& rng);

/// Inverse of aes_cbc_encrypt. Throws std::invalid_argument on malformed
/// input (bad length / bad padding).
Bytes aes_cbc_decrypt(const Bytes& key, const Bytes& iv_and_ciphertext);

/// Zero-copy overload: decrypts `len` bytes of iv||ciphertext in place in a
/// larger buffer (the staged-envelope path points straight into the staging
/// blob). Identical semantics and diagnostics.
Bytes aes_cbc_decrypt(const Bytes& key, const std::uint8_t* iv_and_ciphertext,
                      std::size_t len);

/// Encrypt-then-MAC envelope: AES-128-CBC under enc_key, HMAC-SHA256 of the
/// ciphertext under mac_key. This is the paper's "AES CBC mode (encryption
/// and integrity)" recommendation.
struct AuthenticatedCiphertext {
  Bytes ciphertext;  // iv || cbc ciphertext
  Bytes tag;         // 32-byte HMAC over ciphertext
};

AuthenticatedCiphertext aes_encrypt_authenticated(const Bytes& enc_key,
                                                  const Bytes& mac_key,
                                                  const Bytes& plaintext, Rng& rng);

/// Verifies the tag (constant time) then decrypts. Returns
/// kIntegrityError status via exception-free Result-like optional: here we
/// throw on misuse but return empty on tag failure — callers must check.
struct DecryptOutcome {
  bool authentic = false;
  Bytes plaintext;
};

DecryptOutcome aes_decrypt_authenticated(const Bytes& enc_key, const Bytes& mac_key,
                                         const AuthenticatedCiphertext& ct);

}  // namespace hc::crypto
