// Lightweight Status / Result types.
//
// The platform distinguishes programming errors (exceptions, per the C++
// Core Guidelines) from *expected* operational failures — a bundle that
// fails validation, a permission check that denies, a cache miss on a
// remote fetch. Expected failures are returned as values so callers are
// forced to look at them.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hc {

enum class StatusCode {
  kOk,
  kInvalidArgument,
  kNotFound,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kAlreadyExists,
  kUnavailable,
  kDataLoss,
  kIntegrityError,
  kComplianceViolation,
  kInternal,
};

/// Human-readable name of a status code ("OK", "PERMISSION_DENIED", ...).
std::string_view status_code_name(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "PERMISSION_DENIED: user lacks role".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Thrown by Result::value() when the result holds an error.
class BadResultAccess : public std::logic_error {
 public:
  explicit BadResultAccess(const Status& status)
      : std::logic_error("Result accessed with error status: " + status.to_string()),
        status_(status) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a value of T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = Status(StatusCode::kInternal, "Result constructed from OK status");
    }
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    if (!value_) throw BadResultAccess(status_);
    return *value_;
  }
  T& value() & {
    if (!value_) throw BadResultAccess(status_);
    return *value_;
  }
  T&& value() && {
    if (!value_) throw BadResultAccess(status_);
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hc
