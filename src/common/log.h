// Logging and Monitoring service substrate (Fig 1, Section II.A).
//
// The paper requires "secure log and monitoring data for both infrastructure
// services as well as for platform services", with the constraint that
// "logged events cannot contain sensitive data" (Section IV.E). LogService
// is an in-memory structured sink that every component writes to; the audit
// subsystem and tests query it. A pluggable scrubber enforces the
// no-sensitive-data rule at write time.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hc {

enum class LogLevel { kDebug, kInfo, kWarn, kError, kAudit };

std::string_view log_level_name(LogLevel level);

struct LogRecord {
  SimTime time = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;  // e.g. "ingestion", "gateway", "attestation"
  std::string event;      // short machine-matchable event name
  std::string detail;     // free text, scrubbed
};

class LogService {
 public:
  explicit LogService(ClockPtr clock) : clock_(std::move(clock)) {}

  /// Scrubber runs over `detail` before storage; replace to enforce
  /// project-specific redaction (the privacy module installs one that
  /// masks identifiers).
  using Scrubber = std::function<std::string(const std::string&)>;
  void set_scrubber(Scrubber scrubber) { scrubber_ = std::move(scrubber); }

  void log(LogLevel level, std::string component, std::string event,
           std::string detail = "");

  void debug(std::string component, std::string event, std::string detail = "") {
    log(LogLevel::kDebug, std::move(component), std::move(event), std::move(detail));
  }
  void info(std::string component, std::string event, std::string detail = "") {
    log(LogLevel::kInfo, std::move(component), std::move(event), std::move(detail));
  }
  void warn(std::string component, std::string event, std::string detail = "") {
    log(LogLevel::kWarn, std::move(component), std::move(event), std::move(detail));
  }
  void error(std::string component, std::string event, std::string detail = "") {
    log(LogLevel::kError, std::move(component), std::move(event), std::move(detail));
  }
  /// Audit-grade events feed Section IV.E auditability.
  void audit(std::string component, std::string event, std::string detail = "") {
    log(LogLevel::kAudit, std::move(component), std::move(event), std::move(detail));
  }

  /// Snapshot of all records. Returned by value: parallel ingestion
  /// workers append concurrently, so a reference would be unstable.
  std::vector<LogRecord> records() const;

  /// All records for one component (audit/forensics queries).
  std::vector<LogRecord> by_component(const std::string& component) const;

  /// All records whose event matches exactly.
  std::vector<LogRecord> by_event(const std::string& event) const;

  std::size_t count(LogLevel level) const;
  void clear() {
    std::lock_guard lock(mu_);
    records_.clear();
  }

  /// Testing hook: corrupt a stored record (log-integrity tests).
  void tamper_for_test(std::size_t index, std::string detail) {
    std::lock_guard lock(mu_);
    records_.at(index).detail = std::move(detail);
  }

 private:
  ClockPtr clock_;
  Scrubber scrubber_;
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

using LogPtr = std::shared_ptr<LogService>;

LogPtr make_log(ClockPtr clock);

}  // namespace hc
