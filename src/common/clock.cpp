#include "common/clock.h"

#include <stdexcept>

namespace hc {

void SimClock::advance(SimTime delta) {
  if (delta < 0) throw std::invalid_argument("SimClock::advance: negative delta");
  now_.fetch_add(delta, std::memory_order_relaxed);
}

void SimClock::advance_to(SimTime t) {
  SimTime current = now_.load(std::memory_order_relaxed);
  if (t < current) {
    throw std::invalid_argument("SimClock::advance_to: time moved backwards");
  }
  // CAS-max: a concurrent advance() past `t` wins; time never rewinds.
  while (current < t &&
         !now_.compare_exchange_weak(current, t, std::memory_order_relaxed)) {
  }
}

ClockPtr make_clock(SimTime start) { return std::make_shared<SimClock>(start); }

std::string format_duration(SimTime t) {
  char buf[64];
  if (t < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(t) / kMillisecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(t) / kSecond);
  }
  return buf;
}

}  // namespace hc
