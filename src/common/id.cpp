#include "common/id.h"

#include <cstdio>

namespace hc {

std::string IdGenerator::next_uuid() {
  auto r = [this] { return static_cast<unsigned>(rng_.uniform_int(0, 0xffff)); };
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04x%04x-%04x-4%03x-%04x-%04x%04x%04x",
                r(), r(), r(), r() & 0xfff, (r() & 0x3fff) | 0x8000, r(), r(), r());
  return buf;
}

std::string IdGenerator::next_labeled(const std::string& label) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "-%06llu", static_cast<unsigned long long>(counter_++));
  return label + buf;
}

}  // namespace hc
