#include "common/log.h"

namespace hc {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kAudit: return "AUDIT";
  }
  return "UNKNOWN";
}

void LogService::log(LogLevel level, std::string component, std::string event,
                     std::string detail) {
  if (scrubber_) detail = scrubber_(detail);
  LogRecord record{clock_->now(), level, std::move(component), std::move(event),
                   std::move(detail)};
  std::lock_guard lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<LogRecord> LogService::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::vector<LogRecord> LogService::by_component(const std::string& component) const {
  std::lock_guard lock(mu_);
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.component == component) out.push_back(r);
  }
  return out;
}

std::vector<LogRecord> LogService::by_event(const std::string& event) const {
  std::lock_guard lock(mu_);
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

std::size_t LogService::count(LogLevel level) const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.level == level) ++n;
  }
  return n;
}

LogPtr make_log(ClockPtr clock) { return std::make_shared<LogService>(std::move(clock)); }

}  // namespace hc
