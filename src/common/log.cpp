#include "common/log.h"

namespace hc {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kAudit: return "AUDIT";
  }
  return "UNKNOWN";
}

void LogService::log(LogLevel level, std::string component, std::string event,
                     std::string detail) {
  if (scrubber_) detail = scrubber_(detail);
  records_.push_back(LogRecord{clock_->now(), level, std::move(component),
                               std::move(event), std::move(detail)});
}

std::vector<LogRecord> LogService::by_component(const std::string& component) const {
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.component == component) out.push_back(r);
  }
  return out;
}

std::vector<LogRecord> LogService::by_event(const std::string& event) const {
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

std::size_t LogService::count(LogLevel level) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.level == level) ++n;
  }
  return n;
}

LogPtr make_log(ClockPtr clock) { return std::make_shared<LogService>(std::move(clock)); }

}  // namespace hc
