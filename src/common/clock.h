// Simulated clock.
//
// The platform is a discrete-event simulation of a multi-instance cloud, so
// all components share a logical clock instead of reading wall time. This
// keeps tests and benchmarks deterministic and lets the network substrate
// charge latency by advancing time explicitly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace hc {

/// Microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

/// Shared logical clock. Components hold a shared_ptr and read `now()`;
/// only the simulation driver (network, schedulers, tests) advances it.
///
/// Thread-safe: `now_` is atomic, so concurrent workers (hc::exec) may
/// advance() without a data race. Concurrent advances commute — the final
/// time is the sum of all deltas regardless of interleaving — which is
/// what keeps parallel pipeline runs deterministic in aggregate.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime now() const { return now_.load(std::memory_order_relaxed); }

  /// Moves time forward. Negative deltas are a programming error.
  void advance(SimTime delta);

  /// Jumps to an absolute time >= now(). With concurrent advancers the
  /// clock never moves backwards: the jump is a max, not a store.
  void advance_to(SimTime t);

 private:
  std::atomic<SimTime> now_{0};
};

using ClockPtr = std::shared_ptr<SimClock>;

/// Convenience: a fresh clock starting at t=0.
ClockPtr make_clock(SimTime start = 0);

/// Renders a SimTime as "1.234ms" / "2.5s" / "17us" for logs and benches.
std::string format_duration(SimTime t);

}  // namespace hc
