// Byte-buffer helpers shared across the platform.
//
// All binary payloads (ciphertext, hashes, serialized resources, container
// images) travel as `hc::Bytes`. Helpers here convert to/from strings and
// hex, and provide constant-time comparison for authentication tags.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hc {

using Bytes = std::vector<std::uint8_t>;

/// Copies a string's characters into a byte buffer.
Bytes to_bytes(std::string_view s);

/// Reinterprets a byte buffer as a std::string (no encoding checks).
std::string to_string(const Bytes& b);

/// Lower-case hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string hex_encode(const Bytes& b);

/// Inverse of hex_encode. Throws std::invalid_argument on bad input.
Bytes hex_decode(std::string_view hex);

/// Comparison that does not short-circuit on the first mismatching byte.
/// Use for MAC/signature verification so timing does not leak the prefix.
bool constant_time_equal(const Bytes& a, const Bytes& b);

/// Overwrites the buffer with zeros, then clears it. Part of the paper's
/// "secure deletion of data" requirement (Section IV.B.1).
void secure_wipe(Bytes& b);

}  // namespace hc
